file(REMOVE_RECURSE
  "CMakeFiles/dfs_metadata_test.dir/dfs/metadata_test.cc.o"
  "CMakeFiles/dfs_metadata_test.dir/dfs/metadata_test.cc.o.d"
  "dfs_metadata_test"
  "dfs_metadata_test.pdb"
  "dfs_metadata_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfs_metadata_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
