# Empty dependencies file for dfs_metadata_test.
# This may be replaced when dependencies are built.
