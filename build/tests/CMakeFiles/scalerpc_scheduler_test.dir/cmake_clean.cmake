file(REMOVE_RECURSE
  "CMakeFiles/scalerpc_scheduler_test.dir/scalerpc/scheduler_test.cc.o"
  "CMakeFiles/scalerpc_scheduler_test.dir/scalerpc/scheduler_test.cc.o.d"
  "scalerpc_scheduler_test"
  "scalerpc_scheduler_test.pdb"
  "scalerpc_scheduler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scalerpc_scheduler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
