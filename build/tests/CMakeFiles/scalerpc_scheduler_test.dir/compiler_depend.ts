# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for scalerpc_scheduler_test.
