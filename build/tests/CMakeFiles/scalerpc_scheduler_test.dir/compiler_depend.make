# Empty compiler generated dependencies file for scalerpc_scheduler_test.
# This may be replaced when dependencies are built.
