file(REMOVE_RECURSE
  "CMakeFiles/simrdma_nic_cache_test.dir/simrdma/nic_cache_test.cc.o"
  "CMakeFiles/simrdma_nic_cache_test.dir/simrdma/nic_cache_test.cc.o.d"
  "simrdma_nic_cache_test"
  "simrdma_nic_cache_test.pdb"
  "simrdma_nic_cache_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simrdma_nic_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
