# Empty dependencies file for simrdma_nic_cache_test.
# This may be replaced when dependencies are built.
