# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for simrdma_nic_cache_test.
