# Empty compiler generated dependencies file for simrdma_llc_test.
# This may be replaced when dependencies are built.
