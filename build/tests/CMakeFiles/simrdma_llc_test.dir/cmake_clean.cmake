file(REMOVE_RECURSE
  "CMakeFiles/simrdma_llc_test.dir/simrdma/llc_test.cc.o"
  "CMakeFiles/simrdma_llc_test.dir/simrdma/llc_test.cc.o.d"
  "simrdma_llc_test"
  "simrdma_llc_test.pdb"
  "simrdma_llc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simrdma_llc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
