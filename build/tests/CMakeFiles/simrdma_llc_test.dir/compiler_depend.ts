# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for simrdma_llc_test.
