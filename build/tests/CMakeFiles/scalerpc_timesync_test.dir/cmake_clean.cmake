file(REMOVE_RECURSE
  "CMakeFiles/scalerpc_timesync_test.dir/scalerpc/timesync_test.cc.o"
  "CMakeFiles/scalerpc_timesync_test.dir/scalerpc/timesync_test.cc.o.d"
  "scalerpc_timesync_test"
  "scalerpc_timesync_test.pdb"
  "scalerpc_timesync_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scalerpc_timesync_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
