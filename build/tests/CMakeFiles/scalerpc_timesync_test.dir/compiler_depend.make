# Empty compiler generated dependencies file for scalerpc_timesync_test.
# This may be replaced when dependencies are built.
