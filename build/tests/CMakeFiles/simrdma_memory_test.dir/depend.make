# Empty dependencies file for simrdma_memory_test.
# This may be replaced when dependencies are built.
