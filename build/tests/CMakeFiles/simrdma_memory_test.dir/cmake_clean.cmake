file(REMOVE_RECURSE
  "CMakeFiles/simrdma_memory_test.dir/simrdma/memory_test.cc.o"
  "CMakeFiles/simrdma_memory_test.dir/simrdma/memory_test.cc.o.d"
  "simrdma_memory_test"
  "simrdma_memory_test.pdb"
  "simrdma_memory_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simrdma_memory_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
