# Empty dependencies file for integration_churn_test.
# This may be replaced when dependencies are built.
