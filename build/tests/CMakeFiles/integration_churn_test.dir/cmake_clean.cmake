file(REMOVE_RECURSE
  "CMakeFiles/integration_churn_test.dir/integration/churn_test.cc.o"
  "CMakeFiles/integration_churn_test.dir/integration/churn_test.cc.o.d"
  "integration_churn_test"
  "integration_churn_test.pdb"
  "integration_churn_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_churn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
