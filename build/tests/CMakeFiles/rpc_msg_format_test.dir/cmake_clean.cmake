file(REMOVE_RECURSE
  "CMakeFiles/rpc_msg_format_test.dir/rpc/msg_format_test.cc.o"
  "CMakeFiles/rpc_msg_format_test.dir/rpc/msg_format_test.cc.o.d"
  "rpc_msg_format_test"
  "rpc_msg_format_test.pdb"
  "rpc_msg_format_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpc_msg_format_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
