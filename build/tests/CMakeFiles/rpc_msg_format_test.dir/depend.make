# Empty dependencies file for rpc_msg_format_test.
# This may be replaced when dependencies are built.
