# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for rpc_msg_format_test.
