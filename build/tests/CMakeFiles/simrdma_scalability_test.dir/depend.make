# Empty dependencies file for simrdma_scalability_test.
# This may be replaced when dependencies are built.
