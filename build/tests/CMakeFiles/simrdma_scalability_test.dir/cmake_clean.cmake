file(REMOVE_RECURSE
  "CMakeFiles/simrdma_scalability_test.dir/simrdma/scalability_test.cc.o"
  "CMakeFiles/simrdma_scalability_test.dir/simrdma/scalability_test.cc.o.d"
  "simrdma_scalability_test"
  "simrdma_scalability_test.pdb"
  "simrdma_scalability_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simrdma_scalability_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
