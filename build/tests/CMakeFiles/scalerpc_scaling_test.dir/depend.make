# Empty dependencies file for scalerpc_scaling_test.
# This may be replaced when dependencies are built.
