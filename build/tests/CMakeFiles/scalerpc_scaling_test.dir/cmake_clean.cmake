file(REMOVE_RECURSE
  "CMakeFiles/scalerpc_scaling_test.dir/scalerpc/scaling_test.cc.o"
  "CMakeFiles/scalerpc_scaling_test.dir/scalerpc/scaling_test.cc.o.d"
  "scalerpc_scaling_test"
  "scalerpc_scaling_test.pdb"
  "scalerpc_scaling_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scalerpc_scaling_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
