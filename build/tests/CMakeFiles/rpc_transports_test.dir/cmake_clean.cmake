file(REMOVE_RECURSE
  "CMakeFiles/rpc_transports_test.dir/rpc/transports_test.cc.o"
  "CMakeFiles/rpc_transports_test.dir/rpc/transports_test.cc.o.d"
  "rpc_transports_test"
  "rpc_transports_test.pdb"
  "rpc_transports_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpc_transports_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
