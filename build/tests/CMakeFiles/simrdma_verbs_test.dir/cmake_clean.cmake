file(REMOVE_RECURSE
  "CMakeFiles/simrdma_verbs_test.dir/simrdma/verbs_test.cc.o"
  "CMakeFiles/simrdma_verbs_test.dir/simrdma/verbs_test.cc.o.d"
  "simrdma_verbs_test"
  "simrdma_verbs_test.pdb"
  "simrdma_verbs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simrdma_verbs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
