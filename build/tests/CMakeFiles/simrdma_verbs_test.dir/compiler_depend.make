# Empty compiler generated dependencies file for simrdma_verbs_test.
# This may be replaced when dependencies are built.
