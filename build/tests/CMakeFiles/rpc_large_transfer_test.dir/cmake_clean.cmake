file(REMOVE_RECURSE
  "CMakeFiles/rpc_large_transfer_test.dir/rpc/large_transfer_test.cc.o"
  "CMakeFiles/rpc_large_transfer_test.dir/rpc/large_transfer_test.cc.o.d"
  "rpc_large_transfer_test"
  "rpc_large_transfer_test.pdb"
  "rpc_large_transfer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpc_large_transfer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
