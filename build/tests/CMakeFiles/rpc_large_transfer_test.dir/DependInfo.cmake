
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/rpc/large_transfer_test.cc" "tests/CMakeFiles/rpc_large_transfer_test.dir/rpc/large_transfer_test.cc.o" "gcc" "tests/CMakeFiles/rpc_large_transfer_test.dir/rpc/large_transfer_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rpc/CMakeFiles/scalerpc_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/simrdma/CMakeFiles/scalerpc_simrdma.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/scalerpc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/scalerpc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
