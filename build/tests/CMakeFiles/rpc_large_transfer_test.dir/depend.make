# Empty dependencies file for rpc_large_transfer_test.
# This may be replaced when dependencies are built.
