# Empty compiler generated dependencies file for dfs_service_test.
# This may be replaced when dependencies are built.
