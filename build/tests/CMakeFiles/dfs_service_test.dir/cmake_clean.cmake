file(REMOVE_RECURSE
  "CMakeFiles/dfs_service_test.dir/dfs/service_test.cc.o"
  "CMakeFiles/dfs_service_test.dir/dfs/service_test.cc.o.d"
  "dfs_service_test"
  "dfs_service_test.pdb"
  "dfs_service_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfs_service_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
