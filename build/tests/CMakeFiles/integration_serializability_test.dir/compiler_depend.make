# Empty compiler generated dependencies file for integration_serializability_test.
# This may be replaced when dependencies are built.
