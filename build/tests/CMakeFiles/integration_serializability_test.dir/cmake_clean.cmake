file(REMOVE_RECURSE
  "CMakeFiles/integration_serializability_test.dir/integration/serializability_test.cc.o"
  "CMakeFiles/integration_serializability_test.dir/integration/serializability_test.cc.o.d"
  "integration_serializability_test"
  "integration_serializability_test.pdb"
  "integration_serializability_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_serializability_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
