# Empty dependencies file for scalerpc_server_test.
# This may be replaced when dependencies are built.
