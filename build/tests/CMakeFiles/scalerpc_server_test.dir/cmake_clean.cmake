file(REMOVE_RECURSE
  "CMakeFiles/scalerpc_server_test.dir/scalerpc/server_test.cc.o"
  "CMakeFiles/scalerpc_server_test.dir/scalerpc/server_test.cc.o.d"
  "scalerpc_server_test"
  "scalerpc_server_test.pdb"
  "scalerpc_server_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scalerpc_server_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
