# Empty dependencies file for kv_hashstore_test.
# This may be replaced when dependencies are built.
