file(REMOVE_RECURSE
  "CMakeFiles/kv_hashstore_test.dir/kv/hashstore_test.cc.o"
  "CMakeFiles/kv_hashstore_test.dir/kv/hashstore_test.cc.o.d"
  "kv_hashstore_test"
  "kv_hashstore_test.pdb"
  "kv_hashstore_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kv_hashstore_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
