# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_stats_test[1]_include.cmake")
include("/root/repo/build/tests/common_rng_test[1]_include.cmake")
include("/root/repo/build/tests/sim_event_loop_test[1]_include.cmake")
include("/root/repo/build/tests/sim_task_test[1]_include.cmake")
include("/root/repo/build/tests/sim_sync_test[1]_include.cmake")
include("/root/repo/build/tests/simrdma_llc_test[1]_include.cmake")
include("/root/repo/build/tests/simrdma_nic_cache_test[1]_include.cmake")
include("/root/repo/build/tests/simrdma_memory_test[1]_include.cmake")
include("/root/repo/build/tests/simrdma_verbs_test[1]_include.cmake")
include("/root/repo/build/tests/simrdma_scalability_test[1]_include.cmake")
include("/root/repo/build/tests/rpc_msg_format_test[1]_include.cmake")
include("/root/repo/build/tests/rpc_transports_test[1]_include.cmake")
include("/root/repo/build/tests/scalerpc_scheduler_test[1]_include.cmake")
include("/root/repo/build/tests/scalerpc_server_test[1]_include.cmake")
include("/root/repo/build/tests/scalerpc_timesync_test[1]_include.cmake")
include("/root/repo/build/tests/scalerpc_scaling_test[1]_include.cmake")
include("/root/repo/build/tests/kv_hashstore_test[1]_include.cmake")
include("/root/repo/build/tests/dfs_metadata_test[1]_include.cmake")
include("/root/repo/build/tests/dfs_service_test[1]_include.cmake")
include("/root/repo/build/tests/txn_test[1]_include.cmake")
include("/root/repo/build/tests/integration_serializability_test[1]_include.cmake")
include("/root/repo/build/tests/integration_determinism_test[1]_include.cmake")
include("/root/repo/build/tests/integration_fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/integration_churn_test[1]_include.cmake")
include("/root/repo/build/tests/simrdma_llc_property_test[1]_include.cmake")
include("/root/repo/build/tests/rpc_large_transfer_test[1]_include.cmake")
