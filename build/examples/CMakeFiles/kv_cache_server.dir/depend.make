# Empty dependencies file for kv_cache_server.
# This may be replaced when dependencies are built.
