file(REMOVE_RECURSE
  "CMakeFiles/kv_cache_server.dir/kv_cache_server.cpp.o"
  "CMakeFiles/kv_cache_server.dir/kv_cache_server.cpp.o.d"
  "kv_cache_server"
  "kv_cache_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kv_cache_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
