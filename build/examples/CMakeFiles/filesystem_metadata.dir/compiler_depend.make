# Empty compiler generated dependencies file for filesystem_metadata.
# This may be replaced when dependencies are built.
