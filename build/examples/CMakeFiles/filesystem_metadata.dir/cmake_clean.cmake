file(REMOVE_RECURSE
  "CMakeFiles/filesystem_metadata.dir/filesystem_metadata.cpp.o"
  "CMakeFiles/filesystem_metadata.dir/filesystem_metadata.cpp.o.d"
  "filesystem_metadata"
  "filesystem_metadata.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/filesystem_metadata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
