file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_verbs.dir/bench_table1_verbs.cc.o"
  "CMakeFiles/bench_table1_verbs.dir/bench_table1_verbs.cc.o.d"
  "bench_table1_verbs"
  "bench_table1_verbs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_verbs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
