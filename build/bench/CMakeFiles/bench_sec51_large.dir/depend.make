# Empty dependencies file for bench_sec51_large.
# This may be replaced when dependencies are built.
