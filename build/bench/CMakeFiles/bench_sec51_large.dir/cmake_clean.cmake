file(REMOVE_RECURSE
  "CMakeFiles/bench_sec51_large.dir/bench_sec51_large.cc.o"
  "CMakeFiles/bench_sec51_large.dir/bench_sec51_large.cc.o.d"
  "bench_sec51_large"
  "bench_sec51_large.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec51_large.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
