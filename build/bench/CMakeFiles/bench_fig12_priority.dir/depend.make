# Empty dependencies file for bench_fig12_priority.
# This may be replaced when dependencies are built.
