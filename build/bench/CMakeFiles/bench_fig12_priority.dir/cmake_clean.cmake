file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_priority.dir/bench_fig12_priority.cc.o"
  "CMakeFiles/bench_fig12_priority.dir/bench_fig12_priority.cc.o.d"
  "bench_fig12_priority"
  "bench_fig12_priority.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_priority.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
