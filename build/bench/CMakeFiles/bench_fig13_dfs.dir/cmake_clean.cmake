file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_dfs.dir/bench_fig13_dfs.cc.o"
  "CMakeFiles/bench_fig13_dfs.dir/bench_fig13_dfs.cc.o.d"
  "bench_fig13_dfs"
  "bench_fig13_dfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_dfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
