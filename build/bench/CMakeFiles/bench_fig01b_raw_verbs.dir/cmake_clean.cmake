file(REMOVE_RECURSE
  "CMakeFiles/bench_fig01b_raw_verbs.dir/bench_fig01b_raw_verbs.cc.o"
  "CMakeFiles/bench_fig01b_raw_verbs.dir/bench_fig01b_raw_verbs.cc.o.d"
  "bench_fig01b_raw_verbs"
  "bench_fig01b_raw_verbs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig01b_raw_verbs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
