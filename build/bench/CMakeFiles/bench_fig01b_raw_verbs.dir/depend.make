# Empty dependencies file for bench_fig01b_raw_verbs.
# This may be replaced when dependencies are built.
