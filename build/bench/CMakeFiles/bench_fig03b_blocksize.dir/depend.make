# Empty dependencies file for bench_fig03b_blocksize.
# This may be replaced when dependencies are built.
