file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_counters.dir/bench_fig10_counters.cc.o"
  "CMakeFiles/bench_fig10_counters.dir/bench_fig10_counters.cc.o.d"
  "bench_fig10_counters"
  "bench_fig10_counters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_counters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
