# Empty dependencies file for bench_fig10_counters.
# This may be replaced when dependencies are built.
