# Empty dependencies file for bench_fig16_scaletx.
# This may be replaced when dependencies are built.
