file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_scaletx.dir/bench_fig16_scaletx.cc.o"
  "CMakeFiles/bench_fig16_scaletx.dir/bench_fig16_scaletx.cc.o.d"
  "bench_fig16_scaletx"
  "bench_fig16_scaletx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_scaletx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
