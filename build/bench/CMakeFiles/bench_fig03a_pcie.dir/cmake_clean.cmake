file(REMOVE_RECURSE
  "CMakeFiles/bench_fig03a_pcie.dir/bench_fig03a_pcie.cc.o"
  "CMakeFiles/bench_fig03a_pcie.dir/bench_fig03a_pcie.cc.o.d"
  "bench_fig03a_pcie"
  "bench_fig03a_pcie.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03a_pcie.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
