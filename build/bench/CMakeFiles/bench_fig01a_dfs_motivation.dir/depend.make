# Empty dependencies file for bench_fig01a_dfs_motivation.
# This may be replaced when dependencies are built.
