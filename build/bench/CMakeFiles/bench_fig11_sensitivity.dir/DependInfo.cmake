
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig11_sensitivity.cc" "bench/CMakeFiles/bench_fig11_sensitivity.dir/bench_fig11_sensitivity.cc.o" "gcc" "bench/CMakeFiles/bench_fig11_sensitivity.dir/bench_fig11_sensitivity.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/scalerpc_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/scalerpc/CMakeFiles/scalerpc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/scalerpc_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/rpc/CMakeFiles/scalerpc_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/simrdma/CMakeFiles/scalerpc_simrdma.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/scalerpc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/scalerpc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
