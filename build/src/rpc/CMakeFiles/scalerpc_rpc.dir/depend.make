# Empty dependencies file for scalerpc_rpc.
# This may be replaced when dependencies are built.
