file(REMOVE_RECURSE
  "CMakeFiles/scalerpc_rpc.dir/large_transfer.cc.o"
  "CMakeFiles/scalerpc_rpc.dir/large_transfer.cc.o.d"
  "CMakeFiles/scalerpc_rpc.dir/msg_format.cc.o"
  "CMakeFiles/scalerpc_rpc.dir/msg_format.cc.o.d"
  "CMakeFiles/scalerpc_rpc.dir/rpc.cc.o"
  "CMakeFiles/scalerpc_rpc.dir/rpc.cc.o.d"
  "libscalerpc_rpc.a"
  "libscalerpc_rpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scalerpc_rpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
