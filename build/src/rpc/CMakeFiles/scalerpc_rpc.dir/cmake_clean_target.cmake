file(REMOVE_RECURSE
  "libscalerpc_rpc.a"
)
