file(REMOVE_RECURSE
  "libscalerpc_baselines.a"
)
