file(REMOVE_RECURSE
  "CMakeFiles/scalerpc_baselines.dir/fasst.cc.o"
  "CMakeFiles/scalerpc_baselines.dir/fasst.cc.o.d"
  "CMakeFiles/scalerpc_baselines.dir/herd.cc.o"
  "CMakeFiles/scalerpc_baselines.dir/herd.cc.o.d"
  "CMakeFiles/scalerpc_baselines.dir/rawwrite.cc.o"
  "CMakeFiles/scalerpc_baselines.dir/rawwrite.cc.o.d"
  "CMakeFiles/scalerpc_baselines.dir/selfrpc.cc.o"
  "CMakeFiles/scalerpc_baselines.dir/selfrpc.cc.o.d"
  "libscalerpc_baselines.a"
  "libscalerpc_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scalerpc_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
