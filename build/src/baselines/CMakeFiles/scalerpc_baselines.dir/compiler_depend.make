# Empty compiler generated dependencies file for scalerpc_baselines.
# This may be replaced when dependencies are built.
