# Empty dependencies file for scalerpc_kv.
# This may be replaced when dependencies are built.
