file(REMOVE_RECURSE
  "libscalerpc_kv.a"
)
