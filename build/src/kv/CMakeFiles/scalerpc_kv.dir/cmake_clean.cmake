file(REMOVE_RECURSE
  "CMakeFiles/scalerpc_kv.dir/hashstore.cc.o"
  "CMakeFiles/scalerpc_kv.dir/hashstore.cc.o.d"
  "libscalerpc_kv.a"
  "libscalerpc_kv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scalerpc_kv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
