file(REMOVE_RECURSE
  "CMakeFiles/scalerpc_sim.dir/event_loop.cc.o"
  "CMakeFiles/scalerpc_sim.dir/event_loop.cc.o.d"
  "libscalerpc_sim.a"
  "libscalerpc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scalerpc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
