file(REMOVE_RECURSE
  "libscalerpc_sim.a"
)
