# Empty compiler generated dependencies file for scalerpc_sim.
# This may be replaced when dependencies are built.
