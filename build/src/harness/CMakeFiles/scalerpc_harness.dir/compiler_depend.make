# Empty compiler generated dependencies file for scalerpc_harness.
# This may be replaced when dependencies are built.
