file(REMOVE_RECURSE
  "libscalerpc_harness.a"
)
