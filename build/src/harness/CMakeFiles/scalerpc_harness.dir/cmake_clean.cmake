file(REMOVE_RECURSE
  "CMakeFiles/scalerpc_harness.dir/harness.cc.o"
  "CMakeFiles/scalerpc_harness.dir/harness.cc.o.d"
  "CMakeFiles/scalerpc_harness.dir/rawverbs.cc.o"
  "CMakeFiles/scalerpc_harness.dir/rawverbs.cc.o.d"
  "libscalerpc_harness.a"
  "libscalerpc_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scalerpc_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
