file(REMOVE_RECURSE
  "CMakeFiles/scalerpc_txn.dir/coordinator.cc.o"
  "CMakeFiles/scalerpc_txn.dir/coordinator.cc.o.d"
  "CMakeFiles/scalerpc_txn.dir/participant.cc.o"
  "CMakeFiles/scalerpc_txn.dir/participant.cc.o.d"
  "CMakeFiles/scalerpc_txn.dir/testbed.cc.o"
  "CMakeFiles/scalerpc_txn.dir/testbed.cc.o.d"
  "CMakeFiles/scalerpc_txn.dir/workloads.cc.o"
  "CMakeFiles/scalerpc_txn.dir/workloads.cc.o.d"
  "libscalerpc_txn.a"
  "libscalerpc_txn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scalerpc_txn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
