# Empty dependencies file for scalerpc_txn.
# This may be replaced when dependencies are built.
