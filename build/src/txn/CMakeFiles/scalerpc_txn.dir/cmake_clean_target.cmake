file(REMOVE_RECURSE
  "libscalerpc_txn.a"
)
