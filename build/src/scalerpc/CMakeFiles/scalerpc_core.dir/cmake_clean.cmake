file(REMOVE_RECURSE
  "CMakeFiles/scalerpc_core.dir/client.cc.o"
  "CMakeFiles/scalerpc_core.dir/client.cc.o.d"
  "CMakeFiles/scalerpc_core.dir/scheduler.cc.o"
  "CMakeFiles/scalerpc_core.dir/scheduler.cc.o.d"
  "CMakeFiles/scalerpc_core.dir/server.cc.o"
  "CMakeFiles/scalerpc_core.dir/server.cc.o.d"
  "CMakeFiles/scalerpc_core.dir/timesync.cc.o"
  "CMakeFiles/scalerpc_core.dir/timesync.cc.o.d"
  "libscalerpc_core.a"
  "libscalerpc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scalerpc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
