# Empty dependencies file for scalerpc_core.
# This may be replaced when dependencies are built.
