file(REMOVE_RECURSE
  "libscalerpc_core.a"
)
