file(REMOVE_RECURSE
  "libscalerpc_simrdma.a"
)
