# Empty dependencies file for scalerpc_simrdma.
# This may be replaced when dependencies are built.
