file(REMOVE_RECURSE
  "CMakeFiles/scalerpc_simrdma.dir/cluster.cc.o"
  "CMakeFiles/scalerpc_simrdma.dir/cluster.cc.o.d"
  "CMakeFiles/scalerpc_simrdma.dir/llc.cc.o"
  "CMakeFiles/scalerpc_simrdma.dir/llc.cc.o.d"
  "CMakeFiles/scalerpc_simrdma.dir/memory.cc.o"
  "CMakeFiles/scalerpc_simrdma.dir/memory.cc.o.d"
  "CMakeFiles/scalerpc_simrdma.dir/nic.cc.o"
  "CMakeFiles/scalerpc_simrdma.dir/nic.cc.o.d"
  "CMakeFiles/scalerpc_simrdma.dir/node.cc.o"
  "CMakeFiles/scalerpc_simrdma.dir/node.cc.o.d"
  "CMakeFiles/scalerpc_simrdma.dir/verbs.cc.o"
  "CMakeFiles/scalerpc_simrdma.dir/verbs.cc.o.d"
  "libscalerpc_simrdma.a"
  "libscalerpc_simrdma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scalerpc_simrdma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
