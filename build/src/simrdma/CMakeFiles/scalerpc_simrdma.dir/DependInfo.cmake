
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simrdma/cluster.cc" "src/simrdma/CMakeFiles/scalerpc_simrdma.dir/cluster.cc.o" "gcc" "src/simrdma/CMakeFiles/scalerpc_simrdma.dir/cluster.cc.o.d"
  "/root/repo/src/simrdma/llc.cc" "src/simrdma/CMakeFiles/scalerpc_simrdma.dir/llc.cc.o" "gcc" "src/simrdma/CMakeFiles/scalerpc_simrdma.dir/llc.cc.o.d"
  "/root/repo/src/simrdma/memory.cc" "src/simrdma/CMakeFiles/scalerpc_simrdma.dir/memory.cc.o" "gcc" "src/simrdma/CMakeFiles/scalerpc_simrdma.dir/memory.cc.o.d"
  "/root/repo/src/simrdma/nic.cc" "src/simrdma/CMakeFiles/scalerpc_simrdma.dir/nic.cc.o" "gcc" "src/simrdma/CMakeFiles/scalerpc_simrdma.dir/nic.cc.o.d"
  "/root/repo/src/simrdma/node.cc" "src/simrdma/CMakeFiles/scalerpc_simrdma.dir/node.cc.o" "gcc" "src/simrdma/CMakeFiles/scalerpc_simrdma.dir/node.cc.o.d"
  "/root/repo/src/simrdma/verbs.cc" "src/simrdma/CMakeFiles/scalerpc_simrdma.dir/verbs.cc.o" "gcc" "src/simrdma/CMakeFiles/scalerpc_simrdma.dir/verbs.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/scalerpc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/scalerpc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
