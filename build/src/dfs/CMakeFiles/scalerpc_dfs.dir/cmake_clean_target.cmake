file(REMOVE_RECURSE
  "libscalerpc_dfs.a"
)
