# Empty compiler generated dependencies file for scalerpc_dfs.
# This may be replaced when dependencies are built.
