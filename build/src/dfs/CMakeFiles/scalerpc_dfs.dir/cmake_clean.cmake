file(REMOVE_RECURSE
  "CMakeFiles/scalerpc_dfs.dir/metadata.cc.o"
  "CMakeFiles/scalerpc_dfs.dir/metadata.cc.o.d"
  "CMakeFiles/scalerpc_dfs.dir/service.cc.o"
  "CMakeFiles/scalerpc_dfs.dir/service.cc.o.d"
  "CMakeFiles/scalerpc_dfs.dir/workload.cc.o"
  "CMakeFiles/scalerpc_dfs.dir/workload.cc.o.d"
  "libscalerpc_dfs.a"
  "libscalerpc_dfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scalerpc_dfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
