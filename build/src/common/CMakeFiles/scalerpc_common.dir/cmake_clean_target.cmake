file(REMOVE_RECURSE
  "libscalerpc_common.a"
)
