# Empty compiler generated dependencies file for scalerpc_common.
# This may be replaced when dependencies are built.
