file(REMOVE_RECURSE
  "CMakeFiles/scalerpc_common.dir/logging.cc.o"
  "CMakeFiles/scalerpc_common.dir/logging.cc.o.d"
  "CMakeFiles/scalerpc_common.dir/rng.cc.o"
  "CMakeFiles/scalerpc_common.dir/rng.cc.o.d"
  "CMakeFiles/scalerpc_common.dir/stats.cc.o"
  "CMakeFiles/scalerpc_common.dir/stats.cc.o.d"
  "libscalerpc_common.a"
  "libscalerpc_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scalerpc_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
