// DFS over RPC transports end-to-end (Fig. 1a / 13 substrate), including an
// mdtest smoke run on selfRPC and ScaleRPC.
#include <gtest/gtest.h>

#include "src/dfs/workload.h"

namespace scalerpc::dfs {
namespace {

using harness::Testbed;
using harness::TestbedConfig;
using harness::TransportKind;

TestbedConfig dfs_config(TransportKind kind, int clients) {
  TestbedConfig cfg;
  cfg.kind = kind;
  cfg.num_clients = clients;
  cfg.num_client_nodes = 4;
  cfg.rpc.group_size = 8;
  return cfg;
}

TEST(DfsService, FullLifecycleOverScaleRpc) {
  Testbed bed(dfs_config(TransportKind::kScaleRpc, 1));
  MetadataStore store;
  register_metadata_service(&bed.server(), &store, &bed.loop());
  bed.server().start();

  DfsClient client(&bed.client(0));
  auto body = [&]() -> sim::Task<void> {
    EXPECT_EQ(co_await client.mkdir("/home"), DfsStatus::kOk);
    EXPECT_EQ(co_await client.mknod("/home/a.txt"), DfsStatus::kOk);
    EXPECT_EQ(co_await client.mknod("/home/b.txt"), DfsStatus::kOk);
    EXPECT_EQ(co_await client.mknod("/home/a.txt"), DfsStatus::kExists);

    Attributes attrs;
    EXPECT_EQ(co_await client.stat("/home/a.txt", &attrs), DfsStatus::kOk);
    EXPECT_EQ(attrs.type, FileType::kFile);

    std::vector<std::string> names;
    EXPECT_EQ(co_await client.readdir("/home", &names), DfsStatus::kOk);
    EXPECT_EQ(names, (std::vector<std::string>{"a.txt", "b.txt"}));

    EXPECT_EQ(co_await client.rmnod("/home/a.txt"), DfsStatus::kOk);
    EXPECT_EQ(co_await client.stat("/home/a.txt", &attrs), DfsStatus::kNotFound);
  };
  auto t = body();
  sim::run_blocking(bed.loop(), std::move(t));
}

TEST(DfsService, ErrorsPropagateOverSelfRpc) {
  Testbed bed(dfs_config(TransportKind::kSelfRpc, 1));
  MetadataStore store;
  register_metadata_service(&bed.server(), &store, &bed.loop());
  bed.server().start();

  DfsClient client(&bed.client(0));
  auto body = [&]() -> sim::Task<void> {
    EXPECT_EQ(co_await client.rmnod("/ghost"), DfsStatus::kNotFound);
    EXPECT_EQ(co_await client.mknod("/a/b"), DfsStatus::kNotFound);
    std::vector<std::string> names;
    EXPECT_EQ(co_await client.readdir("/ghost", &names), DfsStatus::kNotFound);
  };
  auto t = body();
  sim::run_blocking(bed.loop(), std::move(t));
}

class MdtestTransportTest : public ::testing::TestWithParam<TransportKind> {};

TEST_P(MdtestTransportTest, SmokeRunCompletesAndReportsSaneRates) {
  Testbed bed(dfs_config(GetParam(), 8));
  MdtestConfig cfg;
  cfg.files_per_client = 24;
  cfg.batch = 4;
  cfg.stat_rounds = 2;
  cfg.readdir_rounds = 8;
  const MdtestResult r = run_mdtest(bed, cfg);
  EXPECT_GT(r.mknod_mops, 0.0);
  EXPECT_GT(r.stat_mops, 0.0);
  EXPECT_GT(r.readdir_mops, 0.0);
  EXPECT_GT(r.rmnod_mops, 0.0);
  // Read ops are software-cheap: they must outpace creates.
  EXPECT_GT(r.stat_mops, r.mknod_mops);
}

INSTANTIATE_TEST_SUITE_P(Transports, MdtestTransportTest,
                         ::testing::Values(TransportKind::kSelfRpc,
                                           TransportKind::kScaleRpc,
                                           TransportKind::kRawWrite),
                         [](const ::testing::TestParamInfo<TransportKind>& info) {
                           return std::string(harness::to_string(info.param));
                         });

}  // namespace
}  // namespace scalerpc::dfs
