#include "src/dfs/metadata.h"

#include <gtest/gtest.h>

namespace scalerpc::dfs {
namespace {

TEST(MetadataStore, RootExists) {
  MetadataStore store;
  Attributes attrs;
  EXPECT_EQ(store.stat("/", &attrs), DfsStatus::kOk);
  EXPECT_EQ(attrs.type, FileType::kDirectory);
}

TEST(MetadataStore, MknodStatRoundTrip) {
  MetadataStore store;
  EXPECT_EQ(store.mknod("/a", 100), DfsStatus::kOk);
  Attributes attrs;
  EXPECT_EQ(store.stat("/a", &attrs), DfsStatus::kOk);
  EXPECT_EQ(attrs.type, FileType::kFile);
  EXPECT_EQ(attrs.ctime, 100);
}

TEST(MetadataStore, MknodRequiresParent) {
  MetadataStore store;
  EXPECT_EQ(store.mknod("/no/such/dir/f", 0), DfsStatus::kNotFound);
}

TEST(MetadataStore, MknodRejectsDuplicates) {
  MetadataStore store;
  EXPECT_EQ(store.mknod("/a", 0), DfsStatus::kOk);
  EXPECT_EQ(store.mknod("/a", 0), DfsStatus::kExists);
}

TEST(MetadataStore, MknodRejectsFileParent) {
  MetadataStore store;
  store.mknod("/f", 0);
  EXPECT_EQ(store.mknod("/f/child", 0), DfsStatus::kNotDirectory);
}

TEST(MetadataStore, InvalidPaths) {
  MetadataStore store;
  EXPECT_EQ(store.mknod("", 0), DfsStatus::kInvalid);
  EXPECT_EQ(store.mknod("relative", 0), DfsStatus::kInvalid);
  EXPECT_EQ(store.mknod("/trailing/", 0), DfsStatus::kInvalid);
  EXPECT_EQ(store.mknod("/", 0), DfsStatus::kInvalid);
  EXPECT_EQ(store.rmnod("/"), DfsStatus::kInvalid);
}

TEST(MetadataStore, ReaddirListsChildrenSorted) {
  MetadataStore store;
  EXPECT_EQ(store.mkdir("/d", 0), DfsStatus::kOk);
  store.mknod("/d/b", 0);
  store.mknod("/d/a", 0);
  store.mknod("/d/c", 0);
  std::vector<std::string> names;
  EXPECT_EQ(store.readdir("/d", &names), DfsStatus::kOk);
  EXPECT_EQ(names, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(MetadataStore, ReaddirOnFileFails) {
  MetadataStore store;
  store.mknod("/f", 0);
  std::vector<std::string> names;
  EXPECT_EQ(store.readdir("/f", &names), DfsStatus::kNotDirectory);
}

TEST(MetadataStore, RmnodRemovesAndUpdatesParent) {
  MetadataStore store;
  store.mkdir("/d", 0);
  store.mknod("/d/f", 0);
  EXPECT_EQ(store.rmnod("/d/f"), DfsStatus::kOk);
  Attributes attrs;
  EXPECT_EQ(store.stat("/d/f", &attrs), DfsStatus::kNotFound);
  std::vector<std::string> names;
  store.readdir("/d", &names);
  EXPECT_TRUE(names.empty());
}

TEST(MetadataStore, RmnodRejectsNonEmptyDirectory) {
  MetadataStore store;
  store.mkdir("/d", 0);
  store.mknod("/d/f", 0);
  EXPECT_EQ(store.rmnod("/d"), DfsStatus::kNotEmpty);
  store.rmnod("/d/f");
  EXPECT_EQ(store.rmnod("/d"), DfsStatus::kOk);
}

TEST(MetadataStore, InodesAreUnique) {
  MetadataStore store;
  store.mknod("/a", 0);
  store.mknod("/b", 0);
  Attributes a;
  Attributes b;
  store.stat("/a", &a);
  store.stat("/b", &b);
  EXPECT_NE(a.inode, b.inode);
}

TEST(MetadataStore, UpdateOpsCostMoreThanReadOps) {
  // The paper's Fig. 1a premise: Mknod is software-bound, Stat is not.
  MetadataStore store;
  EXPECT_GT(store.mknod_cost(), 4 * store.stat_cost());
  EXPECT_GT(store.rmnod_cost(), 4 * store.readdir_cost(0));
}

}  // namespace
}  // namespace scalerpc::dfs
