#include "src/sim/sync.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/sim/event_loop.h"
#include "src/sim/task.h"

namespace scalerpc::sim {
namespace {

Task<void> wait_event(Event& e, std::vector<int>* order, int id) {
  co_await e.wait();
  order->push_back(id);
}

TEST(Event, SetWakesAllWaitersInParkOrder) {
  EventLoop loop;
  Event event(loop);
  std::vector<int> order;
  spawn(loop, wait_event(event, &order, 1));
  spawn(loop, wait_event(event, &order, 2));
  spawn(loop, wait_event(event, &order, 3));
  loop.run_until(10);
  EXPECT_TRUE(order.empty());
  event.set();
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Event, WaitAfterSetIsImmediate) {
  EventLoop loop;
  Event event(loop);
  event.set();
  std::vector<int> order;
  run_blocking(loop, wait_event(event, &order, 7));
  EXPECT_EQ(order, (std::vector<int>{7}));
}

TEST(Event, ResetBlocksAgain) {
  EventLoop loop;
  Event event(loop);
  event.set();
  event.reset();
  std::vector<int> order;
  spawn(loop, wait_event(event, &order, 1));
  loop.run_until(5);
  EXPECT_TRUE(order.empty());
  event.set();
  loop.run();
  EXPECT_EQ(order.size(), 1u);
}

Task<void> wait_notification(Notification& n, int* count) {
  co_await n.wait();
  (*count)++;
}

TEST(Notification, WakesExactlyOne) {
  EventLoop loop;
  Notification n(loop);
  int count = 0;
  spawn(loop, wait_notification(n, &count));
  spawn(loop, wait_notification(n, &count));
  loop.run_until(1);
  n.notify();
  loop.run_until(2);
  EXPECT_EQ(count, 1);
  n.notify();
  loop.run_until(3);
  EXPECT_EQ(count, 2);
}

TEST(Notification, StickyWhenNobodyWaiting) {
  EventLoop loop;
  Notification n(loop);
  n.notify();
  n.notify();  // coalesces: still a single token
  int count = 0;
  spawn(loop, wait_notification(n, &count));
  spawn(loop, wait_notification(n, &count));
  loop.run_until(1);
  EXPECT_EQ(count, 1);
}

Task<void> hold_semaphore(EventLoop& loop, Semaphore& sem, Nanos hold,
                          std::vector<Nanos>* acquire_times) {
  co_await sem.acquire();
  acquire_times->push_back(loop.now());
  co_await loop.delay(hold);
  sem.release();
}

TEST(Semaphore, LimitsConcurrency) {
  EventLoop loop;
  Semaphore sem(loop, 2);
  std::vector<Nanos> times;
  for (int i = 0; i < 6; ++i) {
    spawn(loop, hold_semaphore(loop, sem, 100, &times));
  }
  loop.run();
  ASSERT_EQ(times.size(), 6u);
  // Two at t=0, two at t=100, two at t=200.
  EXPECT_EQ(times, (std::vector<Nanos>{0, 0, 100, 100, 200, 200}));
}

TEST(Semaphore, ReleaseWithoutWaitersAccumulates) {
  EventLoop loop;
  Semaphore sem(loop, 0);
  sem.release();
  sem.release();
  EXPECT_EQ(sem.available(), 2);
  std::vector<Nanos> times;
  spawn(loop, hold_semaphore(loop, sem, 10, &times));
  loop.run();
  EXPECT_EQ(times.size(), 1u);
}

TEST(FifoResource, SerializesWhenSingleUnit) {
  EventLoop loop;
  FifoResource res(loop, 1);
  std::vector<Nanos> done_times;
  auto user = [](EventLoop& l, FifoResource& r, Nanos service,
                 std::vector<Nanos>* done) -> Task<void> {
    co_await r.use(service);
    done->push_back(l.now());
  };
  spawn(loop, user(loop, res, 10, &done_times));
  spawn(loop, user(loop, res, 20, &done_times));
  spawn(loop, user(loop, res, 5, &done_times));
  loop.run();
  EXPECT_EQ(done_times, (std::vector<Nanos>{10, 30, 35}));
}

TEST(FifoResource, ParallelUnitsOverlap) {
  EventLoop loop;
  FifoResource res(loop, 3);
  std::vector<Nanos> done_times;
  auto user = [](EventLoop& l, FifoResource& r, Nanos service,
                 std::vector<Nanos>* done) -> Task<void> {
    co_await r.use(service);
    done->push_back(l.now());
  };
  for (int i = 0; i < 3; ++i) {
    spawn(loop, user(loop, res, 50, &done_times));
  }
  loop.run();
  EXPECT_EQ(done_times, (std::vector<Nanos>{50, 50, 50}));
}

TEST(WaitQueue, WakeOneIsFifo) {
  EventLoop loop;
  Notification n(loop);
  std::vector<int> order;
  auto waiter = [](Notification& note, std::vector<int>* out, int id) -> Task<void> {
    co_await note.wait();
    out->push_back(id);
  };
  spawn(loop, waiter(n, &order, 1));
  spawn(loop, waiter(n, &order, 2));
  loop.run_until(1);
  n.notify();
  n.notify();
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

}  // namespace
}  // namespace scalerpc::sim
