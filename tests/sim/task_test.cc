#include "src/sim/task.h"

#include <gtest/gtest.h>

#include "src/sim/event_loop.h"

namespace scalerpc::sim {
namespace {

Task<int> returns_value() { co_return 42; }

Task<int> adds(EventLoop& loop, int a, int b) {
  co_await loop.delay(10);
  co_return a + b;
}

Task<int> nested(EventLoop& loop) {
  const int x = co_await adds(loop, 1, 2);
  const int y = co_await adds(loop, x, 10);
  co_return y;
}

TEST(Task, RunBlockingReturnsValue) {
  EventLoop loop;
  EXPECT_EQ(run_blocking(loop, returns_value()), 42);
}

TEST(Task, DelayAdvancesSimTime) {
  EventLoop loop;
  const int sum = run_blocking(loop, adds(loop, 2, 3));
  EXPECT_EQ(sum, 5);
  EXPECT_EQ(loop.now(), 10);
}

TEST(Task, NestedAwaitComposes) {
  EventLoop loop;
  EXPECT_EQ(run_blocking(loop, nested(loop)), 13);
  EXPECT_EQ(loop.now(), 20);
}

Task<void> increments(EventLoop& loop, int* counter, Nanos period, int times) {
  for (int i = 0; i < times; ++i) {
    co_await loop.delay(period);
    (*counter)++;
  }
}

TEST(Task, SpawnedTasksInterleaveByTime) {
  EventLoop loop;
  int a = 0;
  int b = 0;
  spawn(loop, increments(loop, &a, 10, 5));
  spawn(loop, increments(loop, &b, 25, 2));
  loop.run_until(30);
  EXPECT_EQ(a, 3);
  EXPECT_EQ(b, 1);
  loop.run();
  EXPECT_EQ(a, 5);
  EXPECT_EQ(b, 2);
}

TEST(Task, UnstartedTaskDestructsCleanly) {
  // A task that is created but never awaited/spawned must free its frame.
  EventLoop loop;
  {
    auto t = adds(loop, 1, 1);
    EXPECT_TRUE(t.valid());
  }
  EXPECT_FALSE(loop.step());
}

TEST(Task, MoveTransfersOwnership) {
  EventLoop loop;
  auto t = returns_value();
  Task<int> u = std::move(t);
  EXPECT_FALSE(t.valid());  // NOLINT(bugprone-use-after-move): testing move semantics
  EXPECT_TRUE(u.valid());
  EXPECT_EQ(run_blocking(loop, std::move(u)), 42);
}

Task<void> waits_forever(EventLoop& loop) {
  // Suspend at a time far in the future; the loop never reaches it in this
  // test, exercising the "leaked detached frame" shutdown path.
  co_await loop.delay(1'000'000'000);
}

TEST(Task, DetachedTaskPastHorizonDoesNotCrash) {
  EventLoop loop;
  spawn(loop, waits_forever(loop));
  loop.run_until(100);
  EXPECT_EQ(loop.pending(), 1u);
}

Task<void> spawner(EventLoop& loop, int* counter) {
  // Spawning from inside a task must work (servers spawn per-connection
  // actors).
  spawn(loop, increments(loop, counter, 1, 3));
  co_await loop.delay(5);
}

TEST(Task, SpawnFromWithinTask) {
  EventLoop loop;
  int counter = 0;
  run_blocking(loop, spawner(loop, &counter));
  EXPECT_EQ(counter, 3);
}

TEST(Task, ManySequentialAwaitsDoNotOverflowStack) {
  EventLoop loop;
  auto deep = [](EventLoop& l) -> Task<int> {
    int total = 0;
    for (int i = 0; i < 100000; ++i) {
      total += co_await adds(l, 0, 1);
    }
    co_return total;
  };
  EXPECT_EQ(run_blocking(loop, deep(loop)), 100000);
}

}  // namespace
}  // namespace scalerpc::sim
