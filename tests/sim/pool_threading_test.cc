// BytePool's freelists are thread_local so independent simulations can run
// on concurrent threads (the parallel sweep engine). These tests prove the
// two properties that makes safe:
//   1. per-thread accounting balances — every block allocated on a thread
//      is released on that same thread, nothing leaks across;
//   2. concurrent runs compute bit-identical results to serial runs.
#include "src/sim/pool.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "src/common/rng.h"
#include "src/sim/event_loop.h"
#include "src/sim/task.h"

namespace scalerpc::sim {
namespace {

// A miniature simulation: four coroutines churn pooled payload buffers of
// mixed size classes (including oversize > 4 KiB) on staggered delays, the
// same alloc/release pattern the RDMA hot path produces. Returns a checksum
// over every byte written so two runs can be compared exactly.
uint64_t churn_once(uint64_t seed) {
  EventLoop loop;
  uint64_t sum = 0;
  auto worker = [&loop, &sum](uint64_t s) -> Task<void> {
    Rng rng(s);
    for (int i = 0; i < 200; ++i) {
      PooledBytes buf;
      buf.resize(1 + rng.next() % 6000);  // spans pooled and oversize blocks
      for (uint8_t& b : buf) {
        b = static_cast<uint8_t>(rng.next());
      }
      co_await loop.delay(1 + rng.next() % 7);
      for (uint8_t b : buf) {
        sum += b;
      }
    }
  };
  for (uint64_t w = 0; w < 4; ++w) {
    spawn(loop, worker(seed + w));
  }
  loop.run();
  return sum;
}

TEST(PoolThreading, AccountingBalancesPerThread) {
  auto run_and_check = [](uint64_t seed, uint64_t* out) {
    // A fresh thread starts with empty thread_local state.
    EXPECT_EQ(BytePool::outstanding_blocks, 0u);
    *out = churn_once(seed);
    // Every transient the simulation allocated on this thread has been
    // released back to this thread's freelists.
    EXPECT_EQ(BytePool::outstanding_blocks, 0u);
    BytePool::drain_thread_cache();
    for (size_t b = 0; b < BytePool::kBuckets; ++b) {
      EXPECT_EQ(BytePool::free_lists[b], nullptr);
    }
  };
  uint64_t r1 = 0;
  uint64_t r2 = 0;
  std::thread t1(run_and_check, 11, &r1);
  std::thread t2(run_and_check, 22, &r2);
  t1.join();
  t2.join();
  EXPECT_NE(r1, 0u);
  EXPECT_NE(r2, 0u);
}

TEST(PoolThreading, ConcurrentRunsMatchSerial) {
  // Serial reference on the main thread.
  const uint64_t serial_a = churn_once(101);
  const uint64_t serial_b = churn_once(202);
  // Same two simulations, concurrently on two threads.
  uint64_t conc_a = 0;
  uint64_t conc_b = 0;
  std::thread ta([&conc_a] { conc_a = churn_once(101); });
  std::thread tb([&conc_b] { conc_b = churn_once(202); });
  ta.join();
  tb.join();
  EXPECT_EQ(conc_a, serial_a);
  EXPECT_EQ(conc_b, serial_b);
}

TEST(PoolThreading, ManyThreadsManyRuns) {
  // Each thread runs several simulations back to back, reusing its own
  // freelists; results must still match the serial reference.
  constexpr int kThreads = 4;
  constexpr int kRunsPerThread = 3;
  uint64_t expected[kThreads][kRunsPerThread];
  for (int t = 0; t < kThreads; ++t) {
    for (int r = 0; r < kRunsPerThread; ++r) {
      expected[t][r] = churn_once(1000 + t * 100 + r);
    }
  }
  uint64_t got[kThreads][kRunsPerThread] = {};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &got] {
      for (int r = 0; r < kRunsPerThread; ++r) {
        got[t][r] = churn_once(1000 + t * 100 + r);
      }
      BytePool::drain_thread_cache();
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  for (int t = 0; t < kThreads; ++t) {
    for (int r = 0; r < kRunsPerThread; ++r) {
      EXPECT_EQ(got[t][r], expected[t][r]) << "thread " << t << " run " << r;
    }
  }
}

}  // namespace
}  // namespace scalerpc::sim
