#include "src/sim/event_loop.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <set>
#include <utility>
#include <vector>

namespace scalerpc::sim {
namespace {

TEST(EventLoop, StartsAtZero) {
  EventLoop loop;
  EXPECT_EQ(loop.now(), 0);
  EXPECT_EQ(loop.pending(), 0u);
  EXPECT_FALSE(loop.step());
}

TEST(EventLoop, CallbacksFireInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.call_at(30, [&] { order.push_back(3); });
  loop.call_at(10, [&] { order.push_back(1); });
  loop.call_at(20, [&] { order.push_back(2); });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.now(), 30);
}

TEST(EventLoop, SameTimeFifoOrder) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    loop.call_at(5, [&order, i] { order.push_back(i); });
  }
  loop.run();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
}

TEST(EventLoop, RunUntilStopsAtBoundaryInclusive) {
  EventLoop loop;
  int fired = 0;
  loop.call_at(10, [&] { fired++; });
  loop.call_at(20, [&] { fired++; });
  loop.call_at(21, [&] { fired++; });
  loop.run_until(20);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(loop.now(), 20);
  EXPECT_EQ(loop.pending(), 1u);
}

TEST(EventLoop, RunUntilAdvancesClockWhenIdle) {
  EventLoop loop;
  loop.run_until(1000);
  EXPECT_EQ(loop.now(), 1000);
}

TEST(EventLoop, NestedScheduling) {
  EventLoop loop;
  std::vector<Nanos> times;
  loop.call_at(10, [&] {
    times.push_back(loop.now());
    loop.call_in(5, [&] { times.push_back(loop.now()); });
  });
  loop.run();
  EXPECT_EQ(times, (std::vector<Nanos>{10, 15}));
}

TEST(EventLoopDeathTest, SchedulingInThePastAborts) {
  EventLoop loop;
  loop.call_at(100, [] {});
  loop.run();
  EXPECT_DEATH(loop.call_at(50, [] {}), "CHECK failed");
}

// --- Timing-wheel regressions. ---
// The wheel (6 levels x 256 slots + overflow heap) must fire in exactly
// (time, insertion-seq) order — the same order as the original
// priority-queue loop — including cascades between levels, bucket starts
// tied across several levels, events scheduled at the current instant while
// the cursor sits mid-cascade, and far-future events migrating out of the
// overflow heap.

TEST(EventLoopWheel, SameTimeTiesAcrossCascadePreserveFifo) {
  EventLoop loop;
  std::vector<int> order;
  // All at one far time (level >= 2 on insertion, cascades down to level 0),
  // interleaved with events at other times so the slot is built up in
  // several passes.
  const Nanos t = 0x123456;
  for (int i = 0; i < 50; ++i) {
    loop.call_at(t, [&order, i] { order.push_back(i); });
    loop.call_at(0x1000 + i, [] {});
    loop.call_at(0x200000 + i, [] {});
  }
  loop.run();
  ASSERT_EQ(order.size(), 50u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
}

TEST(EventLoopWheel, FarFutureOverflowMigratesAndFiresInOrder) {
  EventLoop loop;
  std::vector<int> order;
  // Beyond the 2^48 ns wheel span: these sit in the overflow heap first.
  loop.call_at(Nanos{1} << 49, [&] { order.push_back(3); });
  loop.call_at((Nanos{1} << 48) + 5, [&] { order.push_back(2); });
  loop.call_at((Nanos{1} << 48) + 5, [&] { order.push_back(20); });  // tie
  loop.call_at(1000, [&] { order.push_back(1); });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 20, 3}));
  EXPECT_EQ(loop.now(), Nanos{1} << 49);
}

TEST(EventLoopWheel, RunUntilJumpsAcrossEmptySpans) {
  EventLoop loop;
  loop.run_until(Nanos{1} << 50);
  EXPECT_EQ(loop.now(), Nanos{1} << 50);
  int fired = 0;
  loop.call_in(7, [&] { fired++; });
  loop.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(loop.now(), (Nanos{1} << 50) + 7);
}

namespace wheel_oracle {

uint64_t mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Deterministic workload: event `id` spawns children_of(id) children with
// delta_of(id, k) offsets from its own firing time. Ties (delta 0) are
// common on purpose: scheduling at the current instant while the cursor
// rests mid-bucket is what the historical stranding bug needed.
int children_of(uint64_t seed, int id, int total_so_far, int cap) {
  if (total_so_far >= cap) {
    return 0;
  }
  return static_cast<int>(mix(seed ^ static_cast<uint64_t>(id)) % 3);
}

Nanos delta_of(uint64_t seed, int id, int k, int max_exp) {
  const uint64_t h = mix(seed ^ (static_cast<uint64_t>(id) << 20) ^
                         static_cast<uint64_t>(k));
  const int exp = static_cast<int>(h % static_cast<uint64_t>(max_exp + 1));
  return static_cast<Nanos>(mix(h) & ((uint64_t{1} << exp) - 1));
}

// Replays the workload against a sorted-set oracle with explicit
// (time, insertion-seq) keys and against the real EventLoop; the two firing
// sequences must match element for element.
void run_oracle(uint64_t seed, int max_exp, int n_init, int cap) {
  // Oracle pass.
  std::vector<int> expected;
  {
    std::set<std::pair<std::pair<Nanos, uint64_t>, int>> pending;
    uint64_t seq = 0;
    int next_id = 0;
    int inserted = 0;
    for (; next_id < n_init; ++next_id) {
      pending.insert({{delta_of(seed, -1 - next_id, 0, max_exp), seq++}, next_id});
      inserted++;
    }
    while (!pending.empty()) {
      const auto it = pending.begin();
      const Nanos at = it->first.first;
      const int id = it->second;
      pending.erase(it);
      expected.push_back(id);
      const int kids = children_of(seed, id, inserted, cap);
      for (int k = 0; k < kids; ++k) {
        pending.insert({{at + delta_of(seed, id, k, max_exp), seq++}, next_id++});
        inserted++;
      }
    }
  }

  // Live pass.
  std::vector<int> fired;
  {
    EventLoop loop;
    int next_id = 0;
    int inserted = 0;
    std::function<void(int, int)> fire = [&](int id, int) {
      fired.push_back(id);
      const int kids = children_of(seed, id, inserted, cap);
      for (int k = 0; k < kids; ++k) {
        const int child = next_id++;
        inserted++;
        loop.call_in(delta_of(seed, id, k, max_exp),
                     [&fire, child] { fire(child, 0); });
      }
    };
    for (; next_id < n_init; ++next_id) {
      const int id = next_id;
      inserted++;
      loop.call_at(delta_of(seed, -1 - id, 0, max_exp),
                   [&fire, id] { fire(id, 0); });
    }
    loop.run();
  }

  ASSERT_EQ(fired.size(), expected.size()) << "seed=" << seed;
  for (size_t i = 0; i < expected.size(); ++i) {
    ASSERT_EQ(fired[i], expected[i]) << "seed=" << seed << " pos=" << i;
  }
}

}  // namespace wheel_oracle

TEST(EventLoopWheel, MatchesSortedOracleNearDeltas) {
  // Deltas up to 2^16: everything lives in levels 0-2, heavy tie traffic.
  for (uint64_t seed : {1u, 2u, 3u}) {
    wheel_oracle::run_oracle(seed, 16, 100, 2000);
  }
}

TEST(EventLoopWheel, MatchesSortedOracleMidDeltas) {
  // Deltas up to 2^40: exercises cascades through all six levels.
  for (uint64_t seed : {4u, 5u, 6u}) {
    wheel_oracle::run_oracle(seed, 40, 100, 2000);
  }
}

TEST(EventLoopWheel, MatchesSortedOracleOverflowDeltas) {
  // Deltas up to 2^49 > the 2^48 wheel span: overflow heap migration.
  for (uint64_t seed : {7u, 8u, 9u}) {
    wheel_oracle::run_oracle(seed, 49, 100, 2000);
  }
}

namespace wheel_oracle {

// Randomized oracle for the same-timestamp batch fast path. The batched
// dispatcher caches the level-0 slot cursor between fires; its contract is
// that firing order is still exactly "stable sort by time of enqueue
// order" — the (time, insertion-seq) rule — no matter how run_until()
// segments execution. The workload deliberately hits every way the cached
// cursor can be challenged: heavy duplicate timestamps (long batches),
// delta-0 children appending to the batch currently being drained, and
// external schedules between run_until() calls that land at or below the
// remembered next-event time (the guard that must clear the cache).
void run_segmented_oracle(uint64_t seed, int phases, int burst, int cap) {
  EventLoop loop;
  std::vector<std::pair<Nanos, int>> scheduled;  // (time, id) in enqueue order
  std::vector<int> fired;
  int next_id = 0;

  std::function<void(Nanos)> sched_at;
  std::function<void(int)> on_fire = [&](int id) {
    fired.push_back(id);
    const uint64_t h = mix(seed ^ (uint64_t{0xf1be} << 32) ^
                           static_cast<uint64_t>(id));
    const int kids = next_id < cap ? static_cast<int>(h % 3) : 0;
    for (int k = 0; k < kids; ++k) {
      const uint64_t h2 = mix(h + static_cast<uint64_t>(k));
      // Half the children land at the parent's own timestamp: they must
      // join the tail of the batch being drained right now.
      const Nanos delta = (h2 & 1) ? 0 : static_cast<Nanos>(h2 % 16);
      sched_at(loop.now() + delta);
    }
  };
  sched_at = [&](Nanos at) {
    const int id = next_id++;
    scheduled.emplace_back(at, id);
    loop.call_at(at, [&on_fire, id] { on_fire(id); });
  };

  for (int phase = 0; phase < phases; ++phase) {
    const Nanos base = loop.now();
    for (int j = 0; j < burst; ++j) {
      const uint64_t h =
          mix(seed ^ (static_cast<uint64_t>(phase) << 16) ^
              static_cast<uint64_t>(j));
      // Eight candidate times per phase => long duplicate runs. j==0 may
      // schedule at `base` == now(), undercutting events left pending from
      // the previous segment.
      sched_at(base + static_cast<Nanos>(h % 8) * 7);
    }
    // Events past base+30 stay pending across the segment boundary, so the
    // next phase's external schedules race the cached cursor.
    loop.run_until(base + 30);
  }
  loop.run();

  std::vector<std::pair<Nanos, int>> expected = scheduled;
  std::stable_sort(expected.begin(), expected.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  ASSERT_EQ(fired.size(), expected.size()) << "seed=" << seed;
  for (size_t i = 0; i < expected.size(); ++i) {
    ASSERT_EQ(fired[i], expected[i].second) << "seed=" << seed << " pos=" << i;
  }
}

}  // namespace wheel_oracle

TEST(EventLoopWheel, BatchedDispatchMatchesOracleAcrossRunUntil) {
  for (uint64_t seed : {11u, 12u, 13u, 14u, 15u, 16u, 17u, 18u}) {
    wheel_oracle::run_segmented_oracle(seed, 20, 50, 4000);
  }
}

}  // namespace
}  // namespace scalerpc::sim
