#include "src/sim/event_loop.h"

#include <gtest/gtest.h>

#include <vector>

namespace scalerpc::sim {
namespace {

TEST(EventLoop, StartsAtZero) {
  EventLoop loop;
  EXPECT_EQ(loop.now(), 0);
  EXPECT_EQ(loop.pending(), 0u);
  EXPECT_FALSE(loop.step());
}

TEST(EventLoop, CallbacksFireInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.call_at(30, [&] { order.push_back(3); });
  loop.call_at(10, [&] { order.push_back(1); });
  loop.call_at(20, [&] { order.push_back(2); });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.now(), 30);
}

TEST(EventLoop, SameTimeFifoOrder) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    loop.call_at(5, [&order, i] { order.push_back(i); });
  }
  loop.run();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
}

TEST(EventLoop, RunUntilStopsAtBoundaryInclusive) {
  EventLoop loop;
  int fired = 0;
  loop.call_at(10, [&] { fired++; });
  loop.call_at(20, [&] { fired++; });
  loop.call_at(21, [&] { fired++; });
  loop.run_until(20);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(loop.now(), 20);
  EXPECT_EQ(loop.pending(), 1u);
}

TEST(EventLoop, RunUntilAdvancesClockWhenIdle) {
  EventLoop loop;
  loop.run_until(1000);
  EXPECT_EQ(loop.now(), 1000);
}

TEST(EventLoop, NestedScheduling) {
  EventLoop loop;
  std::vector<Nanos> times;
  loop.call_at(10, [&] {
    times.push_back(loop.now());
    loop.call_in(5, [&] { times.push_back(loop.now()); });
  });
  loop.run();
  EXPECT_EQ(times, (std::vector<Nanos>{10, 15}));
}

TEST(EventLoopDeathTest, SchedulingInThePastAborts) {
  EventLoop loop;
  loop.call_at(100, [] {});
  loop.run();
  EXPECT_DEATH(loop.call_at(50, [] {}), "CHECK failed");
}

}  // namespace
}  // namespace scalerpc::sim
