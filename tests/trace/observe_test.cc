// End-to-end observability: run the echo harness with a session installed
// and check the timeline rows, latency summary, and trace events that the
// --trace/--timeline plumbing in bench_common.h relies on.
#include "src/harness/observe.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "src/harness/harness.h"
#include "src/trace/trace.h"

namespace scalerpc::harness {
namespace {

TestbedConfig small_config() {
  TestbedConfig cfg;
  cfg.kind = TransportKind::kScaleRpc;
  cfg.num_clients = 8;
  cfg.num_client_nodes = 2;
  return cfg;
}

EchoWorkload short_workload() {
  EchoWorkload wl;
  wl.warmup = usec(100);
  wl.measure = msec(1);
  return wl;
}

TEST(Observe, SchemaMatchesDeclaredWidth) {
  auto cols = observed_columns();
  ASSERT_EQ(cols.size(), kObservedColumns);
  EXPECT_EQ(cols.front(), "pcie_rd_cur");
  EXPECT_EQ(cols.back(), "ops");
}

TEST(Observe, EchoRunFillsTimelineAndTrace) {
  trace::Tracer tracer;
  trace::TimelineSink sink;
  trace::ScopedSession scope(trace::Session{&tracer, &sink, 100'000});

  Testbed bed(small_config());
  EchoResult result = run_echo(bed, short_workload());
  ASSERT_GT(result.ops, 0u);

  // ~1 ms window at a 100 µs interval plus the final partial window.
  ASSERT_GE(sink.rows().size(), 5u);
  ASSERT_EQ(sink.columns().size(), kObservedColumns);

  // Window deltas of the driver's op counter must add up to exactly the
  // ops the harness reported: the baseline lands at measurement start and
  // end_timeline records the tail.
  auto cols = sink.columns();
  size_t ops_col =
      static_cast<size_t>(std::find(cols.begin(), cols.end(), "ops") -
                          cols.begin());
  ASSERT_LT(ops_col, cols.size());
  uint64_t ops_sum = 0;
  for (const auto& row : sink.rows()) {
    ASSERT_EQ(row.delta.size(), kObservedColumns);
    ops_sum += row.delta[ops_col];
  }
  EXPECT_EQ(ops_sum, result.ops);

  // run_echo attaches the latency summary to the sink.
  std::string out;
  sink.serialize(out, "echo");
  EXPECT_NE(out.find("\"latency\""), std::string::npos);

  // The instrumented layers emitted events: per-RPC spans at minimum.
  EXPECT_GT(tracer.size(), 0u);
  std::string trace_json;
  tracer.serialize(trace_json, 0, "echo");
  EXPECT_NE(trace_json.find("rpc.batch"), std::string::npos);
}

TEST(Observe, EndTimelineWithoutSinkIsNoOp) {
  // All entry points must tolerate running with no session installed —
  // this is how every bench runs without --timeline.
  ASSERT_EQ(trace::session(), nullptr);
  Testbed bed(small_config());
  begin_timeline(bed.server_node(), nullptr, nullptr);
  sample_observed(bed.server_node(), 0);
  end_timeline(bed.server_node(), 0);
}

}  // namespace
}  // namespace scalerpc::harness
