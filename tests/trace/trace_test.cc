// Tracer/session layer: zero-overhead-when-off hooks, category filtering,
// the deterministic event cap, serialization format, and clock binding.
#include "src/trace/trace.h"

#include <gtest/gtest.h>

#include "src/sim/event_loop.h"
#include "src/sim/task.h"
#include "src/trace/timeline.h"

namespace scalerpc::trace {
namespace {

TEST(TraceSession, HooksAreNullWithNoSession) {
  ASSERT_EQ(session(), nullptr);
  EXPECT_EQ(tracer(kNic), nullptr);
  EXPECT_EQ(timeline(), nullptr);
  EXPECT_EQ(timeline_interval_ns(), 100'000);
}

TEST(TraceSession, ScopedSessionInstallsAndRestores) {
  Tracer t;
  TimelineSink sink;
  {
    ScopedSession scope(Session{&t, &sink, 250'000});
    EXPECT_EQ(tracer(kRpc), &t);
    EXPECT_EQ(timeline(), &sink);
    EXPECT_EQ(timeline_interval_ns(), 250'000);
    {
      // Nested sessions restore the outer one, not null.
      Tracer inner;
      ScopedSession nested(Session{&inner, nullptr, 100'000});
      EXPECT_EQ(tracer(kRpc), &inner);
      EXPECT_EQ(timeline(), nullptr);
    }
    EXPECT_EQ(tracer(kRpc), &t);
  }
  EXPECT_EQ(session(), nullptr);
}

TEST(TraceSession, CategoryFilterGatesTracerLookup) {
  Tracer nic_only(kNic);
  ScopedSession scope(Session{&nic_only, nullptr, 100'000});
  EXPECT_EQ(tracer(kNic), &nic_only);
  EXPECT_EQ(tracer(kLlc), nullptr);
  EXPECT_EQ(tracer(kSched), nullptr);
  EXPECT_TRUE(nic_only.wants(kNic));
  EXPECT_FALSE(nic_only.wants(kRpc));
}

TEST(TraceSession, CategoryNames) {
  EXPECT_STREQ(category_name(kSched), "sched");
  EXPECT_STREQ(category_name(kNic), "nic");
  EXPECT_STREQ(category_name(kLlc), "llc");
  EXPECT_STREQ(category_name(kRpc), "rpc");
}

TEST(Tracer, EventCapDropsDeterministically) {
  Tracer t(kAllCategories, /*max_events=*/2);
  t.instant(kNic, "a", 1, 0);
  t.instant(kNic, "b", 2, 0);
  t.instant(kNic, "c", 3, 0);
  t.complete(kRpc, "d", 4, 1, 0);
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t.dropped_events(), 2u);

  std::string out;
  t.serialize(out, 0, "capped");
  EXPECT_NE(out.find("\"trace.dropped_events\""), std::string::npos);
  EXPECT_NE(out.find("\"count\":2"), std::string::npos);
  EXPECT_EQ(out.find("\"name\":\"c\""), std::string::npos);
}

TEST(Tracer, SerializeInstantExactFormat) {
  Tracer t;
  t.instant(kNic, "nic.qp_hit", 12345, 7, "qpn", 42);
  std::string out;
  t.serialize(out, 3, "slot \"a\"");
  EXPECT_EQ(out,
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":3,\"tid\":0,"
            "\"args\":{\"name\":\"slot \\\"a\\\"\"}},\n"
            "{\"name\":\"nic.qp_hit\",\"cat\":\"nic\",\"ph\":\"i\","
            "\"ts\":12.345,\"pid\":3,\"tid\":7,\"s\":\"t\","
            "\"args\":{\"qpn\":42}},\n");
}

TEST(Tracer, SerializeSpanAndCounter) {
  Tracer t;
  t.complete(kRpc, "rpc.batch", 2'000'000, 16'000, 1001, "batch", 16);
  t.counter(kLlc, "pcm", 100'000, "itom", 5, "rfo", 6);
  std::string out;
  t.serialize(out, 0, "p");
  EXPECT_NE(out.find("\"ph\":\"X\",\"ts\":2000.000,\"dur\":16.000"),
            std::string::npos);
  EXPECT_NE(out.find("\"ph\":\"C\",\"ts\":100.000"), std::string::npos);
  EXPECT_NE(out.find("\"args\":{\"itom\":5,\"rfo\":6}"), std::string::npos);
}

TEST(TraceClock, BindAndUnbindAreOwnerChecked) {
  EXPECT_EQ(now(), 0);
  int64_t older = 5;
  int64_t newer = 9;
  bind_clock(&older);
  EXPECT_EQ(now(), 5);
  bind_clock(&newer);
  // Destroying an older loop must not unbind a newer loop's clock.
  unbind_clock(&older);
  EXPECT_EQ(now(), 9);
  newer = 11;
  EXPECT_EQ(now(), 11);
  unbind_clock(&newer);
  EXPECT_EQ(now(), 0);
}

TEST(TraceClock, EventLoopBindsItsClock) {
  {
    sim::EventLoop loop;
    EXPECT_EQ(now(), loop.now());
    bool fired = false;
    sim::run_blocking(loop, [](sim::EventLoop& l, bool* f) -> sim::Task<void> {
      co_await l.delay(1'500);
      EXPECT_EQ(now(), 1'500);
      *f = true;
    }(loop, &fired));
    EXPECT_TRUE(fired);
  }
  EXPECT_EQ(now(), 0);  // destructor unbound its own clock
}

}  // namespace
}  // namespace scalerpc::trace
