// TimelineSink: interval-delta arithmetic, window boundaries, empty
// windows, baseline resets, and serialization format.
#include "src/trace/timeline.h"

#include <gtest/gtest.h>

namespace scalerpc::trace {
namespace {

std::vector<std::string> two_cols() { return {"a", "b"}; }

TEST(TimelineSink, FirstSampleIsBaselineOnly) {
  TimelineSink sink;
  sink.set_columns(two_cols());
  const uint64_t v[] = {10, 20};
  sink.sample(1000, v, 2);
  EXPECT_TRUE(sink.rows().empty());
  EXPECT_TRUE(sink.has_baseline());
  EXPECT_EQ(sink.last_sample_t(), 1000);
}

TEST(TimelineSink, DeltasSpanConsecutiveWindows) {
  TimelineSink sink;
  sink.set_columns(two_cols());
  const uint64_t v0[] = {10, 20};
  const uint64_t v1[] = {15, 20};
  const uint64_t v2[] = {115, 300};
  sink.sample(1000, v0, 2);
  sink.sample(2000, v1, 2);
  sink.sample(3500, v2, 2);

  ASSERT_EQ(sink.rows().size(), 2u);
  EXPECT_EQ(sink.rows()[0].t_ns, 2000);
  EXPECT_EQ(sink.rows()[0].dt_ns, 1000);
  EXPECT_EQ(sink.rows()[0].delta, (std::vector<uint64_t>{5, 0}));
  EXPECT_EQ(sink.rows()[1].t_ns, 3500);
  EXPECT_EQ(sink.rows()[1].dt_ns, 1500);
  EXPECT_EQ(sink.rows()[1].delta, (std::vector<uint64_t>{100, 280}));
}

TEST(TimelineSink, EmptyWindowKeepsZeroRow) {
  // A window where nothing moved must still appear (uniform time axis).
  TimelineSink sink;
  sink.set_columns(two_cols());
  const uint64_t v[] = {7, 9};
  sink.sample(0, v, 2);
  sink.sample(100, v, 2);
  ASSERT_EQ(sink.rows().size(), 1u);
  EXPECT_EQ(sink.rows()[0].dt_ns, 100);
  EXPECT_EQ(sink.rows()[0].delta, (std::vector<uint64_t>{0, 0}));
}

TEST(TimelineSink, ResetBaselineSkipsWarmupDelta) {
  TimelineSink sink;
  sink.set_columns(two_cols());
  const uint64_t warm[] = {1000, 1000};
  const uint64_t m0[] = {5000, 6000};
  const uint64_t m1[] = {5001, 6002};
  sink.sample(10, warm, 2);
  sink.reset_baseline();
  EXPECT_FALSE(sink.has_baseline());
  // The next sample is a fresh baseline: the warmup-to-measure jump never
  // becomes a row.
  sink.sample(500, m0, 2);
  sink.sample(600, m1, 2);
  ASSERT_EQ(sink.rows().size(), 1u);
  EXPECT_EQ(sink.rows()[0].t_ns, 600);
  EXPECT_EQ(sink.rows()[0].delta, (std::vector<uint64_t>{1, 2}));
}

TEST(TimelineSink, FirstColumnsCallWins) {
  TimelineSink sink;
  sink.set_columns(two_cols());
  sink.set_columns({"x", "y"});  // same width: accepted, ignored
  EXPECT_EQ(sink.columns()[0], "a");
}

TEST(TimelineSink, SerializeEmitsRowsAndLatency) {
  TimelineSink sink;
  sink.set_columns(two_cols());
  const uint64_t v0[] = {0, 0};
  const uint64_t v1[] = {3, 4};
  sink.sample(0, v0, 2);
  sink.sample(100'000, v1, 2);

  TimelineSink::LatencySummary lat;
  lat.valid = true;
  lat.count = 42;
  lat.mean_us = 1.5;
  lat.p50_us = 1;
  lat.p99_us = 3;
  lat.p999_us = 4;
  lat.max_us = 9;
  sink.set_latency(lat);

  std::string out;
  sink.serialize(out, "point \"x\"");
  EXPECT_NE(out.find("\"label\": \"point \\\"x\\\"\""), std::string::npos);
  EXPECT_NE(out.find("\"t_us\": 100.000"), std::string::npos);
  EXPECT_NE(out.find("\"dt_us\": 100.000"), std::string::npos);
  EXPECT_NE(out.find("\"a\": 3"), std::string::npos);
  EXPECT_NE(out.find("\"b\": 4"), std::string::npos);
  EXPECT_NE(out.find("\"p999_us\": 4"), std::string::npos);
}

TEST(TimelineSink, SerializeOmitsLatencyWhenUnset) {
  TimelineSink sink;
  sink.set_columns(two_cols());
  std::string out;
  sink.serialize(out, "empty");
  EXPECT_EQ(out.find("latency"), std::string::npos);
}

}  // namespace
}  // namespace scalerpc::trace
