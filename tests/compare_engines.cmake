# ctest helper: runs BENCH under the default callback state-machine NIC
# engine and again with SIMRDMA_NIC_ENGINE=coroutine, and fails if stdout
# differs by a byte. Guards the engine-parity contract end-to-end on a real
# benchmark (the engine-oracle unit test covers the NIC in isolation).
#
# Usage: cmake -DBENCH=<path> -DWORKDIR=<dir> [-DPREFIX=<name>]
#              [-DARGS=<extra;args>] -P compare_engines.cmake
if(NOT DEFINED BENCH OR NOT DEFINED WORKDIR)
  message(FATAL_ERROR "compare_engines.cmake needs -DBENCH, -DWORKDIR")
endif()
if(NOT DEFINED PREFIX)
  set(PREFIX compare_engines)
endif()
if(NOT DEFINED ARGS)
  set(ARGS "")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E env --unset=SIMRDMA_NIC_ENGINE
          ${BENCH} --quick ${ARGS}
  OUTPUT_FILE ${WORKDIR}/${PREFIX}_sm.out
  RESULT_VARIABLE sm_rc)
if(NOT sm_rc EQUAL 0)
  message(FATAL_ERROR "${BENCH} (state-machine engine) exited with ${sm_rc}")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E env SIMRDMA_NIC_ENGINE=coroutine
          ${BENCH} --quick ${ARGS}
  OUTPUT_FILE ${WORKDIR}/${PREFIX}_coro.out
  RESULT_VARIABLE coro_rc)
if(NOT coro_rc EQUAL 0)
  message(FATAL_ERROR "${BENCH} (coroutine engine) exited with ${coro_rc}")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          ${WORKDIR}/${PREFIX}_sm.out
          ${WORKDIR}/${PREFIX}_coro.out
  RESULT_VARIABLE diff_rc)
if(NOT diff_rc EQUAL 0)
  message(FATAL_ERROR
          "coroutine-engine output differs from state-machine for ${BENCH}")
endif()
