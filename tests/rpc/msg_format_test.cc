#include "src/rpc/msg_format.h"

#include <gtest/gtest.h>

namespace scalerpc::rpc {
namespace {

using simrdma::HostMemory;
using simrdma::kMemoryBase;

TEST(MsgFormat, EncodeDecodeRoundTripInBlock) {
  HostMemory mem(8192);
  const uint64_t block = kMemoryBase;
  const uint32_t block_bytes = 4096;
  Bytes data = {1, 2, 3, 4, 5};
  const uint32_t total = kHeaderBytes + 5 + kTailBytes;
  encode_at(mem, aligned_target(block, block_bytes, total), 7, 3, data);
  ASSERT_TRUE(block_has_message(mem, block, block_bytes));
  auto msg = decode_block(mem, block, block_bytes);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->op, 7);
  EXPECT_EQ(msg->flags, 3);
  EXPECT_EQ(msg->data, data);
  EXPECT_EQ(msg->total_bytes(), total);
}

TEST(MsgFormat, EmptyBlockHasNoMessage) {
  HostMemory mem(8192);
  EXPECT_FALSE(block_has_message(mem, kMemoryBase, 4096));
  EXPECT_FALSE(decode_block(mem, kMemoryBase, 4096).has_value());
}

TEST(MsgFormat, ClearBlockInvalidates) {
  HostMemory mem(8192);
  const uint64_t block = kMemoryBase;
  Bytes data = {9};
  const uint32_t total = kHeaderBytes + 1 + kTailBytes;
  encode_at(mem, aligned_target(block, 4096, total), 1, 0, data);
  clear_block(mem, block, 4096);
  EXPECT_FALSE(decode_block(mem, block, 4096).has_value());
}

TEST(MsgFormat, EmptyPayloadMessage) {
  HostMemory mem(8192);
  const uint64_t block = kMemoryBase;
  const uint32_t total = kHeaderBytes + kTailBytes;
  encode_at(mem, aligned_target(block, 256, total), 4, 0, {});
  auto msg = decode_block(mem, block, 256);
  ASSERT_TRUE(msg.has_value());
  EXPECT_TRUE(msg->data.empty());
}

TEST(MsgFormat, CorruptLengthRejected) {
  HostMemory mem(8192);
  const uint64_t block = kMemoryBase;
  const uint32_t block_bytes = 256;
  // Valid magic but absurd length.
  mem.store_pod<uint8_t>(block + block_bytes - 1, kValidMagic);
  mem.store_pod<uint32_t>(block + block_bytes - kTailBytes, 100000);
  EXPECT_FALSE(decode_block(mem, block, block_bytes).has_value());
}

TEST(MsgFormat, MaxPayloadFitsExactly) {
  HostMemory mem(8192);
  const uint32_t block_bytes = 512;
  Bytes data(max_payload(block_bytes), 0x5A);
  const uint32_t total = kHeaderBytes + static_cast<uint32_t>(data.size()) + kTailBytes;
  EXPECT_EQ(total, block_bytes);
  encode_at(mem, aligned_target(kMemoryBase, block_bytes, total), 2, 0, data);
  auto msg = decode_block(mem, kMemoryBase, block_bytes);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->data.size(), max_payload(block_bytes));
}

TEST(MsgFormat, StagedRecordsRoundTripSequentially) {
  HostMemory mem(8192);
  uint64_t off = kMemoryBase;
  Bytes a = {1, 2};
  Bytes b = {3, 4, 5};
  const uint32_t ua = encode_staged(mem, off, 10, 0, a);
  const uint32_t ub = encode_staged(mem, off + ua, 11, 1, b);

  auto ra = decode_staged(mem, kMemoryBase, ua + ub);
  ASSERT_TRUE(ra.has_value());
  EXPECT_EQ(ra->first.op, 10);
  EXPECT_EQ(ra->first.data, a);
  EXPECT_EQ(ra->second, ua);
  auto rb = decode_staged(mem, kMemoryBase + ua, ub);
  ASSERT_TRUE(rb.has_value());
  EXPECT_EQ(rb->first.op, 11);
  EXPECT_EQ(rb->first.flags, 1);
  EXPECT_EQ(rb->first.data, b);
}

TEST(MsgFormat, StagedDecodeRejectsTruncation) {
  HostMemory mem(8192);
  Bytes a = {1, 2, 3, 4};
  const uint32_t used = encode_staged(mem, kMemoryBase, 1, 0, a);
  EXPECT_FALSE(decode_staged(mem, kMemoryBase, used - 1).has_value());
  EXPECT_FALSE(decode_staged(mem, kMemoryBase, 3).has_value());
}

TEST(MsgFormat, PlaceInBlockRightAligns) {
  HostMemory mem(8192);
  MessageView msg;
  msg.op = 6;
  msg.flags = 2;
  msg.data = {7, 8, 9};
  place_in_block(mem, kMemoryBase, 1024, msg);
  auto decoded = decode_block(mem, kMemoryBase, 1024);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->op, 6);
  EXPECT_EQ(decoded->flags, 2);
  EXPECT_EQ(decoded->data, msg.data);
  // Valid byte must be the last byte of the block.
  EXPECT_EQ(mem.load_pod<uint8_t>(kMemoryBase + 1023), kValidMagic);
}

}  // namespace
}  // namespace scalerpc::rpc
