#include "src/rpc/large_transfer.h"

#include <gtest/gtest.h>

#include "src/simrdma/nic.h"

namespace scalerpc::rpc {
namespace {

struct Fixture {
  simrdma::SimParams params;
  std::unique_ptr<simrdma::Cluster> cluster;
  simrdma::Node* a = nullptr;
  simrdma::Node* b = nullptr;
  uint64_t src = 0;
  uint64_t dst = 0;

  explicit Fixture(uint64_t len) {
    params.host_memory_bytes = len + MiB(8);
    cluster = std::make_unique<simrdma::Cluster>(params);
    a = cluster->add_node("a");
    b = cluster->add_node("b");
    src = a->alloc(len, 4096);
    dst = b->alloc(len, 4096);
    Rng rng(77);
    for (uint64_t off = 0; off + 8 <= len; off += 8) {
      a->memory().store_pod<uint64_t>(src + off, rng.next());
    }
  }

  simrdma::QueuePair* ud_qp(simrdma::Node* n) {
    auto* scq = n->create_cq();
    auto* rcq = n->create_cq();
    return n->create_qp(simrdma::QpType::kUD, scq, rcq);
  }
};

TEST(LargeTransfer, UdChunkedDeliversAllBytesInOrder) {
  const uint64_t len = 64 * 1024 + 777;  // not MTU-aligned
  Fixture f(len);
  auto* qa = f.ud_qp(f.a);
  auto* qb = f.ud_qp(f.b);
  TransferResult r{};
  auto body = [&]() -> sim::Task<void> {
    r = co_await ud_chunked_transfer(qa, qb, f.src, f.dst, len);
  };
  auto t = body();
  sim::run_blocking(f.cluster->loop(), std::move(t));
  EXPECT_EQ(r.bytes, len);
  EXPECT_GT(r.elapsed, 0);
  // Stop-and-wait slices land sequentially into the (ring of) recv buffers;
  // no datagrams may be dropped.
  EXPECT_EQ(f.b->nic().counters().ud_drops, 0u);
}

TEST(LargeTransfer, PipelinedBeatsStopAndWait) {
  const uint64_t len = 256 * 1024;
  Fixture f(len);
  auto* qa = f.ud_qp(f.a);
  auto* qb = f.ud_qp(f.b);
  TransferResult stop_wait{};
  TransferResult pipelined{};
  auto body = [&]() -> sim::Task<void> {
    stop_wait = co_await ud_chunked_transfer(qa, qb, f.src, f.dst, len);
    pipelined = co_await ud_pipelined_transfer(qa, qb, f.src, f.dst, len, 16);
  };
  auto t = body();
  sim::run_blocking(f.cluster->loop(), std::move(t));
  EXPECT_GT(pipelined.gbytes_per_sec(), 2.0 * stop_wait.gbytes_per_sec());
}

TEST(LargeTransfer, RcSingleVerbOutpacesOrderedUd) {
  // The Section 5.1 claim, as a regression bound.
  const uint64_t len = MiB(1);
  Fixture f(len);
  auto* cqa = f.a->create_cq();
  auto* cqb = f.b->create_cq();
  auto* ra = f.a->create_qp(simrdma::QpType::kRC, cqa, cqa);
  auto* rb = f.b->create_qp(simrdma::QpType::kRC, cqb, cqb);
  f.cluster->connect(ra, rb);
  auto* ua = f.ud_qp(f.a);
  auto* ub = f.ud_qp(f.b);
  TransferResult rc{};
  TransferResult ud{};
  auto body = [&]() -> sim::Task<void> {
    rc = co_await rc_write_transfer(ra, f.src, f.dst, f.b->arena_mr()->rkey, len);
    ud = co_await ud_chunked_transfer(ua, ub, f.src, f.dst, len);
  };
  auto t = body();
  sim::run_blocking(f.cluster->loop(), std::move(t));
  EXPECT_GT(rc.gbytes_per_sec(), 2.5 * ud.gbytes_per_sec())
      << "rc=" << rc.gbytes_per_sec() << " ud=" << ud.gbytes_per_sec();
}

}  // namespace
}  // namespace scalerpc::rpc
