// Cross-transport correctness: every transport must deliver the same RPC
// semantics (echo, batches, multiple ops, concurrent clients, larger
// payloads). Parameterized over all five implementations.
#include <gtest/gtest.h>

#include "src/harness/harness.h"

namespace scalerpc::harness {
namespace {

class TransportTest : public ::testing::TestWithParam<TransportKind> {
 protected:
  TestbedConfig base_config(int clients) {
    TestbedConfig cfg;
    cfg.kind = GetParam();
    cfg.num_clients = clients;
    cfg.num_client_nodes = 2;
    // Small groups/slices so ScaleRPC actually rotates in short tests.
    cfg.rpc.group_size = 4;
    cfg.rpc.time_slice = usec(50);
    return cfg;
  }
};

TEST_P(TransportTest, SingleEchoCall) {
  Testbed bed(base_config(1));
  bed.server().handlers().register_handler(7, rpc::make_echo_handler(100));
  bed.server().start();
  auto body = [&]() -> sim::Task<void> {
    rpc::Bytes req = {1, 2, 3, 4};
    rpc::Bytes resp = co_await bed.client(0).call(7, req);
    EXPECT_EQ(resp, req);
  };
  auto t = body();
  sim::run_blocking(bed.loop(), std::move(t));
  EXPECT_EQ(bed.server().requests_served(), 1u);
}

TEST_P(TransportTest, BatchedCallsReturnInOrder) {
  Testbed bed(base_config(1));
  bed.server().handlers().register_handler(1, rpc::make_echo_handler(50));
  bed.server().start();
  auto body = [&]() -> sim::Task<void> {
    for (int round = 0; round < 3; ++round) {
      for (uint8_t i = 0; i < 8; ++i) {
        bed.client(0).stage(1, {static_cast<uint8_t>(round), i});
      }
      auto resp = co_await bed.client(0).flush();
      EXPECT_EQ(resp.size(), 8u);
      SCALERPC_CHECK(resp.size() == 8u);
      for (uint8_t i = 0; i < 8; ++i) {
        EXPECT_EQ(resp[i], (rpc::Bytes{static_cast<uint8_t>(round), i}));
      }
    }
  };
  auto t = body();
  sim::run_blocking(bed.loop(), std::move(t));
  EXPECT_EQ(bed.server().requests_served(), 24u);
}

TEST_P(TransportTest, DistinctOpsDispatchToDistinctHandlers) {
  Testbed bed(base_config(1));
  bed.server().handlers().register_handler(
      1, [](const rpc::RequestContext&, std::span<const uint8_t>) {
        return rpc::HandlerResult{{11}, 0, 10};
      });
  bed.server().handlers().register_handler(
      2, [](const rpc::RequestContext&, std::span<const uint8_t>) {
        return rpc::HandlerResult{{22}, 0, 10};
      });
  bed.server().start();
  auto body = [&]() -> sim::Task<void> {
    rpc::Bytes empty;
    rpc::Bytes r1 = co_await bed.client(0).call(1, empty);
    rpc::Bytes r2 = co_await bed.client(0).call(2, empty);
    EXPECT_EQ(r1, (rpc::Bytes{11}));
    EXPECT_EQ(r2, (rpc::Bytes{22}));
  };
  auto t = body();
  sim::run_blocking(bed.loop(), std::move(t));
}

TEST_P(TransportTest, LargePayloadRoundTrip) {
  Testbed bed(base_config(1));
  bed.server().handlers().register_handler(3, rpc::make_echo_handler(200));
  bed.server().start();
  auto body = [&]() -> sim::Task<void> {
    rpc::Bytes req(2048);
    for (size_t i = 0; i < req.size(); ++i) {
      req[i] = static_cast<uint8_t>(i * 31);
    }
    rpc::Bytes resp = co_await bed.client(0).call(3, req);
    EXPECT_EQ(resp, req);
  };
  auto t = body();
  sim::run_blocking(bed.loop(), std::move(t));
}

TEST_P(TransportTest, ManyConcurrentClients) {
  Testbed bed(base_config(12));
  bed.server().handlers().register_handler(
      1, [](const rpc::RequestContext&, std::span<const uint8_t> req) {
        // Identity-with-transform so responses must match senders.
        rpc::Bytes out(req.begin(), req.end());
        for (auto& b : out) {
          b ^= 0xFF;
        }
        return rpc::HandlerResult{std::move(out), 0, 100};
      });
  bed.server().start();

  int completed = 0;
  auto one_client = [](Testbed* b, size_t idx, int* done) -> sim::Task<void> {
    for (int round = 0; round < 10; ++round) {
      rpc::Bytes req = {static_cast<uint8_t>(idx), static_cast<uint8_t>(round)};
      rpc::Bytes resp = co_await b->client(idx).call(1, req);
      EXPECT_EQ(resp.size(), 2u);
      SCALERPC_CHECK(resp.size() == 2u);
      EXPECT_EQ(resp[0], static_cast<uint8_t>(idx ^ 0xFF));
      EXPECT_EQ(resp[1], static_cast<uint8_t>(round ^ 0xFF));
    }
    (*done)++;
  };
  for (size_t c = 0; c < bed.num_clients(); ++c) {
    sim::spawn(bed.loop(), one_client(&bed, c, &completed));
  }
  bed.loop().run_for(msec(100));
  EXPECT_EQ(completed, 12);
  EXPECT_EQ(bed.server().requests_served(), 120u);
}

TEST_P(TransportTest, ClientIdsAreUniqueAndDense) {
  Testbed bed(base_config(5));
  std::vector<bool> seen(5, false);
  for (size_t c = 0; c < bed.num_clients(); ++c) {
    const int id = bed.client(c).client_id();
    ASSERT_GE(id, 0);
    ASSERT_LT(id, 5);
    EXPECT_FALSE(seen[static_cast<size_t>(id)]);
    seen[static_cast<size_t>(id)] = true;
  }
}

TEST_P(TransportTest, EmptyResponsePayload) {
  Testbed bed(base_config(1));
  bed.server().handlers().register_handler(
      9, [](const rpc::RequestContext&, std::span<const uint8_t>) {
        return rpc::HandlerResult{{}, 0, 10};
      });
  bed.server().start();
  auto body = [&]() -> sim::Task<void> {
    rpc::Bytes req = {1, 2, 3};
    rpc::Bytes resp = co_await bed.client(0).call(9, req);
    EXPECT_TRUE(resp.empty());
  };
  auto t = body();
  sim::run_blocking(bed.loop(), std::move(t));
}

INSTANTIATE_TEST_SUITE_P(
    AllTransports, TransportTest,
    ::testing::Values(TransportKind::kRawWrite, TransportKind::kHerd,
                      TransportKind::kFasst, TransportKind::kSelfRpc,
                      TransportKind::kScaleRpc),
    [](const ::testing::TestParamInfo<TransportKind>& info) {
      return std::string(to_string(info.param));
    });

}  // namespace
}  // namespace scalerpc::harness
