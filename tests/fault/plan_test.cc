// Unit tests for the fault-plan schema (parse + builders) and the
// injector's deterministic randomness.
#include <gtest/gtest.h>

#include "src/fault/inject.h"
#include "src/fault/plan.h"

namespace scalerpc::fault {
namespace {

TEST(FaultPlan, ParsesEveryVerb) {
  const char* text = R"(# full schema exercise
seed 42
drop p=0.01 from=10us until=2ms src=0 dst=1
corrupt p=0.5
delay add=2us from=1ms until=2ms
nic_slow node=0 factor=4 from=1ms until=2ms
nic_stall node=2 until=1ms   # factor-0 slowdown
qp_error node=0 qpn=3 at=1ms
crash node=1 at=1ms restart=1500us
)";
  std::string err;
  auto plan = FaultPlan::parse(text, &err);
  ASSERT_TRUE(plan.has_value()) << err;
  EXPECT_EQ(plan->seed, 42u);
  ASSERT_EQ(plan->size(), 7u);
  const auto& r = plan->rules();
  EXPECT_EQ(r[0].kind, FaultKind::kDrop);
  EXPECT_DOUBLE_EQ(r[0].probability, 0.01);
  EXPECT_EQ(r[0].start, usec(10));
  EXPECT_EQ(r[0].end, msec(2));
  EXPECT_EQ(r[0].src_node, 0);
  EXPECT_EQ(r[0].node, 1);
  EXPECT_EQ(r[1].kind, FaultKind::kCorrupt);
  EXPECT_EQ(r[1].end, kNever);
  EXPECT_EQ(r[1].src_node, kAnyNode);
  EXPECT_EQ(r[2].kind, FaultKind::kDelay);
  EXPECT_EQ(r[2].extra_ns, usec(2));
  EXPECT_EQ(r[3].kind, FaultKind::kNicSlow);
  EXPECT_DOUBLE_EQ(r[3].factor, 4.0);
  EXPECT_EQ(r[4].kind, FaultKind::kNicSlow);
  EXPECT_DOUBLE_EQ(r[4].factor, 0.0);  // nic_stall
  EXPECT_EQ(r[5].kind, FaultKind::kQpError);
  EXPECT_EQ(r[5].qpn, 3u);
  EXPECT_EQ(r[5].start, msec(1));
  EXPECT_EQ(r[6].kind, FaultKind::kCrash);
  EXPECT_EQ(r[6].start, msec(1));
  EXPECT_EQ(r[6].end, usec(1500));
}

TEST(FaultPlan, RejectsMalformedInput) {
  std::string err;
  EXPECT_FALSE(FaultPlan::parse("explode p=1\n", &err).has_value());
  EXPECT_NE(err.find("line 1"), std::string::npos);
  EXPECT_FALSE(FaultPlan::parse("drop\n", &err).has_value());  // missing p
  EXPECT_FALSE(FaultPlan::parse("drop p=1.5\n", &err).has_value());
  EXPECT_FALSE(FaultPlan::parse("drop p=0.1 from=xyz\n", &err).has_value());
  EXPECT_FALSE(FaultPlan::parse("delay p=0.1\n", &err).has_value());  // no add
  EXPECT_FALSE(FaultPlan::parse("nic_slow factor=2 until=1ms\n", &err).has_value());
  EXPECT_FALSE(FaultPlan::parse("nic_slow node=0 factor=0.5 until=1ms\n", &err)
                   .has_value());
  EXPECT_FALSE(FaultPlan::parse("nic_stall node=0\n", &err).has_value());  // no end
  EXPECT_FALSE(FaultPlan::parse("qp_error node=0\n", &err).has_value());
  EXPECT_FALSE(FaultPlan::parse("crash node=0 at=2ms restart=1ms\n", &err)
                   .has_value());
  EXPECT_FALSE(FaultPlan::parse("drop p=0.1 junk\n", &err).has_value());
  EXPECT_FALSE(FaultPlan::parse("seed x\n", &err).has_value());
}

TEST(FaultPlan, BuildersMatchParsedRules) {
  FaultPlan built;
  built.seed = 42;
  built.drop(0.01, usec(10), msec(2), 0, 1).crash(1, msec(1), usec(1500));
  auto parsed = FaultPlan::parse(
      "seed 42\ndrop p=0.01 from=10us until=2ms src=0 dst=1\n"
      "crash node=1 at=1ms restart=1500us\n");
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->size(), built.size());
  for (size_t i = 0; i < built.size(); ++i) {
    EXPECT_EQ(parsed->rules()[i].kind, built.rules()[i].kind);
    EXPECT_EQ(parsed->rules()[i].start, built.rules()[i].start);
    EXPECT_EQ(parsed->rules()[i].end, built.rules()[i].end);
  }
  EXPECT_EQ(built.summary(), parsed->summary());
}

TEST(FaultPlan, RuleWindowsAndLinkFilters) {
  FaultRule r;
  r.start = usec(10);
  r.end = usec(20);
  r.src_node = 1;
  r.node = kAnyNode;
  EXPECT_FALSE(r.active(usec(9)));
  EXPECT_TRUE(r.active(usec(10)));
  EXPECT_FALSE(r.active(usec(20)));  // [start, end)
  EXPECT_TRUE(r.matches_link(usec(15), 1, 7));
  EXPECT_FALSE(r.matches_link(usec(15), 2, 7));
  EXPECT_FALSE(r.matches_link(usec(25), 1, 7));
}

TEST(FaultInjector, SameSeedSameDecisions) {
  FaultPlan plan;
  plan.seed = 7;
  plan.drop(0.3);
  FaultInjector a(plan, /*salt=*/0);
  FaultInjector b(plan, /*salt=*/0);
  FaultInjector c(plan, /*salt=*/1);
  int diverged_salt = 0;
  for (int i = 0; i < 1000; ++i) {
    const bool da = a.should_drop(i, 0, 1);
    EXPECT_EQ(da, b.should_drop(i, 0, 1));
    diverged_salt += da != c.should_drop(i, 0, 1) ? 1 : 0;
  }
  EXPECT_EQ(a.counters().drops, b.counters().drops);
  EXPECT_GT(a.counters().drops, 200u);  // ~300 expected
  EXPECT_LT(a.counters().drops, 400u);
  EXPECT_GT(diverged_salt, 0);  // a different salt is a different realization
}

TEST(FaultInjector, ScaleCostAndCrashWindows) {
  FaultPlan plan;
  plan.nic_slow(0, 4.0, usec(10), usec(20));
  plan.nic_slow(1, 0.0, usec(10), usec(20));  // stall
  plan.crash(2, usec(10), usec(20));
  FaultInjector inj(plan, 0);
  EXPECT_EQ(inj.scale_cost(usec(5), 0, 100), 100);    // outside window
  EXPECT_EQ(inj.scale_cost(usec(15), 0, 100), 400);   // x4
  EXPECT_EQ(inj.scale_cost(usec(15), 3, 100), 100);   // other node
  // A stalled NIC parks the operation until the window ends.
  EXPECT_EQ(inj.scale_cost(usec(15), 1, 100), 100 + usec(5));
  EXPECT_FALSE(inj.node_down(usec(5), 2));
  EXPECT_TRUE(inj.node_down(usec(15), 2));
  EXPECT_FALSE(inj.node_down(usec(25), 2));
  EXPECT_FALSE(inj.node_down(usec(15), 0));
}

TEST(FaultInjector, DelayAccumulatesAcrossMatchingRules) {
  FaultPlan plan;
  plan.delay(500).delay(250, 0, kNever, 0, kAnyNode);
  FaultInjector inj(plan, 0);
  EXPECT_EQ(inj.extra_delay(0, 0, 1), 750);
  EXPECT_EQ(inj.extra_delay(0, 2, 1), 500);  // second rule filters src=0
  EXPECT_EQ(inj.counters().delayed_packets, 2u);
}

}  // namespace
}  // namespace scalerpc::fault
