#include "src/kv/hashstore.h"

#include <gtest/gtest.h>

#include "src/simrdma/cluster.h"

namespace scalerpc::kv {
namespace {

struct Fixture {
  simrdma::Cluster cluster;
  simrdma::Node* node = cluster.add_node("kv");
  HashStore store{node, 1024, 40};
};

std::vector<uint8_t> value_of(uint64_t v) {
  std::vector<uint8_t> out(40, 0);
  std::memcpy(out.data(), &v, sizeof(v));
  return out;
}

TEST(HashStore, InsertLookupRoundTrip) {
  Fixture f;
  ASSERT_TRUE(f.store.insert(42, value_of(7)).has_value());
  auto v = f.store.lookup(42);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->version, 1u);
  EXPECT_EQ(v->lock, 0u);
  uint64_t got = 0;
  std::memcpy(&got, v->value.data(), sizeof(got));
  EXPECT_EQ(got, 7u);
}

TEST(HashStore, MissingKeyLookupFails) {
  Fixture f;
  EXPECT_FALSE(f.store.lookup(999).has_value());
}

TEST(HashStore, DuplicateInsertRejected) {
  Fixture f;
  ASSERT_TRUE(f.store.insert(1, value_of(1)).has_value());
  EXPECT_FALSE(f.store.insert(1, value_of(2)).has_value());
  EXPECT_EQ(f.store.size(), 1u);
}

TEST(HashStore, LinearProbingHandlesCollisions) {
  Fixture f;
  // Insert enough keys that probing chains must form.
  for (uint64_t k = 0; k < 500; ++k) {
    ASSERT_TRUE(f.store.insert(k, value_of(k)).has_value()) << k;
  }
  for (uint64_t k = 0; k < 500; ++k) {
    auto v = f.store.lookup(k);
    ASSERT_TRUE(v.has_value()) << k;
    uint64_t got = 0;
    std::memcpy(&got, v->value.data(), sizeof(got));
    EXPECT_EQ(got, k);
  }
}

TEST(HashStore, LockProtocol) {
  Fixture f;
  f.store.insert(5, value_of(5));
  EXPECT_TRUE(f.store.try_lock(5, 100));
  EXPECT_FALSE(f.store.try_lock(5, 200));  // already held
  auto v = f.store.lookup(5);
  EXPECT_EQ(v->lock, 100u);
  f.store.unlock(5);
  EXPECT_TRUE(f.store.try_lock(5, 200));
  f.store.unlock(5);
}

TEST(HashStore, CommitUpdateBumpsVersionAndReleasesLock) {
  Fixture f;
  f.store.insert(9, value_of(1));
  ASSERT_TRUE(f.store.try_lock(9, 77));
  EXPECT_TRUE(f.store.commit_update(9, value_of(2)));
  auto v = f.store.lookup(9);
  EXPECT_EQ(v->version, 2u);
  EXPECT_EQ(v->lock, 0u);
  uint64_t got = 0;
  std::memcpy(&got, v->value.data(), sizeof(got));
  EXPECT_EQ(got, 2u);
}

TEST(HashStore, HeaderAddressLayoutMatchesOneSidedFormat) {
  // A one-sided commit writes {lock:u32, version:u32, value} at
  // header_addr; verify the layout by writing through raw memory.
  Fixture f;
  const auto slot = f.store.insert(33, value_of(1));
  ASSERT_TRUE(slot.has_value());
  const uint64_t hdr = f.store.header_addr(*slot);
  auto& mem = f.node->memory();
  mem.store_pod<uint32_t>(hdr, 0);        // lock
  mem.store_pod<uint32_t>(hdr + 4, 42);   // version
  mem.store_pod<uint64_t>(hdr + 8, 555);  // first 8 bytes of value
  auto v = f.store.lookup(33);
  EXPECT_EQ(v->version, 42u);
  uint64_t got = 0;
  std::memcpy(&got, v->value.data(), sizeof(got));
  EXPECT_EQ(got, 555u);
  EXPECT_EQ(v->header_addr, hdr);
  EXPECT_EQ(f.store.commit_bytes(), 48u);
}

TEST(HashStore, FullTableRejectsInsert) {
  simrdma::Cluster cluster;
  simrdma::Node* node = cluster.add_node("kv");
  HashStore tiny(node, 4, 40);
  for (uint64_t k = 0; k < 4; ++k) {
    ASSERT_TRUE(tiny.insert(k, value_of(k)).has_value());
  }
  EXPECT_FALSE(tiny.insert(99, value_of(99)).has_value());
}

TEST(HashStore, ProbeCostReflectsLlc) {
  Fixture f;
  f.store.insert(3, value_of(3));
  const Nanos cold = f.store.probe_cost(3);
  const Nanos warm = f.store.probe_cost(3);
  EXPECT_GT(cold, warm);  // second probe hits the LLC
}

}  // namespace
}  // namespace scalerpc::kv
