// ScaleRPC end-to-end mechanism tests: grouping really rotates, warmup
// really fetches, the client FSM transitions, legacy mode diverts long
// RPCs, and the NIC-cache working set stays bounded.
#include <gtest/gtest.h>

#include "src/harness/harness.h"

namespace scalerpc::harness {
namespace {

TestbedConfig scalerpc_config(int clients, int group_size, Nanos slice) {
  TestbedConfig cfg;
  cfg.kind = TransportKind::kScaleRpc;
  cfg.num_clients = clients;
  cfg.num_client_nodes = 4;
  cfg.rpc.group_size = group_size;
  cfg.rpc.time_slice = slice;
  return cfg;
}

TEST(ScaleRpcServer, RotatesGroupsAndCountsSwitches) {
  Testbed bed(scalerpc_config(12, 4, usec(50)));
  EchoWorkload wl;
  wl.batch = 4;
  wl.measure = msec(2);
  const EchoResult r = run_echo(bed, wl);
  EXPECT_GT(r.ops, 100u);
  // ~2.4ms runtime at 50us slices => dozens of switches across 3 groups.
  EXPECT_GE(bed.scalerpc()->context_switches(), 20u);
  EXPECT_GE(bed.scalerpc()->num_groups(), 2u);
  EXPECT_GT(bed.scalerpc()->warmup_fetches(), 0u);
  EXPECT_GT(bed.scalerpc()->notify_writes(), 0u);
}

TEST(ScaleRpcServer, SingleGroupNeverSwitches) {
  Testbed bed(scalerpc_config(4, 8, usec(50)));
  EchoWorkload wl;
  wl.measure = msec(2);
  const EchoResult r = run_echo(bed, wl);
  EXPECT_GT(r.ops, 100u);
  EXPECT_EQ(bed.scalerpc()->context_switches(), 0u);
  EXPECT_EQ(bed.scalerpc()->num_groups(), 1u);
}

TEST(ScaleRpcServer, ClientsReachProcessStateAndPostDirectly) {
  Testbed bed(scalerpc_config(8, 4, usec(100)));
  EchoWorkload wl;
  wl.batch = 2;
  wl.measure = msec(3);
  run_echo(bed, wl);
  uint64_t direct = 0;
  uint64_t warmups = 0;
  for (size_t c = 0; c < bed.num_clients(); ++c) {
    direct += bed.scalerpc_client(c)->direct_batches();
    warmups += bed.scalerpc_client(c)->warmup_rounds();
  }
  // Clients must use both paths: warmup to join a slice, then direct
  // writes within it.
  EXPECT_GT(direct, 0u);
  EXPECT_GT(warmups, 0u);
  // Under steady rotation most batches ride the direct path.
  EXPECT_GT(direct, warmups);
}

TEST(ScaleRpcServer, NoTimeoutsUnderNormalOperation) {
  Testbed bed(scalerpc_config(12, 4, usec(50)));
  EchoWorkload wl;
  wl.batch = 4;
  wl.measure = msec(3);
  run_echo(bed, wl);
  uint64_t timeouts = 0;
  for (size_t c = 0; c < bed.num_clients(); ++c) {
    timeouts += bed.scalerpc_client(c)->timeouts();
  }
  EXPECT_EQ(timeouts, 0u);
}

TEST(ScaleRpcServer, BoundsNicCacheWorkingSet) {
  // 60 clients in groups of 10: at any instant at most ~2 groups (live +
  // warming) touch the NIC, so the QP cache working set stays bounded and
  // the hit rate stays high even though 60 QPs would thrash this small cache
  // if they were all concurrently active.
  TestbedConfig cfg = scalerpc_config(60, 10, usec(50));
  cfg.sim.nic_qp_cache_entries = 48;
  Testbed bed(cfg);
  EchoWorkload wl;
  wl.batch = 4;
  wl.measure = msec(2);
  run_echo(bed, wl);
  const auto& nic = bed.server_node()->nic().counters();
  const double hit_rate =
      static_cast<double>(nic.qp_cache_hits) /
      static_cast<double>(nic.qp_cache_hits + nic.qp_cache_misses);
  EXPECT_GT(hit_rate, 0.80) << "hits=" << nic.qp_cache_hits
                            << " misses=" << nic.qp_cache_misses;
}

TEST(ScaleRpcServer, LongRpcsDivertToLegacyExecutor) {
  Testbed bed(scalerpc_config(4, 4, usec(100)));
  bed.server().handlers().register_handler(
      5, [](const rpc::RequestContext&, std::span<const uint8_t>) {
        // 50us handler: above the 20us long-RPC threshold.
        return rpc::HandlerResult{{1}, 0, usec(50)};
      });
  bed.server().handlers().register_handler(0, rpc::make_echo_handler(100));
  bed.server().start();

  auto body = [&]() -> sim::Task<void> {
    rpc::Bytes empty;
    // First call observes the overrun; subsequent ones go legacy.
    for (int i = 0; i < 5; ++i) {
      rpc::Bytes r = co_await bed.client(0).call(5, empty);
      EXPECT_EQ(r, (rpc::Bytes{1}));
    }
  };
  auto t = body();
  sim::run_blocking(bed.loop(), std::move(t));
  EXPECT_GE(bed.scalerpc()->legacy_executions(), 4u);
}

TEST(ScaleRpcServer, WarmupDisabledStillCorrectButSwitchesCold) {
  TestbedConfig cfg = scalerpc_config(12, 4, usec(50));
  cfg.rpc.warmup_enabled = false;
  Testbed bed(cfg);
  EchoWorkload wl;
  wl.batch = 2;
  wl.measure = msec(2);
  const EchoResult r = run_echo(bed, wl);
  EXPECT_GT(r.ops, 50u);
  EXPECT_EQ(bed.scalerpc()->warmup_fetches(), 0u);
  EXPECT_GT(bed.scalerpc()->context_switches(), 10u);
}

TEST(ScaleRpcServer, WarmupAblationDoesNotRegressThroughput) {
  // Ablation (DESIGN.md #2). In this simulator the cold-switch alternative
  // (explicit live-control notify + client direct writes) joins a group in
  // ~2us, so at paper-scale slices warmup and cold switching are within
  // noise of each other; the assertion pins warmup at parity or better.
  // EXPERIMENTS.md discusses why the gap is smaller than the paper implies.
  auto run_once = [](bool warmup) {
    TestbedConfig cfg = scalerpc_config(24, 6, usec(15));
    cfg.rpc.drain_grace = usec(1);
    cfg.rpc.warmup_enabled = warmup;
    Testbed bed(cfg);
    EchoWorkload wl;
    wl.batch = 8;
    wl.measure = msec(3);
    return run_echo(bed, wl).mops;
  };
  const double with_warmup = run_once(true);
  const double without = run_once(false);
  EXPECT_GT(with_warmup, 0.95 * without)
      << "with=" << with_warmup << " without=" << without;
}

TEST(ScaleRpcServer, ResponsesCarryContextSwitchFlagEventually) {
  Testbed bed(scalerpc_config(8, 4, usec(50)));
  EchoWorkload wl;
  wl.batch = 1;
  wl.measure = msec(2);
  run_echo(bed, wl);
  // With 2 groups rotating every 50us, every client must have gone through
  // IDLE (saw a context_switch_event) at least once: warmup_rounds grows.
  for (size_t c = 0; c < bed.num_clients(); ++c) {
    EXPECT_GT(bed.scalerpc_client(c)->warmup_rounds(), 2u) << "client " << c;
  }
}

}  // namespace
}  // namespace scalerpc::harness
