#include "src/scalerpc/timesync.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace scalerpc::core {
namespace {

TEST(TimeSync, FollowerConvergesToServerClock) {
  simrdma::Cluster cluster;
  Rng rng(42);
  simrdma::Node* ts = cluster.add_node_with_skewed_clock("timeserver", rng);
  simrdma::Node* f1 = cluster.add_node_with_skewed_clock("follower1", rng);

  // Clocks genuinely differ before syncing.
  cluster.loop().run_for(msec(1));
  const Nanos raw_delta = f1->local_time() - ts->local_time();

  TimeSyncServer server(ts);
  TimeSyncFollower follower(f1, &server);
  sim::run_blocking(cluster.loop(), follower.connect());
  server.start();
  follower.start();
  cluster.loop().run_for(msec(30));

  ASSERT_TRUE(follower.synced());
  EXPECT_GE(follower.rounds(), 2u);
  // The estimate must reduce the clock error to ~network asymmetry scale
  // (well under a microsecond), versus raw offsets up to 500us.
  const Nanos residual = follower.global_now() - server.global_now();
  EXPECT_LT(std::abs(residual), 2000) << "raw delta was " << raw_delta;
  EXPECT_GT(std::abs(raw_delta), std::abs(residual));
}

TEST(TimeSync, MultipleFollowersAgreeWithEachOther) {
  simrdma::Cluster cluster;
  Rng rng(7);
  simrdma::Node* ts = cluster.add_node_with_skewed_clock("timeserver", rng);
  TimeSyncServer server(ts);
  server.start();

  std::vector<std::unique_ptr<TimeSyncFollower>> followers;
  for (int i = 0; i < 3; ++i) {
    simrdma::Node* n =
        cluster.add_node_with_skewed_clock("f" + std::to_string(i), rng);
    followers.push_back(std::make_unique<TimeSyncFollower>(n, &server));
    sim::run_blocking(cluster.loop(), followers.back()->connect());
    followers.back()->start();
  }
  cluster.loop().run_for(msec(30));

  for (auto& f : followers) {
    ASSERT_TRUE(f->synced());
  }
  // Pairwise agreement: all followers estimate the same global time.
  for (size_t a = 0; a < followers.size(); ++a) {
    for (size_t b = a + 1; b < followers.size(); ++b) {
      EXPECT_LT(std::abs(followers[a]->global_now() - followers[b]->global_now()), 4000);
    }
  }
  EXPECT_GE(server.pings_served(), 6u);
}

TEST(TimeSync, ResyncTracksDrift) {
  simrdma::Cluster cluster;
  simrdma::Node* ts = cluster.add_node("timeserver");
  simrdma::Node* f = cluster.add_node("follower");
  f->set_clock(usec(100), /*drift_ppm=*/50.0);  // drifts 50ns per ms

  TimeSyncServer server(ts);
  TimeSyncFollower follower(f, &server, /*period=*/msec(5));
  sim::run_blocking(cluster.loop(), follower.connect());
  server.start();
  follower.start();

  cluster.loop().run_for(msec(100));
  // After 100ms the raw clocks have drifted ~5us apart on top of the 100us
  // offset; periodic resyncs keep the estimate tight anyway.
  const Nanos residual = follower.global_now() - server.global_now();
  EXPECT_LT(std::abs(residual), 2000);
  EXPECT_GE(follower.rounds(), 10u);
}

}  // namespace
}  // namespace scalerpc::core
