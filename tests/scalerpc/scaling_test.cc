// Fig. 8 shape assertions: ScaleRPC stays ~flat as clients grow while
// RawWrite collapses; ScaleRPC saturates with fewer client nodes than the
// UD-based RPCs; Fig. 10's counter behaviour.
#include <gtest/gtest.h>

#include "src/harness/harness.h"

namespace scalerpc::harness {
namespace {

double measure(TransportKind kind, int clients, int batch, int client_nodes = 8) {
  TestbedConfig cfg;
  cfg.kind = kind;
  cfg.num_clients = clients;
  cfg.num_client_nodes = client_nodes;
  Testbed bed(cfg);
  EchoWorkload wl;
  wl.batch = batch;
  wl.warmup = usec(600);
  wl.measure = msec(2);
  return run_echo(bed, wl).mops;
}

TEST(Fig8Shape, ScaleRpcStaysFlatRawWriteCollapses) {
  const double scale_40 = measure(TransportKind::kScaleRpc, 40, 8);
  const double scale_400 = measure(TransportKind::kScaleRpc, 400, 8);
  const double raw_40 = measure(TransportKind::kRawWrite, 40, 8);
  const double raw_400 = measure(TransportKind::kRawWrite, 400, 8);

  // RawWrite loses most of its throughput; ScaleRPC keeps the bulk of it.
  EXPECT_LT(raw_400, 0.55 * raw_40) << "raw40=" << raw_40 << " raw400=" << raw_400;
  EXPECT_GT(scale_400, 0.7 * scale_40)
      << "scale40=" << scale_40 << " scale400=" << scale_400;
  // And at 400 clients ScaleRPC clearly beats RawWrite.
  EXPECT_GT(scale_400, 1.5 * raw_400);
}

TEST(Fig8Shape, FasstAlsoScalesFlat) {
  const double f40 = measure(TransportKind::kFasst, 40, 8);
  const double f400 = measure(TransportKind::kFasst, 400, 8);
  EXPECT_GT(f400, 0.7 * f40) << "f40=" << f40 << " f400=" << f400;
}

TEST(Fig8Shape, ScaleRpcSaturatesWithFewerClientNodes) {
  // Right half of Fig. 8: 40 client threads on 1..5 physical nodes. The
  // RC-based transports saturate with ~2 nodes; UD-based ones keep gaining
  // as nodes are added because each op burns more client CPU.
  const double scale_1node = measure(TransportKind::kScaleRpc, 40, 8, 1);
  const double scale_4node = measure(TransportKind::kScaleRpc, 40, 8, 4);
  const double fasst_1node = measure(TransportKind::kFasst, 40, 8, 1);
  const double fasst_4node = measure(TransportKind::kFasst, 40, 8, 4);

  const double scale_gain = scale_4node / scale_1node;
  const double fasst_gain = fasst_4node / fasst_1node;
  EXPECT_GT(fasst_gain, scale_gain)
      << "scale 1->4: " << scale_1node << "->" << scale_4node
      << ", fasst 1->4: " << fasst_1node << "->" << fasst_4node;
}

TEST(Fig10Shape, ScaleRpcKeepsPcieReadsPerOpLow) {
  auto reads_per_op = [](TransportKind kind, int clients) {
    TestbedConfig cfg;
    cfg.kind = kind;
    cfg.num_clients = clients;
    cfg.num_client_nodes = 8;
    Testbed bed(cfg);
    EchoWorkload wl;
    wl.batch = 8;
    wl.warmup = usec(600);
    wl.measure = msec(2);
    const EchoResult r = run_echo(bed, wl);
    return static_cast<double>(r.server_pcm.pcie_rd_cur) /
           static_cast<double>(std::max<uint64_t>(1, r.ops));
  };
  const double raw = reads_per_op(TransportKind::kRawWrite, 300);
  const double scale = reads_per_op(TransportKind::kScaleRpc, 300);
  // RawWrite refetches QP/WQE state from host memory on most responses;
  // ScaleRPC's bounded working set keeps reads near the payload-only level.
  EXPECT_GT(raw, scale + 0.8) << "raw=" << raw << " scale=" << scale;
}

TEST(Fig10Shape, ScaleRpcAllocatingWritesStayFlatWithClients) {
  auto itom_per_op = [](int clients) {
    TestbedConfig cfg;
    cfg.kind = TransportKind::kScaleRpc;
    cfg.num_clients = clients;
    cfg.num_client_nodes = 8;
    Testbed bed(cfg);
    EchoWorkload wl;
    wl.batch = 8;
    wl.warmup = usec(600);
    wl.measure = msec(2);
    const EchoResult r = run_echo(bed, wl);
    return static_cast<double>(r.server_pcm.pcie_itom) /
           static_cast<double>(std::max<uint64_t>(1, r.ops));
  };
  const double at_80 = itom_per_op(80);
  const double at_320 = itom_per_op(320);
  // Virtualized mapping: one physical pool regardless of client count, so
  // allocating writes per op do not grow with clients.
  EXPECT_LT(at_320, at_80 + 0.2) << "80=" << at_80 << " 320=" << at_320;
}

}  // namespace
}  // namespace scalerpc::harness
