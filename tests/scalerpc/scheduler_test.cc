#include "src/scalerpc/scheduler.h"

#include <gtest/gtest.h>

#include <numeric>
#include <set>

namespace scalerpc::core {
namespace {

std::vector<int> ids(int n) {
  std::vector<int> v(static_cast<size_t>(n));
  std::iota(v.begin(), v.end(), 0);
  return v;
}

std::set<int> members_of(const std::vector<Group>& groups) {
  std::set<int> all;
  for (const auto& g : groups) {
    for (int m : g.members) {
      all.insert(m);
    }
  }
  return all;
}

TEST(GroupScheduler, StaticChunksByGroupSize) {
  GroupScheduler sched(40, usec(100), /*dynamic=*/false);
  auto groups = sched.build_static(ids(120));
  ASSERT_EQ(groups.size(), 3u);
  for (const auto& g : groups) {
    EXPECT_EQ(g.members.size(), 40u);
    EXPECT_EQ(g.slice, usec(100));
  }
}

TEST(GroupScheduler, StaticMergesRuntTrailingGroup) {
  GroupScheduler sched(40, usec(100), false);
  // 90 clients: 40 + 40 + 10; the runt (10 < G/2) merges into group 2.
  auto groups = sched.build_static(ids(90));
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].members.size(), 40u);
  EXPECT_EQ(groups[1].members.size(), 50u);
  EXPECT_LE(static_cast<int>(groups[1].members.size()), sched.max_size());
}

TEST(GroupScheduler, StaticKeepsLegalTrailingGroup) {
  GroupScheduler sched(40, usec(100), false);
  // 100 clients: 40 + 40 + 20; 20 == G/2 is legal, stays separate.
  auto groups = sched.build_static(ids(100));
  ASSERT_EQ(groups.size(), 3u);
  EXPECT_EQ(groups[2].members.size(), 20u);
}

TEST(GroupScheduler, AllClientsCoveredExactlyOnce) {
  GroupScheduler sched(40, usec(100), true);
  std::vector<ClientStats> stats;
  for (int i = 0; i < 173; ++i) {
    stats.push_back({i, static_cast<uint64_t>(i * 7 % 50), 32});
  }
  auto groups = sched.rebuild(stats);
  size_t total = 0;
  for (const auto& g : groups) {
    total += g.members.size();
  }
  EXPECT_EQ(total, 173u);
  EXPECT_EQ(members_of(groups).size(), 173u);
}

TEST(GroupScheduler, DynamicGivesBusyClientsSmallerGroupsLongerSlices) {
  GroupScheduler sched(40, usec(100), true);
  std::vector<ClientStats> stats;
  // Clients 0..39 are busy (high rate, small msgs); 40..119 are idle.
  for (int i = 0; i < 120; ++i) {
    const uint64_t reqs = i < 40 ? 10000 : 10;
    stats.push_back({i, reqs, reqs * 32});
  }
  auto groups = sched.rebuild(stats);
  ASSERT_GE(groups.size(), 2u);
  // The first group holds the busiest clients, is at most G/2+..., and has
  // a stretched slice; the last group is large with a shrunk slice.
  const Group& hot = groups.front();
  const Group& cold = groups.back();
  EXPECT_LE(hot.members.size(), static_cast<size_t>(sched.group_size()));
  EXPECT_GT(hot.slice, sched.default_slice());
  EXPECT_GE(cold.members.size(), static_cast<size_t>(sched.group_size()));
  EXPECT_LT(cold.slice, sched.default_slice());
  // Busy ids should be concentrated in the front groups.
  int busy_in_hot = 0;
  for (int m : hot.members) {
    busy_in_hot += (m < 40) ? 1 : 0;
  }
  EXPECT_EQ(busy_in_hot, static_cast<int>(hot.members.size()));
}

TEST(GroupScheduler, DynamicGroupSizesWithinLegalBand) {
  GroupScheduler sched(40, usec(100), true);
  std::vector<ClientStats> stats;
  for (int i = 0; i < 400; ++i) {
    stats.push_back({i, static_cast<uint64_t>((i * 131) % 997), 32});
  }
  auto groups = sched.rebuild(stats);
  for (const auto& g : groups) {
    EXPECT_GE(static_cast<int>(g.members.size()), 1);
    EXPECT_LE(static_cast<int>(g.members.size()), sched.max_size());
  }
}

TEST(GroupScheduler, StaticModeRebuildIgnoresPriorities) {
  GroupScheduler sched(4, usec(100), false);
  std::vector<ClientStats> stats;
  for (int i = 0; i < 8; ++i) {
    stats.push_back({i, static_cast<uint64_t>(1000 - i), 32});
  }
  auto groups = sched.rebuild(stats);
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].members, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(groups[1].members, (std::vector<int>{4, 5, 6, 7}));
}

TEST(ClientStats, PriorityPrefersFrequentSmallRequests) {
  ClientStats frequent_small{0, 1000, 1000 * 32};
  ClientStats frequent_large{1, 1000, 1000 * 4096};
  ClientStats rare_small{2, 10, 10 * 32};
  ClientStats idle{3, 0, 0};
  EXPECT_GT(frequent_small.priority(), frequent_large.priority());
  EXPECT_GT(frequent_small.priority(), rare_small.priority());
  EXPECT_EQ(idle.priority(), 0.0);
}

TEST(GroupScheduler, SingleClient) {
  GroupScheduler sched(40, usec(100), true);
  auto groups = sched.rebuild({ClientStats{0, 5, 160}});
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].members, (std::vector<int>{0}));
}

}  // namespace
}  // namespace scalerpc::core
