// The shared-QP proxy baseline (src/baselines/proxy.h) must obey the house
// determinism contract before it can appear in any figure: identical
// configurations produce identical observables on repeat runs, and running
// proxy sweep points through the parallel sweep engine at --threads=4 is
// byte-identical to --threads=1. Also pins the behaviors that make it the
// RDMAvisor-style baseline: echo correctness through the agent indirection,
// server-side state O(connections) not O(clients), and proxy-side queueing
// engaging once clients outnumber the K x S wire slots.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "src/baselines/proxy.h"
#include "src/harness/harness.h"
#include "src/harness/sweep.h"

namespace scalerpc::harness {
namespace {

struct Point {
  int clients;
  int batch;
  int conns;
  int slots;
};

EchoResult run_point(const Point& p) {
  TestbedConfig cfg;
  cfg.kind = TransportKind::kProxy;
  cfg.num_clients = p.clients;
  cfg.num_client_nodes = 3;
  cfg.rpc.proxy_conns_per_node = p.conns;
  cfg.rpc.proxy_slots_per_conn = p.slots;
  Testbed bed(cfg);
  EchoWorkload wl;
  wl.batch = p.batch;
  wl.measure = msec(1);
  return run_echo(bed, wl);
}

std::string counter_dump(const EchoResult& r) {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "ops=%llu elapsed=%lld lat_count=%llu lat_max=%lld lat_p50=%lld "
                "lat_p99=%lld pcie_rd=%llu rfo=%llu itom=%llu l3_hits=%llu "
                "l3_misses=%llu qp_misses=%llu",
                static_cast<unsigned long long>(r.ops),
                static_cast<long long>(r.elapsed),
                static_cast<unsigned long long>(r.batch_latency.count()),
                static_cast<long long>(r.batch_latency.max()),
                static_cast<long long>(r.batch_latency.percentile(50)),
                static_cast<long long>(r.batch_latency.percentile(99)),
                static_cast<unsigned long long>(r.server_pcm.pcie_rd_cur),
                static_cast<unsigned long long>(r.server_pcm.rfo),
                static_cast<unsigned long long>(r.server_pcm.itom),
                static_cast<unsigned long long>(r.server_pcm.l3_hits),
                static_cast<unsigned long long>(r.server_pcm.l3_misses),
                static_cast<unsigned long long>(r.server_qp_cache_misses));
  return buf;
}

const std::vector<Point>& points() {
  // Last point oversubscribes the wire slots (24 clients x 4 > 2 x 8 per
  // node) so the agent queue path is exercised by the determinism sweep.
  static const std::vector<Point> pts = {
      {12, 2, 4, 16}, {24, 4, 4, 16}, {16, 8, 2, 4}, {24, 4, 2, 8},
  };
  return pts;
}

std::vector<std::string> sweep_dumps(int threads) {
  Sweep sweep;
  std::vector<std::string> dumps(points().size());
  for (size_t i = 0; i < points().size(); ++i) {
    sweep.add("point" + std::to_string(i),
              [p = points()[i], slot = &dumps[i]] { *slot = counter_dump(run_point(p)); });
  }
  sweep.run(threads);
  return dumps;
}

TEST(ProxyBaseline, EchoCompletesAndIsRepeatDeterministic) {
  const EchoResult a = run_point({16, 4, 4, 16});
  const EchoResult b = run_point({16, 4, 4, 16});
  EXPECT_GT(a.ops, 0u);
  EXPECT_EQ(a.client_timeouts, 0u);
  EXPECT_EQ(counter_dump(a), counter_dump(b));
}

TEST(ProxyBaseline, ByteIdenticalAcrossSweepThreads) {
  const auto serial = sweep_dumps(1);
  const auto parallel = sweep_dumps(4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], parallel[i]) << "sweep point " << i;
  }
}

TEST(ProxyBaseline, ServerStateScalesWithConnsNotClients) {
  // Twice the clients on the same node count must not add server QPs: the
  // server only ever talks to the per-node agents.
  auto server_qps = [](int clients) {
    TestbedConfig cfg;
    cfg.kind = TransportKind::kProxy;
    cfg.num_clients = clients;
    cfg.num_client_nodes = 3;
    Testbed bed(cfg);
    return bed.server_node()->num_qps();
  };
  EXPECT_EQ(server_qps(12), server_qps(48));
}

TEST(ProxyBaseline, QueueEngagesWhenSlotsOversubscribed) {
  TestbedConfig cfg;
  cfg.kind = TransportKind::kProxy;
  cfg.num_clients = 24;
  cfg.num_client_nodes = 1;
  cfg.rpc.proxy_conns_per_node = 2;
  cfg.rpc.proxy_slots_per_conn = 4;
  Testbed bed(cfg);
  EchoWorkload wl;
  wl.batch = 4;
  wl.measure = msec(1);
  const EchoResult r = run_echo(bed, wl);
  EXPECT_GT(r.ops, 0u);
  auto* server = static_cast<transport::ProxyServer*>(&bed.server());
  transport::ProxyAgent* agent =
      server->agent_for(bed.cluster().node(1), nullptr);
  // 24 closed-loop clients x batch 4 against 8 wire slots: the agent queue
  // must have been the limiting stage at some point.
  EXPECT_GT(agent->queue_peak(), 0u);
}

}  // namespace
}  // namespace scalerpc::harness
