// End-to-end OCC correctness: concurrent transfer transactions must
// conserve total money (serializability), for both the one-sided (ScaleTX)
// and RPC-only (ScaleTX-O) commit paths and for a baseline transport.
#include <gtest/gtest.h>

#include "src/txn/testbed.h"

namespace scalerpc::txn {
namespace {

using harness::TransportKind;

constexpr uint64_t kAccounts = 64;
constexpr uint64_t kInitial = 1000;

uint64_t balance_of(ScaleTxTestbed& bed, uint64_t key) {
  const auto shard = static_cast<size_t>(key % 3);
  auto view = bed.participant(shard).store().lookup(key);
  SCALERPC_CHECK(view.has_value());
  uint64_t v = 0;
  std::memcpy(&v, view->value.data(), sizeof(v));
  return v;
}

rpc::Bytes value_bytes(uint64_t v) {
  rpc::Bytes out(40, 0);
  std::memcpy(&out[0], &v, sizeof(v));
  return out;
}

// A transfer: a single read-modify-write transaction. Both accounts are in
// the write set (locked through commit); the compute callback derives the
// new balances from the values observed in the execution phase. Any lost
// update or misrouted commit would create/destroy money.
sim::Task<void> transfer_actor(ScaleTxTestbed* bed, size_t coord, Rng rng, int txns,
                               int* done) {
  Coordinator& co = bed->coordinator(coord);
  for (int i = 0; i < txns; ++i) {
    uint64_t a = rng.next_below(kAccounts);
    uint64_t b = rng.next_below(kAccounts);
    if (a == b) {
      b = (b + 1) % kAccounts;
    }
    const uint64_t roll = rng.next();
    TxnRequest txn;
    txn.write_set.emplace_back(a, value_bytes(0));
    txn.write_set.emplace_back(b, value_bytes(0));
    txn.compute = [a, b, roll](const TxnRequest::Observed& observed,
                               std::vector<std::pair<uint64_t, rpc::Bytes>>* writes) {
      uint64_t bal_a = 0;
      uint64_t bal_b = 0;
      for (const auto& [key, value] : observed) {
        uint64_t v = 0;
        std::memcpy(&v, value.data(), sizeof(v));
        (key == a ? bal_a : bal_b) = v;
      }
      const uint64_t amount = bal_a == 0 ? 0 : 1 + roll % bal_a;
      writes->emplace_back(a, value_bytes(bal_a - amount));
      writes->emplace_back(b, value_bytes(bal_b + amount));
    };
    for (int attempt = 0; attempt < 200; ++attempt) {
      const TxnOutcome out = co_await co.execute(txn);
      if (out.committed) {
        break;
      }
      co_await bed->loop().delay(usec(rng.next_in(1, 5)));
    }
  }
  (*done)++;
}

class SerializabilityTest
    : public ::testing::TestWithParam<std::pair<TransportKind, bool>> {};

TEST_P(SerializabilityTest, ConcurrentTransfersConserveTotalBalance) {
  const auto [kind, one_sided] = GetParam();
  ScaleTxConfig cfg;
  cfg.kind = kind;
  cfg.one_sided = one_sided;
  cfg.num_coordinators = 8;
  cfg.coordinator_nodes = 4;
  cfg.keys_per_shard = kAccounts;  // covers keys 0..3*kAccounts
  cfg.rpc.group_size = 8;
  ScaleTxTestbed bed(cfg);
  bed.preload();
  // Seed balances.
  for (uint64_t k = 0; k < kAccounts; ++k) {
    bed.participant(k % 3).store().commit_update(k, value_bytes(kInitial));
  }
  bed.start();

  int done = 0;
  constexpr int kTxnsPerActor = 25;
  for (size_t c = 0; c < bed.num_coordinators(); ++c) {
    sim::spawn(bed.loop(), transfer_actor(&bed, c, Rng(17 * (c + 1)), kTxnsPerActor,
                                          &done));
  }
  const Nanos horizon = bed.loop().now() + 5 * kSecond;
  while (done < static_cast<int>(bed.num_coordinators()) &&
         bed.loop().now() < horizon) {
    bed.loop().run_for(msec(5));
  }
  ASSERT_EQ(done, static_cast<int>(bed.num_coordinators()))
      << "transfer actors did not finish";
  bed.stop();
  bed.loop().run_for(msec(1));  // let fire-and-forget commits land

  uint64_t total = 0;
  for (uint64_t k = 0; k < kAccounts; ++k) {
    total += balance_of(bed, k);
    // And no lock may leak.
    EXPECT_EQ(bed.participant(k % 3).store().lookup(k)->lock, 0u) << "key " << k;
  }
  EXPECT_EQ(total, kAccounts * kInitial);
}

INSTANTIATE_TEST_SUITE_P(
    Modes, SerializabilityTest,
    ::testing::Values(std::make_pair(TransportKind::kScaleRpc, true),
                      std::make_pair(TransportKind::kScaleRpc, false),
                      std::make_pair(TransportKind::kRawWrite, false)),
    [](const ::testing::TestParamInfo<std::pair<TransportKind, bool>>& info) {
      return std::string(harness::to_string(info.param.first)) +
             (info.param.second ? "_OneSided" : "_RpcOnly");
    });

}  // namespace
}  // namespace scalerpc::txn
