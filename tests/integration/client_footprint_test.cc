// Per-client memory budgets for the million-client scale wall.
//
// A counting global operator new measures the marginal heap bytes of (a) a
// constructed-but-unconnected client — must be near-nothing, since
// bench_scale_wall builds the whole fleet up front and connects lazily —
// and (b) a fully connected client per transport, asserted against the
// budgets documented in docs/scaling.md. The simulated arenas are mmap'd
// lazy pages (src/common/lazy_mem.h) and deliberately invisible here: this
// test pins the *host heap* cost that actually caps fleet size.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <new>

#include "src/harness/harness.h"
#include "src/simrdma/node.h"

namespace {
uint64_t g_alloc_bytes = 0;
}  // namespace

void* operator new(std::size_t n) {
  g_alloc_bytes += n;
  void* p = std::malloc(n);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace scalerpc::harness {
namespace {

TestbedConfig deferred_config(TransportKind kind, int clients) {
  TestbedConfig cfg;
  cfg.kind = kind;
  cfg.num_clients = clients;
  cfg.num_client_nodes = 4;
  cfg.defer_connect = true;
  return cfg;
}

// Marginal heap bytes per connected client, measured over the second half
// of the fleet so one-time costs (first pool rebuild, vector growth to
// capacity) amortize out of the first half.
uint64_t connected_bytes_per_client(TransportKind kind, int clients) {
  Testbed bed(deferred_config(kind, clients));
  const int half = clients / 2;
  for (int i = 0; i < half; ++i) {
    bed.connect_client(static_cast<size_t>(i));
  }
  const uint64_t before = g_alloc_bytes;
  for (int i = half; i < clients; ++i) {
    bed.connect_client(static_cast<size_t>(i));
  }
  return (g_alloc_bytes - before) / static_cast<uint64_t>(clients - half);
}

// --- The budgets (bytes of host heap per client, documented in
// docs/scaling.md). Measured values on the reference toolchain: ScaleRPC
// ~810, RawWrite ~750, SharedQP ~56; the ~2x headroom absorbs allocator
// and libstdc++ layout noise, not design regressions — growing a
// per-client struct past its bound is exactly what this test is for.
constexpr uint64_t kBudgetScaleRpc = 2048;
constexpr uint64_t kBudgetRawWrite = 2048;
constexpr uint64_t kBudgetProxy = 256;
constexpr uint64_t kBudgetUnconnected = 640;

TEST(ClientFootprint, UnconnectedClientsAllocateAlmostNothing) {
  // Marginal cost of fleet size with zero connects: just the client object.
  // 256 -> 1024 isolates per-client cost from fixed testbed overhead.
  uint64_t bytes_small, bytes_large;
  {
    const uint64_t before = g_alloc_bytes;
    Testbed bed(deferred_config(TransportKind::kScaleRpc, 256));
    bytes_small = g_alloc_bytes - before;
  }
  {
    const uint64_t before = g_alloc_bytes;
    Testbed bed(deferred_config(TransportKind::kScaleRpc, 1024));
    bytes_large = g_alloc_bytes - before;
    // No client touched the simulator: no QP, CQ, or server-side admission
    // may exist anywhere in the cluster.
    for (size_t n = 0; n < bed.cluster().num_nodes(); ++n) {
      EXPECT_EQ(bed.cluster().node(static_cast<int>(n))->num_qps(), 0u);
    }
  }
  ASSERT_GT(bytes_large, bytes_small);
  EXPECT_LT((bytes_large - bytes_small) / (1024 - 256), kBudgetUnconnected);
}

TEST(ClientFootprint, ConnectIsLazyAndLocal) {
  // Connecting one client creates state only for that client: its node
  // gains endpoint state, the other client nodes stay untouched.
  Testbed bed(deferred_config(TransportKind::kScaleRpc, 64));
  bed.connect_client(0);  // client 0 lives on node 1 (round-robin)
  EXPECT_GT(bed.cluster().node(1)->num_qps(), 0u);
  EXPECT_EQ(bed.cluster().node(2)->num_qps(), 0u);
  EXPECT_EQ(bed.cluster().node(3)->num_qps(), 0u);
  EXPECT_TRUE(bed.client_connected(0));
  EXPECT_FALSE(bed.client_connected(1));
}

TEST(ClientFootprint, ScaleRpcPerClientByteBudget) {
  const uint64_t bytes = connected_bytes_per_client(TransportKind::kScaleRpc, 256);
  printf("ScaleRPC connected client: %llu heap bytes (budget %llu)\n",
         (unsigned long long)bytes, (unsigned long long)kBudgetScaleRpc);
  EXPECT_LT(bytes, kBudgetScaleRpc);
}

TEST(ClientFootprint, RawWritePerClientByteBudget) {
  const uint64_t bytes = connected_bytes_per_client(TransportKind::kRawWrite, 256);
  printf("RawWrite connected client: %llu heap bytes (budget %llu)\n",
         (unsigned long long)bytes, (unsigned long long)kBudgetRawWrite);
  EXPECT_LT(bytes, kBudgetRawWrite);
}

TEST(ClientFootprint, DisconnectReturnsClientsToUnconnectedBudget) {
  // Churn steady state: after one warm connect/disconnect cycle has grown
  // every pool and freelist to peak (QP slots parked on the qpn freelist,
  // pooled frames and buffers returned), a further full cycle must stay
  // within the *unconnected* per-client budget — i.e. disconnect_client
  // really returns a client to its unconnected footprint, and readmission
  // reuses the recycled resources instead of allocating fresh ones.
  constexpr int kClients = 256;
  Testbed bed(deferred_config(TransportKind::kScaleRpc, kClients));
  for (int i = 0; i < kClients; ++i) {
    bed.connect_client(static_cast<size_t>(i));
  }
  for (int i = 0; i < kClients; ++i) {
    bed.disconnect_client(static_cast<size_t>(i));
    EXPECT_FALSE(bed.client_connected(static_cast<size_t>(i)));
  }
  const uint64_t before = g_alloc_bytes;
  for (int i = 0; i < kClients; ++i) {
    bed.connect_client(static_cast<size_t>(i));
  }
  for (int i = 0; i < kClients; ++i) {
    bed.disconnect_client(static_cast<size_t>(i));
  }
  const uint64_t bytes = (g_alloc_bytes - before) / kClients;
  printf("ScaleRPC reconnect cycle:  %llu heap bytes/client (budget %llu)\n",
         (unsigned long long)bytes, (unsigned long long)kBudgetUnconnected);
  EXPECT_LT(bytes, kBudgetUnconnected);
  // Disconnect released every QP back to the pool on both sides.
  for (size_t n = 0; n < bed.cluster().num_nodes(); ++n) {
    EXPECT_EQ(bed.cluster().node(static_cast<int>(n))->live_qps(), 0u);
  }
}

TEST(ClientFootprint, ProxyPerClientByteBudget) {
  // The RDMAvisor-style win: a proxied client is just the object and a
  // notification — the agent's K x S wire state amortizes across the node.
  const uint64_t bytes = connected_bytes_per_client(TransportKind::kProxy, 256);
  printf("SharedQP proxied client:  %llu heap bytes (budget %llu)\n",
         (unsigned long long)bytes, (unsigned long long)kBudgetProxy);
  EXPECT_LT(bytes, kBudgetProxy);
}

}  // namespace
}  // namespace scalerpc::harness
