// The parallel sweep engine must be invisible in the results: running a set
// of independent simulations through Sweep on worker threads produces
// observables byte-identical to running them serially on the main thread.
// This is the regression gate for the --threads flag on the figure benches.
#include "src/harness/sweep.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "src/harness/harness.h"

namespace scalerpc::harness {
namespace {

struct Point {
  TransportKind kind;
  int clients;
  int batch;
};

EchoResult run_point(const Point& p) {
  TestbedConfig cfg;
  cfg.kind = p.kind;
  cfg.num_clients = p.clients;
  cfg.num_client_nodes = 3;
  cfg.rpc.group_size = 8;
  Testbed bed(cfg);
  EchoWorkload wl;
  wl.batch = p.batch;
  wl.measure = msec(1);
  return run_echo(bed, wl);
}

// Formats every observable of a run into one string; serial and parallel
// sweeps must produce byte-identical dumps for each point.
std::string counter_dump(const EchoResult& r) {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "ops=%llu elapsed=%lld lat_count=%llu lat_max=%lld lat_p50=%lld "
                "lat_p99=%lld pcie_rd=%llu rfo=%llu itom=%llu pcie_itom=%llu "
                "l3_hits=%llu l3_misses=%llu qp_misses=%llu",
                static_cast<unsigned long long>(r.ops),
                static_cast<long long>(r.elapsed),
                static_cast<unsigned long long>(r.batch_latency.count()),
                static_cast<long long>(r.batch_latency.max()),
                static_cast<long long>(r.batch_latency.percentile(50)),
                static_cast<long long>(r.batch_latency.percentile(99)),
                static_cast<unsigned long long>(r.server_pcm.pcie_rd_cur),
                static_cast<unsigned long long>(r.server_pcm.rfo),
                static_cast<unsigned long long>(r.server_pcm.itom),
                static_cast<unsigned long long>(r.server_pcm.pcie_itom),
                static_cast<unsigned long long>(r.server_pcm.l3_hits),
                static_cast<unsigned long long>(r.server_pcm.l3_misses),
                static_cast<unsigned long long>(r.server_qp_cache_misses));
  return buf;
}

const std::vector<Point>& points() {
  static const std::vector<Point> pts = {
      {TransportKind::kScaleRpc, 24, 4}, {TransportKind::kScaleRpc, 16, 8},
      {TransportKind::kRawWrite, 24, 1}, {TransportKind::kFasst, 24, 4},
      {TransportKind::kHerd, 16, 2},     {TransportKind::kSelfRpc, 16, 4},
  };
  return pts;
}

std::vector<std::string> sweep_dumps(int threads) {
  Sweep sweep;
  std::vector<std::string> dumps(points().size());
  for (size_t i = 0; i < points().size(); ++i) {
    sweep.add("point" + std::to_string(i),
              [p = points()[i], slot = &dumps[i]] { *slot = counter_dump(run_point(p)); });
  }
  sweep.run(threads);
  return dumps;
}

TEST(SweepDeterminism, ParallelMatchesSerialByteForByte) {
  const std::vector<std::string> serial = sweep_dumps(1);
  const std::vector<std::string> parallel = sweep_dumps(4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], parallel[i]) << "point " << i;
  }
}

TEST(SweepDeterminism, RepeatedParallelRunsAgree) {
  const std::vector<std::string> a = sweep_dumps(4);
  const std::vector<std::string> b = sweep_dumps(4);
  EXPECT_EQ(a, b);
}

TEST(SweepDeterminism, OversubscribedThreadsClampToTasks) {
  // More workers than tasks is fine; results still match serial.
  const std::vector<std::string> serial = sweep_dumps(1);
  const std::vector<std::string> wide = sweep_dumps(64);
  EXPECT_EQ(serial, wide);
}

}  // namespace
}  // namespace scalerpc::harness
