// End-to-end ScaleRPC recovery under injected faults (docs/faults.md):
// every staged RPC completes, executes exactly once on the server, and the
// whole disturbance is deterministic for a fixed plan + fault_seed.
#include <gtest/gtest.h>

#include <cstring>
#include <unordered_map>
#include <vector>

#include "src/fault/plan.h"
#include "src/harness/harness.h"

namespace scalerpc {
namespace {

using harness::Testbed;
using harness::TestbedConfig;

constexpr uint8_t kOp = 1;
constexpr int kClients = 6;
constexpr int kBatch = 4;
constexpr int kBatches = 120;

// Every request carries a unique 8-byte id; the handler tallies executions
// per id, so a retransmit that slips past the dedup layer shows up as a
// count of 2, and a silently lost completion as a stuck actor.
struct Ledger {
  std::unordered_map<uint64_t, int> exec_counts;
};

uint64_t request_id(size_t client, int batch, int k) {
  return (static_cast<uint64_t>(client) << 32) |
         static_cast<uint64_t>(batch * kBatch + k);
}

sim::Task<void> actor(rpc::RpcClient* client, size_t idx, int* done) {
  uint64_t ids[kBatch];
  for (int b = 0; b < kBatches; ++b) {
    for (int k = 0; k < kBatch; ++k) {
      ids[k] = request_id(idx, b, k);
      rpc::Bytes payload(32, static_cast<uint8_t>(idx));
      std::memcpy(payload.data(), &ids[k], sizeof(ids[k]));
      client->stage(kOp, payload);
    }
    std::vector<rpc::Bytes> resp = co_await client->flush();
    EXPECT_EQ(resp.size(), static_cast<size_t>(kBatch));
    for (size_t k = 0; k < resp.size(); ++k) {
      // ASSERT_* returns, which a coroutine cannot; CHECK aborts instead.
      SCALERPC_CHECK(resp[k].size() >= sizeof(uint64_t));
      uint64_t echoed = 0;
      std::memcpy(&echoed, resp[k].data(), sizeof(echoed));
      EXPECT_EQ(echoed, ids[k]) << "client " << idx << " batch " << b;
    }
  }
  (*done)++;
}

struct RunStats {
  uint64_t ops = 0;
  uint64_t timeouts = 0;
  uint64_t reconnects = 0;
  uint64_t dups = 0;
  uint64_t retx = 0;
  uint64_t drops = 0;
  uint64_t crash_drops = 0;
  Nanos end_time = 0;

  bool operator==(const RunStats&) const = default;
};

TestbedConfig make_config(const fault::FaultPlan& plan, uint64_t salt) {
  TestbedConfig cfg;
  cfg.kind = harness::TransportKind::kScaleRpc;
  cfg.num_clients = kClients;
  cfg.num_client_nodes = 2;
  cfg.rpc.group_size = 3;
  cfg.rpc.time_slice = usec(40);
  cfg.rpc.client_timeout = usec(150);
  cfg.rpc.client_timeout_max = usec(600);
  cfg.sim.rc_retransmit_timeout_ns = 8000;
  cfg.sim.rc_retry_count = 5;
  cfg.faults = &plan;
  cfg.fault_seed = salt;
  return cfg;
}

RunStats run_workload(const fault::FaultPlan& plan, uint64_t salt,
                      Ledger* ledger) {
  TestbedConfig cfg = make_config(plan, salt);
  Testbed bed(cfg);
  auto& loop = bed.loop();

  bed.server().handlers().register_handler(
      kOp, [ledger](const rpc::RequestContext&, std::span<const uint8_t> req) {
        rpc::HandlerResult r;
        SCALERPC_CHECK(req.size() >= sizeof(uint64_t));
        uint64_t id = 0;
        std::memcpy(&id, req.data(), sizeof(id));
        ledger->exec_counts[id]++;
        r.response.assign(req.begin(), req.end());
        r.cpu_ns = 100;
        return r;
      });
  bed.server().start();

  int done = 0;
  for (size_t c = 0; c < bed.num_clients(); ++c) {
    sim::spawn(loop, actor(&bed.client(c), c, &done));
  }
  const Nanos horizon = loop.now() + 2 * kSecond;
  while (done < kClients && loop.now() < horizon) {
    loop.run_for(msec(1));
  }
  EXPECT_EQ(done, kClients) << "an actor lost a completion and never finished";
  loop.run_for(msec(2));  // drain stragglers (late retransmits, sweeps)
  bed.server().stop();

  RunStats s;
  s.ops = bed.server().requests_served();
  for (size_t c = 0; c < bed.num_clients(); ++c) {
    if (core::ScaleRpcClient* sc = bed.scalerpc_client(c)) {
      s.timeouts += sc->timeouts();
      s.reconnects += sc->reconnects();
    }
  }
  s.dups = bed.scalerpc()->dup_rpcs();
  for (size_t n = 0; n < bed.cluster().num_nodes(); ++n) {
    s.retx +=
        bed.cluster().node(static_cast<int>(n))->nic().counters().rc_retransmits;
  }
  if (fault::FaultInjector* inj = bed.cluster().faults()) {
    s.drops = inj->counters().drops;
    s.crash_drops = inj->counters().crash_drops;
  }
  s.end_time = loop.now();
  return s;
}

void expect_exactly_once(const Ledger& ledger) {
  EXPECT_EQ(ledger.exec_counts.size(),
            static_cast<size_t>(kClients) * kBatches * kBatch);
  for (const auto& [id, count] : ledger.exec_counts) {
    EXPECT_EQ(count, 1) << "request " << std::hex << id
                        << " executed more than once";
  }
}

// Acceptance gate from ISSUE: a 1% drop plan yields 100% RPC success with
// zero duplicate executions.
TEST(FaultRecovery, OnePercentDropExactlyOnce) {
  fault::FaultPlan plan;
  plan.seed = 11;
  plan.drop(0.01);
  Ledger ledger;
  RunStats s = run_workload(plan, /*salt=*/1, &ledger);
  expect_exactly_once(ledger);
  EXPECT_GT(s.drops, 0u) << "plan injected nothing; test proves nothing";
  EXPECT_GT(s.retx, 0u);
  EXPECT_EQ(s.ops, static_cast<uint64_t>(kClients) * kBatches * kBatch);
}

// Heavier loss forces the RPC-level timeout path (not just transport
// retransmits) and still must not double-execute.
TEST(FaultRecovery, HeavyLossStillExactlyOnce) {
  fault::FaultPlan plan;
  plan.seed = 23;
  plan.drop(0.08);
  Ledger ledger;
  RunStats s = run_workload(plan, /*salt=*/2, &ledger);
  expect_exactly_once(ledger);
  EXPECT_GT(s.drops, 0u);
}

// Server crash + restart: clients time out, tear down their QPs, readmit,
// and replay; the dedup layer absorbs any request that executed before the
// response was lost to the crash.
TEST(FaultRecovery, ServerCrashRestartExactlyOnce) {
  fault::FaultPlan plan;
  plan.seed = 5;
  plan.crash(/*node=*/0, /*at=*/usec(300), /*restart=*/usec(600));
  Ledger ledger;
  RunStats s = run_workload(plan, /*salt=*/3, &ledger);
  expect_exactly_once(ledger);
  EXPECT_GT(s.timeouts, 0u) << "crash window missed the workload";
  EXPECT_GT(s.reconnects, 0u) << "no client re-established its QP";
}

// A forced QP error on the server node must only perturb the client(s) on
// that QP: everyone still finishes exactly-once.
TEST(FaultRecovery, QpErrorRejoinsWithoutPerturbingOthers) {
  fault::FaultPlan plan;
  plan.seed = 9;
  plan.qp_error(/*node=*/0, /*qpn=*/2, /*at=*/usec(250));
  Ledger ledger;
  RunStats s = run_workload(plan, /*salt=*/4, &ledger);
  expect_exactly_once(ledger);
  EXPECT_GE(s.reconnects, 1u);
}

// Fixed plan + fault_seed => the entire run (every counter and the final
// sim clock) is bit-for-bit reproducible.
TEST(FaultRecovery, DeterministicForFixedSeed) {
  fault::FaultPlan plan;
  plan.seed = 77;
  plan.drop(0.02).crash(0, usec(300), usec(550));
  Ledger la, lb;
  RunStats a = run_workload(plan, /*salt=*/8, &la);
  RunStats b = run_workload(plan, /*salt=*/8, &lb);
  EXPECT_EQ(a, b);
  EXPECT_EQ(la.exec_counts, lb.exec_counts);

  Ledger lc;
  RunStats c = run_workload(plan, /*salt=*/9, &lc);
  EXPECT_NE(a, c) << "different fault_seed should be a different realization";
}

}  // namespace
}  // namespace scalerpc
