// Randomized/property tests: model-based fuzzing of the stores against
// reference implementations, message framing round-trips under random
// sizes, codec round-trips, and transports under randomized op/payload
// sequences.
#include <gtest/gtest.h>

#include <map>
#include <unordered_map>

#include "src/common/codec.h"
#include "src/common/rng.h"
#include "src/dfs/metadata.h"
#include "src/fault/plan.h"
#include "src/harness/harness.h"
#include "src/kv/hashstore.h"
#include "src/rpc/large_transfer.h"
#include "src/sim/pool.h"
#include "src/simrdma/nic.h"

namespace scalerpc {
namespace {

TEST(Fuzz, HashStoreMatchesReferenceModel) {
  simrdma::Cluster cluster;
  auto* node = cluster.add_node("kv");
  kv::HashStore store(node, 512, 16);
  std::unordered_map<uint64_t, std::vector<uint8_t>> model;
  Rng rng(99);
  for (int step = 0; step < 20000; ++step) {
    const uint64_t key = rng.next_below(300);
    const int op = static_cast<int>(rng.next_below(3));
    if (op == 0 && model.size() < 250) {  // insert
      std::vector<uint8_t> value(16);
      for (auto& b : value) {
        b = static_cast<uint8_t>(rng.next());
      }
      const bool inserted = store.insert(key, value).has_value();
      EXPECT_EQ(inserted, model.count(key) == 0);
      if (inserted) {
        model[key] = value;
      }
    } else if (op == 1) {  // lookup
      auto view = store.lookup(key);
      ASSERT_EQ(view.has_value(), model.count(key) != 0) << "key " << key;
      if (view.has_value()) {
        EXPECT_EQ(view->value, model[key]);
      }
    } else if (model.count(key) != 0) {  // update
      std::vector<uint8_t> value(16);
      for (auto& b : value) {
        b = static_cast<uint8_t>(rng.next());
      }
      EXPECT_TRUE(store.commit_update(key, value));
      model[key] = value;
    }
  }
}

TEST(Fuzz, MetadataStoreMatchesReferenceModel) {
  dfs::MetadataStore store;
  std::map<std::string, bool> model;  // path -> is_dir
  model["/"] = true;
  Rng rng(7);
  auto random_path = [&rng] {
    std::string p = "/d" + std::to_string(rng.next_below(4));
    if (rng.next_bool(0.6)) {
      p += "/f" + std::to_string(rng.next_below(6));
    }
    return p;
  };
  for (int step = 0; step < 20000; ++step) {
    const std::string path = random_path();
    const auto slash = path.find_last_of('/');
    const std::string parent = slash == 0 ? "/" : path.substr(0, slash);
    switch (rng.next_below(4)) {
      case 0: {  // mknod
        const auto s = store.mknod(path, step);
        const bool ok = model.count(path) == 0 && model.count(parent) != 0 &&
                        model[parent];
        EXPECT_EQ(s == dfs::DfsStatus::kOk, ok) << path;
        if (s == dfs::DfsStatus::kOk) {
          model[path] = false;
        }
        break;
      }
      case 1: {  // mkdir
        const auto s = store.mkdir(path, step);
        if (s == dfs::DfsStatus::kOk) {
          model[path] = true;
        }
        break;
      }
      case 2: {  // stat
        dfs::Attributes attrs;
        const auto s = store.stat(path, &attrs);
        EXPECT_EQ(s == dfs::DfsStatus::kOk, model.count(path) != 0) << path;
        break;
      }
      default: {  // rmnod (only safe when no children in model)
        bool has_children = false;
        for (const auto& [p, _] : model) {
          if (p.size() > path.size() && p.compare(0, path.size(), path) == 0 &&
              p[path.size()] == '/') {
            has_children = true;
          }
        }
        const auto s = store.rmnod(path);
        if (model.count(path) != 0 && !has_children && path != "/") {
          EXPECT_EQ(s, dfs::DfsStatus::kOk) << path;
          model.erase(path);
        } else {
          EXPECT_NE(s, dfs::DfsStatus::kOk) << path;
        }
        break;
      }
    }
  }
}

TEST(Fuzz, MsgFormatRoundTripsRandomSizes) {
  simrdma::HostMemory mem(KiB(64));
  Rng rng(3);
  for (int i = 0; i < 5000; ++i) {
    const uint32_t block = 1u << rng.next_in(6, 13);  // 64B..8KB
    rpc::Bytes data(rng.next_below(rpc::max_payload(block) + 1));
    for (auto& b : data) {
      b = static_cast<uint8_t>(rng.next());
    }
    const auto op = static_cast<uint8_t>(rng.next_below(256));
    const auto flags = static_cast<uint8_t>(rng.next_below(256));
    rpc::MessageView msg;
    msg.op = op;
    msg.flags = flags;
    msg.data = data;
    rpc::place_in_block(mem, simrdma::kMemoryBase, block, msg);
    auto decoded = rpc::decode_block(mem, simrdma::kMemoryBase, block);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->op, op);
    EXPECT_EQ(decoded->flags, flags);
    EXPECT_EQ(decoded->data, data);
    rpc::clear_block(mem, simrdma::kMemoryBase, block);
  }
}

TEST(Fuzz, CodecRoundTripsRandomRecords) {
  Rng rng(21);
  for (int i = 0; i < 2000; ++i) {
    Writer w;
    const uint8_t a = static_cast<uint8_t>(rng.next());
    const uint16_t b = static_cast<uint16_t>(rng.next());
    const uint32_t c = static_cast<uint32_t>(rng.next());
    const uint64_t d = rng.next();
    const int64_t e = static_cast<int64_t>(rng.next());
    CodecBytes blob(rng.next_below(100));
    for (auto& x : blob) {
      x = static_cast<uint8_t>(rng.next());
    }
    const std::string s = "str" + std::to_string(rng.next_below(1000));
    w.u8(a);
    w.u16(b);
    w.u32(c);
    w.u64(d);
    w.i64(e);
    w.bytes(blob);
    w.str(s);
    auto buf = w.take();
    Reader r(buf);
    EXPECT_EQ(r.u8(), a);
    EXPECT_EQ(r.u16(), b);
    EXPECT_EQ(r.u32(), c);
    EXPECT_EQ(r.u64(), d);
    EXPECT_EQ(r.i64(), e);
    EXPECT_EQ(r.bytes(), blob);
    EXPECT_EQ(r.str(), s);
    EXPECT_TRUE(r.done());
  }
}

// Randomized op/payload sequences over every transport; responses must
// echo a deterministic transform of the request.
class TransportFuzz : public ::testing::TestWithParam<harness::TransportKind> {};

TEST_P(TransportFuzz, RandomizedBatchesRoundTrip) {
  harness::TestbedConfig cfg;
  cfg.kind = GetParam();
  cfg.num_clients = 6;
  cfg.num_client_nodes = 2;
  cfg.rpc.group_size = 3;
  cfg.rpc.time_slice = usec(40);
  harness::Testbed bed(cfg);
  for (uint8_t op = 1; op <= 3; ++op) {
    bed.server().handlers().register_handler(
        op, [op](const rpc::RequestContext&, std::span<const uint8_t> req) {
          rpc::Bytes out(req.begin(), req.end());
          for (auto& b : out) {
            b = static_cast<uint8_t>(b + op);
          }
          return rpc::HandlerResult{std::move(out), 0, 80};
        });
  }
  bed.server().start();

  int failures = 0;
  int done = 0;
  auto actor = [&failures](harness::Testbed* b, size_t idx, int* fin) -> sim::Task<void> {
    Rng rng(1000 + idx);
    for (int round = 0; round < 30; ++round) {
      const int batch = static_cast<int>(rng.next_in(1, 8));
      std::vector<std::pair<uint8_t, rpc::Bytes>> sent;
      for (int i = 0; i < batch; ++i) {
        const auto op = static_cast<uint8_t>(rng.next_in(1, 3));
        rpc::Bytes payload(rng.next_in(0, 900));
        for (auto& x : payload) {
          x = static_cast<uint8_t>(rng.next());
        }
        b->client(idx).stage(op, payload);
        sent.emplace_back(op, std::move(payload));
      }
      auto resp = co_await b->client(idx).flush();
      if (resp.size() != sent.size()) {
        failures++;
        continue;
      }
      for (size_t i = 0; i < resp.size(); ++i) {
        rpc::Bytes expect = sent[i].second;
        for (auto& x : expect) {
          x = static_cast<uint8_t>(x + sent[i].first);
        }
        if (resp[i] != expect) {
          failures++;
        }
      }
    }
    (*fin)++;
  };
  for (size_t c = 0; c < bed.num_clients(); ++c) {
    sim::spawn(bed.loop(), actor(&bed, c, &done));
  }
  const Nanos horizon = bed.loop().now() + 2 * kSecond;
  while (done < 6 && bed.loop().now() < horizon) {
    bed.loop().run_for(msec(5));
  }
  EXPECT_EQ(done, 6);
  EXPECT_EQ(failures, 0);
}

INSTANTIATE_TEST_SUITE_P(AllTransports, TransportFuzz,
                         ::testing::Values(harness::TransportKind::kRawWrite,
                                           harness::TransportKind::kHerd,
                                           harness::TransportKind::kFasst,
                                           harness::TransportKind::kSelfRpc,
                                           harness::TransportKind::kScaleRpc),
                         [](const ::testing::TestParamInfo<harness::TransportKind>& i) {
                           return std::string(harness::to_string(i.param));
                         });

// Property test over random fault plans (docs/faults.md): whatever mix of
// loss, corruption, delay, slowdown, QP errors, and a server crash the plan
// throws at ScaleRPC, every RPC executes exactly once on the server, no
// completion is lost silently (every actor finishes), and the sim drains —
// no coroutine frame or pool block outlives the testbed.
TEST(Fuzz, RandomFaultPlansExactlyOnceAndDrained) {
  Rng meta(4242);
  for (int iter = 0; iter < 5; ++iter) {
    const uint64_t pool_baseline = sim::BytePool::outstanding_blocks;
    fault::FaultPlan plan;
    plan.seed = meta.next() | 1;
    // Always at least a little loss; layer other faults on at random.
    plan.drop(0.001 + 0.03 * static_cast<double>(meta.next_below(1000)) / 1000.0);
    if (meta.next_bool(0.5)) {
      plan.corrupt(0.02 * static_cast<double>(meta.next_below(1000)) / 1000.0);
    }
    if (meta.next_bool(0.5)) {
      const Nanos from = usec(meta.next_in(200, 400));
      plan.delay(static_cast<Nanos>(meta.next_in(200, 3000)), from,
                 from + usec(meta.next_in(50, 200)));
    }
    if (meta.next_bool(0.4)) {
      const Nanos from = usec(meta.next_in(200, 400));
      plan.nic_slow(static_cast<int>(meta.next_below(3)),
                    1.0 + static_cast<double>(meta.next_below(6)), from,
                    from + usec(meta.next_in(50, 200)));
    }
    if (meta.next_bool(0.4)) {
      plan.qp_error(0, static_cast<uint32_t>(meta.next_in(1, 6)),
                    usec(meta.next_in(200, 500)));
    }
    if (meta.next_bool(0.4)) {
      const Nanos at = usec(meta.next_in(200, 500));
      plan.crash(0, at, at + usec(meta.next_in(100, 300)));
    }

    std::unordered_map<uint64_t, int> exec_counts;
    constexpr int kActors = 6;
    constexpr int kRounds = 40;
    constexpr int kBatch = 4;
    int done = 0;
    {
      harness::TestbedConfig cfg;
      cfg.kind = harness::TransportKind::kScaleRpc;
      cfg.num_clients = kActors;
      cfg.num_client_nodes = 2;
      cfg.rpc.group_size = 3;
      cfg.rpc.time_slice = usec(40);
      cfg.rpc.client_timeout = usec(150);
      cfg.rpc.client_timeout_max = usec(600);
      cfg.sim.rc_retransmit_timeout_ns = 8000;
      cfg.sim.rc_retry_count = 5;
      cfg.faults = &plan;
      cfg.fault_seed = static_cast<uint64_t>(iter);
      harness::Testbed bed(cfg);
      bed.server().handlers().register_handler(
          1, [&exec_counts](const rpc::RequestContext&,
                            std::span<const uint8_t> req) {
            SCALERPC_CHECK(req.size() >= sizeof(uint64_t));
            uint64_t id = 0;
            std::memcpy(&id, req.data(), sizeof(id));
            exec_counts[id]++;
            rpc::Bytes out(req.begin(), req.end());
            return rpc::HandlerResult{std::move(out), 0, 80};
          });
      bed.server().start();

      auto actor = [](harness::Testbed* b, size_t idx, int* fin) -> sim::Task<void> {
        for (int round = 0; round < kRounds; ++round) {
          uint64_t ids[kBatch];
          for (int i = 0; i < kBatch; ++i) {
            ids[i] = (static_cast<uint64_t>(idx) << 32) |
                     static_cast<uint64_t>(round * kBatch + i);
            rpc::Bytes payload(24, 0);
            std::memcpy(payload.data(), &ids[i], sizeof(ids[i]));
            b->client(idx).stage(1, payload);
          }
          auto resp = co_await b->client(idx).flush();
          EXPECT_EQ(resp.size(), static_cast<size_t>(kBatch));
          for (size_t i = 0; i < resp.size(); ++i) {
            uint64_t echoed = 0;
            SCALERPC_CHECK(resp[i].size() >= sizeof(echoed));
            std::memcpy(&echoed, resp[i].data(), sizeof(echoed));
            EXPECT_EQ(echoed, ids[i]);
          }
        }
        (*fin)++;
      };
      for (size_t c = 0; c < bed.num_clients(); ++c) {
        sim::spawn(bed.loop(), actor(&bed, c, &done));
      }
      const Nanos horizon = bed.loop().now() + 2 * kSecond;
      while (done < kActors && bed.loop().now() < horizon) {
        bed.loop().run_for(msec(1));
      }
      EXPECT_EQ(done, kActors) << "a completion was lost silently, iter " << iter;
      bed.loop().run_for(msec(2));  // drain late retransmits and sweeps
      bed.server().stop();
      bed.loop().run_for(msec(1));  // let stopped coroutines unwind
    }
    EXPECT_EQ(sim::BytePool::outstanding_blocks, pool_baseline)
        << "leaked coroutine/pool blocks, iter " << iter << " plan: "
        << plan.summary();
    EXPECT_EQ(exec_counts.size(),
              static_cast<size_t>(kActors) * kRounds * kBatch);
    for (const auto& [id, count] : exec_counts) {
      EXPECT_EQ(count, 1) << "request executed twice, iter " << iter
                          << " plan: " << plan.summary();
    }
  }
}

// Large-transfer helpers (Section 5.1) deliver the payload intact.
TEST(Fuzz, LargeTransfersDeliverBytesIntact) {
  simrdma::SimParams params;
  params.host_memory_bytes = MiB(24);
  simrdma::Cluster cluster(params);
  auto* a = cluster.add_node("a");
  auto* b = cluster.add_node("b");
  const uint64_t len = MiB(2) + 12345;
  const uint64_t src = a->alloc(len, 4096);
  const uint64_t dst = b->alloc(len, 4096);
  Rng rng(5);
  for (uint64_t off = 0; off < len; off += 8) {
    a->memory().store_pod<uint64_t>(src + off, rng.next());
  }
  auto* cqa = a->create_cq();
  auto* cqb = b->create_cq();
  auto* qa = a->create_qp(simrdma::QpType::kRC, cqa, cqa);
  auto* qb = b->create_qp(simrdma::QpType::kRC, cqb, cqb);
  cluster.connect(qa, qb);
  auto body = [&]() -> sim::Task<void> {
    const auto r =
        co_await rpc::rc_write_transfer(qa, src, dst, b->arena_mr()->rkey, len);
    EXPECT_EQ(r.bytes, len);
    EXPECT_GT(r.gbytes_per_sec(), 1.0);
  };
  auto t = body();
  sim::run_blocking(cluster.loop(), std::move(t));
  EXPECT_EQ(std::memcmp(a->memory().raw(src), b->memory().raw(dst), len), 0);
}

}  // namespace
}  // namespace scalerpc
