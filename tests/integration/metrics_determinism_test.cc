// The --metrics machinery must be invisible in its own output: a sweep's
// merged registry/flight dumps are byte-identical for any --threads value
// (slots are keyed by submission index, not worker), and byte-identical
// across the two NIC engines (hooks sit at engine-shared or event-parity
// sites, and kQp points are sorted by label at dump time) — mirroring
// engine_oracle_test at the dump level.
#include <gtest/gtest.h>

#include <string>

#include "src/fault/plan.h"
#include "src/harness/harness.h"
#include "src/harness/sweep.h"
#include "src/metrics/collector.h"
#include "src/simrdma/nic_engine.h"

namespace scalerpc::harness {
namespace {

// Restore the process-wide defaults other tests in this binary expect.
struct FlagsGuard {
  ~FlagsGuard() {
    simrdma::set_nic_engine(simrdma::NicEngine::kStateMachine);
    set_spans_default(false);
  }
};

void run_point(const fault::FaultPlan* plan, int clients) {
  TestbedConfig cfg;
  cfg.num_clients = clients;
  cfg.num_client_nodes = 3;
  cfg.rpc.group_size = 4;  // several groups -> per-group series populated
  if (plan != nullptr && !plan->empty()) {
    cfg.faults = plan;
    cfg.fault_seed = 7;
  }
  Testbed bed(cfg);
  EchoWorkload wl;
  wl.batch = 2;
  wl.measure = msec(1);
  run_echo(bed, wl);
}

// Runs the standard two-point sweep (one lossless, one lossy so the
// retransmit/flight paths fire) and returns every dump concatenated.
std::string sweep_dump(int threads) {
  const fault::FaultPlan lossy = fault::FaultPlan{}.drop(0.01);
  metrics::Collector collector(
      metrics::CollectorConfig{/*metrics=*/true, /*flight=*/true, "", 512});
  Sweep sweep;
  sweep.add("lossless/c12", [] { run_point(nullptr, 12); });
  sweep.add("lossy/c8", [&lossy] { run_point(&lossy, 8); });
  sweep.set_metrics(&collector);
  sweep.run(threads);

  std::string out;
  for (size_t i = 0; i < collector.slots(); ++i) {
    collector.registry(i)->dump(out);
    collector.flight(i)->dump(out);
  }
  return out;
}

TEST(MetricsDeterminism, ByteIdenticalAcrossThreadCounts) {
  FlagsGuard guard;
  set_spans_default(true);  // exercise the span hooks too
  const std::string serial = sweep_dump(1);
  const std::string parallel = sweep_dump(4);
  EXPECT_EQ(serial, parallel);
  // Sanity: the dump actually contains the labeled series families.
  EXPECT_NE(serial.find("\"kind\":\"qp\""), std::string::npos);
  EXPECT_NE(serial.find("\"kind\":\"group\""), std::string::npos);
  EXPECT_NE(serial.find("\"kind\":\"client\""), std::string::npos);
  EXPECT_NE(serial.find("\"kind\":\"node\""), std::string::npos);
}

TEST(MetricsDeterminism, ByteIdenticalAcrossNicEngines) {
  FlagsGuard guard;
  set_spans_default(true);
  simrdma::set_nic_engine(simrdma::NicEngine::kStateMachine);
  const std::string sm = sweep_dump(1);
  simrdma::set_nic_engine(simrdma::NicEngine::kCoroutine);
  const std::string coro = sweep_dump(1);
  EXPECT_EQ(sm, coro);
}

TEST(MetricsDeterminism, SpansOffDumpAlsoDeterministic) {
  // Without spans the wire format is the seed's; the registry still fills
  // per-QP/group/client series and must stay --threads independent.
  FlagsGuard guard;
  const std::string serial = sweep_dump(1);
  const std::string parallel = sweep_dump(4);
  EXPECT_EQ(serial, parallel);
}

}  // namespace
}  // namespace scalerpc::harness
