// Connection churn stress: 1000 clients cycled through connect -> RPC ->
// teardown -> readmit, repeatedly.
//
// Pins the three resource-sharing invariants the elastic control plane
// depends on (docs/control_plane.md): every RPC is delivered exactly once
// across readmits (server dispatch count == client completion count, and
// every echo round-trips its own payload); the QP pool leaks no slots
// (live QPs return to baseline after each wave of disconnects, and the
// pool itself stops growing after the first cycle — freelist reuse); and
// the process footprint is stable (net heap bytes and VmRSS measured at
// the same phase of later cycles do not grow).
#include <gtest/gtest.h>

#include <malloc.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <new>

#include "src/harness/harness.h"
#include "src/simrdma/node.h"

namespace {
// Net live heap bytes: operator new adds the usable chunk size, delete
// subtracts it, so recycled freelists (QP slots, pooled frames, pooled
// buffers) read as zero growth even though gross allocation counts climb.
uint64_t g_net_heap_bytes = 0;
}  // namespace

void* operator new(std::size_t n) {
  void* p = std::malloc(n);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  g_net_heap_bytes += malloc_usable_size(p);
  return p;
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept {
  if (p != nullptr) {
    g_net_heap_bytes -= malloc_usable_size(p);
  }
  std::free(p);
}
void operator delete(void* p, std::size_t) noexcept { ::operator delete(p); }
void operator delete[](void* p) noexcept { ::operator delete(p); }
void operator delete[](void* p, std::size_t) noexcept { ::operator delete(p); }

namespace scalerpc::harness {
namespace {

uint64_t resident_bytes() {
  FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) {
    return 0;
  }
  unsigned long size = 0, resident = 0;
  const int n = std::fscanf(f, "%lu %lu", &size, &resident);
  std::fclose(f);
  return n == 2 ? static_cast<uint64_t>(resident) * 4096 : 0;
}

// One echo whose payload encodes (client, cycle): a duplicated, dropped,
// or cross-wired delivery cannot produce a matching response.
sim::Task<void> tagged_echo(Testbed* bed, size_t client, int cycle, int* ok) {
  rpc::Bytes req = {static_cast<uint8_t>(client & 0xff),
                    static_cast<uint8_t>(client >> 8),
                    static_cast<uint8_t>(cycle)};
  rpc::Bytes resp = co_await bed->client(client).call(1, req);
  if (resp == req) {
    (*ok)++;
  }
}

TEST(ConnectionStress, ThousandClientConnectTeardownReadmitCycles) {
  constexpr int kClients = 1000;
  constexpr int kCycles = 4;

  TestbedConfig cfg;
  cfg.kind = TransportKind::kScaleRpc;
  cfg.num_clients = kClients;
  cfg.num_client_nodes = 8;
  cfg.rpc.group_size = 8;
  cfg.rpc.time_slice = usec(20);
  cfg.defer_connect = true;
  Testbed bed(cfg);
  bed.server().handlers().register_handler(1, rpc::make_echo_handler(100));
  bed.server().start();

  auto total_live_qps = [&bed] {
    size_t n = 0;
    for (size_t i = 0; i < bed.cluster().num_nodes(); ++i) {
      n += bed.cluster().node(static_cast<int>(i))->live_qps();
    }
    return n;
  };
  auto total_pool_qps = [&bed] {
    size_t n = 0;
    for (size_t i = 0; i < bed.cluster().num_nodes(); ++i) {
      n += bed.cluster().node(static_cast<int>(i))->num_qps();
    }
    return n;
  };
  const size_t live_baseline = total_live_qps();

  size_t pool_after_first_cycle = 0;
  uint64_t heap_after_second_cycle = 0;
  uint64_t rss_after_second_cycle = 0;
  for (int cycle = 0; cycle < kCycles; ++cycle) {
    for (int c = 0; c < kClients; ++c) {
      bed.connect_client(static_cast<size_t>(c));  // cycle > 0: readmit
    }
    int ok = 0;
    for (int c = 0; c < kClients; ++c) {
      sim::spawn(bed.loop(), tagged_echo(&bed, static_cast<size_t>(c), cycle, &ok));
    }
    for (int spin = 0; spin < 200 && ok < kClients; ++spin) {
      bed.loop().run_for(msec(1));
    }
    ASSERT_EQ(ok, kClients) << "cycle " << cycle;
    for (int c = 0; c < kClients; ++c) {
      bed.disconnect_client(static_cast<size_t>(c));
    }
    // Zero leaked QP-pool slots: every QP created this cycle was returned.
    ASSERT_EQ(total_live_qps(), live_baseline) << "cycle " << cycle;
    if (cycle == 0) {
      pool_after_first_cycle = total_pool_qps();
    } else {
      // Readmits draw from the qpn freelist: the pool never grows again.
      EXPECT_EQ(total_pool_qps(), pool_after_first_cycle) << "cycle " << cycle;
    }
    if (cycle == 1) {
      heap_after_second_cycle = g_net_heap_bytes;
      rss_after_second_cycle = resident_bytes();
    }
  }

  // Exactly-once delivery: the server dispatched precisely one request per
  // completed client call — no duplicate execution across readmits.
  EXPECT_EQ(bed.server().requests_served(),
            static_cast<uint64_t>(kClients) * kCycles);

  // Stable footprint: cycles past the second (all pools at peak) add
  // nothing. Slack covers histogram buckets and allocator jitter, not a
  // per-client leak (1000 clients x 2 cycles would dwarf 256 KiB).
  const int64_t heap_growth =
      static_cast<int64_t>(g_net_heap_bytes) -
      static_cast<int64_t>(heap_after_second_cycle);
  EXPECT_LT(heap_growth, 256 * 1024);
  if (rss_after_second_cycle != 0) {
    const int64_t rss_growth = static_cast<int64_t>(resident_bytes()) -
                               static_cast<int64_t>(rss_after_second_cycle);
    EXPECT_LT(rss_growth, 8 * 1024 * 1024);
  }
}

}  // namespace
}  // namespace scalerpc::harness
