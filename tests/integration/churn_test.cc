// Churn and failure injection: clients joining mid-run (ScaleRPC's lazy
// group integration), UD drops under exhausted recv rings, RNR recovery,
// and servers stopping cleanly under load.
#include <gtest/gtest.h>

#include "src/harness/harness.h"
#include "src/simrdma/nic.h"

namespace scalerpc::harness {
namespace {

sim::Task<void> echo_loop(Testbed* bed, size_t idx, int rounds, int* ok) {
  rpc::Bytes req = {1, 2, 3};
  for (int i = 0; i < rounds; ++i) {
    rpc::Bytes resp = co_await bed->client(idx).call(1, req);
    if (resp == req) {
      (*ok)++;
    }
  }
}

TEST(Churn, LateJoinersAreIntegratedIntoGroups) {
  // Start with 6 clients, bring 6 more up mid-run: the scheduler must fold
  // them into (possibly new) groups and serve them.
  TestbedConfig cfg;
  cfg.kind = TransportKind::kScaleRpc;
  cfg.num_clients = 12;
  cfg.num_client_nodes = 3;
  cfg.rpc.group_size = 4;
  cfg.rpc.time_slice = usec(50);
  Testbed bed(cfg);
  bed.server().handlers().register_handler(1, rpc::make_echo_handler(100));
  bed.server().start();

  int early_ok = 0;
  for (size_t c = 0; c < 6; ++c) {
    sim::spawn(bed.loop(), echo_loop(&bed, c, 50, &early_ok));
  }
  bed.loop().run_for(usec(300));

  int late_ok = 0;
  for (size_t c = 6; c < 12; ++c) {
    sim::spawn(bed.loop(), echo_loop(&bed, c, 50, &late_ok));
  }
  bed.loop().run_for(msec(20));
  EXPECT_EQ(early_ok, 6 * 50);
  EXPECT_EQ(late_ok, 6 * 50);
  EXPECT_GE(bed.scalerpc()->num_groups(), 3u);
}

TEST(Churn, ClientsGoingSilentDoNotStallTheGroup) {
  // Half the clients stop issuing after a few rounds; the rest must keep
  // full service (idle members just waste their share of the slice).
  TestbedConfig cfg;
  cfg.kind = TransportKind::kScaleRpc;
  cfg.num_clients = 8;
  cfg.num_client_nodes = 2;
  cfg.rpc.group_size = 4;
  cfg.rpc.time_slice = usec(50);
  Testbed bed(cfg);
  bed.server().handlers().register_handler(1, rpc::make_echo_handler(100));
  bed.server().start();

  int short_ok = 0;
  int long_ok = 0;
  for (size_t c = 0; c < 4; ++c) {
    sim::spawn(bed.loop(), echo_loop(&bed, c, 5, &short_ok));  // goes silent
  }
  for (size_t c = 4; c < 8; ++c) {
    sim::spawn(bed.loop(), echo_loop(&bed, c, 200, &long_ok));
  }
  bed.loop().run_for(msec(30));
  EXPECT_EQ(short_ok, 4 * 5);
  EXPECT_EQ(long_ok, 4 * 200);
}

TEST(FailureInjection, FasstSurvivesTinyRecvRings) {
  // A FaSST server with a tiny recv ring drops datagrams under load; the
  // system must not wedge, and drops must be visible in the counters.
  TestbedConfig cfg;
  cfg.kind = TransportKind::kFasst;
  cfg.num_clients = 16;
  cfg.num_client_nodes = 2;
  cfg.rpc.slots_per_client = 8;
  Testbed bed(cfg);
  // (The harness built the server with the default deep ring; build our own
  // tiny-ring server on a fresh node to inject the failure.)
  auto* node = bed.cluster().add_node("tiny");
  auto tiny_cfg = cfg.rpc;
  tiny_cfg.server_workers = 1;  // one busy worker cannot repost fast enough
  transport::FasstServer tiny(node, tiny_cfg, /*recv_ring_depth=*/4);
  tiny.handlers().register_handler(1, rpc::make_echo_handler(usec(5)));
  tiny.start();
  rpc::CpuPool cpu(bed.loop(), 24);
  std::vector<std::unique_ptr<transport::FasstClient>> clients;
  for (int c = 0; c < 16; ++c) {
    transport::ClientEnv env{bed.cluster().node(1), &cpu};
    clients.push_back(std::make_unique<transport::FasstClient>(env, &tiny));
    sim::run_blocking(bed.loop(), clients.back()->connect());
  }
  // Burst: everyone posts a full batch at once; 16*8=128 messages hit a
  // 4-deep ring per worker. Some are dropped; senders never learn (UD).
  int completed_batches = 0;
  auto burst = [&completed_batches](transport::FasstClient* c) -> sim::Task<void> {
    for (int i = 0; i < 8; ++i) {
      c->stage(1, {static_cast<uint8_t>(i)});
    }
    auto resp = co_await c->flush();
    completed_batches += static_cast<int>(resp.size()) == 8 ? 1 : 0;
  };
  for (auto& c : clients) {
    sim::spawn(bed.loop(), burst(c.get()));
  }
  bed.loop().run_for(msec(10));
  EXPECT_GT(node->nic().counters().ud_drops, 0u);
  // Batches with dropped members hang forever: exactly UD's documented
  // unreliability (FaSST assumes a lossless fabric and deep rings).
  EXPECT_LT(completed_batches, 16);
  // The server itself survives: once the burst subsides, a fresh client
  // gets service again.
  transport::ClientEnv env{bed.cluster().node(1), &cpu};
  transport::FasstClient fresh(env, &tiny);
  sim::run_blocking(bed.loop(), fresh.connect());
  auto probe = [&fresh]() -> sim::Task<void> {
    rpc::Bytes req = {9};
    rpc::Bytes resp = co_await fresh.call(1, req);
    EXPECT_EQ(resp, req);
  };
  auto t = probe();
  sim::run_blocking(bed.loop(), std::move(t));
}

TEST(FailureInjection, ServerStopUnderLoadLeavesNoCrash) {
  TestbedConfig cfg;
  cfg.kind = TransportKind::kScaleRpc;
  cfg.num_clients = 8;
  cfg.num_client_nodes = 2;
  cfg.rpc.group_size = 4;
  Testbed bed(cfg);
  bed.server().handlers().register_handler(1, rpc::make_echo_handler(100));
  bed.server().start();
  int ok = 0;
  for (size_t c = 0; c < 8; ++c) {
    sim::spawn(bed.loop(), echo_loop(&bed, c, 1000000, &ok));  // effectively forever
  }
  bed.loop().run_for(msec(2));
  EXPECT_GT(ok, 100);
  bed.server().stop();
  // Draining the loop a while longer must not abort anything.
  bed.loop().run_for(msec(2));
}

}  // namespace
}  // namespace scalerpc::harness
