// Copy-on-write warm start (src/harness/sweep.h): a sweep point forked
// from a warmed snapshot must produce byte-identical results to a cold run
// that replays the same warmup — for one child at a time and for several
// concurrent children.
#include <gtest/gtest.h>

#include <cstring>

#include "src/harness/harness.h"
#include "src/harness/sweep.h"

namespace scalerpc::harness {
namespace {

// Everything a measurement phase produces, as a POD (it crosses the fork
// pipe as raw bytes). Events-processed pins the exact event sequence, not
// just the op totals.
struct MeasureResult {
  uint64_t ops = 0;
  int64_t elapsed = 0;
  uint64_t events = 0;
  uint64_t server_qp_cache_misses = 0;
  uint64_t pcm_l3_hits = 0;
  uint64_t pcm_l3_misses = 0;

  bool operator==(const MeasureResult& o) const {
    return std::memcmp(this, &o, sizeof(*this)) == 0;
  }
};

// A warmed simulation: testbed + echo driver paused after the warmup
// window. Points continue it through the measurement window.
struct WarmState {
  explicit WarmState(TransportKind kind) {
    TestbedConfig cfg;
    cfg.kind = kind;
    cfg.num_clients = 24;
    cfg.num_client_nodes = 3;
    bed = std::make_unique<Testbed>(cfg);
    EchoWorkload wl;
    wl.batch = 4;
    wl.warmup = usec(300);
    wl.measure = usec(800);
    driver = std::make_unique<EchoDriver>(*bed, wl);
  }
  std::unique_ptr<Testbed> bed;
  std::unique_ptr<EchoDriver> driver;
};

MeasureResult measure_point(WarmState& s) {
  const uint64_t events_before = s.bed->loop().events_processed();
  const EchoResult r = s.driver->measure();
  MeasureResult out;
  out.ops = r.ops;
  out.elapsed = r.elapsed;
  out.events = s.bed->loop().events_processed() - events_before;
  out.server_qp_cache_misses = r.server_qp_cache_misses;
  out.pcm_l3_hits = r.server_pcm.l3_hits;
  out.pcm_l3_misses = r.server_pcm.l3_misses;
  return out;
}

std::vector<MeasureResult> run_points(TransportKind kind, size_t n,
                                      const WarmStartOptions& opt) {
  std::vector<std::function<MeasureResult(WarmState&)>> points(
      n, [](WarmState& s) { return measure_point(s); });
  return warm_start_sweep<WarmState, MeasureResult>(
      [kind] { return std::make_unique<WarmState>(kind); }, points, opt);
}

class WarmStartTransportTest : public ::testing::TestWithParam<TransportKind> {};

TEST_P(WarmStartTransportTest, ForkedPointsMatchColdRunsByteForByte) {
  if (!internal::fork_supported()) {
    GTEST_SKIP() << "no fork on this platform";
  }
  constexpr size_t kPoints = 3;
  WarmStartOptions cold;
  cold.force_cold = true;
  const auto cold_results = run_points(GetParam(), kPoints, cold);
  ASSERT_EQ(cold_results.size(), kPoints);
  // Every cold repeat of the same config is identical (determinism).
  for (size_t i = 1; i < kPoints; ++i) {
    EXPECT_TRUE(cold_results[i] == cold_results[0]) << "cold repeat " << i;
  }
  EXPECT_GT(cold_results[0].ops, 0u);
  EXPECT_GT(cold_results[0].events, 0u);

  // Acceptance shape: warm-started children at 1 and at 4 concurrent forks
  // both reproduce the cold results exactly.
  for (const int threads : {1, 4}) {
    WarmStartOptions warm;
    warm.threads = threads;
    const auto warm_results = run_points(GetParam(), kPoints, warm);
    ASSERT_EQ(warm_results.size(), kPoints);
    for (size_t i = 0; i < kPoints; ++i) {
      EXPECT_TRUE(warm_results[i] == cold_results[i])
          << "threads=" << threads << " point " << i << ": warm {ops="
          << warm_results[i].ops << ", events=" << warm_results[i].events
          << "} vs cold {ops=" << cold_results[i].ops
          << ", events=" << cold_results[i].events << "}";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Transports, WarmStartTransportTest,
                         ::testing::Values(TransportKind::kRawWrite,
                                           TransportKind::kFasst,
                                           TransportKind::kScaleRpc),
                         [](const ::testing::TestParamInfo<TransportKind>& info) {
                           return std::string(to_string(info.param));
                         });

TEST(WarmStart, ColdFallbackRunsWithoutFork) {
  WarmStartOptions cold;
  cold.force_cold = true;
  const auto results = run_points(TransportKind::kRawWrite, 2, cold);
  EXPECT_TRUE(results[0] == results[1]);
  EXPECT_GT(results[0].ops, 0u);
}

TEST(WarmStart, EmptyPointListIsANoop) {
  const auto results = run_points(TransportKind::kRawWrite, 0, WarmStartOptions{});
  EXPECT_TRUE(results.empty());
}

}  // namespace
}  // namespace scalerpc::harness
