// Copy-on-write warm start (src/harness/sweep.h): a sweep point forked
// from a warmed snapshot must produce byte-identical results to a cold run
// that replays the same warmup — for one child at a time and for several
// concurrent children.
#include <gtest/gtest.h>

#include <cstring>

#include "src/harness/harness.h"
#include "src/harness/sweep.h"
#include "src/scalerpc/client.h"

namespace scalerpc::harness {
namespace {

// Everything a measurement phase produces, as a POD (it crosses the fork
// pipe as raw bytes). Events-processed pins the exact event sequence, not
// just the op totals.
struct MeasureResult {
  uint64_t ops = 0;
  int64_t elapsed = 0;
  uint64_t events = 0;
  uint64_t server_qp_cache_misses = 0;
  uint64_t pcm_l3_hits = 0;
  uint64_t pcm_l3_misses = 0;

  bool operator==(const MeasureResult& o) const {
    return std::memcmp(this, &o, sizeof(*this)) == 0;
  }
};

// A warmed simulation: testbed + echo driver paused after the warmup
// window. Points continue it through the measurement window.
struct WarmState {
  explicit WarmState(TransportKind kind) {
    TestbedConfig cfg;
    cfg.kind = kind;
    cfg.num_clients = 24;
    cfg.num_client_nodes = 3;
    bed = std::make_unique<Testbed>(cfg);
    EchoWorkload wl;
    wl.batch = 4;
    wl.warmup = usec(300);
    wl.measure = usec(800);
    driver = std::make_unique<EchoDriver>(*bed, wl);
  }
  std::unique_ptr<Testbed> bed;
  std::unique_ptr<EchoDriver> driver;
};

MeasureResult measure_point(WarmState& s) {
  const uint64_t events_before = s.bed->loop().events_processed();
  const EchoResult r = s.driver->measure();
  MeasureResult out;
  out.ops = r.ops;
  out.elapsed = r.elapsed;
  out.events = s.bed->loop().events_processed() - events_before;
  out.server_qp_cache_misses = r.server_qp_cache_misses;
  out.pcm_l3_hits = r.server_pcm.l3_hits;
  out.pcm_l3_misses = r.server_pcm.l3_misses;
  return out;
}

std::vector<MeasureResult> run_points(TransportKind kind, size_t n,
                                      const WarmStartOptions& opt) {
  std::vector<std::function<MeasureResult(WarmState&)>> points(
      n, [](WarmState& s) { return measure_point(s); });
  return warm_start_sweep<WarmState, MeasureResult>(
      [kind] { return std::make_unique<WarmState>(kind); }, points, opt);
}

class WarmStartTransportTest : public ::testing::TestWithParam<TransportKind> {};

TEST_P(WarmStartTransportTest, ForkedPointsMatchColdRunsByteForByte) {
  if (!internal::fork_supported()) {
    GTEST_SKIP() << "no fork on this platform";
  }
  constexpr size_t kPoints = 3;
  WarmStartOptions cold;
  cold.force_cold = true;
  const auto cold_results = run_points(GetParam(), kPoints, cold);
  ASSERT_EQ(cold_results.size(), kPoints);
  // Every cold repeat of the same config is identical (determinism).
  for (size_t i = 1; i < kPoints; ++i) {
    EXPECT_TRUE(cold_results[i] == cold_results[0]) << "cold repeat " << i;
  }
  EXPECT_GT(cold_results[0].ops, 0u);
  EXPECT_GT(cold_results[0].events, 0u);

  // Acceptance shape: warm-started children at 1 and at 4 concurrent forks
  // both reproduce the cold results exactly.
  for (const int threads : {1, 4}) {
    WarmStartOptions warm;
    warm.threads = threads;
    const auto warm_results = run_points(GetParam(), kPoints, warm);
    ASSERT_EQ(warm_results.size(), kPoints);
    for (size_t i = 0; i < kPoints; ++i) {
      EXPECT_TRUE(warm_results[i] == cold_results[i])
          << "threads=" << threads << " point " << i << ": warm {ops="
          << warm_results[i].ops << ", events=" << warm_results[i].events
          << "} vs cold {ops=" << cold_results[i].ops
          << ", events=" << cold_results[i].events << "}";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Transports, WarmStartTransportTest,
                         ::testing::Values(TransportKind::kRawWrite,
                                           TransportKind::kFasst,
                                           TransportKind::kScaleRpc),
                         [](const ::testing::TestParamInfo<TransportKind>& info) {
                           return std::string(to_string(info.param));
                         });

// --- Figure-bench shapes ---
//
// bench_fig08_throughput and bench_fig11_sensitivity restructure their
// sweeps around shared constructions; these tests pin the exact sharing
// each bench relies on, at 1 and 4 concurrent children.

MeasureResult echo_measure(Testbed& bed, int batch, Nanos slice_fixup,
                           int warmup_fixup) {
  if (slice_fixup > 0 || warmup_fixup >= 0) {
    core::ScaleRpcServer* server = bed.scalerpc();
    if (slice_fixup > 0) {
      server->set_time_slice(slice_fixup);
      for (size_t c = 0; c < bed.num_clients(); ++c) {
        bed.scalerpc_client(c)->set_time_slice(slice_fixup);
      }
    }
    if (warmup_fixup >= 0) {
      server->set_warmup_enabled(warmup_fixup != 0);
    }
  }
  EchoWorkload wl;
  wl.batch = batch;
  wl.warmup = usec(300);
  wl.measure = usec(800);
  const uint64_t events_before = bed.loop().events_processed();
  const EchoResult r = run_echo(bed, wl);
  MeasureResult out;
  out.ops = r.ops;
  out.elapsed = r.elapsed;
  out.events = bed.loop().events_processed() - events_before;
  out.server_qp_cache_misses = r.server_qp_cache_misses;
  out.pcm_l3_hits = r.server_pcm.l3_hits;
  out.pcm_l3_misses = r.server_pcm.l3_misses;
  return out;
}

// fig08 cell: one testbed, two batch variants of the echo workload.
struct Fig08Bed {
  Fig08Bed() {
    TestbedConfig cfg;
    cfg.kind = TransportKind::kFasst;
    cfg.num_clients = 24;
    cfg.num_client_nodes = 3;
    bed = std::make_unique<Testbed>(cfg);
  }
  std::unique_ptr<Testbed> bed;
};

TEST(WarmStart, Fig08BatchVariantsShareOneConstruction) {
  if (!internal::fork_supported()) {
    GTEST_SKIP() << "no fork on this platform";
  }
  const std::vector<std::function<MeasureResult(Fig08Bed&)>> points = {
      [](Fig08Bed& s) { return echo_measure(*s.bed, 1, 0, -1); },
      [](Fig08Bed& s) { return echo_measure(*s.bed, 8, 0, -1); }};
  const auto warmup = [] { return std::make_unique<Fig08Bed>(); };

  WarmStartOptions cold;
  cold.force_cold = true;
  const auto cold_results =
      warm_start_sweep<Fig08Bed, MeasureResult>(warmup, points, cold);
  EXPECT_GT(cold_results[0].ops, 0u);
  // The batch variants genuinely differ (otherwise sharing proves nothing).
  EXPECT_FALSE(cold_results[0] == cold_results[1]);

  for (const int threads : {1, 4}) {
    WarmStartOptions warm;
    warm.threads = threads;
    const auto warm_results =
        warm_start_sweep<Fig08Bed, MeasureResult>(warmup, points, warm);
    for (size_t i = 0; i < points.size(); ++i) {
      EXPECT_TRUE(warm_results[i] == cold_results[i])
          << "threads=" << threads << " batch point " << i;
    }
  }
}

// fig11 cell: one testbed, points that re-point the schedule (time slice /
// warmup mode) before the workload starts.
struct Fig11Bed {
  Fig11Bed() {
    TestbedConfig cfg;
    cfg.kind = TransportKind::kScaleRpc;
    cfg.num_clients = 24;
    cfg.num_client_nodes = 3;
    cfg.rpc.group_size = 12;
    bed = std::make_unique<Testbed>(cfg);
  }
  std::unique_ptr<Testbed> bed;
};

TEST(WarmStart, Fig11ScheduleFixupsShareOneConstruction) {
  if (!internal::fork_supported()) {
    GTEST_SKIP() << "no fork on this platform";
  }
  const std::vector<std::function<MeasureResult(Fig11Bed&)>> points = {
      [](Fig11Bed& s) { return echo_measure(*s.bed, 4, usec(40), 1); },
      [](Fig11Bed& s) { return echo_measure(*s.bed, 4, usec(120), 1); },
      [](Fig11Bed& s) { return echo_measure(*s.bed, 4, usec(120), 0); }};
  const auto warmup = [] { return std::make_unique<Fig11Bed>(); };

  // The bench's byte-identity hinges on the fixup being indistinguishable
  // from constructing with the parameter: pin that first, in-process.
  {
    TestbedConfig cfg;
    cfg.kind = TransportKind::kScaleRpc;
    cfg.num_clients = 24;
    cfg.num_client_nodes = 3;
    cfg.rpc.group_size = 12;
    cfg.rpc.time_slice = usec(40);
    Testbed ctor_bed(cfg);
    const MeasureResult via_ctor = echo_measure(ctor_bed, 4, 0, -1);
    Fig11Bed fixup_bed;
    const MeasureResult via_fixup = echo_measure(*fixup_bed.bed, 4, usec(40), 1);
    EXPECT_TRUE(via_ctor == via_fixup)
        << "pre-start set_time_slice diverged from the constructor parameter";
  }

  WarmStartOptions cold;
  cold.force_cold = true;
  const auto cold_results =
      warm_start_sweep<Fig11Bed, MeasureResult>(warmup, points, cold);
  EXPECT_GT(cold_results[0].ops, 0u);
  EXPECT_FALSE(cold_results[0] == cold_results[1]);  // slice matters
  EXPECT_FALSE(cold_results[1] == cold_results[2]);  // warmup mode matters

  for (const int threads : {1, 4}) {
    WarmStartOptions warm;
    warm.threads = threads;
    const auto warm_results =
        warm_start_sweep<Fig11Bed, MeasureResult>(warmup, points, warm);
    for (size_t i = 0; i < points.size(); ++i) {
      EXPECT_TRUE(warm_results[i] == cold_results[i])
          << "threads=" << threads << " schedule point " << i;
    }
  }
}

TEST(WarmStart, ColdFallbackRunsWithoutFork) {
  WarmStartOptions cold;
  cold.force_cold = true;
  const auto results = run_points(TransportKind::kRawWrite, 2, cold);
  EXPECT_TRUE(results[0] == results[1]);
  EXPECT_GT(results[0].ops, 0u);
}

TEST(WarmStart, EmptyPointListIsANoop) {
  const auto results = run_points(TransportKind::kRawWrite, 0, WarmStartOptions{});
  EXPECT_TRUE(results.empty());
}

}  // namespace
}  // namespace scalerpc::harness
