// The simulator is deterministic: identical configurations produce
// identical traces (op counts, latencies, counters). This is what makes
// every figure in bench/ exactly reproducible.
#include <gtest/gtest.h>

#include "src/harness/harness.h"
#include "src/harness/rawverbs.h"

namespace scalerpc::harness {
namespace {

EchoResult run_once(TransportKind kind) {
  TestbedConfig cfg;
  cfg.kind = kind;
  cfg.num_clients = 24;
  cfg.num_client_nodes = 3;
  cfg.rpc.group_size = 8;
  Testbed bed(cfg);
  EchoWorkload wl;
  wl.batch = 4;
  wl.measure = msec(2);
  return run_echo(bed, wl);
}

TEST(Determinism, EchoRunsAreBitIdentical) {
  for (TransportKind kind : {TransportKind::kScaleRpc, TransportKind::kFasst}) {
    const EchoResult a = run_once(kind);
    const EchoResult b = run_once(kind);
    EXPECT_EQ(a.ops, b.ops) << to_string(kind);
    EXPECT_EQ(a.elapsed, b.elapsed);
    EXPECT_EQ(a.batch_latency.count(), b.batch_latency.count());
    EXPECT_EQ(a.batch_latency.max(), b.batch_latency.max());
    EXPECT_EQ(a.server_pcm.pcie_rd_cur, b.server_pcm.pcie_rd_cur);
    EXPECT_EQ(a.server_pcm.pcie_itom, b.server_pcm.pcie_itom);
    EXPECT_EQ(a.server_qp_cache_misses, b.server_qp_cache_misses);
  }
}

TEST(Determinism, RawVerbRunsAreBitIdentical) {
  RawVerbConfig cfg;
  cfg.num_clients = 80;
  cfg.measure = msec(1);
  const RawVerbResult a = run_outbound_write(cfg);
  const RawVerbResult b = run_outbound_write(cfg);
  EXPECT_DOUBLE_EQ(a.mops, b.mops);
  EXPECT_DOUBLE_EQ(a.pcie_rd_mops, b.pcie_rd_mops);
}

}  // namespace
}  // namespace scalerpc::harness
