// The simulator is deterministic: identical configurations produce
// identical traces (op counts, latencies, counters). This is what makes
// every figure in bench/ exactly reproducible.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/harness/harness.h"
#include "src/harness/rawverbs.h"
#include "src/harness/sweep.h"

namespace scalerpc::harness {
namespace {

TestbedConfig echo_cfg(TransportKind kind) {
  TestbedConfig cfg;
  cfg.kind = kind;
  cfg.num_clients = 24;
  cfg.num_client_nodes = 3;
  cfg.rpc.group_size = 8;
  return cfg;
}

EchoWorkload echo_wl() {
  EchoWorkload wl;
  wl.batch = 4;
  wl.measure = msec(2);
  return wl;
}

EchoResult run_once(TransportKind kind) {
  Testbed bed(echo_cfg(kind));
  return run_echo(bed, echo_wl());
}

TEST(Determinism, EchoRunsAreBitIdentical) {
  for (TransportKind kind : {TransportKind::kScaleRpc, TransportKind::kFasst}) {
    const EchoResult a = run_once(kind);
    const EchoResult b = run_once(kind);
    EXPECT_EQ(a.ops, b.ops) << to_string(kind);
    EXPECT_EQ(a.elapsed, b.elapsed);
    EXPECT_EQ(a.batch_latency.count(), b.batch_latency.count());
    EXPECT_EQ(a.batch_latency.max(), b.batch_latency.max());
    EXPECT_EQ(a.server_pcm.pcie_rd_cur, b.server_pcm.pcie_rd_cur);
    EXPECT_EQ(a.server_pcm.pcie_itom, b.server_pcm.pcie_itom);
    EXPECT_EQ(a.server_qp_cache_misses, b.server_qp_cache_misses);
  }
}

// Formats every observable of a run into one string; two runs of the same
// configuration must produce byte-identical dumps. This is the regression
// gate for event-loop and cache-model rewrites: any reordering of tied
// events or any divergence in LRU replacement shows up here as a diff.
std::string counter_dump(const EchoResult& r) {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "ops=%llu elapsed=%lld lat_count=%llu lat_max=%lld lat_p50=%lld "
                "lat_p99=%lld pcie_rd=%llu rfo=%llu itom=%llu pcie_itom=%llu "
                "l3_hits=%llu l3_misses=%llu qp_misses=%llu",
                static_cast<unsigned long long>(r.ops),
                static_cast<long long>(r.elapsed),
                static_cast<unsigned long long>(r.batch_latency.count()),
                static_cast<long long>(r.batch_latency.max()),
                static_cast<long long>(r.batch_latency.percentile(50)),
                static_cast<long long>(r.batch_latency.percentile(99)),
                static_cast<unsigned long long>(r.server_pcm.pcie_rd_cur),
                static_cast<unsigned long long>(r.server_pcm.rfo),
                static_cast<unsigned long long>(r.server_pcm.itom),
                static_cast<unsigned long long>(r.server_pcm.pcie_itom),
                static_cast<unsigned long long>(r.server_pcm.l3_hits),
                static_cast<unsigned long long>(r.server_pcm.l3_misses),
                static_cast<unsigned long long>(r.server_qp_cache_misses));
  return buf;
}

TEST(Determinism, CounterDumpsAreByteIdentical) {
  for (TransportKind kind : {TransportKind::kScaleRpc, TransportKind::kRawWrite,
                             TransportKind::kFasst}) {
    const std::string a = counter_dump(run_once(kind));
    const std::string b = counter_dump(run_once(kind));
    EXPECT_EQ(a, b) << to_string(kind);
  }
}

// Same gate for the snapshot/warm-start path: a measurement continued in a
// forked child from a post-warmup snapshot must dump the same bytes as a
// cold single-process run — and as the plain run_echo composition.
struct WarmEcho {
  Testbed bed;
  EchoDriver driver;
  explicit WarmEcho(TransportKind kind)
      : bed(echo_cfg(kind)), driver(bed, echo_wl()) {}
};

std::string dump_via_sweep(TransportKind kind, bool warm) {
  struct DumpResult {
    char text[512];
  };
  std::vector<std::function<DumpResult(WarmEcho&)>> points;
  points.emplace_back([](WarmEcho& s) {
    DumpResult out{};
    const std::string d = counter_dump(s.driver.measure());
    std::snprintf(out.text, sizeof(out.text), "%s", d.c_str());
    return out;
  });
  WarmStartOptions opt;
  opt.force_cold = !warm;
  const auto results = warm_start_sweep<WarmEcho, DumpResult>(
      [kind] { return std::make_unique<WarmEcho>(kind); }, points, opt);
  return results[0].text;
}

TEST(Determinism, WarmStartCounterDumpsMatchColdRuns) {
  for (TransportKind kind : {TransportKind::kScaleRpc, TransportKind::kRawWrite,
                             TransportKind::kFasst}) {
    const std::string cold = dump_via_sweep(kind, /*warm=*/false);
    const std::string warm = dump_via_sweep(kind, /*warm=*/true);
    EXPECT_EQ(cold, warm) << to_string(kind);
    EXPECT_EQ(warm, counter_dump(run_once(kind))) << to_string(kind);
  }
}

TEST(Determinism, RawVerbRunsAreBitIdentical) {
  RawVerbConfig cfg;
  cfg.num_clients = 80;
  cfg.measure = msec(1);
  const RawVerbResult a = run_outbound_write(cfg);
  const RawVerbResult b = run_outbound_write(cfg);
  EXPECT_DOUBLE_EQ(a.mops, b.mops);
  EXPECT_DOUBLE_EQ(a.pcie_rd_mops, b.pcie_rd_mops);
}

}  // namespace
}  // namespace scalerpc::harness
