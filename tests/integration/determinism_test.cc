// The simulator is deterministic: identical configurations produce
// identical traces (op counts, latencies, counters). This is what makes
// every figure in bench/ exactly reproducible.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "src/harness/harness.h"
#include "src/harness/rawverbs.h"

namespace scalerpc::harness {
namespace {

EchoResult run_once(TransportKind kind) {
  TestbedConfig cfg;
  cfg.kind = kind;
  cfg.num_clients = 24;
  cfg.num_client_nodes = 3;
  cfg.rpc.group_size = 8;
  Testbed bed(cfg);
  EchoWorkload wl;
  wl.batch = 4;
  wl.measure = msec(2);
  return run_echo(bed, wl);
}

TEST(Determinism, EchoRunsAreBitIdentical) {
  for (TransportKind kind : {TransportKind::kScaleRpc, TransportKind::kFasst}) {
    const EchoResult a = run_once(kind);
    const EchoResult b = run_once(kind);
    EXPECT_EQ(a.ops, b.ops) << to_string(kind);
    EXPECT_EQ(a.elapsed, b.elapsed);
    EXPECT_EQ(a.batch_latency.count(), b.batch_latency.count());
    EXPECT_EQ(a.batch_latency.max(), b.batch_latency.max());
    EXPECT_EQ(a.server_pcm.pcie_rd_cur, b.server_pcm.pcie_rd_cur);
    EXPECT_EQ(a.server_pcm.pcie_itom, b.server_pcm.pcie_itom);
    EXPECT_EQ(a.server_qp_cache_misses, b.server_qp_cache_misses);
  }
}

// Formats every observable of a run into one string; two runs of the same
// configuration must produce byte-identical dumps. This is the regression
// gate for event-loop and cache-model rewrites: any reordering of tied
// events or any divergence in LRU replacement shows up here as a diff.
std::string counter_dump(const EchoResult& r) {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "ops=%llu elapsed=%lld lat_count=%llu lat_max=%lld lat_p50=%lld "
                "lat_p99=%lld pcie_rd=%llu rfo=%llu itom=%llu pcie_itom=%llu "
                "l3_hits=%llu l3_misses=%llu qp_misses=%llu",
                static_cast<unsigned long long>(r.ops),
                static_cast<long long>(r.elapsed),
                static_cast<unsigned long long>(r.batch_latency.count()),
                static_cast<long long>(r.batch_latency.max()),
                static_cast<long long>(r.batch_latency.percentile(50)),
                static_cast<long long>(r.batch_latency.percentile(99)),
                static_cast<unsigned long long>(r.server_pcm.pcie_rd_cur),
                static_cast<unsigned long long>(r.server_pcm.rfo),
                static_cast<unsigned long long>(r.server_pcm.itom),
                static_cast<unsigned long long>(r.server_pcm.pcie_itom),
                static_cast<unsigned long long>(r.server_pcm.l3_hits),
                static_cast<unsigned long long>(r.server_pcm.l3_misses),
                static_cast<unsigned long long>(r.server_qp_cache_misses));
  return buf;
}

TEST(Determinism, CounterDumpsAreByteIdentical) {
  for (TransportKind kind : {TransportKind::kScaleRpc, TransportKind::kRawWrite,
                             TransportKind::kFasst}) {
    const std::string a = counter_dump(run_once(kind));
    const std::string b = counter_dump(run_once(kind));
    EXPECT_EQ(a, b) << to_string(kind);
  }
}

TEST(Determinism, RawVerbRunsAreBitIdentical) {
  RawVerbConfig cfg;
  cfg.num_clients = 80;
  cfg.measure = msec(1);
  const RawVerbResult a = run_outbound_write(cfg);
  const RawVerbResult b = run_outbound_write(cfg);
  EXPECT_DOUBLE_EQ(a.mops, b.mops);
  EXPECT_DOUBLE_EQ(a.pcie_rd_mops, b.pcie_rd_mops);
}

}  // namespace
}  // namespace scalerpc::harness
