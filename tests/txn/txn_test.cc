// ScaleTX end-to-end: OCC serializability mechanics, one-sided vs RPC-only
// parity, conflict handling, and workload generators.
#include <gtest/gtest.h>

#include "src/txn/testbed.h"

namespace scalerpc::txn {
namespace {

using harness::TransportKind;

ScaleTxConfig small_config(TransportKind kind, bool one_sided, int coordinators = 4) {
  ScaleTxConfig cfg;
  cfg.kind = kind;
  cfg.one_sided = one_sided;
  cfg.participants = 3;
  cfg.num_coordinators = coordinators;
  cfg.coordinator_nodes = 2;
  cfg.keys_per_shard = 512;
  cfg.rpc.group_size = 8;
  return cfg;
}

template <typename V>  // rpc::Bytes or the KV store's plain vector
uint64_t value_u64(const V& v) {
  uint64_t out = 0;
  std::memcpy(&out, v.data(), sizeof(out));
  return out;
}

rpc::Bytes make_value(uint64_t v, uint32_t bytes = 40) {
  rpc::Bytes out(bytes, 0);
  std::memcpy(out.data(), &v, sizeof(v));
  return out;
}

TEST(ScaleTx, ReadYourOwnCommit) {
  for (const bool one_sided : {true, false}) {
    ScaleTxTestbed bed(small_config(TransportKind::kScaleRpc, one_sided, 1));
    bed.preload();
    bed.start();
    auto body = [&]() -> sim::Task<void> {
      TxnRequest w;
      w.write_set.emplace_back(7, make_value(1234));
      const TxnOutcome o1 = co_await bed.coordinator(0).execute(w);
      EXPECT_TRUE(o1.committed);
      // One-sided commits are fire-and-forget; give the write time to land.
      co_await bed.loop().delay(usec(20));
      TxnRequest r;
      r.read_set = {7};
      const TxnOutcome o2 = co_await bed.coordinator(0).execute(r);
      EXPECT_TRUE(o2.committed);
      co_return;
    };
    auto t = body();
    sim::run_blocking(bed.loop(), std::move(t));
    // The committed value is visible in the owning shard.
    auto view = bed.participant(7 % 3).store().lookup(7);
    ASSERT_TRUE(view.has_value());
    EXPECT_EQ(value_u64(view->value), 1234u) << "one_sided=" << one_sided;
    EXPECT_EQ(view->version, 2u);
    EXPECT_EQ(view->lock, 0u);
    bed.stop();
  }
}

TEST(ScaleTx, CrossShardTransactionTouchesAllParticipants) {
  ScaleTxTestbed bed(small_config(TransportKind::kScaleRpc, true, 1));
  bed.preload();
  bed.start();
  auto body = [&]() -> sim::Task<void> {
    TxnRequest txn;
    txn.read_set = {0, 1};  // shards 0 and 1
    txn.write_set.emplace_back(2, make_value(99));  // shard 2
    const TxnOutcome out = co_await bed.coordinator(0).execute(txn);
    EXPECT_TRUE(out.committed);
    co_await bed.loop().delay(usec(20));
  };
  auto t = body();
  sim::run_blocking(bed.loop(), std::move(t));
  EXPECT_EQ(value_u64(bed.participant(2).store().lookup(2)->value), 99u);
  EXPECT_GE(bed.participant(2).log_appends(), 1u);
  bed.stop();
}

TEST(ScaleTx, WriteConflictAbortsOneTransaction) {
  ScaleTxTestbed bed(small_config(TransportKind::kScaleRpc, true, 2));
  bed.preload();
  bed.start();
  int committed = 0;
  int aborted = 0;
  auto contender = [&](size_t c) -> sim::Task<void> {
    TxnRequest txn;
    txn.write_set.emplace_back(5, make_value(100 + c));
    const TxnOutcome out = co_await bed.coordinator(c).execute(txn);
    (out.committed ? committed : aborted)++;
  };
  // Launch both at the same instant: their lock phases race on key 5.
  sim::spawn(bed.loop(), contender(0));
  sim::spawn(bed.loop(), contender(1));
  bed.loop().run_for(msec(5));
  EXPECT_EQ(committed + aborted, 2);
  EXPECT_GE(committed, 1);
  // Whatever happened, the lock must not leak.
  EXPECT_EQ(bed.participant(5 % 3).store().lookup(5)->lock, 0u);
  bed.stop();
}

TEST(ScaleTx, ValidationCatchesConcurrentModification) {
  // Manually drive OCC: modify a read key between execution and a second
  // transaction's validation by committing a writer in between.
  ScaleTxTestbed bed(small_config(TransportKind::kScaleRpc, false, 2));
  bed.preload();
  bed.start();
  auto body = [&]() -> sim::Task<void> {
    // Writer bumps key 9's version.
    TxnRequest w;
    w.write_set.emplace_back(9, make_value(1));
    EXPECT_TRUE((co_await bed.coordinator(0).execute(w)).committed);
    // A read-only txn sees the new version and commits fine afterwards.
    TxnRequest r;
    r.read_set = {9};
    EXPECT_TRUE((co_await bed.coordinator(1).execute(r)).committed);
  };
  auto t = body();
  sim::run_blocking(bed.loop(), std::move(t));
  bed.stop();
}

class TxnTransportTest : public ::testing::TestWithParam<TransportKind> {};

TEST_P(TxnTransportTest, SmallBankRunsAndBalancesConserveLocks) {
  ScaleTxConfig cfg = small_config(GetParam(), false, 6);
  ScaleTxTestbed bed(cfg);
  bed.preload();
  bed.start();
  SmallBankWorkload wl(cfg.keys_per_shard * 3 / 2, cfg.value_bytes);
  const TxnRunResult r = run_transactions(
      bed, [&wl](Rng& rng) { return wl.next(rng); }, usec(300), msec(2));
  EXPECT_GT(r.committed, 50u);
  EXPECT_LT(r.abort_rate, 0.5);
  bed.stop();
  // No lock may remain held after the run drains.
  bed.loop().run_for(msec(1));
  for (int p = 0; p < 3; ++p) {
    for (uint64_t key = p; key < 64; key += 3) {
      auto v = bed.participant(static_cast<size_t>(p)).store().lookup(key);
      if (v.has_value()) {
        EXPECT_EQ(v->lock, 0u) << "key " << key;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Transports, TxnTransportTest,
                         ::testing::Values(TransportKind::kRawWrite,
                                           TransportKind::kFasst,
                                           TransportKind::kScaleRpc),
                         [](const ::testing::TestParamInfo<TransportKind>& info) {
                           return std::string(harness::to_string(info.param));
                         });

TEST(ScaleTx, OneSidedBeatsRpcOnlyOnWriteHeavyLoad) {
  // DESIGN.md ablation #3 (the ScaleTX vs ScaleTX-O gap, Fig. 16b).
  auto run_mode = [](bool one_sided) {
    ScaleTxConfig cfg = small_config(TransportKind::kScaleRpc, one_sided, 24);
    cfg.coordinator_nodes = 4;
    cfg.keys_per_shard = 4096;
    ScaleTxTestbed bed(cfg);
    bed.preload();
    bed.start();
    SmallBankWorkload wl(cfg.keys_per_shard * 3 / 2, cfg.value_bytes);
    const TxnRunResult r = run_transactions(
        bed, [&wl](Rng& rng) { return wl.next(rng); }, usec(500), msec(3));
    bed.stop();
    return r.committed_ktps;
  };
  const double scaletx = run_mode(true);
  const double scaletx_o = run_mode(false);
  EXPECT_GT(scaletx, scaletx_o) << "ScaleTX=" << scaletx << " -O=" << scaletx_o;
}

TEST(Workloads, ObjectStoreShapes) {
  ObjectStoreWorkload wl(1000, 3, 3, 1, 40);
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    const TxnRequest txn = wl.next(rng);
    EXPECT_EQ(txn.read_set.size(), 3u);
    EXPECT_EQ(txn.write_set.size(), 1u);
    for (uint64_t k : txn.read_set) {
      EXPECT_LT(k, 3000u);
    }
  }
}

TEST(Workloads, SmallBankMixIsWriteHeavy) {
  SmallBankWorkload wl(10000, 40);
  Rng rng(11);
  int read_only = 0;
  constexpr int kN = 10000;
  for (int i = 0; i < kN; ++i) {
    const TxnRequest txn = wl.next(rng);
    read_only += txn.write_set.empty() ? 1 : 0;
  }
  // 15% balance transactions.
  EXPECT_NEAR(static_cast<double>(read_only) / kN, 0.15, 0.02);
}

TEST(Workloads, SmallBankHotSetSkew) {
  SmallBankWorkload wl(10000, 40);
  Rng rng(13);
  const uint64_t hot_bound = 400;  // 4% of 10000
  int hot = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    hot += wl.pick_account(rng) < hot_bound ? 1 : 0;
  }
  // 60% of traffic hits the hot 4%.
  EXPECT_NEAR(static_cast<double>(hot) / kN, 0.60, 0.03);
}

}  // namespace
}  // namespace scalerpc::txn
