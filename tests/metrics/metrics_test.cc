// Unit tests for the labeled metrics registry, the thread-local session,
// and the flight recorder (src/metrics/).
#include "src/metrics/metrics.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "src/metrics/collector.h"
#include "src/metrics/flight.h"

namespace scalerpc::metrics {
namespace {

TEST(Registry, CountersAccumulateGaugesOverwrite) {
  Registry r;
  r.add(kClientRequests, 3, 2);
  r.add(kClientRequests, 3, 5);
  EXPECT_EQ(r.value(kClientRequests, 3), 7u);
  // Slots below the touched one exist and read zero.
  EXPECT_EQ(r.value(kClientRequests, 0), 0u);

  r.set(kNodeOps, 1, 10);
  r.set(kNodeOps, 1, 4);
  EXPECT_EQ(r.value(kNodeOps, 1), 4u);

  // Untouched columns and out-of-range slots read zero.
  EXPECT_EQ(r.value(kGroupRequests, 0), 0u);
  EXPECT_EQ(r.value(kClientRequests, 99), 0u);
}

TEST(Registry, HistogramRecords) {
  Registry r;
  EXPECT_EQ(r.histogram(kClientLatencyUs, 0), nullptr);
  r.record(kClientLatencyUs, 0, 10);
  r.record(kClientLatencyUs, 0, 30);
  const Histogram* h = r.histogram(kClientLatencyUs, 0);
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), 2u);
  EXPECT_EQ(h->min(), 10u);
  EXPECT_EQ(h->max(), 30u);
}

TEST(Registry, QpSlotsAreStable) {
  Registry r;
  const uint32_t s0 = r.qp_slot(1, 7);
  const uint32_t s1 = r.qp_slot(2, 7);
  EXPECT_NE(s0, s1);
  EXPECT_EQ(r.qp_slot(1, 7), s0);
  EXPECT_EQ(r.qp_slot(2, 7), s1);
}

TEST(Registry, DumpSortsQpPointsByLabel) {
  // Two registries touching the same QPs in opposite orders must dump
  // byte-identically — the property the cross-engine determinism test
  // leans on.
  Registry a;
  a.add(kQpBytesTx, a.qp_slot(1, 5), 100);
  a.add(kQpBytesTx, a.qp_slot(0, 9), 50);
  Registry b;
  b.add(kQpBytesTx, b.qp_slot(0, 9), 50);
  b.add(kQpBytesTx, b.qp_slot(1, 5), 100);
  std::string da;
  std::string db;
  a.dump(da);
  b.dump(db);
  EXPECT_EQ(da, db);
  // Sorted by packed label: node 0 before node 1.
  const size_t n0 = da.find("\"node\":0");
  const size_t n1 = da.find("\"node\":1");
  ASSERT_NE(n0, std::string::npos);
  ASSERT_NE(n1, std::string::npos);
  EXPECT_LT(n0, n1);
}

TEST(Registry, DumpOmitsUntouchedColumns) {
  Registry r;
  std::string out;
  r.dump(out);
  EXPECT_EQ(out, "{\"series\":[]}");

  r.add(kGroupRequests, 0, 1);
  out.clear();
  r.dump(out);
  EXPECT_NE(out.find("\"kind\":\"group\",\"name\":\"requests\""),
            std::string::npos);
  EXPECT_EQ(out.find("\"client\""), std::string::npos);
}

TEST(Session, OffByDefault) {
  EXPECT_EQ(registry(), nullptr);
  EXPECT_EQ(flight(), nullptr);
}

TEST(Session, ScopedInstallAndRestore) {
  Registry r;
  FlightRecorder f;
  {
    ScopedSession outer(Session{&r, nullptr});
    EXPECT_EQ(registry(), &r);
    EXPECT_EQ(flight(), nullptr);
    {
      ScopedSession inner(Session{nullptr, &f});
      EXPECT_EQ(registry(), nullptr);
      EXPECT_EQ(flight(), &f);
    }
    EXPECT_EQ(registry(), &r);
  }
  EXPECT_EQ(registry(), nullptr);
}

TEST(Flight, RingOverwritesOldest) {
  FlightRecorder f(4);
  for (int i = 0; i < 10; ++i) {
    f.note("ev", i, 0, i);
  }
  EXPECT_EQ(f.size(), 4u);
  EXPECT_EQ(f.capacity(), 4u);
  std::string out;
  f.dump(out);
  // Only the newest window survives, oldest first.
  EXPECT_EQ(out.find("\"ts_ns\":5,"), std::string::npos);
  const size_t p6 = out.find("\"ts_ns\":6,");
  const size_t p9 = out.find("\"ts_ns\":9,");
  ASSERT_NE(p6, std::string::npos);
  ASSERT_NE(p9, std::string::npos);
  EXPECT_LT(p6, p9);
}

TEST(Flight, FreezesHalfCapacityAfterTrigger) {
  FlightRecorder f(8);
  for (int i = 0; i < 4; ++i) {
    f.note("pre", i, 0);
  }
  f.trigger("incident", 4);
  for (int i = 4; i < 100; ++i) {
    f.note("post", i, 0);
  }
  std::string out;
  f.dump(out);
  // The window straddles the trigger: pre-trigger context survives, and
  // recording froze after capacity/2 post-trigger events instead of letting
  // the rest of the run overwrite the incident.
  EXPECT_NE(out.find("\"ts_ns\":0,"), std::string::npos);
  EXPECT_NE(out.find("\"ts_ns\":3,"), std::string::npos);
  EXPECT_NE(out.find("\"ts_ns\":7,"), std::string::npos);
  EXPECT_EQ(out.find("\"ts_ns\":8,"), std::string::npos);
}

TEST(Flight, TriggerFirstReasonWins) {
  FlightRecorder f;
  EXPECT_FALSE(f.triggered());
  f.trigger("first", 100);
  f.trigger("second", 200);
  EXPECT_TRUE(f.triggered());
  EXPECT_STREQ(f.trigger_reason(), "first");
  std::string out;
  f.dump(out);
  EXPECT_NE(out.find("\"trigger\":\"first\""), std::string::npos);
}

TEST(Flight, DumpNowNeedsAPath) {
  FlightRecorder f;
  f.note("ev", 1, 0);
  f.trigger("t", 1);
  EXPECT_EQ(f.dump_now(), "");

  const std::string path = testing::TempDir() + "metrics_flight_test.json";
  f.set_dump_path(path);
  EXPECT_EQ(f.dump_now(), path);
  std::FILE* file = std::fopen(path.c_str(), "r");
  ASSERT_NE(file, nullptr);
  char buf[256] = {};
  const size_t n = std::fread(buf, 1, sizeof(buf) - 1, file);
  std::fclose(file);
  std::remove(path.c_str());
  const std::string body(buf, n);
  EXPECT_NE(body.find("\"trigger\":\"t\""), std::string::npos);
  EXPECT_NE(body.find("\"name\":\"ev\""), std::string::npos);
}

TEST(Collector, MergesSlotsInSubmissionOrder) {
  Collector c(CollectorConfig{/*metrics=*/true, /*flight=*/false, "", 16});
  ASSERT_TRUE(c.enabled());
  c.resize(2);
  // Open in reverse order — the file must still list slot 0 first.
  Session s1 = c.open(1, "second");
  Session s0 = c.open(0, "first");
  s1.registry->add(kClientRequests, 0, 2);
  s0.registry->add(kClientRequests, 0, 1);

  const std::string path = testing::TempDir() + "metrics_collector_test.json";
  ASSERT_TRUE(c.write_metrics(path, "unit"));
  std::FILE* file = std::fopen(path.c_str(), "r");
  ASSERT_NE(file, nullptr);
  std::string body(1 << 12, '\0');
  body.resize(std::fread(body.data(), 1, body.size(), file));
  std::fclose(file);
  std::remove(path.c_str());

  const size_t first = body.find("\"first\"");
  const size_t second = body.find("\"second\"");
  ASSERT_NE(first, std::string::npos);
  ASSERT_NE(second, std::string::npos);
  EXPECT_LT(first, second);
}

TEST(Collector, FlightDumpsOnlyTriggeredSlots) {
  const std::string prefix = testing::TempDir() + "metrics_collector_flight";
  Collector c(CollectorConfig{/*metrics=*/false, /*flight=*/true, prefix, 16});
  c.resize(2);
  Session s0 = c.open(0, "calm");
  Session s1 = c.open(1, "stormy");
  s0.flight->note("ok", 1, 0);
  s1.flight->note("bad", 2, 0);
  s1.flight->trigger("fault", 2);

  const auto paths = c.write_flight_dumps();
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0], prefix + ".1.json");
  std::remove(paths[0].c_str());
}

}  // namespace
}  // namespace scalerpc::metrics
