// End-to-end verb semantics on the simulated fabric.
#include "src/simrdma/verbs.h"

#include <gtest/gtest.h>

#include <cstring>

#include "src/simrdma/cluster.h"
#include "src/simrdma/nic.h"
#include "src/simrdma/node.h"

namespace scalerpc::simrdma {
namespace {

struct Pair {
  Cluster cluster;
  Node* a;
  Node* b;
  CompletionQueue* cq_a;
  CompletionQueue* cq_b;
  QueuePair* qa;
  QueuePair* qb;

  explicit Pair(QpType type, SimParams params = SimParams{}) : cluster(params) {
    a = cluster.add_node("a");
    b = cluster.add_node("b");
    cq_a = a->create_cq();
    cq_b = b->create_cq();
    qa = a->create_qp(type, cq_a, cq_a);
    qb = b->create_qp(type, cq_b, cq_b);
    if (type != QpType::kUD) {
      cluster.connect(qa, qb);
    }
  }
};

void fill(Node* n, uint64_t addr, const char* text) {
  n->memory().store(addr, std::span(reinterpret_cast<const uint8_t*>(text),
                                    std::strlen(text)));
}

std::string read_str(Node* n, uint64_t addr, size_t len) {
  std::string s(len, '\0');
  n->memory().load(addr, std::span(reinterpret_cast<uint8_t*>(s.data()), len));
  return s;
}

TEST(Verbs, RcWriteMovesBytesAndCompletes) {
  Pair p(QpType::kRC);
  const uint64_t src = p.a->alloc(64);
  const uint64_t dst = p.b->alloc(64);
  MemoryRegion* mr = p.b->register_mr(dst, 64);
  fill(p.a, src, "hello rdma");

  auto body = [&]() -> sim::Task<void> {
    SendWr wr;
    wr.wr_id = 77;
    wr.opcode = Opcode::kWrite;
    wr.local_addr = src;
    wr.length = 10;
    wr.remote_addr = dst;
    wr.rkey = mr->rkey;
    co_await p.qa->post_send(wr);
    const Completion c = co_await p.cq_a->next();
    EXPECT_EQ(c.wr_id, 77u);
    EXPECT_EQ(c.status, WcStatus::kSuccess);
    EXPECT_EQ(c.opcode, Opcode::kWrite);
  };
  auto t = body();
  sim::run_blocking(p.cluster.loop(), std::move(t));
  EXPECT_EQ(read_str(p.b, dst, 10), "hello rdma");
  // RC write round trip should land in a realistic small-message range.
  EXPECT_GT(p.cluster.loop().now(), 500);
  EXPECT_LT(p.cluster.loop().now(), 5000);
}

TEST(Verbs, RcWriteWrongRkeyFailsWithRemoteAccessError) {
  Pair p(QpType::kRC);
  const uint64_t src = p.a->alloc(64);
  const uint64_t dst = p.b->alloc(64);
  p.b->register_mr(dst, 64);

  auto body = [&]() -> sim::Task<void> {
    SendWr wr;
    wr.opcode = Opcode::kWrite;
    wr.local_addr = src;
    wr.length = 8;
    wr.remote_addr = dst;
    wr.rkey = 0xbad;
    co_await p.qa->post_send(wr);
    const Completion c = co_await p.cq_a->next();
    EXPECT_EQ(c.status, WcStatus::kRemoteAccessError);
  };
  auto t = body();
  sim::run_blocking(p.cluster.loop(), std::move(t));
}

TEST(Verbs, RcWriteOutsideMrBoundsFails) {
  Pair p(QpType::kRC);
  const uint64_t src = p.a->alloc(64);
  const uint64_t dst = p.b->alloc(64);
  MemoryRegion* mr = p.b->register_mr(dst, 32);

  auto body = [&]() -> sim::Task<void> {
    SendWr wr;
    wr.opcode = Opcode::kWrite;
    wr.local_addr = src;
    wr.length = 40;  // past the 32-byte MR
    wr.remote_addr = dst;
    wr.rkey = mr->rkey;
    co_await p.qa->post_send(wr);
    const Completion c = co_await p.cq_a->next();
    EXPECT_EQ(c.status, WcStatus::kRemoteAccessError);
  };
  auto t = body();
  sim::run_blocking(p.cluster.loop(), std::move(t));
}

TEST(Verbs, RcReadFetchesRemoteBytes) {
  Pair p(QpType::kRC);
  const uint64_t local = p.a->alloc(64);
  const uint64_t remote = p.b->alloc(64);
  MemoryRegion* mr = p.b->register_mr(remote, 64);
  fill(p.b, remote, "remote-data");

  auto body = [&]() -> sim::Task<void> {
    SendWr wr;
    wr.wr_id = 5;
    wr.opcode = Opcode::kRead;
    wr.local_addr = local;
    wr.length = 11;
    wr.remote_addr = remote;
    wr.rkey = mr->rkey;
    co_await p.qa->post_send(wr);
    const Completion c = co_await p.cq_a->next();
    EXPECT_EQ(c.status, WcStatus::kSuccess);
    EXPECT_EQ(c.opcode, Opcode::kRead);
    EXPECT_EQ(c.byte_len, 11u);
  };
  auto t = body();
  sim::run_blocking(p.cluster.loop(), std::move(t));
  EXPECT_EQ(read_str(p.a, local, 11), "remote-data");
}

TEST(Verbs, RcWriteImmConsumesRecvAndCarriesImm) {
  Pair p(QpType::kRC);
  const uint64_t src = p.a->alloc(64);
  const uint64_t dst = p.b->alloc(64);
  MemoryRegion* mr = p.b->register_mr(dst, 64);
  fill(p.a, src, "imm-payload");
  p.qb->post_recv_immediate(RecvWr{.wr_id = 9, .addr = 0, .length = 0});

  auto body = [&]() -> sim::Task<void> {
    SendWr wr;
    wr.opcode = Opcode::kWriteImm;
    wr.local_addr = src;
    wr.length = 11;
    wr.remote_addr = dst;
    wr.rkey = mr->rkey;
    wr.imm = 0xabcd;
    co_await p.qa->post_send(wr);
    const Completion rc = co_await p.cq_b->next();
    EXPECT_TRUE(rc.is_recv);
    EXPECT_TRUE(rc.has_imm);
    EXPECT_EQ(rc.imm, 0xabcdu);
    EXPECT_EQ(rc.wr_id, 9u);
    const Completion sc = co_await p.cq_a->next();
    EXPECT_EQ(sc.status, WcStatus::kSuccess);
  };
  auto t = body();
  sim::run_blocking(p.cluster.loop(), std::move(t));
  EXPECT_EQ(read_str(p.b, dst, 11), "imm-payload");
}

TEST(Verbs, RcSendRecvDeliversToPostedBuffer) {
  Pair p(QpType::kRC);
  const uint64_t src = p.a->alloc(64);
  const uint64_t buf = p.b->alloc(64);
  fill(p.a, src, "two-sided");
  p.qb->post_recv_immediate(RecvWr{.wr_id = 3, .addr = buf, .length = 64});

  auto body = [&]() -> sim::Task<void> {
    SendWr wr;
    wr.opcode = Opcode::kSend;
    wr.local_addr = src;
    wr.length = 9;
    co_await p.qa->post_send(wr);
    const Completion rc = co_await p.cq_b->next();
    EXPECT_TRUE(rc.is_recv);
    EXPECT_EQ(rc.byte_len, 9u);  // no GRH on RC
    EXPECT_EQ(rc.src_node, p.a->id());
  };
  auto t = body();
  sim::run_blocking(p.cluster.loop(), std::move(t));
  EXPECT_EQ(read_str(p.b, buf, 9), "two-sided");
}

TEST(Verbs, RcSendWithoutRecvRetriesUntilRecvPosted) {
  Pair p(QpType::kRC);
  const uint64_t src = p.a->alloc(64);
  const uint64_t buf = p.b->alloc(64);
  fill(p.a, src, "late");

  auto sender = [&]() -> sim::Task<void> {
    SendWr wr;
    wr.opcode = Opcode::kSend;
    wr.local_addr = src;
    wr.length = 4;
    co_await p.qa->post_send(wr);
    const Completion sc = co_await p.cq_a->next();
    EXPECT_EQ(sc.status, WcStatus::kSuccess);
  };
  auto poster = [&]() -> sim::Task<void> {
    co_await p.cluster.loop().delay(usec(8));  // past one RNR retry
    co_await p.qb->post_recv(RecvWr{.wr_id = 1, .addr = buf, .length = 64});
  };
  sim::spawn(p.cluster.loop(), poster());
  auto t = sender();
  sim::run_blocking(p.cluster.loop(), std::move(t));
  EXPECT_EQ(read_str(p.b, buf, 4), "late");
  EXPECT_GE(p.b->nic().counters().rnr_events, 1u);
}

TEST(Verbs, RcSendRnrRetriesExhaustedYieldsError) {
  Pair p(QpType::kRC);
  const uint64_t src = p.a->alloc(64);
  auto body = [&]() -> sim::Task<void> {
    SendWr wr;
    wr.opcode = Opcode::kSend;
    wr.local_addr = src;
    wr.length = 4;
    co_await p.qa->post_send(wr);
    const Completion sc = co_await p.cq_a->next();
    EXPECT_EQ(sc.status, WcStatus::kRetryExceeded);
  };
  auto t = body();
  sim::run_blocking(p.cluster.loop(), std::move(t));
}

TEST(Verbs, UdSendPrependsGrh) {
  Pair p(QpType::kUD);
  const uint64_t src = p.a->alloc(64);
  const uint64_t buf = p.b->alloc(256);
  fill(p.a, src, "datagram");
  p.qb->post_recv_immediate(RecvWr{.wr_id = 11, .addr = buf, .length = 256});

  auto body = [&]() -> sim::Task<void> {
    SendWr wr;
    wr.opcode = Opcode::kSend;
    wr.local_addr = src;
    wr.length = 8;
    wr.dest_node = p.b->id();
    wr.dest_qpn = p.qb->qpn();
    co_await p.qa->post_send(wr);
    const Completion sc = co_await p.cq_a->next();  // UD completes on transmit
    EXPECT_EQ(sc.status, WcStatus::kSuccess);
    const Completion rc = co_await p.cq_b->next();
    EXPECT_TRUE(rc.is_recv);
    EXPECT_EQ(rc.byte_len, 8u + SimParams{}.grh_bytes);
    EXPECT_EQ(rc.src_qpn, p.qa->qpn());
  };
  auto t = body();
  sim::run_blocking(p.cluster.loop(), std::move(t));
  // Payload lands after the 40-byte GRH.
  EXPECT_EQ(read_str(p.b, buf + SimParams{}.grh_bytes, 8), "datagram");
}

TEST(Verbs, UdSendWithoutRecvIsSilentlyDropped) {
  Pair p(QpType::kUD);
  const uint64_t src = p.a->alloc(64);
  auto body = [&]() -> sim::Task<void> {
    SendWr wr;
    wr.opcode = Opcode::kSend;
    wr.local_addr = src;
    wr.length = 8;
    wr.dest_node = p.b->id();
    wr.dest_qpn = p.qb->qpn();
    co_await p.qa->post_send(wr);
    const Completion sc = co_await p.cq_a->next();
    EXPECT_EQ(sc.status, WcStatus::kSuccess);  // sender never learns
  };
  auto t = body();
  sim::run_blocking(p.cluster.loop(), std::move(t));
  p.cluster.loop().run_for(usec(100));
  EXPECT_EQ(p.b->nic().counters().ud_drops, 1u);
  EXPECT_EQ(p.cq_b->depth(), 0u);
}

TEST(Verbs, UcWriteCompletesOnTransmitWithoutAck) {
  Pair p(QpType::kUC);
  const uint64_t src = p.a->alloc(64);
  const uint64_t dst = p.b->alloc(64);
  MemoryRegion* mr = p.b->register_mr(dst, 64);
  fill(p.a, src, "uc");

  Nanos completion_time = 0;
  auto body = [&]() -> sim::Task<void> {
    SendWr wr;
    wr.opcode = Opcode::kWrite;
    wr.local_addr = src;
    wr.length = 2;
    wr.remote_addr = dst;
    wr.rkey = mr->rkey;
    co_await p.qa->post_send(wr);
    co_await p.cq_a->next();
    completion_time = p.cluster.loop().now();
  };
  auto t = body();
  sim::run_blocking(p.cluster.loop(), std::move(t));
  p.cluster.loop().run_for(usec(10));
  EXPECT_EQ(read_str(p.b, dst, 2), "uc");
  // UC completion must not include the remote round trip (switch RTT of
  // 600ns plus remote processing and ack turnaround would push it past
  // ~1.6us); local cold-cache processing alone lands under ~1.2us.
  EXPECT_LT(completion_time, 1200);
  EXPECT_EQ(p.b->nic().counters().acks_sent, 0u);
}

TEST(Verbs, AtomicFetchAddReturnsOldValueAndApplies) {
  Pair p(QpType::kRC);
  const uint64_t local = p.a->alloc(8);
  const uint64_t counter = p.b->alloc(8);
  MemoryRegion* mr = p.b->register_mr(counter, 8);
  p.b->memory().store_pod<uint64_t>(counter, 100);

  auto body = [&]() -> sim::Task<void> {
    SendWr wr;
    wr.opcode = Opcode::kFetchAdd;
    wr.local_addr = local;
    wr.remote_addr = counter;
    wr.rkey = mr->rkey;
    wr.swap_or_add = 5;
    co_await p.qa->post_send(wr);
    const Completion c = co_await p.cq_a->next();
    EXPECT_EQ(c.status, WcStatus::kSuccess);
    EXPECT_EQ(c.atomic_old, 100u);
  };
  auto t = body();
  sim::run_blocking(p.cluster.loop(), std::move(t));
  EXPECT_EQ(p.b->memory().load_pod<uint64_t>(counter), 105u);
}

TEST(Verbs, AtomicCompareSwapOnlySwapsOnMatch) {
  Pair p(QpType::kRC);
  const uint64_t local = p.a->alloc(8);
  const uint64_t target = p.b->alloc(8);
  MemoryRegion* mr = p.b->register_mr(target, 8);
  p.b->memory().store_pod<uint64_t>(target, 7);

  auto body = [&]() -> sim::Task<void> {
    SendWr wr;
    wr.opcode = Opcode::kCompSwap;
    wr.local_addr = local;
    wr.remote_addr = target;
    wr.rkey = mr->rkey;
    wr.compare = 99;  // mismatch
    wr.swap_or_add = 1;
    co_await p.qa->post_send(wr);
    Completion c = co_await p.cq_a->next();
    EXPECT_EQ(c.atomic_old, 7u);

    wr.compare = 7;  // match
    wr.swap_or_add = 42;
    co_await p.qa->post_send(wr);
    c = co_await p.cq_a->next();
    EXPECT_EQ(c.atomic_old, 7u);
  };
  auto t = body();
  sim::run_blocking(p.cluster.loop(), std::move(t));
  EXPECT_EQ(p.b->memory().load_pod<uint64_t>(target), 42u);
}

TEST(Verbs, DmaWriteFiresMemoryWatcher) {
  Pair p(QpType::kRC);
  const uint64_t src = p.a->alloc(64);
  const uint64_t dst = p.b->alloc(64);
  MemoryRegion* mr = p.b->register_mr(dst, 64);
  int fired = 0;
  p.b->memory().add_watcher(dst, 64, [&] { fired++; });

  auto body = [&]() -> sim::Task<void> {
    SendWr wr;
    wr.opcode = Opcode::kWrite;
    wr.local_addr = src;
    wr.length = 16;
    wr.remote_addr = dst;
    wr.rkey = mr->rkey;
    co_await p.qa->post_send(wr);
    co_await p.cq_a->next();
  };
  auto t = body();
  sim::run_blocking(p.cluster.loop(), std::move(t));
  EXPECT_EQ(fired, 1);
}

TEST(Verbs, UnsignaledWriteProducesNoCompletion) {
  Pair p(QpType::kRC);
  const uint64_t src = p.a->alloc(64);
  const uint64_t dst = p.b->alloc(64);
  MemoryRegion* mr = p.b->register_mr(dst, 64);

  auto body = [&]() -> sim::Task<void> {
    SendWr wr;
    wr.opcode = Opcode::kWrite;
    wr.local_addr = src;
    wr.length = 8;
    wr.remote_addr = dst;
    wr.rkey = mr->rkey;
    wr.signaled = false;
    co_await p.qa->post_send(wr);
  };
  auto t = body();
  sim::run_blocking(p.cluster.loop(), std::move(t));
  p.cluster.loop().run_for(usec(50));
  EXPECT_EQ(p.cq_a->depth(), 0u);
}

TEST(VerbsDeathTest, UdRejectsOneSidedVerbs) {
  Pair p(QpType::kUD);
  auto body = [&]() -> sim::Task<void> {
    SendWr wr;
    wr.opcode = Opcode::kWrite;
    wr.dest_node = p.b->id();
    wr.dest_qpn = p.qb->qpn();
    co_await p.qa->post_send(wr);
  };
  EXPECT_DEATH(
      {
        auto t = body();
        sim::run_blocking(p.cluster.loop(), std::move(t));
      },
      "UD supports only send/recv");
}

TEST(VerbsDeathTest, UdRejectsJumboMessages) {
  Pair p(QpType::kUD);
  const uint64_t src = p.a->alloc(KiB(8));
  auto body = [&]() -> sim::Task<void> {
    SendWr wr;
    wr.opcode = Opcode::kSend;
    wr.local_addr = src;
    wr.length = 5000;  // > 4KB MTU (paper Table 1)
    wr.dest_node = p.b->id();
    wr.dest_qpn = p.qb->qpn();
    co_await p.qa->post_send(wr);
  };
  EXPECT_DEATH(
      {
        auto t = body();
        sim::run_blocking(p.cluster.loop(), std::move(t));
      },
      "UD MTU");
}

TEST(VerbsDeathTest, UcRejectsRead) {
  Pair p(QpType::kUC);
  auto body = [&]() -> sim::Task<void> {
    SendWr wr;
    wr.opcode = Opcode::kRead;
    wr.length = 8;
    co_await p.qa->post_send(wr);
  };
  EXPECT_DEATH(
      {
        auto t = body();
        sim::run_blocking(p.cluster.loop(), std::move(t));
      },
      "UC does not support");
}

// Paper Table 1: capability matrix, asserted as API behaviour.
TEST(Verbs, Table1CapabilityMatrix) {
  // RC: everything. UC: no read/atomic. UD: send only, 4KB MTU.
  // The death tests above cover the forbidden cells; here we document the
  // allowed ones compile-and-run (RC covered extensively by other tests).
  SimParams p;
  EXPECT_EQ(p.ud_mtu_bytes, 4096u);
  EXPECT_EQ(p.grh_bytes, 40u);
}

}  // namespace
}  // namespace scalerpc::simrdma
