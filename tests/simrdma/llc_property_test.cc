// Property sweeps over the LLC and NIC-cache models: capacity invariants
// must hold under arbitrary interleavings of CPU/DMA traffic.
#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/simrdma/llc.h"
#include "src/simrdma/nic_cache.h"

namespace scalerpc::simrdma {
namespace {

class LlcPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LlcPropertyTest, OccupancyInvariantsUnderRandomTraffic) {
  SimParams p;
  p.llc_bytes = KiB(64);
  LastLevelCache llc(p);
  Rng rng(GetParam());
  const uint64_t span = MiB(1);
  for (int step = 0; step < 50000; ++step) {
    const uint64_t addr = align_down(rng.next_below(span), 8);
    const uint32_t len = static_cast<uint32_t>(rng.next_in(1, 256));
    switch (rng.next_below(4)) {
      case 0:
        llc.cpu_read(addr, len);
        break;
      case 1:
        llc.cpu_write(addr, len);
        break;
      case 2:
        llc.dma_write(addr, len);
        break;
      default:
        llc.dma_read(addr, len);
        break;
    }
    ASSERT_LE(llc.resident_lines(), llc.capacity_lines());
    ASSERT_LE(llc.ddio_lines(), llc.ddio_capacity_lines());
    ASSERT_LE(llc.ddio_lines(), llc.resident_lines());
  }
  // Counters are consistent: every CPU access is a hit or a miss.
  const auto& pcm = llc.pcm();
  EXPECT_GT(pcm.l3_hits + pcm.l3_misses, 0u);
  // Writes were counted either as full-line or partial-line.
  EXPECT_GT(pcm.itom + pcm.rfo, 0u);
  // Allocating writes are a subset of all DMA writes.
  EXPECT_LE(pcm.pcie_itom, pcm.itom + pcm.rfo);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LlcPropertyTest, ::testing::Values(1, 2, 3, 5, 8, 13));

class NicCachePropertyTest : public ::testing::TestWithParam<size_t> {};

TEST_P(NicCachePropertyTest, SizeNeverExceedsCapacityAndStatsBalance) {
  const size_t capacity = GetParam();
  NicCache cache(capacity);
  Rng rng(capacity * 31);
  uint64_t consumed_hits = 0;
  for (int step = 0; step < 30000; ++step) {
    const uint64_t key = rng.next_below(3 * capacity);
    switch (rng.next_below(4)) {
      case 0:
        cache.access(key);
        break;
      case 1:
        cache.touch_insert(key);
        break;
      case 2:
        consumed_hits += cache.consume(key) ? 1 : 0;
        break;
      default:
        cache.invalidate(key);
        break;
    }
    ASSERT_LE(cache.size(), capacity);
  }
  EXPECT_GT(cache.misses(), 0u);
  EXPECT_GE(cache.hits(), consumed_hits);
}

INSTANTIATE_TEST_SUITE_P(Capacities, NicCachePropertyTest,
                         ::testing::Values(1, 2, 7, 64, 1024));

TEST(LlcProperty, WorkingSetAtCapacityBoundaryBehavesSharply) {
  // Sweep working sets around the capacity: below => ~100% hits on the
  // second pass, above (cyclic) => ~0% hits. The sharpness of this edge is
  // what produces the paper's knees.
  SimParams p;
  p.llc_bytes = KiB(64);  // 1024 lines
  for (const uint64_t lines : {512ULL, 1023ULL, 1025ULL, 2048ULL}) {
    LastLevelCache llc(p);
    for (int pass = 0; pass < 2; ++pass) {
      for (uint64_t i = 0; i < lines; ++i) {
        llc.cpu_read(i * kCacheLineSize, 8);
      }
    }
    const auto& pcm = llc.pcm();
    const double hit_rate =
        static_cast<double>(pcm.l3_hits) / static_cast<double>(pcm.l3_hits + pcm.l3_misses);
    if (lines <= 1023) {
      EXPECT_GT(hit_rate, 0.45) << lines;  // second pass all hits
    } else {
      EXPECT_LT(hit_rate, 0.05) << lines;  // LRU + cyclic scan: all misses
    }
  }
}

}  // namespace
}  // namespace scalerpc::simrdma
