// Engine oracle: the NIC's callback state-machine engine and the coroutine
// reference engine (src/simrdma/nic_engine.h) must be event-for-event
// identical. Each case replays one workload under both engines and compares
// everything observable about the run — total events fired, the final
// simulated clock, throughput, every NIC counter except the diagnostic
// engine_steps, and the server-side PCM deltas. Configurations cover the
// RC write/read data path with acks, the UD send path (RNR/drops), and a
// lossy fabric that exercises retransmission, duplicate suppression, and
// the RNR wait loop.
#include <gtest/gtest.h>

#include "src/fault/plan.h"
#include "src/harness/harness.h"
#include "src/simrdma/nic_engine.h"

namespace scalerpc {
namespace {

using harness::EchoWorkload;
using harness::Testbed;
using harness::TestbedConfig;
using harness::TransportKind;
using simrdma::NicEngine;

// Restores the process-wide engine flag (other tests in this binary and the
// default build expect the state-machine engine).
struct EngineGuard {
  ~EngineGuard() { simrdma::set_nic_engine(NicEngine::kStateMachine); }
};

// Everything a run exposes, minus the per-engine diagnostic. Two engines
// agreeing on `events` and `end_time` simultaneously is already conclusive
// (a single extra or reordered event shifts both); the counters and PCM
// deltas additionally pin down which paths ran.
struct Observed {
  uint64_t events = 0;
  Nanos end_time = 0;
  uint64_t ops = 0;
  simrdma::NicCounters nic{};  // summed over all nodes, engine_steps zeroed
  simrdma::PcmCounters pcm{};  // server measurement-window delta
  uint64_t timeouts = 0;
  uint64_t reconnects = 0;
  uint64_t dup_rpcs = 0;

  bool operator==(const Observed& rhs) const {
    return events == rhs.events && end_time == rhs.end_time &&
           ops == rhs.ops && timeouts == rhs.timeouts &&
           reconnects == rhs.reconnects && dup_rpcs == rhs.dup_rpcs &&
           nic.send_wqes == rhs.nic.send_wqes &&
           nic.inbound_packets == rhs.nic.inbound_packets &&
           nic.qp_cache_hits == rhs.nic.qp_cache_hits &&
           nic.qp_cache_misses == rhs.nic.qp_cache_misses &&
           nic.ud_drops == rhs.nic.ud_drops &&
           nic.rnr_events == rhs.nic.rnr_events &&
           nic.acks_sent == rhs.nic.acks_sent &&
           nic.bytes_tx == rhs.nic.bytes_tx &&
           nic.bytes_rx == rhs.nic.bytes_rx &&
           nic.rc_retransmits == rhs.nic.rc_retransmits &&
           nic.rc_retry_exhausted == rhs.nic.rc_retry_exhausted &&
           nic.rc_dup_requests == rhs.nic.rc_dup_requests &&
           nic.flushed_wrs == rhs.nic.flushed_wrs &&
           pcm.pcie_rd_cur == rhs.pcm.pcie_rd_cur && pcm.rfo == rhs.pcm.rfo &&
           pcm.itom == rhs.pcm.itom && pcm.pcie_itom == rhs.pcm.pcie_itom &&
           pcm.l3_hits == rhs.pcm.l3_hits &&
           pcm.l3_misses == rhs.pcm.l3_misses;
  }
};

struct CaseConfig {
  TransportKind kind;
  int clients;
  int batch;
  uint32_t msg_bytes;
  uint64_t seed;
  const fault::FaultPlan* plan = nullptr;
};

// Runs one echo workload under `engine` and snapshots everything observable.
// `engine_steps_out` receives the diagnostic total so callers can assert the
// requested engine actually executed.
Observed run_case(NicEngine engine, const CaseConfig& c,
                  uint64_t* engine_steps_out) {
  simrdma::set_nic_engine(engine);

  TestbedConfig cfg;
  cfg.kind = c.kind;
  cfg.num_clients = c.clients;
  cfg.num_client_nodes = 3;
  if (c.plan != nullptr) {
    cfg.faults = c.plan;
    cfg.fault_seed = c.seed;
    // Tight reliability knobs so drops resolve inside the short window and
    // the retransmit/dup/exhaust legs actually fire.
    cfg.rpc.client_timeout = usec(150);
    cfg.rpc.client_timeout_max = usec(600);
    cfg.rpc.time_slice = usec(40);
    cfg.sim.rc_retransmit_timeout_ns = 8000;
    cfg.sim.rc_retry_count = 5;
  }
  Testbed bed(cfg);

  EchoWorkload wl;
  wl.batch = c.batch;
  wl.msg_bytes = c.msg_bytes;
  wl.seed = c.seed;
  wl.warmup = usec(200);
  wl.measure = usec(800);
  const harness::EchoResult res = run_echo(bed, wl);

  Observed o;
  o.events = bed.loop().events_processed();
  o.end_time = bed.loop().now();
  o.ops = res.ops;
  o.pcm = res.server_pcm;
  o.timeouts = res.client_timeouts;
  o.reconnects = res.client_reconnects;
  o.dup_rpcs = res.server_dup_rpcs;
  uint64_t steps = 0;
  for (size_t n = 0; n < bed.cluster().num_nodes(); ++n) {
    const simrdma::NicCounters& nc =
        bed.cluster().node(static_cast<int>(n))->nic().counters();
    o.nic.send_wqes += nc.send_wqes;
    o.nic.inbound_packets += nc.inbound_packets;
    o.nic.qp_cache_hits += nc.qp_cache_hits;
    o.nic.qp_cache_misses += nc.qp_cache_misses;
    o.nic.ud_drops += nc.ud_drops;
    o.nic.rnr_events += nc.rnr_events;
    o.nic.acks_sent += nc.acks_sent;
    o.nic.bytes_tx += nc.bytes_tx;
    o.nic.bytes_rx += nc.bytes_rx;
    o.nic.rc_retransmits += nc.rc_retransmits;
    o.nic.rc_retry_exhausted += nc.rc_retry_exhausted;
    o.nic.rc_dup_requests += nc.rc_dup_requests;
    o.nic.flushed_wrs += nc.flushed_wrs;
    steps += nc.engine_steps;
  }
  if (engine_steps_out != nullptr) {
    *engine_steps_out = steps;
  }
  return o;
}

void expect_engines_agree(const CaseConfig& c) {
  EngineGuard guard;
  uint64_t sm_steps = 0;
  uint64_t coro_steps = 0;
  const Observed sm = run_case(NicEngine::kStateMachine, c, &sm_steps);
  const Observed coro = run_case(NicEngine::kCoroutine, c, &coro_steps);

  EXPECT_EQ(sm.events, coro.events);
  EXPECT_EQ(sm.end_time, coro.end_time);
  EXPECT_EQ(sm.ops, coro.ops);
  EXPECT_TRUE(sm == coro) << "engines diverged beyond events/end_time";
  EXPECT_GT(sm.ops, 0u) << "workload did nothing; the oracle proves nothing";
  EXPECT_GT(sm_steps, 0u);
  EXPECT_GT(coro_steps, 0u);
}

TEST(EngineOracle, ScaleRpcRcWritePath) {
  expect_engines_agree({TransportKind::kScaleRpc, /*clients=*/24, /*batch=*/4,
                        /*msg_bytes=*/32, /*seed=*/1});
}

TEST(EngineOracle, ScaleRpcLargerMessages) {
  expect_engines_agree({TransportKind::kScaleRpc, /*clients=*/12, /*batch=*/8,
                        /*msg_bytes=*/128, /*seed=*/2});
}

TEST(EngineOracle, FasstUdPath) {
  expect_engines_agree({TransportKind::kFasst, /*clients=*/24, /*batch=*/8,
                        /*msg_bytes=*/32, /*seed=*/3});
}

TEST(EngineOracle, RawWriteRcPath) {
  expect_engines_agree({TransportKind::kRawWrite, /*clients=*/16, /*batch=*/2,
                        /*msg_bytes=*/64, /*seed=*/4});
}

TEST(EngineOracle, HerdHybridPath) {
  expect_engines_agree({TransportKind::kHerd, /*clients=*/16, /*batch=*/4,
                        /*msg_bytes=*/32, /*seed=*/5});
}

TEST(EngineOracle, LossyFabricRetransmitAndDedup) {
  fault::FaultPlan plan;
  plan.seed = 31;
  plan.drop(0.02);
  CaseConfig c{TransportKind::kScaleRpc, /*clients=*/8, /*batch=*/4,
               /*msg_bytes=*/32, /*seed=*/6, &plan};

  EngineGuard guard;
  uint64_t sm_steps = 0;
  uint64_t coro_steps = 0;
  const Observed sm = run_case(NicEngine::kStateMachine, c, &sm_steps);
  const Observed coro = run_case(NicEngine::kCoroutine, c, &coro_steps);
  EXPECT_EQ(sm.events, coro.events);
  EXPECT_EQ(sm.end_time, coro.end_time);
  EXPECT_TRUE(sm == coro);
  // The lossy plan must actually exercise the reliability legs, otherwise
  // this case collapses into the lossless ones above.
  EXPECT_GT(sm.nic.rc_retransmits, 0u);
  EXPECT_GT(sm_steps, 0u);
  EXPECT_GT(coro_steps, 0u);
}

TEST(EngineOracle, HeavyLossWatcherBackoff) {
  fault::FaultPlan plan;
  plan.seed = 47;
  plan.drop(0.08);
  CaseConfig c{TransportKind::kScaleRpc, /*clients=*/6, /*batch=*/4,
               /*msg_bytes=*/32, /*seed=*/7, &plan};

  EngineGuard guard;
  const Observed sm = run_case(NicEngine::kStateMachine, c, nullptr);
  const Observed coro = run_case(NicEngine::kCoroutine, c, nullptr);
  EXPECT_EQ(sm.events, coro.events);
  EXPECT_EQ(sm.end_time, coro.end_time);
  EXPECT_TRUE(sm == coro);
  EXPECT_GT(sm.nic.rc_retransmits, 0u);
}

}  // namespace
}  // namespace scalerpc
