// Steady-state hot paths must not touch the heap.
//
// A counting global operator new verifies the allocation-free claims made
// by the flat caches (flat_lru.h), the timing-wheel event loop, the pooled
// coroutine frames, and the pooled packet payload buffers (sim/pool.h):
// after a warmup pass has grown every slab and freelist to its peak size,
// repeating the same workload performs exactly zero heap allocations.
#include <gtest/gtest.h>

#include <cstdlib>
#include <new>

#include "src/metrics/flight.h"
#include "src/metrics/metrics.h"
#include "src/rpc/msg_format.h"
#include "src/sim/event_loop.h"
#include "src/sim/pool.h"
#include "src/sim/task.h"
#include "src/simrdma/cluster.h"
#include "src/simrdma/llc.h"
#include "src/simrdma/nic.h"
#include "src/simrdma/nic_cache.h"
#include "src/simrdma/nic_engine.h"
#include "src/simrdma/node.h"
#include "src/simrdma/verbs.h"

namespace {
uint64_t g_allocations = 0;
}  // namespace

void* operator new(std::size_t n) {
  g_allocations++;
  void* p = std::malloc(n);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace scalerpc::sim {
namespace {

using simrdma::LastLevelCache;
using simrdma::NicCache;
using simrdma::SimParams;

TEST(HotPathAlloc, NicCacheSteadyState) {
  NicCache cache(64);
  auto churn = [&cache] {
    // Hits, misses with eviction, responder touches, and WQE consumes over
    // a working set 4x the capacity.
    for (uint64_t round = 0; round < 200; ++round) {
      for (uint64_t k = 0; k < 256; ++k) {
        cache.access(k);
        cache.touch_insert(1000 + (k & 31));
        if ((k & 7) == 0) {
          cache.consume(k);
        }
      }
    }
  };
  churn();  // warmup (construction already sized everything; this is belt)
  const uint64_t before = g_allocations;
  churn();
  EXPECT_EQ(g_allocations, before);
}

TEST(HotPathAlloc, LlcSteadyState) {
  SimParams p;
  p.llc_bytes = KiB(64);  // 1024 lines
  LastLevelCache llc(p);
  auto churn = [&llc] {
    // CPU reads and DMA writes/reads over 4x the line capacity, forcing
    // constant eviction in both partitions plus DDIO->general promotion.
    for (uint64_t round = 0; round < 50; ++round) {
      for (uint64_t i = 0; i < 4096; ++i) {
        const uint64_t addr = 0x10000 + i * kCacheLineSize;
        llc.cpu_read(addr, 8);
        llc.dma_write(addr + 16, 8);  // partial line
        llc.dma_write(addr, 64);      // full line
        llc.dma_read(addr, 64);
      }
    }
  };
  churn();
  const uint64_t before = g_allocations;
  churn();
  EXPECT_EQ(g_allocations, before);
}

namespace {
struct TickCtx {
  EventLoop* loop;
  int remaining;
};
void tick(void* arg) {
  auto* ctx = static_cast<TickCtx*>(arg);
  if (ctx->remaining-- > 0) {
    ctx->loop->call_in(3, tick, ctx);
  }
}
}  // namespace

TEST(HotPathAlloc, EventLoopSteadyState) {
  EventLoop loop;
  // 64 concurrent self-rescheduling chains keep the wheel populated; the
  // warmup run grows the item slab to peak occupancy.
  auto run_chains = [&loop](int steps) {
    TickCtx ctxs[64];
    for (auto& c : ctxs) {
      c = TickCtx{&loop, steps};
      loop.call_in(1, tick, &c);
    }
    loop.run();
  };
  run_chains(1000);
  const uint64_t before = g_allocations;
  run_chains(10000);
  EXPECT_EQ(g_allocations, before);
}

namespace {
Task<void> delay_chain(EventLoop& loop, int n) {
  for (int i = 0; i < n; ++i) {
    co_await loop.delay(2);
  }
}
}  // namespace

TEST(HotPathAlloc, CoroutineFramesAreRecycled) {
  EventLoop loop;
  // Each spawn allocates a frame; completion returns it to the BytePool, so
  // after the first batch every further spawn of the same coroutine reuses
  // a pooled frame.
  for (int i = 0; i < 32; ++i) {
    spawn(loop, delay_chain(loop, 10));
  }
  loop.run();
  const uint64_t before = g_allocations;
  for (int i = 0; i < 32; ++i) {
    spawn(loop, delay_chain(loop, 100));
  }
  loop.run();
  EXPECT_EQ(g_allocations, before);
}

TEST(HotPathAlloc, PooledBytesAreRecycled) {
  {
    PooledBytes warm;
    warm.resize(1500);
  }
  const uint64_t before = g_allocations;
  for (int i = 0; i < 1000; ++i) {
    PooledBytes b;
    b.resize(1500);  // same size class as the warmup buffer
    b.data()[0] = 1;
  }
  EXPECT_EQ(g_allocations, before);
}

TEST(HotPathAlloc, PoolAllocatorVectorsAreRecycled) {
  // rpc::Bytes (request/response buffers, codec writers) draws from the
  // same freelists via PoolAllocator; per-op vector churn of a warmed size
  // class must not reach the heap.
  { rpc::Bytes warm(512, 0); }
  const uint64_t before = g_allocations;
  for (int i = 0; i < 1000; ++i) {
    rpc::Bytes b(512, 0xAB);
    b[0] = static_cast<uint8_t>(i);
  }
  EXPECT_EQ(g_allocations, before);
}

TEST(HotPathAlloc, QueuePairRecvRingSteadyState) {
  // The recv descriptor ring (replacing std::deque) grows to peak depth
  // once, then recycles in place. Ring push/pop never touch node_, so a
  // detached QueuePair exercises it directly.
  simrdma::QueuePair qp(nullptr, simrdma::QpType::kRC, 1, nullptr, nullptr);
  auto churn = [&qp] {
    for (int round = 0; round < 100; ++round) {
      for (uint64_t i = 0; i < 64; ++i) {
        qp.post_recv_immediate(simrdma::RecvWr{i, 0x1000 + i * 64, 64});
      }
      while (qp.has_recv()) {
        (void)qp.pop_recv();
      }
    }
  };
  churn();
  const uint64_t before = g_allocations;
  churn();
  EXPECT_EQ(g_allocations, before);
}

namespace {
struct BurstCtx {
  EventLoop* loop;
  int rounds;
  int fanout;
};
void noop(void*) {}
void burst(void* arg) {
  auto* ctx = static_cast<BurstCtx*>(arg);
  if (ctx->rounds-- > 0) {
    // Re-seed a whole same-timestamp batch: all `fanout` events land on one
    // level-0 slot and dispatch through the batch fast path.
    ctx->loop->call_in(5, burst, ctx);
    for (int i = 1; i < ctx->fanout; ++i) {
      ctx->loop->call_in(5, noop, ctx);
    }
  }
}
}  // namespace

TEST(HotPathAlloc, BatchedSameTimestampDispatchSteadyState) {
  EventLoop loop;
  auto run_bursts = [&loop](int rounds) {
    BurstCtx ctx{&loop, rounds, 64};
    loop.call_in(1, burst, &ctx);
    loop.run();
  };
  run_bursts(100);
  const uint64_t before = g_allocations;
  run_bursts(1000);
  EXPECT_EQ(g_allocations, before);
}

namespace {
// Drives the full NIC data plane — send pipeline, TX port, fabric hop,
// inbound pipeline, RC ack leg — so the engine's per-message contexts
// (pooled SendSm/RecvSm under the state-machine engine, pooled coroutine
// frames under the reference engine) all cycle through their freelists.
void churn_rc_writes(simrdma::Cluster& cluster, simrdma::QueuePair* qp,
                     uint64_t src, uint64_t dst, uint32_t rkey, int rounds) {
  auto body = [&](int n) -> Task<void> {
    for (int i = 0; i < n; ++i) {
      simrdma::SendWr wr;
      wr.wr_id = static_cast<uint64_t>(i);
      wr.opcode = simrdma::Opcode::kWrite;
      wr.local_addr = src;
      wr.length = 64;
      wr.remote_addr = dst;
      wr.rkey = rkey;
      co_await qp->post_send(wr);
      const simrdma::Completion c = co_await qp->send_cq()->next();
      SCALERPC_CHECK(c.status == simrdma::WcStatus::kSuccess);
    }
  };
  auto t = body(rounds);
  run_blocking(cluster.loop(), std::move(t));
}

void expect_steady_state_alloc_free(simrdma::NicEngine engine) {
  set_nic_engine(engine);
  simrdma::Cluster cluster{simrdma::SimParams{}};
  simrdma::Node* a = cluster.add_node("a");
  simrdma::Node* b = cluster.add_node("b");
  simrdma::CompletionQueue* cq_a = a->create_cq();
  simrdma::CompletionQueue* cq_b = b->create_cq();
  simrdma::QueuePair* qa = a->create_qp(simrdma::QpType::kRC, cq_a, cq_a);
  simrdma::QueuePair* qb = b->create_qp(simrdma::QpType::kRC, cq_b, cq_b);
  cluster.connect(qa, qb);
  const uint64_t src = a->alloc(64);
  const uint64_t dst = b->alloc(64);
  simrdma::MemoryRegion* mr = b->register_mr(dst, 64);

  churn_rc_writes(cluster, qa, src, dst, mr->rkey, 64);  // warm the pools
  const uint64_t before = g_allocations;
  churn_rc_writes(cluster, qa, src, dst, mr->rkey, 512);
  EXPECT_EQ(g_allocations, before);
  set_nic_engine(simrdma::NicEngine::kStateMachine);
}
}  // namespace

TEST(HotPathAlloc, NicStateMachineContextsAreRecycled) {
  expect_steady_state_alloc_free(simrdma::NicEngine::kStateMachine);
}

TEST(HotPathAlloc, NicCoroutineEngineSteadyState) {
  expect_steady_state_alloc_free(simrdma::NicEngine::kCoroutine);
}

TEST(HotPathAlloc, CtrlProcessorSteadyState) {
  // The modeled control plane sits on every churn-scenario connect; its
  // serial-FIFO op() is one pooled coroutine frame plus one timer, so a
  // warmed processor admits storms of ops without touching the heap.
  EventLoop loop;
  simrdma::CtrlProcessor ctrl(loop, /*slots=*/64);
  auto churn = [&loop, &ctrl](int rounds) {
    for (int r = 0; r < rounds; ++r) {
      for (int i = 0; i < 64; ++i) {
        spawn(loop, ctrl.op(50));
      }
      loop.run();
    }
  };
  churn(2);
  const uint64_t before = g_allocations;
  churn(8);
  EXPECT_EQ(g_allocations, before);
}

TEST(HotPathAlloc, MetricsOffHotPathIsAllocationFree) {
  // The per-QP metrics hooks compile into the NIC data plane; with no
  // thread-local session installed (the default, and the state every
  // figure bench runs in without --metrics) each hook must be a predicted
  // branch and nothing else.
  ASSERT_EQ(metrics::registry(), nullptr);
  ASSERT_EQ(metrics::flight(), nullptr);
  expect_steady_state_alloc_free(simrdma::NicEngine::kStateMachine);
}

TEST(HotPathAlloc, MetricsOnSteadyStateIsAllocationFree) {
  // With a live session the warmup pass grows the registry's dense slots
  // and the QP slot cache; after that, counter adds and flight notes are
  // array writes — the "always-cheap" claim that lets fault benches keep
  // the recorder on for every run.
  metrics::Registry reg;
  metrics::FlightRecorder rec(256);
  metrics::ScopedSession session(metrics::Session{&reg, &rec});
  expect_steady_state_alloc_free(simrdma::NicEngine::kStateMachine);
}

}  // namespace
}  // namespace scalerpc::sim
