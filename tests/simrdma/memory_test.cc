#include "src/simrdma/memory.h"

#include <gtest/gtest.h>

#include <array>

namespace scalerpc::simrdma {
namespace {

TEST(HostMemory, StoreLoadRoundTrip) {
  HostMemory mem(4096);
  std::array<uint8_t, 4> in = {1, 2, 3, 4};
  mem.store(kMemoryBase + 100, in);
  std::array<uint8_t, 4> out = {};
  mem.load(kMemoryBase + 100, out);
  EXPECT_EQ(in, out);
}

TEST(HostMemory, PodHelpers) {
  HostMemory mem(4096);
  mem.store_pod<uint64_t>(kMemoryBase + 8, 0xdeadbeefULL);
  EXPECT_EQ(mem.load_pod<uint64_t>(kMemoryBase + 8), 0xdeadbeefULL);
}

TEST(HostMemory, ContainsBoundaries) {
  HostMemory mem(4096);
  EXPECT_TRUE(mem.contains(kMemoryBase, 4096));
  EXPECT_FALSE(mem.contains(kMemoryBase, 4097));
  EXPECT_FALSE(mem.contains(kMemoryBase - 1, 1));
  EXPECT_TRUE(mem.contains(kMemoryBase + 4095, 1));
  EXPECT_FALSE(mem.contains(kMemoryBase + 4096, 1));
}

TEST(HostMemory, DmaStoreFiresOverlappingWatcher) {
  HostMemory mem(4096);
  int fired = 0;
  mem.add_watcher(kMemoryBase + 100, 50, [&] { fired++; });
  std::array<uint8_t, 8> bytes = {};
  mem.dma_store(kMemoryBase + 120, bytes);  // inside
  EXPECT_EQ(fired, 1);
  mem.dma_store(kMemoryBase + 200, bytes);  // outside
  EXPECT_EQ(fired, 1);
  mem.dma_store(kMemoryBase + 145, bytes);  // straddles the end
  EXPECT_EQ(fired, 2);
}

TEST(HostMemory, PlainStoreDoesNotFireWatchers) {
  HostMemory mem(4096);
  int fired = 0;
  mem.add_watcher(kMemoryBase, 4096, [&] { fired++; });
  std::array<uint8_t, 8> bytes = {};
  mem.store(kMemoryBase + 10, bytes);
  EXPECT_EQ(fired, 0);
}

TEST(HostMemory, RemoveWatcherStopsDelivery) {
  HostMemory mem(4096);
  int fired = 0;
  const uint64_t id = mem.add_watcher(kMemoryBase, 100, [&] { fired++; });
  std::array<uint8_t, 4> bytes = {};
  mem.dma_store(kMemoryBase, bytes);
  mem.remove_watcher(id);
  mem.dma_store(kMemoryBase, bytes);
  EXPECT_EQ(fired, 1);
}

TEST(HostMemory, MultipleWatchersAllFire) {
  HostMemory mem(4096);
  int a = 0;
  int b = 0;
  mem.add_watcher(kMemoryBase, 100, [&] { a++; });
  mem.add_watcher(kMemoryBase + 50, 100, [&] { b++; });
  std::array<uint8_t, 4> bytes = {};
  mem.dma_store(kMemoryBase + 60, bytes);
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 1);
}

TEST(MemoryRegion, Covers) {
  MemoryRegion mr;
  mr.addr = 1000;
  mr.length = 100;
  EXPECT_TRUE(mr.covers(1000, 100));
  EXPECT_TRUE(mr.covers(1050, 50));
  EXPECT_FALSE(mr.covers(1050, 51));
  EXPECT_FALSE(mr.covers(999, 1));
}

TEST(HostMemoryDeathTest, OutOfRangeAccessAborts) {
  HostMemory mem(128);
  std::array<uint8_t, 4> bytes = {};
  EXPECT_DEATH(mem.store(kMemoryBase + 126, bytes), "CHECK failed");
}

}  // namespace
}  // namespace scalerpc::simrdma
