#include "src/simrdma/llc.h"

#include <gtest/gtest.h>

namespace scalerpc::simrdma {
namespace {

SimParams small_params() {
  SimParams p;
  p.llc_bytes = KiB(64);  // 1024 lines, 102 DDIO lines
  return p;
}

TEST(Llc, CapacityDerivation) {
  SimParams p = small_params();
  LastLevelCache llc(p);
  EXPECT_EQ(llc.capacity_lines(), 1024u);
  EXPECT_EQ(llc.ddio_capacity_lines(), 102u);
  EXPECT_EQ(llc.resident_lines(), 0u);
}

TEST(Llc, CpuReadMissThenHit) {
  SimParams p = small_params();
  LastLevelCache llc(p);
  EXPECT_EQ(llc.cpu_read(0x1000, 8), p.llc_miss_ns);
  EXPECT_EQ(llc.pcm().l3_misses, 1u);
  EXPECT_EQ(llc.cpu_read(0x1000, 8), p.llc_hit_ns);
  EXPECT_EQ(llc.pcm().l3_hits, 1u);
  EXPECT_EQ(llc.resident_lines(), 1u);
}

TEST(Llc, MultiLineAccessTouchesEachLine) {
  SimParams p = small_params();
  LastLevelCache llc(p);
  // 130 bytes starting mid-line -> 3 lines.
  llc.cpu_read(0x1020, 130);
  EXPECT_EQ(llc.pcm().l3_misses, 3u);
  EXPECT_EQ(llc.resident_lines(), 3u);
}

TEST(Llc, DmaWriteHitIsWriteUpdate) {
  SimParams p = small_params();
  LastLevelCache llc(p);
  llc.cpu_read(0x2000, 64);  // bring line in
  const Nanos cost = llc.dma_write(0x2000, 64);
  EXPECT_EQ(cost, p.dma_llc_hit_ns);
  EXPECT_EQ(llc.pcm().pcie_itom, 0u);  // no allocation
  EXPECT_EQ(llc.pcm().itom, 1u);       // full-line write
}

TEST(Llc, DmaWriteMissAllocatesInDdio) {
  SimParams p = small_params();
  LastLevelCache llc(p);
  const Nanos cost = llc.dma_write(0x3000, 64);
  EXPECT_EQ(cost, p.dma_llc_miss_ns);
  EXPECT_EQ(llc.pcm().pcie_itom, 1u);
  EXPECT_EQ(llc.ddio_lines(), 1u);
}

TEST(Llc, PartialLineDmaWriteCountsRfo) {
  SimParams p = small_params();
  LastLevelCache llc(p);
  llc.dma_write(0x3000, 32);
  EXPECT_EQ(llc.pcm().rfo, 1u);
  EXPECT_EQ(llc.pcm().itom, 0u);
}

TEST(Llc, DdioPartitionIsCapped) {
  SimParams p = small_params();
  LastLevelCache llc(p);
  // Write-allocate far more lines than the DDIO partition holds.
  for (uint64_t i = 0; i < 500; ++i) {
    llc.dma_write(0x10000 + i * kCacheLineSize, 64);
  }
  EXPECT_LE(llc.ddio_lines(), llc.ddio_capacity_lines());
  EXPECT_EQ(llc.pcm().pcie_itom, 500u);  // every one was an allocation
}

TEST(Llc, CpuTouchPromotesDdioLineOutOfPartition) {
  SimParams p = small_params();
  LastLevelCache llc(p);
  llc.dma_write(0x5000, 64);
  EXPECT_EQ(llc.ddio_lines(), 1u);
  llc.cpu_read(0x5000, 8);  // server polls the message: promote
  EXPECT_EQ(llc.ddio_lines(), 0u);
  EXPECT_EQ(llc.resident_lines(), 1u);
  // A re-write of the same line is now a cheap update even though the DDIO
  // partition has been churned in between.
  for (uint64_t i = 0; i < 300; ++i) {
    llc.dma_write(0x20000 + i * kCacheLineSize, 64);
  }
  EXPECT_EQ(llc.dma_write(0x5000, 64), p.dma_llc_hit_ns);
}

TEST(Llc, SmallRecycledPoolStaysResidentLargePoolThrashes) {
  // The virtualized-mapping effect in miniature: a pool smaller than the
  // DDIO partition gets write-updates on the second pass; a pool larger
  // than the LLC allocates every time.
  SimParams p = small_params();
  {
    LastLevelCache llc(p);
    const uint64_t pool_lines = 50;  // < 102 DDIO lines
    for (int pass = 0; pass < 2; ++pass) {
      for (uint64_t i = 0; i < pool_lines; ++i) {
        llc.dma_write(i * kCacheLineSize, 64);
      }
    }
    EXPECT_EQ(llc.pcm().pcie_itom, pool_lines);  // only the first pass allocated
  }
  {
    LastLevelCache llc(p);
    const uint64_t pool_lines = 4096;  // 4x the LLC
    for (int pass = 0; pass < 2; ++pass) {
      for (uint64_t i = 0; i < pool_lines; ++i) {
        llc.dma_write(i * kCacheLineSize, 64);
      }
    }
    EXPECT_EQ(llc.pcm().pcie_itom, 2 * pool_lines);  // both passes allocated
  }
}

TEST(Llc, GeneralPartitionEvictsLruUnderPressure) {
  SimParams p = small_params();
  LastLevelCache llc(p);
  for (uint64_t i = 0; i < 1024; ++i) {
    llc.cpu_read(i * kCacheLineSize, 8);
  }
  EXPECT_EQ(llc.resident_lines(), 1024u);
  // One more read evicts line 0 (the LRU).
  llc.cpu_read(2048 * kCacheLineSize, 8);
  EXPECT_EQ(llc.resident_lines(), 1024u);
  EXPECT_EQ(llc.cpu_read(0, 8), p.llc_miss_ns);
}

TEST(Llc, DmaReadNeverAllocates) {
  SimParams p = small_params();
  LastLevelCache llc(p);
  EXPECT_EQ(llc.dma_read(0x9000, 64), p.dma_llc_miss_ns);
  EXPECT_EQ(llc.resident_lines(), 0u);
  EXPECT_EQ(llc.pcm().pcie_rd_cur, 1u);
  llc.cpu_read(0x9000, 8);
  EXPECT_EQ(llc.dma_read(0x9000, 64), p.dma_llc_hit_ns);
  EXPECT_EQ(llc.pcm().pcie_rd_cur, 2u);
}

TEST(Llc, ClearDropsResidency) {
  SimParams p = small_params();
  LastLevelCache llc(p);
  llc.cpu_read(0x100, 64);
  llc.dma_write(0x200, 64);
  llc.clear();
  EXPECT_EQ(llc.resident_lines(), 0u);
  EXPECT_EQ(llc.ddio_lines(), 0u);
}

TEST(Llc, ZeroLengthAccessIsFree) {
  SimParams p = small_params();
  LastLevelCache llc(p);
  EXPECT_EQ(llc.cpu_read(0x100, 0), 0);
  EXPECT_EQ(llc.dma_write(0x100, 0), 0);
  EXPECT_EQ(llc.resident_lines(), 0u);
}

TEST(Llc, PromotionFreesDdioQuotaAtFullPartition) {
  // Fill the DDIO partition to its cap, promote one line via a CPU touch,
  // and check the freed quota lets the next DMA allocation proceed without
  // evicting any DDIO resident.
  SimParams p = small_params();
  LastLevelCache llc(p);
  const uint64_t cap = llc.ddio_capacity_lines();
  for (uint64_t i = 0; i < cap; ++i) {
    llc.dma_write(0x40000 + i * kCacheLineSize, 64);
  }
  EXPECT_EQ(llc.ddio_lines(), cap);
  llc.cpu_read(0x40000, 8);  // promote line 0 out of DDIO
  EXPECT_EQ(llc.ddio_lines(), cap - 1);
  EXPECT_EQ(llc.resident_lines(), cap);  // still resident, just re-homed
  llc.dma_write(0x80000, 64);  // allocates into the freed quota
  EXPECT_EQ(llc.ddio_lines(), cap);
  // No DDIO line was evicted: every original line except the promoted one
  // is still a cheap write-update.
  for (uint64_t i = 1; i < cap; ++i) {
    EXPECT_EQ(llc.dma_write(0x40000 + i * kCacheLineSize, 64), p.dma_llc_hit_ns);
  }
}

TEST(Llc, PromotedLineCompetesInGeneralPartition) {
  // After promotion the line lives under general-partition replacement: a
  // CPU working-set sweep bigger than the LLC must evict it.
  SimParams p = small_params();
  LastLevelCache llc(p);
  llc.dma_write(0x5000, 64);
  llc.cpu_read(0x5000, 8);  // promote
  for (uint64_t i = 0; i < 2048; ++i) {  // 2x capacity sweep
    llc.cpu_read(0x100000 + i * kCacheLineSize, 8);
  }
  EXPECT_EQ(llc.cpu_read(0x5000, 8), p.llc_miss_ns);  // it was evicted
}

}  // namespace
}  // namespace scalerpc::simrdma
