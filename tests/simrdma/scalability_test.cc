// Shape-level validation of the paper's motivation experiments (Fig. 1b /
// 3a / 3b): outbound RC write collapses as connections grow (NIC cache
// thrash), inbound RC write stays flat for small pools, and inbound
// collapses once the touched pool outgrows the LLC.
#include <gtest/gtest.h>

#include <vector>

#include "src/common/stats.h"
#include "src/simrdma/cluster.h"
#include "src/simrdma/nic.h"
#include "src/simrdma/node.h"

namespace scalerpc::simrdma {
namespace {

constexpr int kServerWorkers = 10;
constexpr uint32_t kMsgBytes = 32;
constexpr int kWindow = 16;

struct OutboundResult {
  double mops;
  double pcie_reads_per_op;
};

// A server-side sender pipelining `kWindow` writes round-robin over its
// share of client connections.
sim::Task<void> outbound_worker(sim::EventLoop& loop, CompletionQueue* cq,
                                std::vector<QueuePair*> qps,
                                std::vector<SendWr> wrs, uint64_t* ops,
                                const bool* done) {
  size_t next = 0;
  int outstanding = 0;
  while (!*done) {
    while (outstanding < kWindow) {
      co_await qps[next]->post_send(wrs[next]);
      next = (next + 1) % qps.size();
      outstanding++;
    }
    co_await cq->next();
    outstanding--;
    (*ops)++;
  }
  (void)loop;
}

OutboundResult run_outbound(int num_clients) {
  Cluster cluster;
  Node* server = cluster.add_node("server");
  std::vector<Node*> cnodes;
  for (int i = 0; i < 8; ++i) {
    cnodes.push_back(cluster.add_node("client" + std::to_string(i)));
  }

  const uint64_t src = server->alloc(kMsgBytes);
  std::vector<std::vector<QueuePair*>> worker_qps(kServerWorkers);
  std::vector<std::vector<SendWr>> worker_wrs(kServerWorkers);
  std::vector<CompletionQueue*> worker_cqs;
  for (int w = 0; w < kServerWorkers; ++w) {
    worker_cqs.push_back(server->create_cq());
  }

  for (int c = 0; c < num_clients; ++c) {
    Node* cn = cnodes[static_cast<size_t>(c) % cnodes.size()];
    const int w = c % kServerWorkers;
    CompletionQueue* ccq = cn->create_cq();
    QueuePair* sqp = server->create_qp(QpType::kRC, worker_cqs[static_cast<size_t>(w)],
                                       worker_cqs[static_cast<size_t>(w)]);
    QueuePair* cqp = cn->create_qp(QpType::kRC, ccq, ccq);
    cluster.connect(sqp, cqp);
    const uint64_t dst = cn->alloc(kMsgBytes);
    MemoryRegion* mr = cn->register_mr(dst, kMsgBytes);
    SendWr wr;
    wr.opcode = Opcode::kWrite;
    wr.local_addr = src;
    wr.length = kMsgBytes;
    wr.remote_addr = dst;
    wr.rkey = mr->rkey;
    worker_qps[static_cast<size_t>(w)].push_back(sqp);
    worker_wrs[static_cast<size_t>(w)].push_back(wr);
  }

  uint64_t ops = 0;
  bool done = false;
  for (int w = 0; w < kServerWorkers; ++w) {
    sim::spawn(cluster.loop(),
               outbound_worker(cluster.loop(), worker_cqs[static_cast<size_t>(w)],
                               worker_qps[static_cast<size_t>(w)],
                               worker_wrs[static_cast<size_t>(w)], &ops, &done));
  }

  cluster.loop().run_for(usec(300));  // warmup
  const uint64_t ops0 = ops;
  const PcmCounters pcm0 = server->pcm_total();
  const Nanos t0 = cluster.loop().now();
  cluster.loop().run_for(msec(2));
  const uint64_t delta_ops = ops - ops0;
  const PcmCounters pcm = server->pcm_total() - pcm0;
  const Nanos elapsed = cluster.loop().now() - t0;
  done = true;
  return OutboundResult{
      mops_per_sec(delta_ops, static_cast<uint64_t>(elapsed)),
      delta_ops == 0 ? 0.0
                     : static_cast<double>(pcm.pcie_rd_cur) / static_cast<double>(delta_ops),
  };
}

// Client-side writer pipelining writes into its server-side block ring.
// Successive messages to a block land at successive offsets (log-style), so
// the reuse footprint is the full block, as in the paper's setup.
sim::Task<void> inbound_client(QueuePair* qp, uint64_t src, uint32_t rkey,
                               std::vector<uint64_t> block_bases, uint32_t block_bytes,
                               CompletionQueue* cq, uint64_t* ops, const bool* done) {
  size_t next = 0;
  uint64_t iter = 0;
  int outstanding = 0;
  const int window = 8;
  while (!*done) {
    while (outstanding < window) {
      SendWr wr;
      wr.opcode = Opcode::kWrite;
      wr.local_addr = src;
      wr.length = kMsgBytes;
      wr.remote_addr = block_bases[next] + (iter * kMsgBytes) % block_bytes;
      wr.rkey = rkey;
      co_await qp->post_send(wr);
      next = (next + 1) % block_bases.size();
      if (next == 0) {
        iter++;
      }
      outstanding++;
    }
    co_await cq->next();
    outstanding--;
    (*ops)++;
  }
}

// Server-side poller that consumes messages (promoting their lines into the
// general LLC partition, as a polling RPC server does).
sim::Task<void> inbound_poller(Node* server, uint64_t pool_base, uint64_t pool_len,
                               const bool* done) {
  sim::Notification note(server->loop());
  server->memory().add_watcher(pool_base, pool_len, [&note] { note.notify(); });
  const uint64_t lines = pool_len / kCacheLineSize;
  uint64_t cursor = 0;
  while (!*done) {
    co_await note.wait();
    // Touch a sweep of recently written lines (cheap scan emulation).
    for (int i = 0; i < 32 && cursor < lines; ++i, ++cursor) {
      co_await server->loop().delay(
          server->read_cost(pool_base + (cursor % lines) * kCacheLineSize, 8));
    }
    if (cursor >= lines) {
      cursor = 0;
    }
  }
}

double run_inbound(int num_clients, uint32_t block_bytes, int blocks_per_client,
                   double* l3_miss_rate = nullptr) {
  Cluster cluster;
  Node* server = cluster.add_node("server");
  std::vector<Node*> cnodes;
  for (int i = 0; i < 8; ++i) {
    cnodes.push_back(cluster.add_node("client" + std::to_string(i)));
  }

  const uint64_t pool_len =
      static_cast<uint64_t>(num_clients) * blocks_per_client * block_bytes;
  const uint64_t pool = server->alloc(pool_len, 4096);
  MemoryRegion* mr = server->register_mr(pool, pool_len);

  uint64_t ops = 0;
  bool done = false;
  for (int c = 0; c < num_clients; ++c) {
    Node* cn = cnodes[static_cast<size_t>(c) % cnodes.size()];
    CompletionQueue* scq = server->create_cq();
    CompletionQueue* ccq = cn->create_cq();
    QueuePair* sqp = server->create_qp(QpType::kRC, scq, scq);
    QueuePair* cqp = cn->create_qp(QpType::kRC, ccq, ccq);
    cluster.connect(sqp, cqp);
    const uint64_t src = cn->alloc(kMsgBytes);
    std::vector<uint64_t> bases;
    for (int b = 0; b < blocks_per_client; ++b) {
      bases.push_back(pool + (static_cast<uint64_t>(c) * blocks_per_client +
                              static_cast<uint64_t>(b)) *
                                 block_bytes);
    }
    sim::spawn(cluster.loop(), inbound_client(cqp, src, mr->rkey, std::move(bases),
                                              block_bytes, ccq, &ops, &done));
  }
  sim::spawn(cluster.loop(), inbound_poller(server, pool, pool_len, &done));

  cluster.loop().run_for(usec(300));
  const uint64_t ops0 = ops;
  const PcmCounters pcm0 = server->pcm_total();
  const Nanos t0 = cluster.loop().now();
  cluster.loop().run_for(msec(2));
  const uint64_t delta_ops = ops - ops0;
  const PcmCounters pcm = server->pcm_total() - pcm0;
  done = true;
  if (l3_miss_rate != nullptr) {
    *l3_miss_rate = pcm.l3_miss_rate();
  }
  return mops_per_sec(delta_ops, static_cast<uint64_t>(cluster.loop().now() - t0));
}

TEST(RawVerbScalability, OutboundWriteCollapsesWithManyConnections) {
  const OutboundResult few = run_outbound(40);
  const OutboundResult many = run_outbound(400);
  // Paper Fig 1b: ~20 Mops at 10-40 clients down to ~2-4 Mops at 400+.
  EXPECT_GT(few.mops, 8.0) << "peak outbound should be in the tens of Mops";
  EXPECT_GT(few.mops, 2.0 * many.mops)
      << "few=" << few.mops << " many=" << many.mops;
}

TEST(RawVerbScalability, OutboundThrashExplodesPcieReadRate) {
  const OutboundResult few = run_outbound(40);
  const OutboundResult many = run_outbound(400);
  // Fig 3a: past the knee, PCIe reads per op jump (QP state + WQE refetch).
  EXPECT_GT(many.pcie_reads_per_op, few.pcie_reads_per_op + 1.0)
      << "few=" << few.pcie_reads_per_op << " many=" << many.pcie_reads_per_op;
}

TEST(RawVerbScalability, InboundWriteStaysFlat) {
  const double few = run_inbound(50, 64, 4);
  const double many = run_inbound(400, 64, 4);
  // Paper Fig 1b: inbound write throughput unaffected by client count.
  EXPECT_GT(few, 15.0);
  EXPECT_GT(many, 0.7 * few) << "few=" << few << " many=" << many;
}

TEST(RawVerbScalability, InboundCollapsesOnceFootprintExceedsLlc) {
  // Fig 3b: 400 clients x 20 blocks; beyond 2KB blocks the footprint
  // (400*20*block) no longer fits and throughput collapses while the L3
  // miss rate climbs.
  double miss_small = 0.0;
  double miss_large = 0.0;
  const double small_blocks = run_inbound(400, 256, 20, &miss_small);
  const double large_blocks = run_inbound(400, 8192, 20, &miss_large);
  EXPECT_GT(small_blocks, 1.7 * large_blocks)
      << "small=" << small_blocks << " large=" << large_blocks;
  EXPECT_GT(miss_large, miss_small);
}

}  // namespace
}  // namespace scalerpc::simrdma
