#include "src/simrdma/nic_cache.h"

#include <gtest/gtest.h>

namespace scalerpc::simrdma {
namespace {

TEST(NicCache, MissThenHit) {
  NicCache cache(4);
  EXPECT_FALSE(cache.access(1));
  EXPECT_TRUE(cache.access(1));
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(NicCache, EvictsLeastRecentlyUsed) {
  NicCache cache(3);
  cache.access(1);
  cache.access(2);
  cache.access(3);
  cache.access(1);  // 2 is now LRU
  cache.access(4);  // evicts 2
  EXPECT_TRUE(cache.contains(1));
  EXPECT_FALSE(cache.contains(2));
  EXPECT_TRUE(cache.contains(3));
  EXPECT_TRUE(cache.contains(4));
  EXPECT_EQ(cache.evictions(), 1u);
}

TEST(NicCache, WorkingSetWithinCapacityAlwaysHitsAfterWarmup) {
  NicCache cache(64);
  for (int round = 0; round < 3; ++round) {
    for (uint64_t k = 0; k < 64; ++k) {
      cache.access(k);
    }
  }
  EXPECT_EQ(cache.misses(), 64u);
  EXPECT_EQ(cache.hits(), 128u);
}

TEST(NicCache, WorkingSetBeyondCapacityThrashesUnderRoundRobin) {
  // Round-robin over capacity+1 keys defeats LRU completely: every access
  // misses. This is exactly the paper's QP-state thrash pattern.
  NicCache cache(64);
  for (int round = 0; round < 3; ++round) {
    for (uint64_t k = 0; k < 65; ++k) {
      cache.access(k);
    }
  }
  EXPECT_EQ(cache.hits(), 0u);
}

TEST(NicCache, InvalidateRemovesEntry) {
  NicCache cache(4);
  cache.access(7);
  cache.invalidate(7);
  EXPECT_FALSE(cache.contains(7));
  EXPECT_EQ(cache.size(), 0u);
  cache.invalidate(99);  // no-op
}

TEST(NicCache, ClearResetsContentsButNotCounters) {
  NicCache cache(4);
  cache.access(1);
  cache.access(1);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.hits(), 1u);
}

TEST(NicCache, TouchInsertRefreshesRecencyAndEvictsLru) {
  NicCache cache(3);
  cache.access(1);
  cache.access(2);
  cache.access(3);
  // Responder touch of 1 makes 2 the LRU; a touch_insert of a new key must
  // evict 2, exactly as a charged access would.
  EXPECT_TRUE(cache.touch_insert(1));
  EXPECT_FALSE(cache.touch_insert(4));
  EXPECT_TRUE(cache.contains(1));
  EXPECT_FALSE(cache.contains(2));
  EXPECT_TRUE(cache.contains(3));
  EXPECT_TRUE(cache.contains(4));
  EXPECT_EQ(cache.evictions(), 1u);
}

TEST(NicCache, TouchInsertDoesNotChargeHitOrMiss) {
  NicCache cache(2);
  cache.touch_insert(1);  // miss-shaped, but uncharged
  cache.touch_insert(1);  // hit-shaped, but uncharged
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(NicCache, CapacityOneEvictsOnEveryNewKey) {
  NicCache cache(1);
  EXPECT_FALSE(cache.access(1));
  EXPECT_TRUE(cache.access(1));
  EXPECT_FALSE(cache.access(2));  // evicts 1
  EXPECT_FALSE(cache.contains(1));
  EXPECT_TRUE(cache.contains(2));
  EXPECT_FALSE(cache.touch_insert(3));  // evicts 2, still uncharged
  EXPECT_FALSE(cache.contains(2));
  EXPECT_TRUE(cache.contains(3));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.evictions(), 2u);
}

TEST(NicCache, ConsumeRemovesResidentEntry) {
  NicCache cache(4);
  cache.touch_insert(10);
  EXPECT_TRUE(cache.consume(10));   // resident: executed from cache
  EXPECT_FALSE(cache.contains(10));
  EXPECT_FALSE(cache.consume(10));  // gone: refetch, counted as miss
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.size(), 0u);
}

}  // namespace
}  // namespace scalerpc::simrdma
