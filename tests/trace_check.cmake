# ctest helper guarding the observability invariants on a real figure bench:
#   1. stdout with --trace/--timeline on is byte-equal to a plain run
#      (tracing is purely observational; it cannot shift simulated timing);
#   2. the trace and timeline files are byte-identical for --threads=1 and
#      --threads=N (per-slot buffers merged in submission order);
#   3. the trace validates as Perfetto-loadable JSON (tools/trace2perfetto.py),
#      when a python interpreter was found at configure time.
#
# Usage: cmake -DBENCH=<path> -DTHREADS=<n> -DWORKDIR=<dir>
#              [-DPYTHON=<python3> -DTOOL=<trace2perfetto.py>]
#              -P trace_check.cmake
if(NOT DEFINED BENCH OR NOT DEFINED THREADS OR NOT DEFINED WORKDIR)
  message(FATAL_ERROR "trace_check.cmake needs -DBENCH, -DTHREADS, -DWORKDIR")
endif()

function(run_bench out_stdout trace timeline threads)
  set(extra "")
  if(NOT trace STREQUAL "")
    list(APPEND extra --trace=${trace} --timeline=${timeline})
  endif()
  execute_process(
    COMMAND ${BENCH} --quick --threads=${threads} ${extra}
    OUTPUT_FILE ${out_stdout}
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "${BENCH} --threads=${threads} ${extra} exited with ${rc}")
  endif()
endfunction()

function(must_match a b what)
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files ${a} ${b}
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "${what}: ${a} differs from ${b}")
  endif()
endfunction()

set(W ${WORKDIR}/trace_check)
file(MAKE_DIRECTORY ${W})

run_bench(${W}/plain.out "" "" 1)
run_bench(${W}/traced1.out ${W}/trace1.json ${W}/timeline1.json 1)
run_bench(${W}/tracedN.out ${W}/traceN.json ${W}/timelineN.json ${THREADS})

must_match(${W}/plain.out ${W}/traced1.out "stdout changed by --trace/--timeline")
must_match(${W}/traced1.out ${W}/tracedN.out "stdout differs across --threads")
must_match(${W}/trace1.json ${W}/traceN.json "trace differs across --threads")
must_match(${W}/timeline1.json ${W}/timelineN.json "timeline differs across --threads")

if(DEFINED PYTHON AND DEFINED TOOL)
  execute_process(
    COMMAND ${PYTHON} ${TOOL} ${W}/trace1.json
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "trace2perfetto rejected ${W}/trace1.json")
  endif()
endif()
