#include "src/common/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace scalerpc {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += (a.next() == b.next());
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(7), 7u);
  }
  EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, NextInInclusiveBounds) {
  Rng rng(5);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const uint64_t v = rng.next_in(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    saw_lo |= (v == 3);
    saw_hi |= (v == 5);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextDoubleIsUnitInterval) {
  Rng rng(11);
  double sum = 0.0;
  for (int i = 0; i < 100000; ++i) {
    const double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 100000.0, 0.5, 0.01);
}

TEST(Rng, UniformityChiSquaredSanity) {
  Rng rng(17);
  constexpr int kBins = 16;
  constexpr int kDraws = 160000;
  std::vector<int> bins(kBins, 0);
  for (int i = 0; i < kDraws; ++i) {
    bins[rng.next_below(kBins)]++;
  }
  const double expected = static_cast<double>(kDraws) / kBins;
  double chi2 = 0.0;
  for (int c : bins) {
    const double d = c - expected;
    chi2 += d * d / expected;
  }
  // 15 dof; p=0.001 critical value is ~37.7.
  EXPECT_LT(chi2, 37.7);
}

TEST(Rng, GaussianMoments) {
  Rng rng(23);
  double sum = 0.0;
  double sq = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    const double g = rng.next_gaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.02);
  EXPECT_NEAR(sq / kN, 1.0, 0.03);
}

TEST(Zipf, DegenerateThetaZeroIsUniformish) {
  ZipfGenerator zipf(100, 0.0);
  Rng rng(31);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 100000; ++i) {
    counts[zipf.next(rng)]++;
  }
  for (int c : counts) {
    EXPECT_GT(c, 500);
    EXPECT_LT(c, 1500);
  }
}

TEST(Zipf, SkewConcentratesOnHead) {
  ZipfGenerator zipf(1000, 0.99);
  Rng rng(37);
  int head = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    if (zipf.next(rng) < 10) {
      head++;
    }
  }
  // With theta=0.99 over 1000 keys, the top-10 keys absorb a large fraction.
  EXPECT_GT(head, kDraws / 3);
}

TEST(Zipf, AllDrawsInUniverse) {
  ZipfGenerator zipf(8, 1.2);
  Rng rng(41);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(zipf.next(rng), 8u);
  }
}

}  // namespace
}  // namespace scalerpc
