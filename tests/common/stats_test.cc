#include "src/common/stats.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace scalerpc {
namespace {

TEST(Histogram, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile(50), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_TRUE(h.cdf().empty());
}

TEST(Histogram, SingleValue) {
  Histogram h;
  h.record(42);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 42u);
  EXPECT_EQ(h.max(), 42u);
  EXPECT_EQ(h.percentile(50), 42u);
  EXPECT_EQ(h.percentile(100), 42u);
}

TEST(Histogram, SmallValuesExact) {
  // Values below 2*kSubBuckets are stored exactly.
  Histogram h;
  for (uint64_t v = 0; v < 64; ++v) {
    h.record(v);
  }
  EXPECT_EQ(h.count(), 64u);
  EXPECT_GE(h.percentile(50), 31u);
  EXPECT_LE(h.percentile(50), 32u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 63u);
}

TEST(Histogram, QuantileRelativeErrorBounded) {
  Histogram h;
  Rng rng(7);
  std::vector<uint64_t> values;
  for (int i = 0; i < 100000; ++i) {
    const uint64_t v = rng.next_in(1, 10'000'000);
    values.push_back(v);
    h.record(v);
  }
  std::sort(values.begin(), values.end());
  for (double p : {10.0, 50.0, 90.0, 99.0}) {
    const uint64_t exact = values[static_cast<size_t>(values.size() * p / 100.0)];
    const uint64_t approx = h.percentile(p);
    const double rel = std::abs(static_cast<double>(approx) - static_cast<double>(exact)) /
                       static_cast<double>(exact);
    EXPECT_LT(rel, 0.05) << "p=" << p << " exact=" << exact << " approx=" << approx;
  }
}

TEST(Histogram, LargeValuesDoNotOverflowBuckets) {
  Histogram h;
  h.record(~0ULL);
  h.record(1ULL << 62);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.max(), ~0ULL);
  EXPECT_GE(h.percentile(100), (1ULL << 62));
}

TEST(Histogram, MergeCombinesCountsAndBounds) {
  Histogram a;
  Histogram b;
  a.record(10);
  a.record(20);
  b.record(1000);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.min(), 10u);
  EXPECT_EQ(a.max(), 1000u);
}

TEST(Histogram, CdfIsMonotonic) {
  Histogram h;
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    h.record(rng.next_in(1, 100000));
  }
  auto points = h.cdf();
  ASSERT_FALSE(points.empty());
  double prev_frac = 0.0;
  uint64_t prev_value = 0;
  for (const auto& [value, frac] : points) {
    EXPECT_GE(value, prev_value);
    EXPECT_GE(frac, prev_frac);
    prev_value = value;
    prev_frac = frac;
  }
  EXPECT_DOUBLE_EQ(points.back().second, 1.0);
}

TEST(Histogram, PercentileZeroIsMin) {
  Histogram h;
  h.record(100);
  h.record(200);
  // p=0 must be the smallest sample, not the upper bound of the bucket the
  // scan happens to stop in (which for {100, 200} would be >100).
  EXPECT_EQ(h.percentile(0), 100u);
  EXPECT_EQ(h.percentile(100), 200u);
}

TEST(Histogram, TinyPercentileLandsOnFirstOccupiedBucket) {
  Histogram h;
  h.record(7);
  for (int i = 0; i < 99; ++i) {
    h.record(5000);
  }
  // 0.1% of 100 samples rounds to rank 0; the rank must floor at 1 so the
  // answer is the first occupied bucket, never something below every sample.
  EXPECT_EQ(h.percentile(0.1), 7u);
}

TEST(Histogram, MinOnEmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.min(), 0u);
  h.record(9);
  h.reset();
  EXPECT_EQ(h.min(), 0u);
}

TEST(Histogram, CdfClampedToRecordedMax) {
  Histogram h;
  // 5000 lands in a log bucket whose nominal upper bound exceeds 5000; the
  // CDF must clamp to the recorded max like percentile() does.
  h.record(5000);
  auto points = h.cdf();
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points.front().first, 5000u);
  EXPECT_DOUBLE_EQ(points.front().second, 1.0);
}

TEST(Histogram, MergeDisjointRangesKeepsQuantiles) {
  Histogram lo;
  Histogram hi;
  for (int i = 0; i < 50; ++i) {
    lo.record(10);
    hi.record(100000);
  }
  lo.merge(hi);
  EXPECT_EQ(lo.count(), 100u);
  EXPECT_EQ(lo.percentile(0), 10u);
  EXPECT_EQ(lo.percentile(25), 10u);
  EXPECT_GE(lo.percentile(75), 90000u);
  EXPECT_LE(lo.percentile(75), 100000u);
  EXPECT_EQ(lo.percentile(100), 100000u);
}

TEST(Histogram, MergeIntoEmptyAdoptsBounds) {
  Histogram empty;
  Histogram h;
  h.record(3);
  h.record(17);
  empty.merge(h);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_EQ(empty.min(), 3u);
  EXPECT_EQ(empty.max(), 17u);
  // And the other direction: merging an empty histogram changes nothing.
  h.merge(Histogram{});
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.min(), 3u);
}

TEST(Histogram, ResetClears) {
  Histogram h;
  h.record(5);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

TEST(Summary, TracksMinMeanMax) {
  Summary s;
  s.add(1.0);
  s.add(3.0);
  s.add(2.0);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

TEST(Mops, Formatting) {
  // 1000 ops in 1000 ns = 1000 Mops/s.
  EXPECT_DOUBLE_EQ(mops_per_sec(1000, 1000), 1000.0);
  // 5M ops in 1 second = 5 Mops/s.
  EXPECT_DOUBLE_EQ(mops_per_sec(5'000'000, 1'000'000'000), 5.0);
  EXPECT_EQ(format_mops(5'000'000, 1'000'000'000), "5.00 Mops/s");
  EXPECT_DOUBLE_EQ(mops_per_sec(1, 0), 0.0);
}

}  // namespace
}  // namespace scalerpc
