# ctest helper: runs BENCH twice (--threads=1 and --threads=N) and fails if
# stdout differs by a single byte. Guards the sweep engine's determinism
# contract on a real figure benchmark, not just the unit harness.
#
# Usage: cmake -DBENCH=<path> -DTHREADS=<n> -DWORKDIR=<dir>
#              [-DPREFIX=<name>] -P compare_threads.cmake
# PREFIX names the scratch files, so several ctest entries can share WORKDIR
# without clobbering each other under `ctest -j`.
if(NOT DEFINED BENCH OR NOT DEFINED THREADS OR NOT DEFINED WORKDIR)
  message(FATAL_ERROR "compare_threads.cmake needs -DBENCH, -DTHREADS, -DWORKDIR")
endif()
if(NOT DEFINED PREFIX)
  set(PREFIX compare_threads)
endif()

execute_process(
  COMMAND ${BENCH} --quick --threads=1
  OUTPUT_FILE ${WORKDIR}/${PREFIX}_serial.out
  RESULT_VARIABLE serial_rc)
if(NOT serial_rc EQUAL 0)
  message(FATAL_ERROR "${BENCH} --threads=1 exited with ${serial_rc}")
endif()

execute_process(
  COMMAND ${BENCH} --quick --threads=${THREADS}
  OUTPUT_FILE ${WORKDIR}/${PREFIX}_parallel.out
  RESULT_VARIABLE parallel_rc)
if(NOT parallel_rc EQUAL 0)
  message(FATAL_ERROR "${BENCH} --threads=${THREADS} exited with ${parallel_rc}")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          ${WORKDIR}/${PREFIX}_serial.out
          ${WORKDIR}/${PREFIX}_parallel.out
  RESULT_VARIABLE diff_rc)
if(NOT diff_rc EQUAL 0)
  message(FATAL_ERROR
          "--threads=${THREADS} output differs from --threads=1 for ${BENCH}")
endif()
