// Elastic control plane (docs/control_plane.md): the per-node serial
// control processor, the connection cache / admission control in
// ctrl::ConnectionManager, and the zero-cost-when-off contract of the
// modeled QP setup costs.
#include <gtest/gtest.h>

#include <vector>

#include "src/ctrl/connection_manager.h"
#include "src/harness/harness.h"
#include "src/sim/event_loop.h"
#include "src/sim/task.h"
#include "src/simrdma/ctrl.h"
#include "src/simrdma/node.h"
#include "src/simrdma/params.h"

namespace scalerpc::ctrl {
namespace {

using simrdma::CtrlProcessor;

TEST(CtrlProcessor, SerializesOpsFifoAndTracksSaturation) {
  sim::EventLoop loop;
  CtrlProcessor ctrl(loop, /*slots=*/2);
  EXPECT_FALSE(ctrl.saturated());
  // op() never rejects (recovery reconnects must be able to queue behind a
  // storm); saturation is advisory, surfaced to admission control.
  sim::spawn(loop, ctrl.op(100));
  sim::spawn(loop, ctrl.op(100));
  sim::spawn(loop, ctrl.op(100));
  loop.run_for(1);  // starts all three ops at t=0
  EXPECT_TRUE(ctrl.saturated());
  EXPECT_EQ(ctrl.inflight(), 3u);
  loop.run();
  EXPECT_FALSE(ctrl.saturated());
  EXPECT_EQ(ctrl.ops(), 3u);
  EXPECT_EQ(ctrl.peak_inflight(), 3u);
  EXPECT_EQ(ctrl.busy_ns(), 300);
  // Serial FIFO: the third 100ns op ends when all 300ns have been served.
  EXPECT_EQ(loop.now(), 300);
}

// Transport stub for driving a ConnectionManager without a testbed: every
// connect/disconnect costs fixed sim time and records what happened.
struct FakeTransport {
  sim::EventLoop* loop;
  Nanos connect_cost = 1000;
  Nanos disconnect_cost = 500;
  std::vector<int> connected;  // per-endpoint link state
  uint64_t connects = 0;
  uint64_t disconnects = 0;
  Nanos first_connect_at = -1;

  sim::Task<void> connect(size_t id) {
    if (first_connect_at < 0) {
      first_connect_at = loop->now();
    }
    co_await loop->delay(connect_cost);
    connected[id]++;
    connects++;
  }
  sim::Task<void> disconnect(size_t id) {
    co_await loop->delay(disconnect_cost);
    connected[id]--;
    disconnects++;
  }

  ConnectionManager::EndpointFn connect_fn() {
    return [this](size_t id) { return connect(id); };
  }
  ConnectionManager::EndpointFn disconnect_fn() {
    return [this](size_t id) { return disconnect(id); };
  }
};

sim::Task<void> one_session(ConnectionManager* cm, size_t id, int* done) {
  co_await cm->acquire(id);
  cm->release(id);
  (*done)++;
}

TEST(ConnectionManager, CachesIdleConnectionsAndEvictsLru) {
  sim::EventLoop loop;
  FakeTransport ft{&loop};
  ft.connected.resize(4);
  ConnectionManagerConfig cfg;
  cfg.cache_capacity = 2;
  cfg.max_pending = 4;
  cfg.retry_after = usec(10);
  ConnectionManager cm(loop, cfg, 4, ft.connect_fn(), ft.disconnect_fn());

  auto drive = [&]() -> sim::Task<void> {
    co_await cm.acquire(0);  // miss
    cm.release(0);
    co_await cm.acquire(1);  // miss
    cm.release(1);
    co_await cm.acquire(0);  // hit: still cached, no transport work
    cm.release(0);
    // Cache at capacity with idle order [1, 0]: endpoint 1 is LRU and must
    // be the eviction victim.
    co_await cm.acquire(2);  // miss + evict
    cm.release(2);
  };
  sim::run_blocking(loop, drive());

  EXPECT_EQ(cm.hits(), 1u);
  EXPECT_EQ(cm.misses(), 3u);
  EXPECT_EQ(cm.evictions(), 1u);
  EXPECT_EQ(ft.connects, 3u);
  EXPECT_EQ(ft.disconnects, 1u);
  EXPECT_TRUE(cm.live(0));
  EXPECT_FALSE(cm.live(1));  // the LRU victim
  EXPECT_TRUE(cm.live(2));
  EXPECT_EQ(cm.num_live(), 2u);
}

TEST(ConnectionManager, BoundedPendingQueueSerializesAStorm) {
  sim::EventLoop loop;
  FakeTransport ft{&loop};
  ft.connect_cost = usec(5);
  ft.connected.resize(3);
  ConnectionManagerConfig cfg;
  cfg.cache_capacity = 0;  // unbounded cache: isolate admission control
  cfg.max_pending = 1;
  cfg.retry_after = usec(10);
  ConnectionManager cm(loop, cfg, 3, ft.connect_fn(), ft.disconnect_fn());

  int done = 0;
  for (size_t id = 0; id < 3; ++id) {
    sim::spawn(loop, one_session(&cm, id, &done));
  }
  loop.run();

  EXPECT_EQ(done, 3);
  EXPECT_EQ(cm.num_live(), 3u);
  EXPECT_EQ(ft.connects, 3u);
  // Two arrivals found the single pending slot taken and were pushed back
  // with retry-after at least once each.
  EXPECT_GE(cm.rejects(), 2u);
  // One-at-a-time admission: the three 5us setups cannot overlap.
  EXPECT_GE(loop.now(), 3 * usec(5));
}

TEST(ConnectionManager, ServerCtrlSaturationPushesConnectsBack) {
  sim::EventLoop loop;
  CtrlProcessor server_ctrl(loop, /*slots=*/1);
  FakeTransport ft{&loop};
  ft.connected.resize(1);
  ConnectionManagerConfig cfg;
  cfg.max_pending = 8;
  cfg.retry_after = usec(10);
  ConnectionManager cm(loop, cfg, 1, ft.connect_fn(), ft.disconnect_fn());
  cm.set_server_ctrl(&server_ctrl);

  // The server's command queue is busy for 50us; the acquire must be
  // rejected (retry-after) until it drains instead of queuing behind it.
  sim::spawn(loop, server_ctrl.op(usec(50)));
  int done = 0;
  sim::spawn(loop, one_session(&cm, 0, &done));
  loop.run();

  EXPECT_EQ(done, 1);
  EXPECT_GE(cm.rejects(), 1u);
  EXPECT_GE(ft.first_connect_at, usec(50));
}

}  // namespace
}  // namespace scalerpc::ctrl

namespace scalerpc::harness {
namespace {

sim::Task<void> echo_loop(Testbed* bed, size_t idx, int rounds, int* ok) {
  rpc::Bytes req = {1, 2, 3};
  for (int i = 0; i < rounds; ++i) {
    rpc::Bytes resp = co_await bed->client(idx).call(1, req);
    if (resp == req) {
      (*ok)++;
    }
  }
}

struct CtrlRunResult {
  uint64_t events = 0;
  Nanos connect_done_at = 0;
  bool any_node_has_ctrl = false;
};

// Connects a 16-client ScaleRPC testbed and runs a fixed echo workload
// under the given control-plane params; returns the run's event-schedule
// fingerprint.
CtrlRunResult run_with_ctrl(const simrdma::SimParams::CtrlParams& ctrl) {
  TestbedConfig cfg;
  cfg.kind = TransportKind::kScaleRpc;
  cfg.num_clients = 16;
  cfg.num_client_nodes = 2;
  cfg.rpc.group_size = 4;
  cfg.rpc.time_slice = usec(20);
  cfg.defer_connect = true;
  cfg.sim.ctrl = ctrl;
  Testbed bed(cfg);
  bed.server().handlers().register_handler(1, rpc::make_echo_handler(100));
  bed.server().start();
  bed.connect_all();

  CtrlRunResult r;
  r.connect_done_at = bed.loop().now();
  int ok = 0;
  for (size_t c = 0; c < 16; ++c) {
    sim::spawn(bed.loop(), echo_loop(&bed, c, 20, &ok));
  }
  bed.loop().run_for(msec(10));
  EXPECT_EQ(ok, 16 * 20);
  for (size_t n = 0; n < bed.cluster().num_nodes(); ++n) {
    r.any_node_has_ctrl |= bed.cluster().node(static_cast<int>(n))->has_ctrl();
  }
  r.events = bed.loop().events_processed();
  return r;
}

TEST(ControlPlane, ZeroCostWhenOffChargedWhenOn) {
  // Default (all-zero) ctrl params: the model is compiled in, but no node
  // may ever allocate its control processor, and the full event schedule
  // must be reproducible — the test-level pin behind the byte-identical
  // figure-bench gates.
  const CtrlRunResult off_a = run_with_ctrl(simrdma::SimParams::CtrlParams{});
  const CtrlRunResult off_b = run_with_ctrl(simrdma::SimParams::CtrlParams{});
  EXPECT_FALSE(off_a.any_node_has_ctrl);
  EXPECT_FALSE(off_b.any_node_has_ctrl);
  EXPECT_EQ(off_a.events, off_b.events);
  EXPECT_EQ(off_a.connect_done_at, off_b.connect_done_at);

  // Modeled costs: the same workload completes, nodes now own control
  // processors, and the 16 serialized QP bring-ups cost real sim time.
  const CtrlRunResult on = run_with_ctrl(simrdma::modeled_ctrl_params());
  EXPECT_TRUE(on.any_node_has_ctrl);
  EXPECT_GT(on.connect_done_at, off_a.connect_done_at);
}

}  // namespace
}  // namespace scalerpc::harness
