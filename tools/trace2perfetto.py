#!/usr/bin/env python3
"""Validate a --trace output file for Perfetto / chrome://tracing.

Chrome trace-event JSON loads directly in both viewers, so there is no
conversion step — this tool is the machine check that a file emitted by a
bench's `--trace=<path>` flag actually conforms to the format (see
docs/tracing.md for the schema the simulator emits):

  * top level: {"displayTimeUnit": ..., "traceEvents": [...]}
  * every event has a phase "ph" in {M, i, X, C}
  * non-metadata events carry name/cat/ts/pid/tid; "X" spans carry a
    non-negative "dur"; "i" instants carry scope "s"; "C" counters carry a
    numeric "args" map

(Events need not be ts-sorted in the file — spans are recorded when they
close, with their start timestamp — and the viewers sort on load.)

On success it prints a one-line summary per process (sweep slot) and exits
0; any violation is reported with its event index and exits 1.

Usage: tools/trace2perfetto.py TRACE.json [--quiet]
"""

import json
import sys


VALID_PHASES = {"M", "i", "X", "C"}


def fail(msg):
    print(f"trace2perfetto: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_event(i, ev):
    if not isinstance(ev, dict):
        fail(f"event {i}: not an object")
    ph = ev.get("ph")
    if ph not in VALID_PHASES:
        fail(f"event {i}: unknown phase {ph!r}")
    if not isinstance(ev.get("name"), str) or not ev["name"]:
        fail(f"event {i}: missing name")
    if not isinstance(ev.get("pid"), int):
        fail(f"event {i}: missing integer pid")
    if ph == "M":
        return  # metadata: no ts/cat required
    if not isinstance(ev.get("cat"), str) or not ev["cat"]:
        fail(f"event {i}: missing category")
    if not isinstance(ev.get("ts"), (int, float)) or ev["ts"] < 0:
        fail(f"event {i}: missing or negative ts")
    if not isinstance(ev.get("tid"), int):
        fail(f"event {i}: missing integer tid")
    if ph == "X":
        if not isinstance(ev.get("dur"), (int, float)) or ev["dur"] < 0:
            fail(f"event {i}: 'X' span without non-negative dur")
    if ph == "i":
        if ev.get("s") not in ("t", "p", "g"):
            fail(f"event {i}: 'i' instant without scope 's'")
    if ph == "C":
        args = ev.get("args")
        if not isinstance(args, dict) or not args:
            fail(f"event {i}: 'C' counter without args")
        for k, v in args.items():
            if not isinstance(v, (int, float)):
                fail(f"event {i}: counter series {k!r} is not numeric")


def main(argv):
    args = [a for a in argv[1:] if a != "--quiet"]
    quiet = "--quiet" in argv[1:]
    if len(args) != 1:
        print(__doc__, file=sys.stderr)
        return 2
    try:
        with open(args[0], "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot load {args[0]}: {e}")

    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail("top level must be an object with a traceEvents array")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        fail("traceEvents is not an array")

    names = {}  # pid -> process_name
    counts = {}  # pid -> event count
    for i, ev in enumerate(events):
        check_event(i, ev)
        if ev["ph"] == "M":
            if ev["name"] == "process_name":
                names[ev["pid"]] = ev.get("args", {}).get("name", "?")
            continue
        counts[ev["pid"]] = counts.get(ev["pid"], 0) + 1

    if not quiet:
        print(f"trace2perfetto: OK: {len(events)} events, {len(names)} slots")
        for pid in sorted(names):
            print(f"  pid {pid}: {counts.get(pid, 0):>8} events  {names[pid]}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
