#!/usr/bin/env python3
"""Compare two bench --json files within a tolerance.

Every figure bench writes `{"bench": NAME, "rows": [{field: value, ...}]}`
via --json=PATH. This tool diffs a baseline capture against a candidate:
rows are matched by position, string/bool fields must be identical, and
numeric fields may differ by a relative tolerance (--tolerance, default 5%)
with an absolute floor (--abs-floor) so near-zero counters don't trip the
relative test. Use --ignore FIELD for legitimately volatile fields, and
--col-tolerance FIELD=REL to give one column a looser (or tighter) relative
tolerance than the rest — e.g. peak RSS, which jitters with allocator and
kernel behavior, gates at 33.4% (a 1.5x regression) while event counts stay
exact.

Row matching: by default rows pair up positionally and the two files must
have the same row count. --match-key FIELD[,FIELD] pairs rows by the value
tuple of those fields instead, so reordering (or a resorted sweep) is not a
diff; key tuples must be unique within each file. --subset additionally
allows the candidate to cover only part of the baseline: baseline rows with
no matching candidate key are skipped, which is how CI compares a --quick
run (small fleets only) against the committed full-scale capture —
    bench_scale_wall --quick --json=/tmp/scale.json
    tools/bench_compare.py BENCH_scale.json /tmp/scale.json \
        --match-key transport,clients --subset ...
Candidate rows absent from the baseline are always an error.

Exit status: 0 when the files agree, 1 on any mismatch (each printed),
2 on malformed input.

Typical use — regression-check a committed capture:
    bench_fig08_throughput --quick --json=/tmp/now.json
    tools/bench_compare.py BENCH.json /tmp/now.json --tolerance 0.1

`--self-test` runs the built-in checks (wired into ctest as
bench_compare_selftest) and ignores the positional arguments.
"""

import argparse
import json
import sys


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    if not isinstance(doc, dict) or "rows" not in doc or not isinstance(
        doc["rows"], list
    ):
        raise ValueError(f"{path}: not a bench --json file (need a 'rows' list)")
    return doc


def numbers_close(a, b, rel, abs_floor):
    if abs(a - b) <= abs_floor:
        return True
    scale = max(abs(a), abs(b))
    return abs(a - b) <= rel * scale


# Wall-clock fields that are only comparable when the row says its speedup
# measurement was meaningful (speedup_valid). bench_simspeed emits
# speedup_valid=false on single-hardware-thread machines, where the
# parallel "speedup" only measures scheduling overhead and would otherwise
# diff against a multi-core capture as a fake regression.
SPEEDUP_FIELDS = {"speedup", "serial_wall_s", "parallel_wall_s", "speedup_valid"}


def pair_rows(brows, crows, match_key, subset, errors):
    """Returns [(label, base_row, cand_row)] according to the matching mode.

    Positional when `match_key` is empty (row counts must agree); keyed by
    the tuple of `match_key` field values otherwise. With `subset`, baseline
    rows whose key has no candidate counterpart are silently dropped —
    candidate rows missing from the baseline are an error either way.
    """
    if not match_key:
        if len(brows) != len(crows):
            errors.append(f"row count differs: {len(brows)} vs {len(crows)}")
        return [(f"row {i}", br, cr) for i, (br, cr) in
                enumerate(zip(brows, crows))]

    def index(rows, side):
        by_key = {}
        for i, row in enumerate(rows):
            missing = [f for f in match_key if f not in row]
            if missing:
                errors.append(
                    f"{side} row {i}: missing match-key field(s) "
                    f"{', '.join(repr(f) for f in missing)}"
                )
                continue
            key = tuple(row[f] for f in match_key)
            if key in by_key:
                errors.append(f"{side}: duplicate match key {key!r}")
                continue
            by_key[key] = row
        return by_key

    base_by, cand_by = index(brows, "baseline"), index(crows, "candidate")
    pairs = []
    for key, cr in cand_by.items():
        if key not in base_by:
            errors.append(f"candidate row {key!r} has no baseline row")
            continue
        pairs.append((f"row {key!r}", base_by[key], cr))
    if not subset:
        for key in base_by:
            if key not in cand_by:
                errors.append(f"baseline row {key!r} missing from candidate")
    return pairs


def compare(base, cand, rel, abs_floor, ignore, col_tol=None,
            match_key=(), subset=False):
    """Returns a list of human-readable mismatch strings (empty = equal).

    `col_tol` maps a field name to the relative tolerance that overrides
    `rel` for that column only. `match_key`/`subset` select the row-pairing
    mode (see pair_rows).
    """
    col_tol = col_tol or {}
    errors = []
    if base.get("bench") != cand.get("bench"):
        errors.append(
            f"bench name differs: {base.get('bench')!r} vs {cand.get('bench')!r}"
        )
    for i, br, cr in pair_rows(base["rows"], cand["rows"], list(match_key),
                               subset, errors):
        speedup_invalid = (
            br.get("speedup_valid") is False or cr.get("speedup_valid") is False
        )
        for key in sorted(set(br) | set(cr)):
            if key in ignore:
                continue
            if speedup_invalid and key in SPEEDUP_FIELDS:
                continue
            if key not in br or key not in cr:
                errors.append(f"{i}: field {key!r} missing on one side")
                continue
            bv, cv = br[key], cr[key]
            # bool is an int subclass; compare it exactly, not numerically.
            if isinstance(bv, bool) or isinstance(cv, bool):
                if bv != cv:
                    errors.append(f"{i}: {key} = {bv} vs {cv}")
            elif isinstance(bv, (int, float)) and isinstance(cv, (int, float)):
                key_rel = col_tol.get(key, rel)
                if not numbers_close(float(bv), float(cv), key_rel, abs_floor):
                    errors.append(
                        f"{i}: {key} = {bv} vs {cv} "
                        f"(beyond {key_rel:.0%} / abs {abs_floor})"
                    )
            elif bv != cv:
                errors.append(f"{i}: {key} = {bv!r} vs {cv!r}")
    return errors


def self_test():
    base = {
        "bench": "demo",
        "rows": [
            {"label": "a", "mops": 10.0, "ops": 1000, "ok": True},
            {"label": "b", "mops": 5.0, "ops": 0, "ok": False},
        ],
    }
    import copy

    # Identical files agree.
    assert compare(base, copy.deepcopy(base), 0.05, 1e-9, set()) == []
    # Within relative tolerance.
    near = copy.deepcopy(base)
    near["rows"][0]["mops"] = 10.4
    assert compare(base, near, 0.05, 1e-9, set()) == []
    # Beyond it.
    far = copy.deepcopy(base)
    far["rows"][0]["mops"] = 11.0
    assert len(compare(base, far, 0.05, 1e-9, set())) == 1
    # --ignore silences the field.
    assert compare(base, far, 0.05, 1e-9, {"mops"}) == []
    # Absolute floor admits small counter jitter around zero.
    jitter = copy.deepcopy(base)
    jitter["rows"][1]["ops"] = 2
    assert len(compare(base, jitter, 0.05, 1e-9, set())) == 1
    assert compare(base, jitter, 0.05, 2, set()) == []
    # Bools and strings never get tolerance.
    flipped = copy.deepcopy(base)
    flipped["rows"][1]["ok"] = True
    assert len(compare(base, flipped, 1.0, 1e9, set())) == 1
    renamed = copy.deepcopy(base)
    renamed["rows"][0]["label"] = "c"
    assert len(compare(base, renamed, 1.0, 1e9, set())) == 1
    # Structural drift is always an error.
    short = copy.deepcopy(base)
    short["rows"].pop()
    assert any("row count" in e for e in compare(base, short, 0.05, 1e-9, set()))
    missing = copy.deepcopy(base)
    del missing["rows"][0]["ops"]
    assert any("missing" in e for e in compare(base, missing, 0.05, 1e-9, set()))
    # A row flagged speedup_valid=false (single-core machine) exempts its
    # wall/speedup fields — on either side — but nothing else.
    sweep_base = {
        "bench": "demo",
        "rows": [
            {
                "config": "PARALLEL_SWEEP",
                "threads": 8,
                "speedup": 4.0,
                "serial_wall_s": 8.0,
                "parallel_wall_s": 2.0,
                "speedup_valid": True,
                "tasks": 9,
            }
        ],
    }
    one_core = copy.deepcopy(sweep_base)
    one_core["rows"][0].update(
        {
            "threads": 1,
            "speedup": 0.97,
            "serial_wall_s": 8.0,
            "parallel_wall_s": 8.2,
            "speedup_valid": False,
        }
    )
    errs = compare(sweep_base, one_core, 0.05, 1e-9, set())
    assert all("speedup" not in e and "wall" not in e for e in errs), errs
    assert any("threads" in e for e in errs), errs  # threads still compared
    bad_tasks = copy.deepcopy(one_core)
    bad_tasks["rows"][0]["tasks"] = 12
    assert any("tasks" in e for e in compare(sweep_base, bad_tasks, 0.05, 1e-9, set()))
    # Valid on both sides: speedup differences are real regressions again.
    slower = copy.deepcopy(sweep_base)
    slower["rows"][0]["speedup"] = 1.1
    assert any("speedup" in e for e in compare(sweep_base, slower, 0.05, 1e-9, set()))
    # Per-column tolerance: a flagged column gets its own relative band
    # while the others keep the global one. RSS-style row: +30% RSS passes
    # under peak_rss_mb=0.334 (the 1.5x gate) but the exact columns do not
    # inherit the loose band.
    rss_base = {
        "bench": "demo",
        "rows": [{"config": "x", "events": 1000, "peak_rss_mb": 40.0,
                  "sm_transitions": 500, "coroutine_resumes": 700}],
    }
    rss_up = copy.deepcopy(rss_base)
    rss_up["rows"][0]["peak_rss_mb"] = 52.0  # 1.30x: inside the 1.5x gate
    assert compare(rss_base, rss_up, 0.05, 1e-9, set(),
                   {"peak_rss_mb": 0.334}) == []
    rss_blown = copy.deepcopy(rss_base)
    rss_blown["rows"][0]["peak_rss_mb"] = 64.0  # 1.6x: beyond the gate
    errs = compare(rss_base, rss_blown, 0.05, 1e-9, set(), {"peak_rss_mb": 0.334})
    assert any("peak_rss_mb" in e and "33%" in e for e in errs), errs
    # The loose column must not leak: an events drift outside the global
    # band still fails even with the RSS override present.
    ev_drift = copy.deepcopy(rss_base)
    ev_drift["rows"][0]["events"] = 1100
    assert any("events" in e for e in compare(rss_base, ev_drift, 0.05, 1e-9,
                                              set(), {"peak_rss_mb": 0.334}))
    # Transition-count columns are deterministic: a tightened (zero) band
    # catches a single-step drift that the global 5% would wave through.
    steps_drift = copy.deepcopy(rss_base)
    steps_drift["rows"][0]["sm_transitions"] = 510
    assert compare(rss_base, steps_drift, 0.05, 1e-9, set()) == []
    assert any("sm_transitions" in e
               for e in compare(rss_base, steps_drift, 0.05, 1e-9, set(),
                                {"sm_transitions": 0.0}))
    # A flagged column composes with --ignore on another.
    both = copy.deepcopy(rss_base)
    both["rows"][0]["peak_rss_mb"] = 52.0
    both["rows"][0]["coroutine_resumes"] = 9999
    assert compare(rss_base, both, 0.05, 1e-9, {"coroutine_resumes"},
                   {"peak_rss_mb": 0.334}) == []
    # --match-key pairs rows by field value, so reordering is not a diff.
    keyed = {
        "bench": "demo",
        "rows": [
            {"transport": "scalerpc", "clients": 1000, "sim_ops": 27000},
            {"transport": "scalerpc", "clients": 10000, "sim_ops": 3400},
            {"transport": "sharedqp", "clients": 1000, "sim_ops": 39800},
        ],
    }
    shuffled = copy.deepcopy(keyed)
    shuffled["rows"].reverse()
    assert len(compare(keyed, shuffled, 0.05, 1e-9, set())) > 0  # positional
    assert compare(keyed, shuffled, 0.05, 1e-9, set(),
                   match_key=["transport", "clients"]) == []
    # Field drift is still caught, and named by key rather than position.
    drifted = copy.deepcopy(shuffled)
    drifted["rows"][0]["sim_ops"] = 50000  # the sharedqp/1000 row
    errs = compare(keyed, drifted, 0.05, 1e-9, set(),
                   match_key=["transport", "clients"])
    assert len(errs) == 1 and "sharedqp" in errs[0], errs
    # --subset: a candidate covering only some baseline keys is fine...
    quick = copy.deepcopy(keyed)
    quick["rows"] = [r for r in quick["rows"] if r["clients"] <= 1000]
    assert any("missing from candidate" in e
               for e in compare(keyed, quick, 0.05, 1e-9, set(),
                                match_key=["transport", "clients"]))
    assert compare(keyed, quick, 0.05, 1e-9, set(),
                   match_key=["transport", "clients"], subset=True) == []
    # ...but a candidate row the baseline lacks is an error even then.
    extra = copy.deepcopy(quick)
    extra["rows"].append({"transport": "herd", "clients": 1000, "sim_ops": 1})
    assert any("no baseline row" in e
               for e in compare(keyed, extra, 0.05, 1e-9, set(),
                                match_key=["transport", "clients"],
                                subset=True))
    # Duplicate keys and rows without the key field are structural errors.
    dup = copy.deepcopy(keyed)
    dup["rows"].append(dict(dup["rows"][0]))
    assert any("duplicate match key" in e
               for e in compare(keyed, dup, 0.05, 1e-9, set(),
                                match_key=["transport", "clients"]))
    unkeyed = copy.deepcopy(keyed)
    del unkeyed["rows"][1]["clients"]
    assert any("missing match-key field" in e
               for e in compare(keyed, unkeyed, 0.05, 1e-9, set(),
                                match_key=["transport", "clients"]))
    print("bench_compare: self-test OK")
    return 0


def main():
    ap = argparse.ArgumentParser(
        description="Diff two bench --json captures within a tolerance."
    )
    ap.add_argument("baseline", nargs="?", help="committed BENCH_*.json capture")
    ap.add_argument("candidate", nargs="?", help="freshly produced --json file")
    ap.add_argument(
        "--tolerance",
        type=float,
        default=0.05,
        help="relative tolerance for numeric fields (default 0.05)",
    )
    ap.add_argument(
        "--abs-floor",
        type=float,
        default=1e-9,
        help="absolute difference always accepted (default 1e-9)",
    )
    ap.add_argument(
        "--ignore",
        action="append",
        default=[],
        metavar="FIELD",
        help="field name to skip (repeatable)",
    )
    ap.add_argument(
        "--col-tolerance",
        action="append",
        default=[],
        metavar="FIELD=REL",
        help="per-column relative tolerance overriding --tolerance "
        "(repeatable), e.g. --col-tolerance peak_rss_mb=0.334",
    )
    ap.add_argument(
        "--match-key",
        default="",
        metavar="FIELD[,FIELD]",
        help="pair rows by these field values instead of by position "
        "(e.g. --match-key transport,clients)",
    )
    ap.add_argument(
        "--subset",
        action="store_true",
        help="with --match-key: allow the candidate to cover only part of "
        "the baseline (unmatched baseline rows are skipped)",
    )
    ap.add_argument(
        "--self-test", action="store_true", help="run built-in checks and exit"
    )
    args = ap.parse_args()

    if args.self_test:
        return self_test()
    if args.baseline is None or args.candidate is None:
        ap.error("need BASELINE and CANDIDATE (or --self-test)")
    col_tol = {}
    for spec in args.col_tolerance:
        field, sep, value = spec.partition("=")
        try:
            if not sep or not field:
                raise ValueError
            col_tol[field] = float(value)
        except ValueError:
            ap.error(f"--col-tolerance needs FIELD=REL, got {spec!r}")
    match_key = [f for f in args.match_key.split(",") if f]
    if args.subset and not match_key:
        ap.error("--subset requires --match-key")
    try:
        base = load(args.baseline)
        cand = load(args.candidate)
    except (OSError, ValueError, json.JSONDecodeError) as e:
        print(f"bench_compare: {e}", file=sys.stderr)
        return 2

    errors = compare(base, cand, args.tolerance, args.abs_floor,
                     set(args.ignore), col_tol, match_key, args.subset)
    if errors:
        for e in errors:
            print(f"bench_compare: {e}", file=sys.stderr)
        print(f"bench_compare: FAIL ({len(errors)} mismatches)", file=sys.stderr)
        return 1
    compared = len(cand["rows"]) if args.subset else len(base["rows"])
    print(f"bench_compare: OK ({compared} rows within tolerance)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
