#!/usr/bin/env python3
"""Flatten a --metrics JSON dump into CSV.

A bench run with `--metrics=<path>` writes one JSON object (see
docs/metrics.md for the schema the registry emits):

  {"bench": "...", "slots": [
      {"label": "<sweep point>", "metrics": {"series": [
          {"kind": "qp"|"group"|"client"|"node"|"cell"|"ctrl",
           "instrument": "counter"|"gauge"|"histogram",
           "name": "...", "points": [...]}, ...]}}, ...]}

This tool flattens it to one CSV row per (slot, series, point) so the
labeled series can be pivoted in any spreadsheet / pandas one-liner:

  slot,kind,name,instrument,node,qpn,id,value,count,min,p50,p90,p99,max

Scalar points fill `value`; histogram points fill the quantile columns.
kQp entities carry (node, qpn); other kinds carry their dense `id`. The
"cell" kind is the scale-wall dump (`bench_scale_wall --metrics`, see
docs/metrics.md): one slot per (transport, fleet-size) cell, `id` being
the cell's index in the sweep. The input structure is validated along
the way, so the tool doubles as the format check CI runs against a
metrics dump.

Usage: tools/metrics2csv.py METRICS.json [-o OUT.csv]
"""

import argparse
import csv
import json
import sys

FIELDS = ["slot", "kind", "name", "instrument", "node", "qpn", "id",
          "value", "count", "min", "p50", "p90", "p99", "max"]
KINDS = {"node", "qp", "group", "client", "cell", "ctrl"}
INSTRUMENTS = {"counter", "gauge", "histogram"}
HIST_KEYS = ("count", "min", "p50", "p90", "p99", "max")


def fail(msg):
    print(f"metrics2csv: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def flatten(doc):
    if not isinstance(doc, dict) or "slots" not in doc:
        fail("top level must be an object with a 'slots' array")
    rows = []
    for si, slot in enumerate(doc["slots"]):
        label = slot.get("label")
        metrics = slot.get("metrics")
        if not isinstance(label, str) or not isinstance(metrics, dict):
            fail(f"slot {si}: missing label or metrics object")
        for series in metrics.get("series", []):
            kind = series.get("kind")
            name = series.get("name")
            instrument = series.get("instrument")
            if kind not in KINDS:
                fail(f"slot {si}: unknown kind {kind!r}")
            if instrument not in INSTRUMENTS:
                fail(f"slot {si}: unknown instrument {instrument!r}")
            if not isinstance(name, str) or not name:
                fail(f"slot {si}: series without a name")
            for pi, pt in enumerate(series.get("points", [])):
                where = f"slot {si} series {kind}/{name} point {pi}"
                row = {"slot": label, "kind": kind, "name": name,
                       "instrument": instrument}
                if kind == "qp":
                    if not isinstance(pt.get("node"), int) or \
                       not isinstance(pt.get("qpn"), int):
                        fail(f"{where}: qp point without (node, qpn)")
                    row["node"] = pt["node"]
                    row["qpn"] = pt["qpn"]
                else:
                    if not isinstance(pt.get("id"), int):
                        fail(f"{where}: point without integer id")
                    row["id"] = pt["id"]
                if instrument == "histogram":
                    for k in HIST_KEYS:
                        if not isinstance(pt.get(k), int):
                            fail(f"{where}: histogram point missing {k!r}")
                        row[k] = pt[k]
                else:
                    if not isinstance(pt.get("value"), int):
                        fail(f"{where}: scalar point without integer value")
                    row["value"] = pt["value"]
                rows.append(row)
    return rows


def main():
    ap = argparse.ArgumentParser(
        description="Flatten a bench --metrics JSON dump into CSV "
                    "(one row per slot/series/point).")
    ap.add_argument("metrics_json", help="file written by a bench's --metrics flag")
    ap.add_argument("-o", "--output", default="-",
                    help="output CSV path (default: stdout)")
    args = ap.parse_args()

    try:
        with open(args.metrics_json, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(str(e))

    rows = flatten(doc)
    out = sys.stdout if args.output == "-" else open(args.output, "w",
                                                     encoding="utf-8",
                                                     newline="")
    try:
        w = csv.DictWriter(out, fieldnames=FIELDS)
        w.writeheader()
        w.writerows(rows)
    finally:
        if out is not sys.stdout:
            out.close()
    print(f"metrics2csv: {len(rows)} rows from "
          f"{len(doc['slots'])} slot(s) of bench "
          f"{doc.get('bench', '?')!r}", file=sys.stderr)


if __name__ == "__main__":
    try:
        main()
    except BrokenPipeError:  # e.g. piped into head
        sys.exit(0)
