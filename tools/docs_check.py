#!/usr/bin/env python3
"""Docs health check, wired into ctest as `docs_check`.

Two classes of rot this catches:

1. Broken intra-repo links: every relative markdown link in every *.md must
   resolve to an existing file (anchors are stripped; external http(s)/
   mailto links are ignored).

2. Phantom flags: every `--flag` token mentioned in a markdown file must
   either be printed by the benches' own `--help` output (pass one or more
   bench binaries via --help-from) or belong to the small allowlist of
   cmake/ctest flags the build instructions use. This keeps EXPERIMENTS.md
   and docs/ honest when bench options change.

Usage: tools/docs_check.py --repo DIR [--help-from BENCH]...
Exits 0 when clean; prints each violation and exits 1 otherwise.
"""

import argparse
import os
import re
import subprocess
import sys

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
FLAG_RE = re.compile(r"--[a-z][a-z0-9_-]+")

# Flags that belong to the toolchain (cmake/ctest), not to our benches.
TOOLCHAIN_FLAGS = {"--build", "--help", "--output-on-failure", "--target", "--test-dir"}

SKIP_DIRS = {"build", ".git", "third_party"}


def markdown_files(repo):
    for root, dirs, files in os.walk(repo):
        dirs[:] = [
            d for d in dirs if d not in SKIP_DIRS and not d.startswith(("build", "."))
        ]
        for f in files:
            if f.endswith(".md"):
                yield os.path.join(root, f)


def help_flags(binaries):
    flags = set()
    for b in binaries:
        # Python tools (tools/*.py) are documented too; run them through the
        # current interpreter so the exec bit / shebang doesn't matter.
        cmd = [sys.executable, b] if b.endswith(".py") else [b]
        out = subprocess.run(
            cmd + ["--help"], capture_output=True, text=True, check=True
        ).stdout
        flags.update(FLAG_RE.findall(out))
    return flags


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--repo", required=True)
    ap.add_argument("--help-from", action="append", default=[])
    args = ap.parse_args()

    allowed = help_flags(args.help_from) | TOOLCHAIN_FLAGS
    errors = []

    for md in markdown_files(args.repo):
        rel = os.path.relpath(md, args.repo)
        text = open(md, "r", encoding="utf-8").read()

        for m in LINK_RE.finditer(text):
            target = m.group(1)
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            resolved = os.path.normpath(os.path.join(os.path.dirname(md), path))
            if not os.path.exists(resolved):
                errors.append(f"{rel}: broken link -> {target}")

        if args.help_from:
            for flag in sorted(set(FLAG_RE.findall(text))):
                if flag not in allowed:
                    errors.append(f"{rel}: flag {flag} not in any --help output")

    if errors:
        for e in errors:
            print(f"docs_check: {e}", file=sys.stderr)
        print(f"docs_check: FAIL ({len(errors)} problems)", file=sys.stderr)
        return 1
    print("docs_check: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
