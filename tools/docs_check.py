#!/usr/bin/env python3
"""Docs health check, wired into ctest as `docs_check`.

Two classes of rot this catches:

1. Broken intra-repo links: every relative markdown link in every *.md must
   resolve to an existing file (anchors are stripped; external http(s)/
   mailto links are ignored).

2. Phantom flags: every `--flag` token mentioned in a markdown file must
   either be printed by the benches' own `--help` output (pass one or more
   bench binaries via --help-from) or belong to the small allowlist of
   cmake/ctest flags the build instructions use. This keeps EXPERIMENTS.md
   and docs/ honest when bench options change.

3. Flag tables: any markdown table whose first header cell is `flag` (such
   as the observability-flag and scale-bench tables in EXPERIMENTS.md) is
   parsed row by row. Every row's first cell must contain at least one
   `--flag` token, and each such flag must appear in the combined --help
   output — a stricter, row-addressed form of check 2 for the tables that
   claim to *enumerate* the flags.

Usage: tools/docs_check.py --repo DIR [--help-from BENCH]...
Exits 0 when clean; prints each violation and exits 1 otherwise.
`--self-test` runs the built-in checks on synthetic markdown (wired into
ctest as docs_check_selftest) and needs neither --repo nor binaries.
"""

import argparse
import os
import re
import subprocess
import sys

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
FLAG_RE = re.compile(r"--[a-z][a-z0-9_-]+")

# Flags that belong to the toolchain (cmake/ctest), not to our benches.
TOOLCHAIN_FLAGS = {"--build", "--help", "--output-on-failure", "--target", "--test-dir"}

SKIP_DIRS = {"build", ".git", "third_party"}


def markdown_files(repo):
    for root, dirs, files in os.walk(repo):
        dirs[:] = [
            d for d in dirs if d not in SKIP_DIRS and not d.startswith(("build", "."))
        ]
        for f in files:
            if f.endswith(".md"):
                yield os.path.join(root, f)


def flag_table_rows(text):
    """Yields (line_number, first_cell) for body rows of flag tables.

    A flag table is a pipe table whose header's first cell, stripped of
    backticks and case, is exactly "flag". The |---| separator row is
    skipped; a row of a different table ends the scan until the next
    header.
    """
    in_table = False
    for ln, line in enumerate(text.splitlines(), start=1):
        stripped = line.strip()
        if not stripped.startswith("|"):
            in_table = False
            continue
        cells = [c.strip() for c in stripped.strip("|").split("|")]
        if not cells:
            in_table = False
            continue
        head = cells[0].strip("`").strip().lower()
        if not in_table:
            in_table = head == "flag"
            continue
        if set(head) <= {"-", ":"}:
            continue  # the |---|---| separator
        yield ln, cells[0]


def help_flags(binaries):
    flags = set()
    for b in binaries:
        # Python tools (tools/*.py) are documented too; run them through the
        # current interpreter so the exec bit / shebang doesn't matter.
        cmd = [sys.executable, b] if b.endswith(".py") else [b]
        out = subprocess.run(
            cmd + ["--help"], capture_output=True, text=True, check=True
        ).stdout
        flags.update(FLAG_RE.findall(out))
    return flags


def self_test():
    # Link extraction: relative targets only, anchors stripped by the caller.
    text = "[a](docs/x.md) [b](https://e.com/p) [c](#sec) [d](../y.md#top)"
    targets = [m.group(1) for m in LINK_RE.finditer(text)]
    assert targets == ["docs/x.md", "https://e.com/p", "#sec", "../y.md#top"]

    # Flag extraction.
    assert FLAG_RE.findall("use `--json=f` and --quick; not -j or --X") == [
        "--json",
        "--quick",
    ]

    # Flag-table parsing: header match, separator skip, table end.
    md = "\n".join(
        [
            "| flag | writes | notes |",
            "|---|---|---|",
            "| `--trace=PATH` | trace | all points |",
            "| `--spans` | (augments) | per-request seq |",
            "| no flag here | x | y |",
            "",
            "| col | other |",  # a different table: not scanned
            "|---|---|",
            "| `--phantom` | z |",
            "",
            "| Flag | arg |",  # case-insensitive header
            "|---|---|",
            "| `--clients=N[,N...]` | sweep |",
        ]
    )
    rows = list(flag_table_rows(md))
    assert [ln for ln, _ in rows] == [3, 4, 5, 13], rows
    flags_by_row = [FLAG_RE.findall(cell) for _, cell in rows]
    assert flags_by_row == [["--trace"], ["--spans"], [], ["--clients"]]

    # End-to-end: rows with unknown or missing flags are violations under
    # the same logic main() applies.
    allowed = {"--trace", "--clients"}
    bad = []
    for ln, cell in flag_table_rows(md):
        row_flags = FLAG_RE.findall(cell)
        if not row_flags:
            bad.append((ln, "missing"))
        bad.extend((ln, f) for f in row_flags if f not in allowed)
    assert bad == [(4, "--spans"), (5, "missing")], bad

    print("docs_check: self-test OK")
    return 0


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--repo")
    ap.add_argument("--help-from", action="append", default=[])
    ap.add_argument(
        "--self-test", action="store_true", help="run built-in checks and exit"
    )
    args = ap.parse_args()

    if args.self_test:
        return self_test()
    if not args.repo:
        ap.error("--repo is required (or --self-test)")

    allowed = help_flags(args.help_from) | TOOLCHAIN_FLAGS
    errors = []

    for md in markdown_files(args.repo):
        rel = os.path.relpath(md, args.repo)
        text = open(md, "r", encoding="utf-8").read()

        for m in LINK_RE.finditer(text):
            target = m.group(1)
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            resolved = os.path.normpath(os.path.join(os.path.dirname(md), path))
            if not os.path.exists(resolved):
                errors.append(f"{rel}: broken link -> {target}")

        if args.help_from:
            for flag in sorted(set(FLAG_RE.findall(text))):
                if flag not in allowed:
                    errors.append(f"{rel}: flag {flag} not in any --help output")
            for ln, cell in flag_table_rows(text):
                row_flags = FLAG_RE.findall(cell)
                if not row_flags:
                    errors.append(
                        f"{rel}:{ln}: flag-table row without a --flag: {cell!r}"
                    )
                for flag in row_flags:
                    if flag not in allowed:
                        errors.append(
                            f"{rel}:{ln}: flag-table row documents {flag}, "
                            "which no --help prints"
                        )

    if errors:
        for e in errors:
            print(f"docs_check: {e}", file=sys.stderr)
        print(f"docs_check: FAIL ({len(errors)} problems)", file=sys.stderr)
        return 1
    print("docs_check: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
