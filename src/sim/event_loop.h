// Deterministic discrete-event loop.
//
// All simulated activity — NIC engines, DMA transfers, CPU work, client
// think time — is expressed as coroutines (see task.h) that suspend on this
// loop. Events fire in (time, insertion-order) order, so runs are exactly
// reproducible: same seed, same trace.
#ifndef SRC_SIM_EVENT_LOOP_H_
#define SRC_SIM_EVENT_LOOP_H_

#include <coroutine>
#include <functional>
#include <queue>
#include <vector>

#include "src/common/logging.h"
#include "src/common/units.h"

namespace scalerpc::sim {

using scalerpc::Nanos;

class EventLoop {
 public:
  EventLoop() = default;
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  Nanos now() const { return now_; }

  // Schedules a coroutine resume at absolute time `at` (must be >= now).
  void schedule_at(Nanos at, std::coroutine_handle<> h);
  // Schedules a coroutine resume `delay` ns from now.
  void schedule_in(Nanos delay, std::coroutine_handle<> h) {
    schedule_at(now_ + delay, h);
  }

  // Schedules a plain callback. Used sparingly (completion hooks, watchers).
  void call_at(Nanos at, std::function<void()> fn);
  void call_in(Nanos delay, std::function<void()> fn) { call_at(now_ + delay, std::move(fn)); }

  // Runs a single event. Returns false when the queue is empty.
  bool step();

  // Runs until the queue drains.
  void run();

  // Runs until simulated time reaches `t` (events at exactly `t` included)
  // or the queue drains. Advances now() to `t` if the queue drains early.
  void run_until(Nanos t);
  void run_for(Nanos d) { run_until(now_ + d); }

  size_t pending() const { return queue_.size(); }

  // Awaitable: suspends the calling coroutine for `d` simulated nanoseconds.
  // Usage: co_await loop.delay(usec(5));
  auto delay(Nanos d) {
    struct Awaiter {
      EventLoop* loop;
      Nanos d;
      bool await_ready() const noexcept { return d <= 0; }
      void await_suspend(std::coroutine_handle<> h) { loop->schedule_in(d, h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{this, d};
  }

  // Awaitable: yields to other events scheduled at the current time.
  auto yield() { return delay(0); }

 private:
  struct Item {
    Nanos at;
    uint64_t seq;
    std::coroutine_handle<> handle;   // exactly one of handle / fn is set
    std::function<void()> fn;
  };
  struct ItemCompare {
    bool operator()(const Item& a, const Item& b) const {
      if (a.at != b.at) {
        return a.at > b.at;
      }
      return a.seq > b.seq;
    }
  };

  Nanos now_ = 0;
  uint64_t next_seq_ = 0;
  std::priority_queue<Item, std::vector<Item>, ItemCompare> queue_;
};

}  // namespace scalerpc::sim

#endif  // SRC_SIM_EVENT_LOOP_H_
