// Deterministic discrete-event loop.
//
// All simulated activity — NIC engines, DMA transfers, CPU work, client
// think time — is expressed as coroutines (see task.h) that suspend on this
// loop. Events fire in (time, insertion-order) order, so runs are exactly
// reproducible: same seed, same trace.
//
// Internally the loop is a hierarchical timing wheel over a slab of fixed
// `Item` records: 6 levels of 256 slots at 2^(8*level) ns granularity cover
// 2^48 ns of lookahead with O(1) insertion; rarer far-future events spill
// into a small 4-ary heap and migrate into the wheel as the clock
// approaches. Nothing on the schedule/fire path allocates once the slab has
// grown to the peak number of in-flight events (see DESIGN.md, "Simulator
// performance"). Events tied at the same timestamp always end up in the
// same level-0 slot, kept sorted by insertion sequence, which preserves the
// exact (time, seq) trace of the original priority-queue implementation.
#ifndef SRC_SIM_EVENT_LOOP_H_
#define SRC_SIM_EVENT_LOOP_H_

#include <array>
#include <coroutine>
#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

#include "src/common/logging.h"
#include "src/common/units.h"

namespace scalerpc::sim {

using scalerpc::Nanos;

class EventLoop {
 public:
  // Allocation-free callback: a plain function pointer plus context. The
  // argument must stay valid until the event fires.
  using RawFn = void (*)(void*);

  EventLoop();
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  Nanos now() const { return now_; }

  // Schedules a coroutine resume at absolute time `at` (must be >= now).
  // Defined inline below: this and the raw call_at are the two per-event
  // entry points, called from every TU that hosts simulated actors.
  void schedule_at(Nanos at, std::coroutine_handle<> h);
  // Schedules a coroutine resume `delay` ns from now.
  void schedule_in(Nanos delay, std::coroutine_handle<> h) {
    schedule_at(now_ + delay, h);
  }

  // Schedules a plain callback. Used sparingly (completion hooks, watchers).
  void call_at(Nanos at, std::function<void()> fn);
  void call_in(Nanos delay, std::function<void()> fn) { call_at(now_ + delay, std::move(fn)); }

  // Allocation-free callback scheduling for hot paths (e.g. per-packet
  // switch delivery, the NIC state machines): no type erasure, no capture
  // storage.
  void call_at(Nanos at, RawFn fn, void* arg);
  void call_in(Nanos delay, RawFn fn, void* arg) { call_at(now_ + delay, fn, arg); }

  // Runs a single event. Returns false when the queue is empty.
  bool step() { return fire_next(kMaxTime); }

  // Runs until the queue drains.
  void run() {
    while (fire_next(kMaxTime)) {
    }
  }

  // Runs until simulated time reaches `t` (events at exactly `t` included)
  // or the queue drains. Advances now() to `t` if the queue drains early.
  void run_until(Nanos t);
  void run_for(Nanos d) { run_until(now_ + d); }

  size_t pending() const { return size_; }

  // Total events fired since construction (wall-clock speed metric).
  uint64_t events_processed() const { return events_processed_; }

  // Awaitable: suspends the calling coroutine for `d` simulated nanoseconds.
  // Usage: co_await loop.delay(usec(5));
  auto delay(Nanos d) {
    struct Awaiter {
      EventLoop* loop;
      Nanos d;
      bool await_ready() const noexcept { return d <= 0; }
      void await_suspend(std::coroutine_handle<> h) { loop->schedule_in(d, h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{this, d};
  }

  // Awaitable: yields to other events scheduled at the current time.
  auto yield() { return delay(0); }

 private:
  static constexpr int kLevelBits = 8;
  static constexpr int kSlotsPerLevel = 1 << kLevelBits;  // 256
  static constexpr int kLevels = 6;
  static constexpr Nanos kSpan = Nanos{1} << (kLevelBits * kLevels);  // 2^48 ns
  static constexpr uint32_t kNil = 0xffffffffu;
  static constexpr Nanos kMaxTime = std::numeric_limits<Nanos>::max();

  struct Item {
    Nanos at = 0;
    uint64_t seq = 0;
    std::coroutine_handle<> handle = nullptr;  // coroutine resume, or:
    RawFn raw_fn = nullptr;                    // raw callback, or:
    uint32_t fn_idx = kNil;                    // index into fns_
    void* raw_arg = nullptr;
    uint32_t next = kNil;  // intrusive slot / free list
  };
  struct Slot {
    uint32_t head = kNil;
    uint32_t tail = kNil;
  };

  uint32_t alloc_item();
  void free_item(uint32_t idx);
  void enqueue(uint32_t idx);          // places a pending item by (at, seq)
  void wheel_insert(uint32_t idx);     // wheel portion of enqueue
  void slot_append(int level, int slot, uint32_t idx);
  void slot_insert_sorted(int slot, uint32_t idx);  // level 0, seq order
  // Redistributes every item of wheel_[level][slot] into lower levels after
  // advancing cursor_ to the slot's bucket start.
  void cascade(int level, int slot, Nanos bucket_start);
  // Locates the earliest pending event; returns true iff its time is <=
  // `bound` (next_at_ is then its timestamp and it sits at the head of its
  // level-0 slot). Never advances cursor_ past `bound`.
  bool settle(Nanos bound);
  bool fire_next(Nanos bound);
  uint32_t pop_next_item();

  void overflow_push(uint32_t idx);
  uint32_t overflow_pop();
  bool overflow_less(uint32_t a, uint32_t b) const {
    const Item &ia = pool_[a], &ib = pool_[b];
    return ia.at != ib.at ? ia.at < ib.at : ia.seq < ib.seq;
  }

  Nanos now_ = 0;
  // Wheel reference time. Equals now_ between events; settle() may run it
  // ahead transiently (never past the next event time) while cascading.
  Nanos cursor_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t events_processed_ = 0;
  size_t size_ = 0;        // total pending (wheel + overflow)
  Nanos next_at_ = 0;      // valid after settle() returns true
  // Batch fast path: true iff the earliest pending event is known to sit at
  // the head of level-0 slot (next_at_ & 255) at time next_at_, so the next
  // fire can skip settle() entirely. Set after firing when the slot still
  // holds items: every item in a level-0 slot shares one timestamp, so a
  // same-timestamp run dispatches with one branch per event. Events newly
  // scheduled at now_ during the batch land in the same slot in seq order
  // and keep the claim true; an external schedule below next_at_ (only
  // possible between run_until() calls) clears it.
  bool hot_ = false;

  std::vector<Item> pool_;
  uint32_t free_head_ = kNil;

  std::array<std::array<Slot, kSlotsPerLevel>, kLevels> wheel_{};
  // Occupancy bitmap per level: bit s set iff wheel_[l][s] is non-empty.
  std::array<std::array<uint64_t, kSlotsPerLevel / 64>, kLevels> occ_{};
  // Items resident per level; lets settle() skip bitmap scans of empty
  // levels (outer levels are usually empty in steady state).
  std::array<uint32_t, kLevels> level_size_{};
  // Earliest-occupied-bucket memo per outer level (index 0 unused): the
  // absolute start time and slot of the level's next bucket, or kMaxTime
  // when the level is empty. Inserts keep it exact (a bucket start is
  // computable from the item's timestamp alone); only cascade() — which
  // empties the one bucket the memo points at — marks a level for lazy
  // rescan. settle() then reduces to comparing five cached values instead
  // of bitmap-scanning every occupied level on each non-batched fire.
  std::array<Nanos, kLevels> cand_start_{};
  std::array<int, kLevels> cand_slot_{};
  std::array<bool, kLevels> cand_valid_{};

  std::vector<uint32_t> overflow_;  // 4-ary heap of pool indices, (at, seq)

  // Type-erased callbacks live outside the POD slab; slots are recycled.
  std::vector<std::function<void()>> fns_;
  std::vector<uint32_t> fn_free_;
};

// ---- Inline schedule path -------------------------------------------------
// The whole insert chain (slab alloc -> wheel placement) lives in the header
// so the per-event schedule calls — made from every actor TU, a million-plus
// times per simulated second — compile down to straight-line code at the call
// site instead of three cross-TU calls.

inline uint32_t EventLoop::alloc_item() {
  if (free_head_ != kNil) {
    const uint32_t idx = free_head_;
    free_head_ = pool_[idx].next;
    return idx;
  }
  pool_.emplace_back();
  return static_cast<uint32_t>(pool_.size() - 1);
}

inline void EventLoop::slot_append(int level, int slot, uint32_t idx) {
  Slot& s = wheel_[static_cast<size_t>(level)][static_cast<size_t>(slot)];
  if (s.tail == kNil) {
    s.head = s.tail = idx;
  } else {
    pool_[s.tail].next = idx;
    s.tail = idx;
  }
}

inline void EventLoop::slot_insert_sorted(int slot, uint32_t idx) {
  // Every item in a level-0 slot carries the same timestamp, so ordering
  // within the slot is pure insertion-sequence order. Direct schedules
  // always carry the largest seq so far (O(1) append); only items cascading
  // down from outer levels or migrating from the overflow heap splice in.
  Slot& s = wheel_[0][static_cast<size_t>(slot)];
  if (s.tail == kNil) {
    s.head = s.tail = idx;
    return;
  }
  const uint64_t seq = pool_[idx].seq;
  if (pool_[s.tail].seq < seq) {
    pool_[s.tail].next = idx;
    s.tail = idx;
    return;
  }
  uint32_t prev = kNil;
  uint32_t cur = s.head;
  while (cur != kNil && pool_[cur].seq < seq) {
    prev = cur;
    cur = pool_[cur].next;
  }
  pool_[idx].next = cur;
  if (prev == kNil) {
    s.head = idx;
  } else {
    pool_[prev].next = idx;
  }
  if (cur == kNil) {
    s.tail = idx;
  }
}

inline void EventLoop::wheel_insert(uint32_t idx) {
  const Nanos at = pool_[idx].at;
  const Nanos delta = at - cursor_;
  const int level = delta == 0 ? 0 : (63 - __builtin_clzll(static_cast<uint64_t>(delta))) >> 3;
  const int slot =
      static_cast<int>((static_cast<uint64_t>(at) >> (kLevelBits * level)) & 255);
  if (level == 0) {
    slot_insert_sorted(slot, idx);
  } else {
    slot_append(level, slot, idx);
    // Keep the earliest-bucket memo exact: a new item can only move the
    // level's candidate earlier. (When the memo is stale — cascade() just
    // emptied the bucket it pointed at — settle() rescans before use, so
    // skipping the update is safe.)
    const Nanos bstart = static_cast<Nanos>(
        (static_cast<uint64_t>(at) >> (kLevelBits * level)) << (kLevelBits * level));
    if (cand_valid_[static_cast<size_t>(level)] &&
        bstart < cand_start_[static_cast<size_t>(level)]) {
      cand_start_[static_cast<size_t>(level)] = bstart;
      cand_slot_[static_cast<size_t>(level)] = slot;
    }
  }
  level_size_[static_cast<size_t>(level)]++;
  occ_[static_cast<size_t>(level)][static_cast<size_t>(slot >> 6)] |= uint64_t{1}
                                                                      << (slot & 63);
}

inline void EventLoop::enqueue(uint32_t idx) {
  // While firing a batch every new event satisfies at >= now_ == next_at_,
  // so this branch only trips for schedules placed between run_until()
  // calls that undercut the remembered next event.
  if (hot_ && pool_[idx].at < next_at_) {
    hot_ = false;
  }
  if (pool_[idx].at - cursor_ >= kSpan) {
    overflow_push(idx);
  } else {
    wheel_insert(idx);
  }
}

inline void EventLoop::schedule_at(Nanos at, std::coroutine_handle<> h) {
  SCALERPC_CHECK(at >= now_);
  const uint32_t idx = alloc_item();
  Item& it = pool_[idx];
  it.at = at;
  it.seq = next_seq_++;
  it.handle = h;
  it.next = kNil;
  size_++;
  enqueue(idx);
}

inline void EventLoop::call_at(Nanos at, RawFn fn, void* arg) {
  SCALERPC_CHECK(at >= now_);
  const uint32_t idx = alloc_item();
  Item& it = pool_[idx];
  it.at = at;
  it.seq = next_seq_++;
  it.raw_fn = fn;
  it.raw_arg = arg;
  it.next = kNil;
  size_++;
  enqueue(idx);
}

}  // namespace scalerpc::sim

#endif  // SRC_SIM_EVENT_LOOP_H_
