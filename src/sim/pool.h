// Size-class freelists for hot-path transients.
//
// Each simulation instance is single-threaded and creates short-lived
// objects at a per-simulated-message rate: coroutine frames (one or more per
// message) and packet payload buffers (one per wire hop). Routing those
// through malloc made the allocator the largest hidden cost on the hot path.
// BytePool recycles blocks through per-size freelists instead: after a brief
// warmup every alloc/release is a two-instruction freelist pop/push and the
// steady state performs zero heap allocations (verified by
// tests/simrdma/hotpath_alloc_test.cc).
//
// The freelists are thread_local so independent simulations can run on
// concurrent threads (the parallel sweep engine, src/harness/sweep.h)
// without sharing any mutable state: a block allocated on a thread is
// released back to that thread's freelist, never another's. A simulation
// must therefore live entirely on one thread — Testbed construction, the
// event loop, and destruction — which is exactly how sweep workers run
// tasks. Pool reuse only changes which heap addresses back a transient,
// never simulated behavior, so per-thread pools keep runs byte-identical
// to serial execution (tests/sim/pool_threading_test.cc).
//
// Blocks are kept for the life of the thread (drain_thread_cache() frees
// them, e.g. when a sweep worker exits); the working set is bounded by the
// peak number of live transients, which the simulation bounds itself (NIC
// engine counts, in-flight message windows).
#ifndef SRC_SIM_POOL_H_
#define SRC_SIM_POOL_H_

#include <cstddef>
#include <cstdint>
#include <new>

namespace scalerpc::sim {

struct BytePool {
  static constexpr size_t kGranuleShift = 6;  // 64-byte size classes
  static constexpr size_t kBuckets = 65;      // freelists cover up to 4 KiB
  static inline thread_local void* free_lists[kBuckets] = {};
  // This thread's blocks handed out and not yet released (pooled and
  // oversize alike). Balances back to its pre-run value once every
  // transient of a simulation has been destroyed; the threading test uses
  // it to prove no block crossed threads.
  static inline thread_local uint64_t outstanding_blocks = 0;

  static constexpr size_t bucket_of(size_t n) {
    return (n + (size_t{1} << kGranuleShift) - 1) >> kGranuleShift;
  }

  // Rounded-up capacity actually backing an alloc(n) block. The caller must
  // pass the same value (or the original n) to release().
  static constexpr size_t capacity_of(size_t n) {
    const size_t b = bucket_of(n);
    return b >= kBuckets ? n : b << kGranuleShift;
  }

  static void* alloc(size_t n) {
    outstanding_blocks++;
    const size_t b = bucket_of(n);
    if (b >= kBuckets) {
      return ::operator new(n);  // oversize: fall through to the heap
    }
    void* p = free_lists[b];
    if (p != nullptr) {
      free_lists[b] = *static_cast<void**>(p);
      return p;
    }
    return ::operator new(b << kGranuleShift);
  }

  static void release(void* p, size_t n) {
    outstanding_blocks--;
    const size_t b = bucket_of(n);
    if (b >= kBuckets) {
      ::operator delete(p);
      return;
    }
    *static_cast<void**>(p) = free_lists[b];
    free_lists[b] = p;
  }

  // Returns every cached block of the calling thread to the heap. Only safe
  // once no transient allocated on this thread is still alive; sweep
  // workers call it after their last task so short-lived threads don't
  // strand their caches.
  static void drain_thread_cache() {
    for (size_t b = 0; b < kBuckets; ++b) {
      void* p = free_lists[b];
      while (p != nullptr) {
        void* next = *static_cast<void**>(p);
        ::operator delete(p);
        p = next;
      }
      free_lists[b] = nullptr;
    }
  }
};

// Minimal allocator adapter so std::vector hot-path transients (RPC
// request/response buffers, see rpc::Bytes) draw from the same freelists.
// Stateless: all instances share the calling thread's BytePool.
template <typename T>
struct PoolAllocator {
  using value_type = T;
  PoolAllocator() = default;
  template <typename U>
  PoolAllocator(const PoolAllocator<U>&) {}
  T* allocate(size_t n) {
    return static_cast<T*>(BytePool::alloc(n * sizeof(T)));
  }
  void deallocate(T* p, size_t n) { BytePool::release(p, n * sizeof(T)); }
  friend bool operator==(const PoolAllocator&, const PoolAllocator&) {
    return true;
  }
};

// A move-only byte buffer backed by BytePool. Replaces std::vector<uint8_t>
// for packet payloads. resize() does NOT zero-fill grown bytes — every user
// fills the buffer completely right after sizing it (memory loads, memcpy).
class PooledBytes {
 public:
  PooledBytes() = default;
  PooledBytes(PooledBytes&& other) noexcept
      : data_(other.data_), size_(other.size_), cap_(other.cap_) {
    other.data_ = nullptr;
    other.size_ = 0;
    other.cap_ = 0;
  }
  PooledBytes& operator=(PooledBytes&& other) noexcept {
    if (this != &other) {
      reset();
      data_ = other.data_;
      size_ = other.size_;
      cap_ = other.cap_;
      other.data_ = nullptr;
      other.size_ = 0;
      other.cap_ = 0;
    }
    return *this;
  }
  PooledBytes(const PooledBytes&) = delete;
  PooledBytes& operator=(const PooledBytes&) = delete;
  ~PooledBytes() { reset(); }

  void resize(size_t n) {
    if (n > cap_) {
      reset();
      data_ = static_cast<uint8_t*>(BytePool::alloc(n));
      cap_ = BytePool::capacity_of(n);
    }
    size_ = n;
  }

  uint8_t* data() { return data_; }
  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  // Contiguous-range interface so std::span converts from a PooledBytes.
  uint8_t* begin() { return data_; }
  uint8_t* end() { return data_ + size_; }
  const uint8_t* begin() const { return data_; }
  const uint8_t* end() const { return data_ + size_; }

 private:
  void reset() {
    if (data_ != nullptr) {
      BytePool::release(data_, cap_);
      data_ = nullptr;
    }
    size_ = 0;
    cap_ = 0;
  }

  uint8_t* data_ = nullptr;
  size_t size_ = 0;
  size_t cap_ = 0;  // rounded-up capacity, the value release() needs
};

}  // namespace scalerpc::sim

#endif  // SRC_SIM_POOL_H_
