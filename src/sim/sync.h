// Synchronization primitives for simulated actors.
//
// All wakeups are funneled through the event loop at the current simulated
// time (never resumed inline), which keeps execution order deterministic
// regardless of who calls set()/release().
#ifndef SRC_SIM_SYNC_H_
#define SRC_SIM_SYNC_H_

#include <coroutine>
#include <cstdint>
#include <deque>

#include "src/sim/event_loop.h"
#include "src/sim/task.h"

namespace scalerpc::sim {

// FIFO parking lot for suspended coroutines.
class WaitQueue {
 public:
  explicit WaitQueue(EventLoop& loop) : loop_(loop) {}

  void park(std::coroutine_handle<> h) { waiters_.push_back(h); }

  // Wakes the oldest waiter (if any). Returns true if one was woken.
  bool wake_one() {
    if (waiters_.empty()) {
      return false;
    }
    loop_.schedule_in(0, waiters_.front());
    waiters_.pop_front();
    return true;
  }

  // Wakes all waiters; returns the number woken.
  size_t wake_all() {
    const size_t n = waiters_.size();
    for (auto h : waiters_) {
      loop_.schedule_in(0, h);
    }
    waiters_.clear();
    return n;
  }

  bool empty() const { return waiters_.empty(); }
  size_t size() const { return waiters_.size(); }
  EventLoop& loop() { return loop_; }

 private:
  EventLoop& loop_;
  std::deque<std::coroutine_handle<>> waiters_;
};

// Manual-reset event: wait() is a no-op while set; set() wakes everyone.
class Event {
 public:
  explicit Event(EventLoop& loop) : waiters_(loop) {}

  void set() {
    set_ = true;
    waiters_.wake_all();
  }
  void reset() { set_ = false; }
  bool is_set() const { return set_; }

  auto wait() {
    struct Awaiter {
      Event* event;
      bool await_ready() const noexcept { return event->set_; }
      void await_suspend(std::coroutine_handle<> h) { event->waiters_.park(h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

 private:
  bool set_ = false;
  WaitQueue waiters_;
};

// Auto-reset notification: notify() wakes exactly one waiter, or — if no
// waiter is parked — leaves a single sticky token so the next wait() returns
// immediately. The classic "kick a polling worker" primitive.
class Notification {
 public:
  explicit Notification(EventLoop& loop) : waiters_(loop) {}

  void notify() {
    if (!waiters_.wake_one()) {
      pending_ = true;
    }
  }

  auto wait() {
    struct Awaiter {
      Notification* n;
      bool await_ready() const noexcept {
        if (n->pending_) {
          n->pending_ = false;
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) { n->waiters_.park(h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

 private:
  bool pending_ = false;
  WaitQueue waiters_;
};

// Counting semaphore with FIFO fairness. release() hands the permit
// directly to the oldest waiter so barging cannot starve it.
class Semaphore {
 public:
  Semaphore(EventLoop& loop, int64_t permits) : permits_(permits), waiters_(loop) {}

  auto acquire() {
    struct Awaiter {
      Semaphore* sem;
      bool await_ready() const noexcept {
        if (sem->permits_ > 0) {
          sem->permits_--;
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) { sem->waiters_.park(h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

  void release() {
    if (!waiters_.wake_one()) {
      permits_++;
    }
  }

  int64_t available() const { return permits_; }
  size_t queued() const { return waiters_.size(); }

 private:
  int64_t permits_;
  WaitQueue waiters_;
};

// A k-server FIFO queueing resource with caller-supplied service times.
// Models links and NIC processing pipelines: acquire a unit, hold it for the
// service duration, release.
class FifoResource {
 public:
  FifoResource(EventLoop& loop, int64_t units) : loop_(loop), sem_(loop, units) {}

  // Coroutine occupying one unit for `service` ns.
  Task<void> use(Nanos service) {
    co_await sem_.acquire();
    co_await loop_.delay(service);
    sem_.release();
  }

  Semaphore& semaphore() { return sem_; }
  EventLoop& loop() { return loop_; }

 private:
  EventLoop& loop_;
  Semaphore sem_;
};

}  // namespace scalerpc::sim

#endif  // SRC_SIM_SYNC_H_
