// Synchronization primitives for simulated actors.
//
// All wakeups are funneled through the event loop at the current simulated
// time (never resumed inline), which keeps execution order deterministic
// regardless of who calls set()/release().
#ifndef SRC_SIM_SYNC_H_
#define SRC_SIM_SYNC_H_

#include <coroutine>
#include <cstdint>
#include <vector>

#include "src/sim/event_loop.h"
#include "src/sim/task.h"

namespace scalerpc::sim {

// FIFO parking lot for suspended continuations. A waiter is either a
// coroutine handle (the workload/client API) or a raw (fn, arg) callback
// (the NIC data plane's state machines, see src/simrdma/nic.cc). Both are
// woken the same way — one loop event at the current instant — so mixing
// them in one queue preserves the exact (time, insertion-seq) wakeup order.
//
// Waiters live in a power-of-two ring, not a std::deque: a deque cycled
// through push_back/pop_front allocates a fresh chunk every chunkful of
// pushes even at constant occupancy, so it can never satisfy the simulator's
// steady-state allocation-free rule. The ring only grows when occupancy
// exceeds capacity, i.e. a bounded number of times over a run.
class WaitQueue {
 public:
  explicit WaitQueue(EventLoop& loop) : loop_(loop) {}

  void park(std::coroutine_handle<> h) { push(Waiter{h, nullptr, nullptr}); }
  void park(EventLoop::RawFn fn, void* arg) {
    push(Waiter{nullptr, fn, arg});
  }

  // Wakes the oldest waiter (if any). Returns true if one was woken.
  bool wake_one() {
    if (count_ == 0) {
      return false;
    }
    wake(ring_[head_]);
    head_ = (head_ + 1) & (ring_.size() - 1);
    count_--;
    return true;
  }

  // Wakes all waiters; returns the number woken.
  size_t wake_all() {
    const size_t n = count_;
    for (size_t i = 0; i < n; ++i) {
      wake(ring_[(head_ + i) & (ring_.size() - 1)]);
    }
    head_ = 0;
    count_ = 0;
    return n;
  }

  bool empty() const { return count_ == 0; }
  size_t size() const { return count_; }
  EventLoop& loop() { return loop_; }

 private:
  struct Waiter {
    std::coroutine_handle<> h;
    EventLoop::RawFn fn;
    void* arg;
  };

  void push(const Waiter& w) {
    if (count_ == ring_.size()) {
      grow();
    }
    ring_[(head_ + count_) & (ring_.size() - 1)] = w;
    count_++;
  }

  // Doubles the ring (min 8 slots), re-linearizing so the oldest waiter
  // lands at index 0.
  void grow() {
    std::vector<Waiter> next(ring_.empty() ? 8 : ring_.size() * 2);
    for (size_t i = 0; i < count_; ++i) {
      next[i] = ring_[(head_ + i) & (ring_.size() - 1)];
    }
    ring_ = std::move(next);
    head_ = 0;
  }

  void wake(const Waiter& w) {
    if (w.fn != nullptr) {
      loop_.call_in(0, w.fn, w.arg);
    } else {
      loop_.schedule_in(0, w.h);
    }
  }

  EventLoop& loop_;
  std::vector<Waiter> ring_;
  size_t head_ = 0;
  size_t count_ = 0;
};

// Manual-reset event: wait() is a no-op while set; set() wakes everyone.
class Event {
 public:
  explicit Event(EventLoop& loop) : waiters_(loop) {}

  void set() {
    set_ = true;
    waiters_.wake_all();
  }
  void reset() { set_ = false; }
  bool is_set() const { return set_; }

  auto wait() {
    struct Awaiter {
      Event* event;
      bool await_ready() const noexcept { return event->set_; }
      void await_suspend(std::coroutine_handle<> h) { event->waiters_.park(h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

 private:
  bool set_ = false;
  WaitQueue waiters_;
};

// Auto-reset notification: notify() wakes exactly one waiter, or — if no
// waiter is parked — leaves a single sticky token so the next wait() returns
// immediately. The classic "kick a polling worker" primitive.
class Notification {
 public:
  explicit Notification(EventLoop& loop) : waiters_(loop) {}

  void notify() {
    if (!waiters_.wake_one()) {
      pending_ = true;
    }
  }

  auto wait() {
    struct Awaiter {
      Notification* n;
      bool await_ready() const noexcept {
        if (n->pending_) {
          n->pending_ = false;
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) { n->waiters_.park(h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

 private:
  bool pending_ = false;
  WaitQueue waiters_;
};

// Counting semaphore with FIFO fairness. release() hands the permit
// directly to the oldest waiter so barging cannot starve it.
class Semaphore {
 public:
  Semaphore(EventLoop& loop, int64_t permits) : permits_(permits), waiters_(loop) {}

  auto acquire() {
    struct Awaiter {
      Semaphore* sem;
      bool await_ready() const noexcept {
        if (sem->permits_ > 0) {
          sem->permits_--;
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) { sem->waiters_.park(h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

  // Callback form of acquire() for frame-free state machines. Returns true
  // when the permit was taken inline (the caller continues synchronously —
  // exactly the coroutine awaiter's await_ready fast path, no loop event);
  // otherwise parks (fn, arg) and returns false — on release() the grant is
  // handed over through one loop event at the then-current time, just like
  // a parked coroutine resume.
  bool acquire(EventLoop::RawFn fn, void* arg) {
    if (permits_ > 0) {
      permits_--;
      return true;
    }
    waiters_.park(fn, arg);
    return false;
  }

  void release() {
    if (!waiters_.wake_one()) {
      permits_++;
    }
  }

  int64_t available() const { return permits_; }
  size_t queued() const { return waiters_.size(); }

 private:
  int64_t permits_;
  WaitQueue waiters_;
};

// A k-server FIFO queueing resource with caller-supplied service times.
// Models links and NIC processing pipelines: acquire a unit, hold it for the
// service duration, release.
class FifoResource {
 public:
  FifoResource(EventLoop& loop, int64_t units) : loop_(loop), sem_(loop, units) {}

  // Coroutine occupying one unit for `service` ns.
  Task<void> use(Nanos service) {
    co_await sem_.acquire();
    co_await loop_.delay(service);
    sem_.release();
  }

  // Callback form of use() for frame-free state machines. The caller embeds
  // a Ticket (it must stay valid until `done` fires) and gets the identical
  // event sequence as the coroutine: acquire (inline when a unit is free,
  // otherwise one grant event), one service-delay event, release, then
  // done(arg) invoked synchronously — as the coroutine's final_suspend
  // resumes its awaiter without a loop round-trip.
  struct Ticket {
    FifoResource* res = nullptr;
    Nanos service = 0;
    EventLoop::RawFn done = nullptr;
    void* arg = nullptr;
  };

  void use(Ticket* t) {
    t->res = this;
    if (sem_.acquire(&FifoResource::on_grant, t)) {
      on_grant(t);
    }
  }

  Semaphore& semaphore() { return sem_; }
  EventLoop& loop() { return loop_; }

 private:
  static void on_grant(void* arg) {
    auto* t = static_cast<Ticket*>(arg);
    if (t->service <= 0) {
      on_held(arg);
      return;
    }
    t->res->loop_.call_in(t->service, &FifoResource::on_held, t);
  }
  static void on_held(void* arg) {
    auto* t = static_cast<Ticket*>(arg);
    t->res->sem_.release();
    t->done(t->arg);
  }

  EventLoop& loop_;
  Semaphore sem_;
};

}  // namespace scalerpc::sim

#endif  // SRC_SIM_SYNC_H_
