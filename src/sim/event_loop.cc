#include "src/sim/event_loop.h"

#include "src/trace/trace.h"

namespace scalerpc::sim {
namespace {

// First occupied slot in cyclic order from `start`: returns the distance
// d in [0, 256) such that slot = (start + d) & 255, or -1 if the level is
// empty. Touches at most five 64-bit words.
int scan_cyclic(const std::array<uint64_t, 4>& occ, int start) {
  const int sw = start >> 6;
  const int sb = start & 63;
  for (int i = 0; i <= 4; ++i) {
    const int w = (sw + i) & 3;
    uint64_t word = occ[static_cast<size_t>(w)];
    if (i == 0) {
      word &= ~uint64_t{0} << sb;
    } else if (i == 4) {
      word &= sb != 0 ? (uint64_t{1} << sb) - 1 : uint64_t{0};
    }
    if (word != 0) {
      const int slot = (w << 6) | __builtin_ctzll(word);
      return (slot - start) & 255;
    }
  }
  return -1;
}

}  // namespace

EventLoop::EventLoop() {
  cand_start_.fill(kMaxTime);
  cand_slot_.fill(-1);
  cand_valid_.fill(true);
  pool_.reserve(1024);
  overflow_.reserve(16);
  fns_.reserve(64);
  fn_free_.reserve(64);
  // Publish this loop's clock to the (thread-local) trace layer so hooks in
  // the NIC/LLC models can timestamp events without a loop reference. A
  // simulation lives entirely on one thread, so the newest loop on this
  // thread is the active one.
  trace::bind_clock(&now_);
}

EventLoop::~EventLoop() { trace::unbind_clock(&now_); }

void EventLoop::free_item(uint32_t idx) {
  Item& it = pool_[idx];
  it.handle = nullptr;
  it.raw_fn = nullptr;
  it.raw_arg = nullptr;
  it.fn_idx = kNil;
  it.next = free_head_;
  free_head_ = idx;
}

void EventLoop::call_at(Nanos at, std::function<void()> fn) {
  SCALERPC_CHECK(at >= now_);
  uint32_t fslot;
  if (!fn_free_.empty()) {
    fslot = fn_free_.back();
    fn_free_.pop_back();
    fns_[fslot] = std::move(fn);
  } else {
    fslot = static_cast<uint32_t>(fns_.size());
    fns_.push_back(std::move(fn));
  }
  const uint32_t idx = alloc_item();
  Item& it = pool_[idx];
  it.at = at;
  it.seq = next_seq_++;
  it.fn_idx = fslot;
  it.next = kNil;
  size_++;
  enqueue(idx);
}

void EventLoop::cascade(int level, int slot, Nanos bucket_start) {
  cursor_ = bucket_start;
  Slot& s = wheel_[static_cast<size_t>(level)][static_cast<size_t>(slot)];
  uint32_t idx = s.head;
  s.head = s.tail = kNil;
  occ_[static_cast<size_t>(level)][static_cast<size_t>(slot >> 6)] &=
      ~(uint64_t{1} << (slot & 63));
  while (idx != kNil) {
    const uint32_t nxt = pool_[idx].next;
    pool_[idx].next = kNil;
    level_size_[static_cast<size_t>(level)]--;
    wheel_insert(idx);
    idx = nxt;
  }
  // The flattened bucket is exactly the one the memo pointed at; the level's
  // next bucket is unknown until the lazy rescan in settle(). (Items only
  // ever leave an outer level through this function, so this is the sole
  // invalidation point.)
  if (level_size_[static_cast<size_t>(level)] == 0) {
    cand_start_[static_cast<size_t>(level)] = kMaxTime;
    cand_slot_[static_cast<size_t>(level)] = -1;
    cand_valid_[static_cast<size_t>(level)] = true;
  } else {
    cand_valid_[static_cast<size_t>(level)] = false;
  }
}

bool EventLoop::settle(Nanos bound) {
  if (size_ == 0) {
    return false;
  }
  for (;;) {
    // Migrate overflow events that have come within the wheel horizon. If
    // only overflow events remain, jump the cursor straight to the earliest.
    while (!overflow_.empty()) {
      const Nanos top_at = pool_[overflow_[0]].at;
      if (top_at - cursor_ < kSpan) {
        wheel_insert(overflow_pop());
        continue;
      }
      if (size_ == overflow_.size()) {
        if (top_at > bound) {
          return false;
        }
        cursor_ = top_at;
        continue;
      }
      break;
    }

    Nanos t0 = kMaxTime;
    if (level_size_[0] != 0) {
      const int s0 = static_cast<int>(static_cast<uint64_t>(cursor_) & 255);
      const int d = scan_cyclic(occ_[0], s0);
      if (d >= 0) {
        t0 = cursor_ + d;
      }
    }

    // Earliest non-empty bucket per outer level, from the memo. A stale
    // memo (its bucket was just cascaded away) is rebuilt here by scanning
    // the occupancy bitmap, starting one past the cursor's own slot: every
    // bucket is flattened the moment the cursor enters it (see below), so
    // an occupied cursor slot at level l can only mean the bucket one full
    // wheel revolution ahead.
    Nanos bstart = kMaxTime;
    for (int l = 1; l < kLevels; ++l) {
      if (level_size_[static_cast<size_t>(l)] == 0) {
        continue;
      }
      if (!cand_valid_[static_cast<size_t>(l)]) {
        const uint64_t cl = static_cast<uint64_t>(cursor_) >> (kLevelBits * l);
        const int sl = static_cast<int>(cl & 255);
        // The level is non-empty and all its buckets sit strictly ahead of
        // the cursor's slot in cyclic order, so the scan always hits.
        const int d = scan_cyclic(occ_[static_cast<size_t>(l)], (sl + 1) & 255);
        SCALERPC_CHECK(d >= 0);
        cand_start_[static_cast<size_t>(l)] =
            static_cast<Nanos>((cl + static_cast<uint64_t>(d) + 1) << (kLevelBits * l));
        cand_slot_[static_cast<size_t>(l)] = (sl + 1 + d) & 255;
        cand_valid_[static_cast<size_t>(l)] = true;
      }
      if (cand_start_[static_cast<size_t>(l)] < bstart) {
        bstart = cand_start_[static_cast<size_t>(l)];
      }
    }

    // A bucket starting at or before the earliest level-0 event may hold
    // events that fire sooner (or tie on time with a smaller seq): it must
    // be flattened before the next event is known. Several levels can have
    // buckets starting at the same instant (a wide bucket's range opens
    // exactly where a narrower one does); all of them must be flattened in
    // this step — otherwise the cursor would come to rest at the start of a
    // still-occupied bucket whose slot index equals the cursor's own
    // residue, which the sl+1 scan above would misread as a bucket one
    // revolution ahead. Widest level first, so its items trickle down
    // before narrower tied buckets are themselves flattened.
    if (bstart != kMaxTime && bstart <= t0) {
      if (bstart > bound) {
        return false;
      }
      for (int l = kLevels - 1; l >= 1; --l) {
        // Items trickling down from a wider tied bucket land strictly after
        // bstart at every narrower level, so they can never create a new tie
        // mid-loop: matching against the live memo here is equivalent to the
        // snapshot the pre-memo code took.
        if (cand_valid_[static_cast<size_t>(l)] &&
            cand_start_[static_cast<size_t>(l)] == bstart) {
          cascade(l, cand_slot_[static_cast<size_t>(l)], bstart);
        }
      }
      continue;
    }
    SCALERPC_CHECK(t0 != kMaxTime);
    if (t0 > bound) {
      return false;
    }
    next_at_ = t0;
    return true;
  }
}

// Detaches the head of the level-0 slot holding the next event (settle()
// must have succeeded, or hot_ must hold). Returns the pool index.
uint32_t EventLoop::pop_next_item() {
  const int slot = static_cast<int>(static_cast<uint64_t>(next_at_) & 255);
  Slot& s = wheel_[0][static_cast<size_t>(slot)];
  const uint32_t idx = s.head;
  s.head = pool_[idx].next;
  if (s.head == kNil) {
    s.tail = kNil;
    occ_[0][static_cast<size_t>(slot >> 6)] &= ~(uint64_t{1} << (slot & 63));
  }
  level_size_[0]--;
  size_--;
  return idx;
}

bool EventLoop::fire_next(Nanos bound) {
  if (hot_) {
    if (next_at_ > bound) {
      return false;
    }
  } else if (!settle(bound)) {
    return false;
  }
  const uint32_t idx = pop_next_item();
  const Item it = pool_[idx];
  free_item(idx);
  now_ = cursor_ = it.at;
  events_processed_++;
  // Coarse scheduler telemetry: queue occupancy every 4096 fired events.
  // The stride check keeps the tracing-off cost to one predicted branch on
  // the simulator's hottest path.
  if ((events_processed_ & 4095) == 0) {
    if (trace::Tracer* t = trace::tracer(trace::kSched)) {
      t->counter(trace::kSched, "sim.queue", now_, "pending",
                 static_cast<uint64_t>(size_), "fired", events_processed_);
    }
  }
  // Raw callbacks first: under the state-machine NIC engine they are the
  // bulk of all events.
  if (it.raw_fn != nullptr) {
    it.raw_fn(it.raw_arg);
  } else if (it.handle) {
    it.handle.resume();
  } else {
    auto fn = std::move(fns_[it.fn_idx]);
    fns_[it.fn_idx] = nullptr;
    fn_free_.push_back(it.fn_idx);
    fn();
  }
  // Re-read the slot after the callback: anything still (or newly) queued
  // there fires at exactly next_at_ — every item in a level-0 slot shares
  // one timestamp — so the next fire_next() can skip settle().
  hot_ = wheel_[0][static_cast<size_t>(static_cast<uint64_t>(it.at) & 255)].head != kNil;
  return true;
}

void EventLoop::run_until(Nanos t) {
  while (fire_next(t)) {
  }
  if (now_ < t) {
    now_ = t;
  }
  if (cursor_ < now_) {
    cursor_ = now_;
  }
}

void EventLoop::overflow_push(uint32_t idx) {
  overflow_.push_back(idx);
  size_t i = overflow_.size() - 1;
  while (i > 0) {
    const size_t p = (i - 1) / 4;
    if (!overflow_less(overflow_[i], overflow_[p])) {
      break;
    }
    std::swap(overflow_[i], overflow_[p]);
    i = p;
  }
}

uint32_t EventLoop::overflow_pop() {
  const uint32_t top = overflow_[0];
  overflow_[0] = overflow_.back();
  overflow_.pop_back();
  const size_t n = overflow_.size();
  size_t i = 0;
  for (;;) {
    size_t best = i;
    for (size_t c = 4 * i + 1; c <= 4 * i + 4 && c < n; ++c) {
      if (overflow_less(overflow_[c], overflow_[best])) {
        best = c;
      }
    }
    if (best == i) {
      break;
    }
    std::swap(overflow_[i], overflow_[best]);
    i = best;
  }
  return top;
}

}  // namespace scalerpc::sim
