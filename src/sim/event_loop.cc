#include "src/sim/event_loop.h"

namespace scalerpc::sim {

void EventLoop::schedule_at(Nanos at, std::coroutine_handle<> h) {
  SCALERPC_CHECK(at >= now_);
  queue_.push(Item{at, next_seq_++, h, nullptr});
}

void EventLoop::call_at(Nanos at, std::function<void()> fn) {
  SCALERPC_CHECK(at >= now_);
  queue_.push(Item{at, next_seq_++, nullptr, std::move(fn)});
}

bool EventLoop::step() {
  if (queue_.empty()) {
    return false;
  }
  Item item = queue_.top();
  queue_.pop();
  now_ = item.at;
  if (item.handle) {
    item.handle.resume();
  } else {
    item.fn();
  }
  return true;
}

void EventLoop::run() {
  while (step()) {
  }
}

void EventLoop::run_until(Nanos t) {
  while (!queue_.empty() && queue_.top().at <= t) {
    step();
  }
  if (now_ < t) {
    now_ = t;
  }
}

}  // namespace scalerpc::sim
