// Coroutine task type for simulated actors.
//
// Task<T> is a lazy coroutine: created suspended, started either by being
// co_awaited (structured, returns T to the awaiter) or by
// EventLoop-independent spawn() (detached fire-and-forget actor whose frame
// self-destroys on completion).
//
// Exceptions are not used inside the simulator; an escaping exception
// terminates (simulator invariants use SCALERPC_CHECK instead).
#ifndef SRC_SIM_TASK_H_
#define SRC_SIM_TASK_H_

#include <coroutine>
#include <optional>
#include <utility>

#include "src/common/logging.h"
#include "src/sim/event_loop.h"
#include "src/sim/pool.h"

namespace scalerpc::sim {

template <typename T>
class Task;

namespace task_detail {

struct PromiseBase {
  std::coroutine_handle<> continuation;
  bool detached = false;

  // Coroutine frames (one or more per simulated message) are recycled
  // through BytePool. The sized delete form is required so release() can
  // find the right freelist without a block header.
  static void* operator new(std::size_t n) { return BytePool::alloc(n); }
  static void operator delete(void* p, std::size_t n) { BytePool::release(p, n); }

  std::suspend_always initial_suspend() noexcept { return {}; }

  struct FinalAwaiter {
    bool await_ready() const noexcept { return false; }
    template <typename Promise>
    std::coroutine_handle<> await_suspend(std::coroutine_handle<Promise> h) noexcept {
      auto& promise = h.promise();
      std::coroutine_handle<> cont =
          promise.continuation ? promise.continuation : std::noop_coroutine();
      if (promise.detached) {
        h.destroy();
      }
      return cont;
    }
    void await_resume() const noexcept {}
  };
  FinalAwaiter final_suspend() noexcept { return {}; }

  void unhandled_exception() noexcept {
    SCALERPC_CHECK_MSG(false, "exception escaped a sim::Task");
  }
};

}  // namespace task_detail

template <typename T = void>
class [[nodiscard]] Task {
 public:
  struct promise_type : task_detail::PromiseBase {
    std::optional<T> value;
    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_value(T v) { value.emplace(std::move(v)); }
  };

  Task() = default;
  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool valid() const { return static_cast<bool>(handle_); }
  bool done() const { return handle_ && handle_.done(); }

  // Awaiting a task starts it (symmetric transfer) and resumes the awaiter
  // with the task's result once it completes.
  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) {
    SCALERPC_CHECK(handle_);
    handle_.promise().continuation = cont;
    return handle_;
  }
  T await_resume() {
    SCALERPC_CHECK(handle_ && handle_.promise().value.has_value());
    return std::move(*handle_.promise().value);
  }

  // Releases ownership of the coroutine handle (caller becomes responsible).
  std::coroutine_handle<promise_type> release() {
    return std::exchange(handle_, {});
  }

 private:
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }

  std::coroutine_handle<promise_type> handle_;
};

template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type : task_detail::PromiseBase {
    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_void() {}
  };

  Task() = default;
  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool valid() const { return static_cast<bool>(handle_); }
  bool done() const { return handle_ && handle_.done(); }

  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) {
    SCALERPC_CHECK(handle_);
    handle_.promise().continuation = cont;
    return handle_;
  }
  void await_resume() const noexcept {}

  std::coroutine_handle<promise_type> release() {
    return std::exchange(handle_, {});
  }

 private:
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }

  std::coroutine_handle<promise_type> handle_;
};

// Detaches `task` and schedules its first resume on `loop` at the current
// simulated time. The coroutine frame frees itself on completion.
inline void spawn(EventLoop& loop, Task<void> task) {
  auto handle = task.release();
  SCALERPC_CHECK(handle);
  handle.promise().detached = true;
  loop.schedule_in(0, handle);
}

namespace task_detail {

template <typename T>
Task<void> run_blocking_helper(Task<T> task, std::optional<T>* out, bool* done) {
  *out = co_await std::move(task);
  *done = true;
}

inline Task<void> run_blocking_helper_void(Task<void> task, bool* done) {
  co_await std::move(task);
  *done = true;
}

}  // namespace task_detail

// Drives the loop until `task` completes; returns its result. Intended for
// tests and experiment harness top levels.
template <typename T>
T run_blocking(EventLoop& loop, Task<T> task) {
  std::optional<T> result;
  bool done = false;
  spawn(loop, task_detail::run_blocking_helper<T>(std::move(task), &result, &done));
  while (!done && loop.step()) {
  }
  SCALERPC_CHECK_MSG(done, "event queue drained before task completed");
  return std::move(*result);
}

inline void run_blocking(EventLoop& loop, Task<void> task) {
  bool done = false;
  spawn(loop, task_detail::run_blocking_helper_void(std::move(task), &done));
  while (!done && loop.step()) {
  }
  SCALERPC_CHECK_MSG(done, "event queue drained before task completed");
}

}  // namespace scalerpc::sim

#endif  // SRC_SIM_TASK_H_
