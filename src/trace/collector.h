// Per-sweep-slot collection of tracers and timeline sinks, merged into one
// output file in *submission* order — the same slot-then-print pattern that
// keeps figure tables byte-identical for every --threads value (PR 2).
//
// The sweep engine calls resize() once before workers start, then open(i)
// from whichever worker runs task i. Slots are touched by exactly one task,
// so no synchronization is needed beyond the run()'s join.
#ifndef SRC_TRACE_COLLECTOR_H_
#define SRC_TRACE_COLLECTOR_H_

#include <memory>
#include <string>
#include <vector>

#include "src/trace/timeline.h"
#include "src/trace/trace.h"

namespace scalerpc::trace {

struct CollectorConfig {
  bool trace = false;
  bool timeline = false;
  uint32_t categories = kAllCategories;
  int64_t timeline_interval_ns = 100'000;  // 100 µs PCM-style window
  size_t max_events_per_slot = Tracer::kDefaultMaxEvents;
};

class Collector {
 public:
  explicit Collector(CollectorConfig cfg) : cfg_(cfg) {}

  bool enabled() const { return cfg_.trace || cfg_.timeline; }

  // Pre-sizes the slot table; must be called before tasks execute.
  void resize(size_t slots);

  // Creates the slot's tracer/sink (on the calling worker thread) and
  // returns a Session wired to them, ready for ScopedSession.
  Session open(size_t slot, const std::string& label);

  size_t slots() const { return slots_.size(); }
  const Tracer* tracer(size_t slot) const { return slots_[slot].tracer.get(); }
  const TimelineSink* timeline(size_t slot) const {
    return slots_[slot].timeline.get();
  }

  // Writes the merged Chrome trace-event JSON ({"traceEvents": [...]}).
  // No-op returning true when path is empty or tracing was not requested.
  bool write_trace(const std::string& path) const;

  // Writes {"bench": name, "timeline": [per-slot objects in order]}.
  bool write_timeline(const std::string& path, const std::string& bench_name) const;

 private:
  struct Slot {
    std::string label;
    std::unique_ptr<Tracer> tracer;
    std::unique_ptr<TimelineSink> timeline;
  };

  CollectorConfig cfg_;
  std::vector<Slot> slots_;
};

}  // namespace scalerpc::trace

#endif  // SRC_TRACE_COLLECTOR_H_
