#include "src/trace/trace.h"

#include <cinttypes>
#include <cstdio>

namespace scalerpc::trace {

thread_local Session* g_session = nullptr;
thread_local const int64_t* g_clock = nullptr;

void bind_clock(const int64_t* clock) { g_clock = clock; }

void unbind_clock(const int64_t* clock) {
  if (g_clock == clock) {
    g_clock = nullptr;
  }
}

namespace {
// Index must match the bit positions in Category.
constexpr const char* kCategoryNames[] = {"sched", "nic", "llc", "rpc", "fault"};

uint8_t category_bit(Category c) {
  uint8_t bit = 0;
  uint32_t v = static_cast<uint32_t>(c);
  while (v > 1) {
    v >>= 1;
    bit++;
  }
  return bit;
}
}  // namespace

const char* category_name(Category c) { return kCategoryNames[category_bit(c)]; }

Tracer::Tracer(uint32_t categories, size_t max_events)
    : categories_(categories), max_events_(max_events) {}

Tracer::Event* Tracer::append(Category cat, char ph, const char* name, int64_t ts,
                              int64_t dur, uint32_t tid) {
  if (events_.size() >= max_events_) {
    dropped_++;
    return nullptr;
  }
  events_.emplace_back();
  Event& e = events_.back();
  e.name = name;
  e.ts = ts;
  e.dur = dur;
  e.tid = tid;
  e.ph = ph;
  e.cat_bit = category_bit(cat);
  e.nargs = 0;
  return &e;
}

void Tracer::instant(Category cat, const char* name, int64_t ts_ns, uint32_t tid) {
  append(cat, 'i', name, ts_ns, 0, tid);
}

void Tracer::instant(Category cat, const char* name, int64_t ts_ns, uint32_t tid,
                     const char* k0, uint64_t v0) {
  if (Event* e = append(cat, 'i', name, ts_ns, 0, tid)) {
    e->args[e->nargs++] = Arg{k0, v0};
  }
}

void Tracer::instant(Category cat, const char* name, int64_t ts_ns, uint32_t tid,
                     const char* k0, uint64_t v0, const char* k1, uint64_t v1) {
  if (Event* e = append(cat, 'i', name, ts_ns, 0, tid)) {
    e->args[e->nargs++] = Arg{k0, v0};
    e->args[e->nargs++] = Arg{k1, v1};
  }
}

void Tracer::complete(Category cat, const char* name, int64_t ts_ns, int64_t dur_ns,
                      uint32_t tid) {
  append(cat, 'X', name, ts_ns, dur_ns, tid);
}

void Tracer::complete(Category cat, const char* name, int64_t ts_ns, int64_t dur_ns,
                      uint32_t tid, const char* k0, uint64_t v0) {
  if (Event* e = append(cat, 'X', name, ts_ns, dur_ns, tid)) {
    e->args[e->nargs++] = Arg{k0, v0};
  }
}

void Tracer::complete(Category cat, const char* name, int64_t ts_ns, int64_t dur_ns,
                      uint32_t tid, const char* k0, uint64_t v0, const char* k1,
                      uint64_t v1) {
  if (Event* e = append(cat, 'X', name, ts_ns, dur_ns, tid)) {
    e->args[e->nargs++] = Arg{k0, v0};
    e->args[e->nargs++] = Arg{k1, v1};
  }
}

void Tracer::counter(Category cat, const char* name, int64_t ts_ns, const char* k0,
                     uint64_t v0) {
  if (Event* e = append(cat, 'C', name, ts_ns, 0, 0)) {
    e->args[e->nargs++] = Arg{k0, v0};
  }
}

void Tracer::counter(Category cat, const char* name, int64_t ts_ns, const char* k0,
                     uint64_t v0, const char* k1, uint64_t v1) {
  if (Event* e = append(cat, 'C', name, ts_ns, 0, 0)) {
    e->args[e->nargs++] = Arg{k0, v0};
    e->args[e->nargs++] = Arg{k1, v1};
  }
}

void Tracer::counter(Category cat, const char* name, int64_t ts_ns, const char* k0,
                     uint64_t v0, const char* k1, uint64_t v1, const char* k2,
                     uint64_t v2, const char* k3, uint64_t v3) {
  if (Event* e = append(cat, 'C', name, ts_ns, 0, 0)) {
    e->args[e->nargs++] = Arg{k0, v0};
    e->args[e->nargs++] = Arg{k1, v1};
    e->args[e->nargs++] = Arg{k2, v2};
    e->args[e->nargs++] = Arg{k3, v3};
  }
}

void json_escape(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':
      case '\\':
        out.push_back('\\');
        out.push_back(c);
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
}

void append_us(std::string& out, int64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%" PRId64 ".%03" PRId64, ns / 1000, ns % 1000);
  out += buf;
}

void Tracer::serialize(std::string& out, int pid,
                       const std::string& process_name) const {
  char buf[64];
  out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":";
  std::snprintf(buf, sizeof(buf), "%d", pid);
  out += buf;
  out += ",\"tid\":0,\"args\":{\"name\":\"";
  json_escape(out, process_name);
  out += "\"}},\n";
  if (dropped_ != 0) {
    out += "{\"name\":\"trace.dropped_events\",\"cat\":\"sched\",\"ph\":\"i\",\"ts\":0.000,\"pid\":";
    std::snprintf(buf, sizeof(buf), "%d", pid);
    out += buf;
    out += ",\"tid\":0,\"s\":\"p\",\"args\":{\"count\":";
    std::snprintf(buf, sizeof(buf), "%" PRIu64, dropped_);
    out += buf;
    out += "}},\n";
  }
  for (const Event& e : events_) {
    out += "{\"name\":\"";
    json_escape(out, e.name);
    out += "\",\"cat\":\"";
    out += kCategoryNames[e.cat_bit];
    out += "\",\"ph\":\"";
    out.push_back(e.ph);
    out += "\",\"ts\":";
    append_us(out, e.ts);
    if (e.ph == 'X') {
      out += ",\"dur\":";
      append_us(out, e.dur);
    }
    std::snprintf(buf, sizeof(buf), ",\"pid\":%d,\"tid\":%u", pid, e.tid);
    out += buf;
    if (e.ph == 'i') {
      out += ",\"s\":\"t\"";
    }
    if (e.nargs > 0) {
      out += ",\"args\":{";
      for (uint8_t a = 0; a < e.nargs; ++a) {
        if (a != 0) {
          out.push_back(',');
        }
        out += "\"";
        json_escape(out, e.args[a].key);
        out += "\":";
        std::snprintf(buf, sizeof(buf), "%" PRIu64, e.args[a].value);
        out += buf;
      }
      out.push_back('}');
    }
    out += "},\n";
  }
}

}  // namespace scalerpc::trace
