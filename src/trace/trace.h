// Deterministic tracing: Chrome-trace-event / Perfetto-compatible records
// keyed by *simulated* time.
//
// Design constraints (DESIGN.md §6 invariants apply):
//  * Zero overhead when off. Every hook first reads one thread_local
//    session pointer; with no session installed the hook is a predicted
//    branch and nothing else — no allocation, no atomic, no lock. The
//    counting-allocator test (tests/simrdma/hotpath_alloc_test.cc) keeps
//    this honest.
//  * Deterministic when on. Events carry sim-time timestamps and are
//    buffered per sweep slot (see collector.h), so a merged trace is
//    byte-identical for any --threads value — the same slot-then-print
//    pattern the figure tables use.
//  * One simulation per thread. The session, the tracer, and the sim clock
//    are all thread_local, matching the sweep engine's execution model
//    (src/harness/sweep.h): a simulation lives entirely on one thread.
//
// Name/key strings passed to the record methods must be string literals
// (or otherwise outlive the tracer): events store the pointers, not copies.
#ifndef SRC_TRACE_TRACE_H_
#define SRC_TRACE_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace scalerpc::trace {

// Event categories, used both to filter at record time and as the "cat"
// field Perfetto groups tracks by.
enum Category : uint32_t {
  kSched = 1u << 0,  // event-loop occupancy
  kNic = 1u << 1,    // doorbells, QP-cache hit/miss/evict, WQE refetches
  kLlc = 1u << 2,    // DDIO WriteAllocate / WriteUpdate
  kRpc = 1u << 3,    // per-RPC spans and client state transitions
  kFault = 1u << 4,  // injected faults, retransmits, QP errors, recovery
  kAllCategories = kSched | kNic | kLlc | kRpc | kFault,
};

const char* category_name(Category c);

class Tracer {
 public:
  // `max_events` bounds memory and trace-file size; once reached, further
  // records are counted (dropped_events()) but not stored, which keeps the
  // cap itself deterministic.
  explicit Tracer(uint32_t categories = kAllCategories,
                  size_t max_events = kDefaultMaxEvents);

  bool wants(Category c) const { return (categories_ & c) != 0; }

  // ph "i": an instant marker (scope "t": thread).
  void instant(Category cat, const char* name, int64_t ts_ns, uint32_t tid);
  void instant(Category cat, const char* name, int64_t ts_ns, uint32_t tid,
               const char* k0, uint64_t v0);
  void instant(Category cat, const char* name, int64_t ts_ns, uint32_t tid,
               const char* k0, uint64_t v0, const char* k1, uint64_t v1);

  // ph "X": a complete span [ts, ts+dur).
  void complete(Category cat, const char* name, int64_t ts_ns, int64_t dur_ns,
                uint32_t tid);
  void complete(Category cat, const char* name, int64_t ts_ns, int64_t dur_ns,
                uint32_t tid, const char* k0, uint64_t v0);
  void complete(Category cat, const char* name, int64_t ts_ns, int64_t dur_ns,
                uint32_t tid, const char* k0, uint64_t v0, const char* k1,
                uint64_t v1);

  // ph "C": a counter sample; each key becomes a counter-track series.
  void counter(Category cat, const char* name, int64_t ts_ns, const char* k0,
               uint64_t v0);
  void counter(Category cat, const char* name, int64_t ts_ns, const char* k0,
               uint64_t v0, const char* k1, uint64_t v1);
  void counter(Category cat, const char* name, int64_t ts_ns, const char* k0,
               uint64_t v0, const char* k1, uint64_t v1, const char* k2,
               uint64_t v2, const char* k3, uint64_t v3);

  size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }
  uint64_t dropped_events() const { return dropped_; }

  // Appends this tracer's events as Chrome trace-event JSON objects (one
  // per line, each followed by a comma) to `out`. `pid` identifies the
  // sweep slot; a process_name metadata record labelled `process_name` is
  // emitted first. Timestamps are rendered as microseconds with nanosecond
  // precision ("ts": 12.345), in fixed-point so output is reproducible.
  void serialize(std::string& out, int pid, const std::string& process_name) const;

  static constexpr size_t kDefaultMaxEvents = 1u << 20;  // 1M events/slot

 private:
  static constexpr int kMaxArgs = 4;
  struct Arg {
    const char* key;
    uint64_t value;
  };
  struct Event {
    const char* name;
    int64_t ts;
    int64_t dur;  // only for ph 'X'
    uint32_t tid;
    char ph;
    uint8_t cat_bit;  // index into category_name order
    uint8_t nargs;
    Arg args[kMaxArgs];
  };

  Event* append(Category cat, char ph, const char* name, int64_t ts, int64_t dur,
                uint32_t tid);

  uint32_t categories_;
  size_t max_events_;
  uint64_t dropped_ = 0;
  std::vector<Event> events_;
};

// ---------------------------------------------------------------------------
// Thread-local session: the hook side of the subsystem.

class TimelineSink;

// What the instrumentation sees. Installed per sweep task (ScopedSession);
// all fields may be null / defaulted independently (--trace without
// --timeline and vice versa).
struct Session {
  Tracer* tracer = nullptr;
  TimelineSink* timeline = nullptr;
  int64_t timeline_interval_ns = 100'000;  // 100 µs, the PCM-interval analog
};

// Null when tracing is off — the single load every hook performs.
extern thread_local Session* g_session;
// Address of the active EventLoop's clock, bound by its constructor. Lets
// hooks deep in the LLC/NIC models timestamp events without plumbing the
// loop through every layer.
extern thread_local const int64_t* g_clock;

inline Session* session() { return g_session; }

// The active tracer if tracing is on AND category `c` is enabled.
inline Tracer* tracer(Category c) {
  Session* s = g_session;
  return (s != nullptr && s->tracer != nullptr && s->tracer->wants(c))
             ? s->tracer
             : nullptr;
}

inline TimelineSink* timeline() {
  Session* s = g_session;
  return s != nullptr ? s->timeline : nullptr;
}

inline int64_t timeline_interval_ns() {
  Session* s = g_session;
  return s != nullptr ? s->timeline_interval_ns : 100'000;
}

// Current simulated time as seen by the bound EventLoop (0 if none bound).
inline int64_t now() {
  const int64_t* c = g_clock;
  return c != nullptr ? *c : 0;
}

void bind_clock(const int64_t* clock);
// Clears the binding only if `clock` is still the bound one (a destroyed
// loop must not unbind a newer loop's clock).
void unbind_clock(const int64_t* clock);

// RAII session installer. Holds the Session by value so the caller can pass
// a temporary; restores the previous session (usually null) on destruction.
class ScopedSession {
 public:
  explicit ScopedSession(Session s) : session_(s), prev_(g_session) {
    g_session = &session_;
  }
  ~ScopedSession() { g_session = prev_; }
  ScopedSession(const ScopedSession&) = delete;
  ScopedSession& operator=(const ScopedSession&) = delete;

 private:
  Session session_;
  Session* prev_;
};

// Escapes a string for embedding in a JSON string literal (shared with the
// timeline/collector serializers).
void json_escape(std::string& out, const std::string& s);

// Fixed-point ns → µs rendering shared by all serializers: 12345 → "12.345".
void append_us(std::string& out, int64_t ns);

}  // namespace scalerpc::trace

#endif  // SRC_TRACE_TRACE_H_
