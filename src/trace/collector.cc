#include "src/trace/collector.h"

#include <cstdio>

#include "src/common/logging.h"

namespace scalerpc::trace {

void Collector::resize(size_t slots) {
  SCALERPC_CHECK_MSG(slots_.empty() || slots_.size() == slots,
                     "collector resized mid-run");
  slots_.resize(slots);
}

Session Collector::open(size_t slot, const std::string& label) {
  SCALERPC_CHECK(slot < slots_.size());
  Slot& s = slots_[slot];
  s.label = label;
  Session session;
  if (cfg_.trace) {
    s.tracer = std::make_unique<Tracer>(cfg_.categories, cfg_.max_events_per_slot);
    session.tracer = s.tracer.get();
  }
  if (cfg_.timeline) {
    s.timeline = std::make_unique<TimelineSink>();
    session.timeline = s.timeline.get();
  }
  session.timeline_interval_ns = cfg_.timeline_interval_ns;
  return session;
}

namespace {
bool write_string(const std::string& path, const std::string& body) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "error: cannot open %s for writing\n", path.c_str());
    return false;
  }
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  std::fclose(f);
  if (!ok) {
    std::fprintf(stderr, "error: short write to %s\n", path.c_str());
  }
  return ok;
}
}  // namespace

bool Collector::write_trace(const std::string& path) const {
  if (path.empty() || !cfg_.trace) {
    return true;
  }
  std::string out;
  out.reserve(1u << 20);
  out += "{\"displayTimeUnit\": \"ns\",\n\"traceEvents\": [\n";
  for (size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].tracer != nullptr) {
      slots_[i].tracer->serialize(out, static_cast<int>(i), slots_[i].label);
    }
  }
  // Every serialized record ends with ",\n"; drop the final separator.
  if (out.size() >= 2 && out[out.size() - 2] == ',') {
    out.erase(out.size() - 2, 1);
  }
  out += "]}\n";
  return write_string(path, out);
}

bool Collector::write_timeline(const std::string& path,
                               const std::string& bench_name) const {
  if (path.empty() || !cfg_.timeline) {
    return true;
  }
  std::string out;
  out += "{\n  \"bench\": \"";
  json_escape(out, bench_name);
  out += "\",\n  \"interval_us\": ";
  append_us(out, cfg_.timeline_interval_ns);
  out += ",\n  \"timeline\": [\n";
  bool first = true;
  for (const Slot& s : slots_) {
    if (s.timeline == nullptr) {
      continue;
    }
    if (!first) {
      out += ",\n";
    }
    first = false;
    out += "    ";
    s.timeline->serialize(out, s.label);
  }
  out += "\n  ]\n}\n";
  return write_string(path, out);
}

}  // namespace scalerpc::trace
