#include "src/trace/timeline.h"

#include <cinttypes>
#include <cstdio>

#include "src/common/logging.h"
#include "src/trace/trace.h"

namespace scalerpc::trace {

void TimelineSink::set_columns(std::vector<std::string> columns) {
  if (columns_.empty()) {
    columns_ = std::move(columns);
    prev_.assign(columns_.size(), 0);
    return;
  }
  SCALERPC_CHECK_MSG(columns.size() == columns_.size(),
                     "timeline column schema changed mid-run");
}

void TimelineSink::sample(int64_t t_ns, const uint64_t* values, size_t n) {
  SCALERPC_CHECK_MSG(n == columns_.size(), "timeline sample width != columns");
  if (!have_baseline_) {
    for (size_t i = 0; i < n; ++i) {
      prev_[i] = values[i];
    }
    prev_t_ns_ = t_ns;
    have_baseline_ = true;
    return;
  }
  rows_.emplace_back();
  Row& row = rows_.back();
  row.t_ns = t_ns;
  row.dt_ns = t_ns - prev_t_ns_;
  row.delta.resize(n);
  for (size_t i = 0; i < n; ++i) {
    row.delta[i] = values[i] - prev_[i];
    prev_[i] = values[i];
  }
  prev_t_ns_ = t_ns;
}

void TimelineSink::serialize(std::string& out, const std::string& label) const {
  char buf[48];
  out += "{\"label\": \"";
  json_escape(out, label);
  out += "\", \"rows\": [";
  for (size_t r = 0; r < rows_.size(); ++r) {
    const Row& row = rows_[r];
    out += r == 0 ? "\n" : ",\n";
    out += "      {\"t_us\": ";
    append_us(out, row.t_ns);
    out += ", \"dt_us\": ";
    append_us(out, row.dt_ns);
    for (size_t c = 0; c < columns_.size(); ++c) {
      out += ", \"";
      json_escape(out, columns_[c]);
      std::snprintf(buf, sizeof(buf), "\": %" PRIu64, row.delta[c]);
      out += buf;
    }
    out.push_back('}');
  }
  out += rows_.empty() ? "]" : "\n    ]";
  if (latency_.valid) {
    out += ",\n    \"latency\": {\"count\": ";
    std::snprintf(buf, sizeof(buf), "%" PRIu64, latency_.count);
    out += buf;
    std::snprintf(buf, sizeof(buf), ", \"mean_us\": %.3f", latency_.mean_us);
    out += buf;
    std::snprintf(buf, sizeof(buf), ", \"p50_us\": %" PRIu64, latency_.p50_us);
    out += buf;
    std::snprintf(buf, sizeof(buf), ", \"p99_us\": %" PRIu64, latency_.p99_us);
    out += buf;
    std::snprintf(buf, sizeof(buf), ", \"p999_us\": %" PRIu64, latency_.p999_us);
    out += buf;
    std::snprintf(buf, sizeof(buf), ", \"max_us\": %" PRIu64, latency_.max_us);
    out += buf;
    out.push_back('}');
  }
  out.push_back('}');
}

}  // namespace scalerpc::trace
