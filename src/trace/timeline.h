// Counter timelines: interval-sampled deltas of monotonically increasing
// hardware counters, the simulator's analog of running Intel PCM with a
// sampling interval (paper §3.6.3) instead of one end-of-window snapshot.
//
// The sink is column-oriented and source-agnostic: the harness decides what
// a "row" of counters is (PCM + NIC fields; see src/harness/harness.cc) and
// feeds *absolute* values; the sink turns consecutive samples into
// per-window deltas. The first sample only establishes the baseline — a
// timeline over N samples has N-1 rows. Windows where nothing moved are
// kept as all-zero rows so plots have uniform time axes.
#ifndef SRC_TRACE_TIMELINE_H_
#define SRC_TRACE_TIMELINE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace scalerpc::trace {

class TimelineSink {
 public:
  struct Row {
    int64_t t_ns = 0;   // window end, sim time
    int64_t dt_ns = 0;  // window length
    std::vector<uint64_t> delta;
  };

  // Latency distribution of the run the timeline belongs to (filled by the
  // harness from its per-RPC histogram; microseconds).
  struct LatencySummary {
    bool valid = false;
    uint64_t count = 0;
    double mean_us = 0;
    uint64_t p50_us = 0;
    uint64_t p99_us = 0;
    uint64_t p999_us = 0;
    uint64_t max_us = 0;
  };

  // Sets the column names. First caller wins; later calls must pass the
  // same number of columns (checked) — the harness calls this on every
  // sampling setup with its fixed schema.
  void set_columns(std::vector<std::string> columns);
  bool has_columns() const { return !columns_.empty(); }
  const std::vector<std::string>& columns() const { return columns_; }

  // Records absolute counter values at sim time `t_ns`. `n` must equal the
  // column count. The first call sets the baseline and appends no row;
  // every later call appends the delta over (prev_t, t_ns]. Counters are
  // expected to be monotone; deltas use wrapping subtraction, matching the
  // PcmCounters/NicCounters operator- convention.
  void sample(int64_t t_ns, const uint64_t* values, size_t n);

  // Drops the baseline so the next sample() starts a fresh window series
  // (rows already recorded are kept). Used between warmup and measurement.
  void reset_baseline() { have_baseline_ = false; }

  bool has_baseline() const { return have_baseline_; }
  // Sim time of the most recent sample (baseline or row end). Only
  // meaningful while has_baseline() — used by samplers to decide whether a
  // final partial window is still worth recording.
  int64_t last_sample_t() const { return prev_t_ns_; }

  const std::vector<Row>& rows() const { return rows_; }

  void set_latency(const LatencySummary& s) { latency_ = s; }
  const LatencySummary& latency() const { return latency_; }

  // Appends this sink as one JSON object:
  //   {"label": ..., "rows": [{"t_us":..,"dt_us":..,"<col>":..},..],
  //    "latency": {...}}            (latency omitted when not set)
  void serialize(std::string& out, const std::string& label) const;

 private:
  std::vector<std::string> columns_;
  std::vector<uint64_t> prev_;
  int64_t prev_t_ns_ = 0;
  bool have_baseline_ = false;
  std::vector<Row> rows_;
  LatencySummary latency_;
};

}  // namespace scalerpc::trace

#endif  // SRC_TRACE_TIMELINE_H_
