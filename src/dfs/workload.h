// mdtest-style metadata workload (paper Sections 2.2 and 4.1).
//
// Each client works in a private directory: a create phase (Mknod), a stat
// phase, a readdir phase and a remove phase (Rmnod), with barriers between
// phases as in mdtest. Per-phase throughput = total ops / phase wall time.
#ifndef SRC_DFS_WORKLOAD_H_
#define SRC_DFS_WORKLOAD_H_

#include "src/dfs/service.h"
#include "src/harness/harness.h"

namespace scalerpc::dfs {

struct MdtestConfig {
  int files_per_client = 160;
  int batch = 1;        // mdtest issues ops synchronously
  int stat_rounds = 3;  // stat sweeps over the files (read-heavy phase)
  int readdir_rounds = 24;
};

struct MdtestResult {
  double mknod_mops = 0;
  double stat_mops = 0;
  double readdir_mops = 0;
  double rmnod_mops = 0;

  double of(uint8_t op) const;
};

// Runs mdtest over the testbed's transport. Registers the service, starts
// the server, and drives every client through the four phases.
MdtestResult run_mdtest(harness::Testbed& bed, const MdtestConfig& cfg);

}  // namespace scalerpc::dfs

#endif  // SRC_DFS_WORKLOAD_H_
