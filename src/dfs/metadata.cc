#include "src/dfs/metadata.h"

#include "src/common/logging.h"

namespace scalerpc::dfs {

const char* to_string(DfsStatus s) {
  switch (s) {
    case DfsStatus::kOk:
      return "OK";
    case DfsStatus::kNotFound:
      return "NOT_FOUND";
    case DfsStatus::kExists:
      return "EXISTS";
    case DfsStatus::kNotDirectory:
      return "NOT_DIRECTORY";
    case DfsStatus::kNotEmpty:
      return "NOT_EMPTY";
    case DfsStatus::kInvalid:
      return "INVALID";
  }
  return "?";
}

MetadataStore::MetadataStore() {
  Entry root;
  root.attrs.type = FileType::kDirectory;
  root.attrs.inode = next_inode_++;
  entries_.emplace("/", std::move(root));
}

std::string MetadataStore::parent_of(const std::string& path) {
  const auto pos = path.find_last_of('/');
  if (pos == std::string::npos || path == "/") {
    return "";
  }
  return pos == 0 ? "/" : path.substr(0, pos);
}

std::string MetadataStore::leaf_of(const std::string& path) {
  const auto pos = path.find_last_of('/');
  return pos == std::string::npos ? path : path.substr(pos + 1);
}

DfsStatus MetadataStore::create(const std::string& path, FileType type, int64_t now) {
  if (path.empty() || path[0] != '/' || path == "/" || path.back() == '/') {
    return DfsStatus::kInvalid;
  }
  if (entries_.count(path) != 0) {
    return DfsStatus::kExists;
  }
  const std::string parent = parent_of(path);
  auto it = entries_.find(parent);
  if (it == entries_.end()) {
    return DfsStatus::kNotFound;
  }
  if (it->second.attrs.type != FileType::kDirectory) {
    return DfsStatus::kNotDirectory;
  }
  Entry e;
  e.attrs.type = type;
  e.attrs.inode = next_inode_++;
  e.attrs.ctime = now;
  entries_.emplace(path, std::move(e));
  it->second.children.insert(leaf_of(path));
  return DfsStatus::kOk;
}

DfsStatus MetadataStore::mknod(const std::string& path, int64_t now) {
  return create(path, FileType::kFile, now);
}

DfsStatus MetadataStore::mkdir(const std::string& path, int64_t now) {
  return create(path, FileType::kDirectory, now);
}

DfsStatus MetadataStore::rmnod(const std::string& path) {
  auto it = entries_.find(path);
  if (it == entries_.end()) {
    return DfsStatus::kNotFound;
  }
  if (it->second.attrs.type == FileType::kDirectory && !it->second.children.empty()) {
    return DfsStatus::kNotEmpty;
  }
  if (path == "/") {
    return DfsStatus::kInvalid;
  }
  auto parent = entries_.find(parent_of(path));
  SCALERPC_CHECK(parent != entries_.end());
  parent->second.children.erase(leaf_of(path));
  entries_.erase(it);
  return DfsStatus::kOk;
}

DfsStatus MetadataStore::stat(const std::string& path, Attributes* out) const {
  auto it = entries_.find(path);
  if (it == entries_.end()) {
    return DfsStatus::kNotFound;
  }
  *out = it->second.attrs;
  return DfsStatus::kOk;
}

DfsStatus MetadataStore::readdir(const std::string& path,
                                 std::vector<std::string>* names) const {
  auto it = entries_.find(path);
  if (it == entries_.end()) {
    return DfsStatus::kNotFound;
  }
  if (it->second.attrs.type != FileType::kDirectory) {
    return DfsStatus::kNotDirectory;
  }
  names->assign(it->second.children.begin(), it->second.children.end());
  return DfsStatus::kOk;
}

}  // namespace scalerpc::dfs
