#include "src/dfs/service.h"

namespace scalerpc::dfs {

namespace {

rpc::Bytes path_payload(const std::string& path) {
  Writer w;
  w.str(path);
  return w.take();
}

std::string payload_path(std::span<const uint8_t> req) {
  Reader r(req);
  return r.str();
}

}  // namespace

void register_metadata_service(rpc::RpcServer* server, MetadataStore* store,
                               sim::EventLoop* loop) {
  server->handlers().register_handler(
      kOpMknod, [store, loop](const rpc::RequestContext&, std::span<const uint8_t> req) {
        rpc::HandlerResult res;
        const DfsStatus s = store->mknod(payload_path(req), loop->now());
        res.response = {static_cast<uint8_t>(s)};
        res.cpu_ns = store->mknod_cost();
        return res;
      });
  server->handlers().register_handler(
      kOpMkdir, [store, loop](const rpc::RequestContext&, std::span<const uint8_t> req) {
        rpc::HandlerResult res;
        const DfsStatus s = store->mkdir(payload_path(req), loop->now());
        res.response = {static_cast<uint8_t>(s)};
        res.cpu_ns = store->mknod_cost();
        return res;
      });
  server->handlers().register_handler(
      kOpRmnod, [store](const rpc::RequestContext&, std::span<const uint8_t> req) {
        rpc::HandlerResult res;
        const DfsStatus s = store->rmnod(payload_path(req));
        res.response = {static_cast<uint8_t>(s)};
        res.cpu_ns = store->rmnod_cost();
        return res;
      });
  server->handlers().register_handler(
      kOpStat, [store](const rpc::RequestContext&, std::span<const uint8_t> req) {
        rpc::HandlerResult res;
        Attributes attrs;
        const DfsStatus s = store->stat(payload_path(req), &attrs);
        Writer w;
        w.u8(static_cast<uint8_t>(s));
        if (s == DfsStatus::kOk) {
          w.u8(static_cast<uint8_t>(attrs.type));
          w.u64(attrs.size);
          w.u64(attrs.inode);
          w.i64(attrs.ctime);
        }
        res.response = w.take();
        res.cpu_ns = store->stat_cost();
        return res;
      });
  server->handlers().register_handler(
      kOpReaddir, [store](const rpc::RequestContext&, std::span<const uint8_t> req) {
        rpc::HandlerResult res;
        std::vector<std::string> names;
        const DfsStatus s = store->readdir(payload_path(req), &names);
        Writer w;
        w.u8(static_cast<uint8_t>(s));
        if (s == DfsStatus::kOk) {
          w.u32(static_cast<uint32_t>(names.size()));
          for (const auto& n : names) {
            w.str(n);
          }
        }
        res.response = w.take();
        res.cpu_ns = store->readdir_cost(names.size());
        return res;
      });
}

sim::Task<DfsStatus> DfsClient::simple_call(uint8_t op, const std::string& path) {
  rpc::Bytes resp = co_await rpc_->call(op, path_payload(path));
  SCALERPC_CHECK(!resp.empty());
  co_return static_cast<DfsStatus>(resp[0]);
}

sim::Task<DfsStatus> DfsClient::mknod(std::string path) {
  co_return co_await simple_call(kOpMknod, path);
}
sim::Task<DfsStatus> DfsClient::mkdir(std::string path) {
  co_return co_await simple_call(kOpMkdir, path);
}
sim::Task<DfsStatus> DfsClient::rmnod(std::string path) {
  co_return co_await simple_call(kOpRmnod, path);
}

sim::Task<DfsStatus> DfsClient::stat(std::string path, Attributes* out) {
  rpc::Bytes resp = co_await rpc_->call(kOpStat, path_payload(path));
  Reader r(resp);
  const auto s = static_cast<DfsStatus>(r.u8());
  if (s == DfsStatus::kOk && out != nullptr) {
    out->type = static_cast<FileType>(r.u8());
    out->size = r.u64();
    out->inode = r.u64();
    out->ctime = r.i64();
  }
  co_return s;
}

sim::Task<DfsStatus> DfsClient::readdir(std::string path,
                                        std::vector<std::string>* names) {
  rpc::Bytes resp = co_await rpc_->call(kOpReaddir, path_payload(path));
  Reader r(resp);
  const auto s = static_cast<DfsStatus>(r.u8());
  if (s == DfsStatus::kOk && names != nullptr) {
    const uint32_t n = r.u32();
    names->clear();
    for (uint32_t i = 0; i < n; ++i) {
      names->push_back(r.str());
    }
  }
  co_return s;
}

void DfsClient::stage_op(uint8_t op, const std::string& path) {
  rpc_->stage(op, path_payload(path));
}

sim::Task<std::vector<DfsStatus>> DfsClient::flush() {
  std::vector<rpc::Bytes> resps = co_await rpc_->flush();
  std::vector<DfsStatus> out;
  out.reserve(resps.size());
  for (const auto& r : resps) {
    SCALERPC_CHECK(!r.empty());
    out.push_back(static_cast<DfsStatus>(r[0]));
  }
  co_return out;
}

}  // namespace scalerpc::dfs
