// In-memory metadata store of an Octopus-like distributed file system
// (paper Sections 2.2 / 4.1). Single metadata server, many clients.
//
// Costs mirror the paper's observations: Mknod/Rmnod do real namespace
// surgery (hash updates, parent directory maintenance, "persistence"
// bookkeeping) and are software-bound; Stat/ReadDir are cheap lookups and
// therefore network-bound — which is exactly why their throughput tracks
// the RPC layer's scalability.
#ifndef SRC_DFS_METADATA_H_
#define SRC_DFS_METADATA_H_

#include <cstdint>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/units.h"

namespace scalerpc::dfs {

enum class FileType : uint8_t { kFile, kDirectory };

struct Attributes {
  FileType type = FileType::kFile;
  uint64_t size = 0;
  uint64_t inode = 0;
  int64_t ctime = 0;
};

enum class DfsStatus : uint8_t {
  kOk,
  kNotFound,
  kExists,
  kNotDirectory,
  kNotEmpty,
  kInvalid,
};

const char* to_string(DfsStatus s);

class MetadataStore {
 public:
  MetadataStore();

  DfsStatus mknod(const std::string& path, int64_t now);
  DfsStatus mkdir(const std::string& path, int64_t now);
  DfsStatus rmnod(const std::string& path);
  DfsStatus stat(const std::string& path, Attributes* out) const;
  DfsStatus readdir(const std::string& path, std::vector<std::string>* names) const;

  uint64_t num_entries() const { return entries_.size(); }

  // CPU cost model (charged by the RPC handlers).
  Nanos mknod_cost() const { return 900; }
  Nanos rmnod_cost() const { return 850; }
  Nanos stat_cost() const { return 220; }
  Nanos readdir_cost(size_t entries) const {
    return 200 + static_cast<Nanos>(entries) * 6;
  }

 private:
  struct Entry {
    Attributes attrs;
    std::set<std::string> children;  // directories only
  };

  static std::string parent_of(const std::string& path);
  static std::string leaf_of(const std::string& path);
  DfsStatus create(const std::string& path, FileType type, int64_t now);

  std::unordered_map<std::string, Entry> entries_;
  uint64_t next_inode_ = 1;
};

}  // namespace scalerpc::dfs

#endif  // SRC_DFS_METADATA_H_
