#include "src/dfs/workload.h"

namespace scalerpc::dfs {

namespace {

struct Barrier {
  explicit Barrier(sim::EventLoop& loop, int parties)
      : remaining(parties), done(loop) {}
  int remaining;
  sim::Event done;
  Nanos completed_at = 0;

  void arrive(sim::EventLoop& loop) {
    if (--remaining == 0) {
      completed_at = loop.now();
      done.set();
    }
  }
};

struct Phases {
  Phases(sim::EventLoop& loop, int parties)
      : create(loop, parties),
        stat(loop, parties),
        readdir(loop, parties),
        remove(loop, parties) {}
  Barrier create;
  Barrier stat;
  Barrier readdir;
  Barrier remove;
};

sim::Task<void> mdtest_client(sim::EventLoop* loop, DfsClient client, int id,
                              const MdtestConfig* cfg, Phases* phases) {
  const std::string wd = "/c" + std::to_string(id);
  co_await client.mkdir(wd);

  auto batched_phase = [&](uint8_t op, int total, Barrier* barrier) -> sim::Task<void> {
    int done = 0;
    while (done < total) {
      const int n = std::min(cfg->batch, total - done);
      for (int i = 0; i < n; ++i) {
        client.stage_op(op, wd + "/f" + std::to_string((done + i) % cfg->files_per_client));
      }
      std::vector<DfsStatus> statuses = co_await client.flush();
      for (DfsStatus s : statuses) {
        SCALERPC_CHECK_MSG(s == DfsStatus::kOk, to_string(s));
      }
      done += n;
    }
    barrier->arrive(*loop);
    co_await barrier->done.wait();
  };

  co_await batched_phase(kOpMknod, cfg->files_per_client, &phases->create);
  co_await batched_phase(kOpStat, cfg->files_per_client * cfg->stat_rounds,
                         &phases->stat);

  // ReadDir phase: repeated listings of the working directory.
  {
    int done = 0;
    const int total = cfg->readdir_rounds;
    while (done < total) {
      const int n = std::min(cfg->batch, total - done);
      for (int i = 0; i < n; ++i) {
        client.stage_op(kOpReaddir, wd);
      }
      std::vector<rpc::Bytes> resps = co_await client.transport()->flush();
      SCALERPC_CHECK(resps.size() == static_cast<size_t>(n));
      done += n;
    }
    phases->readdir.arrive(*loop);
    co_await phases->readdir.done.wait();
  }

  co_await batched_phase(kOpRmnod, cfg->files_per_client, &phases->remove);
}

}  // namespace

double MdtestResult::of(uint8_t op) const {
  switch (op) {
    case kOpMknod:
      return mknod_mops;
    case kOpStat:
      return stat_mops;
    case kOpReaddir:
      return readdir_mops;
    case kOpRmnod:
      return rmnod_mops;
    default:
      return 0;
  }
}

MdtestResult run_mdtest(harness::Testbed& bed, const MdtestConfig& cfg) {
  auto& loop = bed.loop();
  auto store = std::make_unique<MetadataStore>();
  register_metadata_service(&bed.server(), store.get(), &loop);
  bed.server().start();

  const int n = static_cast<int>(bed.num_clients());
  Phases phases(loop, n);
  const Nanos t0 = loop.now();
  for (int c = 0; c < n; ++c) {
    sim::spawn(loop, mdtest_client(&loop, DfsClient(&bed.client(static_cast<size_t>(c))),
                                   c, &cfg, &phases));
  }

  // Drive phases to completion, bounding runaway time.
  const Nanos horizon = loop.now() + 30 * kSecond;
  while (!phases.remove.done.is_set() && loop.now() < horizon) {
    loop.run_for(msec(1));
  }
  SCALERPC_CHECK_MSG(phases.remove.done.is_set(), "mdtest did not complete");
  bed.server().stop();

  MdtestResult result;
  const auto total = static_cast<uint64_t>(n) * cfg.files_per_client;
  result.mknod_mops =
      mops_per_sec(total, static_cast<uint64_t>(phases.create.completed_at - t0));
  result.stat_mops = mops_per_sec(
      total * cfg.stat_rounds,
      static_cast<uint64_t>(phases.stat.completed_at - phases.create.completed_at));
  result.readdir_mops = mops_per_sec(
      static_cast<uint64_t>(n) * cfg.readdir_rounds,
      static_cast<uint64_t>(phases.readdir.completed_at - phases.stat.completed_at));
  result.rmnod_mops = mops_per_sec(
      total,
      static_cast<uint64_t>(phases.remove.completed_at - phases.readdir.completed_at));
  return result;
}

}  // namespace scalerpc::dfs
