// Binds the metadata store to any RPC transport (server side) and provides
// a typed client (client side). The DFS is fully transport-generic: the
// Fig. 1a / Fig. 13 experiments swap selfRPC and ScaleRPC underneath it.
#ifndef SRC_DFS_SERVICE_H_
#define SRC_DFS_SERVICE_H_

#include <string>
#include <vector>

#include "src/common/codec.h"
#include "src/dfs/metadata.h"
#include "src/rpc/rpc.h"

namespace scalerpc::dfs {

// RPC opcodes.
constexpr uint8_t kOpMknod = 1;
constexpr uint8_t kOpMkdir = 2;
constexpr uint8_t kOpRmnod = 3;
constexpr uint8_t kOpStat = 4;
constexpr uint8_t kOpReaddir = 5;

// Registers the metadata handlers on `server`. The store must outlive it.
void register_metadata_service(rpc::RpcServer* server, MetadataStore* store,
                               sim::EventLoop* loop);

// Typed client wrapper over any RpcClient.
class DfsClient {
 public:
  explicit DfsClient(rpc::RpcClient* rpc) : rpc_(rpc) {}

  sim::Task<DfsStatus> mknod(std::string path);
  sim::Task<DfsStatus> mkdir(std::string path);
  sim::Task<DfsStatus> rmnod(std::string path);
  sim::Task<DfsStatus> stat(std::string path, Attributes* out);
  sim::Task<DfsStatus> readdir(std::string path, std::vector<std::string>* names);

  // Batched variants (mdtest drives these): stage several ops of one kind,
  // then flush and return the statuses.
  void stage_op(uint8_t op, const std::string& path);
  sim::Task<std::vector<DfsStatus>> flush();

  rpc::RpcClient* transport() { return rpc_; }

 private:
  sim::Task<DfsStatus> simple_call(uint8_t op, const std::string& path);

  rpc::RpcClient* rpc_;
};

}  // namespace scalerpc::dfs

#endif  // SRC_DFS_SERVICE_H_
