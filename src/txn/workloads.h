// Transaction workload generators (paper Section 4.2.1):
//  * Object store — r reads and w writes per transaction over random keys
//    (the read-intensive OLTP benchmark from FaSST).
//  * SmallBank — write-intensive banking mix (85% update transactions),
//    1M accounts per server, 4% hot accounts receiving 60% of traffic.
#ifndef SRC_TXN_WORKLOADS_H_
#define SRC_TXN_WORKLOADS_H_

#include "src/common/rng.h"
#include "src/txn/coordinator.h"

namespace scalerpc::txn {

class ObjectStoreWorkload {
 public:
  ObjectStoreWorkload(uint64_t keys_per_shard, int shards, int reads, int writes,
                      uint32_t value_bytes)
      : keys_(keys_per_shard * static_cast<uint64_t>(shards)),
        reads_(reads),
        writes_(writes),
        value_bytes_(value_bytes) {}

  TxnRequest next(Rng& rng) const;

  uint64_t total_keys() const { return keys_; }

 private:
  uint64_t keys_;
  int reads_;
  int writes_;
  uint32_t value_bytes_;
};

// SmallBank: two "tables" (checking/savings) encoded in the key space:
// key = account * 2 + table.
class SmallBankWorkload {
 public:
  enum class Op : uint8_t {
    kBalance,          // read both balances (read-only)
    kDepositChecking,  // update checking
    kTransactSavings,  // update savings
    kAmalgamate,       // move everything from A to B's checking
    kWriteCheck,       // read both, update checking
  };

  SmallBankWorkload(uint64_t accounts, uint32_t value_bytes,
                    double hot_fraction = 0.04, double hot_probability = 0.60)
      : accounts_(accounts),
        value_bytes_(value_bytes),
        hot_accounts_(std::max<uint64_t>(1, static_cast<uint64_t>(
                                                static_cast<double>(accounts) * hot_fraction))),
        hot_probability_(hot_probability) {}

  static constexpr uint64_t kChecking = 0;
  static constexpr uint64_t kSavings = 1;
  static uint64_t key_of(uint64_t account, uint64_t table) {
    return account * 2 + table;
  }

  TxnRequest next(Rng& rng) const;
  Op pick_op(Rng& rng) const;
  uint64_t pick_account(Rng& rng) const;

  uint64_t accounts() const { return accounts_; }
  uint64_t total_keys() const { return accounts_ * 2; }

 private:
  rpc::Bytes amount(Rng& rng) const;

  uint64_t accounts_;
  uint32_t value_bytes_;
  uint64_t hot_accounts_;
  double hot_probability_;
};

}  // namespace scalerpc::txn

#endif  // SRC_TXN_WORKLOADS_H_
