// Multi-server transactional testbed (paper Section 4.2): P participant
// nodes each running a KV shard behind an RPC server, and many coordinator
// clients (each connected to every participant) running OCC+2PC.
//
// With the ScaleRPC transport, the servers' context switches are aligned by
// the NTP-like TimeSync so a client's groups are live on all participants
// simultaneously; priority scheduling is disabled so group membership is
// identical across servers (both per Section 4.2).
#ifndef SRC_TXN_TESTBED_H_
#define SRC_TXN_TESTBED_H_

#include <memory>
#include <vector>

#include "src/common/stats.h"
#include "src/harness/harness.h"
#include "src/scalerpc/timesync.h"
#include "src/txn/participant.h"
#include "src/txn/coordinator.h"
#include "src/txn/workloads.h"

namespace scalerpc::txn {

struct ScaleTxConfig {
  harness::TransportKind kind = harness::TransportKind::kScaleRpc;
  // One-sided validation/commit (ScaleTX); false = RPC-only (ScaleTX-O and
  // all baseline transports).
  bool one_sided = true;
  int participants = 3;
  int num_coordinators = 80;
  int coordinator_nodes = 8;
  uint64_t keys_per_shard = 200000;
  uint32_t value_bytes = 40;
  core::ScaleRpcConfig rpc;
  simrdma::SimParams sim;
  uint64_t seed = 1;

  ScaleTxConfig() {
    sim.host_memory_bytes = MiB(128);
    rpc.dynamic_priority = false;  // identical grouping across servers
  }
};

class ScaleTxTestbed {
 public:
  explicit ScaleTxTestbed(ScaleTxConfig cfg);

  sim::EventLoop& loop() { return cluster_.loop(); }
  const ScaleTxConfig& config() const { return cfg_; }
  size_t num_coordinators() const { return coordinators_.size(); }
  Coordinator& coordinator(size_t i) { return *coordinators_[i]; }
  Participant& participant(size_t i) { return *participants_[i]; }
  rpc::RpcServer& server(size_t i) { return *servers_[i]; }

  // Loads `keys_per_shard * participants` keys (0..n-1) with zero values.
  void preload();
  // Starts servers (and time synchronization for ScaleRPC).
  void start();
  void stop();

 private:
  ScaleTxConfig cfg_;
  simrdma::Cluster cluster_;
  Rng rng_;
  std::vector<simrdma::Node*> participant_nodes_;
  std::vector<std::unique_ptr<rpc::RpcServer>> servers_;
  std::vector<core::ScaleRpcServer*> scalerpc_servers_;
  std::vector<std::unique_ptr<Participant>> participants_;
  std::unique_ptr<core::TimeSyncServer> time_server_;
  std::vector<std::unique_ptr<core::TimeSyncFollower>> followers_;
  std::vector<simrdma::Node*> coord_nodes_;
  std::vector<std::unique_ptr<rpc::CpuPool>> cpu_pools_;
  std::vector<std::unique_ptr<rpc::RpcClient>> owned_clients_;
  std::vector<std::unique_ptr<Coordinator>> coordinators_;
};

struct TxnRunResult {
  double committed_ktps = 0;  // thousand committed txns per second
  double abort_rate = 0;
  uint64_t committed = 0;
  uint64_t attempts = 0;
};

// Drives every coordinator in a closed loop over `workload` (a callable
// Rng& -> TxnRequest), measuring over [warmup, warmup+measure].
template <typename WorkloadFn>
TxnRunResult run_transactions(ScaleTxTestbed& bed, WorkloadFn workload, Nanos warmup,
                              Nanos measure, uint64_t seed = 7);

// Explicit instantiations live in testbed.cc via this type-erased runner.
TxnRunResult run_transactions_erased(ScaleTxTestbed& bed,
                                     std::function<TxnRequest(Rng&)> workload,
                                     Nanos warmup, Nanos measure, uint64_t seed);

template <typename WorkloadFn>
TxnRunResult run_transactions(ScaleTxTestbed& bed, WorkloadFn workload, Nanos warmup,
                              Nanos measure, uint64_t seed) {
  return run_transactions_erased(bed, std::move(workload), warmup, measure, seed);
}

}  // namespace scalerpc::txn

#endif  // SRC_TXN_TESTBED_H_
