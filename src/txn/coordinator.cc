#include "src/txn/coordinator.h"

#include <algorithm>

namespace scalerpc::txn {

namespace {
constexpr uint8_t kTxExecOp = 10;
constexpr uint8_t kTxValidateOp = 11;
constexpr uint8_t kTxLogOp = 12;
constexpr uint8_t kTxCommitRpcOp = 13;
constexpr uint8_t kTxAbortOp = 14;

struct Join {
  explicit Join(sim::EventLoop& loop, int parties) : remaining(parties), done(loop) {}
  int remaining;
  sim::Event done;
};

sim::Task<void> flush_one(rpc::RpcClient* client, std::vector<rpc::Bytes>* out,
                          Join* join) {
  *out = co_await client->flush();
  if (--join->remaining == 0) {
    join->done.set();
  }
}

}  // namespace

Coordinator::Coordinator(simrdma::Node* node, std::vector<rpc::RpcClient*> rpc_clients,
                         std::vector<core::ScaleRpcClient*> raw_clients,
                         uint32_t value_bytes)
    : node_(node),
      rpc_clients_(std::move(rpc_clients)),
      raw_clients_(std::move(raw_clients)),
      value_bytes_(value_bytes),
      scratch_(node->alloc(KiB(16), 4096)) {
  SCALERPC_CHECK(!rpc_clients_.empty());
  SCALERPC_CHECK(raw_clients_.empty() || raw_clients_.size() == rpc_clients_.size());
}

sim::Task<bool> Coordinator::flush_involved(
    const std::vector<int>& shards, std::vector<std::vector<rpc::Bytes>>* responses) {
  responses->assign(rpc_clients_.size(), {});
  Join join(node_->loop(), static_cast<int>(shards.size()));
  for (int s : shards) {
    sim::spawn(node_->loop(),
               flush_one(rpc_clients_[static_cast<size_t>(s)],
                         &(*responses)[static_cast<size_t>(s)], &join));
  }
  co_await join.done.wait();
  co_return true;
}

sim::Task<void> Coordinator::abort_locks(const std::vector<KeyInfo>& writes) {
  std::vector<std::vector<uint64_t>> per_shard(rpc_clients_.size());
  for (const auto& k : writes) {
    per_shard[static_cast<size_t>(k.shard)].push_back(k.key);
  }
  std::vector<int> involved;
  for (size_t s = 0; s < per_shard.size(); ++s) {
    if (per_shard[s].empty()) {
      continue;
    }
    Writer w;
    w.u16(static_cast<uint16_t>(per_shard[s].size()));
    for (uint64_t key : per_shard[s]) {
      w.u64(key);
    }
    rpc_clients_[s]->stage(kTxAbortOp, w.take());
    involved.push_back(static_cast<int>(s));
  }
  if (!involved.empty()) {
    std::vector<std::vector<rpc::Bytes>> responses;
    co_await flush_involved(involved, &responses);
  }
}

sim::Task<TxnOutcome> Coordinator::execute(const TxnRequest& txn) {
  const uint32_t txn_id = next_txn_id_++ * 131 + 7;  // nonzero lock owner tag

  std::vector<KeyInfo> reads;
  std::vector<KeyInfo> writes;
  for (uint64_t key : txn.read_set) {
    reads.push_back(KeyInfo{key, shard_of(key), false, 0, 0, {}});
  }
  for (const auto& [key, value] : txn.write_set) {
    KeyInfo info{key, shard_of(key), false, 0, 0, value};
    writes.push_back(std::move(info));
  }
  // Lock in globally sorted key order for deadlock freedom.
  std::sort(writes.begin(), writes.end(),
            [](const KeyInfo& a, const KeyInfo& b) { return a.key < b.key; });

  // --- Phase 1: execution (lock write set, read everything) ---
  std::vector<std::vector<const KeyInfo*>> shard_reads(rpc_clients_.size());
  std::vector<std::vector<KeyInfo*>> shard_writes(rpc_clients_.size());
  for (auto& k : reads) {
    shard_reads[static_cast<size_t>(k.shard)].push_back(&k);
  }
  for (auto& k : writes) {
    shard_writes[static_cast<size_t>(k.shard)].push_back(&k);
  }
  std::vector<int> involved;
  for (size_t s = 0; s < rpc_clients_.size(); ++s) {
    if (shard_reads[s].empty() && shard_writes[s].empty()) {
      continue;
    }
    Writer w;
    w.u32(txn_id);
    w.u16(static_cast<uint16_t>(shard_reads[s].size()));
    for (const auto* k : shard_reads[s]) {
      w.u64(k->key);
    }
    w.u16(static_cast<uint16_t>(shard_writes[s].size()));
    for (const auto* k : shard_writes[s]) {
      w.u64(k->key);
    }
    rpc_clients_[s]->stage(kTxExecOp, w.take());
    involved.push_back(static_cast<int>(s));
  }
  SCALERPC_CHECK(!involved.empty());

  std::vector<std::vector<rpc::Bytes>> responses;
  co_await flush_involved(involved, &responses);

  bool lock_ok = true;
  std::vector<int> locked_shards;
  for (int s : involved) {
    const auto& resp = responses[static_cast<size_t>(s)];
    SCALERPC_CHECK(resp.size() == 1);
    Reader r(resp[0]);
    if (r.u8() == 0) {
      lock_ok = false;
      continue;
    }
    if (!shard_writes[static_cast<size_t>(s)].empty()) {
      locked_shards.push_back(s);
    }
    auto parse_key = [&r](KeyInfo* k) {
      k->found = r.u8() != 0;
      if (k->found) {
        k->version = r.u32();
        k->addr = r.u64();
        k->observed = r.bytes();
        if (k->value.empty()) {
          k->value = k->observed;  // reads keep the observed value
        }
      }
    };
    for (const auto* k : shard_reads[static_cast<size_t>(s)]) {
      parse_key(const_cast<KeyInfo*>(k));
    }
    for (auto* k : shard_writes[static_cast<size_t>(s)]) {
      parse_key(k);
    }
  }
  if (!lock_ok) {
    stats_.lock_failures++;
    stats_.aborts++;
    // Release locks on shards that did acquire them.
    std::vector<KeyInfo> to_unlock;
    for (int s : locked_shards) {
      for (auto* k : shard_writes[static_cast<size_t>(s)]) {
        to_unlock.push_back(*k);
      }
    }
    co_await abort_locks(to_unlock);
    co_return TxnOutcome{false, txn.write_set.empty()};
  }
  for (const auto& k : reads) {
    SCALERPC_CHECK_MSG(k.found, "transaction key missing from store");
  }
  for (const auto& k : writes) {
    SCALERPC_CHECK_MSG(k.found, "transaction key missing from store");
  }

  // Application logic: derive write values from the observed values (the
  // write set is locked, so these observations are stable through commit).
  if (txn.compute) {
    TxnRequest::Observed observed;
    for (const auto& k : reads) {
      observed.emplace_back(k.key, k.observed);
    }
    for (const auto& k : writes) {
      observed.emplace_back(k.key, k.observed);
    }
    std::vector<std::pair<uint64_t, rpc::Bytes>> new_writes;
    txn.compute(observed, &new_writes);
    for (const auto& [key, value] : new_writes) {
      for (auto& k : writes) {
        if (k.key == key) {
          k.value = value;
        }
      }
    }
  }

  // --- Phase 2: validation of the read set ---
  bool valid = true;
  if (!reads.empty()) {
    if (one_sided()) {
      // One-sided 8-byte reads of each read item's {lock, version} header.
      std::vector<int> posted_per_shard(rpc_clients_.size(), 0);
      uint64_t land = scratch_;
      for (const auto& k : reads) {
        simrdma::SendWr wr;
        wr.opcode = simrdma::Opcode::kRead;
        wr.local_addr = land;
        wr.length = 8;
        wr.remote_addr = k.addr;
        wr.rkey = raw_clients_[static_cast<size_t>(k.shard)]->server_rkey();
        wr.signaled = true;
        co_await raw_clients_[static_cast<size_t>(k.shard)]->post_raw(wr);
        posted_per_shard[static_cast<size_t>(k.shard)]++;
        land += 16;
      }
      for (size_t s = 0; s < posted_per_shard.size(); ++s) {
        for (int i = 0; i < posted_per_shard[s]; ++i) {
          const simrdma::Completion c = co_await raw_clients_[s]->raw_completion();
          SCALERPC_CHECK(c.status == simrdma::WcStatus::kSuccess);
        }
      }
      land = scratch_;
      for (const auto& k : reads) {
        const auto lock = node_->memory().load_pod<uint32_t>(land);
        const auto version = node_->memory().load_pod<uint32_t>(land + 4);
        if ((lock != 0 && lock != txn_id) || version != k.version) {
          valid = false;
        }
        land += 16;
      }
    } else {
      std::vector<int> vshards;
      for (size_t s = 0; s < rpc_clients_.size(); ++s) {
        if (shard_reads[s].empty()) {
          continue;
        }
        Writer w;
        w.u16(static_cast<uint16_t>(shard_reads[s].size()));
        for (const auto* k : shard_reads[s]) {
          w.u64(k->key);
        }
        rpc_clients_[s]->stage(kTxValidateOp, w.take());
        vshards.push_back(static_cast<int>(s));
      }
      co_await flush_involved(vshards, &responses);
      for (int s : vshards) {
        Reader r(responses[static_cast<size_t>(s)][0]);
        for (const auto* k : shard_reads[static_cast<size_t>(s)]) {
          const uint32_t lock = r.u32();
          const uint32_t version = r.u32();
          if ((lock != 0 && lock != txn_id) || version != k->version) {
            valid = false;
          }
        }
      }
    }
  }
  if (!valid) {
    stats_.validation_failures++;
    stats_.aborts++;
    co_await abort_locks(writes);
    co_return TxnOutcome{false, txn.write_set.empty()};
  }
  if (writes.empty()) {
    stats_.commits++;
    co_return TxnOutcome{true, true};
  }

  // --- Phase 3: log, then commit ---
  std::vector<int> wshards;
  for (size_t s = 0; s < rpc_clients_.size(); ++s) {
    if (shard_writes[s].empty()) {
      continue;
    }
    Writer w;
    w.u32(txn_id);
    for (const auto* k : shard_writes[s]) {
      w.u64(k->key);
      w.bytes(k->value);
    }
    rpc_clients_[s]->stage(kTxLogOp, w.take());
    wshards.push_back(static_cast<int>(s));
  }
  co_await flush_involved(wshards, &responses);

  if (one_sided()) {
    // One-sided commit: a single RDMA write per item covering
    // {lock=0, version+1, value}, fire-and-forget (paper: "only needs to
    // post write verbs without waiting for the feedback messages").
    uint64_t src = scratch_ + KiB(4);
    for (const auto& k : writes) {
      auto& mem = node_->memory();
      mem.store_pod<uint32_t>(src, 0);              // lock released
      mem.store_pod<uint32_t>(src + 4, k.version + 1);
      mem.store(src + 8, k.value);
      simrdma::SendWr wr;
      wr.opcode = simrdma::Opcode::kWrite;
      wr.local_addr = src;
      wr.length = 8 + static_cast<uint32_t>(k.value.size());
      wr.remote_addr = k.addr;
      wr.rkey = raw_clients_[static_cast<size_t>(k.shard)]->server_rkey();
      wr.signaled = false;
      co_await raw_clients_[static_cast<size_t>(k.shard)]->post_raw(wr);
      src += align_up(8 + value_bytes_, 64);
    }
  } else {
    std::vector<int> cshards;
    for (size_t s = 0; s < rpc_clients_.size(); ++s) {
      if (shard_writes[s].empty()) {
        continue;
      }
      Writer w;
      w.u16(static_cast<uint16_t>(shard_writes[s].size()));
      for (const auto* k : shard_writes[s]) {
        w.u64(k->key);
        w.bytes(k->value);
      }
      rpc_clients_[s]->stage(kTxCommitRpcOp, w.take());
      cshards.push_back(static_cast<int>(s));
    }
    co_await flush_involved(cshards, &responses);
  }

  stats_.commits++;
  co_return TxnOutcome{true, false};
}

}  // namespace scalerpc::txn
