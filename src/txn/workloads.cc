#include "src/txn/workloads.h"

#include <algorithm>

namespace scalerpc::txn {

namespace {
rpc::Bytes value_of(uint64_t v, uint32_t value_bytes) {
  rpc::Bytes out(value_bytes, 0);
  std::memcpy(out.data(), &v, sizeof(v));
  return out;
}
}  // namespace

TxnRequest ObjectStoreWorkload::next(Rng& rng) const {
  TxnRequest txn;
  // Draw distinct keys for the whole transaction.
  std::vector<uint64_t> keys;
  while (keys.size() < static_cast<size_t>(reads_ + writes_)) {
    const uint64_t k = rng.next_below(keys_);
    if (std::find(keys.begin(), keys.end(), k) == keys.end()) {
      keys.push_back(k);
    }
  }
  for (int i = 0; i < reads_; ++i) {
    txn.read_set.push_back(keys[static_cast<size_t>(i)]);
  }
  for (int i = 0; i < writes_; ++i) {
    txn.write_set.emplace_back(keys[static_cast<size_t>(reads_ + i)],
                               value_of(rng.next(), value_bytes_));
  }
  return txn;
}

SmallBankWorkload::Op SmallBankWorkload::pick_op(Rng& rng) const {
  // 15% balance (read-only) / 85% updates, per the paper.
  const uint64_t roll = rng.next_below(100);
  if (roll < 15) {
    return Op::kBalance;
  }
  if (roll < 40) {
    return Op::kDepositChecking;
  }
  if (roll < 65) {
    return Op::kTransactSavings;
  }
  if (roll < 85) {
    return Op::kAmalgamate;
  }
  return Op::kWriteCheck;
}

uint64_t SmallBankWorkload::pick_account(Rng& rng) const {
  if (rng.next_bool(hot_probability_)) {
    return rng.next_below(hot_accounts_);
  }
  return hot_accounts_ + rng.next_below(accounts_ - hot_accounts_);
}

rpc::Bytes SmallBankWorkload::amount(Rng& rng) const {
  return value_of(rng.next_in(1, 1000), value_bytes_);
}

TxnRequest SmallBankWorkload::next(Rng& rng) const {
  TxnRequest txn;
  const Op op = pick_op(rng);
  const uint64_t a = pick_account(rng);
  switch (op) {
    case Op::kBalance:
      txn.read_set = {key_of(a, kChecking), key_of(a, kSavings)};
      break;
    case Op::kDepositChecking:
      txn.write_set.emplace_back(key_of(a, kChecking), amount(rng));
      break;
    case Op::kTransactSavings:
      txn.write_set.emplace_back(key_of(a, kSavings), amount(rng));
      break;
    case Op::kAmalgamate: {
      uint64_t b = pick_account(rng);
      if (b == a) {
        b = (a + 1) % accounts_;
      }
      txn.read_set = {key_of(a, kSavings)};
      txn.write_set.emplace_back(key_of(a, kChecking), amount(rng));
      txn.write_set.emplace_back(key_of(b, kChecking), amount(rng));
      break;
    }
    case Op::kWriteCheck:
      txn.read_set = {key_of(a, kSavings)};
      txn.write_set.emplace_back(key_of(a, kChecking), amount(rng));
      break;
  }
  return txn;
}

}  // namespace scalerpc::txn
