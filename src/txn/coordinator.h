// ScaleTX coordinator (paper Section 4.2, Fig. 15): optimistic concurrency
// control with two-phase commit across sharded participants.
//
// Phases:
//  1. Execution — one kTxExec RPC per involved participant: locks the write
//     set, returns values + versions + item addresses for both sets.
//  2. Validation — re-checks read-set versions. ScaleTX posts one-sided
//     RDMA reads of the 8-byte {lock, version} headers; ScaleTX-O (and the
//     baseline transports) use kTxValidate RPCs.
//  3. Log + Commit — kTxLog RPCs append redo entries; then ScaleTX posts
//     one-sided RDMA writes of {lock=0, version+1, value} per written item
//     (no response needed), while the RPC-only path sends kTxCommitRpc.
#ifndef SRC_TXN_COORDINATOR_H_
#define SRC_TXN_COORDINATOR_H_

#include <vector>

#include "src/common/codec.h"
#include "src/scalerpc/client.h"

namespace scalerpc::txn {

struct TxnRequest {
  std::vector<uint64_t> read_set;
  std::vector<std::pair<uint64_t, rpc::Bytes>> write_set;

  // Optional application logic run after the execution phase, with the
  // values observed under the execution-phase locks/versions: receives
  // (key, observed value) for every read- and write-set key and may replace
  // the write values. This is how OCC applications derive writes from reads
  // (classic read-modify-write transactions).
  using Observed = std::vector<std::pair<uint64_t, rpc::Bytes>>;
  std::function<void(const Observed& observed,
                     std::vector<std::pair<uint64_t, rpc::Bytes>>* writes)>
      compute;
};

struct TxnOutcome {
  bool committed = false;
  bool read_only = false;
};

struct CoordinatorStats {
  uint64_t commits = 0;
  uint64_t aborts = 0;
  uint64_t lock_failures = 0;
  uint64_t validation_failures = 0;
};

class Coordinator {
 public:
  // `rpc_clients[i]` talks to participant i. `raw_clients` (same indexing)
  // enables the one-sided paths and may be empty (RPC-only mode); entries
  // are ScaleRPC clients whose RC QPs are co-used for raw verbs.
  Coordinator(simrdma::Node* node, std::vector<rpc::RpcClient*> rpc_clients,
              std::vector<core::ScaleRpcClient*> raw_clients, uint32_t value_bytes);

  // Runs one transaction attempt (no internal retry; callers retry aborts).
  sim::Task<TxnOutcome> execute(const TxnRequest& txn);

  const CoordinatorStats& stats() const { return stats_; }
  int num_participants() const { return static_cast<int>(rpc_clients_.size()); }
  int shard_of(uint64_t key) const {
    return static_cast<int>(key % rpc_clients_.size());
  }
  bool one_sided() const { return !raw_clients_.empty(); }

 private:
  struct KeyInfo {
    uint64_t key = 0;
    int shard = 0;
    bool found = false;
    uint32_t version = 0;
    uint64_t addr = 0;
    rpc::Bytes value;     // value to commit (writes) / observed (reads)
    rpc::Bytes observed;  // value seen during the execution phase
  };

  sim::Task<bool> flush_involved(const std::vector<int>& shards,
                                 std::vector<std::vector<rpc::Bytes>>* responses);
  sim::Task<void> abort_locks(const std::vector<KeyInfo>& writes);

  simrdma::Node* node_;
  std::vector<rpc::RpcClient*> rpc_clients_;
  std::vector<core::ScaleRpcClient*> raw_clients_;
  uint32_t value_bytes_;
  uint32_t next_txn_id_ = 1;
  uint64_t scratch_;  // one-sided read landing / write staging area
  CoordinatorStats stats_;
};

}  // namespace scalerpc::txn

#endif  // SRC_TXN_COORDINATOR_H_
