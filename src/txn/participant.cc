#include "src/txn/participant.h"

namespace scalerpc::txn {

Participant::Participant(simrdma::Node* node, rpc::RpcServer* server,
                         uint64_t kv_capacity, uint32_t value_bytes)
    : node_(node),
      store_(node, kv_capacity, value_bytes),
      log_base_(node->alloc(MiB(4), 4096)),
      log_size_(MiB(4)) {
  register_handlers(server);
}

void Participant::register_handlers(rpc::RpcServer* server) {
  // --- Execution phase: lock the write set, return values+versions+addrs
  // for both sets. Request: | txn_id:u32 | nr:u16 | r keys | nw:u16 | w keys |.
  // Response: | ok:u8 | per key (r then w): found:u8 version:u32 addr:u64
  //             value:bytes |. On lock conflict: ok=0, all locks released.
  server->handlers().register_handler(
      kTxExec, [this](const rpc::RequestContext&, std::span<const uint8_t> req) {
        Reader r(req);
        const uint32_t txn_id = r.u32();
        std::vector<uint64_t> reads(r.u16());
        for (auto& k : reads) {
          k = r.u64();
        }
        std::vector<uint64_t> writes(r.u16());
        for (auto& k : writes) {
          k = r.u64();
        }

        rpc::HandlerResult res;
        Nanos cpu = 120;  // dispatch + response assembly

        // Lock the write set first (sorted by caller for deadlock freedom).
        size_t locked = 0;
        bool ok = true;
        for (; locked < writes.size(); ++locked) {
          cpu += store_.probe_cost(writes[locked]);
          if (!store_.try_lock(writes[locked], txn_id)) {
            ok = false;
            lock_conflicts_++;
            break;
          }
        }
        if (!ok) {
          for (size_t i = 0; i < locked; ++i) {
            store_.unlock(writes[i]);
          }
          res.response = {0};
          res.cpu_ns = cpu;
          return res;
        }

        Writer w;
        w.u8(1);
        auto emit = [&](uint64_t key) {
          cpu += store_.probe_cost(key);
          auto view = store_.lookup(key);
          if (!view.has_value()) {
            w.u8(0);
            return;
          }
          w.u8(1);
          w.u32(view->version);
          w.u64(view->header_addr);
          w.bytes(view->value);
        };
        for (uint64_t k : reads) {
          emit(k);
        }
        for (uint64_t k : writes) {
          emit(k);
        }
        res.response = w.take();
        res.cpu_ns = cpu;
        return res;
      });

  // --- Validation (RPC-only path): | n:u16 | keys | -> | per key: lock:u32
  // version:u32 |.
  server->handlers().register_handler(
      kTxValidate, [this](const rpc::RequestContext&, std::span<const uint8_t> req) {
        Reader r(req);
        const uint16_t n = r.u16();
        Writer w;
        rpc::HandlerResult res;
        Nanos cpu = 80;
        for (uint16_t i = 0; i < n; ++i) {
          const uint64_t key = r.u64();
          cpu += store_.probe_cost(key);
          auto view = store_.lookup(key);
          w.u32(view.has_value() ? view->lock : ~0u);
          w.u32(view.has_value() ? view->version : 0);
        }
        res.response = w.take();
        res.cpu_ns = cpu;
        return res;
      });

  // --- Redo log append: payload is opaque; we charge the copy.
  server->handlers().register_handler(
      kTxLog, [this](const rpc::RequestContext&, std::span<const uint8_t> req) {
        rpc::HandlerResult res;
        const uint64_t len = align_up(req.size(), 64);
        if (log_head_ + len > log_size_) {
          log_head_ = 0;  // ring wrap (simulated persistence)
        }
        node_->memory().store(log_base_ + log_head_, req);
        res.cpu_ns = 90 + node_->llc().cpu_write(log_base_ + log_head_,
                                                 static_cast<uint32_t>(req.size()));
        log_head_ += len;
        log_appends_++;
        res.response = {1};
        return res;
      });

  // --- Commit (RPC-only path): | n:u16 | per key: key:u64 value:bytes |.
  server->handlers().register_handler(
      kTxCommitRpc, [this](const rpc::RequestContext&, std::span<const uint8_t> req) {
        Reader r(req);
        const uint16_t n = r.u16();
        rpc::HandlerResult res;
        Nanos cpu = 80;
        for (uint16_t i = 0; i < n; ++i) {
          const uint64_t key = r.u64();
          const auto value = r.bytes();
          cpu += store_.probe_cost(key);
          SCALERPC_CHECK(store_.commit_update(key, value));
        }
        res.response = {1};
        res.cpu_ns = cpu;
        return res;
      });

  // --- Abort: release locks held by this transaction.
  server->handlers().register_handler(
      kTxAbort, [this](const rpc::RequestContext&, std::span<const uint8_t> req) {
        Reader r(req);
        const uint16_t n = r.u16();
        rpc::HandlerResult res;
        Nanos cpu = 60;
        for (uint16_t i = 0; i < n; ++i) {
          const uint64_t key = r.u64();
          cpu += store_.probe_cost(key);
          store_.unlock(key);
        }
        res.response = {1};
        res.cpu_ns = cpu;
        return res;
      });

  // --- Plain KV ops (quickstart/example traffic) ---
  server->handlers().register_handler(
      kKvGet, [this](const rpc::RequestContext&, std::span<const uint8_t> req) {
        Reader r(req);
        const uint64_t key = r.u64();
        rpc::HandlerResult res;
        res.cpu_ns = 60 + store_.probe_cost(key);
        auto view = store_.lookup(key);
        Writer w;
        w.u8(view.has_value() ? 1 : 0);
        if (view.has_value()) {
          w.bytes(view->value);
        }
        res.response = w.take();
        return res;
      });
  server->handlers().register_handler(
      kKvPut, [this](const rpc::RequestContext&, std::span<const uint8_t> req) {
        Reader r(req);
        const uint64_t key = r.u64();
        const auto value = r.bytes();
        rpc::HandlerResult res;
        res.cpu_ns = 90 + store_.probe_cost(key);
        if (store_.lookup(key).has_value()) {
          store_.commit_update(key, value);
        } else {
          store_.insert(key, value);
        }
        res.response = {1};
        return res;
      });
}

}  // namespace scalerpc::txn
