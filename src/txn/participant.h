// ScaleTX participant (paper Section 4.2): a KV shard plus the transaction
// handlers (execute-and-lock, validate, log, commit, abort) registered on
// whatever RPC transport serves this storage node.
#ifndef SRC_TXN_PARTICIPANT_H_
#define SRC_TXN_PARTICIPANT_H_

#include <memory>

#include "src/common/codec.h"
#include "src/kv/hashstore.h"
#include "src/rpc/rpc.h"

namespace scalerpc::txn {

// RPC opcodes.
constexpr uint8_t kTxExec = 10;       // lock write set + read r/w values
constexpr uint8_t kTxValidate = 11;   // re-read versions (RPC-only path)
constexpr uint8_t kTxLog = 12;        // append redo-log entry
constexpr uint8_t kTxCommitRpc = 13;  // apply writes + unlock (RPC-only path)
constexpr uint8_t kTxAbort = 14;      // release locks
constexpr uint8_t kKvGet = 20;        // plain KV ops for examples
constexpr uint8_t kKvPut = 21;

class Participant {
 public:
  Participant(simrdma::Node* node, rpc::RpcServer* server, uint64_t kv_capacity,
              uint32_t value_bytes);

  kv::HashStore& store() { return store_; }
  simrdma::Node* node() { return node_; }
  uint64_t log_appends() const { return log_appends_; }
  uint64_t lock_conflicts() const { return lock_conflicts_; }

 private:
  void register_handlers(rpc::RpcServer* server);

  simrdma::Node* node_;
  kv::HashStore store_;
  uint64_t log_base_;
  uint64_t log_size_;
  uint64_t log_head_ = 0;
  uint64_t log_appends_ = 0;
  uint64_t lock_conflicts_ = 0;
};

}  // namespace scalerpc::txn

#endif  // SRC_TXN_PARTICIPANT_H_
