#include "src/txn/testbed.h"

namespace scalerpc::txn {

using harness::TransportKind;

ScaleTxTestbed::ScaleTxTestbed(ScaleTxConfig cfg)
    : cfg_(cfg), cluster_(cfg.sim), rng_(cfg.seed) {
  SCALERPC_CHECK(!cfg_.one_sided || cfg_.kind == TransportKind::kScaleRpc);

  // Participant (storage server) nodes.
  for (int p = 0; p < cfg_.participants; ++p) {
    participant_nodes_.push_back(
        cluster_.add_node_with_skewed_clock("participant" + std::to_string(p), rng_));
    simrdma::Node* node = participant_nodes_.back();
    std::unique_ptr<rpc::RpcServer> server;
    switch (cfg_.kind) {
      case TransportKind::kRawWrite:
        server = std::make_unique<transport::RawWriteServer>(node, cfg_.rpc);
        break;
      case TransportKind::kHerd:
        server = std::make_unique<transport::HerdServer>(node, cfg_.rpc);
        break;
      case TransportKind::kFasst:
        server = std::make_unique<transport::FasstServer>(node, cfg_.rpc);
        break;
      case TransportKind::kSelfRpc:
        server = std::make_unique<transport::SelfRpcServer>(node, cfg_.rpc);
        break;
      case TransportKind::kProxy:
        server = std::make_unique<transport::ProxyServer>(node, cfg_.rpc);
        break;
      case TransportKind::kScaleRpc: {
        auto s = std::make_unique<core::ScaleRpcServer>(node, cfg_.rpc);
        scalerpc_servers_.push_back(s.get());
        server = std::move(s);
        break;
      }
    }
    participants_.push_back(std::make_unique<Participant>(
        node, server.get(), cfg_.keys_per_shard * 2, cfg_.value_bytes));
    servers_.push_back(std::move(server));
  }

  // Global synchronization between ScaleRPC servers (Section 4.2).
  if (cfg_.kind == TransportKind::kScaleRpc) {
    time_server_ = std::make_unique<core::TimeSyncServer>(participant_nodes_[0]);
    core::TimeSyncServer* ts = time_server_.get();
    scalerpc_servers_[0]->set_synced_clock([ts] { return ts->global_now(); });
    for (int p = 1; p < cfg_.participants; ++p) {
      followers_.push_back(std::make_unique<core::TimeSyncFollower>(
          participant_nodes_[static_cast<size_t>(p)], ts));
      sim::run_blocking(cluster_.loop(), followers_.back()->connect());
      core::TimeSyncFollower* f = followers_.back().get();
      scalerpc_servers_[static_cast<size_t>(p)]->set_synced_clock(
          [f] { return f->global_now(); });
    }
  }

  // Coordinator (client) nodes and coordinators.
  for (int i = 0; i < cfg_.coordinator_nodes; ++i) {
    coord_nodes_.push_back(cluster_.add_node("coordinator" + std::to_string(i)));
    cpu_pools_.push_back(std::make_unique<rpc::CpuPool>(cluster_.loop(), 24));
  }
  for (int c = 0; c < cfg_.num_coordinators; ++c) {
    const auto node_idx = static_cast<size_t>(c) % coord_nodes_.size();
    transport::ClientEnv env{coord_nodes_[node_idx], cpu_pools_[node_idx].get()};
    std::vector<rpc::RpcClient*> rpc_clients;
    std::vector<core::ScaleRpcClient*> raw_clients;
    for (int p = 0; p < cfg_.participants; ++p) {
      std::unique_ptr<rpc::RpcClient> client;
      switch (cfg_.kind) {
        case TransportKind::kRawWrite:
          client = std::make_unique<transport::RawWriteClient>(
              env, static_cast<transport::RawWriteServer*>(servers_[static_cast<size_t>(p)].get()));
          break;
        case TransportKind::kHerd:
          client = std::make_unique<transport::HerdClient>(
              env, static_cast<transport::HerdServer*>(servers_[static_cast<size_t>(p)].get()));
          break;
        case TransportKind::kFasst:
          client = std::make_unique<transport::FasstClient>(
              env, static_cast<transport::FasstServer*>(servers_[static_cast<size_t>(p)].get()));
          break;
        case TransportKind::kSelfRpc:
          client = std::make_unique<transport::SelfRpcClient>(
              env, static_cast<transport::SelfRpcServer*>(servers_[static_cast<size_t>(p)].get()));
          break;
        case TransportKind::kProxy:
          client = std::make_unique<transport::ProxyClient>(
              env, static_cast<transport::ProxyServer*>(servers_[static_cast<size_t>(p)].get()));
          break;
        case TransportKind::kScaleRpc: {
          auto sc = std::make_unique<core::ScaleRpcClient>(
              env, scalerpc_servers_[static_cast<size_t>(p)]);
          if (cfg_.one_sided) {
            raw_clients.push_back(sc.get());
          }
          client = std::move(sc);
          break;
        }
      }
      sim::run_blocking(cluster_.loop(), client->connect());
      rpc_clients.push_back(client.get());
      owned_clients_.push_back(std::move(client));
    }
    coordinators_.push_back(std::make_unique<Coordinator>(
        coord_nodes_[node_idx], std::move(rpc_clients), std::move(raw_clients),
        cfg_.value_bytes));
  }
}

void ScaleTxTestbed::preload() {
  const uint64_t total = cfg_.keys_per_shard * static_cast<uint64_t>(cfg_.participants);
  rpc::Bytes zero(cfg_.value_bytes, 0);
  for (uint64_t key = 0; key < total; ++key) {
    const auto shard = static_cast<size_t>(key % static_cast<uint64_t>(cfg_.participants));
    SCALERPC_CHECK(participants_[shard]->store().insert(key, zero).has_value());
  }
}

void ScaleTxTestbed::start() {
  for (auto& s : servers_) {
    s->start();
  }
  if (time_server_ != nullptr) {
    time_server_->start();
    for (auto& f : followers_) {
      f->start();
    }
    // Let followers converge before transactions begin.
    cluster_.loop().run_for(msec(1));
  }
}

void ScaleTxTestbed::stop() {
  for (auto& s : servers_) {
    s->stop();
  }
  if (time_server_ != nullptr) {
    time_server_->stop();
    for (auto& f : followers_) {
      f->stop();
    }
  }
}

namespace {

struct RunState {
  bool stop = false;
  bool measuring = false;
  uint64_t committed = 0;
  uint64_t attempts = 0;
};

sim::Task<void> coordinator_actor(sim::EventLoop* loop, Coordinator* coordinator,
                                  std::function<TxnRequest(Rng&)>* workload, Rng rng,
                                  RunState* st) {
  while (!st->stop) {
    const TxnRequest txn = (*workload)(rng);
    int attempts = 0;
    bool committed = false;
    while (!committed && attempts < 64 && !st->stop) {
      attempts++;
      const TxnOutcome out = co_await coordinator->execute(txn);
      committed = out.committed;
      if (!committed) {
        // Bounded randomized backoff before retrying.
        co_await loop->delay(static_cast<Nanos>(rng.next_in(1, 4)) * usec(1) * attempts);
      }
    }
    if (st->measuring) {
      st->attempts += static_cast<uint64_t>(attempts);
      st->committed += committed ? 1 : 0;
    }
  }
}

}  // namespace

TxnRunResult run_transactions_erased(ScaleTxTestbed& bed,
                                     std::function<TxnRequest(Rng&)> workload,
                                     Nanos warmup, Nanos measure, uint64_t seed) {
  auto& loop = bed.loop();
  RunState st;
  for (size_t c = 0; c < bed.num_coordinators(); ++c) {
    sim::spawn(loop, coordinator_actor(&loop, &bed.coordinator(c), &workload,
                                       Rng(seed * 7919 + c), &st));
  }
  loop.run_for(warmup);
  st.measuring = true;
  const Nanos t0 = loop.now();
  loop.run_for(measure);
  st.measuring = false;
  const Nanos elapsed = loop.now() - t0;
  st.stop = true;
  loop.run_for(usec(200));

  TxnRunResult result;
  result.committed = st.committed;
  result.attempts = st.attempts;
  result.committed_ktps =
      static_cast<double>(st.committed) * 1e6 / static_cast<double>(elapsed);
  result.abort_rate =
      st.attempts == 0
          ? 0.0
          : 1.0 - static_cast<double>(st.committed) / static_cast<double>(st.attempts);
  return result;
}

}  // namespace scalerpc::txn
