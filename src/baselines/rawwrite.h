// RawWrite RPC — the paper's baseline (Table 2): ScaleRPC's data path with
// every scalability optimization disabled, equivalent to FaRM RPC.
//
// Clients RDMA-write right-aligned requests into statically mapped
// per-client block arrays at the server; server workers poll the Valid
// bytes, dispatch, and RDMA-write responses back into per-client response
// blocks at each client. One RC QP per client — which is exactly why it
// collapses at scale.
#ifndef SRC_BASELINES_RAWWRITE_H_
#define SRC_BASELINES_RAWWRITE_H_

#include <memory>
#include <vector>

#include "src/baselines/common.h"

namespace scalerpc::transport {

class RawWriteServer : public rpc::RpcServer {
 public:
  RawWriteServer(simrdma::Node* node, TransportConfig cfg);

  void start() override;
  void stop() override;

  simrdma::Node* node() { return node_; }
  const TransportConfig& config() const { return cfg_; }

  // Control-plane admission (out-of-band bootstrap in real deployments).
  // `client_qp` is the client-side RC QP; returns the new client id.
  struct Admission {
    int client_id;
    uint64_t req_base;  // server-side request blocks (slots_per_client)
    uint32_t req_rkey;
  };
  Admission admit(simrdma::QueuePair* client_qp, uint64_t client_resp_base,
                  uint32_t client_resp_rkey);

 private:
  struct ClientState {
    int id = 0;
    simrdma::QueuePair* qp = nullptr;  // server-side QP (responses)
    uint64_t req_base = 0;             // server-side request blocks
    uint64_t resp_remote = 0;          // client-side response blocks
    uint32_t resp_rkey = 0;
    uint64_t resp_src = 0;  // server-local compose buffer (slots blocks)
  };

  sim::Task<void> worker(int index);
  sim::Task<bool> serve_slot(ClientState& c, int slot);

  simrdma::Node* node_;
  TransportConfig cfg_;
  bool running_ = false;
  std::vector<std::unique_ptr<ClientState>> clients_;
  std::vector<simrdma::CompletionQueue*> worker_cqs_;
  std::vector<std::unique_ptr<sim::Notification>> worker_wake_;
  uint64_t pool_base_ = 0;
  uint64_t pool_bytes_ = 0;
  simrdma::MemoryRegion* pool_mr_ = nullptr;
};

class RawWriteClient : public rpc::RpcClient {
 public:
  RawWriteClient(ClientEnv env, RawWriteServer* server);

  sim::Task<void> connect() override;
  void stage(uint8_t op, rpc::Bytes request) override;
  sim::Task<std::vector<rpc::Bytes>> flush() override;
  int client_id() const override { return id_; }

 private:
  ClientEnv env_;
  RawWriteServer* server_;
  TransportConfig cfg_;
  int id_ = -1;
  simrdma::QueuePair* qp_ = nullptr;
  simrdma::CompletionQueue* cq_ = nullptr;
  uint64_t req_src_ = 0;      // local compose buffers (slots blocks)
  uint64_t resp_base_ = 0;    // local response blocks (slots)
  uint64_t req_remote_ = 0;   // server-side request blocks
  uint32_t req_rkey_ = 0;
  std::unique_ptr<sim::Notification> resp_wake_;
  std::vector<std::pair<uint8_t, rpc::Bytes>> staged_;
};

}  // namespace scalerpc::transport

#endif  // SRC_BASELINES_RAWWRITE_H_
