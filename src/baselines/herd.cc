#include "src/baselines/herd.h"

#include <cstring>

namespace scalerpc::transport {

using rpc::Bytes;
using simrdma::Opcode;
using simrdma::QpType;
using simrdma::RecvWr;
using simrdma::SendWr;

// UD response payload layout: | slot:1 | op:1 | flags:1 | data |.
constexpr uint32_t kUdHeader = 3;

HerdServer::HerdServer(simrdma::Node* node, TransportConfig cfg)
    : node_(node), cfg_(cfg) {
  node_->arena_mr();
  for (int w = 0; w < cfg_.server_workers; ++w) {
    auto* send_cq = node_->create_cq();
    worker_ud_qps_.push_back(node_->create_qp(QpType::kUD, send_cq, send_cq));
    worker_resp_ring_.push_back(node_->alloc(
        static_cast<uint64_t>(cfg_.slots_per_client) * cfg_.block_bytes, 4096));
    worker_wake_.push_back(std::make_unique<sim::Notification>(node_->loop()));
  }
}

HerdServer::Admission HerdServer::admit(simrdma::QueuePair* client_uc_qp,
                                        int client_node, uint32_t client_ud_qpn) {
  auto state = std::make_unique<ClientState>();
  state->id = static_cast<int>(clients_.size());
  const int w = state->id % cfg_.server_workers;
  auto* cq = node_->create_cq();
  state->uc_qp = node_->create_qp(QpType::kUC, cq, cq);
  node_->cluster()->connect(state->uc_qp, client_uc_qp);
  const uint64_t region =
      static_cast<uint64_t>(cfg_.slots_per_client) * cfg_.block_bytes;
  state->req_base = node_->alloc(region, 4096);
  state->resp_node = client_node;
  state->resp_qpn = client_ud_qpn;
  sim::Notification* wake = worker_wake_[static_cast<size_t>(w)].get();
  node_->memory().add_watcher(state->req_base, region, [wake] { wake->notify(); });

  Admission adm{state->id, state->req_base, node_->arena_mr()->rkey};
  clients_.push_back(std::move(state));
  return adm;
}

void HerdServer::start() {
  SCALERPC_CHECK(!running_);
  running_ = true;
  for (int w = 0; w < cfg_.server_workers; ++w) {
    sim::spawn(node_->loop(), worker(w));
  }
}

void HerdServer::stop() {
  running_ = false;
  for (auto& wake : worker_wake_) {
    wake->notify();
  }
}

sim::Task<void> HerdServer::worker(int index) {
  auto& loop = node_->loop();
  auto& mem = node_->memory();
  sim::Notification* wake = worker_wake_[static_cast<size_t>(index)].get();
  simrdma::QueuePair* ud = worker_ud_qps_[static_cast<size_t>(index)];
  const uint64_t ring = worker_resp_ring_[static_cast<size_t>(index)];
  int ring_next = 0;

  while (running_) {
    int served = 0;
    Nanos cost = 0;
    for (size_t ci = static_cast<size_t>(index); ci < clients_.size();
         ci += static_cast<size_t>(cfg_.server_workers)) {
      ClientState& c = *clients_[ci];
      for (int slot = 0; slot < cfg_.slots_per_client; ++slot) {
        const uint64_t block =
            c.req_base + static_cast<uint64_t>(slot) * cfg_.block_bytes;
        cost += node_->read_cost(block + cfg_.block_bytes - 1, 1);
        auto msg = rpc::decode_block(mem, block, cfg_.block_bytes);
        if (!msg.has_value()) {
          continue;
        }
        cost += node_->read_cost(block + cfg_.block_bytes - msg->total_bytes(),
                                 msg->total_bytes());
        rpc::clear_block(mem, block, cfg_.block_bytes);
        cost += node_->write_cost(block + cfg_.block_bytes - 1, 1);

        rpc::RequestContext ctx{c.id, msg->op};
        rpc::HandlerResult result = handlers_.dispatch(ctx, msg->data);
        cost += cfg_.handler_base_ns + result.cpu_ns;
        requests_served_++;

        // Compose [slot|op|flags|data] and answer via UD send (<= MTU).
        const uint32_t resp_len = kUdHeader + static_cast<uint32_t>(result.response.size());
        SCALERPC_CHECK_MSG(resp_len <= node_->params().ud_mtu_bytes,
                           "HERD response exceeds UD MTU");
        const uint64_t src = ring + static_cast<uint64_t>(ring_next) * cfg_.block_bytes;
        ring_next = (ring_next + 1) % cfg_.slots_per_client;
        uint8_t* p = mem.raw(src);
        p[0] = static_cast<uint8_t>(slot);
        p[1] = msg->op;
        p[2] = result.flags;
        if (!result.response.empty()) {
          std::memcpy(p + 3, result.response.data(), result.response.size());
        }
        cost += node_->write_cost(src, resp_len);
        co_await loop.delay(cost);
        cost = 0;

        SendWr wr;
        wr.opcode = Opcode::kSend;
        wr.local_addr = src;
        wr.length = resp_len;
        wr.dest_node = c.resp_node;
        wr.dest_qpn = c.resp_qpn;
        wr.signaled = false;
        // HERD inlines small UD sends.
        wr.inline_data = resp_len <= node_->params().max_inline_bytes;
        co_await ud->post_send(wr);
        served++;
      }
    }
    if (cost > 0) {
      co_await loop.delay(cost);
    }
    if (served == 0 && running_) {
      co_await wake->wait();
    }
  }
}

HerdClient::HerdClient(ClientEnv env, HerdServer* server)
    : env_(env), server_(server), cfg_(server->config()) {}

sim::Task<void> HerdClient::connect() {
  const auto& p = env_.node->params();
  recv_buf_bytes_ = static_cast<uint32_t>(align_up(cfg_.block_bytes + p.grh_bytes, 64));
  req_src_ =
      env_.node->alloc(static_cast<uint64_t>(cfg_.slots_per_client) * cfg_.block_bytes, 4096);
  recv_ring_ = env_.node->alloc(
      static_cast<uint64_t>(cfg_.slots_per_client) * recv_buf_bytes_, 4096);
  uc_cq_ = env_.node->create_cq();
  uc_qp_ = env_.node->create_qp(QpType::kUC, uc_cq_, uc_cq_);
  ud_recv_cq_ = env_.node->create_cq();
  ud_send_cq_ = env_.node->create_cq();
  ud_qp_ = env_.node->create_qp(QpType::kUD, ud_send_cq_, ud_recv_cq_);
  for (int i = 0; i < cfg_.slots_per_client; ++i) {
    ud_qp_->post_recv_immediate(
        RecvWr{static_cast<uint64_t>(i),
               recv_ring_ + static_cast<uint64_t>(i) * recv_buf_bytes_,
               recv_buf_bytes_});
  }
  const auto adm = server_->admit(uc_qp_, env_.node->id(), ud_qp_->qpn());
  id_ = adm.client_id;
  req_remote_ = adm.req_base;
  req_rkey_ = adm.req_rkey;
  co_return;
}

void HerdClient::stage(uint8_t op, rpc::Bytes request) {
  SCALERPC_CHECK(static_cast<int>(staged_.size()) < cfg_.slots_per_client);
  SCALERPC_CHECK(request.size() <= rpc::max_payload(cfg_.block_bytes));
  staged_.emplace_back(op, std::move(request));
}

sim::Task<std::vector<rpc::Bytes>> HerdClient::flush() {
  SCALERPC_CHECK(id_ >= 0);
  auto& mem = env_.node->memory();
  const size_t n = staged_.size();

  for (size_t i = 0; i < n; ++i) {
    auto& [op, data] = staged_[i];
    co_await env_.cpu->work(cfg_.client_costs.request_prep_ns);
    const uint64_t src = req_src_ + i * cfg_.block_bytes;
    const uint32_t total = rpc::encode_at(mem, src, op, 0, data);
    SendWr wr;
    wr.opcode = Opcode::kWrite;
    wr.local_addr = src;
    wr.length = total;
    wr.remote_addr =
        rpc::aligned_target(req_remote_ + i * cfg_.block_bytes, cfg_.block_bytes, total);
    wr.rkey = req_rkey_;
    wr.signaled = false;
    // HERD inlines small UC request writes.
    wr.inline_data = total <= env_.node->params().max_inline_bytes;
    co_await uc_qp_->post_send(wr);
  }
  staged_.clear();

  // Collect n UD responses; match them to slots by the echoed slot byte.
  std::vector<rpc::Bytes> out(n);
  for (size_t k = 0; k < n; ++k) {
    const simrdma::Completion c = co_await ud_recv_cq_->next();
    SCALERPC_CHECK(c.is_recv && c.status == simrdma::WcStatus::kSuccess);
    co_await env_.cpu->work(cfg_.client_costs.ud_extra_per_op_ns);
    const uint64_t buf = recv_ring_ + c.wr_id * recv_buf_bytes_;
    const uint64_t payload = buf + env_.node->params().grh_bytes;
    const uint32_t payload_len = c.byte_len - env_.node->params().grh_bytes;
    SCALERPC_CHECK(payload_len >= kUdHeader);
    co_await env_.cpu->work(env_.node->read_cost(payload, payload_len));
    const uint8_t slot = mem.load_pod<uint8_t>(payload);
    SCALERPC_CHECK(slot < n);
    out[slot].resize(payload_len - kUdHeader);
    mem.load(payload + kUdHeader, out[slot]);
    // Repost the consumed descriptor.
    co_await ud_qp_->post_recv(RecvWr{c.wr_id, buf, recv_buf_bytes_});
  }
  co_return out;
}

}  // namespace scalerpc::transport
