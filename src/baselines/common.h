// Shared configuration/environment types for the RPC transports.
#ifndef SRC_BASELINES_COMMON_H_
#define SRC_BASELINES_COMMON_H_

#include "src/rpc/rpc.h"
#include "src/simrdma/cluster.h"
#include "src/simrdma/nic.h"
#include "src/simrdma/node.h"

namespace scalerpc::transport {

// Client-side environment: the node an RPC client runs on and that node's
// shared core pool (many client threads per physical node contend here, as
// in the paper's Fig. 8 right half).
struct ClientEnv {
  simrdma::Node* node = nullptr;
  rpc::CpuPool* cpu = nullptr;
};

// Knobs common to the pool-based transports.
struct TransportConfig {
  uint32_t block_bytes = 4096;  // paper default (UD MTU parity)
  int slots_per_client = 8;     // max batch in flight
  int server_workers = 10;
  Nanos handler_base_ns = 150;  // fixed per-request server software cost
  bool inline_requests = false;  // post small payloads inline in the WQE
  rpc::ClientCostModel client_costs;
  // Shared-QP proxy baseline (src/baselines/proxy.h, RDMAvisor-style): each
  // client node runs one proxy agent that multiplexes every local client
  // onto `proxy_conns_per_node` RC connections with `proxy_slots_per_conn`
  // in-flight slots each; requests that find no free slot queue inside the
  // agent. `proxy_ipc_ns` is the modeled shm handoff between a client
  // thread and the proxy process, charged once per request and once per
  // response on the node's shared core pool.
  int proxy_conns_per_node = 4;
  int proxy_slots_per_conn = 16;
  Nanos proxy_ipc_ns = 250;
};

}  // namespace scalerpc::transport

#endif  // SRC_BASELINES_COMMON_H_
