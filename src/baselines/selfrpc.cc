#include "src/baselines/selfrpc.h"

namespace scalerpc::transport {

using simrdma::Opcode;
using simrdma::QpType;
using simrdma::RecvWr;
using simrdma::SendWr;

namespace {
uint32_t make_imm(int client_id, int slot) {
  return (static_cast<uint32_t>(client_id) << 8) | static_cast<uint32_t>(slot);
}
}  // namespace

SelfRpcServer::SelfRpcServer(simrdma::Node* node, TransportConfig cfg)
    : node_(node), cfg_(cfg) {
  node_->arena_mr();
  for (int w = 0; w < cfg_.server_workers; ++w) {
    worker_recv_cqs_.push_back(node_->create_cq());
    worker_send_cqs_.push_back(node_->create_cq());
  }
}

SelfRpcServer::Admission SelfRpcServer::admit(simrdma::QueuePair* client_qp,
                                              uint64_t client_resp_base,
                                              uint32_t client_resp_rkey) {
  auto state = std::make_unique<ClientState>();
  state->id = static_cast<int>(clients_.size());
  const int w = state->id % cfg_.server_workers;
  state->qp = node_->create_qp(QpType::kRC, worker_send_cqs_[static_cast<size_t>(w)],
                               worker_recv_cqs_[static_cast<size_t>(w)]);
  node_->cluster()->connect(state->qp, client_qp);
  const uint64_t region =
      static_cast<uint64_t>(cfg_.slots_per_client) * cfg_.block_bytes;
  state->req_base = node_->alloc(region, 4096);
  state->resp_src = node_->alloc(region, 4096);
  state->resp_remote = client_resp_base;
  state->resp_rkey = client_resp_rkey;
  // write_imm consumes a descriptor per request: keep the queue stocked.
  for (int i = 0; i < 2 * cfg_.slots_per_client; ++i) {
    state->qp->post_recv_immediate(RecvWr{0, 0, 0});
  }
  Admission adm{state->id, state->req_base, node_->arena_mr()->rkey};
  clients_.push_back(std::move(state));
  return adm;
}

void SelfRpcServer::start() {
  SCALERPC_CHECK(!running_);
  running_ = true;
  for (int w = 0; w < cfg_.server_workers; ++w) {
    sim::spawn(node_->loop(), worker(w));
  }
}

void SelfRpcServer::stop() { running_ = false; }

sim::Task<void> SelfRpcServer::worker(int index) {
  auto& mem = node_->memory();
  simrdma::CompletionQueue* recv_cq = worker_recv_cqs_[static_cast<size_t>(index)];

  while (running_) {
    const simrdma::Completion c = co_await recv_cq->next();
    if (!running_) {
      co_return;
    }
    SCALERPC_CHECK(c.is_recv && c.has_imm);
    const int client_id = static_cast<int>(c.imm >> 8);
    const int slot = static_cast<int>(c.imm & 0xff);
    ClientState& cl = *clients_.at(static_cast<size_t>(client_id));

    // Self-identified: jump straight to the block named by the immediate.
    const uint64_t block = cl.req_base + static_cast<uint64_t>(slot) * cfg_.block_bytes;
    auto msg = rpc::decode_block(mem, block, cfg_.block_bytes);
    SCALERPC_CHECK_MSG(msg.has_value(), "imm arrived without message payload");
    Nanos cost = node_->read_cost(block + cfg_.block_bytes - msg->total_bytes(),
                                  msg->total_bytes());
    rpc::clear_block(mem, block, cfg_.block_bytes);
    cost += node_->write_cost(block + cfg_.block_bytes - 1, 1);

    rpc::RequestContext ctx{cl.id, msg->op};
    rpc::HandlerResult result = handlers_.dispatch(ctx, msg->data);
    cost += cfg_.handler_base_ns + result.cpu_ns;
    requests_served_++;

    const uint64_t src = cl.resp_src + static_cast<uint64_t>(slot) * cfg_.block_bytes;
    const uint32_t total = rpc::encode_at(mem, src, msg->op, result.flags, result.response);
    cost += node_->write_cost(src, total);
    co_await node_->loop().delay(cost);

    co_await cl.qp->post_recv(RecvWr{0, 0, 0});  // replenish descriptor

    SendWr wr;
    wr.opcode = Opcode::kWrite;
    wr.local_addr = src;
    wr.length = total;
    wr.remote_addr = rpc::aligned_target(
        cl.resp_remote + static_cast<uint64_t>(slot) * cfg_.block_bytes,
        cfg_.block_bytes, total);
    wr.rkey = cl.resp_rkey;
    wr.signaled = false;
    co_await cl.qp->post_send(wr);
  }
}

SelfRpcClient::SelfRpcClient(ClientEnv env, SelfRpcServer* server)
    : env_(env), server_(server), cfg_(server->config()) {}

sim::Task<void> SelfRpcClient::connect() {
  const uint64_t region =
      static_cast<uint64_t>(cfg_.slots_per_client) * cfg_.block_bytes;
  req_src_ = env_.node->alloc(region, 4096);
  resp_base_ = env_.node->alloc(region, 4096);
  cq_ = env_.node->create_cq();
  qp_ = env_.node->create_qp(QpType::kRC, cq_, cq_);
  const auto adm = server_->admit(qp_, resp_base_, env_.node->arena_mr()->rkey);
  id_ = adm.client_id;
  req_remote_ = adm.req_base;
  req_rkey_ = adm.req_rkey;
  resp_wake_ = std::make_unique<sim::Notification>(env_.node->loop());
  sim::Notification* wake = resp_wake_.get();
  env_.node->memory().add_watcher(resp_base_, region, [wake] { wake->notify(); });
  co_return;
}

void SelfRpcClient::stage(uint8_t op, rpc::Bytes request) {
  SCALERPC_CHECK(static_cast<int>(staged_.size()) < cfg_.slots_per_client);
  SCALERPC_CHECK(request.size() <= rpc::max_payload(cfg_.block_bytes));
  staged_.emplace_back(op, std::move(request));
}

sim::Task<std::vector<rpc::Bytes>> SelfRpcClient::flush() {
  SCALERPC_CHECK(id_ >= 0);
  auto& mem = env_.node->memory();
  const size_t n = staged_.size();

  for (size_t i = 0; i < n; ++i) {
    auto& [op, data] = staged_[i];
    co_await env_.cpu->work(cfg_.client_costs.request_prep_ns);
    const uint64_t src = req_src_ + i * cfg_.block_bytes;
    const uint32_t total = rpc::encode_at(mem, src, op, 0, data);
    SendWr wr;
    wr.opcode = Opcode::kWriteImm;
    wr.local_addr = src;
    wr.length = total;
    wr.remote_addr =
        rpc::aligned_target(req_remote_ + i * cfg_.block_bytes, cfg_.block_bytes, total);
    wr.rkey = req_rkey_;
    wr.imm = make_imm(id_, static_cast<int>(i));
    wr.signaled = false;
    co_await qp_->post_send(wr);
  }
  staged_.clear();

  std::vector<rpc::Bytes> out(n);
  std::vector<bool> got(n, false);
  size_t collected = 0;
  while (collected < n) {
    bool progress = false;
    Nanos cost = 0;
    for (size_t i = 0; i < n; ++i) {
      if (got[i]) {
        continue;
      }
      const uint64_t block = resp_base_ + i * cfg_.block_bytes;
      cost += env_.node->read_cost(block + cfg_.block_bytes - 1, 1);
      auto msg = rpc::decode_block(mem, block, cfg_.block_bytes);
      if (!msg.has_value()) {
        continue;
      }
      cost += env_.node->read_cost(block + cfg_.block_bytes - msg->total_bytes(),
                                   msg->total_bytes());
      rpc::clear_block(mem, block, cfg_.block_bytes);
      cost += cfg_.client_costs.response_parse_ns;
      out[i] = std::move(msg->data);
      got[i] = true;
      collected++;
      progress = true;
    }
    if (cost > 0) {
      co_await env_.cpu->work(cost);
    }
    if (!progress && collected < n) {
      co_await resp_wake_->wait();
    }
  }
  co_return out;
}

}  // namespace scalerpc::transport
