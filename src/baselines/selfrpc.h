// Self-identified RPC — Octopus's transport (paper Section 4.1).
//
// Clients post requests with RC write_imm; the immediate value encodes
// (client_id, slot) so server workers locate new messages straight from
// recv completions instead of scanning the pool. Responses are plain RDMA
// writes into per-client response blocks (clients poll memory).
// Scalability profile: per-client RC QPs (NIC-cache thrash like RawWrite)
// plus a recv-descriptor fetch per request.
#ifndef SRC_BASELINES_SELFRPC_H_
#define SRC_BASELINES_SELFRPC_H_

#include <memory>
#include <vector>

#include "src/baselines/common.h"

namespace scalerpc::transport {

class SelfRpcServer : public rpc::RpcServer {
 public:
  SelfRpcServer(simrdma::Node* node, TransportConfig cfg);

  void start() override;
  void stop() override;

  simrdma::Node* node() { return node_; }
  const TransportConfig& config() const { return cfg_; }

  struct Admission {
    int client_id;
    uint64_t req_base;
    uint32_t req_rkey;
  };
  Admission admit(simrdma::QueuePair* client_qp, uint64_t client_resp_base,
                  uint32_t client_resp_rkey);

 private:
  struct ClientState {
    int id = 0;
    simrdma::QueuePair* qp = nullptr;
    uint64_t req_base = 0;
    uint64_t resp_remote = 0;
    uint32_t resp_rkey = 0;
    uint64_t resp_src = 0;
  };

  sim::Task<void> worker(int index);

  simrdma::Node* node_;
  TransportConfig cfg_;
  bool running_ = false;
  std::vector<std::unique_ptr<ClientState>> clients_;
  std::vector<simrdma::CompletionQueue*> worker_recv_cqs_;
  std::vector<simrdma::CompletionQueue*> worker_send_cqs_;
};

class SelfRpcClient : public rpc::RpcClient {
 public:
  SelfRpcClient(ClientEnv env, SelfRpcServer* server);

  sim::Task<void> connect() override;
  void stage(uint8_t op, rpc::Bytes request) override;
  sim::Task<std::vector<rpc::Bytes>> flush() override;
  int client_id() const override { return id_; }

 private:
  ClientEnv env_;
  SelfRpcServer* server_;
  TransportConfig cfg_;
  int id_ = -1;
  simrdma::QueuePair* qp_ = nullptr;
  simrdma::CompletionQueue* cq_ = nullptr;
  uint64_t req_src_ = 0;
  uint64_t resp_base_ = 0;
  uint64_t req_remote_ = 0;
  uint32_t req_rkey_ = 0;
  std::unique_ptr<sim::Notification> resp_wake_;
  std::vector<std::pair<uint8_t, rpc::Bytes>> staged_;
};

}  // namespace scalerpc::transport

#endif  // SRC_BASELINES_SELFRPC_H_
