#include "src/baselines/rawwrite.h"

namespace scalerpc::transport {

using rpc::kValidMagic;
using simrdma::Opcode;
using simrdma::QpType;
using simrdma::RecvWr;
using simrdma::SendWr;

RawWriteServer::RawWriteServer(simrdma::Node* node, TransportConfig cfg)
    : node_(node), cfg_(cfg) {
  pool_mr_ = node_->arena_mr();
  for (int w = 0; w < cfg_.server_workers; ++w) {
    worker_cqs_.push_back(node_->create_cq());
    worker_wake_.push_back(std::make_unique<sim::Notification>(node_->loop()));
  }
}

RawWriteServer::Admission RawWriteServer::admit(simrdma::QueuePair* client_qp,
                                                uint64_t client_resp_base,
                                                uint32_t client_resp_rkey) {
  auto state = std::make_unique<ClientState>();
  state->id = static_cast<int>(clients_.size());
  const int w = state->id % cfg_.server_workers;
  state->qp = node_->create_qp(QpType::kRC, worker_cqs_[static_cast<size_t>(w)],
                               worker_cqs_[static_cast<size_t>(w)]);
  node_->cluster()->connect(state->qp, client_qp);

  const uint64_t region =
      static_cast<uint64_t>(cfg_.slots_per_client) * cfg_.block_bytes;
  state->req_base = node_->alloc(region, 4096);
  state->resp_src = node_->alloc(region, 4096);
  state->resp_remote = client_resp_base;
  state->resp_rkey = client_resp_rkey;

  // Any DMA write into this client's request blocks wakes its worker.
  sim::Notification* wake = worker_wake_[static_cast<size_t>(w)].get();
  node_->memory().add_watcher(state->req_base, region, [wake] { wake->notify(); });

  Admission adm{state->id, state->req_base, pool_mr_->rkey};
  clients_.push_back(std::move(state));
  return adm;
}

void RawWriteServer::start() {
  SCALERPC_CHECK(!running_);
  running_ = true;
  for (int w = 0; w < cfg_.server_workers; ++w) {
    sim::spawn(node_->loop(), worker(w));
  }
}

void RawWriteServer::stop() {
  running_ = false;
  for (auto& wake : worker_wake_) {
    wake->notify();
  }
}

sim::Task<void> RawWriteServer::worker(int index) {
  auto& loop = node_->loop();
  auto& mem = node_->memory();
  sim::Notification* wake = worker_wake_[static_cast<size_t>(index)].get();

  while (running_) {
    int served = 0;
    Nanos cost = 0;
    for (size_t ci = static_cast<size_t>(index); ci < clients_.size();
         ci += static_cast<size_t>(cfg_.server_workers)) {
      ClientState& c = *clients_[ci];
      for (int slot = 0; slot < cfg_.slots_per_client; ++slot) {
        const uint64_t block = c.req_base + static_cast<uint64_t>(slot) * cfg_.block_bytes;
        cost += node_->read_cost(block + cfg_.block_bytes - 1, 1);
        if (!rpc::block_has_message(mem, block, cfg_.block_bytes)) {
          continue;
        }
        auto msg = rpc::decode_block(mem, block, cfg_.block_bytes);
        if (!msg.has_value()) {
          rpc::clear_block(mem, block, cfg_.block_bytes);
          continue;
        }
        cost += node_->read_cost(block + cfg_.block_bytes - msg->total_bytes(),
                                 msg->total_bytes());
        rpc::clear_block(mem, block, cfg_.block_bytes);
        cost += node_->write_cost(block + cfg_.block_bytes - 1, 1);

        rpc::RequestContext ctx{c.id, msg->op};
        rpc::HandlerResult result = handlers_.dispatch(ctx, msg->data);
        cost += cfg_.handler_base_ns + result.cpu_ns;
        requests_served_++;

        // Compose the response locally, then RDMA-write it right-aligned
        // into the client's response block for the same slot.
        const uint64_t src = c.resp_src + static_cast<uint64_t>(slot) * cfg_.block_bytes;
        const uint32_t total =
            rpc::encode_at(mem, src, msg->op, result.flags, result.response);
        cost += node_->write_cost(src, total);
        co_await loop.delay(cost);
        cost = 0;

        SendWr wr;
        wr.opcode = Opcode::kWrite;
        wr.local_addr = src;
        wr.length = total;
        wr.remote_addr = rpc::aligned_target(
            c.resp_remote + static_cast<uint64_t>(slot) * cfg_.block_bytes,
            cfg_.block_bytes, total);
        wr.rkey = c.resp_rkey;
        wr.signaled = false;
        wr.inline_data =
            cfg_.inline_requests && total <= node_->params().max_inline_bytes;
        co_await c.qp->post_send(wr);
        served++;
      }
    }
    if (cost > 0) {
      co_await loop.delay(cost);
    }
    if (served == 0 && running_) {
      co_await wake->wait();
    }
  }
}

RawWriteClient::RawWriteClient(ClientEnv env, RawWriteServer* server)
    : env_(env), server_(server), cfg_(server->config()) {}

sim::Task<void> RawWriteClient::connect() {
  const uint64_t region =
      static_cast<uint64_t>(cfg_.slots_per_client) * cfg_.block_bytes;
  req_src_ = env_.node->alloc(region, 4096);
  resp_base_ = env_.node->alloc(region, 4096);
  cq_ = env_.node->create_cq();
  qp_ = env_.node->create_qp(QpType::kRC, cq_, cq_);
  const auto adm =
      server_->admit(qp_, resp_base_, env_.node->arena_mr()->rkey);
  id_ = adm.client_id;
  req_remote_ = adm.req_base;
  req_rkey_ = adm.req_rkey;
  resp_wake_ = std::make_unique<sim::Notification>(env_.node->loop());
  sim::Notification* wake = resp_wake_.get();
  env_.node->memory().add_watcher(resp_base_, region, [wake] { wake->notify(); });
  co_return;
}

void RawWriteClient::stage(uint8_t op, rpc::Bytes request) {
  SCALERPC_CHECK(static_cast<int>(staged_.size()) < cfg_.slots_per_client);
  SCALERPC_CHECK(request.size() <= rpc::max_payload(cfg_.block_bytes));
  staged_.emplace_back(op, std::move(request));
}

sim::Task<std::vector<rpc::Bytes>> RawWriteClient::flush() {
  SCALERPC_CHECK(id_ >= 0);
  auto& mem = env_.node->memory();
  const size_t n = staged_.size();

  for (size_t i = 0; i < n; ++i) {
    auto& [op, data] = staged_[i];
    co_await env_.cpu->work(cfg_.client_costs.request_prep_ns);
    const uint64_t src = req_src_ + i * cfg_.block_bytes;
    const uint32_t total = rpc::encode_at(mem, src, op, 0, data);
    SendWr wr;
    wr.opcode = Opcode::kWrite;
    wr.local_addr = src;
    wr.length = total;
    wr.remote_addr =
        rpc::aligned_target(req_remote_ + i * cfg_.block_bytes, cfg_.block_bytes, total);
    wr.rkey = req_rkey_;
    wr.signaled = false;
    wr.inline_data =
        cfg_.inline_requests && total <= env_.node->params().max_inline_bytes;
    co_await qp_->post_send(wr);
  }
  staged_.clear();

  std::vector<rpc::Bytes> out(n);
  std::vector<bool> got(n, false);
  size_t collected = 0;
  while (collected < n) {
    bool progress = false;
    Nanos cost = 0;
    for (size_t i = 0; i < n; ++i) {
      if (got[i]) {
        continue;
      }
      const uint64_t block = resp_base_ + i * cfg_.block_bytes;
      cost += env_.node->read_cost(block + cfg_.block_bytes - 1, 1);
      auto msg = rpc::decode_block(mem, block, cfg_.block_bytes);
      if (!msg.has_value()) {
        continue;
      }
      cost += env_.node->read_cost(block + cfg_.block_bytes - msg->total_bytes(),
                                   msg->total_bytes());
      rpc::clear_block(mem, block, cfg_.block_bytes);
      cost += cfg_.client_costs.response_parse_ns;
      out[i] = std::move(msg->data);
      got[i] = true;
      collected++;
      progress = true;
    }
    if (cost > 0) {
      co_await env_.cpu->work(cost);
    }
    if (!progress && collected < n) {
      co_await resp_wake_->wait();
    }
  }
  co_return out;
}

}  // namespace scalerpc::transport
