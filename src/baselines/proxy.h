// Shared-QP proxy RPC — the RDMAvisor-style aggregation baseline.
//
// Instead of one RC QP per client (RawWrite/SelfRpc) or time-shared QP
// pools (ScaleRPC), every client *node* runs a single proxy agent that
// multiplexes all of its clients onto a few shared RC connections to the
// server. A client hands its request to the local agent over a modeled
// shm/IPC hop; the agent stages it into one of K x S (connection, slot)
// wire slots — queueing inside the agent when all are busy — and posts it
// with write_imm, the immediate naming (connection, slot) exactly like the
// self-identified transport. Responses land in agent-owned per-slot blocks
// and are routed back to the waiting client in memory.
//
// Scalability profile: server-side state is O(agents x K), not O(clients)
// — the NIC cache holds every QP at any fleet size and per-client memory
// collapses to the client object itself. The price is the per-request IPC
// hop and a throughput ceiling at K connections x S slots per node
// (RDMAvisor's trade, Swift's control-plane argument; see PAPERS.md and
// docs/scaling.md).
#ifndef SRC_BASELINES_PROXY_H_
#define SRC_BASELINES_PROXY_H_

#include <memory>
#include <vector>

#include "src/baselines/common.h"

namespace scalerpc::transport {

class ProxyServer;

// One per client node, created lazily by ProxyServer::agent_for() when the
// first client of that node connects. Owns the node's shared connections
// and the request queue; runs a pump coroutine (posts queued requests into
// free slots) and a collector coroutine (routes responses back).
class ProxyAgent {
 public:
  ProxyAgent(ProxyServer* server, simrdma::Node* node, rpc::CpuPool* cpu);

  // Registers a local client; returns its fleet-wide client id. O(1), no
  // per-client simulated memory.
  int add_client();

  // Hands one request to the agent. `out` receives the response bytes;
  // `remaining` is decremented and `done` notified when it hits zero (the
  // client batches several submissions behind one notification).
  void submit(uint8_t op, rpc::Bytes request, rpc::Bytes* out,
              size_t* remaining, sim::Notification* done);

  simrdma::Node* node() { return node_; }
  uint64_t queue_peak() const { return queue_peak_; }

 private:
  friend class ProxyServer;

  struct Pending {
    uint8_t op = 0;
    rpc::Bytes data;
    rpc::Bytes* out = nullptr;
    size_t* remaining = nullptr;
    sim::Notification* done = nullptr;
  };

  struct Conn {
    int global_id = 0;  // imm-encoded connection id, unique across agents
    simrdma::QueuePair* qp = nullptr;
    uint64_t req_src = 0;     // agent-side staging, slots x block_bytes
    uint64_t req_remote = 0;  // server-side request pool for this conn
    uint64_t resp_base = 0;   // agent-side response blocks for this conn
  };

  sim::Task<void> pump();
  sim::Task<void> collector();
  bool take_free_slot(int* conn, int* slot);

  ProxyServer* server_;
  simrdma::Node* node_;
  rpc::CpuPool* cpu_;
  TransportConfig cfg_;
  uint32_t req_rkey_ = 0;
  simrdma::CompletionQueue* cq_ = nullptr;
  std::vector<Conn> conns_;
  // Request records are owned by all_records_ and recycled through
  // record_free_, so a steady-state agent allocates nothing.
  std::vector<std::unique_ptr<Pending>> all_records_;
  std::vector<Pending*> record_free_;
  // (conn, slot) in-flight table; null = free. Fixed K x S, so the
  // collector's scan is independent of the client count.
  std::vector<Pending*> inflight_;
  std::vector<Pending*> queue_;  // FIFO overflow queue (proxy-side queueing)
  size_t queue_head_ = 0;
  size_t free_slots_ = 0;
  int next_rr_conn_ = 0;
  int num_clients_ = 0;
  uint64_t queue_peak_ = 0;
  std::unique_ptr<sim::Notification> work_wake_;
  std::unique_ptr<sim::Notification> resp_wake_;
};

class ProxyServer : public rpc::RpcServer {
 public:
  ProxyServer(simrdma::Node* node, TransportConfig cfg);

  void start() override;
  void stop() override;

  simrdma::Node* node() { return node_; }
  const TransportConfig& config() const { return cfg_; }

  // The agent for a client node, created on first use.
  ProxyAgent* agent_for(simrdma::Node* node, rpc::CpuPool* cpu);
  int next_client_id() { return next_client_id_++; }

 private:
  friend class ProxyAgent;

  // Server-side half of one shared connection.
  struct ConnState {
    simrdma::QueuePair* qp = nullptr;
    uint64_t req_base = 0;
    uint64_t resp_remote = 0;  // agent-side resp_base for this conn
    uint32_t resp_rkey = 0;
    uint64_t resp_src = 0;
  };

  // Connects one agent connection; returns its global conn id.
  int register_conn(simrdma::QueuePair* agent_qp, uint64_t agent_resp_base,
                    uint32_t agent_resp_rkey, uint64_t* req_base_out,
                    uint32_t* req_rkey_out);

  sim::Task<void> worker(int index);

  simrdma::Node* node_;
  TransportConfig cfg_;
  bool running_ = false;
  int next_client_id_ = 0;
  std::vector<std::unique_ptr<ConnState>> conns_;
  std::vector<std::unique_ptr<ProxyAgent>> agents_;
  std::vector<simrdma::CompletionQueue*> worker_recv_cqs_;
  std::vector<simrdma::CompletionQueue*> worker_send_cqs_;
};

class ProxyClient : public rpc::RpcClient {
 public:
  ProxyClient(ClientEnv env, ProxyServer* server);

  sim::Task<void> connect() override;
  void stage(uint8_t op, rpc::Bytes request) override;
  sim::Task<std::vector<rpc::Bytes>> flush() override;
  int client_id() const override { return id_; }

 private:
  ClientEnv env_;
  ProxyServer* server_;
  TransportConfig cfg_;
  ProxyAgent* agent_ = nullptr;
  int id_ = -1;
  std::unique_ptr<sim::Notification> done_;
  std::vector<std::pair<uint8_t, rpc::Bytes>> staged_;
};

}  // namespace scalerpc::transport

#endif  // SRC_BASELINES_PROXY_H_
