// HERD RPC (Kalia et al., SIGCOMM'14) — paper Table 2 baseline.
//
// Requests: clients RDMA-write (UC, no acks) right-aligned messages into a
// statically mapped per-client block array at the server. Responses: server
// workers answer over UD send from a handful of per-worker UD QPs, so the
// server's outbound side scales; the statically mapped request pool is what
// eventually thrashes the LLC as clients grow.
#ifndef SRC_BASELINES_HERD_H_
#define SRC_BASELINES_HERD_H_

#include <memory>
#include <vector>

#include "src/baselines/common.h"

namespace scalerpc::transport {

class HerdServer : public rpc::RpcServer {
 public:
  HerdServer(simrdma::Node* node, TransportConfig cfg);

  void start() override;
  void stop() override;

  simrdma::Node* node() { return node_; }
  const TransportConfig& config() const { return cfg_; }

  struct Admission {
    int client_id;
    uint64_t req_base;
    uint32_t req_rkey;
  };
  // `client_uc_qp`: client-side UC QP for requests; responses go to the
  // client's UD QP (`client_ud_qpn` on `client_node`).
  Admission admit(simrdma::QueuePair* client_uc_qp, int client_node,
                  uint32_t client_ud_qpn);

 private:
  struct ClientState {
    int id = 0;
    simrdma::QueuePair* uc_qp = nullptr;  // server side (never sends)
    uint64_t req_base = 0;
    int resp_node = -1;
    uint32_t resp_qpn = 0;
  };

  sim::Task<void> worker(int index);

  simrdma::Node* node_;
  TransportConfig cfg_;
  bool running_ = false;
  std::vector<std::unique_ptr<ClientState>> clients_;
  std::vector<simrdma::QueuePair*> worker_ud_qps_;
  std::vector<uint64_t> worker_resp_ring_;  // compose buffers, slots each
  std::vector<std::unique_ptr<sim::Notification>> worker_wake_;
};

class HerdClient : public rpc::RpcClient {
 public:
  HerdClient(ClientEnv env, HerdServer* server);

  sim::Task<void> connect() override;
  void stage(uint8_t op, rpc::Bytes request) override;
  sim::Task<std::vector<rpc::Bytes>> flush() override;
  int client_id() const override { return id_; }

 private:
  ClientEnv env_;
  HerdServer* server_;
  TransportConfig cfg_;
  int id_ = -1;
  simrdma::QueuePair* uc_qp_ = nullptr;
  simrdma::QueuePair* ud_qp_ = nullptr;
  simrdma::CompletionQueue* uc_cq_ = nullptr;
  simrdma::CompletionQueue* ud_recv_cq_ = nullptr;
  simrdma::CompletionQueue* ud_send_cq_ = nullptr;
  uint64_t req_src_ = 0;
  uint64_t recv_ring_ = 0;  // slots buffers of (block + GRH headroom)
  uint32_t recv_buf_bytes_ = 0;
  uint64_t req_remote_ = 0;
  uint32_t req_rkey_ = 0;
  std::vector<std::pair<uint8_t, rpc::Bytes>> staged_;
};

}  // namespace scalerpc::transport

#endif  // SRC_BASELINES_HERD_H_
