#include "src/baselines/fasst.h"

#include <cstring>

namespace scalerpc::transport {

using simrdma::Opcode;
using simrdma::QpType;
using simrdma::RecvWr;
using simrdma::SendWr;

// Message layout (both directions): | slot:1 | op:1 | flags:1 | data |.
constexpr uint32_t kHdr = 3;

FasstServer::FasstServer(simrdma::Node* node, TransportConfig cfg, int recv_ring_depth)
    : node_(node), cfg_(cfg), ring_depth_(recv_ring_depth) {
  const auto& p = node_->params();
  recv_buf_bytes_ = static_cast<uint32_t>(align_up(cfg_.block_bytes + p.grh_bytes, 64));
  workers_.resize(static_cast<size_t>(cfg_.server_workers));
  for (auto& w : workers_) {
    w.recv_cq = node_->create_cq();
    w.send_cq = node_->create_cq();
    w.qp = node_->create_qp(QpType::kUD, w.send_cq, w.recv_cq);
    w.recv_ring =
        node_->alloc(static_cast<uint64_t>(ring_depth_) * recv_buf_bytes_, 4096);
    w.resp_ring = node_->alloc(
        static_cast<uint64_t>(cfg_.slots_per_client) * 4 * cfg_.block_bytes, 4096);
    for (int i = 0; i < ring_depth_; ++i) {
      w.qp->post_recv_immediate(
          RecvWr{static_cast<uint64_t>(i),
                 w.recv_ring + static_cast<uint64_t>(i) * recv_buf_bytes_,
                 recv_buf_bytes_});
    }
  }
}

FasstServer::Admission FasstServer::admit() {
  const int id = next_client_id_++;
  const auto& w = workers_[static_cast<size_t>(id % cfg_.server_workers)];
  return Admission{id, node_->id(), w.qp->qpn()};
}

uint64_t FasstServer::dropped_requests() const {
  return node_->nic().counters().ud_drops;
}

void FasstServer::start() {
  SCALERPC_CHECK(!running_);
  running_ = true;
  for (int w = 0; w < cfg_.server_workers; ++w) {
    sim::spawn(node_->loop(), worker_loop(w));
  }
}

void FasstServer::stop() {
  running_ = false;
  // Workers parked in recv_cq->next() unblock on the next message or stay
  // parked; their frames are reclaimed when the loop is destroyed.
}

sim::Task<void> FasstServer::worker_loop(int index) {
  Worker& w = workers_[static_cast<size_t>(index)];
  auto& mem = node_->memory();
  const auto& p = node_->params();
  const int resp_slots = cfg_.slots_per_client * 4;

  while (running_) {
    const simrdma::Completion c = co_await w.recv_cq->next();
    if (!running_) {
      co_return;
    }
    SCALERPC_CHECK(c.is_recv && c.status == simrdma::WcStatus::kSuccess);
    const uint64_t buf = w.recv_ring + c.wr_id * recv_buf_bytes_;
    const uint64_t payload = buf + p.grh_bytes;
    const uint32_t payload_len = c.byte_len - p.grh_bytes;
    SCALERPC_CHECK(payload_len >= kHdr);

    Nanos cost = node_->read_cost(payload, payload_len);
    const uint8_t slot = mem.load_pod<uint8_t>(payload);
    const uint8_t op = mem.load_pod<uint8_t>(payload + 1);
    rpc::Bytes data(payload_len - kHdr);
    mem.load(payload + kHdr, data);

    // Repost the descriptor immediately (FaSST keeps the ring full).
    co_await w.qp->post_recv(RecvWr{c.wr_id, buf, recv_buf_bytes_});

    rpc::RequestContext ctx{/*client_id=*/-1, op};
    rpc::HandlerResult result = handlers_.dispatch(ctx, data);
    cost += cfg_.handler_base_ns + result.cpu_ns;
    requests_served_++;

    const uint32_t resp_len = kHdr + static_cast<uint32_t>(result.response.size());
    SCALERPC_CHECK_MSG(resp_len <= p.ud_mtu_bytes, "FaSST response exceeds UD MTU");
    const uint64_t src =
        w.resp_ring + static_cast<uint64_t>(w.resp_next) * cfg_.block_bytes;
    w.resp_next = (w.resp_next + 1) % resp_slots;
    uint8_t* out = mem.raw(src);
    out[0] = slot;
    out[1] = op;
    out[2] = result.flags;
    if (!result.response.empty()) {
      std::memcpy(out + kHdr, result.response.data(), result.response.size());
    }
    cost += node_->write_cost(src, resp_len);
    co_await node_->loop().delay(cost);

    SendWr wr;
    wr.opcode = Opcode::kSend;
    wr.local_addr = src;
    wr.length = resp_len;
    wr.dest_node = c.src_node;
    wr.dest_qpn = c.src_qpn;
    wr.signaled = false;
    // FaSST inlines small sends (payload rides in the WQE).
    wr.inline_data = resp_len <= p.max_inline_bytes;
    co_await w.qp->post_send(wr);
  }
}

FasstClient::FasstClient(ClientEnv env, FasstServer* server)
    : env_(env), server_(server), cfg_(server->config()) {}

sim::Task<void> FasstClient::connect() {
  const auto& p = env_.node->params();
  recv_buf_bytes_ = static_cast<uint32_t>(align_up(cfg_.block_bytes + p.grh_bytes, 64));
  send_ring_ =
      env_.node->alloc(static_cast<uint64_t>(cfg_.slots_per_client) * cfg_.block_bytes, 4096);
  recv_ring_ = env_.node->alloc(
      static_cast<uint64_t>(cfg_.slots_per_client) * recv_buf_bytes_, 4096);
  recv_cq_ = env_.node->create_cq();
  send_cq_ = env_.node->create_cq();
  ud_qp_ = env_.node->create_qp(QpType::kUD, send_cq_, recv_cq_);
  for (int i = 0; i < cfg_.slots_per_client; ++i) {
    ud_qp_->post_recv_immediate(
        RecvWr{static_cast<uint64_t>(i),
               recv_ring_ + static_cast<uint64_t>(i) * recv_buf_bytes_,
               recv_buf_bytes_});
  }
  const auto adm = server_->admit();
  id_ = adm.client_id;
  server_node_ = adm.server_node;
  worker_qpn_ = adm.worker_qpn;
  co_return;
}

void FasstClient::stage(uint8_t op, rpc::Bytes request) {
  SCALERPC_CHECK(static_cast<int>(staged_.size()) < cfg_.slots_per_client);
  SCALERPC_CHECK(request.size() + kHdr <= env_.node->params().ud_mtu_bytes);
  staged_.emplace_back(op, std::move(request));
}

sim::Task<std::vector<rpc::Bytes>> FasstClient::flush() {
  SCALERPC_CHECK(id_ >= 0);
  auto& mem = env_.node->memory();
  const size_t n = staged_.size();

  for (size_t i = 0; i < n; ++i) {
    auto& [op, data] = staged_[i];
    co_await env_.cpu->work(cfg_.client_costs.request_prep_ns);
    const uint64_t src = send_ring_ + i * cfg_.block_bytes;
    const uint32_t len = kHdr + static_cast<uint32_t>(data.size());
    uint8_t* out = mem.raw(src);
    out[0] = static_cast<uint8_t>(i);
    out[1] = op;
    out[2] = 0;
    if (!data.empty()) {
      std::memcpy(out + kHdr, data.data(), data.size());
    }
    SendWr wr;
    wr.opcode = Opcode::kSend;
    wr.local_addr = src;
    wr.length = len;
    wr.dest_node = server_node_;
    wr.dest_qpn = worker_qpn_;
    wr.signaled = false;
    wr.inline_data = len <= env_.node->params().max_inline_bytes;
    co_await ud_qp_->post_send(wr);
  }
  staged_.clear();

  std::vector<rpc::Bytes> out(n);
  for (size_t k = 0; k < n; ++k) {
    const simrdma::Completion c = co_await recv_cq_->next();
    SCALERPC_CHECK(c.is_recv && c.status == simrdma::WcStatus::kSuccess);
    co_await env_.cpu->work(cfg_.client_costs.ud_extra_per_op_ns);
    const uint64_t buf = recv_ring_ + c.wr_id * recv_buf_bytes_;
    const uint64_t payload = buf + env_.node->params().grh_bytes;
    const uint32_t payload_len = c.byte_len - env_.node->params().grh_bytes;
    SCALERPC_CHECK(payload_len >= kHdr);
    co_await env_.cpu->work(env_.node->read_cost(payload, payload_len));
    const uint8_t slot = mem.load_pod<uint8_t>(payload);
    SCALERPC_CHECK(slot < n);
    out[slot].resize(payload_len - kHdr);
    mem.load(payload + kHdr, out[slot]);
    co_await ud_qp_->post_recv(RecvWr{c.wr_id, buf, recv_buf_bytes_});
  }
  co_return out;
}

}  // namespace scalerpc::transport
