#include "src/baselines/proxy.h"

#include <algorithm>

namespace scalerpc::transport {

using simrdma::Opcode;
using simrdma::QpType;
using simrdma::RecvWr;
using simrdma::SendWr;

namespace {
uint32_t make_imm(int conn_id, int slot) {
  return (static_cast<uint32_t>(conn_id) << 8) | static_cast<uint32_t>(slot);
}
}  // namespace

// ---------------------------------------------------------------- server ---

ProxyServer::ProxyServer(simrdma::Node* node, TransportConfig cfg)
    : node_(node), cfg_(cfg) {
  SCALERPC_CHECK(cfg_.proxy_conns_per_node >= 1);
  SCALERPC_CHECK(cfg_.proxy_slots_per_conn >= 1 && cfg_.proxy_slots_per_conn <= 256);
  node_->arena_mr();
  for (int w = 0; w < cfg_.server_workers; ++w) {
    worker_recv_cqs_.push_back(node_->create_cq());
    worker_send_cqs_.push_back(node_->create_cq());
  }
}

int ProxyServer::register_conn(simrdma::QueuePair* agent_qp,
                               uint64_t agent_resp_base, uint32_t agent_resp_rkey,
                               uint64_t* req_base_out, uint32_t* req_rkey_out) {
  auto state = std::make_unique<ConnState>();
  const int id = static_cast<int>(conns_.size());
  const int w = id % cfg_.server_workers;
  state->qp = node_->create_qp(QpType::kRC, worker_send_cqs_[static_cast<size_t>(w)],
                               worker_recv_cqs_[static_cast<size_t>(w)]);
  node_->cluster()->connect(state->qp, agent_qp);
  const uint64_t region =
      static_cast<uint64_t>(cfg_.proxy_slots_per_conn) * cfg_.block_bytes;
  state->req_base = node_->alloc(region, 4096);
  state->resp_src = node_->alloc(region, 4096);
  state->resp_remote = agent_resp_base;
  state->resp_rkey = agent_resp_rkey;
  // write_imm consumes a descriptor per request: keep the queue stocked.
  for (int i = 0; i < 2 * cfg_.proxy_slots_per_conn; ++i) {
    state->qp->post_recv_immediate(RecvWr{0, 0, 0});
  }
  *req_base_out = state->req_base;
  *req_rkey_out = node_->arena_mr()->rkey;
  conns_.push_back(std::move(state));
  return id;
}

ProxyAgent* ProxyServer::agent_for(simrdma::Node* node, rpc::CpuPool* cpu) {
  for (auto& a : agents_) {
    if (a->node() == node) {
      return a.get();
    }
  }
  agents_.push_back(std::make_unique<ProxyAgent>(this, node, cpu));
  return agents_.back().get();
}

void ProxyServer::start() {
  SCALERPC_CHECK(!running_);
  running_ = true;
  for (int w = 0; w < cfg_.server_workers; ++w) {
    sim::spawn(node_->loop(), worker(w));
  }
}

void ProxyServer::stop() { running_ = false; }

sim::Task<void> ProxyServer::worker(int index) {
  auto& mem = node_->memory();
  simrdma::CompletionQueue* recv_cq = worker_recv_cqs_[static_cast<size_t>(index)];

  while (running_) {
    const simrdma::Completion c = co_await recv_cq->next();
    if (!running_) {
      co_return;
    }
    SCALERPC_CHECK(c.is_recv && c.has_imm);
    const int conn_id = static_cast<int>(c.imm >> 8);
    const int slot = static_cast<int>(c.imm & 0xff);
    ConnState& conn = *conns_.at(static_cast<size_t>(conn_id));

    const uint64_t block =
        conn.req_base + static_cast<uint64_t>(slot) * cfg_.block_bytes;
    auto msg = rpc::decode_block(mem, block, cfg_.block_bytes);
    SCALERPC_CHECK_MSG(msg.has_value(), "imm arrived without message payload");
    Nanos cost = node_->read_cost(block + cfg_.block_bytes - msg->total_bytes(),
                                  msg->total_bytes());
    rpc::clear_block(mem, block, cfg_.block_bytes);
    cost += node_->write_cost(block + cfg_.block_bytes - 1, 1);

    // The proxy hides the originating client: the server only ever sees the
    // shared connection (that anonymity is the RDMAvisor state win).
    rpc::RequestContext ctx{conn_id, msg->op};
    rpc::HandlerResult result = handlers_.dispatch(ctx, msg->data);
    cost += cfg_.handler_base_ns + result.cpu_ns;
    requests_served_++;

    const uint64_t src =
        conn.resp_src + static_cast<uint64_t>(slot) * cfg_.block_bytes;
    const uint32_t total = rpc::encode_at(mem, src, msg->op, result.flags, result.response);
    cost += node_->write_cost(src, total);
    co_await node_->loop().delay(cost);

    co_await conn.qp->post_recv(RecvWr{0, 0, 0});  // replenish descriptor

    SendWr wr;
    wr.opcode = Opcode::kWrite;
    wr.local_addr = src;
    wr.length = total;
    wr.remote_addr = rpc::aligned_target(
        conn.resp_remote + static_cast<uint64_t>(slot) * cfg_.block_bytes,
        cfg_.block_bytes, total);
    wr.rkey = conn.resp_rkey;
    wr.signaled = false;
    co_await conn.qp->post_send(wr);
  }
}

// ----------------------------------------------------------------- agent ---

ProxyAgent::ProxyAgent(ProxyServer* server, simrdma::Node* node, rpc::CpuPool* cpu)
    : server_(server), node_(node), cpu_(cpu), cfg_(server->config()) {
  const int k = cfg_.proxy_conns_per_node;
  const int s = cfg_.proxy_slots_per_conn;
  const uint64_t region = static_cast<uint64_t>(s) * cfg_.block_bytes;
  cq_ = node_->create_cq();
  work_wake_ = std::make_unique<sim::Notification>(node_->loop());
  resp_wake_ = std::make_unique<sim::Notification>(node_->loop());
  sim::Notification* wake = resp_wake_.get();
  conns_.resize(static_cast<size_t>(k));
  for (int c = 0; c < k; ++c) {
    Conn& conn = conns_[static_cast<size_t>(c)];
    conn.qp = node_->create_qp(QpType::kRC, cq_, cq_);
    conn.req_src = node_->alloc(region, 4096);
    conn.resp_base = node_->alloc(region, 4096);
    conn.global_id = server_->register_conn(conn.qp, conn.resp_base,
                                            node_->arena_mr()->rkey,
                                            &conn.req_remote, &req_rkey_);
    node_->memory().add_watcher(conn.resp_base, region, [wake] { wake->notify(); });
  }
  inflight_.assign(static_cast<size_t>(k) * static_cast<size_t>(s), nullptr);
  free_slots_ = inflight_.size();
  sim::spawn(node_->loop(), pump());
  sim::spawn(node_->loop(), collector());
}

int ProxyAgent::add_client() {
  num_clients_++;
  return server_->next_client_id();
}

void ProxyAgent::submit(uint8_t op, rpc::Bytes request, rpc::Bytes* out,
                        size_t* remaining, sim::Notification* done) {
  Pending* p;
  if (!record_free_.empty()) {
    p = record_free_.back();
    record_free_.pop_back();
  } else {
    all_records_.push_back(std::make_unique<Pending>());
    p = all_records_.back().get();
  }
  p->op = op;
  p->data = std::move(request);
  p->out = out;
  p->remaining = remaining;
  p->done = done;
  queue_.push_back(p);
  queue_peak_ = std::max(queue_peak_,
                         static_cast<uint64_t>(queue_.size() - queue_head_));
  work_wake_->notify();
}

bool ProxyAgent::take_free_slot(int* conn, int* slot) {
  if (free_slots_ == 0) {
    return false;
  }
  const int k = cfg_.proxy_conns_per_node;
  const int s = cfg_.proxy_slots_per_conn;
  for (int i = 0; i < k; ++i) {
    const int c = (next_rr_conn_ + i) % k;
    for (int j = 0; j < s; ++j) {
      if (inflight_[static_cast<size_t>(c) * static_cast<size_t>(s) +
                    static_cast<size_t>(j)] == nullptr) {
        *conn = c;
        *slot = j;
        next_rr_conn_ = (c + 1) % k;
        return true;
      }
    }
  }
  SCALERPC_CHECK(false);  // free_slots_ said otherwise
  return false;
}

sim::Task<void> ProxyAgent::pump() {
  auto& mem = node_->memory();
  const int s = cfg_.proxy_slots_per_conn;
  for (;;) {
    if (queue_head_ == queue_.size()) {
      queue_.clear();
      queue_head_ = 0;
      co_await work_wake_->wait();
      continue;
    }
    int conn_i = 0;
    int slot = 0;
    if (!take_free_slot(&conn_i, &slot)) {
      // All K x S wire slots busy: the request stays in the agent queue —
      // this wait *is* the modeled proxy-side queueing delay.
      co_await work_wake_->wait();
      continue;
    }
    Pending* req = queue_[queue_head_++];
    Conn& conn = conns_[static_cast<size_t>(conn_i)];
    inflight_[static_cast<size_t>(conn_i) * static_cast<size_t>(s) +
              static_cast<size_t>(slot)] = req;
    free_slots_--;
    // Dequeue + staging copy: the request-side shm hop, on the node's
    // shared cores (the proxy competes with its own clients for CPU).
    const uint64_t src =
        conn.req_src + static_cast<uint64_t>(slot) * cfg_.block_bytes;
    const uint32_t total = rpc::encode_at(mem, src, req->op, 0, req->data);
    co_await cpu_->work(cfg_.proxy_ipc_ns + node_->write_cost(src, total));
    SendWr wr;
    wr.opcode = Opcode::kWriteImm;
    wr.local_addr = src;
    wr.length = total;
    wr.remote_addr = rpc::aligned_target(
        conn.req_remote + static_cast<uint64_t>(slot) * cfg_.block_bytes,
        cfg_.block_bytes, total);
    wr.rkey = req_rkey_;
    wr.imm = make_imm(conn.global_id, slot);
    wr.signaled = false;
    co_await conn.qp->post_send(wr);
  }
}

sim::Task<void> ProxyAgent::collector() {
  auto& mem = node_->memory();
  const int k = cfg_.proxy_conns_per_node;
  const int s = cfg_.proxy_slots_per_conn;
  for (;;) {
    co_await resp_wake_->wait();
    bool progress = true;
    while (progress) {
      progress = false;
      Nanos cost = 0;
      size_t freed = 0;
      for (int c = 0; c < k; ++c) {
        for (int j = 0; j < s; ++j) {
          const size_t idx = static_cast<size_t>(c) * static_cast<size_t>(s) +
                             static_cast<size_t>(j);
          Pending* p = inflight_[idx];
          if (p == nullptr) {
            continue;
          }
          const uint64_t block =
              conns_[static_cast<size_t>(c)].resp_base +
              static_cast<uint64_t>(j) * cfg_.block_bytes;
          cost += node_->read_cost(block + cfg_.block_bytes - 1, 1);
          auto msg = rpc::decode_block(mem, block, cfg_.block_bytes);
          if (!msg.has_value()) {
            continue;
          }
          cost += node_->read_cost(block + cfg_.block_bytes - msg->total_bytes(),
                                   msg->total_bytes());
          rpc::clear_block(mem, block, cfg_.block_bytes);
          // Response-side shm hop: route the payload back to the waiting
          // client in memory.
          cost += cfg_.proxy_ipc_ns;
          *p->out = std::move(msg->data);
          p->data.clear();
          record_free_.push_back(p);
          inflight_[idx] = nullptr;
          free_slots_++;
          freed++;
          if (--*p->remaining == 0) {
            p->done->notify();
          }
          progress = true;
        }
      }
      if (cost > 0) {
        co_await cpu_->work(cost);
      }
      if (freed > 0) {
        work_wake_->notify();
      }
    }
  }
}

// ---------------------------------------------------------------- client ---

ProxyClient::ProxyClient(ClientEnv env, ProxyServer* server)
    : env_(env), server_(server), cfg_(server->config()) {}

sim::Task<void> ProxyClient::connect() {
  // No QP, no CQ, no registered memory: a proxied client's whole footprint
  // is this object and a notification. The agent (shared per node) carries
  // the wire state.
  agent_ = server_->agent_for(env_.node, env_.cpu);
  id_ = agent_->add_client();
  done_ = std::make_unique<sim::Notification>(env_.node->loop());
  co_return;
}

void ProxyClient::stage(uint8_t op, rpc::Bytes request) {
  SCALERPC_CHECK(static_cast<int>(staged_.size()) < cfg_.slots_per_client);
  SCALERPC_CHECK(request.size() <= rpc::max_payload(cfg_.block_bytes));
  staged_.emplace_back(op, std::move(request));
}

sim::Task<std::vector<rpc::Bytes>> ProxyClient::flush() {
  SCALERPC_CHECK(id_ >= 0);
  const size_t n = staged_.size();
  std::vector<rpc::Bytes> out(n);
  size_t remaining = n;
  for (size_t i = 0; i < n; ++i) {
    auto& [op, data] = staged_[i];
    co_await env_.cpu->work(cfg_.client_costs.request_prep_ns);
    agent_->submit(op, std::move(data), &out[i], &remaining, done_.get());
  }
  staged_.clear();
  while (remaining > 0) {
    co_await done_->wait();
  }
  if (n > 0) {
    co_await env_.cpu->work(
        static_cast<Nanos>(n) * cfg_.client_costs.response_parse_ns);
  }
  co_return out;
}

}  // namespace scalerpc::transport
