// FaSST RPC (Kalia et al., OSDI'16) — paper Table 2 baseline.
//
// Both directions use UD send/recv. The server needs only one UD QP per
// worker thread (not per connection), which is why it scales with client
// count; the price is a recv descriptor plus a CQ poll on every message,
// which is why clients need several physical nodes to saturate it (paper
// Section 3.6.2, observation 2).
#ifndef SRC_BASELINES_FASST_H_
#define SRC_BASELINES_FASST_H_

#include <memory>
#include <vector>

#include "src/baselines/common.h"

namespace scalerpc::transport {

class FasstServer : public rpc::RpcServer {
 public:
  FasstServer(simrdma::Node* node, TransportConfig cfg, int recv_ring_depth = 512);

  void start() override;
  void stop() override;

  simrdma::Node* node() { return node_; }
  const TransportConfig& config() const { return cfg_; }

  struct Admission {
    int client_id;
    int server_node;
    uint32_t worker_qpn;  // the UD QP this client's requests must target
  };
  Admission admit();

  uint64_t dropped_requests() const;

 private:
  struct Worker {
    simrdma::QueuePair* qp = nullptr;
    simrdma::CompletionQueue* recv_cq = nullptr;
    simrdma::CompletionQueue* send_cq = nullptr;
    uint64_t recv_ring = 0;
    uint64_t resp_ring = 0;
    int resp_next = 0;
  };

  sim::Task<void> worker_loop(int index);

  simrdma::Node* node_;
  TransportConfig cfg_;
  int ring_depth_;
  uint32_t recv_buf_bytes_ = 0;
  bool running_ = false;
  int next_client_id_ = 0;
  std::vector<Worker> workers_;
};

class FasstClient : public rpc::RpcClient {
 public:
  FasstClient(ClientEnv env, FasstServer* server);

  sim::Task<void> connect() override;
  void stage(uint8_t op, rpc::Bytes request) override;
  sim::Task<std::vector<rpc::Bytes>> flush() override;
  int client_id() const override { return id_; }

 private:
  ClientEnv env_;
  FasstServer* server_;
  TransportConfig cfg_;
  int id_ = -1;
  int server_node_ = -1;
  uint32_t worker_qpn_ = 0;
  simrdma::QueuePair* ud_qp_ = nullptr;
  simrdma::CompletionQueue* recv_cq_ = nullptr;
  simrdma::CompletionQueue* send_cq_ = nullptr;
  uint64_t send_ring_ = 0;
  uint64_t recv_ring_ = 0;
  uint32_t recv_buf_bytes_ = 0;
  std::vector<std::pair<uint8_t, rpc::Bytes>> staged_;
};

}  // namespace scalerpc::transport

#endif  // SRC_BASELINES_FASST_H_
