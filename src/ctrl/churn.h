// Churn and setup-storm scenarios (docs/control_plane.md).
//
// Three deterministic scenarios over a ScaleRPC testbed, all driven
// through the elastic control plane:
//
//   waves    join/leave waves: batches of clients connect through the
//            ConnectionManager, run a few RPCs, release, and every other
//            session leaves outright. With the cache capacity below the
//            fleet size, later waves evict earlier (idle) connections —
//            the steady-churn regime.
//   burst    a setup storm: the whole fleet acquires at once against the
//            bounded pending-connect queue. Run twice in one simulation —
//            the first (cold) pass pays a full setup per client, the
//            second (warm) pass hits the cache — so one run quantifies
//            what connection caching buys at storm scale.
//   restart  rolling server restarts (src/fault crash plans) under a
//            closed-loop load: goodput dip, post-restart recovery time,
//            and the control-processor cost of the reconnect storm.
//
// Every scenario reports only simulation-derived values, so bench_churn
// output is byte-identical across --threads and both NIC engines.
#ifndef SRC_CTRL_CHURN_H_
#define SRC_CTRL_CHURN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/stats.h"
#include "src/common/units.h"

namespace scalerpc::ctrl {

struct ChurnConfig {
  int clients = 1280;        // fleet size (admitted lazily)
  int client_nodes = 8;
  int rpcs_per_session = 4;  // echo RPCs per churn session
  uint32_t msg_bytes = 32;

  // waves scenario: waves * wave_size sessions over a `clients`-sized id
  // space. Sized so the waves wrap the fleet (revisits -> cache hits) and
  // the idle-cached population overflows the cache (LRU evictions).
  int waves = 4;
  int wave_size = 640;

  // ConnectionManager knobs
  size_t cache_capacity = 768;
  size_t max_pending = 64;
  Nanos retry_after = usec(20);

  // restart scenario
  int restarts = 2;
  Nanos restart_down = usec(250);  // crash -> restart per cycle
  int restart_clients = 48;        // closed-loop fleet under the restarts

  // Charge modeled control-plane costs (simrdma::modeled_ctrl_params).
  // Off = setup is free, isolating the scheduling/backpressure effects.
  bool ctrl_model = true;
  // Joiners enter fresh trailing warmup groups instead of re-chunking the
  // fleet (ScaleRpcConfig::warmup_join_groups).
  bool warmup_join = true;

  uint64_t seed = 1;
};

struct ChurnStats {
  std::string scenario;
  uint64_t clients = 0;
  uint64_t sessions = 0;   // churn sessions completed
  uint64_t rpcs = 0;       // echo responses collected
  Histogram ttfr_us;       // per-session time-to-first-response
  int64_t sim_ns = 0;      // simulated span of the scenario

  // ConnectionManager counters (zero for the restart scenario).
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t evictions = 0;
  uint64_t rejects = 0;

  // Control-processor totals across all nodes (zero with the model off).
  uint64_t ctrl_ops = 0;
  int64_t ctrl_busy_ns = 0;

  // restart scenario only.
  double goodput_mops = 0.0;
  double dip_mops = 0.0;      // worst 50us window
  double recovery_us = -1.0;  // last restart -> within 5% of pre-fault rate
  uint64_t reconnects = 0;
  uint64_t readmits = 0;
};

ChurnStats run_waves(const ChurnConfig& cfg);
// Returns {cold, warm}: the same burst twice in one simulation.
std::vector<ChurnStats> run_burst(const ChurnConfig& cfg);
ChurnStats run_restart(const ChurnConfig& cfg);

}  // namespace scalerpc::ctrl

#endif  // SRC_CTRL_CHURN_H_
