// Elastic connection manager (docs/control_plane.md).
//
// Sits between a churn driver and a fleet of RPC clients: a connection
// cache with LRU eviction of idle connections plus admission control with
// a bounded pending-connect queue. acquire(id) returns with the endpoint
// connected — either instantly from the cache (hit) or after a full setup
// (miss), which pays the modeled control-plane cost when SimParams::ctrl
// is enabled. When the pending queue is full (or the server's control
// processor is saturated), the call is pushed back and retried after
// `retry_after` — the backpressure that turns a 10k-client setup storm
// into a bounded-rate trickle instead of an unbounded backlog.
//
// The manager is transport-agnostic: it drives connections through two
// callbacks (connect/disconnect one endpoint), which the churn driver
// binds to Testbed::connect_client_async / disconnect_client_async. All
// bookkeeping is intrusive (prev/next index arrays sized once at
// construction), so steady-state operation allocates only coroutine
// frames, which the sim recycles through BytePool.
//
// Deterministic: everything runs on one EventLoop; contention resolves in
// timer order. Metrics (when a session is installed) land on the kCtrl
// kind, slot 0 for manager-scoped series (docs/metrics.md).
#ifndef SRC_CTRL_CONNECTION_MANAGER_H_
#define SRC_CTRL_CONNECTION_MANAGER_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/common/stats.h"
#include "src/sim/event_loop.h"
#include "src/sim/task.h"
#include "src/simrdma/ctrl.h"

namespace scalerpc::ctrl {

struct ConnectionManagerConfig {
  // Max connections kept live at once (0 = unbounded). Over capacity, the
  // least-recently-used *idle* connection is torn down to make room.
  size_t cache_capacity = 0;
  // Bounded pending-connect queue: at most this many setups may be
  // in flight or queued at once (0 = unbounded). Arrivals beyond it are
  // rejected with retry-after.
  size_t max_pending = 64;
  // Back-off before a rejected (or capacity-blocked) acquire retries.
  Nanos retry_after = usec(50);
};

class ConnectionManager {
 public:
  // `endpoint_fn(id)` connects / disconnects endpoint `id`; both must be
  // idempotent-safe within the manager's state machine (the manager never
  // double-connects or double-disconnects an endpoint).
  using EndpointFn = std::function<sim::Task<void>(size_t)>;

  ConnectionManager(sim::EventLoop& loop, ConnectionManagerConfig cfg,
                    size_t endpoints, EndpointFn connect, EndpointFn disconnect);

  // Optional admission tie-in: when set, acquires are also pushed back
  // while this (typically the server node's) control processor reports a
  // full command queue.
  void set_server_ctrl(simrdma::CtrlProcessor* ctrl) { server_ctrl_ = ctrl; }

  // Ensures `id` is connected and marks it busy (one session). Suspends
  // through backpressure and setup; on return the connection is live.
  sim::Task<void> acquire(size_t id);
  // Ends a session: the connection stays cached (warm) but becomes an
  // eviction candidate once no session holds it.
  void release(size_t id);
  // Explicit leave: tears the connection down now (waves scenario). The
  // endpoint must be idle (released).
  sim::Task<void> leave(size_t id);

  bool live(size_t id) const { return eps_[id].state == EpState::kLive; }
  size_t num_live() const { return num_live_; }

  // --- counters (also mirrored to kCtrl metrics when a session is on) ---
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t evictions() const { return evictions_; }
  uint64_t rejects() const { return rejects_; }
  // acquire() wall (sim) time, request to connected, in microseconds.
  const Histogram& setup_latency_us() const { return setup_latency_us_; }

 private:
  enum class EpState : uint8_t { kCold, kConnecting, kLive };

  struct Endpoint {
    EpState state = EpState::kCold;
    uint32_t busy = 0;  // sessions holding the connection (not evictable)
    // Intrusive LRU links, valid while idle-live (busy == 0, state kLive).
    int lru_prev = -1;
    int lru_next = -1;
  };

  bool admission_full() const;
  void lru_push_back(size_t id);
  void lru_unlink(size_t id);
  // Tears down the LRU idle connection; false when none is idle.
  sim::Task<bool> evict_one();

  sim::EventLoop& loop_;
  ConnectionManagerConfig cfg_;
  EndpointFn connect_;
  EndpointFn disconnect_;
  simrdma::CtrlProcessor* server_ctrl_ = nullptr;

  std::vector<Endpoint> eps_;
  int lru_head_ = -1;  // least recently used idle connection
  int lru_tail_ = -1;  // most recently used
  size_t num_live_ = 0;
  size_t pending_ = 0;

  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
  uint64_t rejects_ = 0;
  Histogram setup_latency_us_;
};

}  // namespace scalerpc::ctrl

#endif  // SRC_CTRL_CONNECTION_MANAGER_H_
