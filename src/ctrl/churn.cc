#include "src/ctrl/churn.h"

#include <algorithm>
#include <memory>

#include "src/common/logging.h"
#include "src/ctrl/connection_manager.h"
#include "src/fault/plan.h"
#include "src/harness/harness.h"
#include "src/rpc/rpc.h"
#include "src/sim/task.h"
#include "src/simrdma/params.h"

namespace scalerpc::ctrl {
namespace {

using harness::Testbed;
using harness::TestbedConfig;
using harness::TransportKind;

TestbedConfig base_config(const ChurnConfig& cfg, int clients, int client_nodes) {
  TestbedConfig tb;
  tb.kind = TransportKind::kScaleRpc;
  tb.num_clients = clients;
  tb.num_client_nodes = client_nodes;
  tb.defer_connect = true;
  tb.rpc.warmup_join_groups = cfg.warmup_join;
  if (cfg.ctrl_model) {
    tb.sim.ctrl = simrdma::modeled_ctrl_params();
  }
  // Churn testbeds can hold the whole fleet's endpoints at once.
  tb.sim.host_memory_bytes =
      MiB(256) + static_cast<uint64_t>(clients) * KiB(16);
  return tb;
}

rpc::Bytes session_payload(const ChurnConfig& cfg, size_t id) {
  rpc::Bytes payload(cfg.msg_bytes, 0);
  uint64_t x = cfg.seed ^ (0x9E3779B97F4A7C15ull * (id + 1));
  for (uint8_t& b : payload) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    b = static_cast<uint8_t>(x >> 56);
  }
  return payload;
}

// Sums control-processor totals over every node that ever charged an op.
void collect_ctrl(Testbed& bed, ChurnStats* out) {
  simrdma::Cluster& cl = bed.cluster();
  for (int n = 0; n < static_cast<int>(cl.num_nodes()); ++n) {
    simrdma::Node* node = cl.node(n);
    if (!node->has_ctrl()) {
      continue;
    }
    out->ctrl_ops += node->ctrl().ops();
    out->ctrl_busy_ns += node->ctrl().busy_ns();
  }
}

struct SessionState {
  uint64_t done = 0;
  uint64_t rpcs = 0;
  Histogram* ttfr_us = nullptr;
};

// One churn session: acquire -> first RPC (TTFR stops here) -> remaining
// RPCs -> release; `part` of the sessions then leave outright.
sim::Task<void> session(Testbed* bed, ConnectionManager* mgr,
                        const ChurnConfig* cfg, size_t id, bool leave_after,
                        SessionState* st) {
  sim::EventLoop& loop = bed->loop();
  const Nanos t0 = loop.now();
  co_await mgr->acquire(id);
  const rpc::Bytes payload = session_payload(*cfg, id);
  co_await bed->client(id).call(0, payload);
  st->ttfr_us->record(static_cast<uint64_t>(loop.now() - t0) / 1000);
  st->rpcs++;
  for (int k = 1; k < cfg->rpcs_per_session; ++k) {
    co_await bed->client(id).call(0, payload);
    st->rpcs++;
  }
  mgr->release(id);
  if (leave_after && mgr->live(id)) {
    co_await mgr->leave(id);
  }
  st->done++;
}

void drive_until(Testbed& bed, SessionState& st, uint64_t target) {
  while (st.done < target) {
    bed.loop().run_for(usec(100));
  }
}

std::unique_ptr<ConnectionManager> make_manager(const ChurnConfig& cfg,
                                                Testbed& bed) {
  ConnectionManagerConfig mc;
  mc.cache_capacity = cfg.cache_capacity;
  mc.max_pending = cfg.max_pending;
  mc.retry_after = cfg.retry_after;
  auto mgr = std::make_unique<ConnectionManager>(
      bed.loop(), mc, bed.num_clients(),
      [&bed](size_t id) { return bed.connect_client_async(id); },
      [&bed](size_t id) { return bed.disconnect_client_async(id); });
  if (cfg.ctrl_model) {
    mgr->set_server_ctrl(&bed.server_node()->ctrl());
  }
  return mgr;
}

}  // namespace

ChurnStats run_waves(const ChurnConfig& cfg) {
  TestbedConfig tb = base_config(cfg, cfg.clients, cfg.client_nodes);
  Testbed bed(tb);
  bed.server().handlers().register_handler(0, rpc::make_echo_handler(100));
  bed.server().start();

  ChurnStats out;
  out.scenario = "waves";
  out.clients = static_cast<uint64_t>(cfg.clients);
  SessionState st;
  st.ttfr_us = &out.ttfr_us;
  auto mgr = make_manager(cfg, bed);

  const Nanos t0 = bed.loop().now();
  uint64_t launched = 0;
  // Wave w targets ids [w*S, w*S+S) mod fleet: once the waves wrap, later
  // waves revisit earlier ids — cache hits for sessions that stayed warm,
  // fresh setups for ones that left or were LRU-evicted.
  for (int w = 0; w < cfg.waves; ++w) {
    for (int k = 0; k < cfg.wave_size; ++k) {
      const size_t id = static_cast<size_t>(
          (static_cast<long>(w) * cfg.wave_size + k) % cfg.clients);
      // Every other session leaves outright; the rest stay warm in the
      // cache (and get LRU-evicted once capacity runs out).
      sim::spawn(bed.loop(), session(&bed, mgr.get(), &cfg, id,
                                     /*leave_after=*/(k % 2) != 0, &st));
      launched++;
    }
    drive_until(bed, st, launched);
  }
  out.sim_ns = bed.loop().now() - t0;
  out.sessions = st.done;
  out.rpcs = st.rpcs;
  out.cache_hits = mgr->hits();
  out.cache_misses = mgr->misses();
  out.evictions = mgr->evictions();
  out.rejects = mgr->rejects();
  collect_ctrl(bed, &out);
  bed.server().stop();
  return out;
}

std::vector<ChurnStats> run_burst(const ChurnConfig& cfg) {
  TestbedConfig tb = base_config(cfg, cfg.clients, cfg.client_nodes);
  // The whole storm must fit in the cache, or the second pass would
  // re-pay setups the first pass evicted.
  Testbed bed(tb);
  bed.server().handlers().register_handler(0, rpc::make_echo_handler(100));
  bed.server().start();

  ConnectionManagerConfig mc;
  mc.cache_capacity = std::max(cfg.cache_capacity,
                               static_cast<size_t>(cfg.clients));
  mc.max_pending = cfg.max_pending;
  mc.retry_after = cfg.retry_after;
  ConnectionManager mgr(
      bed.loop(), mc, bed.num_clients(),
      [&bed](size_t id) { return bed.connect_client_async(id); },
      [&bed](size_t id) { return bed.disconnect_client_async(id); });
  if (cfg.ctrl_model) {
    mgr.set_server_ctrl(&bed.server_node()->ctrl());
  }

  std::vector<ChurnStats> rows(2);
  const char* names[2] = {"burst_cold", "burst_warm"};
  uint64_t prev[4] = {0, 0, 0, 0};
  uint64_t prev_ctrl_ops = 0;
  int64_t prev_ctrl_busy = 0;
  for (int pass = 0; pass < 2; ++pass) {
    ChurnStats& out = rows[static_cast<size_t>(pass)];
    out.scenario = names[pass];
    out.clients = static_cast<uint64_t>(cfg.clients);
    SessionState st;
    st.ttfr_us = &out.ttfr_us;
    const Nanos t0 = bed.loop().now();
    for (int i = 0; i < cfg.clients; ++i) {
      sim::spawn(bed.loop(), session(&bed, &mgr, &cfg, static_cast<size_t>(i),
                                     /*leave_after=*/false, &st));
    }
    drive_until(bed, st, static_cast<uint64_t>(cfg.clients));
    out.sim_ns = bed.loop().now() - t0;
    out.sessions = st.done;
    out.rpcs = st.rpcs;
    out.cache_hits = mgr.hits() - prev[0];
    out.cache_misses = mgr.misses() - prev[1];
    out.evictions = mgr.evictions() - prev[2];
    out.rejects = mgr.rejects() - prev[3];
    prev[0] = mgr.hits();
    prev[1] = mgr.misses();
    prev[2] = mgr.evictions();
    prev[3] = mgr.rejects();
    collect_ctrl(bed, &out);
    out.ctrl_ops -= prev_ctrl_ops;
    out.ctrl_busy_ns -= prev_ctrl_busy;
    prev_ctrl_ops += out.ctrl_ops;
    prev_ctrl_busy += out.ctrl_busy_ns;
  }
  bed.server().stop();
  return rows;
}

namespace {

struct LoadState {
  bool stop = false;
  bool measuring = false;
  uint64_t ops = 0;
};

sim::Task<void> load_client(Testbed* bed, size_t id, const ChurnConfig* cfg,
                            LoadState* st) {
  const rpc::Bytes payload = session_payload(*cfg, id);
  rpc::RpcClient& c = bed->client(id);
  while (!st->stop) {
    for (int b = 0; b < 4; ++b) {
      c.stage(0, payload);
    }
    std::vector<rpc::Bytes> resp = co_await c.flush();
    SCALERPC_CHECK_MSG(resp.size() == 4,
                       "exactly-once violation under restart churn");
    if (st->measuring) {
      st->ops += resp.size();
    }
  }
}

}  // namespace

ChurnStats run_restart(const ChurnConfig& cfg) {
  constexpr Nanos kWindow = usec(50);
  const Nanos warmup = usec(400);
  const Nanos gap = msec(1);

  TestbedConfig tb = base_config(cfg, cfg.restart_clients,
                                 std::min(cfg.client_nodes, 4));
  // Recovery is normally switched on by the constructor when a plan is
  // attached up front; here the plan is attached after connect (below), so
  // ask for it explicitly — it must be on before the server is built.
  tb.rpc.recovery_enabled = true;
  tb.rpc.client_timeout = usec(150);
  tb.rpc.client_timeout_max = usec(600);
  tb.sim.rc_retransmit_timeout_ns = 8000;
  tb.sim.rc_retry_count = 5;
  Testbed bed(tb);
  bed.server().handlers().register_handler(0, rpc::make_echo_handler(100));
  bed.server().start();
  for (size_t c = 0; c < bed.num_clients(); ++c) {
    bed.connect_client(c);
  }

  // Rolling restarts: `restarts` crash/restart cycles of the server node,
  // spaced one gap apart, starting after the warmup. The schedule anchors
  // at *post-connect* time: with the ctrl model on, bringing the fleet up
  // serializes on the server's control processor and consumes a
  // fleet-dependent span that would otherwise swallow absolute crash
  // times.
  const Nanos base = bed.loop().now();
  fault::FaultPlan plan;
  plan.seed = cfg.seed;
  const Nanos first_crash = base + warmup + gap;
  Nanos last_restart = 0;
  for (int i = 0; i < cfg.restarts; ++i) {
    const Nanos at = base + warmup + static_cast<Nanos>(i + 1) * gap;
    plan.crash(0, at, at + cfg.restart_down);
    last_restart = at + cfg.restart_down;
  }
  bed.cluster().attach_faults(plan, cfg.seed);

  ChurnStats out;
  out.scenario = "restart";
  out.clients = static_cast<uint64_t>(cfg.restart_clients);
  LoadState st;
  for (size_t c = 0; c < bed.num_clients(); ++c) {
    sim::spawn(bed.loop(), load_client(&bed, c, &cfg, &st));
  }

  auto& loop = bed.loop();
  loop.run_for(warmup);
  st.measuring = true;
  const Nanos t0 = loop.now();
  const Nanos span = last_restart + msec(2) - t0;
  std::vector<double> windows;
  std::vector<Nanos> window_ends;
  uint64_t last_ops = 0;
  while (loop.now() - t0 < span) {
    loop.run_for(kWindow);
    windows.push_back(mops_per_sec(st.ops - last_ops,
                                   static_cast<uint64_t>(kWindow)));
    window_ends.push_back(loop.now());
    last_ops = st.ops;
  }
  out.sim_ns = loop.now() - t0;
  out.rpcs = st.ops;
  out.sessions = bed.num_clients();
  out.goodput_mops = mops_per_sec(st.ops, static_cast<uint64_t>(out.sim_ns));

  // Pre-fault rate: mean of the windows before the first crash.
  double pre = 0;
  int pre_n = 0;
  for (size_t i = 0; i < windows.size(); ++i) {
    if (window_ends[i] <= first_crash) {
      pre += windows[i];
      pre_n++;
    }
  }
  pre = pre_n > 0 ? pre / pre_n : 0.0;
  out.dip_mops = windows.empty() ? 0.0 : windows[0];
  for (double w : windows) {
    out.dip_mops = std::min(out.dip_mops, w);
  }
  for (size_t i = 0; i < windows.size(); ++i) {
    if (window_ends[i] > last_restart && windows[i] >= 0.95 * pre) {
      out.recovery_us =
          static_cast<double>(window_ends[i] - last_restart) / 1000.0;
      break;
    }
  }

  st.measuring = false;
  st.stop = true;
  loop.run_for(msec(1));
  for (size_t c = 0; c < bed.num_clients(); ++c) {
    if (core::ScaleRpcClient* sc = bed.scalerpc_client(c)) {
      out.reconnects += sc->reconnects();
    }
  }
  out.readmits = bed.scalerpc()->readmits();
  collect_ctrl(bed, &out);
  bed.server().stop();
  return out;
}

}  // namespace scalerpc::ctrl
