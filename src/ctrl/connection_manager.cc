#include "src/ctrl/connection_manager.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/metrics/metrics.h"

namespace scalerpc::ctrl {

ConnectionManager::ConnectionManager(sim::EventLoop& loop,
                                     ConnectionManagerConfig cfg, size_t endpoints,
                                     EndpointFn connect, EndpointFn disconnect)
    : loop_(loop),
      cfg_(cfg),
      connect_(std::move(connect)),
      disconnect_(std::move(disconnect)),
      eps_(endpoints) {}

bool ConnectionManager::admission_full() const {
  if (cfg_.max_pending > 0 && pending_ >= cfg_.max_pending) {
    return true;
  }
  return server_ctrl_ != nullptr && server_ctrl_->saturated();
}

void ConnectionManager::lru_push_back(size_t id) {
  Endpoint& ep = eps_[id];
  ep.lru_prev = lru_tail_;
  ep.lru_next = -1;
  if (lru_tail_ >= 0) {
    eps_[static_cast<size_t>(lru_tail_)].lru_next = static_cast<int>(id);
  } else {
    lru_head_ = static_cast<int>(id);
  }
  lru_tail_ = static_cast<int>(id);
}

void ConnectionManager::lru_unlink(size_t id) {
  Endpoint& ep = eps_[id];
  if (ep.lru_prev >= 0) {
    eps_[static_cast<size_t>(ep.lru_prev)].lru_next = ep.lru_next;
  } else if (lru_head_ == static_cast<int>(id)) {
    lru_head_ = ep.lru_next;
  }
  if (ep.lru_next >= 0) {
    eps_[static_cast<size_t>(ep.lru_next)].lru_prev = ep.lru_prev;
  } else if (lru_tail_ == static_cast<int>(id)) {
    lru_tail_ = ep.lru_prev;
  }
  ep.lru_prev = -1;
  ep.lru_next = -1;
}

sim::Task<bool> ConnectionManager::evict_one() {
  if (lru_head_ < 0) {
    co_return false;  // every live connection is held by a session
  }
  const auto victim = static_cast<size_t>(lru_head_);
  lru_unlink(victim);
  eps_[victim].state = EpState::kConnecting;  // in transition: acquires wait
  co_await disconnect_(victim);
  eps_[victim].state = EpState::kCold;
  num_live_--;
  evictions_++;
  if (metrics::Registry* m = metrics::registry()) {
    m->add(metrics::kCtrlEvictions, 0, 1);
  }
  co_return true;
}

sim::Task<void> ConnectionManager::acquire(size_t id) {
  SCALERPC_CHECK(id < eps_.size());
  const Nanos t0 = loop_.now();
  // Retry back-off, doubling to 16x: at storm scale (10k sessions against
  // a 64-deep admission queue) a fixed beat turns the wait into a busy
  // poll — tens of millions of retry events for one burst.
  Nanos backoff = cfg_.retry_after;
  const Nanos backoff_max = 16 * cfg_.retry_after;
  for (;;) {
    // No suspension between the checks below and the state transition, so
    // the cold -> connecting claim is atomic under coroutine interleaving.
    Endpoint& ep = eps_[id];
    if (ep.state == EpState::kLive) {
      if (ep.busy == 0) {
        lru_unlink(id);
      }
      ep.busy++;
      hits_++;
      if (metrics::Registry* m = metrics::registry()) {
        m->add(metrics::kCtrlCacheHits, 0, 1);
      }
      break;
    }
    if (ep.state == EpState::kConnecting) {
      // Another session is bringing this endpoint up (or tearing it down);
      // re-check after a beat.
      co_await loop_.delay(backoff);
      backoff = std::min(2 * backoff, backoff_max);
      continue;
    }
    if (admission_full()) {
      rejects_++;
      if (metrics::Registry* m = metrics::registry()) {
        m->add(metrics::kCtrlAdmitRejects, 0, 1);
      }
      co_await loop_.delay(backoff);
      backoff = std::min(2 * backoff, backoff_max);
      continue;
    }
    if (cfg_.cache_capacity > 0 && num_live_ + pending_ >= cfg_.cache_capacity) {
      if (!co_await evict_one()) {
        // Cache full of busy connections: back off until a session ends.
        rejects_++;
        if (metrics::Registry* m = metrics::registry()) {
          m->add(metrics::kCtrlAdmitRejects, 0, 1);
        }
        co_await loop_.delay(backoff);
        backoff = std::min(2 * backoff, backoff_max);
      }
      continue;  // either way re-run the admission checks from the top
    }
    ep.state = EpState::kConnecting;
    pending_++;
    misses_++;
    if (metrics::Registry* m = metrics::registry()) {
      m->add(metrics::kCtrlCacheMisses, 0, 1);
    }
    co_await connect_(id);
    pending_--;
    Endpoint& fresh = eps_[id];
    fresh.state = EpState::kLive;
    fresh.busy = 1;
    num_live_++;
    break;
  }
  const uint64_t wait_us = static_cast<uint64_t>(loop_.now() - t0) / 1000;
  setup_latency_us_.record(wait_us);
  if (metrics::Registry* m = metrics::registry()) {
    m->record(metrics::kCtrlSetupLatencyUs, 0, wait_us);
  }
}

void ConnectionManager::release(size_t id) {
  Endpoint& ep = eps_[id];
  SCALERPC_CHECK(ep.state == EpState::kLive && ep.busy > 0);
  ep.busy--;
  if (ep.busy == 0) {
    lru_push_back(id);  // idle: warm in the cache, evictable under pressure
  }
}

sim::Task<void> ConnectionManager::leave(size_t id) {
  Endpoint& ep = eps_[id];
  SCALERPC_CHECK_MSG(ep.state == EpState::kLive && ep.busy == 0,
                     "leave of a busy or unconnected endpoint");
  lru_unlink(id);
  ep.state = EpState::kConnecting;
  co_await disconnect_(id);
  eps_[id].state = EpState::kCold;
  num_live_--;
}

}  // namespace scalerpc::ctrl
