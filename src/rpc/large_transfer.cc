#include "src/rpc/large_transfer.h"

#include "src/simrdma/nic.h"

namespace scalerpc::rpc {

using simrdma::Completion;
using simrdma::Opcode;
using simrdma::QpType;
using simrdma::QueuePair;
using simrdma::RecvWr;
using simrdma::SendWr;

sim::Task<TransferResult> rc_write_transfer(QueuePair* qp, uint64_t local,
                                            uint64_t remote, uint32_t rkey,
                                            uint64_t len) {
  SCALERPC_CHECK(qp->type() == QpType::kRC);
  auto& loop = qp->node()->loop();
  const Nanos t0 = loop.now();
  SendWr wr;
  wr.opcode = Opcode::kWrite;
  wr.local_addr = local;
  wr.length = static_cast<uint32_t>(len);
  wr.remote_addr = remote;
  wr.rkey = rkey;
  co_await qp->post_send(wr);
  co_await qp->send_cq()->next();
  co_return TransferResult{loop.now() - t0, len};
}

namespace {

// Receiver side: consume slices, send a 1-byte ack per slice.
sim::Task<void> slice_acker(QueuePair* recv_qp, int sender_node, uint32_t sender_qpn,
                            uint64_t slices, uint64_t ack_src) {
  for (uint64_t i = 0; i < slices; ++i) {
    const Completion c = co_await recv_qp->recv_cq()->next();
    SCALERPC_CHECK(c.is_recv);
    SendWr ack;
    ack.opcode = Opcode::kSend;
    ack.local_addr = ack_src;
    ack.length = 1;
    ack.dest_node = sender_node;
    ack.dest_qpn = sender_qpn;
    ack.signaled = false;
    ack.inline_data = true;
    co_await recv_qp->post_send(ack);
  }
}

uint64_t prepare_receiver(QueuePair* recv_qp, uint64_t remote_buf, uint64_t slices,
                          uint32_t slice_bytes) {
  simrdma::Node* rnode = recv_qp->node();
  const auto& p = rnode->params();
  const uint32_t buf = static_cast<uint32_t>(align_up(slice_bytes + p.grh_bytes, 64));
  // Post enough descriptors for every slice up front (bounded experiments).
  for (uint64_t i = 0; i < slices; ++i) {
    recv_qp->post_recv_immediate(
        RecvWr{i, remote_buf + (i % 64) * buf, buf});
  }
  return rnode->alloc(64, 64);  // ack source byte
}

}  // namespace

sim::Task<TransferResult> ud_chunked_transfer(QueuePair* send_qp, QueuePair* recv_qp,
                                              uint64_t local, uint64_t remote_buf,
                                              uint64_t len) {
  SCALERPC_CHECK(send_qp->type() == QpType::kUD && recv_qp->type() == QpType::kUD);
  auto& loop = send_qp->node()->loop();
  const auto& p = send_qp->node()->params();
  const uint32_t mtu = p.ud_mtu_bytes;
  const uint64_t slices = (len + mtu - 1) / mtu;
  const uint64_t ack_src = prepare_receiver(recv_qp, remote_buf, slices, mtu);

  // Sender needs a recv queue for the acks.
  const uint64_t ack_buf = send_qp->node()->alloc(
      align_up(1 + p.grh_bytes, 64) * 4, 64);
  for (int i = 0; i < 4; ++i) {
    send_qp->post_recv_immediate(RecvWr{static_cast<uint64_t>(i),
                                        ack_buf, static_cast<uint32_t>(64)});
  }
  sim::spawn(loop, slice_acker(recv_qp, send_qp->node()->id(), send_qp->qpn(), slices,
                               ack_src));

  const Nanos t0 = loop.now();
  uint64_t sent = 0;
  while (sent < len) {
    const auto chunk = static_cast<uint32_t>(std::min<uint64_t>(mtu, len - sent));
    SendWr wr;
    wr.opcode = Opcode::kSend;
    wr.local_addr = local + sent;
    wr.length = chunk;
    wr.dest_node = recv_qp->node()->id();
    wr.dest_qpn = recv_qp->qpn();
    co_await send_qp->post_send(wr);
    co_await send_qp->send_cq()->next();  // local transmit completion
    // Stop-and-wait: the next slice may only go once this one is acked.
    const Completion ack = co_await send_qp->recv_cq()->next();
    SCALERPC_CHECK(ack.is_recv);
    co_await send_qp->post_recv(RecvWr{ack.wr_id, ack_buf, 64});
    sent += chunk;
  }
  co_return TransferResult{loop.now() - t0, len};
}

sim::Task<TransferResult> ud_pipelined_transfer(QueuePair* send_qp, QueuePair* recv_qp,
                                                uint64_t local, uint64_t remote_buf,
                                                uint64_t len, int window) {
  SCALERPC_CHECK(send_qp->type() == QpType::kUD && recv_qp->type() == QpType::kUD);
  auto& loop = send_qp->node()->loop();
  const auto& p = send_qp->node()->params();
  const uint32_t mtu = p.ud_mtu_bytes;
  const uint64_t slices = (len + mtu - 1) / mtu;
  const uint64_t ack_src = prepare_receiver(recv_qp, remote_buf, slices, mtu);

  const uint64_t ack_buf = send_qp->node()->alloc(64ULL * 64, 64);
  for (int i = 0; i < 32; ++i) {
    send_qp->post_recv_immediate(
        RecvWr{static_cast<uint64_t>(i), ack_buf + static_cast<uint64_t>(i) * 64, 64});
  }
  sim::spawn(loop, slice_acker(recv_qp, send_qp->node()->id(), send_qp->qpn(), slices,
                               ack_src));

  const Nanos t0 = loop.now();
  uint64_t sent = 0;
  uint64_t acked = 0;
  int in_flight = 0;
  while (acked < slices) {
    while (sent < len && in_flight < window) {
      const auto chunk = static_cast<uint32_t>(std::min<uint64_t>(mtu, len - sent));
      SendWr wr;
      wr.opcode = Opcode::kSend;
      wr.local_addr = local + sent;
      wr.length = chunk;
      wr.dest_node = recv_qp->node()->id();
      wr.dest_qpn = recv_qp->qpn();
      wr.signaled = false;
      co_await send_qp->post_send(wr);
      sent += chunk;
      in_flight++;
    }
    const Completion ack = co_await send_qp->recv_cq()->next();
    SCALERPC_CHECK(ack.is_recv);
    co_await send_qp->post_recv(
        RecvWr{ack.wr_id, ack_buf + (ack.wr_id % 32) * 64, 64});
    acked++;
    in_flight--;
  }
  co_return TransferResult{loop.now() - t0, len};
}

}  // namespace scalerpc::rpc
