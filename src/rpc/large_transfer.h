// Large-message transfer primitives (paper Section 5.1).
//
// The paper argues UD cannot replace RC for variable-sized payloads: UD's
// 4 KB MTU forces slicing a large message into ordered chunks with an
// acknowledgement before each next slice, and their prototype measured only
// 0.8 GB/s single-threaded — 12.5% of RC's bandwidth. These helpers
// implement both paths so the claim is reproducible (bench_sec51_large).
#ifndef SRC_RPC_LARGE_TRANSFER_H_
#define SRC_RPC_LARGE_TRANSFER_H_

#include "src/simrdma/cluster.h"
#include "src/simrdma/node.h"

namespace scalerpc::rpc {

struct TransferResult {
  Nanos elapsed = 0;
  uint64_t bytes = 0;

  double gbytes_per_sec() const {
    return elapsed == 0 ? 0.0
                        : static_cast<double>(bytes) / static_cast<double>(elapsed);
  }
};

// One RC write of `len` bytes (RC MTU is 2 GB: a single verb).
sim::Task<TransferResult> rc_write_transfer(simrdma::QueuePair* qp, uint64_t local,
                                            uint64_t remote, uint32_t rkey,
                                            uint64_t len);

// Stop-and-wait chunked transfer over UD: the payload is cut into MTU-sized
// slices; the receiver acknowledges each slice (a UD send back) before the
// sender posts the next one, guaranteeing order on the unordered transport.
// `recv_qp` must belong to the receiving node; the function spawns the
// receiver-side acker itself.
sim::Task<TransferResult> ud_chunked_transfer(simrdma::QueuePair* send_qp,
                                              simrdma::QueuePair* recv_qp,
                                              uint64_t local, uint64_t remote_buf,
                                              uint64_t len);

// Pipelined variant with a window of unacknowledged slices: faster, but —
// as the paper notes — at the price of reassembly complexity the software
// must now own (slices may land out of order).
sim::Task<TransferResult> ud_pipelined_transfer(simrdma::QueuePair* send_qp,
                                                simrdma::QueuePair* recv_qp,
                                                uint64_t local, uint64_t remote_buf,
                                                uint64_t len, int window);

}  // namespace scalerpc::rpc

#endif  // SRC_RPC_LARGE_TRANSFER_H_
