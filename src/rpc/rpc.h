// Transport-agnostic RPC interfaces.
//
// Every transport in this repository (ScaleRPC and the RawWrite / HERD /
// FaSST / selfRPC baselines) implements the same client/server contract, so
// the distributed file system (dfs/) and the transactional system (txn/)
// are transport-generic and the benchmark harness can sweep transports.
//
// The API mirrors the paper's Section 3.5: SyncCall is `call`, AsyncCall is
// `stage`, PollCompletion is `flush` (which awaits the whole batch).
#ifndef SRC_RPC_RPC_H_
#define SRC_RPC_RPC_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "src/common/units.h"
#include "src/rpc/msg_format.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"

namespace scalerpc::rpc {

// Result of a handler invocation: response payload, a flag byte merged into
// the response flags, and the CPU time the handler burned (charged to the
// serving worker).
struct HandlerResult {
  Bytes response;
  uint8_t flags = 0;
  Nanos cpu_ns = 0;
};

// Request context available to handlers.
struct RequestContext {
  int client_id = -1;
  uint8_t op = 0;
};

using Handler = std::function<HandlerResult(const RequestContext&,
                                            std::span<const uint8_t> request)>;

// Op-indexed handler registry shared by all server implementations.
class HandlerTable {
 public:
  void register_handler(uint8_t op, Handler handler) {
    if (handlers_.size() <= op) {
      handlers_.resize(static_cast<size_t>(op) + 1);
    }
    handlers_[op] = std::move(handler);
  }

  bool has_handler(uint8_t op) const {
    return op < handlers_.size() && static_cast<bool>(handlers_[op]);
  }

  HandlerResult dispatch(const RequestContext& ctx, std::span<const uint8_t> req) const {
    SCALERPC_CHECK_MSG(has_handler(ctx.op), "no handler registered for op");
    return handlers_[ctx.op](ctx, req);
  }

 private:
  std::vector<Handler> handlers_;
};

// Default echo handler used by microbenchmarks: returns the request bytes
// after a configurable "application" CPU cost.
Handler make_echo_handler(Nanos cpu_ns);

// Per-transport CPU overheads on the *client* side (charged through the
// node's shared core pool so that packing many client threads onto few
// physical nodes saturates, as in the paper's Fig. 8 right half).
struct ClientCostModel {
  Nanos request_prep_ns = 60;    // compose message, bookkeeping
  Nanos response_parse_ns = 40;  // copy/validate response
  // UD-based transports additionally repost a recv and poll the CQ instead
  // of checking a local pool; including wasted poll rounds this burns
  // microseconds of client CPU per op. The paper attributes UD RPCs'
  // slower per-node saturation (Fig. 8 right half) to exactly this.
  Nanos ud_extra_per_op_ns = 2500;
};

// A node's client-side CPU: `cores` workers shared by all client actors on
// that node. Client actors run their per-op CPU bursts through this pool.
class CpuPool {
 public:
  CpuPool(sim::EventLoop& loop, int cores) : loop_(loop), sem_(loop, cores) {}

  sim::Task<void> work(Nanos cost) {
    co_await sem_.acquire();
    co_await loop_.delay(cost);
    sem_.release();
  }

 private:
  sim::EventLoop& loop_;
  sim::Semaphore sem_;
};

// --- Client contract ---
// Usage: connect() once; then either call() for synchronous requests or
// stage()+flush() for batches (the paper's AsyncCall/PollCompletion).
class RpcClient {
 public:
  virtual ~RpcClient() = default;

  virtual sim::Task<void> connect() = 0;
  // Tears down the connection state connect() built (QP, watchers) and
  // returns the client to its unconnected footprint; a later connect()
  // rejoins, reusing the recycled resources. Only transports that support
  // churn override this; the default aborts.
  virtual sim::Task<void> disconnect() {
    SCALERPC_CHECK_MSG(false, "disconnect unsupported for this transport");
    co_return;
  }
  virtual void stage(uint8_t op, Bytes request) = 0;
  virtual sim::Task<std::vector<Bytes>> flush() = 0;
  virtual int client_id() const = 0;

  sim::Task<Bytes> call(uint8_t op, Bytes request) {
    stage(op, std::move(request));
    std::vector<Bytes> responses = co_await flush();
    SCALERPC_CHECK(responses.size() == 1);
    co_return std::move(responses[0]);
  }
};

// --- Server contract ---
class RpcServer {
 public:
  virtual ~RpcServer() = default;

  HandlerTable& handlers() { return handlers_; }
  const HandlerTable& handlers() const { return handlers_; }

  virtual void start() = 0;  // spawn worker actors
  virtual void stop() = 0;   // ask workers to wind down

  uint64_t requests_served() const { return requests_served_; }

 protected:
  HandlerTable handlers_;
  uint64_t requests_served_ = 0;
};

}  // namespace scalerpc::rpc

#endif  // SRC_RPC_RPC_H_
