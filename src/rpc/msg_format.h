// Wire format shared by all RPC transports in this repository.
//
// Following the paper (Section 3.1), a message written into a pool block is
// right-aligned with three fields:
//
//     | ... pad ... | op:1 | flags:1 | data | MsgLen:4 | Valid:1 |
//     ^ block base                                        block end ^
//
// RDMA updates memory in increasing address order, so once the trailing
// Valid byte carries the magic value the rest of the message is guaranteed
// complete — the server detects arrival by polling a single byte.
#ifndef SRC_RPC_MSG_FORMAT_H_
#define SRC_RPC_MSG_FORMAT_H_

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "src/common/logging.h"
#include "src/sim/pool.h"
#include "src/simrdma/memory.h"

namespace scalerpc::rpc {

// Pool-backed: request/response buffers are created at per-op rate on the
// hot path, so they draw from the same thread-local freelists as coroutine
// frames and packet payloads instead of malloc (see src/sim/pool.h).
using Bytes = std::vector<uint8_t, sim::PoolAllocator<uint8_t>>;

constexpr uint32_t kTailBytes = 5;    // MsgLen:4 + Valid:1
constexpr uint32_t kHeaderBytes = 2;  // op:1 + flags:1
constexpr uint8_t kValidMagic = 0x7A;

// Response flag bits (piggybacked server->client signals).
constexpr uint8_t kFlagContextSwitch = 0x01;  // ScaleRPC: group slice over
constexpr uint8_t kFlagError = 0x02;          // handler reported failure

struct MessageView {
  uint8_t op = 0;
  uint8_t flags = 0;
  Bytes data;

  uint32_t total_bytes() const {
    return kHeaderBytes + static_cast<uint32_t>(data.size()) + kTailBytes;
  }
};

// Largest data payload a block of `block_bytes` can carry.
constexpr uint32_t max_payload(uint32_t block_bytes) {
  return block_bytes - kTailBytes - kHeaderBytes;
}

// Serializes a message compactly at `addr` in `mem` (for use as the local
// source of an RDMA write, or as a staging slot fetched by the server).
// Returns the number of bytes written.
uint32_t encode_at(simrdma::HostMemory& mem, uint64_t addr, uint8_t op, uint8_t flags,
                   std::span<const uint8_t> data);

// Where inside a block a message of `msg_bytes` must land so its Valid byte
// is the block's last byte.
constexpr uint64_t aligned_target(uint64_t block_base, uint32_t block_bytes,
                                  uint32_t msg_bytes) {
  return block_base + block_bytes - msg_bytes;
}

// True when the block's Valid byte carries the magic (cheap 1-byte check —
// callers charge the LLC cost of reading that byte themselves). Inline: this
// sits in every server's poll loop.
inline bool block_has_message(const simrdma::HostMemory& mem, uint64_t block_base,
                              uint32_t block_bytes) {
  return mem.load_pod<uint8_t>(block_base + block_bytes - 1) == kValidMagic;
}

// Decodes the right-aligned message in a block; nullopt if Valid is unset
// or the length field is corrupt.
std::optional<MessageView> decode_block(const simrdma::HostMemory& mem,
                                        uint64_t block_base, uint32_t block_bytes);

// Clears the Valid byte so the slot can be reused (a plain CPU store).
void clear_block(simrdma::HostMemory& mem, uint64_t block_base, uint32_t block_bytes);

// --- Compact staging format (ScaleRPC warmup path) ---
// Clients stage whole batches locally as forward-parseable records:
//     | MsgLen:4 | op:1 | flags:1 | data |
// The server fetches the concatenation with one RDMA read and re-encodes
// each record right-aligned into pool blocks.

// Appends one staged record at `addr`; returns its encoded size.
uint32_t encode_staged(simrdma::HostMemory& mem, uint64_t addr, uint8_t op,
                       uint8_t flags, std::span<const uint8_t> data);

// Parses one staged record at `addr` (bounded by max_len); returns the view
// and the record's encoded size, or nullopt on corrupt/oversized length.
std::optional<std::pair<MessageView, uint32_t>> decode_staged(
    const simrdma::HostMemory& mem, uint64_t addr, uint32_t max_len);

// Re-encodes a message right-aligned into a pool block (CPU-side store used
// when the server moves warmed-up requests into the processing pool).
void place_in_block(simrdma::HostMemory& mem, uint64_t block_base, uint32_t block_bytes,
                    const MessageView& msg);

}  // namespace scalerpc::rpc

#endif  // SRC_RPC_MSG_FORMAT_H_
