#include "src/rpc/rpc.h"

namespace scalerpc::rpc {

Handler make_echo_handler(Nanos cpu_ns) {
  return [cpu_ns](const RequestContext&, std::span<const uint8_t> req) {
    HandlerResult result;
    result.response.assign(req.begin(), req.end());
    result.cpu_ns = cpu_ns;
    return result;
  };
}

}  // namespace scalerpc::rpc
