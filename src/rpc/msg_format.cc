#include "src/rpc/msg_format.h"

#include <cstring>

namespace scalerpc::rpc {

uint32_t encode_at(simrdma::HostMemory& mem, uint64_t addr, uint8_t op, uint8_t flags,
                   std::span<const uint8_t> data) {
  const uint32_t msg_len = kHeaderBytes + static_cast<uint32_t>(data.size());
  const uint32_t total = msg_len + kTailBytes;
  uint8_t* p = mem.raw(addr);
  SCALERPC_CHECK(mem.contains(addr, total));
  p[0] = op;
  p[1] = flags;
  if (!data.empty()) {
    std::memcpy(p + 2, data.data(), data.size());
  }
  std::memcpy(p + msg_len, &msg_len, sizeof(msg_len));
  p[msg_len + 4] = kValidMagic;
  return total;
}

std::optional<MessageView> decode_block(const simrdma::HostMemory& mem,
                                        uint64_t block_base, uint32_t block_bytes) {
  if (!block_has_message(mem, block_base, block_bytes)) {
    return std::nullopt;
  }
  const uint64_t end = block_base + block_bytes;
  const auto msg_len = mem.load_pod<uint32_t>(end - kTailBytes);
  if (msg_len < kHeaderBytes || msg_len > block_bytes - kTailBytes) {
    return std::nullopt;
  }
  const uint64_t msg_base = end - kTailBytes - msg_len;
  MessageView view;
  view.op = mem.load_pod<uint8_t>(msg_base);
  view.flags = mem.load_pod<uint8_t>(msg_base + 1);
  view.data.resize(msg_len - kHeaderBytes);
  mem.load(msg_base + kHeaderBytes, view.data);
  return view;
}

void clear_block(simrdma::HostMemory& mem, uint64_t block_base, uint32_t block_bytes) {
  mem.store_pod<uint8_t>(block_base + block_bytes - 1, 0);
}

uint32_t encode_staged(simrdma::HostMemory& mem, uint64_t addr, uint8_t op,
                       uint8_t flags, std::span<const uint8_t> data) {
  const uint32_t msg_len = kHeaderBytes + static_cast<uint32_t>(data.size());
  SCALERPC_CHECK(mem.contains(addr, 4 + msg_len));
  uint8_t* p = mem.raw(addr);
  std::memcpy(p, &msg_len, sizeof(msg_len));
  p[4] = op;
  p[5] = flags;
  if (!data.empty()) {
    std::memcpy(p + 6, data.data(), data.size());
  }
  return 4 + msg_len;
}

std::optional<std::pair<MessageView, uint32_t>> decode_staged(
    const simrdma::HostMemory& mem, uint64_t addr, uint32_t max_len) {
  if (max_len < 4 + kHeaderBytes) {
    return std::nullopt;
  }
  const auto msg_len = mem.load_pod<uint32_t>(addr);
  if (msg_len < kHeaderBytes || 4 + msg_len > max_len) {
    return std::nullopt;
  }
  MessageView view;
  view.op = mem.load_pod<uint8_t>(addr + 4);
  view.flags = mem.load_pod<uint8_t>(addr + 5);
  view.data.resize(msg_len - kHeaderBytes);
  mem.load(addr + 6, view.data);
  return std::make_pair(std::move(view), 4 + msg_len);
}

void place_in_block(simrdma::HostMemory& mem, uint64_t block_base, uint32_t block_bytes,
                    const MessageView& msg) {
  const uint32_t total = msg.total_bytes();
  SCALERPC_CHECK(total <= block_bytes);
  encode_at(mem, aligned_target(block_base, block_bytes, total), msg.op, msg.flags,
            msg.data);
}

}  // namespace scalerpc::rpc
