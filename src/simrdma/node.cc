#include "src/simrdma/node.h"

#include "src/simrdma/cluster.h"
#include "src/simrdma/nic.h"

namespace scalerpc::simrdma {

Node::Node(Cluster* cluster, int id, std::string name, const SimParams& params)
    : cluster_(cluster),
      id_(id),
      name_(std::move(name)),
      params_(params),
      memory_(params.host_memory_bytes),
      llc_(params),
      nic_(std::make_unique<Nic>(cluster->loop(), this, params)) {}

Node::~Node() = default;

sim::EventLoop& Node::loop() const { return cluster_->loop(); }

uint64_t Node::alloc(uint64_t len, uint64_t align) {
  bump_ = align_up(bump_, align);
  const uint64_t addr = memory_.base() + bump_;
  bump_ += len;
  SCALERPC_CHECK_MSG(bump_ <= memory_.size(), "node memory arena exhausted");
  return addr;
}

MemoryRegion* Node::register_mr(uint64_t addr, uint64_t len) {
  SCALERPC_CHECK(memory_.contains(addr, len));
  auto mr = std::make_unique<MemoryRegion>();
  mr->lkey = next_key_++;
  mr->rkey = next_key_++;
  mr->addr = addr;
  mr->length = len;
  mrs_.push_back(std::move(mr));
  return mrs_.back().get();
}

MemoryRegion* Node::find_mr_by_rkey(uint32_t rkey, uint64_t addr, uint64_t len) {
  for (auto& mr : mrs_) {
    if (mr->rkey == rkey && mr->covers(addr, len)) {
      return mr.get();
    }
  }
  return nullptr;
}

MemoryRegion* Node::arena_mr() {
  if (arena_mr_ == nullptr) {
    arena_mr_ = register_mr(memory_.base(), memory_.size());
  }
  return arena_mr_;
}

CompletionQueue* Node::create_cq() {
  cqs_.push_back(std::make_unique<CompletionQueue>(loop(), params_.cq_poll_ns));
  return cqs_.back().get();
}

QueuePair* Node::create_qp(QpType type, CompletionQueue* send_cq,
                           CompletionQueue* recv_cq) {
  live_qps_++;
  if (!free_qpns_.empty()) {
    const uint32_t qpn = free_qpns_.back();
    free_qpns_.pop_back();
    QueuePair* qp = find_qp(qpn);
    qp->reinit(type, send_cq, recv_cq);
    return qp;
  }
  const uint32_t qpn = static_cast<uint32_t>(qps_.size()) + 1;
  return &qps_.emplace_back(this, type, qpn, send_cq, recv_cq);
}

void Node::destroy_qp(QueuePair* qp) {
  SCALERPC_CHECK(qp != nullptr && find_qp(qp->qpn()) == qp);
  SCALERPC_CHECK(live_qps_ > 0);
  qp->recycle();
  free_qpns_.push_back(qp->qpn());
  live_qps_--;
}

CtrlProcessor& Node::ctrl() {
  if (ctrl_ == nullptr) {
    ctrl_ = std::make_unique<CtrlProcessor>(loop(), params_.ctrl.processor_slots);
  }
  return *ctrl_;
}

void Node::fail_all_qps() {
  for (QueuePair& qp : qps_) {
    qp.force_error();
  }
}

Nanos Node::local_time() const {
  const double t = static_cast<double>(loop().now());
  return clock_offset_ + static_cast<Nanos>(t * (1.0 + clock_drift_ppm_ * 1e-6));
}

}  // namespace scalerpc::simrdma
