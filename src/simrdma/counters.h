// Hardware-style event counters, mirroring what the paper samples with
// Intel PCM (Section 3.6.3) plus NIC-internal statistics.
//
// Counters are plain monotonically increasing values; experiments snapshot
// them (operator-) around a measurement window, exactly like running `pcm`
// for an interval.
#ifndef SRC_SIMRDMA_COUNTERS_H_
#define SRC_SIMRDMA_COUNTERS_H_

#include <cstdint>

namespace scalerpc::simrdma {

// PCIe/DDIO events observed at a node's uncore, as PCM reports them.
struct PcmCounters {
  // Reads from host memory to the PCIe device (payload gathers, WQE and QP
  // state refetches, recv-descriptor fetches, RDMA-read data fetches).
  uint64_t pcie_rd_cur = 0;
  // Partial-cache-line writes from the device to memory.
  uint64_t rfo = 0;
  // Full-cache-line writes from the device to memory.
  uint64_t itom = 0;
  // Writes that had to *allocate* an LLC line (DDIO Write Allocate) instead
  // of updating one already present (Write Update).
  uint64_t pcie_itom = 0;
  // CPU-side L3 statistics.
  uint64_t l3_hits = 0;
  uint64_t l3_misses = 0;

  PcmCounters operator-(const PcmCounters& rhs) const {
    PcmCounters d;
    d.pcie_rd_cur = pcie_rd_cur - rhs.pcie_rd_cur;
    d.rfo = rfo - rhs.rfo;
    d.itom = itom - rhs.itom;
    d.pcie_itom = pcie_itom - rhs.pcie_itom;
    d.l3_hits = l3_hits - rhs.l3_hits;
    d.l3_misses = l3_misses - rhs.l3_misses;
    return d;
  }

  double l3_miss_rate() const {
    const uint64_t total = l3_hits + l3_misses;
    return total == 0 ? 0.0 : static_cast<double>(l3_misses) / static_cast<double>(total);
  }
};

// NIC-internal statistics (not PCM-visible, but useful for tests/ablation).
struct NicCounters {
  uint64_t send_wqes = 0;        // WQEs processed by the send pipeline
  uint64_t inbound_packets = 0;  // packets processed by the recv pipeline
  uint64_t qp_cache_hits = 0;
  uint64_t qp_cache_misses = 0;
  uint64_t ud_drops = 0;   // UD arrivals with no recv WQE posted
  uint64_t rnr_events = 0;  // RC sends that waited for a recv WQE
  uint64_t acks_sent = 0;
  uint64_t bytes_tx = 0;
  uint64_t bytes_rx = 0;
  // Fault-mode reliability events (always zero in a lossless run).
  uint64_t rc_retransmits = 0;      // requester timeout-driven resends
  uint64_t rc_retry_exhausted = 0;  // WRs that gave up and errored the QP
  uint64_t rc_dup_requests = 0;     // responder-side duplicates suppressed
  uint64_t flushed_wrs = 0;         // WRs flushed by QP error transitions
  // Engine bookkeeping: how many times the NIC data plane's execution engine
  // stepped. Under the callback engine this counts state-machine transitions
  // (one per dispatched callback); under the coroutine reference engine it
  // counts frame starts + coroutine resumes. Purely diagnostic — excluded
  // from figure output and from the engine-oracle comparison.
  uint64_t engine_steps = 0;

  NicCounters operator-(const NicCounters& rhs) const {
    NicCounters d;
    d.send_wqes = send_wqes - rhs.send_wqes;
    d.inbound_packets = inbound_packets - rhs.inbound_packets;
    d.qp_cache_hits = qp_cache_hits - rhs.qp_cache_hits;
    d.qp_cache_misses = qp_cache_misses - rhs.qp_cache_misses;
    d.ud_drops = ud_drops - rhs.ud_drops;
    d.rnr_events = rnr_events - rhs.rnr_events;
    d.acks_sent = acks_sent - rhs.acks_sent;
    d.bytes_tx = bytes_tx - rhs.bytes_tx;
    d.bytes_rx = bytes_rx - rhs.bytes_rx;
    d.rc_retransmits = rc_retransmits - rhs.rc_retransmits;
    d.rc_retry_exhausted = rc_retry_exhausted - rhs.rc_retry_exhausted;
    d.rc_dup_requests = rc_dup_requests - rhs.rc_dup_requests;
    d.flushed_wrs = flushed_wrs - rhs.flushed_wrs;
    d.engine_steps = engine_steps - rhs.engine_steps;
    return d;
  }
};

}  // namespace scalerpc::simrdma

#endif  // SRC_SIMRDMA_COUNTERS_H_
