#include "src/simrdma/cluster.h"

#include "src/metrics/flight.h"
#include "src/metrics/metrics.h"
#include "src/simrdma/nic.h"
#include "src/trace/trace.h"

namespace scalerpc::simrdma {

Cluster::Cluster(SimParams params) : params_(params) {}

Node* Cluster::add_node(const std::string& name) {
  const int id = static_cast<int>(nodes_.size());
  nodes_.push_back(std::make_unique<Node>(this, id, name, params_));
  return nodes_.back().get();
}

Node* Cluster::add_node_with_skewed_clock(const std::string& name, Rng& rng) {
  Node* node = add_node(name);
  const auto max_off = static_cast<uint64_t>(params_.clock_offset_max_ns);
  const Nanos offset =
      static_cast<Nanos>(rng.next_below(2 * max_off + 1)) - params_.clock_offset_max_ns;
  const double drift = (rng.next_double() * 2.0 - 1.0) * params_.clock_drift_ppm_max;
  node->set_clock(offset, drift);
  return node;
}

void Cluster::connect(QueuePair* a, QueuePair* b) {
  SCALERPC_CHECK(a != nullptr && b != nullptr);
  SCALERPC_CHECK_MSG(a->type() == b->type(), "QP type mismatch");
  SCALERPC_CHECK_MSG(a->type() != QpType::kUD, "UD QPs are connectionless");
  SCALERPC_CHECK_MSG(!a->connected() && !b->connected(), "QP already connected");
  a->set_peer(b->node()->id(), b->qpn());
  b->set_peer(a->node()->id(), a->qpn());
}

void Cluster::attach_faults(const fault::FaultPlan& plan, uint64_t salt) {
  SCALERPC_CHECK_MSG(faults_ == nullptr, "fault plan already attached");
  faults_ = std::make_unique<fault::FaultInjector>(plan, salt);
  // Timed rules become event-loop callbacks now; targets resolve at fire
  // time so plans can be attached before the affected nodes/QPs exist.
  for (const fault::FaultRule& r : plan.rules()) {
    if (r.kind == fault::FaultKind::kQpError) {
      loop_.call_at(r.start, [this, r] {
        Node* n = node(r.node);
        if (QueuePair* qp = n->find_qp(r.qpn)) {
          faults_->count_qp_error();
          if (trace::Tracer* t = trace::tracer(trace::kFault)) {
            t->instant(trace::kFault, "fault.qp_error", loop_.now(), r.node,
                       "qpn", r.qpn);
          }
          if (metrics::FlightRecorder* fr = metrics::flight()) {
            fr->note("fault.qp_error", loop_.now(), r.node, r.qpn);
            fr->trigger("fault.qp_error", loop_.now());
          }
          qp->force_error();
        }
      });
    } else if (r.kind == fault::FaultKind::kCrash) {
      loop_.call_at(r.start, [this, r] {
        Node* n = node(r.node);
        faults_->count_crash();
        if (trace::Tracer* t = trace::tracer(trace::kFault)) {
          t->instant(trace::kFault, "fault.crash", loop_.now(), r.node);
        }
        if (metrics::FlightRecorder* fr = metrics::flight()) {
          fr->note("fault.crash", loop_.now(), r.node);
          fr->trigger("fault.crash", loop_.now());
        }
        n->set_down(true);
        n->fail_all_qps();
      });
      if (r.end != fault::kNever) {
        loop_.call_at(r.end, [this, r] {
          faults_->count_restart();
          if (trace::Tracer* t = trace::tracer(trace::kFault)) {
            t->instant(trace::kFault, "fault.restart", loop_.now(), r.node);
          }
          if (metrics::FlightRecorder* fr = metrics::flight()) {
            fr->note("fault.restart", loop_.now(), r.node);
          }
          node(r.node)->set_down(false);
        });
      }
    }
  }
}

void Cluster::route(Packet pkt) {
  SCALERPC_CHECK(pkt.dst_node >= 0 &&
                 pkt.dst_node < static_cast<int>(nodes_.size()));
  Nanos hop = params_.switch_latency_ns;
  if (faults_ != nullptr) {
    const Nanos now = loop_.now();
    if (faults_->should_drop(now, pkt.src_node, pkt.dst_node)) {
      if (trace::Tracer* t = trace::tracer(trace::kFault)) {
        t->instant(trace::kFault, "fault.drop", loop_.now(), pkt.src_node,
                   "dst", pkt.dst_node, "psn", pkt.psn);
      }
      return;  // the fabric ate it; payload buffer recycles on destruction
    }
    if (faults_->should_corrupt(now, pkt.src_node, pkt.dst_node)) {
      pkt.corrupt = true;
    }
    hop += faults_->extra_delay(now, pkt.src_node, pkt.dst_node);
  }
  Node* dst = nodes_[static_cast<size_t>(pkt.dst_node)].get();
  uint32_t slot;
  if (!in_flight_free_.empty()) {
    slot = in_flight_free_.back();
    in_flight_free_.pop_back();
  } else {
    slot = static_cast<uint32_t>(in_flight_.size());
    in_flight_.push_back(std::make_unique<InFlight>());
    in_flight_.back()->cluster = this;
    in_flight_.back()->slot = slot;
  }
  InFlight* f = in_flight_[slot].get();
  f->dst = dst;
  f->pkt = std::move(pkt);
  loop_.call_in(hop, &Cluster::deliver_in_flight, f);
}

void Cluster::deliver_in_flight(void* arg) {
  auto* f = static_cast<InFlight*>(arg);
  Node* dst = f->dst;
  Packet pkt = std::move(f->pkt);
  f->cluster->in_flight_free_.push_back(f->slot);
  dst->nic().deliver(std::move(pkt));
}

}  // namespace scalerpc::simrdma
