// Last-level cache model with DDIO semantics.
//
// The LLC is tracked at cache-line granularity as two LRU partitions:
//  * the general partition: lines brought in by CPU loads/stores;
//  * the DDIO partition: lines *allocated* by inbound DMA (Write Allocate),
//    capped at ddio_fraction of the LLC as on Intel uncore (the paper's
//    Section 2.3 observation).
// A DMA write to a line already resident anywhere is a Write Update (cheap,
// no allocation). A CPU access to a DDIO line promotes it to the general
// partition — this is what makes ScaleRPC's small recycled message pool stay
// resident while static per-client pools thrash.
#ifndef SRC_SIMRDMA_LLC_H_
#define SRC_SIMRDMA_LLC_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <unordered_map>

#include "src/common/units.h"
#include "src/simrdma/counters.h"
#include "src/simrdma/params.h"

namespace scalerpc::simrdma {

class LastLevelCache {
 public:
  explicit LastLevelCache(const SimParams& params);

  // CPU load touching [addr, addr+len). Returns the simulated cost.
  Nanos cpu_read(uint64_t addr, uint32_t len);
  // CPU store touching [addr, addr+len). Write-allocate policy.
  Nanos cpu_write(uint64_t addr, uint32_t len);
  // Inbound DMA write (DDIO). Updates PCM write counters.
  Nanos dma_write(uint64_t addr, uint32_t len);
  // DMA read (NIC gathering payload / serving RDMA-read). Reads may be
  // served from the LLC but never allocate lines.
  Nanos dma_read(uint64_t addr, uint32_t len);

  const PcmCounters& pcm() const { return pcm_; }
  size_t resident_lines() const { return lines_.size(); }
  size_t ddio_lines() const { return ddio_lru_.size(); }
  uint64_t capacity_lines() const { return capacity_lines_; }
  uint64_t ddio_capacity_lines() const { return ddio_capacity_lines_; }

  // Drops all state (used between experiment phases).
  void clear();

 private:
  enum class Partition : uint8_t { kGeneral, kDdio };
  struct LineState {
    Partition partition;
    std::list<uint64_t>::iterator lru_pos;
  };

  bool resident(uint64_t line) const { return lines_.count(line) != 0; }
  void touch(uint64_t line);
  void insert_general(uint64_t line);
  void insert_ddio(uint64_t line);
  void evict_one_general();
  void evict_one_ddio();
  void promote_to_general(uint64_t line);

  template <typename PerLine>
  Nanos for_each_line(uint64_t addr, uint32_t len, PerLine fn);

  const SimParams& params_;
  uint64_t capacity_lines_;
  uint64_t ddio_capacity_lines_;
  // MRU at front.
  std::list<uint64_t> general_lru_;
  std::list<uint64_t> ddio_lru_;
  std::unordered_map<uint64_t, LineState> lines_;
  PcmCounters pcm_;
};

}  // namespace scalerpc::simrdma

#endif  // SRC_SIMRDMA_LLC_H_
