// Last-level cache model with DDIO semantics.
//
// The LLC is tracked at cache-line granularity as two LRU partitions:
//  * the general partition: lines brought in by CPU loads/stores;
//  * the DDIO partition: lines *allocated* by inbound DMA (Write Allocate),
//    capped at ddio_fraction of the LLC as on Intel uncore (the paper's
//    Section 2.3 observation).
// A DMA write to a line already resident anywhere is a Write Update (cheap,
// no allocation). A CPU access to a DDIO line promotes it to the general
// partition — this is what makes ScaleRPC's small recycled message pool stay
// resident while static per-client pools thrash.
//
// Line tracking is flat: one slot per resident line, with both partition
// LRUs threaded intrusively through the same link array (see flat_lru.h).
// The line-address index is a direct map over the node's physical address
// range — the simulated address space is small and known at construction
// (the registered arena plus the sub-base scratch used by unit tests), so
// a lazily-committed array of one 4-byte entry per 64-byte line replaces
// the open-addressing probe with a single dependent load. The slot pool
// grows on demand (same slot-id allocation order as the old preallocated
// free list, so replacement order is bit-for-bit unchanged) instead of
// paying capacity-sized construction: a 30 MiB LLC no longer zeroes ~27 MB
// of table per node before the first event fires.
#ifndef SRC_SIMRDMA_LLC_H_
#define SRC_SIMRDMA_LLC_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/common/lazy_mem.h"
#include "src/common/units.h"
#include "src/simrdma/counters.h"
#include "src/simrdma/flat_lru.h"
#include "src/simrdma/params.h"
#include "src/trace/trace.h"

namespace scalerpc::simrdma {

class LastLevelCache {
 public:
  explicit LastLevelCache(const SimParams& params);

  // The four access entry points are defined inline below the class: they
  // run once per simulated line touch (tens of millions of times in a
  // figure sweep), and the hit path must inline down to a single index
  // probe plus an LRU relink. Only the miss/eviction machinery stays
  // out-of-line in llc.cc.

  // CPU load touching [addr, addr+len). Returns the simulated cost.
  Nanos cpu_read(uint64_t addr, uint32_t len);
  // CPU store touching [addr, addr+len). Write-allocate policy.
  Nanos cpu_write(uint64_t addr, uint32_t len);
  // Inbound DMA write (DDIO). Updates PCM write counters.
  Nanos dma_write(uint64_t addr, uint32_t len);
  // DMA read (NIC gathering payload / serving RDMA-read). Reads may be
  // served from the LLC but never allocate lines.
  Nanos dma_read(uint64_t addr, uint32_t len);

  const PcmCounters& pcm() const { return pcm_; }
  size_t resident_lines() const { return general_lru_.size() + ddio_lru_.size(); }
  size_t ddio_lines() const { return ddio_lru_.size(); }
  uint64_t capacity_lines() const { return capacity_lines_; }
  uint64_t ddio_capacity_lines() const { return ddio_capacity_lines_; }

  // Drops all state (used between experiment phases).
  void clear();

 private:
  enum class Partition : uint8_t { kGeneral, kDdio };

  // Moves `slot` to the MRU end of its partition.
  void touch(uint32_t slot);
  void insert_general(uint64_t line);
  void insert_ddio(uint64_t line);
  void evict_one_general();
  void evict_one_ddio();
  void promote_to_general(uint32_t slot);
  uint32_t take_free_slot(uint64_t line);
  void release_slot(uint32_t slot);

  template <typename PerLine>
  Nanos for_each_line(uint64_t addr, uint32_t len, PerLine fn);

  // Direct-map probe: entry holds slot+1, zero meaning "not resident" (the
  // lazy backing reads as all-zero until written).
  uint32_t lookup(uint64_t line) const {
    return line_map_[line / kCacheLineSize] - 1;  // absent: 0 - 1 == kLruNil
  }

  const SimParams& params_;
  uint64_t capacity_lines_;
  uint64_t ddio_capacity_lines_;
  uint64_t addr_limit_;               // direct map covers [0, addr_limit_)
  LazyArray<uint32_t> line_map_;      // line address / 64 -> slot + 1
  std::vector<uint64_t> slot_line_;   // line address stored in each slot
  std::vector<LruLink> links_;        // intrusive links, shared by both LRUs
  std::vector<Partition> partition_;  // which LRU a slot currently sits in
  std::vector<uint32_t> free_;        // recycled slots (pool grows on demand)
  LruList general_lru_;  // MRU at front
  LruList ddio_lru_;     // MRU at front
  PcmCounters pcm_;
};

inline void LastLevelCache::touch(uint32_t slot) {
  auto& lru = partition_[slot] == Partition::kGeneral ? general_lru_ : ddio_lru_;
  lru.move_to_front(links_.data(), slot);
}

template <typename PerLine>
Nanos LastLevelCache::for_each_line(uint64_t addr, uint32_t len, PerLine fn) {
  Nanos cost = 0;
  if (len == 0) {
    return 0;
  }
  // One range check per access call keeps the per-line probe unconditional.
  SCALERPC_CHECK(addr + len <= addr_limit_ && addr + len >= addr);
  const uint64_t first = align_down(addr, kCacheLineSize);
  const uint64_t last = align_down(addr + len - 1, kCacheLineSize);
  if (first == last) {
    // Single-line touch: by far the most common shape (poll-byte reads,
    // header probes).
    return fn(first, lookup(first), addr == first && len == kCacheLineSize);
  }
  for (uint64_t line = first; line <= last; line += kCacheLineSize) {
    // fn probes the index once and gets the resident slot (or kLruNil); it
    // also knows whether the touch covers the whole line (full-line DMA
    // writes count as ItoM rather than RFO).
    const uint64_t lo = line < addr ? addr : line;
    const uint64_t hi = (line + kCacheLineSize) > (addr + len) ? (addr + len)
                                                               : (line + kCacheLineSize);
    cost += fn(line, lookup(line),
               static_cast<uint32_t>(hi - lo) == kCacheLineSize);
  }
  return cost;
}

inline Nanos LastLevelCache::cpu_read(uint64_t addr, uint32_t len) {
  // MRU short-circuit: consecutive touches of one resident general-partition
  // line — the server poll-loop shape — skip the map probe and the relink
  // (move_to_front of the front is a no-op; counters and cost identical).
  const uint32_t front = general_lru_.front();
  if (front != kLruNil && len != 0) {
    const uint64_t line = slot_line_[front];
    if (align_down(addr, kCacheLineSize) == line &&
        align_down(addr + len - 1, kCacheLineSize) == line) {
      pcm_.l3_hits++;
      return params_.llc_hit_ns;
    }
  }
  return for_each_line(addr, len, [this](uint64_t line, uint32_t slot, bool) -> Nanos {
    if (slot != kLruNil) {
      pcm_.l3_hits++;
      if (partition_[slot] == Partition::kDdio) {
        promote_to_general(slot);
      } else {
        touch(slot);
      }
      return params_.llc_hit_ns;
    }
    pcm_.l3_misses++;
    insert_general(line);
    return params_.llc_miss_ns;
  });
}

inline Nanos LastLevelCache::cpu_write(uint64_t addr, uint32_t len) {
  // Same residency behaviour as a read (write-allocate), same counters.
  return cpu_read(addr, len);
}

inline Nanos LastLevelCache::dma_write(uint64_t addr, uint32_t len) {
  return for_each_line(addr, len,
                       [this](uint64_t line, uint32_t slot, bool full_line) -> Nanos {
    if (full_line) {
      pcm_.itom++;
    } else {
      pcm_.rfo++;
    }
    if (slot != kLruNil) {
      // Write Update: data lands in the already-resident line.
      if (trace::Tracer* t = trace::tracer(trace::kLlc)) {
        t->instant(trace::kLlc, "ddio.write_update", trace::now(), 0, "line",
                   line, "full", static_cast<uint64_t>(full_line));
      }
      touch(slot);
      return params_.dma_llc_hit_ns;
    }
    // Write Allocate: restricted to the DDIO partition. Partial-line
    // allocations additionally pay a read-for-ownership from DRAM.
    if (trace::Tracer* t = trace::tracer(trace::kLlc)) {
      t->instant(trace::kLlc, "ddio.write_alloc", trace::now(), 0, "line",
                 line, "full", static_cast<uint64_t>(full_line));
    }
    pcm_.pcie_itom++;
    insert_ddio(line);
    return full_line ? params_.dma_llc_miss_ns : params_.dma_llc_miss_partial_ns;
  });
}

inline Nanos LastLevelCache::dma_read(uint64_t addr, uint32_t len) {
  return for_each_line(addr, len, [this](uint64_t, uint32_t slot, bool) -> Nanos {
    pcm_.pcie_rd_cur++;
    if (slot != kLruNil) {
      touch(slot);
      return params_.dma_llc_hit_ns;
    }
    return params_.dma_llc_miss_ns;
  });
}

}  // namespace scalerpc::simrdma

#endif  // SRC_SIMRDMA_LLC_H_
