// Selects which execution engine drives the NIC data plane.
//
// The callback state-machine engine (default) and the original coroutine
// pipeline are event-for-event identical — same schedule calls at the same
// simulated times in the same insertion order — so every figure, trace, and
// counter (except the diagnostic `engine_steps`) is byte-identical between
// them. The coroutine path survives as a reference model: the engine-oracle
// ctest replays randomized schedules under both and asserts they agree.
//
// The flag is process-wide and read once per Nic at construction, so a
// parallel sweep whose workers construct testbeds concurrently sees a
// consistent value as long as it is set before the sweep starts (benches and
// tests set it from main / test setup; `SIMRDMA_NIC_ENGINE=coroutine` in the
// environment flips the default).
#ifndef SRC_SIMRDMA_NIC_ENGINE_H_
#define SRC_SIMRDMA_NIC_ENGINE_H_

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace scalerpc::simrdma {

enum class NicEngine {
  kStateMachine,  // flat pooled callback state machines (frame-free)
  kCoroutine,     // sim::Task<void> pipelines (reference model)
};

namespace internal {
inline std::atomic<NicEngine>& nic_engine_flag() {
  static std::atomic<NicEngine> flag = [] {
    const char* env = std::getenv("SIMRDMA_NIC_ENGINE");
    if (env != nullptr && std::strcmp(env, "coroutine") == 0) {
      return NicEngine::kCoroutine;
    }
    return NicEngine::kStateMachine;
  }();
  return flag;
}
}  // namespace internal

inline NicEngine nic_engine() {
  return internal::nic_engine_flag().load(std::memory_order_relaxed);
}

inline void set_nic_engine(NicEngine e) {
  internal::nic_engine_flag().store(e, std::memory_order_relaxed);
}

}  // namespace scalerpc::simrdma

#endif  // SRC_SIMRDMA_NIC_ENGINE_H_
