// NIC on-chip cache model (QP connection state + send-queue/WQE entries).
//
// ConnectX-class NICs keep per-connection state (QP context, WQE/ICM
// entries) in a small on-die cache; once the working set of active
// connections outgrows it, every verb pays PCIe round trips to refetch the
// evicted state from host memory — the paper's root cause for outbound
// collapse (Section 2.3). Modeled as a single LRU over opaque keys; the NIC
// charges one PCIe read per miss.
//
// Storage is flat (see flat_lru.h): a slot vector sized to `capacity` with
// an intrusive LRU list and an open-addressing index. Every operation is
// one index probe plus O(1) link updates; nothing allocates after
// construction. Replacement order is identical to the previous
// std::list + std::unordered_map implementation.
#ifndef SRC_SIMRDMA_NIC_CACHE_H_
#define SRC_SIMRDMA_NIC_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/common/logging.h"
#include "src/simrdma/flat_lru.h"
#include "src/trace/trace.h"

namespace scalerpc::simrdma {

class NicCache {
 public:
  explicit NicCache(size_t capacity)
      : capacity_(capacity), index_(capacity), keys_(capacity), links_(capacity) {
    SCALERPC_CHECK(capacity > 0);
    free_.reserve(capacity);
    reset_free_list();
  }

  // Looks up `key`, inserting it (and evicting the LRU entry if full) on a
  // miss. Returns true on hit.
  bool access(uint64_t key) {
    // MRU short-circuit: grouped traffic touches the same connection many
    // times in a row (the paper's locality argument); re-accessing the MRU
    // entry skips the index probe, and move_to_front would be a no-op.
    const uint32_t front = lru_.front();
    if (front != kLruNil && keys_[front] == key) {
      hits_++;
      return true;
    }
    const uint32_t slot = index_.find(key);
    if (slot != kLruNil) {
      hits_++;
      lru_.move_to_front(links_.data(), slot);
      return true;
    }
    misses_++;
    insert_new(key);
    return false;
  }

  // Inserts/refreshes `key` without hit/miss accounting or (modeled) miss
  // cost. Used for responder-side context touches: inbound traffic occupies
  // cache space — evicting requester state — but its own misses are cheap
  // and overlapped (the paper's inbound verbs stay flat while bidirectional
  // RC traffic collapses). Returns true if the key was already present.
  bool touch_insert(uint64_t key) {
    const uint32_t front = lru_.front();
    if (front != kLruNil && keys_[front] == key) {
      return true;
    }
    const uint32_t slot = index_.find(key);
    if (slot != kLruNil) {
      lru_.move_to_front(links_.data(), slot);
      return true;
    }
    insert_new(key);
    return false;
  }

  // One-shot consume: if `key` is still resident it is removed (the WQE is
  // executed straight from the cache) and true is returned; otherwise a
  // miss is recorded and the caller pays the refetch. Models WQE-cache
  // entries that are prefetched at post time but may be evicted before the
  // NIC gets to execute them.
  bool consume(uint64_t key) {
    const uint32_t slot = index_.find(key);
    if (slot == kLruNil) {
      misses_++;
      return false;
    }
    hits_++;
    remove_slot(key, slot);
    return true;
  }

  bool contains(uint64_t key) const { return index_.find(key) != kLruNil; }

  // Invalidates an entry (e.g. QP destroyed).
  void invalidate(uint64_t key) {
    const uint32_t slot = index_.find(key);
    if (slot != kLruNil) {
      remove_slot(key, slot);
    }
  }

  void clear() {
    index_.clear();
    lru_.clear();
    reset_free_list();
  }

  size_t size() const { return lru_.size(); }
  size_t capacity() const { return capacity_; }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t evictions() const { return evictions_; }

 private:
  void insert_new(uint64_t key) {
    if (lru_.size() >= capacity_) {
      const uint32_t victim = lru_.back();
      if (trace::Tracer* t = trace::tracer(trace::kNic)) {
        t->instant(trace::kNic, "nic.cache_evict", trace::now(), 0, "victim",
                   keys_[victim], "for", key);
      }
      remove_slot(keys_[victim], victim);
      evictions_++;
    }
    const uint32_t slot = free_.back();
    free_.pop_back();
    keys_[slot] = key;
    index_.insert(key, slot);
    lru_.push_front(links_.data(), slot);
  }

  void remove_slot(uint64_t key, uint32_t slot) {
    lru_.erase(links_.data(), slot);
    index_.erase(key);
    free_.push_back(slot);
  }

  void reset_free_list() {
    free_.clear();
    for (size_t i = capacity_; i > 0; --i) {
      free_.push_back(static_cast<uint32_t>(i - 1));
    }
  }

  size_t capacity_;
  FlatHashIndex index_;
  std::vector<uint64_t> keys_;   // key stored in each slot
  std::vector<LruLink> links_;   // intrusive LRU links, MRU at front
  std::vector<uint32_t> free_;   // unused slots
  LruList lru_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace scalerpc::simrdma

#endif  // SRC_SIMRDMA_NIC_CACHE_H_
