// NIC on-chip cache model (QP connection state + send-queue/WQE entries).
//
// ConnectX-class NICs keep per-connection state (QP context, WQE/ICM
// entries) in a small on-die cache; once the working set of active
// connections outgrows it, every verb pays PCIe round trips to refetch the
// evicted state from host memory — the paper's root cause for outbound
// collapse (Section 2.3). Modeled as a single LRU over opaque keys; the NIC
// charges one PCIe read per miss.
#ifndef SRC_SIMRDMA_NIC_CACHE_H_
#define SRC_SIMRDMA_NIC_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <unordered_map>

#include "src/common/logging.h"

namespace scalerpc::simrdma {

class NicCache {
 public:
  explicit NicCache(size_t capacity) : capacity_(capacity) {
    SCALERPC_CHECK(capacity > 0);
  }

  // Looks up `key`, inserting it (and evicting the LRU entry if full) on a
  // miss. Returns true on hit.
  bool access(uint64_t key) {
    auto it = map_.find(key);
    if (it != map_.end()) {
      hits_++;
      lru_.splice(lru_.begin(), lru_, it->second);
      return true;
    }
    misses_++;
    if (map_.size() >= capacity_) {
      map_.erase(lru_.back());
      lru_.pop_back();
      evictions_++;
    }
    lru_.push_front(key);
    map_[key] = lru_.begin();
    return false;
  }

  // Inserts/refreshes `key` without hit/miss accounting or (modeled) miss
  // cost. Used for responder-side context touches: inbound traffic occupies
  // cache space — evicting requester state — but its own misses are cheap
  // and overlapped (the paper's inbound verbs stay flat while bidirectional
  // RC traffic collapses). Returns true if the key was already present.
  bool touch_insert(uint64_t key) {
    auto it = map_.find(key);
    if (it != map_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      return true;
    }
    if (map_.size() >= capacity_) {
      map_.erase(lru_.back());
      lru_.pop_back();
      evictions_++;
    }
    lru_.push_front(key);
    map_[key] = lru_.begin();
    return false;
  }

  // One-shot consume: if `key` is still resident it is removed (the WQE is
  // executed straight from the cache) and true is returned; otherwise a
  // miss is recorded and the caller pays the refetch. Models WQE-cache
  // entries that are prefetched at post time but may be evicted before the
  // NIC gets to execute them.
  bool consume(uint64_t key) {
    auto it = map_.find(key);
    if (it == map_.end()) {
      misses_++;
      return false;
    }
    hits_++;
    lru_.erase(it->second);
    map_.erase(it);
    return true;
  }

  bool contains(uint64_t key) const { return map_.count(key) != 0; }

  // Invalidates an entry (e.g. QP destroyed).
  void invalidate(uint64_t key) {
    auto it = map_.find(key);
    if (it != map_.end()) {
      lru_.erase(it->second);
      map_.erase(it);
    }
  }

  void clear() {
    lru_.clear();
    map_.clear();
  }

  size_t size() const { return map_.size(); }
  size_t capacity() const { return capacity_; }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t evictions() const { return evictions_; }

 private:
  size_t capacity_;
  std::list<uint64_t> lru_;  // MRU at front
  std::unordered_map<uint64_t, std::list<uint64_t>::iterator> map_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace scalerpc::simrdma

#endif  // SRC_SIMRDMA_NIC_CACHE_H_
