// Calibration constants for the RDMA fabric simulator.
//
// Defaults approximate the paper's testbed: Mellanox ConnectX-3 FDR (56
// Gbps) HCAs behind an SX-1012 switch, dual Xeon E5-2650 v4 hosts (30 MB
// LLC, DDIO write-allocate limited to 10% of the LLC). Absolute values are
// rough; what matters for the reproduction is that the *knees* land where
// the paper's do: NIC-cache thrash beyond ~128 cached QPs, LLC thrash once
// the touched pool outgrows the cache.
#ifndef SRC_SIMRDMA_PARAMS_H_
#define SRC_SIMRDMA_PARAMS_H_

#include <cstddef>
#include <cstdint>

#include "src/common/units.h"

namespace scalerpc::simrdma {

using scalerpc::Nanos;

struct SimParams {
  // --- Host memory / CPU cache ---
  uint64_t host_memory_bytes = MiB(64);  // per-node registered arena
  uint64_t llc_bytes = MiB(30);          // E5-2650 v4 LLC
  double ddio_fraction = 0.10;           // Intel DDIO write-allocate limit
  Nanos llc_hit_ns = 4;                  // CPU load served from LLC
  Nanos llc_miss_ns = 75;                // CPU load served from DRAM
  Nanos dma_llc_hit_ns = 4;    // DDIO write-update / read hit
  Nanos dma_llc_miss_ns = 36;  // full-line write-allocate / DRAM DMA touch
  // Partial-line allocating write: the line must first be read from DRAM
  // (read-for-ownership) before merging, plus eviction writeback pressure in
  // the crowded DDIO partition. This is what makes small inbound messages
  // collapse once their pool stops fitting in the LLC (paper Fig. 3b).
  Nanos dma_llc_miss_partial_ns = 250;

  // --- NIC processing ---
  int nic_send_units = 4;       // parallel WQE processing engines
  int nic_recv_units = 4;       // parallel inbound packet engines
  Nanos nic_send_base_ns = 165;  // per-WQE processing, everything cached
  Nanos nic_recv_base_ns = 100;  // per-inbound-packet processing
  Nanos nic_payload_fetch_ns = 35;   // pipelined DMA gather per cache line
  // Bulk DMA streams at PCIe line rate; multi-line transfers are charged
  // bytes * this instead of the per-line small-message constants.
  int64_t dma_stream_ps_per_byte = 130;  // ~7.7 GB/s
  Nanos nic_recv_wqe_fetch_ns = 60;  // fetching a posted recv descriptor
  Nanos nic_atomic_extra_ns = 450;   // PCIe round trip for atomics

  // --- NIC caches ---
  // QP context cache: one entry per recently active QP (requester or
  // responder role). 64 entries puts the connection-count knee between the
  // paper's 40-client sweet spot and its 80-120 client degradation range
  // (Figs. 1a/1b/13).
  size_t nic_qp_cache_entries = 64;
  // WQE buffer: descriptors prefetched at doorbell time. Deep enough that
  // it only thrashes once QP misses slow the send pipeline below the
  // offered load and a backlog builds (the collapse regime).
  size_t nic_wqe_cache_entries = 1024;
  Nanos nic_cache_miss_ns = 310;  // PCIe read to refetch evicted state

  // --- CPU-side verb issue ---
  Nanos mmio_doorbell_ns = 70;   // posting a send (WQE write + doorbell)
  Nanos post_recv_ns = 30;       // appending a recv descriptor
  Nanos cq_poll_ns = 25;         // one ibv_poll_cq round

  // --- Fabric ---
  // 56 Gbps FDR: 7 bytes/ns. Stored as picoseconds per byte.
  int64_t link_ps_per_byte = 143;
  Nanos switch_latency_ns = 300;  // port-to-port through one SX-1012 hop
  uint32_t packet_header_bytes = 30;  // IB transport headers per packet
  uint32_t ud_mtu_bytes = 4096;       // UD cannot carry more (paper Table 1)
  uint32_t grh_bytes = 40;            // UD global routing header at receiver
  uint32_t max_inline_bytes = 188;    // payload carried inside the WQE

  // --- Reliability ---
  Nanos rc_ack_latency_ns = 150;  // receiver NIC turnaround for an ack
  Nanos rnr_retry_delay_ns = 5000;  // RC send met empty recv queue
  // Requester retransmission (exercised only when a fault plan is attached;
  // a lossless fabric never times out). The timeout doubles per retry.
  Nanos rc_retransmit_timeout_ns = 16000;
  int rc_retry_count = 7;

  // --- Clock model (for the NTP-like global synchronizer) ---
  double clock_drift_ppm_max = 20.0;  // per-node drift drawn in +/- this
  Nanos clock_offset_max_ns = 500000;  // initial offset drawn in +/- this

  // --- Control plane (QP setup / teardown / MR registration) ---
  // All-zero defaults keep the model off: no connect, reconnect, or
  // teardown charges any sim-time and no per-node control-processor state
  // is ever allocated, so default (pre-connected) runs stay byte-identical
  // with the model compiled in. Enable with modeled_ctrl_params() or by
  // setting individual knobs. See docs/control_plane.md.
  struct CtrlParams {
    Nanos qp_create_ns = 0;   // ibv_create_qp: driver + NIC context alloc
    Nanos qp_modify_ns = 0;   // one ibv_modify_qp transition; a full RC
                              // bring-up is three (INIT -> RTR -> RTS)
    Nanos qp_destroy_ns = 0;  // ibv_destroy_qp / context teardown
    Nanos mr_register_base_ns = 0;    // ibv_reg_mr fixed cost (key alloc)
    Nanos mr_register_per_mb_ns = 0;  // page pinning per MiB registered
    Nanos handshake_proc_ns = 0;      // per-side CPU per handshake message
    int handshake_rounds = 0;  // out-of-band RTTs exchanging QPNs/keys
    // Bounded per-node control-processor queue: at most this many control
    // ops may be queued or executing at once; extra connect attempts are
    // rejected with a retry-after (ConnectionManager backpressure).
    // 0 = unbounded.
    int processor_slots = 0;

    bool enabled() const {
      return qp_create_ns != 0 || qp_modify_ns != 0 || qp_destroy_ns != 0 ||
             mr_register_base_ns != 0 || mr_register_per_mb_ns != 0 ||
             handshake_proc_ns != 0 || handshake_rounds != 0;
    }
    // Serial processor time for a full QP bring-up / teardown.
    Nanos qp_setup_ns() const { return qp_create_ns + 3 * qp_modify_ns; }
    Nanos qp_teardown_ns() const { return qp_destroy_ns; }
    Nanos mr_register_ns(uint64_t bytes) const {
      return mr_register_base_ns +
             static_cast<Nanos>((bytes * static_cast<uint64_t>(mr_register_per_mb_ns)) /
                                MiB(1));
    }
  };
  CtrlParams ctrl;

  uint64_t derived_llc_lines() const { return llc_bytes / kCacheLineSize; }
  uint64_t derived_ddio_lines() const {
    return static_cast<uint64_t>(static_cast<double>(derived_llc_lines()) * ddio_fraction);
  }
  Nanos wire_time(uint32_t payload_bytes) const {
    return (static_cast<int64_t>(payload_bytes + packet_header_bytes) * link_ps_per_byte) /
           1000;
  }
};

// Calibrated control-plane costs for the paper's CX-3 era hardware (Swift,
// PAPERS.md, measures setup in this range: QP creation and state transitions
// are tens of microseconds of driver/firmware work, MR registration is
// dominated by page pinning). Used by churn scenarios; figure benches never
// install these.
inline SimParams::CtrlParams modeled_ctrl_params() {
  SimParams::CtrlParams c;
  c.qp_create_ns = 14000;          // ibv_create_qp
  c.qp_modify_ns = 6000;           // per transition; bring-up is 3
  c.qp_destroy_ns = 9000;          // ibv_destroy_qp
  c.mr_register_base_ns = 17000;   // ibv_reg_mr fixed part
  c.mr_register_per_mb_ns = 90000; // page pinning, ~11 GB/s
  c.handshake_proc_ns = 2500;      // QPN/rkey exchange processing per side
  c.handshake_rounds = 2;          // exchange + ready-to-use confirmation
  c.processor_slots = 64;          // one firmware command queue
  return c;
}

}  // namespace scalerpc::simrdma

#endif  // SRC_SIMRDMA_PARAMS_H_
