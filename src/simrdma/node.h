// A simulated host: memory arena, LLC (with DDIO), local clock, NIC, and
// factories for verbs objects (MRs, CQs, QPs).
#ifndef SRC_SIMRDMA_NODE_H_
#define SRC_SIMRDMA_NODE_H_

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "src/sim/event_loop.h"
#include "src/simrdma/counters.h"
#include "src/simrdma/ctrl.h"
#include "src/simrdma/llc.h"
#include "src/simrdma/memory.h"
#include "src/simrdma/params.h"
#include "src/simrdma/verbs.h"

namespace scalerpc::simrdma {

class Cluster;
class Nic;

class Node {
 public:
  Node(Cluster* cluster, int id, std::string name, const SimParams& params);
  ~Node();

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  int id() const { return id_; }
  const std::string& name() const { return name_; }
  Cluster* cluster() { return cluster_; }
  sim::EventLoop& loop() const;

  HostMemory& memory() { return memory_; }
  LastLevelCache& llc() { return llc_; }
  Nic& nic() { return *nic_; }
  const SimParams& params() const { return params_; }

  // PCM-visible counters for this socket (LLC events + NIC state fetches).
  const PcmCounters& pcm() const { return llc_.pcm(); }
  // NIC-state refetch reads are PCIe reads too but bypass the LLC model;
  // they are accumulated here and added by pcm_total().
  uint64_t extra_pcie_reads() const { return extra_pcie_reads_; }
  void count_pcie_read() { extra_pcie_reads_++; }
  PcmCounters pcm_total() const {
    PcmCounters c = llc_.pcm();
    c.pcie_rd_cur += extra_pcie_reads_;
    return c;
  }

  // --- Memory management ---
  // Bump-allocates `len` bytes (cache-line aligned by default).
  uint64_t alloc(uint64_t len, uint64_t align = kCacheLineSize);
  MemoryRegion* register_mr(uint64_t addr, uint64_t len);
  MemoryRegion* find_mr_by_rkey(uint32_t rkey, uint64_t addr, uint64_t len);
  // Whole-arena MR, registered lazily. Data-path code uses this (the paper's
  // systems register huge pages once); explicit MRs remain for tests.
  MemoryRegion* arena_mr();

  // --- CPU-side memory access with LLC-modeled cost ---
  // Returns the cost; caller charges it with co_await loop.delay(cost).
  Nanos read_cost(uint64_t addr, uint32_t len) { return llc_.cpu_read(addr, len); }
  Nanos write_cost(uint64_t addr, uint32_t len) { return llc_.cpu_write(addr, len); }

  // --- Verbs factories ---
  CompletionQueue* create_cq();
  QueuePair* create_qp(QpType type, CompletionQueue* send_cq, CompletionQueue* recv_cq);
  // Recycles a QP: the slot is parked in the error state (QueuePair::
  // recycle) and its qpn is reused by a later create_qp, so the pool never
  // shrinks and QueuePair*/qpn lookups on in-flight packets stay valid.
  // Churn workloads cycle connections through here without leaking slots.
  void destroy_qp(QueuePair* qp);
  // qpns are dense (1, 2, ...), so lookup is a bounds check plus an index
  // into the pool — no hashing. This sits on every packet delivery.
  QueuePair* find_qp(uint32_t qpn) {
    return qpn >= 1 && qpn <= qps_.size() ? &qps_[qpn - 1] : nullptr;
  }
  size_t num_qps() const { return qps_.size(); }
  // Created-minus-destroyed; the leak assertion churn tests pin.
  size_t live_qps() const { return live_qps_; }
  size_t num_cqs() const { return cqs_.size(); }

  // --- Control plane (docs/control_plane.md) ---
  // Serial per-node control processor, constructed on first use. Callers
  // must gate on params().ctrl.enabled() — the default run never touches
  // (or allocates) it.
  CtrlProcessor& ctrl();
  bool has_ctrl() const { return ctrl_ != nullptr; }

  // --- Crash state (fault mode) ---
  // While down, the NIC drops every inbound packet and flushes every
  // outbound WQE. Host memory persists across the window (the paper's
  // systems target persistent memory).
  bool is_down() const { return down_; }
  void set_down(bool down) { down_ = down; }
  // Forces every QP on this node into the error state (crash semantics:
  // peer-visible connection loss). Iterates qpns in creation order so the
  // flush-completion order is deterministic.
  void fail_all_qps();

  // --- Local clock (offset + drift vs simulated global time) ---
  void set_clock(Nanos offset, double drift_ppm) {
    clock_offset_ = offset;
    clock_drift_ppm_ = drift_ppm;
  }
  Nanos local_time() const;
  Nanos clock_offset() const { return clock_offset_; }
  double clock_drift_ppm() const { return clock_drift_ppm_; }

 private:
  Cluster* cluster_;
  int id_;
  std::string name_;
  const SimParams& params_;
  HostMemory memory_;
  LastLevelCache llc_;
  std::unique_ptr<Nic> nic_;
  uint64_t bump_ = 0;
  uint64_t extra_pcie_reads_ = 0;
  uint32_t next_key_ = 1;
  MemoryRegion* arena_mr_ = nullptr;
  bool down_ = false;
  std::vector<std::unique_ptr<MemoryRegion>> mrs_;
  std::vector<std::unique_ptr<CompletionQueue>> cqs_;
  // QP pool: contiguous chunks in creation (= qpn) order, grown lazily as
  // clients connect. Deque chunks never move, so QueuePair* stays stable
  // while hot per-QP state packs densely instead of one heap object per QP
  // behind a hash map. destroy_qp parks a slot and pushes its qpn onto
  // free_qpns_; create_qp pops the freelist before growing the pool, so a
  // churn steady state neither grows nor allocates.
  std::deque<QueuePair> qps_;
  std::vector<uint32_t> free_qpns_;
  size_t live_qps_ = 0;
  std::unique_ptr<CtrlProcessor> ctrl_;
  Nanos clock_offset_ = 0;
  double clock_drift_ppm_ = 0.0;
};

}  // namespace scalerpc::simrdma

#endif  // SRC_SIMRDMA_NODE_H_
