#include "src/simrdma/nic.h"

#include <algorithm>
#include <new>
#include <utility>

#include "src/common/logging.h"
#include "src/fault/inject.h"
#include "src/metrics/flight.h"
#include "src/metrics/metrics.h"
#include "src/sim/pool.h"
#include "src/simrdma/cluster.h"
#include "src/simrdma/node.h"
#include "src/trace/trace.h"

namespace scalerpc::simrdma {

namespace {
constexpr int kRnrRetryLimit = 7;
constexpr uint64_t kWqeKeyBase = 1ULL << 32;
constexpr uint64_t kLineMask = ~(kCacheLineSize - 1);

// Caps a per-line DMA cost at the streaming line rate for bulk transfers
// (>1KB); small transfers keep the per-line small-message constants.
Nanos stream_cap(Nanos per_line_cost, uint32_t len, const SimParams& p) {
  if (len <= 1024) {
    return per_line_cost;
  }
  // Bulk transfers additionally overlap DMA with wire serialization
  // (cut-through): only a quarter of the stream time serializes on the
  // engine.
  const Nanos stream = (static_cast<int64_t>(len) * p.dma_stream_ps_per_byte) / 1000;
  return std::min(per_line_cost, len > 4096 ? stream / 4 : stream);
}

uint32_t lines_touched(uint64_t addr, uint32_t len) {
  if (len == 0) {
    return 0;
  }
  const uint64_t first = addr & kLineMask;
  const uint64_t last = (addr + len - 1) & kLineMask;
  return static_cast<uint32_t>((last - first) / kCacheLineSize) + 1;
}

// Per-QP labeled series (src/metrics): the QueuePair caches a pointer to
// its counter block in the active registry, so the steady-state per-packet
// hook is `if (auto* qc = qp_metrics(...)) qc->v[col] += delta` — one
// cached-member load and one field add; the (node, qpn) label resolves
// exactly once, on first touch. Hook sites sit at engine-shared code or at
// event-parity points of both engines, so per-QP sums are identical under
// SIMRDMA_NIC_ENGINE=coroutine and the state-machine default.
inline metrics::QpCounters* qp_metrics(int node, QueuePair* qp) {
  metrics::QpCounters* qc = qp->metrics_counters();
  if (qc != nullptr) {
    return qc;
  }
  metrics::Registry* m = metrics::registry();
  if (m == nullptr) {
    return nullptr;
  }
  qc = m->qp_counters(static_cast<uint32_t>(node), qp->qpn());
  qp->set_metrics_counters(qc);
  return qc;
}
}  // namespace

Nic::Nic(sim::EventLoop& loop, Node* node, const SimParams& params)
    : loop_(loop),
      node_(node),
      params_(params),
      qp_cache_(params.nic_qp_cache_entries),
      wqe_cache_(params.nic_wqe_cache_entries),
      send_units_(loop, params.nic_send_units),
      recv_units_(loop, params.nic_recv_units),
      tx_port_(loop, 1),
      engine_(nic_engine()) {}

fault::FaultInjector* Nic::faults() const { return node_->cluster()->faults(); }

Nanos Nic::charge_connection_state(QueuePair* qp, uint64_t wqe_key) {
  Nanos extra = 0;
  const uint64_t base_key = qp->qpn();
  // QP connection state entry. A miss refetches both the QP context and
  // its send-queue ICM page: two PCIe reads.
  trace::Tracer* t = trace::tracer(trace::kNic);
  metrics::QpCounters* qc = qp_metrics(node_->id(), qp);
  if (qp_cache_.access(base_key)) {
    counters_.qp_cache_hits++;
    if (qc) {
      qc->v[metrics::kQpCacheHits]++;
    }
    if (t) {
      t->instant(trace::kNic, "nic.qp_hit", loop_.now(), node_->id(), "qpn",
                 base_key);
    }
  } else {
    counters_.qp_cache_misses++;
    if (qc) {
      qc->v[metrics::kQpCacheMisses]++;
    }
    node_->count_pcie_read();
    node_->count_pcie_read();
    extra += 2 * params_.nic_cache_miss_ns;
    if (t) {
      t->instant(trace::kNic, "nic.qp_miss", loop_.now(), node_->id(), "qpn",
                 base_key);
    }
  }
  // The prefetched WQE: evicted before execution means a PCIe refetch.
  if (wqe_key != 0 && !wqe_cache_.consume(wqe_key)) {
    counters_.qp_cache_misses++;
    if (qc) {
      qc->v[metrics::kQpCacheMisses]++;
      qc->v[metrics::kQpWqeRefetches]++;
    }
    node_->count_pcie_read();
    extra += params_.nic_cache_miss_ns;
    if (t) {
      t->instant(trace::kNic, "nic.wqe_refetch", loop_.now(), node_->id(),
                 "qpn", base_key, "wqe", wqe_key);
    }
  }
  return extra;
}

void Nic::complete_send(QueuePair* qp, const SendWr& wr, WcStatus status,
                        uint64_t atomic_old) {
  Completion c;
  c.wr_id = wr.wr_id;
  c.status = status;
  c.opcode = wr.opcode;
  c.is_recv = false;
  c.byte_len = wr.length;
  c.qpn = qp->qpn();
  c.atomic_old = atomic_old;
  qp->send_cq()->push(c);
}

// ---------------------------------------------------------------------------
// Callback state-machine engine (default).
//
// Each state function is an EventLoop::RawFn (or reached inline when a
// semaphore permit / zero delay lets execution continue synchronously,
// exactly where the coroutine awaiter's await_ready fast path would not
// suspend). The contexts are BytePool-recycled, so the steady state stays
// allocation-free. Every loop_.call_in / semaphore park below corresponds
// one-to-one to a suspension point of the coroutine reference engine,
// keeping the two engines event-for-event identical.
// ---------------------------------------------------------------------------

// WQE lifetime: doorbell spawn -> preamble -> transmit leg (engine unit,
// pipeline delay, TX port) -> completion policy; for tracked RC requests
// the same context then becomes the retransmission watcher, re-entering the
// transmit leg on each resend.
struct Nic::SendSm {
  // Where control returns after the transmit leg finishes (on_wired).
  enum class From : uint8_t { kSendPath, kWatcher };

  Nic* nic = nullptr;
  QueuePair* qp = nullptr;
  SendWr wr;
  uint64_t wqe_key = 0;
  uint64_t psn = 0;
  From from = From::kSendPath;
  // QP life this WQE belongs to, captured at doorbell time: destroy_qp can
  // recycle (and even re-connect) the slot while we sit in the pipeline.
  uint32_t gen = 0;
  CompletionQueue* scq = nullptr;  // the posting life's send CQ

  // Transmit-leg scratch.
  sim::PooledBytes payload;
  Packet pkt;
  uint32_t wire_payload = 0;
  sim::FifoResource::Ticket ticket;

  // Watcher state.
  Nanos timeout = 0;
  int retry = 0;

  static SendSm* make(Nic* nic, QueuePair* qp, SendWr wr, uint64_t wqe_key) {
    auto* sm = new (sim::BytePool::alloc(sizeof(SendSm))) SendSm();
    sm->nic = nic;
    sm->qp = qp;
    sm->wr = wr;
    sm->wqe_key = wqe_key;
    return sm;
  }
  void free() {
    this->~SendSm();
    sim::BytePool::release(this, sizeof(SendSm));
  }

  // Doorbell event fired: send_path preamble.
  static void start(void* arg) {
    auto* sm = static_cast<SendSm*>(arg);
    Nic* n = sm->nic;
    n->counters_.engine_steps++;
    // Errored QP or dead host: the WQE flushes. Signaled WRs still complete
    // (with an error) so posted-vs-completed accounting never hangs.
    if (sm->qp->in_error() || n->node_->is_down()) {
      n->counters_.flushed_wrs++;
      if (sm->wr.signaled) {
        n->complete_send(sm->qp, sm->wr, WcStatus::kWrFlushErr);
      }
      sm->free();
      return;
    }
    n->counters_.send_wqes++;
    sm->gen = sm->qp->generation();
    sm->scq = sm->qp->send_cq();

    // With a fault plan attached, RC requests are tracked by PSN so lost
    // packets retransmit. The lossless fast path never assigns PSNs: zero
    // extra events, zero extra state.
    if (n->faults() != nullptr && sm->qp->type() == QpType::kRC) {
      sm->psn = sm->qp->alloc_psn();
      sm->qp->add_outstanding(sm->wr, sm->psn);
    }
    tx_begin(sm);
  }

  // The owning QP was recycled (Node::destroy_qp) while this WQE sat in
  // the pipeline: flush it before it can address a packet with the cleared
  // — or, if the slot was already reused, some other connection's — peer
  // binding. An untracked signaled WR still completes (with an error, to
  // the CQ of the life that posted it) so posted-vs-completed accounting
  // never hangs; tracked ones were already flushed by force_error. The
  // caller must release any held send unit first.
  static bool flushed_by_recycle(SendSm* sm) {
    if (sm->qp->generation() == sm->gen) {
      return false;
    }
    Nic* n = sm->nic;
    n->counters_.flushed_wrs++;
    if (sm->wr.signaled && sm->psn == 0) {
      Completion c;
      c.wr_id = sm->wr.wr_id;
      c.status = WcStatus::kWrFlushErr;
      c.opcode = sm->wr.opcode;
      c.is_recv = false;
      c.byte_len = sm->wr.length;
      c.qpn = sm->qp->qpn();
      sm->scq->push(c);
    }
    sm->free();
    return true;
  }

  // Transmit leg entry (first transmission and every retransmission).
  static void tx_begin(SendSm* sm) {
    if (sm->nic->send_units_.acquire(&SendSm::on_unit, sm)) {
      on_unit(sm);
    }
  }

  // A send engine unit is ours: charge pipeline costs, gather the payload.
  static void on_unit(void* arg) {
    auto* sm = static_cast<SendSm*>(arg);
    Nic* n = sm->nic;
    n->counters_.engine_steps++;
    if (sm->qp->generation() != sm->gen) {
      n->send_units_.release();
      flushed_by_recycle(sm);
      return;
    }
    Nanos cost = n->params_.nic_send_base_ns;
    cost += n->charge_connection_state(sm->qp, sm->wqe_key);

    const bool carries_payload =
        (sm->wr.opcode == Opcode::kWrite || sm->wr.opcode == Opcode::kWriteImm ||
         sm->wr.opcode == Opcode::kSend) &&
        sm->wr.length > 0;
    sm->wire_payload = carries_payload ? sm->wr.length : 0;

    if (carries_payload) {
      sm->payload.resize(sm->wr.length);
      n->node_->memory().load(sm->wr.local_addr, sm->payload);
      if (!sm->wr.inline_data) {
        // Gather via DMA read: PCIe reads, possibly served from the LLC.
        // Pipelined, so the serialization charge per line is small; bulk
        // payloads stream at PCIe line rate.
        cost += stream_cap(
            n->node_->llc().dma_read(sm->wr.local_addr, sm->wr.length) / 4 +
                static_cast<Nanos>(lines_touched(sm->wr.local_addr, sm->wr.length)) *
                    n->params_.nic_payload_fetch_ns,
            sm->wr.length, n->params_);
      }
    }

    if (fault::FaultInjector* inj = n->faults()) {
      cost = inj->scale_cost(n->loop_.now(), n->node_->id(), cost);
    }
    if (cost <= 0) {
      on_processed(sm);
    } else {
      n->loop_.call_in(cost, &SendSm::on_processed, sm);
    }
  }

  // Pipeline processing done: release the unit, build the packet, serialize
  // it onto the TX port.
  static void on_processed(void* arg) {
    auto* sm = static_cast<SendSm*>(arg);
    Nic* n = sm->nic;
    n->counters_.engine_steps++;
    n->send_units_.release();
    if (flushed_by_recycle(sm)) {
      return;  // recycled during the pipeline delay
    }

    Packet pkt;
    pkt.kind = Packet::Kind::kRequest;
    pkt.transport = sm->qp->type();
    pkt.opcode = sm->wr.opcode;
    pkt.src_node = n->node_->id();
    pkt.src_qpn = sm->qp->qpn();
    if (sm->qp->type() == QpType::kUD) {
      pkt.dst_node = sm->wr.dest_node;
      pkt.dst_qpn = sm->wr.dest_qpn;
    } else {
      pkt.dst_node = sm->qp->peer_node();
      pkt.dst_qpn = sm->qp->peer_qpn();
    }
    pkt.wr_id = sm->wr.wr_id;
    pkt.remote_addr = sm->wr.remote_addr;
    pkt.rkey = sm->wr.rkey;
    pkt.length = sm->wr.length;
    pkt.imm = sm->wr.imm;
    pkt.has_imm = (sm->wr.opcode == Opcode::kWriteImm);
    pkt.signaled = sm->wr.signaled;
    pkt.resp_local_addr = sm->wr.local_addr;
    pkt.payload = std::move(sm->payload);
    pkt.atomic_compare = sm->wr.compare;
    pkt.atomic_swap_or_add = sm->wr.swap_or_add;
    pkt.psn = sm->psn;
    sm->pkt = std::move(pkt);

    sm->ticket.service = n->params_.wire_time(sm->wire_payload);
    sm->ticket.done = &SendSm::on_wired;
    sm->ticket.arg = sm;
    n->tx_port_.use(&sm->ticket);
  }

  // The packet hit the wire: route it, then continue whichever pipeline the
  // transmit leg was serving.
  static void on_wired(void* arg) {
    auto* sm = static_cast<SendSm*>(arg);
    Nic* n = sm->nic;
    n->counters_.engine_steps++;
    n->counters_.bytes_tx += sm->wire_payload + n->params_.packet_header_bytes;
    if (metrics::QpCounters* qc = qp_metrics(n->node_->id(), sm->qp)) {
      qc->v[metrics::kQpBytesTx] +=
          sm->wire_payload + n->params_.packet_header_bytes;
    }
    n->node_->cluster()->route(std::move(sm->pkt));

    if (sm->from == From::kWatcher) {
      if (sm->qp->find_outstanding(sm->psn) == nullptr || sm->qp->in_error()) {
        sm->free();
        return;
      }
      watch_advance(sm);
      return;
    }

    if (sm->psn != 0 && sm->qp->find_outstanding(sm->psn) != nullptr) {
      // Arm the retransmission watcher, reusing this context. The spawn
      // event mirrors the coroutine engine's sim::spawn of the watcher.
      sm->from = From::kWatcher;
      n->loop_.call_in(0, &SendSm::watch_start, sm);
      return;
    }

    // Local completion policy:
    //  * RC write/send: completion arrives with the ack.
    //  * RC read/atomics: completion arrives with the response data.
    //  * UC/UD: "transmitted" is all the fabric guarantees; complete now.
    if (sm->qp->type() != QpType::kRC && sm->wr.signaled) {
      n->complete_send(sm->qp, sm->wr, WcStatus::kSuccess);
    }
    sm->free();
  }

  // Watcher armed: first back-off timer.
  static void watch_start(void* arg) {
    auto* sm = static_cast<SendSm*>(arg);
    sm->nic->counters_.engine_steps++;
    sm->timeout = sm->nic->params_.rc_retransmit_timeout_ns;
    sm->retry = 0;
    sm->nic->loop_.call_in(sm->timeout, &SendSm::watch_fire, sm);
  }

  // Back-off timer fired: resend or give up.
  static void watch_fire(void* arg) {
    auto* sm = static_cast<SendSm*>(arg);
    Nic* n = sm->nic;
    n->counters_.engine_steps++;
    QueuePair::Outstanding* o = sm->qp->find_outstanding(sm->psn);
    if (o == nullptr || sm->qp->in_error()) {
      sm->free();  // acked, responded, or flushed while we slept
      return;
    }
    if (sm->retry == n->params_.rc_retry_count) {
      exhaust(sm);  // retries exhausted
      return;
    }
    o->retries = sm->retry + 1;
    n->counters_.rc_retransmits++;
    if (metrics::QpCounters* qc = qp_metrics(n->node_->id(), sm->qp)) {
      qc->v[metrics::kQpRetransmits]++;
    }
    if (metrics::FlightRecorder* f = metrics::flight()) {
      f->note("nic.rc_retransmit", n->loop_.now(), n->node_->id(),
              sm->qp->qpn(), static_cast<int64_t>(sm->psn));
    }
    if (trace::Tracer* t = trace::tracer(trace::kFault)) {
      t->instant(trace::kFault, "fault.rc_retransmit", n->loop_.now(),
                 n->node_->id(), "qpn", sm->qp->qpn(), "psn", sm->psn);
    }
    // While our own host is down nothing reaches the wire; burn the attempt
    // and keep backing off. Note the payload is re-gathered from host
    // memory at resend time — like a real NIC, a retransmit of a WR whose
    // source buffer was reused sends the new bytes.
    if (!n->node_->is_down()) {
      sm->wr = o->wr;  // copy: the entry may move while we wait for the port
      sm->wqe_key = 0;
      tx_begin(sm);  // re-enters on_wired with from == kWatcher
      return;
    }
    watch_advance(sm);
  }

  // Loop tail: double the back-off and rearm.
  static void watch_advance(SendSm* sm) {
    sm->timeout *= 2;
    sm->retry++;
    sm->nic->loop_.call_in(sm->timeout, &SendSm::watch_fire, sm);
  }

  // Transport gives up: complete the WR with RETRY_EXCEEDED and error the
  // QP (remaining WRs flush), as a real RC QP does.
  static void exhaust(SendSm* sm) {
    Nic* n = sm->nic;
    const QueuePair::Outstanding o = *sm->qp->find_outstanding(sm->psn);
    sm->qp->erase_outstanding(sm->psn);
    n->counters_.rc_retry_exhausted++;
    if (metrics::FlightRecorder* f = metrics::flight()) {
      f->note("nic.rc_retry_exhausted", n->loop_.now(), n->node_->id(),
              sm->qp->qpn(), static_cast<int64_t>(sm->psn));
      f->trigger("nic.rc_retry_exhausted", n->loop_.now());
    }
    if (trace::Tracer* t = trace::tracer(trace::kFault)) {
      t->instant(trace::kFault, "fault.rc_retry_exhausted", n->loop_.now(),
                 n->node_->id(), "qpn", sm->qp->qpn(), "psn", sm->psn);
    }
    if (o.wr.signaled) {
      n->complete_send(sm->qp, o.wr, WcStatus::kRetryExceeded);
    }
    sm->qp->force_error();
    sm->free();
  }
};

// One inbound packet: ack/response requester bookkeeping, dedup replay,
// RNR wait, request execution, and the RC reply legs.
struct Nic::RecvSm {
  Nic* nic = nullptr;
  Packet pkt;
  QueuePair* qp = nullptr;
  Nanos cost = 0;
  WcStatus status = WcStatus::kSuccess;
  uint64_t atomic_old = 0;
  sim::PooledBytes read_payload;
  uint64_t store_addr = 0;
  bool do_store = false;
  bool push_recv_cqe = false;
  bool track_dedup = false;
  RecvWr rwr{};
  uint32_t recv_byte_len = 0;
  int rnr_retries = 0;
  // Dedup-ring slot of a duplicate request; read again after the ack-latency
  // delay, exactly as the coroutine engine dereferences it post-suspension.
  QueuePair::SeenPsn* dup = nullptr;
  // Outgoing ack/NAK/response and its wire payload size for the port leg.
  Packet out;
  uint32_t out_bytes = 0;
  sim::FifoResource::Ticket ticket;

  static RecvSm* make(Nic* nic, Packet pkt) {
    auto* sm = new (sim::BytePool::alloc(sizeof(RecvSm))) RecvSm();
    sm->nic = nic;
    sm->pkt = std::move(pkt);
    return sm;
  }
  void free() {
    this->~RecvSm();
    sim::BytePool::release(this, sizeof(RecvSm));
  }

  // Arrival event fired: classify the packet and enter the right leg.
  static void start(void* arg) {
    auto* sm = static_cast<RecvSm*>(arg);
    Nic* n = sm->nic;
    n->counters_.engine_steps++;
    n->counters_.bytes_rx +=
        sm->pkt.payload.size() + n->params_.packet_header_bytes;

    // --- Control traffic: acks and naks complete the original WQE. ---
    // Processing an ack updates the QP's requester state, so it touches the
    // NIC cache: with many interleaved RC peers this is what keeps evicting
    // entries between a worker's response bursts (the outbound collapse).
    if (sm->pkt.kind == Packet::Kind::kAck ||
        sm->pkt.kind == Packet::Kind::kNak) {
      sm->qp = n->node_->find_qp(sm->pkt.dst_qpn);
      SCALERPC_CHECK(sm->qp != nullptr);
      metrics::QpCounters* qc = qp_metrics(n->node_->id(), sm->qp);
      if (qc) {
        qc->v[metrics::kQpBytesRx] +=
            sm->pkt.payload.size() + n->params_.packet_header_bytes;
      }
      Nanos ack_cost = 20;
      if (n->qp_cache_.access(sm->qp->qpn())) {
        n->counters_.qp_cache_hits++;
        if (qc) {
          qc->v[metrics::kQpCacheHits]++;
        }
      } else {
        n->counters_.qp_cache_misses++;
        if (qc) {
          qc->v[metrics::kQpCacheMisses]++;
        }
        n->node_->count_pcie_read();
        ack_cost += n->params_.nic_cache_miss_ns;
      }
      sm->cost = ack_cost;
      if (n->recv_units_.acquire(&RecvSm::ack_on_unit, sm)) {
        ack_on_unit(sm);
      }
      return;
    }

    // --- Read / atomic responses scatter into requester memory. ---
    if (sm->pkt.kind == Packet::Kind::kReadResponse ||
        sm->pkt.kind == Packet::Kind::kAtomicResponse) {
      sm->qp = n->node_->find_qp(sm->pkt.dst_qpn);
      SCALERPC_CHECK(sm->qp != nullptr);
      if (metrics::QpCounters* qc = qp_metrics(n->node_->id(), sm->qp)) {
        qc->v[metrics::kQpBytesRx] +=
            sm->pkt.payload.size() + n->params_.packet_header_bytes;
      }
      if (n->recv_units_.acquire(&RecvSm::resp_on_unit, sm)) {
        resp_on_unit(sm);
      }
      return;
    }

    // --- Requests. ---
    sm->qp = n->node_->find_qp(sm->pkt.dst_qpn);
    SCALERPC_CHECK_MSG(sm->qp != nullptr, "packet to unknown QP");
    if (metrics::QpCounters* qc = qp_metrics(n->node_->id(), sm->qp)) {
      qc->v[metrics::kQpBytesRx] +=
          sm->pkt.payload.size() + n->params_.packet_header_bytes;
    }

    // Responder context occupies NIC cache space (touch-only: misses are
    // overlapped and cost nothing, keeping pure-inbound traffic flat, but
    // the occupancy evicts requester state under bidirectional load).
    if (sm->pkt.transport != QpType::kUD) {
      n->qp_cache_.touch_insert(sm->qp->qpn());
    }

    // Fault mode (tracked PSNs only): an errored responder QP silently drops
    // requests — the requester discovers via its retransmission timeout —
    // and a PSN already seen is a retransmission of an executed request,
    // which is re-acknowledged without re-executing (transport-level
    // exactly-once). Reads are idempotent and side-effect free, so they
    // re-execute instead.
    sm->track_dedup = sm->pkt.psn != 0 && sm->pkt.transport == QpType::kRC &&
                      sm->pkt.opcode != Opcode::kRead;
    if (sm->pkt.psn != 0 && sm->pkt.transport == QpType::kRC &&
        sm->qp->in_error()) {
      sm->free();
      return;
    }
    if (sm->track_dedup) {
      if (QueuePair::SeenPsn* dup = sm->qp->responder_find(sm->pkt.psn)) {
        n->counters_.rc_dup_requests++;
        if (trace::Tracer* t = trace::tracer(trace::kFault)) {
          t->instant(trace::kFault, "fault.dup_request", n->loop_.now(),
                     n->node_->id(), "qpn", sm->qp->qpn(), "psn", sm->pkt.psn);
        }
        if (!dup->done) {
          sm->free();  // the original is still executing; drop the copy
          return;
        }
        // Replay the acknowledgement from the dedup ring.
        sm->dup = dup;
        const Nanos d = n->params_.rc_ack_latency_ns;
        if (d <= 0) {
          dup_acked(sm);
        } else {
          n->loop_.call_in(d, &RecvSm::dup_acked, sm);
        }
        return;
      }
      sm->qp->responder_insert(sm->pkt.psn);
    }

    // RC sends / write_imm need a receive descriptor; honor RNR retry.
    const bool consumes_recv = sm->pkt.opcode == Opcode::kSend ||
                               sm->pkt.opcode == Opcode::kWriteImm;
    if (consumes_recv && !sm->qp->has_recv()) {
      if (sm->pkt.transport == QpType::kUD) {
        n->counters_.ud_drops++;
        sm->free();  // unreliable: silently dropped
        return;
      }
      n->counters_.rnr_events++;
      sm->rnr_retries = 0;
      rnr_check(sm);
      return;
    }
    exec_begin(sm);
  }

  // -- Ack/NAK leg --

  static void ack_on_unit(void* arg) {
    auto* sm = static_cast<RecvSm*>(arg);
    Nic* n = sm->nic;
    n->counters_.engine_steps++;
    if (sm->cost <= 0) {
      ack_done(sm);
    } else {
      n->loop_.call_in(sm->cost, &RecvSm::ack_done, sm);
    }
  }

  static void ack_done(void* arg) {
    auto* sm = static_cast<RecvSm*>(arg);
    Nic* n = sm->nic;
    n->counters_.engine_steps++;
    n->recv_units_.release();
    if (sm->pkt.psn != 0 && !sm->qp->erase_outstanding(sm->pkt.psn)) {
      // Duplicate ack (the original and a retransmit both got through), or
      // the WR already flushed/errored. Either way it completed once.
      sm->free();
      return;
    }
    if (sm->pkt.signaled) {
      Completion c;
      c.wr_id = sm->pkt.wr_id;
      c.status = sm->pkt.status;
      c.opcode = sm->pkt.opcode;
      c.byte_len = sm->pkt.length;
      c.qpn = sm->qp->qpn();
      sm->qp->send_cq()->push(c);
    }
    sm->free();
  }

  // -- Read / atomic response leg --

  static void resp_on_unit(void* arg) {
    auto* sm = static_cast<RecvSm*>(arg);
    Nic* n = sm->nic;
    n->counters_.engine_steps++;
    n->counters_.inbound_packets++;
    Nanos cost = n->params_.nic_recv_base_ns;
    // Read/atomic responses update requester state like acks do.
    metrics::QpCounters* qc = qp_metrics(n->node_->id(), sm->qp);
    if (n->qp_cache_.access(sm->qp->qpn())) {
      n->counters_.qp_cache_hits++;
      if (qc) {
        qc->v[metrics::kQpCacheHits]++;
      }
    } else {
      n->counters_.qp_cache_misses++;
      if (qc) {
        qc->v[metrics::kQpCacheMisses]++;
      }
      n->node_->count_pcie_read();
      cost += n->params_.nic_cache_miss_ns;
    }
    if (sm->pkt.status == WcStatus::kSuccess && !sm->pkt.payload.empty()) {
      cost += stream_cap(
          n->node_->llc().dma_write(sm->pkt.resp_local_addr,
                                    static_cast<uint32_t>(sm->pkt.payload.size())),
          static_cast<uint32_t>(sm->pkt.payload.size()), n->params_);
    }
    if (cost <= 0) {
      resp_done(sm);
    } else {
      n->loop_.call_in(cost, &RecvSm::resp_done, sm);
    }
  }

  static void resp_done(void* arg) {
    auto* sm = static_cast<RecvSm*>(arg);
    Nic* n = sm->nic;
    n->counters_.engine_steps++;
    if (sm->pkt.psn != 0 && sm->qp->find_outstanding(sm->pkt.psn) == nullptr) {
      n->recv_units_.release();
      sm->free();  // duplicate response; the data already landed once
      return;
    }
    if (sm->pkt.status == WcStatus::kSuccess && !sm->pkt.payload.empty()) {
      n->node_->memory().dma_store(sm->pkt.resp_local_addr, sm->pkt.payload);
    }
    n->recv_units_.release();
    if (sm->pkt.psn != 0) {
      sm->qp->erase_outstanding(sm->pkt.psn);
    }
    if (sm->pkt.signaled) {
      Completion c;
      c.wr_id = sm->pkt.wr_id;
      c.status = sm->pkt.status;
      c.opcode = sm->pkt.opcode;
      c.byte_len = static_cast<uint32_t>(sm->pkt.payload.size());
      c.qpn = sm->qp->qpn();
      c.atomic_old = sm->pkt.atomic_old;
      sm->qp->send_cq()->push(c);
    }
    sm->free();
  }

  // -- Duplicate-request replay leg --

  static void dup_acked(void* arg) {
    auto* sm = static_cast<RecvSm*>(arg);
    Nic* n = sm->nic;
    n->counters_.engine_steps++;
    if (sm->pkt.opcode == Opcode::kCompSwap ||
        sm->pkt.opcode == Opcode::kFetchAdd) {
      Packet resp;
      resp.kind = Packet::Kind::kAtomicResponse;
      resp.opcode = sm->pkt.opcode;
      resp.status = sm->dup->status;
      resp.src_node = n->node_->id();
      resp.src_qpn = sm->pkt.dst_qpn;
      resp.dst_node = sm->pkt.src_node;
      resp.dst_qpn = sm->pkt.src_qpn;
      resp.wr_id = sm->pkt.wr_id;
      resp.signaled = sm->pkt.signaled;
      resp.atomic_old = sm->dup->atomic_old;
      resp.psn = sm->pkt.psn;
      sm->out = std::move(resp);
      sm->ticket.service = n->params_.wire_time(0);
      sm->ticket.done = &RecvSm::dup_resp_wired;
      sm->ticket.arg = sm;
      n->tx_port_.use(&sm->ticket);
      return;
    }
    Packet ack;
    ack.kind = sm->dup->status == WcStatus::kSuccess ? Packet::Kind::kAck
                                                     : Packet::Kind::kNak;
    ack.opcode = sm->pkt.opcode;
    ack.status = sm->dup->status;
    ack.src_node = n->node_->id();
    ack.src_qpn = sm->pkt.dst_qpn;
    ack.dst_node = sm->pkt.src_node;
    ack.dst_qpn = sm->pkt.src_qpn;
    ack.wr_id = sm->pkt.wr_id;
    ack.signaled = sm->pkt.signaled;
    ack.length = sm->pkt.length;
    ack.psn = sm->pkt.psn;
    n->counters_.acks_sent++;
    n->node_->cluster()->route(std::move(ack));
    sm->free();
  }

  static void dup_resp_wired(void* arg) {
    auto* sm = static_cast<RecvSm*>(arg);
    Nic* n = sm->nic;
    n->counters_.engine_steps++;
    n->counters_.bytes_tx += n->params_.packet_header_bytes;
    if (metrics::QpCounters* qc = qp_metrics(n->node_->id(), sm->qp)) {
      qc->v[metrics::kQpBytesTx] += n->params_.packet_header_bytes;
    }
    n->node_->cluster()->route(std::move(sm->out));
    sm->free();
  }

  // -- RNR wait loop --

  static void rnr_check(RecvSm* sm) {
    if (!sm->qp->has_recv() && sm->rnr_retries < kRnrRetryLimit) {
      sm->nic->loop_.call_in(sm->nic->params_.rnr_retry_delay_ns,
                             &RecvSm::rnr_fire, sm);
      return;
    }
    after_rnr(sm);
  }

  static void rnr_fire(void* arg) {
    auto* sm = static_cast<RecvSm*>(arg);
    sm->nic->counters_.engine_steps++;
    sm->rnr_retries++;
    rnr_check(sm);
  }

  static void after_rnr(RecvSm* sm) {
    Nic* n = sm->nic;
    if (!sm->qp->has_recv()) {
      Packet nak;
      nak.kind = Packet::Kind::kNak;
      nak.opcode = sm->pkt.opcode;
      nak.status = WcStatus::kRetryExceeded;
      nak.src_node = n->node_->id();
      nak.src_qpn = sm->pkt.dst_qpn;
      nak.dst_node = sm->pkt.src_node;
      nak.dst_qpn = sm->pkt.src_qpn;
      nak.wr_id = sm->pkt.wr_id;
      nak.signaled = sm->pkt.signaled;
      nak.psn = sm->pkt.psn;
      n->node_->cluster()->route(std::move(nak));
      sm->free();
      return;
    }
    exec_begin(sm);
  }

  // -- Request execution --

  static void exec_begin(RecvSm* sm) {
    if (sm->nic->recv_units_.acquire(&RecvSm::exec_on_unit, sm)) {
      exec_on_unit(sm);
    }
  }

  static void exec_on_unit(void* arg) {
    auto* sm = static_cast<RecvSm*>(arg);
    Nic* n = sm->nic;
    n->counters_.engine_steps++;
    n->counters_.inbound_packets++;
    Nanos cost = n->params_.nic_recv_base_ns;
    sm->status = WcStatus::kSuccess;
    sm->atomic_old = 0;

    switch (sm->pkt.opcode) {
      case Opcode::kWrite:
      case Opcode::kWriteImm: {
        MemoryRegion* mr = n->node_->find_mr_by_rkey(
            sm->pkt.rkey, sm->pkt.remote_addr, sm->pkt.length);
        if (mr == nullptr) {
          sm->status = WcStatus::kRemoteAccessError;
          break;
        }
        if (sm->pkt.length > 0) {
          cost += stream_cap(
              n->node_->llc().dma_write(sm->pkt.remote_addr, sm->pkt.length),
              sm->pkt.length, n->params_);
          sm->store_addr = sm->pkt.remote_addr;
          sm->do_store = true;
        }
        if (sm->pkt.opcode == Opcode::kWriteImm) {
          // Consumes a descriptor and raises a recv completion carrying imm.
          SCALERPC_CHECK(sm->qp->has_recv());
          sm->rwr = sm->qp->pop_recv();
          cost += n->params_.nic_recv_wqe_fetch_ns;
          n->node_->count_pcie_read();
          sm->push_recv_cqe = true;
          sm->recv_byte_len = sm->pkt.length;
        }
        break;
      }
      case Opcode::kSend: {
        SCALERPC_CHECK(sm->qp->has_recv());
        sm->rwr = sm->qp->pop_recv();
        cost += n->params_.nic_recv_wqe_fetch_ns;
        n->node_->count_pcie_read();
        const uint32_t grh =
            sm->pkt.transport == QpType::kUD ? n->params_.grh_bytes : 0;
        if (sm->pkt.length + grh > sm->rwr.length) {
          sm->status = WcStatus::kRemoteAccessError;
          sm->push_recv_cqe = true;
          break;
        }
        if (sm->pkt.length > 0) {
          sm->store_addr = sm->rwr.addr + grh;
          cost += stream_cap(
              n->node_->llc().dma_write(sm->store_addr, sm->pkt.length),
              sm->pkt.length, n->params_);
          sm->do_store = true;
        }
        sm->push_recv_cqe = true;
        sm->recv_byte_len = sm->pkt.length + grh;
        break;
      }
      case Opcode::kRead: {
        MemoryRegion* mr = n->node_->find_mr_by_rkey(
            sm->pkt.rkey, sm->pkt.remote_addr, sm->pkt.length);
        if (mr == nullptr) {
          sm->status = WcStatus::kRemoteAccessError;
          break;
        }
        cost += stream_cap(
            n->node_->llc().dma_read(sm->pkt.remote_addr, sm->pkt.length),
            sm->pkt.length, n->params_);
        sm->read_payload.resize(sm->pkt.length);
        n->node_->memory().load(sm->pkt.remote_addr, sm->read_payload);
        break;
      }
      case Opcode::kCompSwap:
      case Opcode::kFetchAdd: {
        MemoryRegion* mr =
            n->node_->find_mr_by_rkey(sm->pkt.rkey, sm->pkt.remote_addr, 8);
        if (mr == nullptr) {
          sm->status = WcStatus::kRemoteAccessError;
          break;
        }
        cost += n->params_.nic_atomic_extra_ns;
        cost += n->node_->llc().dma_read(sm->pkt.remote_addr, 8);
        sm->atomic_old = n->node_->memory().load_pod<uint64_t>(sm->pkt.remote_addr);
        uint64_t new_value = sm->atomic_old;
        if (sm->pkt.opcode == Opcode::kCompSwap) {
          if (sm->atomic_old == sm->pkt.atomic_compare) {
            new_value = sm->pkt.atomic_swap_or_add;
          }
        } else {
          new_value = sm->atomic_old + sm->pkt.atomic_swap_or_add;
        }
        cost += n->node_->llc().dma_write(sm->pkt.remote_addr, 8);
        n->node_->memory().store_pod(sm->pkt.remote_addr, new_value);
        break;
      }
    }

    if (fault::FaultInjector* inj = n->faults()) {
      cost = inj->scale_cost(n->loop_.now(), n->node_->id(), cost);
    }
    if (cost <= 0) {
      exec_done(sm);
    } else {
      n->loop_.call_in(cost, &RecvSm::exec_done, sm);
    }
  }

  static void exec_done(void* arg) {
    auto* sm = static_cast<RecvSm*>(arg);
    Nic* n = sm->nic;
    n->counters_.engine_steps++;
    if (sm->do_store && sm->status == WcStatus::kSuccess) {
      n->node_->memory().dma_store(sm->store_addr, sm->pkt.payload);
    }
    if (sm->track_dedup) {
      // Mark the PSN executed so a late retransmission replays this outcome
      // instead of re-executing (re-find: the ring slot may have rotated).
      if (QueuePair::SeenPsn* s = sm->qp->responder_find(sm->pkt.psn)) {
        s->status = sm->status;
        s->atomic_old = sm->atomic_old;
        s->done = true;
      }
    }
    if (sm->push_recv_cqe) {
      Completion c;
      c.wr_id = sm->rwr.wr_id;
      c.status = sm->status;
      c.opcode = sm->pkt.opcode;
      c.is_recv = true;
      c.byte_len = sm->recv_byte_len;
      c.has_imm = sm->pkt.has_imm;
      c.imm = sm->pkt.imm;
      c.src_node = sm->pkt.src_node;
      c.src_qpn = sm->pkt.src_qpn;
      c.qpn = sm->qp->qpn();
      sm->qp->recv_cq()->push(c);
    }
    n->recv_units_.release();

    // Reliable transports acknowledge; reads/atomics respond with data.
    if (sm->pkt.transport != QpType::kRC) {
      sm->free();
      return;
    }
    if (sm->pkt.opcode == Opcode::kRead || sm->pkt.opcode == Opcode::kCompSwap ||
        sm->pkt.opcode == Opcode::kFetchAdd) {
      Packet resp;
      resp.kind = sm->pkt.opcode == Opcode::kRead
                      ? Packet::Kind::kReadResponse
                      : Packet::Kind::kAtomicResponse;
      resp.opcode = sm->pkt.opcode;
      resp.status = sm->status;
      resp.src_node = n->node_->id();
      resp.src_qpn = sm->pkt.dst_qpn;
      resp.dst_node = sm->pkt.src_node;
      resp.dst_qpn = sm->pkt.src_qpn;
      resp.wr_id = sm->pkt.wr_id;
      resp.signaled = sm->pkt.signaled;
      resp.resp_local_addr = sm->pkt.resp_local_addr;
      resp.payload = std::move(sm->read_payload);
      resp.atomic_old = sm->atomic_old;
      resp.psn = sm->pkt.psn;
      sm->out_bytes = static_cast<uint32_t>(resp.payload.size());
      sm->out = std::move(resp);
      const Nanos d = n->params_.rc_ack_latency_ns;
      if (d <= 0) {
        reply_delayed(sm);
      } else {
        n->loop_.call_in(d, &RecvSm::reply_delayed, sm);
      }
      return;
    }
    Packet ack;
    ack.kind = sm->status == WcStatus::kSuccess ? Packet::Kind::kAck
                                                : Packet::Kind::kNak;
    ack.opcode = sm->pkt.opcode;
    ack.status = sm->status;
    ack.src_node = n->node_->id();
    ack.src_qpn = sm->pkt.dst_qpn;
    ack.dst_node = sm->pkt.src_node;
    ack.dst_qpn = sm->pkt.src_qpn;
    ack.wr_id = sm->pkt.wr_id;
    ack.signaled = sm->pkt.signaled;
    ack.length = sm->pkt.length;
    ack.psn = sm->pkt.psn;
    n->counters_.acks_sent++;
    sm->out = std::move(ack);
    const Nanos d = n->params_.rc_ack_latency_ns;
    if (d <= 0) {
      ack_delayed(sm);
    } else {
      n->loop_.call_in(d, &RecvSm::ack_delayed, sm);
    }
  }

  // -- RC reply legs --

  static void reply_delayed(void* arg) {
    auto* sm = static_cast<RecvSm*>(arg);
    sm->nic->counters_.engine_steps++;
    sm->ticket.service = sm->nic->params_.wire_time(sm->out_bytes);
    sm->ticket.done = &RecvSm::reply_wired;
    sm->ticket.arg = sm;
    sm->nic->tx_port_.use(&sm->ticket);
  }

  static void reply_wired(void* arg) {
    auto* sm = static_cast<RecvSm*>(arg);
    Nic* n = sm->nic;
    n->counters_.engine_steps++;
    n->counters_.bytes_tx += sm->out_bytes + n->params_.packet_header_bytes;
    if (metrics::QpCounters* qc = qp_metrics(n->node_->id(), sm->qp)) {
      qc->v[metrics::kQpBytesTx] +=
          sm->out_bytes + n->params_.packet_header_bytes;
    }
    n->node_->cluster()->route(std::move(sm->out));
    sm->free();
  }

  static void ack_delayed(void* arg) {
    auto* sm = static_cast<RecvSm*>(arg);
    Nic* n = sm->nic;
    n->counters_.engine_steps++;
    n->node_->cluster()->route(std::move(sm->out));
    sm->free();
  }
};

// ---------------------------------------------------------------------------
// Entry points (shared by both engines up to the dispatch).
// ---------------------------------------------------------------------------

void Nic::submit_send(QueuePair* qp, SendWr wr) {
  // The doorbell makes the NIC prefetch the WQE into its cache; whether it
  // is still there when an engine executes it depends on how much other
  // state (QP contexts, inbound touches, later WQEs) churned the cache in
  // between. Inline WQEs ride in the doorbell itself (BlueFlame) and skip
  // the cache entirely.
  uint64_t wqe_key = 0;
  if (!wr.inline_data) {
    wqe_key = kWqeKeyBase + next_wqe_id_++;
    wqe_cache_.touch_insert(wqe_key);
  }
  if (trace::Tracer* t = trace::tracer(trace::kNic)) {
    t->instant(trace::kNic,
               wr.inline_data ? "nic.doorbell_inline" : "nic.doorbell",
               loop_.now(), node_->id(), "qpn", qp->qpn(), "wqe", wqe_key);
  }
  if (engine_ == NicEngine::kCoroutine) {
    sim::spawn(loop_, send_path(qp, std::move(wr), wqe_key));
    return;
  }
  SendSm* sm = SendSm::make(this, qp, std::move(wr), wqe_key);
  loop_.call_in(0, &SendSm::start, sm);
}

void Nic::deliver(Packet pkt) {
  if (fault::FaultInjector* inj = faults()) {
    if (node_->is_down()) {
      // Dead host: the wire ends here. Peers discover via their own
      // retransmission timeouts.
      inj->count_crash_drop();
      return;
    }
    if (pkt.corrupt) {
      // The ICRC check rejects the damaged packet before it reaches a
      // processing engine; recovery is identical to a fabric drop.
      counters_.bytes_rx += pkt.payload.size() + params_.packet_header_bytes;
      if (trace::Tracer* t = trace::tracer(trace::kFault)) {
        t->instant(trace::kFault, "fault.icrc_discard", loop_.now(),
                   node_->id(), "src", pkt.src_node, "psn", pkt.psn);
      }
      return;
    }
  }
  if (engine_ == NicEngine::kCoroutine) {
    sim::spawn(loop_, inbound_path(std::move(pkt)));
    return;
  }
  RecvSm* sm = RecvSm::make(this, std::move(pkt));
  loop_.call_in(0, &RecvSm::start, sm);
}

// ---------------------------------------------------------------------------
// Coroutine reference engine. Kept verbatim from the pre-flattening tree
// (plus engine_steps accounting: one per frame start and per actual
// coroutine resume — loop-driven wakeups and symmetric-transfer returns).
// The engine-oracle ctest replays randomized schedules under both engines
// and asserts identical event sequences, counters, and completions.
// ---------------------------------------------------------------------------

sim::Task<void> Nic::use_tx_port(Nanos service) {
  counters_.engine_steps++;  // frame start
  sim::Semaphore& sem = tx_port_.semaphore();
  const bool parked = sem.available() <= 0;
  co_await sem.acquire();
  if (parked) {
    counters_.engine_steps++;
  }
  co_await loop_.delay(service);
  if (service > 0) {
    counters_.engine_steps++;
  }
  sem.release();
}

sim::Task<bool> Nic::transmit_request(QueuePair* qp, SendWr wr, uint64_t wqe_key,
                                      uint64_t psn) {
  counters_.engine_steps++;  // frame start
  // QP life at doorbell time: destroy_qp can recycle (and even re-connect)
  // the slot across any of the suspension points below, so re-check before
  // building a packet from its peer binding (mirrors the state-machine
  // engine's flushed_by_recycle).
  const uint32_t gen = qp->generation();
  const bool parked = send_units_.available() <= 0;
  co_await send_units_.acquire();
  if (parked) {
    counters_.engine_steps++;
  }
  if (qp->generation() != gen) {
    send_units_.release();
    co_return false;
  }

  Nanos cost = params_.nic_send_base_ns;
  cost += charge_connection_state(qp, wqe_key);

  const bool carries_payload =
      (wr.opcode == Opcode::kWrite || wr.opcode == Opcode::kWriteImm ||
       wr.opcode == Opcode::kSend) &&
      wr.length > 0;

  sim::PooledBytes payload;
  if (carries_payload) {
    payload.resize(wr.length);
    node_->memory().load(wr.local_addr, payload);
    if (!wr.inline_data) {
      // Gather via DMA read: PCIe reads, possibly served from the LLC.
      // Pipelined, so the serialization charge per line is small; bulk
      // payloads stream at PCIe line rate.
      cost += stream_cap(node_->llc().dma_read(wr.local_addr, wr.length) / 4 +
                             static_cast<Nanos>(lines_touched(wr.local_addr, wr.length)) *
                                 params_.nic_payload_fetch_ns,
                         wr.length, params_);
    }
  }

  if (fault::FaultInjector* inj = faults()) {
    cost = inj->scale_cost(loop_.now(), node_->id(), cost);
  }
  co_await loop_.delay(cost);
  if (cost > 0) {
    counters_.engine_steps++;
  }
  send_units_.release();
  if (qp->generation() != gen) {
    co_return false;  // recycled during the pipeline delay
  }

  Packet pkt;
  pkt.kind = Packet::Kind::kRequest;
  pkt.transport = qp->type();
  pkt.opcode = wr.opcode;
  pkt.src_node = node_->id();
  pkt.src_qpn = qp->qpn();
  if (qp->type() == QpType::kUD) {
    pkt.dst_node = wr.dest_node;
    pkt.dst_qpn = wr.dest_qpn;
  } else {
    pkt.dst_node = qp->peer_node();
    pkt.dst_qpn = qp->peer_qpn();
  }
  pkt.wr_id = wr.wr_id;
  pkt.remote_addr = wr.remote_addr;
  pkt.rkey = wr.rkey;
  pkt.length = wr.length;
  pkt.imm = wr.imm;
  pkt.has_imm = (wr.opcode == Opcode::kWriteImm);
  pkt.signaled = wr.signaled;
  pkt.resp_local_addr = wr.local_addr;
  pkt.payload = std::move(payload);
  pkt.atomic_compare = wr.compare;
  pkt.atomic_swap_or_add = wr.swap_or_add;
  pkt.psn = psn;

  const uint32_t wire_payload = carries_payload ? wr.length : 0;
  co_await use_tx_port(params_.wire_time(wire_payload));
  counters_.engine_steps++;  // resumed by use_tx_port's final transfer
  counters_.bytes_tx += wire_payload + params_.packet_header_bytes;
  if (metrics::QpCounters* qc = qp_metrics(node_->id(), qp)) {
    qc->v[metrics::kQpBytesTx] += wire_payload + params_.packet_header_bytes;
  }
  node_->cluster()->route(std::move(pkt));
  co_return true;
}

sim::Task<void> Nic::send_path(QueuePair* qp, SendWr wr, uint64_t wqe_key) {
  counters_.engine_steps++;  // frame start
  // Errored QP or dead host: the WQE flushes. Signaled WRs still complete
  // (with an error) so posted-vs-completed accounting never hangs.
  if (qp->in_error() || node_->is_down()) {
    counters_.flushed_wrs++;
    if (wr.signaled) {
      complete_send(qp, wr, WcStatus::kWrFlushErr);
    }
    co_return;
  }
  counters_.send_wqes++;

  // With a fault plan attached, RC requests are tracked by PSN so lost
  // packets retransmit. The lossless fast path never assigns PSNs: zero
  // extra events, zero extra state.
  uint64_t psn = 0;
  if (faults() != nullptr && qp->type() == QpType::kRC) {
    psn = qp->alloc_psn();
    qp->add_outstanding(wr, psn);
  }
  CompletionQueue* scq = qp->send_cq();  // the posting life's send CQ

  const bool wired = co_await transmit_request(qp, wr, wqe_key, psn);
  counters_.engine_steps++;  // resumed by transmit_request's final transfer
  if (!wired) {
    // Recycled mid-pipeline: an untracked signaled WR still completes
    // (with an error, to the CQ of the life that posted it) so
    // posted-vs-completed accounting never hangs; tracked ones were
    // already flushed by force_error.
    counters_.flushed_wrs++;
    if (wr.signaled && psn == 0) {
      Completion c;
      c.wr_id = wr.wr_id;
      c.status = WcStatus::kWrFlushErr;
      c.opcode = wr.opcode;
      c.is_recv = false;
      c.byte_len = wr.length;
      c.qpn = qp->qpn();
      scq->push(c);
    }
    co_return;
  }

  if (psn != 0 && qp->find_outstanding(psn) != nullptr) {
    sim::spawn(loop_, retransmit_watcher(qp, psn));
  }

  // Local completion policy:
  //  * RC write/send: completion arrives with the ack.
  //  * RC read/atomics: completion arrives with the response data.
  //  * UC/UD: "transmitted" is all the fabric guarantees; complete now.
  if (qp->type() != QpType::kRC && wr.signaled) {
    complete_send(qp, wr, WcStatus::kSuccess);
  }
}

sim::Task<void> Nic::retransmit_watcher(QueuePair* qp, uint64_t psn) {
  counters_.engine_steps++;  // frame start
  Nanos timeout = params_.rc_retransmit_timeout_ns;
  for (int retry = 0; retry <= params_.rc_retry_count; ++retry) {
    co_await loop_.delay(timeout);
    counters_.engine_steps++;
    QueuePair::Outstanding* o = qp->find_outstanding(psn);
    if (o == nullptr || qp->in_error()) {
      co_return;  // acked, responded, or flushed while we slept
    }
    if (retry == params_.rc_retry_count) {
      break;  // retries exhausted
    }
    o->retries = retry + 1;
    counters_.rc_retransmits++;
    if (metrics::QpCounters* qc = qp_metrics(node_->id(), qp)) {
      qc->v[metrics::kQpRetransmits]++;
    }
    if (metrics::FlightRecorder* f = metrics::flight()) {
      f->note("nic.rc_retransmit", loop_.now(), node_->id(), qp->qpn(),
              static_cast<int64_t>(psn));
    }
    if (trace::Tracer* t = trace::tracer(trace::kFault)) {
      t->instant(trace::kFault, "fault.rc_retransmit", loop_.now(),
                 node_->id(), "qpn", qp->qpn(), "psn", psn);
    }
    // While our own host is down nothing reaches the wire; burn the attempt
    // and keep backing off. Note the payload is re-gathered from host
    // memory at resend time — like a real NIC, a retransmit of a WR whose
    // source buffer was reused sends the new bytes.
    if (!node_->is_down()) {
      const SendWr wr = o->wr;  // copy: the entry may move while suspended
      const bool wired = co_await transmit_request(qp, wr, 0, psn);
      counters_.engine_steps++;  // resumed by transmit_request
      if (!wired || qp->find_outstanding(psn) == nullptr || qp->in_error()) {
        co_return;  // recycled, acked, responded, or flushed meanwhile
      }
    }
    timeout *= 2;
  }
  // Transport gives up: complete the WR with RETRY_EXCEEDED and error the
  // QP (remaining WRs flush), as a real RC QP does.
  const QueuePair::Outstanding o = *qp->find_outstanding(psn);
  qp->erase_outstanding(psn);
  counters_.rc_retry_exhausted++;
  if (metrics::FlightRecorder* f = metrics::flight()) {
    f->note("nic.rc_retry_exhausted", loop_.now(), node_->id(), qp->qpn(),
            static_cast<int64_t>(psn));
    f->trigger("nic.rc_retry_exhausted", loop_.now());
  }
  if (trace::Tracer* t = trace::tracer(trace::kFault)) {
    t->instant(trace::kFault, "fault.rc_retry_exhausted", loop_.now(),
               node_->id(), "qpn", qp->qpn(), "psn", psn);
  }
  if (o.wr.signaled) {
    complete_send(qp, o.wr, WcStatus::kRetryExceeded);
  }
  qp->force_error();
}

sim::Task<void> Nic::inbound_path(Packet pkt) {
  counters_.engine_steps++;  // frame start
  counters_.bytes_rx += pkt.payload.size() + params_.packet_header_bytes;

  // --- Control traffic: acks and naks complete the original WQE. ---
  // Processing an ack updates the QP's requester state, so it touches the
  // NIC cache: with many interleaved RC peers this is what keeps evicting
  // entries between a worker's response bursts (the outbound collapse).
  if (pkt.kind == Packet::Kind::kAck || pkt.kind == Packet::Kind::kNak) {
    QueuePair* qp = node_->find_qp(pkt.dst_qpn);
    SCALERPC_CHECK(qp != nullptr);
    metrics::QpCounters* qc = qp_metrics(node_->id(), qp);
    if (qc) {
      qc->v[metrics::kQpBytesRx] +=
          pkt.payload.size() + params_.packet_header_bytes;
    }
    Nanos ack_cost = 20;
    if (qp_cache_.access(qp->qpn())) {
      counters_.qp_cache_hits++;
      if (qc) {
        qc->v[metrics::kQpCacheHits]++;
      }
    } else {
      counters_.qp_cache_misses++;
      if (qc) {
        qc->v[metrics::kQpCacheMisses]++;
      }
      node_->count_pcie_read();
      ack_cost += params_.nic_cache_miss_ns;
    }
    const bool parked = recv_units_.available() <= 0;
    co_await recv_units_.acquire();
    if (parked) {
      counters_.engine_steps++;
    }
    co_await loop_.delay(ack_cost);
    if (ack_cost > 0) {
      counters_.engine_steps++;
    }
    recv_units_.release();
    if (pkt.psn != 0 && !qp->erase_outstanding(pkt.psn)) {
      // Duplicate ack (the original and a retransmit both got through), or
      // the WR already flushed/errored. Either way it completed once.
      co_return;
    }
    if (pkt.signaled) {
      Completion c;
      c.wr_id = pkt.wr_id;
      c.status = pkt.status;
      c.opcode = pkt.opcode;
      c.byte_len = pkt.length;
      c.qpn = qp->qpn();
      qp->send_cq()->push(c);
    }
    co_return;
  }

  // --- Read / atomic responses scatter into requester memory. ---
  if (pkt.kind == Packet::Kind::kReadResponse ||
      pkt.kind == Packet::Kind::kAtomicResponse) {
    QueuePair* qp = node_->find_qp(pkt.dst_qpn);
    SCALERPC_CHECK(qp != nullptr);
    metrics::QpCounters* qc = qp_metrics(node_->id(), qp);
    if (qc) {
      qc->v[metrics::kQpBytesRx] +=
          pkt.payload.size() + params_.packet_header_bytes;
    }
    const bool parked = recv_units_.available() <= 0;
    co_await recv_units_.acquire();
    if (parked) {
      counters_.engine_steps++;
    }
    counters_.inbound_packets++;
    Nanos cost = params_.nic_recv_base_ns;
    // Read/atomic responses update requester state like acks do.
    if (qp_cache_.access(qp->qpn())) {
      counters_.qp_cache_hits++;
      if (qc) {
        qc->v[metrics::kQpCacheHits]++;
      }
    } else {
      counters_.qp_cache_misses++;
      if (qc) {
        qc->v[metrics::kQpCacheMisses]++;
      }
      node_->count_pcie_read();
      cost += params_.nic_cache_miss_ns;
    }
    if (pkt.status == WcStatus::kSuccess && !pkt.payload.empty()) {
      cost += stream_cap(
          node_->llc().dma_write(pkt.resp_local_addr,
                                 static_cast<uint32_t>(pkt.payload.size())),
          static_cast<uint32_t>(pkt.payload.size()), params_);
    }
    co_await loop_.delay(cost);
    if (cost > 0) {
      counters_.engine_steps++;
    }
    if (pkt.psn != 0 && qp->find_outstanding(pkt.psn) == nullptr) {
      recv_units_.release();
      co_return;  // duplicate response; the data already landed once
    }
    if (pkt.status == WcStatus::kSuccess && !pkt.payload.empty()) {
      node_->memory().dma_store(pkt.resp_local_addr, pkt.payload);
    }
    recv_units_.release();
    if (pkt.psn != 0) {
      qp->erase_outstanding(pkt.psn);
    }
    if (pkt.signaled) {
      Completion c;
      c.wr_id = pkt.wr_id;
      c.status = pkt.status;
      c.opcode = pkt.opcode;
      c.byte_len = static_cast<uint32_t>(pkt.payload.size());
      c.qpn = qp->qpn();
      c.atomic_old = pkt.atomic_old;
      qp->send_cq()->push(c);
    }
    co_return;
  }

  // --- Requests. ---
  QueuePair* qp = node_->find_qp(pkt.dst_qpn);
  SCALERPC_CHECK_MSG(qp != nullptr, "packet to unknown QP");
  if (metrics::QpCounters* qc = qp_metrics(node_->id(), qp)) {
    qc->v[metrics::kQpBytesRx] +=
        pkt.payload.size() + params_.packet_header_bytes;
  }

  // Responder context occupies NIC cache space (touch-only: misses are
  // overlapped and cost nothing, keeping pure-inbound traffic flat, but the
  // occupancy evicts requester state under bidirectional load).
  if (pkt.transport != QpType::kUD) {
    qp_cache_.touch_insert(qp->qpn());
  }

  // Fault mode (tracked PSNs only): an errored responder QP silently drops
  // requests — the requester discovers via its retransmission timeout — and
  // a PSN already seen is a retransmission of an executed request, which is
  // re-acknowledged without re-executing (transport-level exactly-once).
  // Reads are idempotent and side-effect free, so they re-execute instead.
  const bool track_dedup = pkt.psn != 0 && pkt.transport == QpType::kRC &&
                           pkt.opcode != Opcode::kRead;
  if (pkt.psn != 0 && pkt.transport == QpType::kRC && qp->in_error()) {
    co_return;
  }
  if (track_dedup) {
    if (QueuePair::SeenPsn* dup = qp->responder_find(pkt.psn)) {
      counters_.rc_dup_requests++;
      if (trace::Tracer* t = trace::tracer(trace::kFault)) {
        t->instant(trace::kFault, "fault.dup_request", loop_.now(),
                   node_->id(), "qpn", qp->qpn(), "psn", pkt.psn);
      }
      if (!dup->done) {
        co_return;  // the original is still executing; drop the copy
      }
      // Replay the acknowledgement from the dedup ring.
      co_await loop_.delay(params_.rc_ack_latency_ns);
      if (params_.rc_ack_latency_ns > 0) {
        counters_.engine_steps++;
      }
      if (pkt.opcode == Opcode::kCompSwap || pkt.opcode == Opcode::kFetchAdd) {
        Packet resp;
        resp.kind = Packet::Kind::kAtomicResponse;
        resp.opcode = pkt.opcode;
        resp.status = dup->status;
        resp.src_node = node_->id();
        resp.src_qpn = pkt.dst_qpn;
        resp.dst_node = pkt.src_node;
        resp.dst_qpn = pkt.src_qpn;
        resp.wr_id = pkt.wr_id;
        resp.signaled = pkt.signaled;
        resp.atomic_old = dup->atomic_old;
        resp.psn = pkt.psn;
        co_await use_tx_port(params_.wire_time(0));
        counters_.engine_steps++;  // resumed by use_tx_port
        counters_.bytes_tx += params_.packet_header_bytes;
        if (metrics::QpCounters* qc = qp_metrics(node_->id(), qp)) {
          qc->v[metrics::kQpBytesTx] += params_.packet_header_bytes;
        }
        node_->cluster()->route(std::move(resp));
      } else {
        Packet ack;
        ack.kind = dup->status == WcStatus::kSuccess ? Packet::Kind::kAck
                                                     : Packet::Kind::kNak;
        ack.opcode = pkt.opcode;
        ack.status = dup->status;
        ack.src_node = node_->id();
        ack.src_qpn = pkt.dst_qpn;
        ack.dst_node = pkt.src_node;
        ack.dst_qpn = pkt.src_qpn;
        ack.wr_id = pkt.wr_id;
        ack.signaled = pkt.signaled;
        ack.length = pkt.length;
        ack.psn = pkt.psn;
        counters_.acks_sent++;
        node_->cluster()->route(std::move(ack));
      }
      co_return;
    }
    qp->responder_insert(pkt.psn);
  }

  // RC sends / write_imm need a receive descriptor; honor RNR retry.
  const bool consumes_recv =
      pkt.opcode == Opcode::kSend || pkt.opcode == Opcode::kWriteImm;
  if (consumes_recv && !qp->has_recv()) {
    if (pkt.transport == QpType::kUD) {
      counters_.ud_drops++;
      co_return;  // unreliable: silently dropped
    }
    counters_.rnr_events++;
    int retries = 0;
    while (!qp->has_recv() && retries < kRnrRetryLimit) {
      co_await loop_.delay(params_.rnr_retry_delay_ns);
      if (params_.rnr_retry_delay_ns > 0) {
        counters_.engine_steps++;
      }
      retries++;
    }
    if (!qp->has_recv()) {
      Packet nak;
      nak.kind = Packet::Kind::kNak;
      nak.opcode = pkt.opcode;
      nak.status = WcStatus::kRetryExceeded;
      nak.src_node = node_->id();
      nak.src_qpn = pkt.dst_qpn;
      nak.dst_node = pkt.src_node;
      nak.dst_qpn = pkt.src_qpn;
      nak.wr_id = pkt.wr_id;
      nak.signaled = pkt.signaled;
      nak.psn = pkt.psn;
      node_->cluster()->route(std::move(nak));
      co_return;
    }
  }

  const bool parked = recv_units_.available() <= 0;
  co_await recv_units_.acquire();
  if (parked) {
    counters_.engine_steps++;
  }
  counters_.inbound_packets++;
  Nanos cost = params_.nic_recv_base_ns;
  WcStatus status = WcStatus::kSuccess;
  uint64_t atomic_old = 0;
  sim::PooledBytes read_payload;

  uint64_t store_addr = 0;
  bool do_store = false;
  bool push_recv_cqe = false;
  RecvWr rwr{};
  uint32_t recv_byte_len = 0;

  switch (pkt.opcode) {
    case Opcode::kWrite:
    case Opcode::kWriteImm: {
      MemoryRegion* mr = node_->find_mr_by_rkey(pkt.rkey, pkt.remote_addr, pkt.length);
      if (mr == nullptr) {
        status = WcStatus::kRemoteAccessError;
        break;
      }
      if (pkt.length > 0) {
        cost += stream_cap(node_->llc().dma_write(pkt.remote_addr, pkt.length),
                           pkt.length, params_);
        store_addr = pkt.remote_addr;
        do_store = true;
      }
      if (pkt.opcode == Opcode::kWriteImm) {
        // Consumes a descriptor and raises a recv completion carrying imm.
        SCALERPC_CHECK(qp->has_recv());
        rwr = qp->pop_recv();
        cost += params_.nic_recv_wqe_fetch_ns;
        node_->count_pcie_read();
        push_recv_cqe = true;
        recv_byte_len = pkt.length;
      }
      break;
    }
    case Opcode::kSend: {
      SCALERPC_CHECK(qp->has_recv());
      rwr = qp->pop_recv();
      cost += params_.nic_recv_wqe_fetch_ns;
      node_->count_pcie_read();
      const uint32_t grh = pkt.transport == QpType::kUD ? params_.grh_bytes : 0;
      if (pkt.length + grh > rwr.length) {
        status = WcStatus::kRemoteAccessError;
        push_recv_cqe = true;
        break;
      }
      if (pkt.length > 0) {
        store_addr = rwr.addr + grh;
        cost += stream_cap(node_->llc().dma_write(store_addr, pkt.length), pkt.length,
                           params_);
        do_store = true;
      }
      push_recv_cqe = true;
      recv_byte_len = pkt.length + grh;
      break;
    }
    case Opcode::kRead: {
      MemoryRegion* mr = node_->find_mr_by_rkey(pkt.rkey, pkt.remote_addr, pkt.length);
      if (mr == nullptr) {
        status = WcStatus::kRemoteAccessError;
        break;
      }
      cost += stream_cap(node_->llc().dma_read(pkt.remote_addr, pkt.length),
                         pkt.length, params_);
      read_payload.resize(pkt.length);
      node_->memory().load(pkt.remote_addr, read_payload);
      break;
    }
    case Opcode::kCompSwap:
    case Opcode::kFetchAdd: {
      MemoryRegion* mr = node_->find_mr_by_rkey(pkt.rkey, pkt.remote_addr, 8);
      if (mr == nullptr) {
        status = WcStatus::kRemoteAccessError;
        break;
      }
      cost += params_.nic_atomic_extra_ns;
      cost += node_->llc().dma_read(pkt.remote_addr, 8);
      atomic_old = node_->memory().load_pod<uint64_t>(pkt.remote_addr);
      uint64_t new_value = atomic_old;
      if (pkt.opcode == Opcode::kCompSwap) {
        if (atomic_old == pkt.atomic_compare) {
          new_value = pkt.atomic_swap_or_add;
        }
      } else {
        new_value = atomic_old + pkt.atomic_swap_or_add;
      }
      cost += node_->llc().dma_write(pkt.remote_addr, 8);
      node_->memory().store_pod(pkt.remote_addr, new_value);
      break;
    }
  }

  if (fault::FaultInjector* inj = faults()) {
    cost = inj->scale_cost(loop_.now(), node_->id(), cost);
  }
  co_await loop_.delay(cost);
  if (cost > 0) {
    counters_.engine_steps++;
  }

  if (do_store && status == WcStatus::kSuccess) {
    node_->memory().dma_store(store_addr, pkt.payload);
  }
  if (track_dedup) {
    // Mark the PSN executed so a late retransmission replays this outcome
    // instead of re-executing (re-find: the ring slot may have rotated).
    if (QueuePair::SeenPsn* s = qp->responder_find(pkt.psn)) {
      s->status = status;
      s->atomic_old = atomic_old;
      s->done = true;
    }
  }
  if (push_recv_cqe) {
    Completion c;
    c.wr_id = rwr.wr_id;
    c.status = status;
    c.opcode = pkt.opcode;
    c.is_recv = true;
    c.byte_len = recv_byte_len;
    c.has_imm = pkt.has_imm;
    c.imm = pkt.imm;
    c.src_node = pkt.src_node;
    c.src_qpn = pkt.src_qpn;
    c.qpn = qp->qpn();
    qp->recv_cq()->push(c);
  }
  recv_units_.release();

  // Reliable transports acknowledge; reads/atomics respond with data.
  if (pkt.transport == QpType::kRC) {
    if (pkt.opcode == Opcode::kRead || pkt.opcode == Opcode::kCompSwap ||
        pkt.opcode == Opcode::kFetchAdd) {
      Packet resp;
      resp.kind = pkt.opcode == Opcode::kRead ? Packet::Kind::kReadResponse
                                              : Packet::Kind::kAtomicResponse;
      resp.opcode = pkt.opcode;
      resp.status = status;
      resp.src_node = node_->id();
      resp.src_qpn = pkt.dst_qpn;
      resp.dst_node = pkt.src_node;
      resp.dst_qpn = pkt.src_qpn;
      resp.wr_id = pkt.wr_id;
      resp.signaled = pkt.signaled;
      resp.resp_local_addr = pkt.resp_local_addr;
      resp.payload = std::move(read_payload);
      resp.atomic_old = atomic_old;
      resp.psn = pkt.psn;
      const auto resp_bytes = static_cast<uint32_t>(resp.payload.size());
      co_await loop_.delay(params_.rc_ack_latency_ns);
      if (params_.rc_ack_latency_ns > 0) {
        counters_.engine_steps++;
      }
      co_await use_tx_port(params_.wire_time(resp_bytes));
      counters_.engine_steps++;  // resumed by use_tx_port
      counters_.bytes_tx += resp_bytes + params_.packet_header_bytes;
      if (metrics::QpCounters* qc = qp_metrics(node_->id(), qp)) {
        qc->v[metrics::kQpBytesTx] +=
            resp_bytes + params_.packet_header_bytes;
      }
      node_->cluster()->route(std::move(resp));
    } else {
      Packet ack;
      ack.kind = status == WcStatus::kSuccess ? Packet::Kind::kAck : Packet::Kind::kNak;
      ack.opcode = pkt.opcode;
      ack.status = status;
      ack.src_node = node_->id();
      ack.src_qpn = pkt.dst_qpn;
      ack.dst_node = pkt.src_node;
      ack.dst_qpn = pkt.src_qpn;
      ack.wr_id = pkt.wr_id;
      ack.signaled = pkt.signaled;
      ack.length = pkt.length;
      ack.psn = pkt.psn;
      counters_.acks_sent++;
      co_await loop_.delay(params_.rc_ack_latency_ns);
      if (params_.rc_ack_latency_ns > 0) {
        counters_.engine_steps++;
      }
      node_->cluster()->route(std::move(ack));
    }
  }
}

}  // namespace scalerpc::simrdma
