// Allocation-free LRU building blocks shared by the NIC cache and the LLC
// model.
//
// Both caches used to be std::list + std::unordered_map, which costs a node
// allocation per insert and two dependent pointer chases per touch. The hot
// figure sweeps (Fig. 8/10/11) do one such touch per simulated cache line,
// so the simulator itself was bound by them. The replacement keeps every
// structure in a handful of flat arrays sized once at construction:
//
//  * FlatHashIndex — open-addressing (linear probing, backward-shift
//    deletion) map from uint64 key to a uint32 slot index. Power-of-two
//    table at most half full; one probe run per lookup, no tombstones.
//  * LruList — intrusive doubly-linked list threaded through a caller-owned
//    LruLink array; push/move/erase are pure index writes.
//
// Zero heap allocations after construction — verified by
// tests/simrdma/hotpath_alloc_test.cc with a counting global allocator.
#ifndef SRC_SIMRDMA_FLAT_LRU_H_
#define SRC_SIMRDMA_FLAT_LRU_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/common/logging.h"

namespace scalerpc::simrdma {

inline constexpr uint32_t kLruNil = 0xffffffffu;

// Open-addressing hash index: uint64 key -> uint32 value (a slot index,
// which must be < 0xffffffff). At most `max_entries` live keys; the table
// is sized to keep load factor <= 0.5 so probe runs stay short.
class FlatHashIndex {
 public:
  explicit FlatHashIndex(size_t max_entries) {
    size_t cap = 4;
    while (cap < 2 * max_entries) {
      cap <<= 1;
    }
    mask_ = cap - 1;
    entries_.assign(cap, Entry{0, kLruNil});
  }

  // Returns the value for `key`, or kLruNil if absent.
  uint32_t find(uint64_t key) const {
    for (size_t i = bucket_of(key);; i = (i + 1) & mask_) {
      const Entry& e = entries_[i];
      if (e.val == kLruNil) {
        return kLruNil;
      }
      if (e.key == key) {
        return e.val;
      }
    }
  }

  // Inserts `key` -> `value`. The key must not already be present.
  void insert(uint64_t key, uint32_t value) {
    size_++;
    SCALERPC_CHECK(2 * size_ <= mask_ + 1);
    for (size_t i = bucket_of(key);; i = (i + 1) & mask_) {
      if (entries_[i].val == kLruNil) {
        entries_[i] = Entry{key, value};
        return;
      }
    }
  }

  // Removes `key` if present; returns true when it was. Uses backward-shift
  // deletion so lookups never have to skip tombstones.
  bool erase(uint64_t key) {
    size_t i = bucket_of(key);
    for (;; i = (i + 1) & mask_) {
      if (entries_[i].val == kLruNil) {
        return false;
      }
      if (entries_[i].key == key) {
        break;
      }
    }
    size_--;
    size_t hole = i;
    for (size_t j = (hole + 1) & mask_;; j = (j + 1) & mask_) {
      if (entries_[j].val == kLruNil) {
        break;
      }
      const size_t home = bucket_of(entries_[j].key);
      // Move j into the hole only if that does not hop it before its home
      // bucket (cyclic distance test).
      if (((j - home) & mask_) >= ((j - hole) & mask_)) {
        entries_[hole] = entries_[j];
        hole = j;
      }
    }
    entries_[hole].val = kLruNil;
    return true;
  }

  size_t size() const { return size_; }

  void clear() {
    size_ = 0;
    entries_.assign(entries_.size(), Entry{0, kLruNil});
  }

 private:
  // Key and value share a cache line so a probe costs one memory access;
  // the tables model multi-megabyte LLCs, making every probe a likely miss.
  struct Entry {
    uint64_t key;
    uint32_t val;  // kLruNil marks an empty bucket
  };

  size_t bucket_of(uint64_t key) const {
    // Fibonacci (multiplicative) hashing; top bits give the bucket.
    const uint64_t h = key * 0x9e3779b97f4a7c15ull;
    return static_cast<size_t>(h >> 32) & mask_;
  }

  size_t mask_ = 0;
  size_t size_ = 0;
  std::vector<Entry> entries_;
};

struct LruLink {
  uint32_t prev = kLruNil;
  uint32_t next = kLruNil;
};

// Intrusive MRU-at-front list over an external LruLink array. A given link
// slot may belong to at most one list at a time.
class LruList {
 public:
  bool empty() const { return head_ == kLruNil; }
  size_t size() const { return size_; }
  uint32_t front() const { return head_; }  // MRU
  uint32_t back() const { return tail_; }   // LRU

  void push_front(LruLink* links, uint32_t i) {
    links[i].prev = kLruNil;
    links[i].next = head_;
    if (head_ != kLruNil) {
      links[head_].prev = i;
    } else {
      tail_ = i;
    }
    head_ = i;
    size_++;
  }

  void erase(LruLink* links, uint32_t i) {
    const uint32_t p = links[i].prev;
    const uint32_t n = links[i].next;
    if (p != kLruNil) {
      links[p].next = n;
    } else {
      head_ = n;
    }
    if (n != kLruNil) {
      links[n].prev = p;
    } else {
      tail_ = p;
    }
    size_--;
  }

  void move_to_front(LruLink* links, uint32_t i) {
    if (head_ == i) {
      return;
    }
    erase(links, i);
    push_front(links, i);
  }

  void clear() {
    head_ = tail_ = kLruNil;
    size_ = 0;
  }

 private:
  uint32_t head_ = kLruNil;
  uint32_t tail_ = kLruNil;
  size_t size_ = 0;
};

}  // namespace scalerpc::simrdma

#endif  // SRC_SIMRDMA_FLAT_LRU_H_
