#include "src/simrdma/memory.h"

#include <algorithm>

namespace scalerpc::simrdma {

void HostMemory::dma_store(uint64_t addr, std::span<const uint8_t> bytes) {
  SCALERPC_CHECK(contains(addr, bytes.size()));
  std::memcpy(raw(addr), bytes.data(), bytes.size());
  if (live_watchers_ == 0 || bytes.empty()) {
    return;
  }
  const uint64_t lo = addr;
  const uint64_t hi = addr + bytes.size();
  // Collect (id, slot) pairs first: a watcher callback may add/remove
  // watchers. Firing goes by id — a watcher removed (or whose slot was
  // reused) by an earlier callback fails the slab id check and is skipped
  // rather than dereferenced; a watcher added mid-fire is not fired.
  fire_scratch_.clear();
  const size_t b0 = bucket_of(lo);
  const size_t b1 = bucket_of(hi - 1);
  for (size_t b = b0; b <= b1; ++b) {
    for (const uint32_t slot : buckets_[b]) {
      const WatchRange& w = watch_slots_[slot];
      if (w.lo < hi && lo < w.hi) {
        fire_scratch_.emplace_back(w.id, slot);
      }
    }
  }
  // Ascending id = registration order, the firing order the flat scan had.
  // A range spanning several buckets was collected once per bucket; the
  // sort makes the duplicates adjacent so they can be skipped below.
  std::sort(fire_scratch_.begin(), fire_scratch_.end());
  uint64_t last_id = 0;
  for (const auto& [id, slot] : fire_scratch_) {
    if (id == last_id) {
      continue;
    }
    last_id = id;
    if (watch_slots_[slot].id == id) {
      watch_fns_[slot]();
    }
  }
}

uint64_t HostMemory::add_watcher(uint64_t addr, uint64_t len, std::function<void()> fn) {
  SCALERPC_CHECK(contains(addr, len));
  if (buckets_.empty()) {
    buckets_.resize((data_.size() >> kWatchBucketShift) + 1);
  }
  const uint64_t id = next_watcher_id_++;
  uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    watch_slots_[slot] = WatchRange{id, addr, addr + len};
    watch_fns_[slot] = std::move(fn);
  } else {
    slot = static_cast<uint32_t>(watch_slots_.size());
    watch_slots_.push_back(WatchRange{id, addr, addr + len});
    watch_fns_.push_back(std::move(fn));
  }
  const uint64_t hi = addr + (len == 0 ? 1 : len);
  for (size_t b = bucket_of(addr); b <= bucket_of(hi - 1); ++b) {
    buckets_[b].push_back(slot);
  }
  id_index_.emplace_back(id, slot);
  ++live_watchers_;
  return id;
}

uint32_t HostMemory::find_slot(uint64_t id) const {
  const auto it = std::lower_bound(
      id_index_.begin(), id_index_.end(), id,
      [](const std::pair<uint64_t, uint32_t>& e, uint64_t v) { return e.first < v; });
  if (it == id_index_.end() || it->first != id) {
    return UINT32_MAX;
  }
  // Tombstone check: the slot may have been freed (and even reused under a
  // newer id) since this entry was appended.
  return watch_slots_[it->second].id == id ? it->second : UINT32_MAX;
}

void HostMemory::compact_id_index() {
  auto dead = [this](const std::pair<uint64_t, uint32_t>& e) {
    return watch_slots_[e.second].id != e.first;
  };
  id_index_.erase(std::remove_if(id_index_.begin(), id_index_.end(), dead),
                  id_index_.end());
}

void HostMemory::remove_watcher(uint64_t id) {
  const uint32_t slot = find_slot(id);
  if (slot == UINT32_MAX) {
    return;
  }
  const WatchRange w = watch_slots_[slot];
  const uint64_t hi = w.hi == w.lo ? w.lo + 1 : w.hi;
  for (size_t b = bucket_of(w.lo); b <= bucket_of(hi - 1); ++b) {
    auto& bucket = buckets_[b];
    const auto it = std::find(bucket.begin(), bucket.end(), slot);
    if (it != bucket.end()) {
      // Order within a bucket is irrelevant (firing sorts by id), so
      // swap-remove keeps removal O(bucket).
      *it = bucket.back();
      bucket.pop_back();
    }
  }
  watch_slots_[slot].id = 0;
  watch_fns_[slot] = nullptr;
  free_slots_.push_back(slot);
  --live_watchers_;
  if (id_index_.size() > 2 * live_watchers_ + 64) {
    compact_id_index();
  }
}

}  // namespace scalerpc::simrdma
