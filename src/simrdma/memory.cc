#include "src/simrdma/memory.h"

#include <algorithm>

namespace scalerpc::simrdma {

void HostMemory::dma_store(uint64_t addr, std::span<const uint8_t> bytes) {
  SCALERPC_CHECK(contains(addr, bytes.size()));
  std::memcpy(raw(addr), bytes.data(), bytes.size());
  if (watch_ranges_.empty() || bytes.empty()) {
    return;
  }
  const uint64_t lo = addr;
  const uint64_t hi = addr + bytes.size();
  // Collect ids first: a watcher callback may add/remove watchers. Firing
  // goes by id so a watcher removed by an earlier callback is skipped
  // rather than dereferenced.
  fire_scratch_.clear();
  for (const auto& w : watch_ranges_) {
    if (w.lo < hi && lo < w.hi) {
      fire_scratch_.push_back(w.id);
    }
  }
  for (const uint64_t id : fire_scratch_) {
    const auto it =
        std::find_if(watch_ranges_.begin(), watch_ranges_.end(),
                     [id](const WatchRange& w) { return w.id == id; });
    if (it != watch_ranges_.end()) {
      watch_fns_[static_cast<size_t>(it - watch_ranges_.begin())]();
    }
  }
}

uint64_t HostMemory::add_watcher(uint64_t addr, uint64_t len, std::function<void()> fn) {
  SCALERPC_CHECK(contains(addr, len));
  const uint64_t id = next_watcher_id_++;
  watch_ranges_.push_back(WatchRange{id, addr, addr + len});
  watch_fns_.push_back(std::move(fn));
  return id;
}

void HostMemory::remove_watcher(uint64_t id) {
  const auto it = std::find_if(watch_ranges_.begin(), watch_ranges_.end(),
                               [id](const WatchRange& w) { return w.id == id; });
  if (it != watch_ranges_.end()) {
    watch_fns_.erase(watch_fns_.begin() + (it - watch_ranges_.begin()));
    watch_ranges_.erase(it);
  }
}

}  // namespace scalerpc::simrdma
