#include "src/simrdma/memory.h"

namespace scalerpc::simrdma {

void HostMemory::dma_store(uint64_t addr, std::span<const uint8_t> bytes) {
  SCALERPC_CHECK(contains(addr, bytes.size()));
  std::memcpy(raw(addr), bytes.data(), bytes.size());
  if (watchers_.empty() || bytes.empty()) {
    return;
  }
  const uint64_t lo = addr;
  const uint64_t hi = addr + bytes.size();
  // Collect first: a watcher callback may add/remove watchers.
  std::vector<std::function<void()>*> to_fire;
  for (auto& [id, w] : watchers_) {
    if (w.lo < hi && lo < w.hi) {
      to_fire.push_back(&w.fn);
    }
  }
  for (auto* fn : to_fire) {
    (*fn)();
  }
}

uint64_t HostMemory::add_watcher(uint64_t addr, uint64_t len, std::function<void()> fn) {
  SCALERPC_CHECK(contains(addr, len));
  const uint64_t id = next_watcher_id_++;
  watchers_.emplace(id, Watcher{addr, addr + len, std::move(fn)});
  return id;
}

void HostMemory::remove_watcher(uint64_t id) { watchers_.erase(id); }

}  // namespace scalerpc::simrdma
