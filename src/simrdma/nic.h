// NIC model: send pipeline (WQE processing with the NIC-cache effects that
// kill outbound scalability), inbound pipeline (DDIO writes, recv-WQE
// consumption, read/atomic responding), and a serializing TX port.
//
// The data plane runs under one of two execution engines (nic_engine.h):
// flat pooled callback state machines (default — no coroutine frames, no
// resume round-trips) or the original Task<void> coroutine pipelines, kept
// as a reference model. Both issue the same event-loop schedule calls at the
// same simulated times in the same insertion order, so every figure/trace/
// counter except the diagnostic `engine_steps` is byte-identical between
// them (tests/simrdma/engine_oracle_test.cc).
#ifndef SRC_SIMRDMA_NIC_H_
#define SRC_SIMRDMA_NIC_H_

#include "src/sim/event_loop.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"
#include "src/simrdma/counters.h"
#include "src/simrdma/nic_cache.h"
#include "src/simrdma/nic_engine.h"
#include "src/simrdma/params.h"
#include "src/simrdma/verbs.h"

namespace scalerpc::fault {
class FaultInjector;
}  // namespace scalerpc::fault

namespace scalerpc::simrdma {

class Node;

class Nic {
 public:
  Nic(sim::EventLoop& loop, Node* node, const SimParams& params);

  // Entry from QueuePair::post_send (after the doorbell cost).
  void submit_send(QueuePair* qp, SendWr wr);

  // Entry from the fabric when a packet arrives.
  void deliver(Packet pkt);

  // QP error transitions report each flushed WR here (verbs.cc).
  void note_flushed_wr() { counters_.flushed_wrs++; }

  const NicCounters& counters() const { return counters_; }
  NicCache& qp_cache() { return qp_cache_; }
  const NicCache& qp_cache() const { return qp_cache_; }
  NicCache& wqe_cache() { return wqe_cache_; }
  const NicCache& wqe_cache() const { return wqe_cache_; }
  NicEngine engine() const { return engine_; }

 private:
  // Callback state machines (the default engine). SendSm covers the WQE
  // lifetime: send_path preamble, transmit leg, and — for tracked RC
  // requests — the retransmission watcher, reusing one pooled context.
  // RecvSm covers one inbound packet: ack/response bookkeeping, dedup
  // replay, RNR wait, request execution, and the RC reply legs.
  struct SendSm;
  struct RecvSm;

  // Coroutine reference engine (kept test-only behind nic_engine()).
  sim::Task<void> send_path(QueuePair* qp, SendWr wr, uint64_t wqe_key);
  sim::Task<void> inbound_path(Packet pkt);

  // Shared by the first transmission and retransmissions: charges the NIC
  // pipeline costs, builds the request packet, and routes it. Returns
  // false when the QP was recycled (Node::destroy_qp) mid-pipeline and the
  // WQE was dropped instead of wired.
  sim::Task<bool> transmit_request(QueuePair* qp, SendWr wr, uint64_t wqe_key,
                                   uint64_t psn);
  // Fault mode only: armed per tracked RC request; resends on timeout with
  // exponential back-off, errors the QP once retries are exhausted.
  sim::Task<void> retransmit_watcher(QueuePair* qp, uint64_t psn);
  // Counted replica of tx_port_.use(service): same primitive operations on
  // the same semaphore/loop (event-identical), plus engine_steps accounting
  // for the reference engine.
  sim::Task<void> use_tx_port(Nanos service);
  // The cluster's injector, or nullptr when no fault plan is attached.
  fault::FaultInjector* faults() const;

  // Charges NIC-cache lookups for an outbound WQE on `qp`; returns the added
  // processing cost and bumps PCIe-read counters on misses.
  Nanos charge_connection_state(QueuePair* qp, uint64_t wqe_key);

  void complete_send(QueuePair* qp, const SendWr& wr, WcStatus status,
                     uint64_t atomic_old = 0);

  sim::EventLoop& loop_;
  Node* node_;
  const SimParams& params_;
  NicCache qp_cache_;
  NicCache wqe_cache_;
  sim::Semaphore send_units_;
  sim::Semaphore recv_units_;
  sim::FifoResource tx_port_;
  NicCounters counters_;
  uint64_t next_wqe_id_ = 1;
  const NicEngine engine_;
};

}  // namespace scalerpc::simrdma

#endif  // SRC_SIMRDMA_NIC_H_
