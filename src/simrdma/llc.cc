#include "src/simrdma/llc.h"

#include "src/common/logging.h"
#include "src/simrdma/memory.h"

namespace scalerpc::simrdma {

LastLevelCache::LastLevelCache(const SimParams& params)
    : params_(params),
      capacity_lines_(params.derived_llc_lines()),
      ddio_capacity_lines_(params.derived_ddio_lines()),
      // The direct map spans every address the model can touch: the
      // registered arena ends at kMemoryBase + host_memory_bytes, and the
      // sub-base range [0, kMemoryBase) is kept addressable for unit tests
      // that exercise the LLC with raw scratch addresses.
      addr_limit_(kMemoryBase + params.host_memory_bytes),
      line_map_(addr_limit_ / kCacheLineSize) {
  SCALERPC_CHECK(capacity_lines_ > 0);
  SCALERPC_CHECK(ddio_capacity_lines_ > 0);
}

uint32_t LastLevelCache::take_free_slot(uint64_t line) {
  uint32_t slot;
  if (!free_.empty()) {
    slot = free_.back();
    free_.pop_back();
  } else {
    // Grow the pool on demand. Fresh ids come out sequentially, exactly as
    // the old preallocated descending free list handed them out, so the
    // slot-id sequence (and with it LRU replacement order) is unchanged.
    slot = static_cast<uint32_t>(slot_line_.size());
    slot_line_.push_back(0);
    links_.push_back(LruLink{});
    partition_.push_back(Partition::kGeneral);
  }
  slot_line_[slot] = line;
  line_map_[line / kCacheLineSize] = slot + 1;
  return slot;
}

void LastLevelCache::release_slot(uint32_t slot) {
  line_map_[slot_line_[slot] / kCacheLineSize] = 0;
  free_.push_back(slot);
}

void LastLevelCache::insert_general(uint64_t line) {
  if (resident_lines() >= capacity_lines_) {
    if (!general_lru_.empty()) {
      evict_one_general();
    } else {
      evict_one_ddio();
    }
  }
  const uint32_t slot = take_free_slot(line);
  partition_[slot] = Partition::kGeneral;
  general_lru_.push_front(links_.data(), slot);
}

void LastLevelCache::insert_ddio(uint64_t line) {
  if (ddio_lru_.size() >= ddio_capacity_lines_) {
    evict_one_ddio();
  } else if (resident_lines() >= capacity_lines_) {
    if (!ddio_lru_.empty()) {
      evict_one_ddio();
    } else {
      evict_one_general();
    }
  }
  const uint32_t slot = take_free_slot(line);
  partition_[slot] = Partition::kDdio;
  ddio_lru_.push_front(links_.data(), slot);
}

void LastLevelCache::evict_one_general() {
  SCALERPC_CHECK(!general_lru_.empty());
  const uint32_t victim = general_lru_.back();
  general_lru_.erase(links_.data(), victim);
  release_slot(victim);
}

void LastLevelCache::evict_one_ddio() {
  SCALERPC_CHECK(!ddio_lru_.empty());
  const uint32_t victim = ddio_lru_.back();
  ddio_lru_.erase(links_.data(), victim);
  release_slot(victim);
}

void LastLevelCache::promote_to_general(uint32_t slot) {
  SCALERPC_CHECK(partition_[slot] == Partition::kDdio);
  ddio_lru_.erase(links_.data(), slot);
  partition_[slot] = Partition::kGeneral;
  general_lru_.push_front(links_.data(), slot);
}

void LastLevelCache::clear() {
  // Un-map only the resident lines (walking both LRUs) rather than
  // re-zeroing the whole direct map: resident count is bounded by use, the
  // map by the address span.
  for (uint32_t s = general_lru_.front(); s != kLruNil; s = links_[s].next) {
    line_map_[slot_line_[s] / kCacheLineSize] = 0;
  }
  for (uint32_t s = ddio_lru_.front(); s != kLruNil; s = links_[s].next) {
    line_map_[slot_line_[s] / kCacheLineSize] = 0;
  }
  general_lru_.clear();
  ddio_lru_.clear();
  slot_line_.clear();
  links_.clear();
  partition_.clear();
  free_.clear();
}

}  // namespace scalerpc::simrdma
