#include "src/simrdma/llc.h"

#include "src/common/logging.h"

namespace scalerpc::simrdma {

LastLevelCache::LastLevelCache(const SimParams& params)
    : params_(params),
      capacity_lines_(params.derived_llc_lines()),
      ddio_capacity_lines_(params.derived_ddio_lines()) {
  SCALERPC_CHECK(capacity_lines_ > 0);
  SCALERPC_CHECK(ddio_capacity_lines_ > 0);
  lines_.reserve(capacity_lines_);
}

void LastLevelCache::touch(uint64_t line) {
  auto it = lines_.find(line);
  SCALERPC_CHECK(it != lines_.end());
  auto& lru = it->second.partition == Partition::kGeneral ? general_lru_ : ddio_lru_;
  lru.splice(lru.begin(), lru, it->second.lru_pos);
}

void LastLevelCache::insert_general(uint64_t line) {
  if (lines_.size() >= capacity_lines_) {
    if (!general_lru_.empty()) {
      evict_one_general();
    } else {
      evict_one_ddio();
    }
  }
  general_lru_.push_front(line);
  lines_.emplace(line, LineState{Partition::kGeneral, general_lru_.begin()});
}

void LastLevelCache::insert_ddio(uint64_t line) {
  if (ddio_lru_.size() >= ddio_capacity_lines_) {
    evict_one_ddio();
  } else if (lines_.size() >= capacity_lines_) {
    if (!ddio_lru_.empty()) {
      evict_one_ddio();
    } else {
      evict_one_general();
    }
  }
  ddio_lru_.push_front(line);
  lines_.emplace(line, LineState{Partition::kDdio, ddio_lru_.begin()});
}

void LastLevelCache::evict_one_general() {
  SCALERPC_CHECK(!general_lru_.empty());
  lines_.erase(general_lru_.back());
  general_lru_.pop_back();
}

void LastLevelCache::evict_one_ddio() {
  SCALERPC_CHECK(!ddio_lru_.empty());
  lines_.erase(ddio_lru_.back());
  ddio_lru_.pop_back();
}

void LastLevelCache::promote_to_general(uint64_t line) {
  auto it = lines_.find(line);
  SCALERPC_CHECK(it != lines_.end() && it->second.partition == Partition::kDdio);
  ddio_lru_.erase(it->second.lru_pos);
  general_lru_.push_front(line);
  it->second.partition = Partition::kGeneral;
  it->second.lru_pos = general_lru_.begin();
}

template <typename PerLine>
Nanos LastLevelCache::for_each_line(uint64_t addr, uint32_t len, PerLine fn) {
  Nanos cost = 0;
  if (len == 0) {
    return 0;
  }
  const uint64_t first = align_down(addr, kCacheLineSize);
  const uint64_t last = align_down(addr + len - 1, kCacheLineSize);
  for (uint64_t line = first; line <= last; line += kCacheLineSize) {
    // fn returns per-line cost; also knows whether the touch covers the
    // whole line (full-line DMA writes count as ItoM rather than RFO).
    const uint64_t lo = line < addr ? addr : line;
    const uint64_t hi = (line + kCacheLineSize) > (addr + len) ? (addr + len)
                                                               : (line + kCacheLineSize);
    cost += fn(line, static_cast<uint32_t>(hi - lo) == kCacheLineSize);
  }
  return cost;
}

Nanos LastLevelCache::cpu_read(uint64_t addr, uint32_t len) {
  return for_each_line(addr, len, [this](uint64_t line, bool) -> Nanos {
    auto it = lines_.find(line);
    if (it != lines_.end()) {
      pcm_.l3_hits++;
      if (it->second.partition == Partition::kDdio) {
        promote_to_general(line);
      } else {
        touch(line);
      }
      return params_.llc_hit_ns;
    }
    pcm_.l3_misses++;
    insert_general(line);
    return params_.llc_miss_ns;
  });
}

Nanos LastLevelCache::cpu_write(uint64_t addr, uint32_t len) {
  // Same residency behaviour as a read (write-allocate), same counters.
  return cpu_read(addr, len);
}

Nanos LastLevelCache::dma_write(uint64_t addr, uint32_t len) {
  return for_each_line(addr, len, [this](uint64_t line, bool full_line) -> Nanos {
    if (full_line) {
      pcm_.itom++;
    } else {
      pcm_.rfo++;
    }
    auto it = lines_.find(line);
    if (it != lines_.end()) {
      // Write Update: data lands in the already-resident line.
      touch(line);
      return params_.dma_llc_hit_ns;
    }
    // Write Allocate: restricted to the DDIO partition. Partial-line
    // allocations additionally pay a read-for-ownership from DRAM.
    pcm_.pcie_itom++;
    insert_ddio(line);
    return full_line ? params_.dma_llc_miss_ns : params_.dma_llc_miss_partial_ns;
  });
}

Nanos LastLevelCache::dma_read(uint64_t addr, uint32_t len) {
  return for_each_line(addr, len, [this](uint64_t line, bool) -> Nanos {
    pcm_.pcie_rd_cur++;
    auto it = lines_.find(line);
    if (it != lines_.end()) {
      touch(line);
      return params_.dma_llc_hit_ns;
    }
    return params_.dma_llc_miss_ns;
  });
}

void LastLevelCache::clear() {
  general_lru_.clear();
  ddio_lru_.clear();
  lines_.clear();
}

}  // namespace scalerpc::simrdma
