#include "src/simrdma/llc.h"

#include "src/common/logging.h"

namespace scalerpc::simrdma {

LastLevelCache::LastLevelCache(const SimParams& params)
    : params_(params),
      capacity_lines_(params.derived_llc_lines()),
      ddio_capacity_lines_(params.derived_ddio_lines()),
      index_(capacity_lines_),
      slot_line_(capacity_lines_),
      links_(capacity_lines_),
      partition_(capacity_lines_, Partition::kGeneral) {
  SCALERPC_CHECK(capacity_lines_ > 0);
  SCALERPC_CHECK(ddio_capacity_lines_ > 0);
  free_.reserve(capacity_lines_);
  for (uint64_t i = capacity_lines_; i > 0; --i) {
    free_.push_back(static_cast<uint32_t>(i - 1));
  }
}

uint32_t LastLevelCache::take_free_slot(uint64_t line) {
  const uint32_t slot = free_.back();
  free_.pop_back();
  slot_line_[slot] = line;
  index_.insert(line, slot);
  return slot;
}

void LastLevelCache::release_slot(uint32_t slot) {
  index_.erase(slot_line_[slot]);
  free_.push_back(slot);
}

void LastLevelCache::insert_general(uint64_t line) {
  if (resident_lines() >= capacity_lines_) {
    if (!general_lru_.empty()) {
      evict_one_general();
    } else {
      evict_one_ddio();
    }
  }
  const uint32_t slot = take_free_slot(line);
  partition_[slot] = Partition::kGeneral;
  general_lru_.push_front(links_.data(), slot);
}

void LastLevelCache::insert_ddio(uint64_t line) {
  if (ddio_lru_.size() >= ddio_capacity_lines_) {
    evict_one_ddio();
  } else if (resident_lines() >= capacity_lines_) {
    if (!ddio_lru_.empty()) {
      evict_one_ddio();
    } else {
      evict_one_general();
    }
  }
  const uint32_t slot = take_free_slot(line);
  partition_[slot] = Partition::kDdio;
  ddio_lru_.push_front(links_.data(), slot);
}

void LastLevelCache::evict_one_general() {
  SCALERPC_CHECK(!general_lru_.empty());
  const uint32_t victim = general_lru_.back();
  general_lru_.erase(links_.data(), victim);
  release_slot(victim);
}

void LastLevelCache::evict_one_ddio() {
  SCALERPC_CHECK(!ddio_lru_.empty());
  const uint32_t victim = ddio_lru_.back();
  ddio_lru_.erase(links_.data(), victim);
  release_slot(victim);
}

void LastLevelCache::promote_to_general(uint32_t slot) {
  SCALERPC_CHECK(partition_[slot] == Partition::kDdio);
  ddio_lru_.erase(links_.data(), slot);
  partition_[slot] = Partition::kGeneral;
  general_lru_.push_front(links_.data(), slot);
}

void LastLevelCache::clear() {
  index_.clear();
  general_lru_.clear();
  ddio_lru_.clear();
  free_.clear();
  for (uint64_t i = capacity_lines_; i > 0; --i) {
    free_.push_back(static_cast<uint32_t>(i - 1));
  }
}

}  // namespace scalerpc::simrdma
