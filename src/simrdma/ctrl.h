// Per-node control-plane processor (docs/control_plane.md).
//
// Models the serial driver/firmware command path that executes verbs
// control operations (ibv_create_qp, ibv_modify_qp, ibv_reg_mr, teardown).
// Data-plane WQEs bypass it entirely; only explicit control ops pay here.
//
// The processor is a serial FIFO with a bounded admission window: an op
// admitted at time t starts when every earlier op has finished and holds
// the processor for its cost. With `processor_slots` set, at most that many
// ops may be queued-or-executing at once — `saturated()` lets callers
// (ConnectionManager admission control, src/ctrl/) reject a connect with a
// retry-after instead of building an unbounded backlog.
//
// Zero-cost when off: a Node only constructs its CtrlProcessor on the first
// charged op, which only happens behind SimParams::CtrlParams::enabled()
// guards, so default runs never allocate it or touch the event loop.
#ifndef SRC_SIMRDMA_CTRL_H_
#define SRC_SIMRDMA_CTRL_H_

#include <cstdint>

#include "src/sim/event_loop.h"
#include "src/sim/task.h"
#include "src/simrdma/params.h"

namespace scalerpc::simrdma {

class CtrlProcessor {
 public:
  CtrlProcessor(sim::EventLoop& loop, int slots) : loop_(loop), slots_(slots) {}

  // True when the bounded command queue is full; callers should back off
  // and retry instead of op()-ing (op() itself never rejects, so protocol
  // paths that must make progress — e.g. recovery reconnects — can still
  // queue behind the storm).
  bool saturated() const {
    return slots_ > 0 && inflight_ >= static_cast<uint64_t>(slots_);
  }

  // Executes one control op costing `cost` ns of serial processor time:
  // waits for every previously admitted op, then holds the processor for
  // `cost`. FIFO order is admission order; the wait is a single timer, so
  // the model is allocation-free in steady state.
  sim::Task<void> op(Nanos cost) {
    const Nanos now = loop_.now();
    const Nanos start = busy_until_ > now ? busy_until_ : now;
    busy_until_ = start + cost;
    inflight_++;
    peak_inflight_ = inflight_ > peak_inflight_ ? inflight_ : peak_inflight_;
    co_await loop_.delay(busy_until_ - now);
    inflight_--;
    ops_++;
    busy_ns_ += cost;
  }

  uint64_t ops() const { return ops_; }
  uint64_t inflight() const { return inflight_; }
  uint64_t peak_inflight() const { return peak_inflight_; }
  Nanos busy_ns() const { return busy_ns_; }

 private:
  sim::EventLoop& loop_;
  int slots_;
  Nanos busy_until_ = 0;
  uint64_t inflight_ = 0;
  uint64_t peak_inflight_ = 0;
  uint64_t ops_ = 0;
  Nanos busy_ns_ = 0;
};

}  // namespace scalerpc::simrdma

#endif  // SRC_SIMRDMA_CTRL_H_
