// Per-node host memory: a byte-accurate arena with write watchers.
//
// RDMA one-sided verbs really move bytes here, so polling-based message
// detection (the Valid byte at the end of a right-aligned message) works
// exactly as on hardware. Watchers let simulated polling threads park until
// a DMA write lands in their region instead of busy-burning events; the
// *cost* of the poll is still charged through the LLC model by the caller.
#ifndef SRC_SIMRDMA_MEMORY_H_
#define SRC_SIMRDMA_MEMORY_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <span>
#include <vector>

#include "src/common/lazy_mem.h"
#include "src/common/logging.h"
#include "src/common/units.h"

namespace scalerpc::simrdma {

// Virtual addresses start at kMemoryBase so that 0 is never a valid address.
constexpr uint64_t kMemoryBase = 0x100000;

class HostMemory {
 public:
  // The arena is lazily committed: a 64 MiB node costs pages only where
  // bytes are actually written, and construction does no zeroing.
  explicit HostMemory(uint64_t size_bytes) : data_(size_bytes) {}

  uint64_t base() const { return kMemoryBase; }
  uint64_t size() const { return data_.size(); }
  uint64_t end() const { return kMemoryBase + data_.size(); }

  bool contains(uint64_t addr, uint64_t len) const {
    return addr >= kMemoryBase && addr + len <= end() && addr + len >= addr;
  }

  uint8_t* raw(uint64_t addr) {
    SCALERPC_CHECK(contains(addr, 0));
    return data_.data() + (addr - kMemoryBase);
  }
  const uint8_t* raw(uint64_t addr) const {
    SCALERPC_CHECK(contains(addr, 0));
    return data_.data() + (addr - kMemoryBase);
  }

  // Plain CPU-side accessors (no watcher firing: local stores by the owner
  // are observed by local polling anyway).
  void store(uint64_t addr, std::span<const uint8_t> bytes) {
    SCALERPC_CHECK(contains(addr, bytes.size()));
    std::memcpy(raw(addr), bytes.data(), bytes.size());
  }
  void load(uint64_t addr, std::span<uint8_t> out) const {
    SCALERPC_CHECK(contains(addr, out.size()));
    std::memcpy(out.data(), raw(addr), out.size());
  }
  template <typename T>
  T load_pod(uint64_t addr) const {
    T value;
    SCALERPC_CHECK(contains(addr, sizeof(T)));
    std::memcpy(&value, raw(addr), sizeof(T));
    return value;
  }
  template <typename T>
  void store_pod(uint64_t addr, const T& value) {
    SCALERPC_CHECK(contains(addr, sizeof(T)));
    std::memcpy(raw(addr), &value, sizeof(T));
  }

  // DMA-side store: copies bytes and fires any watcher overlapping the
  // range. Used by the NIC when an inbound write/send lands.
  void dma_store(uint64_t addr, std::span<const uint8_t> bytes);

  // Registers a persistent watcher over [addr, addr+len). The callback runs
  // synchronously from dma_store (watchers typically just notify() a parked
  // actor). Returns a handle for remove_watcher.
  uint64_t add_watcher(uint64_t addr, uint64_t len, std::function<void()> fn);
  void remove_watcher(uint64_t id);

 private:
  struct WatchRange {
    uint64_t id;  // 0 = free slot
    uint64_t lo;
    uint64_t hi;
  };

  // Watchers live in a slab indexed by a spatial bucket grid so dma_store
  // only inspects watchers near the written range. With 10^5-10^6 clients a
  // node carries that many watchers; a flat scan per DMA write (and an O(W)
  // erase per teardown) would make both quadratic. Firing still goes in
  // ascending id order (= registration order), which is what keeps figure
  // output byte-identical with the old flat scan.
  static constexpr uint64_t kWatchBucketShift = 16;  // 64 KiB per bucket

  size_t bucket_of(uint64_t addr) const {
    return static_cast<size_t>((addr - kMemoryBase) >> kWatchBucketShift);
  }
  uint32_t find_slot(uint64_t id) const;  // UINT32_MAX when dead/unknown
  void compact_id_index();

  LazyBytes data_;
  std::vector<WatchRange> watch_slots_;           // slab; id==0 marks free
  std::vector<std::function<void()>> watch_fns_;  // parallel to watch_slots_
  std::vector<uint32_t> free_slots_;
  // Per-bucket slot lists. Sized to the arena on first registration; a
  // watcher appears in every bucket its range overlaps.
  std::vector<std::vector<uint32_t>> buckets_;
  // id -> slot, append-only (ids are monotonic, so it stays sorted for
  // binary search); dead entries are tombstoned by the slab id check and
  // compacted away once they outnumber the live set.
  std::vector<std::pair<uint64_t, uint32_t>> id_index_;
  std::vector<std::pair<uint64_t, uint32_t>> fire_scratch_;  // (id, slot)
  size_t live_watchers_ = 0;
  uint64_t next_watcher_id_ = 1;
};

// A registered memory region: the unit of remote-access permission.
struct MemoryRegion {
  uint32_t lkey = 0;
  uint32_t rkey = 0;
  uint64_t addr = 0;
  uint64_t length = 0;

  bool covers(uint64_t a, uint64_t len) const {
    return a >= addr && a + len <= addr + length && a + len >= a;
  }
};

}  // namespace scalerpc::simrdma

#endif  // SRC_SIMRDMA_MEMORY_H_
