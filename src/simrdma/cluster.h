// The fabric: owns the event loop, the nodes, and the switch that routes
// packets between NICs.
#ifndef SRC_SIMRDMA_CLUSTER_H_
#define SRC_SIMRDMA_CLUSTER_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/fault/inject.h"
#include "src/sim/event_loop.h"
#include "src/simrdma/node.h"
#include "src/simrdma/params.h"

namespace scalerpc::simrdma {

class Cluster {
 public:
  explicit Cluster(SimParams params = SimParams{});

  sim::EventLoop& loop() { return loop_; }
  const SimParams& params() const { return params_; }

  Node* add_node(const std::string& name);
  // Adds a node whose clock offset/drift are drawn from `rng` within the
  // configured bounds (for TimeSync experiments).
  Node* add_node_with_skewed_clock(const std::string& name, Rng& rng);

  Node* node(int id) { return nodes_.at(static_cast<size_t>(id)).get(); }
  size_t num_nodes() const { return nodes_.size(); }

  // Establishes an RC/UC connection between two QPs of the same type.
  void connect(QueuePair* a, QueuePair* b);

  // Switch: delivers `pkt` to its destination NIC after one hop latency.
  void route(Packet pkt);

  // --- Fault injection ---
  // Attaches a fault plan to this fabric: link faults fire inside route(),
  // NIC faults inside the NIC pipelines, and timed rules (QP error, crash/
  // restart) are scheduled on the event loop here. Call once, before
  // running traffic; `salt` is mixed into the injector's Rng so sweeps can
  // vary the fault realization with a fixed plan. Attaching after nodes
  // exist is fine — timed rules resolve their targets at fire time.
  void attach_faults(const fault::FaultPlan& plan, uint64_t salt = 0);
  // The attached injector, or nullptr (the common case: lossless fabric,
  // zero fault-path overhead — same null-check pattern as trace::tracer()).
  fault::FaultInjector* faults() const { return faults_.get(); }

 private:
  // In-flight packets parked in a recycled pool while they cross the
  // switch, so routing costs no allocation (the event loop's raw-callback
  // path carries a pointer to the pool entry). Entries are individually
  // heap-allocated once so their addresses stay stable as the pool grows.
  struct InFlight {
    Cluster* cluster = nullptr;
    Node* dst = nullptr;
    uint32_t slot = 0;
    Packet pkt;
  };
  static void deliver_in_flight(void* arg);

  SimParams params_;
  sim::EventLoop loop_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<InFlight>> in_flight_;
  std::vector<uint32_t> in_flight_free_;
  std::unique_ptr<fault::FaultInjector> faults_;
};

}  // namespace scalerpc::simrdma

#endif  // SRC_SIMRDMA_CLUSTER_H_
