// The fabric: owns the event loop, the nodes, and the switch that routes
// packets between NICs.
#ifndef SRC_SIMRDMA_CLUSTER_H_
#define SRC_SIMRDMA_CLUSTER_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/sim/event_loop.h"
#include "src/simrdma/node.h"
#include "src/simrdma/params.h"

namespace scalerpc::simrdma {

class Cluster {
 public:
  explicit Cluster(SimParams params = SimParams{});

  sim::EventLoop& loop() { return loop_; }
  const SimParams& params() const { return params_; }

  Node* add_node(const std::string& name);
  // Adds a node whose clock offset/drift are drawn from `rng` within the
  // configured bounds (for TimeSync experiments).
  Node* add_node_with_skewed_clock(const std::string& name, Rng& rng);

  Node* node(int id) { return nodes_.at(static_cast<size_t>(id)).get(); }
  size_t num_nodes() const { return nodes_.size(); }

  // Establishes an RC/UC connection between two QPs of the same type.
  void connect(QueuePair* a, QueuePair* b);

  // Switch: delivers `pkt` to its destination NIC after one hop latency.
  void route(Packet pkt);

 private:
  // In-flight packets parked in a recycled pool while they cross the
  // switch, so routing costs no allocation (the event loop's raw-callback
  // path carries a pointer to the pool entry). Entries are individually
  // heap-allocated once so their addresses stay stable as the pool grows.
  struct InFlight {
    Cluster* cluster = nullptr;
    Node* dst = nullptr;
    uint32_t slot = 0;
    Packet pkt;
  };
  static void deliver_in_flight(void* arg);

  SimParams params_;
  sim::EventLoop loop_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<InFlight>> in_flight_;
  std::vector<uint32_t> in_flight_free_;
};

}  // namespace scalerpc::simrdma

#endif  // SRC_SIMRDMA_CLUSTER_H_
