#include "src/simrdma/verbs.h"

#include "src/simrdma/nic.h"
#include "src/simrdma/node.h"

namespace scalerpc::simrdma {

const char* to_string(QpType t) {
  switch (t) {
    case QpType::kRC:
      return "RC";
    case QpType::kUC:
      return "UC";
    case QpType::kUD:
      return "UD";
  }
  return "?";
}

const char* to_string(Opcode op) {
  switch (op) {
    case Opcode::kWrite:
      return "WRITE";
    case Opcode::kWriteImm:
      return "WRITE_IMM";
    case Opcode::kRead:
      return "READ";
    case Opcode::kSend:
      return "SEND";
    case Opcode::kCompSwap:
      return "CMP_SWAP";
    case Opcode::kFetchAdd:
      return "FETCH_ADD";
  }
  return "?";
}

const char* to_string(WcStatus s) {
  switch (s) {
    case WcStatus::kSuccess:
      return "SUCCESS";
    case WcStatus::kRemoteAccessError:
      return "REMOTE_ACCESS_ERROR";
    case WcStatus::kRetryExceeded:
      return "RETRY_EXCEEDED";
    case WcStatus::kWrFlushErr:
      return "WR_FLUSH_ERR";
  }
  return "?";
}

sim::Task<void> QueuePair::post_send(SendWr wr) {
  if (error_) {
    // Errored QP: the WR flushes immediately, as ibv_post_send on a QP in
    // IBV_QPS_ERR would. No doorbell cost — the NIC never sees it.
    node_->nic().note_flushed_wr();
    if (wr.signaled) {
      Completion c;
      c.wr_id = wr.wr_id;
      c.status = WcStatus::kWrFlushErr;
      c.opcode = wr.opcode;
      c.byte_len = wr.length;
      c.qpn = qpn_;
      send_cq_->push(c);
    }
    co_return;
  }
  const SimParams& p = node_->params();
  // Transport capability matrix (paper Table 1).
  switch (type_) {
    case QpType::kRC:
      SCALERPC_CHECK(connected());
      break;
    case QpType::kUC:
      SCALERPC_CHECK(connected());
      SCALERPC_CHECK_MSG(wr.opcode != Opcode::kRead && wr.opcode != Opcode::kCompSwap &&
                             wr.opcode != Opcode::kFetchAdd,
                         "UC does not support read/atomics");
      break;
    case QpType::kUD:
      SCALERPC_CHECK_MSG(wr.opcode == Opcode::kSend, "UD supports only send/recv");
      SCALERPC_CHECK_MSG(wr.length <= p.ud_mtu_bytes, "UD MTU is 4KB");
      SCALERPC_CHECK(wr.dest_node >= 0);
      break;
  }
  if (wr.inline_data) {
    SCALERPC_CHECK_MSG(wr.length <= p.max_inline_bytes, "payload exceeds max_inline");
  }
  co_await node_->loop().delay(p.mmio_doorbell_ns);
  node_->nic().submit_send(this, wr);
}

sim::Task<void> QueuePair::post_recv(RecvWr wr) {
  co_await node_->loop().delay(node_->params().post_recv_ns);
  if (error_) {
    node_->nic().note_flushed_wr();
    Completion c;
    c.wr_id = wr.wr_id;
    c.status = WcStatus::kWrFlushErr;
    c.is_recv = true;
    c.qpn = qpn_;
    recv_cq_->push(c);
    co_return;
  }
  recv_push(wr);
}

void QueuePair::grow_recv_ring() {
  // Doubling ring (power-of-two capacity, like CompletionQueue); descriptors
  // are re-packed in FIFO order starting at index 0. Growth stops once the
  // QP has seen its peak recv depth, so the steady state never allocates.
  std::vector<RecvWr> bigger(recv_ring_.empty() ? 16 : recv_ring_.size() * 2);
  for (size_t i = 0; i < recv_count_; ++i) {
    bigger[i] = recv_ring_[(recv_head_ + i) & (recv_ring_.size() - 1)];
  }
  recv_head_ = 0;
  recv_ring_ = std::move(bigger);
}

void QueuePair::force_error() {
  if (error_) {
    return;
  }
  error_ = true;
  // Flush queued receive descriptors.
  while (has_recv()) {
    const RecvWr rwr = pop_recv();
    node_->nic().note_flushed_wr();
    Completion c;
    c.wr_id = rwr.wr_id;
    c.status = WcStatus::kWrFlushErr;
    c.is_recv = true;
    c.qpn = qpn_;
    recv_cq_->push(c);
  }
  // Flush un-acked sends (their retransmit watchers see the error state and
  // stand down). Signaled WRs complete with an error so callers counting
  // posted-vs-completed never hang.
  if (fault_ != nullptr) {
    for (const Outstanding& o : fault_->outstanding) {
      node_->nic().note_flushed_wr();
      if (o.wr.signaled) {
        Completion c;
        c.wr_id = o.wr.wr_id;
        c.status = WcStatus::kWrFlushErr;
        c.opcode = o.wr.opcode;
        c.byte_len = o.wr.length;
        c.qpn = qpn_;
        send_cq_->push(c);
      }
    }
    fault_->outstanding.clear();
  }
}

}  // namespace scalerpc::simrdma
