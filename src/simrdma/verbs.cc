#include "src/simrdma/verbs.h"

#include "src/simrdma/nic.h"
#include "src/simrdma/node.h"

namespace scalerpc::simrdma {

const char* to_string(QpType t) {
  switch (t) {
    case QpType::kRC:
      return "RC";
    case QpType::kUC:
      return "UC";
    case QpType::kUD:
      return "UD";
  }
  return "?";
}

const char* to_string(Opcode op) {
  switch (op) {
    case Opcode::kWrite:
      return "WRITE";
    case Opcode::kWriteImm:
      return "WRITE_IMM";
    case Opcode::kRead:
      return "READ";
    case Opcode::kSend:
      return "SEND";
    case Opcode::kCompSwap:
      return "CMP_SWAP";
    case Opcode::kFetchAdd:
      return "FETCH_ADD";
  }
  return "?";
}

const char* to_string(WcStatus s) {
  switch (s) {
    case WcStatus::kSuccess:
      return "SUCCESS";
    case WcStatus::kRemoteAccessError:
      return "REMOTE_ACCESS_ERROR";
    case WcStatus::kRetryExceeded:
      return "RETRY_EXCEEDED";
  }
  return "?";
}

sim::Task<void> QueuePair::post_send(SendWr wr) {
  const SimParams& p = node_->params();
  // Transport capability matrix (paper Table 1).
  switch (type_) {
    case QpType::kRC:
      SCALERPC_CHECK(connected());
      break;
    case QpType::kUC:
      SCALERPC_CHECK(connected());
      SCALERPC_CHECK_MSG(wr.opcode != Opcode::kRead && wr.opcode != Opcode::kCompSwap &&
                             wr.opcode != Opcode::kFetchAdd,
                         "UC does not support read/atomics");
      break;
    case QpType::kUD:
      SCALERPC_CHECK_MSG(wr.opcode == Opcode::kSend, "UD supports only send/recv");
      SCALERPC_CHECK_MSG(wr.length <= p.ud_mtu_bytes, "UD MTU is 4KB");
      SCALERPC_CHECK(wr.dest_node >= 0);
      break;
  }
  if (wr.inline_data) {
    SCALERPC_CHECK_MSG(wr.length <= p.max_inline_bytes, "payload exceeds max_inline");
  }
  co_await node_->loop().delay(p.mmio_doorbell_ns);
  node_->nic().submit_send(this, wr);
}

sim::Task<void> QueuePair::post_recv(RecvWr wr) {
  co_await node_->loop().delay(node_->params().post_recv_ns);
  recv_queue_.push_back(wr);
}

}  // namespace scalerpc::simrdma
