// ibverbs-like API surface for the simulated fabric.
//
// Mirrors the subset of verbs the paper uses (Table 1): RC supports
// send/recv, write, write_imm, read and atomics; UC drops read/atomics; UD
// supports only send/recv with a 4 KB MTU and a 40 B GRH prepended at the
// receiver. Completion queues are polled (with a modeled CPU cost per poll
// round) or awaited.
#ifndef SRC_SIMRDMA_VERBS_H_
#define SRC_SIMRDMA_VERBS_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/sim/event_loop.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"
#include "src/simrdma/params.h"

namespace scalerpc::metrics {
struct QpCounters;
}  // namespace scalerpc::metrics

namespace scalerpc::simrdma {

class Node;
class Nic;

enum class QpType : uint8_t { kRC, kUC, kUD };

enum class Opcode : uint8_t {
  kWrite,
  kWriteImm,
  kRead,
  kSend,
  kCompSwap,
  kFetchAdd,
};

enum class WcStatus : uint8_t {
  kSuccess,
  kRemoteAccessError,
  kRetryExceeded,
  kWrFlushErr,  // WR flushed because the QP entered the error state
};

const char* to_string(QpType t);
const char* to_string(Opcode op);
const char* to_string(WcStatus s);

// Send work request (ibv_send_wr analogue).
struct SendWr {
  uint64_t wr_id = 0;
  Opcode opcode = Opcode::kWrite;
  uint64_t local_addr = 0;  // gather source (or scatter target for kRead)
  uint32_t length = 0;
  uint64_t remote_addr = 0;  // one-sided target
  uint32_t rkey = 0;
  uint32_t imm = 0;
  bool signaled = true;
  bool inline_data = false;  // payload rides in the WQE (<= max_inline)
  // UD addressing (ah analogue); ignored for connected QPs.
  int dest_node = -1;
  uint32_t dest_qpn = 0;
  // Atomics.
  uint64_t compare = 0;
  uint64_t swap_or_add = 0;
};

// Receive work request.
struct RecvWr {
  uint64_t wr_id = 0;
  uint64_t addr = 0;
  uint32_t length = 0;
};

// Work completion (ibv_wc analogue).
struct Completion {
  uint64_t wr_id = 0;
  WcStatus status = WcStatus::kSuccess;
  Opcode opcode = Opcode::kWrite;
  bool is_recv = false;
  uint32_t byte_len = 0;
  bool has_imm = false;
  uint32_t imm = 0;
  int src_node = -1;     // recv-side: originating node
  uint32_t src_qpn = 0;  // recv-side: originating QP
  uint32_t qpn = 0;      // local QP this completion belongs to
  uint64_t atomic_old = 0;  // original value for atomics
};

// On-the-wire unit. One packet per verb (message-level model; segmentation
// below MTU is folded into serialization time).
struct Packet {
  enum class Kind : uint8_t { kRequest, kAck, kNak, kReadResponse, kAtomicResponse };

  Kind kind = Kind::kRequest;
  QpType transport = QpType::kRC;
  Opcode opcode = Opcode::kWrite;
  int src_node = -1;
  uint32_t src_qpn = 0;
  int dst_node = -1;
  uint32_t dst_qpn = 0;
  uint64_t wr_id = 0;  // echoed in acks/responses for completion matching
  uint64_t remote_addr = 0;
  uint32_t rkey = 0;
  uint32_t length = 0;
  uint32_t imm = 0;
  bool has_imm = false;
  bool signaled = true;
  uint64_t resp_local_addr = 0;  // requester-side scatter target (reads)
  // Pool-backed so the per-hop payload buffer never hits malloc in steady
  // state (packets are created and consumed at wire rate).
  sim::PooledBytes payload;
  WcStatus status = WcStatus::kSuccess;
  uint64_t atomic_compare = 0;
  uint64_t atomic_swap_or_add = 0;
  uint64_t atomic_old = 0;
  // Fault-mode reliability state. psn == 0 means "untracked" — the lossless
  // fast path never assigns PSNs, so the fault machinery costs nothing when
  // no plan is attached. Acks/naks/responses echo the request's psn.
  uint64_t psn = 0;
  bool corrupt = false;  // fabric damaged the packet; receiver ICRC drops it
};

class CompletionQueue {
 public:
  // The ring is demand-allocated by the first push: an idle CQ (of which a
  // million-client sim holds one per client) costs only the object header.
  CompletionQueue(sim::EventLoop& loop, Nanos poll_cost)
      : loop_(loop), poll_cost_(poll_cost), ready_(loop) {}

  void push(const Completion& c) {
    if (count_ == ring_.size()) {
      grow();
    }
    ring_[(head_ + count_) & (ring_.size() - 1)] = c;
    count_++;
    ready_.notify();
  }

  // Non-blocking poll (ibv_poll_cq). Does not charge CPU cost — callers
  // model that themselves if they busy-poll.
  size_t poll(size_t max, std::vector<Completion>* out) {
    size_t n = 0;
    while (n < max && count_ != 0) {
      out->push_back(pop_front());
      ++n;
    }
    return n;
  }

  // Blocking pop: charges one poll-round cost per wakeup, parks between.
  sim::Task<Completion> next() {
    for (;;) {
      co_await loop_.delay(poll_cost_);
      if (count_ != 0) {
        co_return pop_front();
      }
      co_await ready_.wait();
    }
  }

  size_t depth() const { return count_; }
  sim::EventLoop& loop() { return loop_; }

 private:
  Completion pop_front() {
    Completion c = ring_[head_];
    head_ = (head_ + 1) & (ring_.size() - 1);
    count_--;
    return c;
  }

  void grow() {
    // Doubling ring (power-of-two capacity, 0 -> 64 on first use);
    // completions are copied into FIFO order starting at index 0. Growth
    // stops once the CQ has seen its peak depth, so the steady state never
    // allocates.
    std::vector<Completion> bigger(ring_.empty() ? 64 : ring_.size() * 2);
    for (size_t i = 0; i < count_; ++i) {
      bigger[i] = ring_[(head_ + i) & (ring_.size() - 1)];
    }
    head_ = 0;
    ring_ = std::move(bigger);
  }

  sim::EventLoop& loop_;
  Nanos poll_cost_;
  sim::Notification ready_;
  std::vector<Completion> ring_;  // power-of-two circular buffer
  size_t head_ = 0;
  size_t count_ = 0;
};

class QueuePair {
 public:
  QueuePair(Node* node, QpType type, uint32_t qpn, CompletionQueue* send_cq,
            CompletionQueue* recv_cq)
      : node_(node), type_(type), qpn_(qpn), send_cq_(send_cq), recv_cq_(recv_cq) {}

  QpType type() const { return type_; }
  uint32_t qpn() const { return qpn_; }
  Node* node() const { return node_; }
  CompletionQueue* send_cq() const { return send_cq_; }
  CompletionQueue* recv_cq() const { return recv_cq_; }

  bool connected() const { return peer_node_ >= 0; }
  int peer_node() const { return peer_node_; }
  uint32_t peer_qpn() const { return peer_qpn_; }
  void set_peer(int node, uint32_t qpn) {
    peer_node_ = node;
    peer_qpn_ = qpn;
  }

  // Posts a send WQE: charges the caller the MMIO doorbell cost and hands
  // the WQE to the NIC pipeline. Returns after the doorbell (verbs are
  // asynchronous; completion arrives on send_cq if signaled).
  sim::Task<void> post_send(SendWr wr);

  // Posts a receive descriptor (charges descriptor-write cost).
  sim::Task<void> post_recv(RecvWr wr);
  // Cost-free variant for bulk pre-population during setup.
  void post_recv_immediate(RecvWr wr) { recv_push(wr); }

  bool has_recv() const { return recv_count_ != 0; }
  size_t recv_depth() const { return recv_count_; }
  RecvWr pop_recv() {
    RecvWr wr = recv_ring_[recv_head_];
    recv_head_ = (recv_head_ + 1) & (recv_ring_.size() - 1);
    recv_count_--;
    return wr;
  }

  // --- Error state (fault mode) ---
  // Transitions the QP to the error state: every queued recv descriptor and
  // every outstanding (un-acked) send flushes to its CQ as kWrFlushErr, and
  // all future posts flush immediately. Idempotent. Mirrors IBV_QPS_ERR.
  void force_error();
  bool in_error() const { return error_; }

  // --- Requester retransmission state (fault mode; psn 0 = untracked) ---
  struct Outstanding {
    SendWr wr;
    uint64_t psn = 0;
    int retries = 0;
  };
  uint64_t alloc_psn() { return ++fault().next_psn; }
  void add_outstanding(const SendWr& wr, uint64_t psn) {
    fault().outstanding.push_back(Outstanding{wr, psn, 0});
  }
  Outstanding* find_outstanding(uint64_t psn) {
    if (fault_ == nullptr) {
      return nullptr;
    }
    for (auto& o : fault_->outstanding) {
      if (o.psn == psn) {
        return &o;
      }
    }
    return nullptr;
  }
  bool erase_outstanding(uint64_t psn) {
    if (fault_ == nullptr) {
      return false;
    }
    for (auto& o : fault_->outstanding) {
      if (o.psn == psn) {
        o = fault_->outstanding.back();
        fault_->outstanding.pop_back();
        return true;
      }
    }
    return false;
  }
  size_t outstanding_count() const {
    return fault_ == nullptr ? 0 : fault_->outstanding.size();
  }

  // --- Responder dedup (fault mode) ---
  // Ring of recently seen request PSNs so a retransmitted request is
  // acknowledged without being executed twice. `done == false` marks an
  // execution still in flight (its duplicate is silently dropped; the
  // requester retries again later if the eventual ack is lost too).
  struct SeenPsn {
    uint64_t psn = 0;  // 0 = empty slot
    WcStatus status = WcStatus::kSuccess;
    uint64_t atomic_old = 0;
    bool done = false;
  };
  SeenPsn* responder_find(uint64_t psn) {
    if (fault_ == nullptr) {
      return nullptr;
    }
    for (auto& s : fault_->seen) {
      if (s.psn == psn) {
        return &s;
      }
    }
    return nullptr;
  }
  SeenPsn* responder_insert(uint64_t psn) {
    FaultState& f = fault();
    SeenPsn& s = f.seen[f.seen_next++ % f.seen.size()];
    s = SeenPsn{psn, WcStatus::kSuccess, 0, false};
    return &s;
  }

  // --- Recycling (Node::destroy_qp / Node::create_qp) ---
  // Parks this slot for reuse: flushes queued work via force_error, drops
  // the peer binding and the cached metrics block, and releases the lazily
  // allocated fault state. The slot stays in the error state (so stale
  // in-flight packets addressed to this qpn are dropped, not misdelivered)
  // until reinit() re-arms it. The requester PSN counter survives recycling
  // (the next fault-mode use resumes it) so a stale ack or retransmission
  // watcher from a previous life can never alias a fresh WR's PSN.
  void recycle() {
    force_error();
    if (fault_ != nullptr) {
      psn_resume_ = fault_->next_psn;
      fault_.reset();
    }
    gen_++;
    peer_node_ = -1;
    peer_qpn_ = 0;
    recv_head_ = 0;
    recv_count_ = 0;
    metrics_counters_ = nullptr;
  }

  // Bumped by recycle(): a send WQE still inside the NIC pipeline when its
  // QP is destroyed compares this against the value it captured at doorbell
  // time and flushes instead of addressing a packet with the cleared (or,
  // if the slot was already reused, some other connection's) peer binding.
  uint32_t generation() const { return gen_; }

  // Re-arms a recycled slot as a freshly created QP (ring capacity and the
  // PSN high-water mark are kept).
  void reinit(QpType type, CompletionQueue* send_cq, CompletionQueue* recv_cq) {
    type_ = type;
    send_cq_ = send_cq;
    recv_cq_ = recv_cq;
    error_ = false;
  }

  // --- Metrics (src/metrics) ---
  // This QP's counter block in the active registry, cached here so the NIC
  // hooks resolve the (node, qpn) label exactly once and then write fields
  // directly. Null = metrics off or not yet resolved. A registry lives per
  // sweep slot and outlives the sim it observes (and blocks have stable
  // addresses), so the cache never needs invalidation.
  metrics::QpCounters* metrics_counters() const { return metrics_counters_; }
  void set_metrics_counters(metrics::QpCounters* c) { metrics_counters_ = c; }

 private:
  // Reliability state only the fault machinery touches (every caller is
  // behind a `psn != 0` or attached-fault-plan guard). Allocated on first
  // use so the common lossless QP stays small: the dedup ring alone is
  // ~3 KB, which at hundreds of QPs per node dwarfed the hot fields.
  struct FaultState {
    uint64_t next_psn = 0;
    std::vector<Outstanding> outstanding;
    std::array<SeenPsn, 128> seen{};
    size_t seen_next = 0;
  };
  FaultState& fault() {
    if (fault_ == nullptr) {
      fault_ = std::make_unique<FaultState>();
      fault_->next_psn = psn_resume_;
    }
    return *fault_;
  }

  void recv_push(const RecvWr& wr) {
    if (recv_count_ == recv_ring_.size()) {
      grow_recv_ring();
    }
    recv_ring_[(recv_head_ + recv_count_) & (recv_ring_.size() - 1)] = wr;
    recv_count_++;
  }
  void grow_recv_ring();

  Node* node_;
  QpType type_;
  bool error_ = false;
  uint32_t qpn_;
  CompletionQueue* send_cq_;
  CompletionQueue* recv_cq_;
  int peer_node_ = -1;
  uint32_t peer_qpn_ = 0;
  // Power-of-two ring, empty until the first post (one-sided QPs never
  // allocate it). Replaces std::deque, whose per-QP chunk allocation and
  // pointer-chasing pop dominated recv-side QP footprint.
  std::vector<RecvWr> recv_ring_;
  size_t recv_head_ = 0;
  size_t recv_count_ = 0;
  metrics::QpCounters* metrics_counters_ = nullptr;
  uint32_t gen_ = 0;  // recycle() count; see generation()
  // PSN high-water mark carried across recycle() (see fault()).
  uint64_t psn_resume_ = 0;
  std::unique_ptr<FaultState> fault_;
};

}  // namespace scalerpc::simrdma

#endif  // SRC_SIMRDMA_VERBS_H_
