// ScaleRPC server (paper Section 3).
//
// The pieces and how they map to the paper:
//  * Connection grouping (3.2): clients are partitioned into groups served
//    round-robin, one group per time slice, bounding the set of RC QPs the
//    NIC touches concurrently.
//  * Virtualized mapping (3.3): two physical message pools (processing +
//    warmup) are remapped to whichever group is live; all groups share the
//    same memory, keeping it LLC-resident.
//  * Requests warmup (3.3): while group k is being served, the scheduler
//    RDMA-reads group k+1's staged batches (announced via endpoint entries)
//    into the warmup pool; the context switch is a pool swap, so workers
//    never idle.
//  * Priority-based scheduling (3.2): group membership/slices are
//    periodically rebuilt from observed per-client rates (GroupScheduler).
//  * Long-RPC legacy mode (3.5): ops observed to exceed a CPU threshold are
//    diverted to a dedicated executor outside the sliced fast path.
//  * Global synchronization (4.2): an optional synced-clock hook aligns
//    context switches across multiple RPCServers (TimeSync provides it).
#ifndef SRC_SCALERPC_SERVER_H_
#define SRC_SCALERPC_SERVER_H_

#include <deque>
#include <functional>
#include <memory>
#include <set>
#include <vector>

#include "src/scalerpc/config.h"
#include "src/scalerpc/protocol.h"
#include "src/scalerpc/scheduler.h"

namespace scalerpc::core {

class ScaleRpcServer : public rpc::RpcServer {
 public:
  ScaleRpcServer(simrdma::Node* node, ScaleRpcConfig cfg);

  void start() override;
  void stop() override;

  simrdma::Node* node() { return node_; }
  const ScaleRpcConfig& config() const { return cfg_; }

  // Pre-start schedule fixups for warm-started sweeps (src/harness/sweep.h):
  // a forked child re-points the parameter before the workload starts.
  // Construction only copies these values — the scheduler loop reads them
  // after start() and groups are first built on its opening iteration — so
  // an update here is indistinguishable from constructing with the new
  // value. Calling either after start() would change schedule state mid-run
  // and is rejected.
  void set_time_slice(Nanos slice);
  void set_warmup_enabled(bool enabled);

  struct Admission {
    int client_id;
    uint64_t entry_addr;   // server-side endpoint entry to RDMA-write
    uint32_t entry_rkey;
    uint64_t pool_base[2];  // processing/warmup pool bases (direct writes)
    uint32_t pool_rkey;
    uint32_t zone_bytes;
  };
  // `client_qp`: client-side RC QP. `resp_base`: client-side response
  // blocks (slots_per_client of them); `control`: client-side control
  // block; both covered by `client_rkey`.
  Admission admit(simrdma::QueuePair* client_qp, uint64_t resp_base, uint64_t control,
                  uint32_t client_rkey);

  // Recovery mode: re-establishes the connection for an already-admitted
  // client on a fresh pair of QPs. The old server-side QP is errored (its
  // pending WRs flush), a new one is connected to `client_qp`, and the
  // client keeps its id, group membership, entry epoch and dedup state —
  // the rejoin does not perturb other clients' grouping or slices. Returns
  // false (no state change besides the old QP teardown) while this node is
  // crashed; the client retries after its next timeout.
  bool readmit(int client_id, simrdma::QueuePair* client_qp);

  // Elastic churn (docs/control_plane.md): removes a connected client from
  // the rotation and recycles its server-side QP. The client keeps its id,
  // entry line and dedup state; a later readmit() with a fresh QP rejoins
  // it (re-entering the grouping at the next context switch). Called by
  // ScaleRpcClient::disconnect().
  void evict(int client_id);

  // Aligns context switches to a shared clock (returns estimated global
  // time). Used by ScaleTX's NTP-like synchronization (Section 4.2).
  void set_synced_clock(std::function<Nanos()> global_now) {
    global_now_ = std::move(global_now);
  }

  // Introspection for tests and benches.
  uint64_t context_switches() const { return context_switches_; }
  uint64_t warmup_fetches() const { return warmup_fetches_; }
  uint64_t notify_writes() const { return notify_writes_; }
  uint64_t legacy_executions() const { return legacy_executions_; }
  uint64_t late_sweep_serves() const { return late_sweep_serves_; }
  size_t num_groups() const { return groups_.size(); }
  uint32_t switch_seq() const { return switch_seq_; }
  // Current group index of an admitted client, or -1 before the first
  // grouping pass. Used to label per-group metric series (src/metrics).
  int group_of(int client_id) const;
  // Recovery mode: retried requests suppressed or answered from the
  // response cache (each one would have been a duplicate execution).
  uint64_t dup_rpcs() const { return dup_rpcs_; }
  uint64_t readmits() const { return readmits_; }
  uint64_t evictions() const { return evictions_; }
  // Admitted clients currently in the rotation (evicted ones excluded).
  size_t connected_clients() const;

 private:
  // Recovery mode, per (client, slot): the newest request seq accepted for
  // execution and the cached response of the last completed one, so a
  // retried request is either dropped (still in flight) or answered from
  // the cache (exactly-once execution).
  struct SlotSeen {
    uint32_t seen_seq = 0;
    uint32_t resp_seq = 0;
    uint8_t op = 0;
    uint8_t flags = 0;
    rpc::Bytes response;
  };

  struct ClientState {
    int id = 0;
    simrdma::QueuePair* qp = nullptr;
    uint64_t resp_remote = 0;
    uint64_t control_remote = 0;
    uint32_t client_rkey = 0;
    uint64_t entry_addr = 0;
    uint16_t last_entry_epoch = 0;
    uint64_t window_reqs = 0;
    uint64_t window_bytes = 0;
    // Evicted from the rotation (qp == nullptr) awaiting a possible rejoin.
    bool parked = false;
    std::vector<SlotSeen> dedup;  // sized only in recovery mode
  };

  struct LegacyJob {
    int client_id;
    int slot;
    uint32_t seq = 0;
    rpc::MessageView msg;
  };

  sim::Task<void> worker(int index);
  sim::Task<void> scheduler_loop();
  sim::Task<void> legacy_executor();
  sim::Task<void> fetch_group(size_t group_idx, int pool_idx, bool* done,
                              Nanos deadline);

  // Serves straggler requests left in `pool_idx` after its group's switch,
  // then remaps the pool's zones to `group_idx` and clears every slot.
  sim::Task<void> sweep_and_remap(size_t group_idx, int pool_idx);

  // Composes a response (with envelope, plus the echoed request seq in
  // recovery mode) in the worker's ring and RDMA-writes it into the
  // client's response block for `slot`.
  sim::Task<void> respond(int worker_index, ClientState& c, int slot, uint8_t op,
                          uint8_t extra_flags, const rpc::Bytes& payload,
                          uint32_t rseq);

  // Parses (and strips) the request header: sender id, plus the request
  // seq in recovery mode. Returns false if the header is short or the
  // sender id is out of range.
  bool parse_request_header(rpc::MessageView& msg, uint32_t* sender,
                            uint32_t* rseq) const;
  // Recovery-mode dedup verdict for a request: 0 = execute, 1 = replay the
  // cached response, 2 = drop (an older retry, or the original is still in
  // flight — the client will retry and hit the cache once it completes).
  int dedup_disposition(ClientState& c, int slot, uint32_t seq);

  // Per-group request accounting hook (no-op when no metrics session is
  // installed); `bytes` is the request payload after the header strip.
  void count_group_request(int client_id, size_t bytes);

  void integrate_pending_and_rebuild();
  uint64_t zone_addr(int pool, int zone) const {
    return pool_base_[pool] + static_cast<uint64_t>(zone) * zone_bytes();
  }
  uint32_t zone_bytes() const {
    return static_cast<uint32_t>(cfg_.slots_per_client) * cfg_.block_bytes;
  }

  simrdma::Node* node_;
  ScaleRpcConfig cfg_;
  GroupScheduler policy_;
  bool running_ = false;

  int max_zones_ = 0;
  uint64_t pool_base_[2] = {0, 0};
  uint64_t scratch_base_ = 0;
  uint32_t staging_max_ = 0;
  std::vector<int> zone_client_[2];

  std::vector<std::unique_ptr<ClientState>> clients_;
  std::vector<int> pending_clients_;
  uint64_t entries_base_ = 0;

  std::vector<Group> groups_;
  // Dense client-id -> group-index map, rebuilt alongside groups_.
  std::vector<int> client_group_;
  size_t cursor_ = 0;
  int active_pool_ = 0;
  uint32_t switch_seq_ = 1;
  bool draining_ = false;
  int rotations_since_rebuild_ = 0;
  // Set by evict()/rejoin so the next scheduler iteration regroups even
  // without pending first-time admissions.
  bool membership_dirty_ = false;

  std::vector<std::unique_ptr<sim::Notification>> worker_wake_;
  simrdma::CompletionQueue* sched_cq_ = nullptr;
  std::vector<uint64_t> worker_resp_ring_;
  std::vector<int> worker_ring_next_;

  std::deque<LegacyJob> legacy_queue_;
  std::unique_ptr<sim::Notification> legacy_wake_;
  std::set<uint8_t> long_ops_;

  std::function<Nanos()> global_now_;

  uint64_t context_switches_ = 0;
  uint64_t warmup_fetches_ = 0;
  uint64_t notify_writes_ = 0;
  uint64_t legacy_executions_ = 0;
  uint64_t late_sweep_serves_ = 0;
  uint64_t dup_rpcs_ = 0;
  uint64_t readmits_ = 0;
  uint64_t evictions_ = 0;
  // NIC qp-cache counter values at the last context switch, so the delta
  // accrued during a slice can be attributed to the group that was live.
  uint64_t last_cache_hits_ = 0;
  uint64_t last_cache_misses_ = 0;
};

}  // namespace scalerpc::core

#endif  // SRC_SCALERPC_SERVER_H_
