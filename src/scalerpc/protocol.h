// On-wire/in-memory protocol details private to ScaleRPC.
//
// Endpoint entry (client -> server, RDMA-written, 24 bytes):
//   | staged_addr:8 | staged_len:4 | batch:2 | epoch:2 | valid:1 | pad |
// The epoch lets the warmup engine consume each (re)post exactly once
// without a clear-write race.
//
// Control block (server -> client, RDMA-written, 8 bytes):
//   | switch_seq:4 | pad |
// Written to every member at context switch; a client whose recorded
// process seq is older must re-enter the WARMUP path.
//
// Response envelope (first bytes of every response's data field):
//   | pool:1 | zone:1 | switch_seq:4 |
// Tells the client where its live zone is so it can post subsequent
// batches directly with RDMA writes (PROCESS state).
#ifndef SRC_SCALERPC_PROTOCOL_H_
#define SRC_SCALERPC_PROTOCOL_H_

#include <cstdint>

#include "src/simrdma/memory.h"

namespace scalerpc::core {

constexpr uint32_t kEntryBytes = 24;
constexpr uint8_t kEntryValid = 0x5C;
constexpr uint32_t kControlBytes = 8;
constexpr uint32_t kEnvelopeBytes = 6;
// Every request's data field starts with the sender's client id, so a
// straggler write that lands in a zone just remapped to another client is
// still answered correctly (and told to re-warm) instead of being
// misattributed. Two bytes cap the fleet at 65535 clients; past that the
// testbed switches both sides to the wide 4-byte id
// (ScaleRpcConfig::wide_sender_id). The narrow format stays the default so
// figure output is byte-identical to the paper-scale runs.
constexpr uint32_t kRequestIdBytes = 2;
constexpr uint32_t kWideRequestIdBytes = 4;
inline uint32_t request_id_bytes(bool wide) {
  return wide ? kWideRequestIdBytes : kRequestIdBytes;
}
// Recovery mode only (ScaleRpcConfig::recovery_enabled): a per-client
// monotonic request sequence number follows the sender id, and responses
// echo it right after the envelope. The server dedups retried requests by
// (client, slot, seq) — exactly-once execution — and the client discards
// replayed responses whose seq is not the one currently staged.
constexpr uint32_t kRequestSeqBytes = 4;

struct EndpointEntry {
  uint64_t staged_addr = 0;
  uint32_t staged_len = 0;
  uint16_t batch = 0;
  uint16_t epoch = 0;
  uint8_t valid = 0;
};

inline void store_entry(simrdma::HostMemory& mem, uint64_t addr, const EndpointEntry& e) {
  mem.store_pod<uint64_t>(addr, e.staged_addr);
  mem.store_pod<uint32_t>(addr + 8, e.staged_len);
  mem.store_pod<uint16_t>(addr + 12, e.batch);
  mem.store_pod<uint16_t>(addr + 14, e.epoch);
  mem.store_pod<uint8_t>(addr + 16, e.valid);
}

inline EndpointEntry load_entry(const simrdma::HostMemory& mem, uint64_t addr) {
  EndpointEntry e;
  e.staged_addr = mem.load_pod<uint64_t>(addr);
  e.staged_len = mem.load_pod<uint32_t>(addr + 8);
  e.batch = mem.load_pod<uint16_t>(addr + 12);
  e.epoch = mem.load_pod<uint16_t>(addr + 14);
  e.valid = mem.load_pod<uint8_t>(addr + 16);
  return e;
}

// Control word written into the client's control block.
//  * live=0: the client's slice ended (sent at drain; client re-warms).
//  * live=1: cold join (warmup disabled): "your zone is (pool, zone), go".
struct ControlWord {
  uint32_t seq = 0;
  uint8_t live = 0;
  uint8_t pool = 0;
  uint8_t zone = 0;
};

inline void store_control(simrdma::HostMemory& mem, uint64_t addr, const ControlWord& c) {
  mem.store_pod<uint32_t>(addr, c.seq);
  mem.store_pod<uint8_t>(addr + 4, c.live);
  mem.store_pod<uint8_t>(addr + 5, c.pool);
  mem.store_pod<uint8_t>(addr + 6, c.zone);
}

inline ControlWord load_control(const simrdma::HostMemory& mem, uint64_t addr) {
  ControlWord c;
  c.seq = mem.load_pod<uint32_t>(addr);
  c.live = mem.load_pod<uint8_t>(addr + 4);
  c.pool = mem.load_pod<uint8_t>(addr + 5);
  c.zone = mem.load_pod<uint8_t>(addr + 6);
  return c;
}

struct Envelope {
  uint8_t pool = 0;
  uint8_t zone = 0;
  uint32_t seq = 0;
};

inline void write_envelope(uint8_t* p, const Envelope& e) {
  p[0] = e.pool;
  p[1] = e.zone;
  std::memcpy(p + 2, &e.seq, sizeof(e.seq));
}

inline Envelope read_envelope(const uint8_t* p) {
  Envelope e;
  e.pool = p[0];
  e.zone = p[1];
  std::memcpy(&e.seq, p + 2, sizeof(e.seq));
  return e;
}

}  // namespace scalerpc::core

#endif  // SRC_SCALERPC_PROTOCOL_H_
