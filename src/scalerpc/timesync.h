// NTP-like global synchronization (paper Section 4.2, Fig. 14).
//
// When a client talks to several RPCServers at once (ScaleTX), each server
// must switch client groups at the same pace or a client live on one server
// would still be warming up on another. One RPCServer acts as the time
// server; followers periodically exchange sync/resp timestamps
// (T1..T4 on skewed local clocks) and estimate their offset as
// ((T2-T1)+(T3-T4))/2, then align context switches to the time server's
// clock grid.
#ifndef SRC_SCALERPC_TIMESYNC_H_
#define SRC_SCALERPC_TIMESYNC_H_

#include <memory>
#include <vector>

#include "src/simrdma/cluster.h"
#include "src/simrdma/node.h"

namespace scalerpc::core {

class TimeSyncServer {
 public:
  explicit TimeSyncServer(simrdma::Node* node);

  struct Admission {
    int follower_id;
    uint64_t ping_addr;  // where the follower RDMA-writes its sync request
    uint32_t ping_rkey;
  };
  Admission admit(simrdma::QueuePair* follower_qp, uint64_t resp_addr,
                  uint32_t resp_rkey);

  void start();
  void stop();

  simrdma::Node* node() { return node_; }
  // The reference clock all followers converge to.
  Nanos global_now() const { return node_->local_time(); }
  uint64_t pings_served() const { return pings_served_; }

 private:
  struct Follower {
    simrdma::QueuePair* qp = nullptr;
    uint64_t ping_addr = 0;
    uint64_t resp_remote = 0;
    uint32_t resp_rkey = 0;
    uint32_t last_seq = 0;
  };

  sim::Task<void> serve_loop();

  simrdma::Node* node_;
  bool running_ = false;
  std::vector<std::unique_ptr<Follower>> followers_;
  std::unique_ptr<sim::Notification> wake_;
  uint64_t pings_served_ = 0;
};

class TimeSyncFollower {
 public:
  TimeSyncFollower(simrdma::Node* node, TimeSyncServer* server,
                   Nanos period = msec(10));

  sim::Task<void> connect();
  void start();  // spawns the periodic sync loop
  void stop();

  // Estimate of the time server's clock, valid after the first round trip.
  Nanos global_now() const { return node_->local_time() - offset_; }
  Nanos offset() const { return offset_; }
  bool synced() const { return synced_; }
  uint64_t rounds() const { return rounds_; }

 private:
  sim::Task<void> sync_loop();
  sim::Task<void> sync_once();

  simrdma::Node* node_;
  TimeSyncServer* server_;
  Nanos period_;
  bool running_ = false;
  bool synced_ = false;
  simrdma::QueuePair* qp_ = nullptr;
  simrdma::CompletionQueue* cq_ = nullptr;
  uint64_t resp_addr_ = 0;   // local slot the server writes {seq, T2, T3} to
  uint64_t ping_src_ = 0;    // local compose buffer for the ping
  uint64_t ping_remote_ = 0;
  uint32_t ping_rkey_ = 0;
  uint32_t seq_ = 0;
  Nanos offset_ = 0;
  uint64_t rounds_ = 0;
  std::unique_ptr<sim::Notification> wake_;
};

}  // namespace scalerpc::core

#endif  // SRC_SCALERPC_TIMESYNC_H_
