#include "src/scalerpc/server.h"

#include <cstring>

#include "src/metrics/flight.h"
#include "src/metrics/metrics.h"
#include "src/simrdma/nic.h"
#include "src/trace/trace.h"

namespace scalerpc::core {

using simrdma::Opcode;
using simrdma::QpType;
using simrdma::SendWr;

namespace {
// Responses composed per worker rotate through this many blocks; by the
// time a block is reused the NIC has long gathered its payload.
constexpr int kWorkerRingBlocks = 64;
}  // namespace

ScaleRpcServer::ScaleRpcServer(simrdma::Node* node, ScaleRpcConfig cfg)
    : node_(node),
      cfg_(cfg),
      policy_(cfg.group_size, cfg.time_slice, cfg.dynamic_priority) {
  node_->arena_mr();
  max_zones_ = policy_.max_size();
  staging_max_ = static_cast<uint32_t>(cfg_.slots_per_client) * cfg_.block_bytes;
  const uint64_t pool_bytes = static_cast<uint64_t>(max_zones_) * zone_bytes();
  pool_base_[0] = node_->alloc(pool_bytes, 4096);
  pool_base_[1] = node_->alloc(pool_bytes, 4096);
  scratch_base_ =
      node_->alloc(static_cast<uint64_t>(max_zones_) * staging_max_, 4096);
  zone_client_[0].assign(static_cast<size_t>(max_zones_), -1);
  zone_client_[1].assign(static_cast<size_t>(max_zones_), -1);
  sched_cq_ = node_->create_cq();

  for (int w = 0; w < cfg_.server_workers; ++w) {
    worker_wake_.push_back(std::make_unique<sim::Notification>(node_->loop()));
    worker_resp_ring_.push_back(
        node_->alloc(static_cast<uint64_t>(kWorkerRingBlocks) * cfg_.block_bytes, 4096));
    worker_ring_next_.push_back(0);
  }
  legacy_wake_ = std::make_unique<sim::Notification>(node_->loop());

  // Wake the owning worker whenever a DMA write lands in one of a zone's
  // blocks (either pool — zone striping is pool-independent).
  for (int z = 0; z < max_zones_; ++z) {
    sim::Notification* wake = worker_wake_[static_cast<size_t>(z % cfg_.server_workers)].get();
    for (int p = 0; p < 2; ++p) {
      node_->memory().add_watcher(zone_addr(p, z), zone_bytes(), [wake] { wake->notify(); });
    }
  }
}

ScaleRpcServer::Admission ScaleRpcServer::admit(simrdma::QueuePair* client_qp,
                                                uint64_t resp_base, uint64_t control,
                                                uint32_t client_rkey) {
  auto state = std::make_unique<ClientState>();
  state->id = static_cast<int>(clients_.size());
  // Scheduler-side CQ: warmup reads are the only signaled WQEs on this QP.
  state->qp = node_->create_qp(QpType::kRC, sched_cq_, sched_cq_);
  node_->cluster()->connect(state->qp, client_qp);
  state->resp_remote = resp_base;
  state->control_remote = control;
  state->client_rkey = client_rkey;
  state->entry_addr = node_->alloc(64, 64);  // one line per entry
  if (cfg_.recovery_enabled) {
    state->dedup.resize(static_cast<size_t>(cfg_.slots_per_client));
  }
  Admission adm;
  adm.client_id = state->id;
  adm.entry_addr = state->entry_addr;
  adm.entry_rkey = node_->arena_mr()->rkey;
  adm.pool_base[0] = pool_base_[0];
  adm.pool_base[1] = pool_base_[1];
  adm.pool_rkey = node_->arena_mr()->rkey;
  adm.zone_bytes = zone_bytes();
  pending_clients_.push_back(state->id);
  clients_.push_back(std::move(state));
  return adm;
}

bool ScaleRpcServer::readmit(int client_id, simrdma::QueuePair* client_qp) {
  SCALERPC_CHECK(client_id >= 0 &&
                 static_cast<size_t>(client_id) < clients_.size());
  ClientState& c = *clients_[static_cast<size_t>(client_id)];
  if (c.qp != nullptr) {
    // Tear down the server half of the old connection (pending WRs flush)
    // and return the slot to the pool.
    node_->destroy_qp(c.qp);
    c.qp = nullptr;
  }
  if (node_->is_down()) {
    return false;  // crashed: the client retries after its next timeout
  }
  c.qp = node_->create_qp(QpType::kRC, sched_cq_, sched_cq_);
  node_->cluster()->connect(c.qp, client_qp);
  if (c.parked) {
    // Rejoin after an evict: re-enter the grouping at the next scheduler
    // iteration, same as a first-time admission.
    c.parked = false;
    pending_clients_.push_back(c.id);
  }
  readmits_++;
  return true;
}

void ScaleRpcServer::evict(int client_id) {
  SCALERPC_CHECK(client_id >= 0 &&
                 static_cast<size_t>(client_id) < clients_.size());
  ClientState& c = *clients_[static_cast<size_t>(client_id)];
  SCALERPC_CHECK_MSG(c.qp != nullptr && !c.parked, "evict of a parked client");
  node_->destroy_qp(c.qp);
  c.qp = nullptr;
  c.parked = true;
  membership_dirty_ = true;
  evictions_++;
}

size_t ScaleRpcServer::connected_clients() const {
  size_t n = 0;
  for (const auto& c : clients_) {
    n += c->qp != nullptr ? 1 : 0;
  }
  return n;
}

bool ScaleRpcServer::parse_request_header(rpc::MessageView& msg, uint32_t* sender,
                                          uint32_t* rseq) const {
  const size_t id_bytes = request_id_bytes(cfg_.wide_sender_id);
  const size_t hdr = id_bytes + (cfg_.wire_seq() ? kRequestSeqBytes : 0);
  if (msg.data.size() < hdr) {
    return false;
  }
  *sender = 0;
  std::memcpy(sender, msg.data.data(), id_bytes);
  if (*sender >= clients_.size()) {
    return false;
  }
  *rseq = 0;
  if (cfg_.wire_seq()) {
    std::memcpy(rseq, msg.data.data() + id_bytes, sizeof(*rseq));
  }
  msg.data.erase(msg.data.begin(), msg.data.begin() + static_cast<long>(hdr));
  return true;
}

int ScaleRpcServer::group_of(int client_id) const {
  if (client_id < 0 || static_cast<size_t>(client_id) >= client_group_.size()) {
    return -1;
  }
  return client_group_[static_cast<size_t>(client_id)];
}

void ScaleRpcServer::count_group_request(int client_id, size_t bytes) {
  if (metrics::Registry* m = metrics::registry()) {
    const int grp = group_of(client_id);
    if (grp >= 0) {
      m->add(metrics::kGroupRequests, static_cast<uint32_t>(grp), 1);
      m->add(metrics::kGroupBytes, static_cast<uint32_t>(grp), bytes);
    }
  }
}

int ScaleRpcServer::dedup_disposition(ClientState& c, int slot, uint32_t seq) {
  if (slot < 0 || static_cast<size_t>(slot) >= c.dedup.size()) {
    return 2;
  }
  SlotSeen& d = c.dedup[static_cast<size_t>(slot)];
  if (seq > d.seen_seq) {
    d.seen_seq = seq;
    return 0;
  }
  return seq == d.resp_seq ? 1 : 2;
}

void ScaleRpcServer::set_time_slice(Nanos slice) {
  SCALERPC_CHECK(!running_);
  cfg_.time_slice = slice;
  policy_.set_default_slice(slice);
}

void ScaleRpcServer::set_warmup_enabled(bool enabled) {
  SCALERPC_CHECK(!running_);
  cfg_.warmup_enabled = enabled;
}

void ScaleRpcServer::start() {
  SCALERPC_CHECK(!running_);
  running_ = true;
  for (int w = 0; w < cfg_.server_workers; ++w) {
    sim::spawn(node_->loop(), worker(w));
  }
  sim::spawn(node_->loop(), legacy_executor());
  sim::spawn(node_->loop(), scheduler_loop());
}

void ScaleRpcServer::stop() {
  running_ = false;
  for (auto& wake : worker_wake_) {
    wake->notify();
  }
  legacy_wake_->notify();
}

void ScaleRpcServer::integrate_pending_and_rebuild() {
  const bool have_pending = !pending_clients_.empty();
  const bool due_rebuild =
      cfg_.dynamic_priority && rotations_since_rebuild_ >= cfg_.rebuild_every_rotations;
  if (!have_pending && !due_rebuild && !membership_dirty_ && !groups_.empty()) {
    return;
  }
  std::vector<int> joiners;
  joiners.swap(pending_clients_);
  membership_dirty_ = false;
  // Evicted (parked) clients are out of the rotation until they rejoin.
  std::vector<ClientStats> stats;
  stats.reserve(clients_.size());
  for (const auto& c : clients_) {
    if (c->qp == nullptr) {
      continue;
    }
    stats.push_back(ClientStats{c->id, c->window_reqs, c->window_bytes});
  }
  if (groups_.empty() || due_rebuild) {
    groups_ = policy_.rebuild(stats);
    rotations_since_rebuild_ = 0;
    for (auto& c : clients_) {
      c->window_reqs = 0;
      c->window_bytes = 0;
    }
  } else if (cfg_.warmup_join_groups) {
    // Elastic join: keep established groups' membership (minus departed
    // members) and append the joiners as fresh trailing groups, so a setup
    // storm warms up behind the rotation instead of re-chunking the fleet
    // mid-slice.
    std::vector<char> grouped(clients_.size(), 0);
    std::vector<Group> kept;
    kept.reserve(groups_.size());
    for (Group& g : groups_) {
      Group ng;
      ng.slice = g.slice;
      for (int m : g.members) {
        if (clients_[static_cast<size_t>(m)]->qp != nullptr) {
          ng.members.push_back(m);
          grouped[static_cast<size_t>(m)] = 1;
        }
      }
      if (!ng.members.empty()) {
        kept.push_back(std::move(ng));
      }
    }
    Group open;
    // Top up the trailing group first if it is undersized: a storm admits
    // a few clients per scheduler iteration, and opening a fresh group for
    // every trickle would balloon the rotation with tiny groups (hundreds
    // of near-empty slices at storm scale).
    if (!kept.empty() &&
        static_cast<int>(kept.back().members.size()) < policy_.group_size()) {
      open = std::move(kept.back());
      kept.pop_back();
    }
    for (int j : joiners) {
      if (grouped[static_cast<size_t>(j)] != 0 ||
          clients_[static_cast<size_t>(j)]->qp == nullptr) {
        continue;  // rejoined into a surviving group slot, or gone again
      }
      grouped[static_cast<size_t>(j)] = 1;
      open.members.push_back(j);
      if (static_cast<int>(open.members.size()) >= policy_.group_size()) {
        if (open.slice <= 0) {
          open.slice = policy_.default_slice();
        }
        kept.push_back(std::move(open));
        open = Group{};
      }
    }
    if (!open.members.empty()) {
      if (open.slice <= 0) {
        open.slice = policy_.default_slice();
      }
      kept.push_back(std::move(open));
    }
    groups_ = std::move(kept);
  } else {
    // Pending clients only: append to the last group or open a new one.
    std::vector<int> ids;
    ids.reserve(stats.size());
    for (const auto& s : stats) {
      ids.push_back(s.client_id);
    }
    groups_ = policy_.build_static(ids);
  }
  cursor_ = cursor_ < groups_.size() ? cursor_ : 0;
  client_group_.assign(clients_.size(), -1);
  for (size_t gi = 0; gi < groups_.size(); ++gi) {
    for (int m : groups_[gi].members) {
      client_group_[static_cast<size_t>(m)] = static_cast<int>(gi);
    }
  }
}

sim::Task<void> ScaleRpcServer::sweep_and_remap(size_t group_idx, int pool_idx) {
  auto& loop = node_->loop();
  auto& mem = node_->memory();
  const Group& g = groups_[group_idx];
  auto& zmap = zone_client_[pool_idx];

  // Late sweep: requests that were in flight when this pool's previous
  // group was drained may have landed after the switch. Serve them now
  // (answered to their sender with a context-switch flag via respond's
  // not-live rule) before the pool is reused.
  Nanos cost = 0;
  if (pool_idx != active_pool_) {
    for (int z = 0; z < max_zones_; ++z) {
      if (zmap[static_cast<size_t>(z)] < 0) {
        continue;
      }
      for (int s = 0; s < cfg_.slots_per_client; ++s) {
        const uint64_t block =
            zone_addr(pool_idx, z) + static_cast<uint64_t>(s) * cfg_.block_bytes;
        cost += node_->read_cost(block + cfg_.block_bytes - 1, 1);
        auto msg = rpc::decode_block(mem, block, cfg_.block_bytes);
        if (!msg.has_value()) {
          continue;
        }
        rpc::clear_block(mem, block, cfg_.block_bytes);
        uint32_t sender = 0;
        uint32_t rseq = 0;
        if (!parse_request_header(*msg, &sender, &rseq)) {
          continue;
        }
        ClientState& sc = *clients_[sender];
        const int resp_slot = msg->flags;
        if (cfg_.recovery_enabled) {
          const int verdict = dedup_disposition(sc, resp_slot, rseq);
          if (verdict != 0) {
            dup_rpcs_++;
            if (verdict == 1) {
              const SlotSeen& cache = sc.dedup[static_cast<size_t>(resp_slot)];
              co_await loop.delay(cost);
              cost = 0;
              co_await respond(/*worker_index=*/0, sc, resp_slot, cache.op,
                               cache.flags, cache.response, rseq);
            }
            continue;
          }
        }
        rpc::RequestContext ctx{static_cast<int>(sender), msg->op};
        rpc::HandlerResult result = handlers_.dispatch(ctx, msg->data);
        cost += cfg_.handler_base_ns + result.cpu_ns;
        requests_served_++;
        late_sweep_serves_++;
        count_group_request(sender, msg->data.size());
        if (cfg_.recovery_enabled) {
          SlotSeen& cache = sc.dedup[static_cast<size_t>(resp_slot)];
          cache.resp_seq = rseq;
          cache.op = msg->op;
          cache.flags = result.flags;
          cache.response = result.response;
        }
        co_await loop.delay(cost);
        cost = 0;
        co_await respond(/*worker_index=*/0, sc, resp_slot, msg->op,
                         result.flags, result.response, rseq);
      }
    }
  }

  if (pool_idx == active_pool_) {
    // Live pool (single-group mode): never disturb zones that are already
    // mapped — clients are writing into them right now. Only place members
    // that have no zone yet.
    for (int m : g.members) {
      bool mapped = false;
      for (int owner : zmap) {
        mapped = mapped || owner == m;
      }
      if (mapped) {
        continue;
      }
      for (size_t z = 0; z < zmap.size(); ++z) {
        if (zmap[z] >= 0) {
          continue;
        }
        zmap[z] = m;
        for (int s = 0; s < cfg_.slots_per_client; ++s) {
          const uint64_t block = zone_addr(pool_idx, static_cast<int>(z)) +
                                 static_cast<uint64_t>(s) * cfg_.block_bytes;
          rpc::clear_block(mem, block, cfg_.block_bytes);
          cost += node_->write_cost(block + cfg_.block_bytes - 1, 1);
        }
        break;
      }
    }
    co_await loop.delay(cost);
    co_return;
  }

  // Idle pool: (re)map all zones to the incoming group and clear stale
  // slots.
  std::fill(zmap.begin(), zmap.end(), -1);
  for (size_t z = 0; z < g.members.size(); ++z) {
    zmap[z] = g.members[z];
    for (int s = 0; s < cfg_.slots_per_client; ++s) {
      const uint64_t block = zone_addr(pool_idx, static_cast<int>(z)) +
                             static_cast<uint64_t>(s) * cfg_.block_bytes;
      rpc::clear_block(mem, block, cfg_.block_bytes);
      cost += node_->write_cost(block + cfg_.block_bytes - 1, 1);
    }
  }
  co_await loop.delay(cost);
}

sim::Task<void> ScaleRpcServer::fetch_group(size_t group_idx, int pool_idx, bool* done,
                                            Nanos deadline) {
  auto& loop = node_->loop();
  auto& mem = node_->memory();
  const Group& g = groups_[group_idx];
  co_await sweep_and_remap(group_idx, pool_idx);

  // The zone a member's requests land in (set by sweep_and_remap; with
  // incremental live-pool mapping it is not necessarily the member index).
  auto zone_of = [this, pool_idx](int member) -> int {
    const auto& zm = zone_client_[pool_idx];
    for (size_t z = 0; z < zm.size(); ++z) {
      if (zm[z] == member) {
        return static_cast<int>(z);
      }
    }
    return -1;
  };

  std::vector<bool> fetched(g.members.size(), false);
  while (running_ && loop.now() < deadline) {
    // Scan endpoint entries; issue one RDMA read per fresh batch.
    int posted = 0;
    Nanos cost = 0;
    for (size_t i = 0; i < g.members.size(); ++i) {
      if (fetched[i]) {
        continue;
      }
      const int z = zone_of(g.members[i]);
      if (z < 0) {
        fetched[i] = true;  // no zone available: skip this round
        continue;
      }
      ClientState& c = *clients_[static_cast<size_t>(g.members[i])];
      if (c.qp == nullptr) {
        fetched[i] = true;  // evicted mid-rotation: regrouped next switch
        continue;
      }
      cost += node_->read_cost(c.entry_addr, kEntryBytes);
      const EndpointEntry e = load_entry(mem, c.entry_addr);
      if (e.valid != kEntryValid || e.epoch == c.last_entry_epoch || e.batch == 0) {
        continue;
      }
      SCALERPC_CHECK(e.staged_len <= staging_max_);
      c.last_entry_epoch = e.epoch;
      fetched[i] = true;
      SendWr wr;
      wr.wr_id = static_cast<uint64_t>(z);
      wr.opcode = Opcode::kRead;
      wr.local_addr = scratch_base_ + static_cast<uint64_t>(z) * staging_max_;
      wr.length = e.staged_len;
      wr.remote_addr = e.staged_addr;
      wr.rkey = c.client_rkey;
      wr.signaled = true;
      co_await loop.delay(cost);
      cost = 0;
      if (c.qp == nullptr) {
        continue;  // evicted during the read-cost delay
      }
      co_await c.qp->post_send(wr);
      posted++;
      warmup_fetches_++;
    }
    if (cost > 0) {
      co_await loop.delay(cost);
    }
    // Unpack completed reads into the pool's zones.
    for (int k = 0; k < posted; ++k) {
      const simrdma::Completion comp = co_await sched_cq_->next();
      if (comp.status != simrdma::WcStatus::kSuccess) {
        // Fault mode: a flushed or retry-exhausted warmup read (QP error,
        // crash, readmit teardown). Nothing landed in scratch; the client
        // re-posts its entry with a fresh epoch after its timeout.
        continue;
      }
      const auto z = static_cast<size_t>(comp.wr_id);
      uint64_t off = scratch_base_ + z * staging_max_;
      uint32_t remaining = comp.byte_len;
      Nanos unpack = node_->read_cost(off, comp.byte_len);
      while (remaining > 0) {
        auto rec = rpc::decode_staged(mem, off, remaining);
        if (!rec.has_value()) {
          break;
        }
        const auto& [msg, used] = *rec;
        const int slot = msg.flags;  // request flags carry the batch slot
        if (slot < cfg_.slots_per_client) {
          const uint64_t block = zone_addr(pool_idx, static_cast<int>(z)) +
                                 static_cast<uint64_t>(slot) * cfg_.block_bytes;
          rpc::place_in_block(mem, block, cfg_.block_bytes, msg);
          unpack += node_->write_cost(
              block + cfg_.block_bytes - msg.total_bytes(), msg.total_bytes());
        }
        off += used;
        remaining -= used;
      }
      co_await loop.delay(unpack);
      // If this pool is already live (single-group mode), wake the worker.
      if (pool_idx == active_pool_) {
        worker_wake_[z % static_cast<size_t>(cfg_.server_workers)]->notify();
      }
    }
    bool all = true;
    for (size_t i = 0; i < g.members.size(); ++i) {
      all = all && fetched[i];
    }
    if (all) {
      break;
    }
    co_await loop.delay(usec(10));  // poll entries again shortly
  }
  *done = true;
}

sim::Task<void> ScaleRpcServer::scheduler_loop() {
  auto& loop = node_->loop();

  while (running_) {
    integrate_pending_and_rebuild();
    if (groups_.empty()) {
      co_await loop.delay(cfg_.time_slice);
      continue;
    }

    const Group& g = groups_[cursor_];
    const size_t served_idx = cursor_;
    const bool multi = groups_.size() > 1;
    const size_t next_idx = (cursor_ + 1) % groups_.size();

    // Slice length; with a synced clock, stretch/shrink to land on the
    // shared grid so all RPCServers switch in lockstep (Section 4.2).
    Nanos slice = g.slice;
    if (global_now_ && multi) {
      const Nanos now_g = global_now_();
      const Nanos target = ((now_g / cfg_.time_slice) + 1) * cfg_.time_slice;
      slice = target - now_g;
      if (slice < cfg_.time_slice / 4) {
        slice += cfg_.time_slice;
      }
    }

    bool fetch_done = false;
    const Nanos fetch_deadline = loop.now() + slice - 2 * cfg_.drain_grace;
    if (cfg_.warmup_enabled) {
      // Multi-group: warm the *next* group into the idle pool. Single
      // group: pick up newly staged batches straight into the live pool.
      const int target_pool = multi ? 1 - active_pool_ : active_pool_;
      const size_t target_group = multi ? next_idx : cursor_;
      sim::spawn(loop, fetch_group(target_group, target_pool, &fetch_done, fetch_deadline));
    }

    const Nanos serve = slice > 2 * cfg_.drain_grace ? slice - 2 * cfg_.drain_grace : slice;
    co_await loop.delay(serve);

    if (!multi) {
      continue;  // one group: no context switch, serve forever
    }

    // --- Context switch (Section 3.3) ---
    draining_ = true;  // workers piggyback kFlagContextSwitch on responses
    co_await loop.delay(cfg_.drain_grace);

    // Explicit notifications for members without in-flight responses.
    for (int cid : g.members) {
      ClientState& c = *clients_[static_cast<size_t>(cid)];
      if (c.qp == nullptr) {
        continue;  // evicted mid-slice: nothing to notify
      }
      // Compose the control word in a scratch line and write it inline.
      const uint64_t src = c.entry_addr + 32;  // spare half of the entry line
      store_control(node_->memory(), src, ControlWord{switch_seq_ + 1, 0, 0, 0});
      SendWr wr;
      wr.opcode = Opcode::kWrite;
      wr.local_addr = src;
      wr.length = kControlBytes;
      wr.remote_addr = c.control_remote;
      wr.rkey = c.client_rkey;
      wr.signaled = false;
      wr.inline_data = true;
      co_await c.qp->post_send(wr);
      notify_writes_++;
    }
    co_await loop.delay(cfg_.drain_grace);
    draining_ = false;

    if (cfg_.warmup_enabled) {
      while (!fetch_done) {
        co_await loop.delay(usec(1));
      }
    } else {
      // Cold switch: sweep stragglers, then map the incoming group onto
      // the idle pool.
      co_await sweep_and_remap(next_idx, 1 - active_pool_);
    }

    active_pool_ = 1 - active_pool_;
    cursor_ = next_idx;
    switch_seq_++;
    context_switches_++;
    if (metrics::Registry* m = metrics::registry()) {
      // The incoming group is switched in; the NIC qp-cache activity since
      // the previous switch is attributed to the group that was live.
      m->add(metrics::kGroupSwitchIns, static_cast<uint32_t>(cursor_), 1);
      const simrdma::NicCounters& nc = node_->nic().counters();
      m->add(metrics::kGroupCacheHits, static_cast<uint32_t>(served_idx),
             nc.qp_cache_hits - last_cache_hits_);
      m->add(metrics::kGroupCacheMisses, static_cast<uint32_t>(served_idx),
             nc.qp_cache_misses - last_cache_misses_);
      last_cache_hits_ = nc.qp_cache_hits;
      last_cache_misses_ = nc.qp_cache_misses;
    }
    if (cursor_ == 0) {
      rotations_since_rebuild_++;
    }
    for (auto& wake : worker_wake_) {
      wake->notify();
    }

    if (!cfg_.warmup_enabled) {
      // Cold join: tell the incoming members where their zone is so they
      // can post directly (no pre-fetched requests to respond through).
      const Group& ng = groups_[cursor_];
      for (size_t z = 0; z < ng.members.size(); ++z) {
        ClientState& c = *clients_[static_cast<size_t>(ng.members[z])];
        if (c.qp == nullptr) {
          continue;  // evicted before its cold-join notification
        }
        const uint64_t src = c.entry_addr + 40;
        store_control(node_->memory(), src,
                      ControlWord{switch_seq_, 1, static_cast<uint8_t>(active_pool_),
                                  static_cast<uint8_t>(z)});
        SendWr wr;
        wr.opcode = Opcode::kWrite;
        wr.local_addr = src;
        wr.length = kControlBytes;
        wr.remote_addr = c.control_remote;
        wr.rkey = c.client_rkey;
        wr.signaled = false;
        wr.inline_data = true;
        co_await c.qp->post_send(wr);
        notify_writes_++;
      }
    }
  }
}

sim::Task<void> ScaleRpcServer::respond(int worker_index, ClientState& c, int slot,
                                        uint8_t op, uint8_t extra_flags,
                                        const rpc::Bytes& payload, uint32_t rseq) {
  if (c.qp == nullptr) {
    co_return;  // evicted while this request was in flight (late sweep)
  }
  auto& mem = node_->memory();
  const auto wi = static_cast<size_t>(worker_index);
  const uint64_t src = worker_resp_ring_[wi] +
                       static_cast<uint64_t>(worker_ring_next_[wi]) * cfg_.block_bytes;
  worker_ring_next_[wi] = (worker_ring_next_[wi] + 1) % kWorkerRingBlocks;

  // Envelope (+ echoed request seq in recovery mode) + payload as the
  // response data field. The envelope always describes the *active*
  // mapping; if this client is no longer in it (its slice just ended —
  // legacy responses can straggle), tell it to re-enter the warmup path
  // instead of handing it a stale zone.
  const uint32_t prefix =
      kEnvelopeBytes + (cfg_.wire_seq() ? kRequestSeqBytes : 0);
  rpc::Bytes data(prefix + payload.size());
  Envelope env;
  env.pool = static_cast<uint8_t>(active_pool_);
  env.seq = switch_seq_;
  bool live = false;
  for (size_t z = 0; z < zone_client_[active_pool_].size(); ++z) {
    if (zone_client_[active_pool_][z] == c.id) {
      env.zone = static_cast<uint8_t>(z);
      live = true;
      break;
    }
  }
  write_envelope(data.data(), env);
  if (cfg_.wire_seq()) {
    std::memcpy(data.data() + kEnvelopeBytes, &rseq, sizeof(rseq));
  }
  if (!payload.empty()) {
    std::memcpy(data.data() + prefix, payload.data(), payload.size());
  }
  uint8_t flags = extra_flags;
  if (draining_ || !live) {
    flags |= rpc::kFlagContextSwitch;
  }
  const uint32_t total = rpc::encode_at(mem, src, op, flags, data);
  co_await node_->loop().delay(node_->write_cost(src, total));

  SendWr wr;
  wr.opcode = Opcode::kWrite;
  wr.local_addr = src;
  wr.length = total;
  wr.remote_addr = rpc::aligned_target(
      c.resp_remote + static_cast<uint64_t>(slot) * cfg_.block_bytes, cfg_.block_bytes,
      total);
  wr.rkey = c.client_rkey;
  wr.signaled = false;
  wr.inline_data =
      cfg_.inline_requests && total <= node_->params().max_inline_bytes;
  co_await c.qp->post_send(wr);
}

sim::Task<void> ScaleRpcServer::worker(int index) {
  auto& loop = node_->loop();
  auto& mem = node_->memory();
  sim::Notification* wake = worker_wake_[static_cast<size_t>(index)].get();

  while (running_) {
    int served = 0;
    Nanos cost = 0;
    const int pool = active_pool_;
    for (int z = index; z < max_zones_; z += cfg_.server_workers) {
      const int cid = zone_client_[pool][static_cast<size_t>(z)];
      if (cid < 0) {
        continue;
      }
      for (int slot = 0; slot < cfg_.slots_per_client; ++slot) {
        const uint64_t block =
            zone_addr(pool, z) + static_cast<uint64_t>(slot) * cfg_.block_bytes;
        cost += node_->read_cost(block + cfg_.block_bytes - 1, 1);
        auto msg = rpc::decode_block(mem, block, cfg_.block_bytes);
        if (!msg.has_value()) {
          continue;
        }
        cost += node_->read_cost(block + cfg_.block_bytes - msg->total_bytes(),
                                 msg->total_bytes());
        rpc::clear_block(mem, block, cfg_.block_bytes);
        cost += node_->write_cost(block + cfg_.block_bytes - 1, 1);

        // The request's data starts with the sender id; a straggler write
        // from the zone's previous owner is answered to that owner.
        uint32_t sender = 0;
        uint32_t rseq = 0;
        if (!parse_request_header(*msg, &sender, &rseq)) {
          continue;
        }
        ClientState& src_client = *clients_[sender];

        src_client.window_reqs++;
        src_client.window_bytes += msg->data.size();
        count_group_request(sender, msg->data.size());
        if (cfg_.spans_enabled) {
          if (trace::Tracer* t = trace::tracer(trace::kRpc)) {
            t->instant(trace::kRpc, "rpc.exec", loop.now(), 2000 + sender,
                       "client", sender, "seq", rseq);
          }
          if (metrics::FlightRecorder* f = metrics::flight()) {
            f->note("rpc.exec", loop.now(), node_->id(), sender, rseq);
          }
        }
        const int resp_slot = msg->flags;  // request flags carry the slot

        if (cfg_.recovery_enabled) {
          // A retried request must not execute twice: replay the cached
          // response if its first execution completed, drop it silently if
          // that execution is still in flight (worker suspension or legacy
          // queue) — the client's next retry hits the cache.
          const int verdict = dedup_disposition(src_client, resp_slot, rseq);
          if (verdict != 0) {
            dup_rpcs_++;
            served++;
            if (verdict == 1) {
              const SlotSeen& cache =
                  src_client.dedup[static_cast<size_t>(resp_slot)];
              co_await loop.delay(cost);
              cost = 0;
              co_await respond(index, src_client, resp_slot, cache.op,
                               cache.flags, cache.response, rseq);
            }
            continue;
          }
        }

        if (long_ops_.count(msg->op) != 0) {
          // Legacy mode: divert to the dedicated executor.
          legacy_queue_.push_back(
              LegacyJob{static_cast<int>(sender), resp_slot, rseq, std::move(*msg)});
          legacy_wake_->notify();
          served++;
          continue;
        }

        rpc::RequestContext ctx{static_cast<int>(sender), msg->op};
        rpc::HandlerResult result = handlers_.dispatch(ctx, msg->data);
        cost += cfg_.handler_base_ns + result.cpu_ns;
        requests_served_++;
        if (result.cpu_ns > cfg_.long_rpc_threshold_ns) {
          long_ops_.insert(msg->op);
        }
        if (cfg_.recovery_enabled) {
          SlotSeen& cache = src_client.dedup[static_cast<size_t>(resp_slot)];
          cache.resp_seq = rseq;
          cache.op = msg->op;
          cache.flags = result.flags;
          cache.response = result.response;
        }
        co_await loop.delay(cost);
        cost = 0;
        co_await respond(index, src_client, resp_slot, msg->op, result.flags,
                         result.response, rseq);
        served++;
      }
    }
    if (cost > 0) {
      co_await loop.delay(cost);
    }
    if (served == 0 && running_) {
      co_await wake->wait();
    }
  }
}

sim::Task<void> ScaleRpcServer::legacy_executor() {
  auto& loop = node_->loop();
  while (running_) {
    if (legacy_queue_.empty()) {
      co_await legacy_wake_->wait();
      continue;
    }
    LegacyJob job = std::move(legacy_queue_.front());
    legacy_queue_.pop_front();
    ClientState& c = *clients_[static_cast<size_t>(job.client_id)];
    rpc::RequestContext ctx{job.client_id, job.msg.op};
    rpc::HandlerResult result = handlers_.dispatch(ctx, job.msg.data);
    co_await loop.delay(cfg_.handler_base_ns + result.cpu_ns);
    requests_served_++;
    legacy_executions_++;
    count_group_request(job.client_id, job.msg.data.size());
    if (cfg_.recovery_enabled && job.slot >= 0 &&
        static_cast<size_t>(job.slot) < c.dedup.size()) {
      SlotSeen& cache = c.dedup[static_cast<size_t>(job.slot)];
      cache.resp_seq = job.seq;
      cache.op = job.msg.op;
      cache.flags = result.flags;
      cache.response = result.response;
    }
    co_await respond(/*worker_index=*/0, c, job.slot, job.msg.op, result.flags,
                     result.response, job.seq);
  }
}

}  // namespace scalerpc::core
