// ScaleRPC configuration knobs (paper Section 3).
#ifndef SRC_SCALERPC_CONFIG_H_
#define SRC_SCALERPC_CONFIG_H_

#include "src/baselines/common.h"

namespace scalerpc::core {

struct ScaleRpcConfig : transport::TransportConfig {
  // Connection grouping (Section 3.2). Defaults follow the evaluation
  // setup: group size 40, time slice 100us.
  int group_size = 40;
  Nanos time_slice = usec(100);

  // Priority-based scheduling (Section 3.2): when true the scheduler
  // periodically re-partitions clients by priority P_i = T_i / S_i; when
  // false ("Static" in Fig. 12) the initial grouping and slice are fixed.
  bool dynamic_priority = true;
  // Rebuild cadence, counted in completed rotations over all groups.
  int rebuild_every_rotations = 4;

  // Requests warmup (Section 3.3). Disabling it is an ablation: the next
  // group starts cold and the server idles at each context switch.
  bool warmup_enabled = true;

  // Elastic admission (docs/control_plane.md): when true, clients admitted
  // mid-run enter fresh trailing "warmup" groups behind the rotation
  // instead of triggering a static re-chunk of the whole fleet — a setup
  // storm cannot reshuffle established groups' membership mid-slice. Off
  // by default so pre-storm workloads (and every figure bench) keep the
  // original join behavior byte-for-byte.
  bool warmup_join_groups = false;

  // Context-switch drain: time the server keeps serving a group after its
  // slice expires, so in-flight direct writes are not lost (two phases: one
  // before and one after the notification writes).
  Nanos drain_grace = usec(3);

  // Wire sender-id width (src/scalerpc/protocol.h). The default 2-byte id
  // addresses at most 65535 clients; the harness flips this for larger
  // fleets (docs/scaling.md), costing 2 extra bytes per request. Both
  // sides must agree — the testbed owns the decision.
  bool wide_sender_id = false;

  // Clients re-post their warmup endpoint entry if no response arrives
  // within this window (covers rare lost-write races at switch time).
  Nanos client_timeout = msec(5);

  // Long-running RPC cutoff (Section 3.5): once a handler for an op is
  // observed to exceed this, later calls of that op run on the legacy
  // executor thread outside the sliced fast path.
  Nanos long_rpc_threshold_ns = usec(20);

  // --- Fault recovery (docs/faults.md) ---
  // Off by default: the lossless fast path carries no per-request sequence
  // numbers and performs no dedup bookkeeping, so the wire format and
  // timing of fault-free runs are unchanged. The harness enables it when a
  // fault plan is attached to the fabric.
  bool recovery_enabled = false;
  // Client timeout back-off: each successive timeout of the same flush
  // multiplies the wait window, capped at client_timeout_max.
  double timeout_backoff = 2.0;
  Nanos client_timeout_max = msec(20);
  // A flush that times out more than this many times aborts (SCALERPC_CHECK)
  // — the invariant "every RPC eventually succeeds exactly once" failed.
  int max_rpc_retries = 64;
  // After this many consecutive timeouts the client assumes the connection
  // (not the fabric) is sick and tears down / re-establishes its QP.
  int reconnect_after_timeouts = 3;
  // Modeled control-plane cost of a QP teardown + re-connect.
  Nanos reconnect_delay = usec(10);

  // --- Per-RPC causal spans (docs/tracing.md) ---
  // Off by default: client-side span latency (metrics histograms, Perfetto
  // 'X' events) needs no wire change — responses land in the slot they were
  // staged from — so it keys off the installed metrics/trace sessions.
  // Turning this on additionally carries the 4-byte request seq on the wire
  // (even without recovery mode) so server-side executions can be
  // correlated with client spans by (client, seq).
  bool spans_enabled = false;
  // True when the per-request sequence number travels on the wire; dedup
  // and replay-discard semantics stay recovery-gated.
  bool wire_seq() const { return recovery_enabled || spans_enabled; }
};

}  // namespace scalerpc::core

#endif  // SRC_SCALERPC_CONFIG_H_
