#include "src/scalerpc/scheduler.h"

#include <algorithm>

#include "src/common/logging.h"

namespace scalerpc::core {

std::vector<Group> GroupScheduler::chunk(const std::vector<int>& ids, int size,
                                         Nanos slice) const {
  std::vector<Group> groups;
  SCALERPC_CHECK(size > 0);
  for (size_t i = 0; i < ids.size(); i += static_cast<size_t>(size)) {
    Group g;
    const size_t end = std::min(ids.size(), i + static_cast<size_t>(size));
    g.members.assign(ids.begin() + static_cast<long>(i), ids.begin() + static_cast<long>(end));
    g.slice = slice;
    groups.push_back(std::move(g));
  }
  // Merge a trailing runt group (below the legal band) into its
  // predecessor when the merged size stays legal.
  if (groups.size() >= 2) {
    Group& last = groups.back();
    Group& prev = groups[groups.size() - 2];
    if (static_cast<int>(last.members.size()) < min_size() &&
        static_cast<int>(prev.members.size() + last.members.size()) <= max_size()) {
      prev.members.insert(prev.members.end(), last.members.begin(), last.members.end());
      groups.pop_back();
    }
  }
  return groups;
}

std::vector<Group> GroupScheduler::build_static(const std::vector<int>& client_ids) const {
  return chunk(client_ids, group_size_, slice_);
}

std::vector<Group> GroupScheduler::rebuild(const std::vector<ClientStats>& stats) const {
  std::vector<int> ids;
  ids.reserve(stats.size());
  if (!dynamic_) {
    for (const auto& s : stats) {
      ids.push_back(s.client_id);
    }
    return build_static(ids);
  }

  // Few enough clients for one legal group: no point fragmenting.
  if (static_cast<int>(stats.size()) <= max_size()) {
    for (const auto& s : stats) {
      ids.push_back(s.client_id);
    }
    return chunk(ids, std::max<int>(1, static_cast<int>(ids.size())), slice_);
  }

  // Sort by priority, busiest first.
  std::vector<ClientStats> sorted = stats;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const ClientStats& a, const ClientStats& b) {
                     return a.priority() > b.priority();
                   });

  // Tercile policy: the busiest third go into small groups with stretched
  // slices; the idlest third into large groups with shrunk slices. All
  // sizes stay within the legal band by construction.
  const size_t n = sorted.size();
  const size_t hi_end = n / 3;
  const size_t mid_end = (2 * n) / 3;
  std::vector<int> hi;
  std::vector<int> mid;
  std::vector<int> lo;
  for (size_t i = 0; i < n; ++i) {
    if (i < hi_end) {
      hi.push_back(sorted[i].client_id);
    } else if (i < mid_end) {
      mid.push_back(sorted[i].client_id);
    } else {
      lo.push_back(sorted[i].client_id);
    }
  }

  std::vector<Group> groups;
  auto append = [&groups](std::vector<Group>&& gs) {
    for (auto& g : gs) {
      if (!g.members.empty()) {
        groups.push_back(std::move(g));
      }
    }
  };
  append(chunk(hi, std::max(1, 3 * group_size_ / 4), 2 * slice_));
  append(chunk(mid, group_size_, slice_));
  append(chunk(lo, max_size(), slice_ / 2));

  // Coalesce undersized neighbours (tercile boundaries can leave runts).
  std::vector<Group> merged;
  for (auto& g : groups) {
    if (!merged.empty() &&
        static_cast<int>(merged.back().members.size()) < min_size() &&
        static_cast<int>(merged.back().members.size() + g.members.size()) <= max_size()) {
      merged.back().members.insert(merged.back().members.end(), g.members.begin(),
                                   g.members.end());
    } else {
      merged.push_back(std::move(g));
    }
  }
  return merged;
}

}  // namespace scalerpc::core
