#include "src/scalerpc/timesync.h"

namespace scalerpc::core {

using simrdma::Opcode;
using simrdma::QpType;
using simrdma::SendWr;

namespace {
// Ping slot: | seq:4 | valid:4 |. Response slot: | seq:4 | pad:4 | T2:8 | T3:8 |.
constexpr uint32_t kPingBytes = 8;
constexpr uint32_t kRespBytes = 24;
constexpr uint32_t kSlotValid = 0x51Cu;
constexpr Nanos kServerTurnaround = 200;  // timestamping + compose cost
}  // namespace

TimeSyncServer::TimeSyncServer(simrdma::Node* node) : node_(node) {
  node_->arena_mr();
  wake_ = std::make_unique<sim::Notification>(node_->loop());
}

TimeSyncServer::Admission TimeSyncServer::admit(simrdma::QueuePair* follower_qp,
                                                uint64_t resp_addr, uint32_t resp_rkey) {
  auto f = std::make_unique<Follower>();
  auto* cq = node_->create_cq();
  f->qp = node_->create_qp(QpType::kRC, cq, cq);
  node_->cluster()->connect(f->qp, follower_qp);
  f->ping_addr = node_->alloc(64, 64);
  f->resp_remote = resp_addr;
  f->resp_rkey = resp_rkey;
  sim::Notification* wake = wake_.get();
  node_->memory().add_watcher(f->ping_addr, kPingBytes, [wake] { wake->notify(); });
  Admission adm{static_cast<int>(followers_.size()), f->ping_addr,
                node_->arena_mr()->rkey};
  followers_.push_back(std::move(f));
  return adm;
}

void TimeSyncServer::start() {
  SCALERPC_CHECK(!running_);
  running_ = true;
  sim::spawn(node_->loop(), serve_loop());
}

void TimeSyncServer::stop() {
  running_ = false;
  wake_->notify();
}

sim::Task<void> TimeSyncServer::serve_loop() {
  auto& mem = node_->memory();
  while (running_) {
    bool any = false;
    for (auto& f : followers_) {
      const auto valid = mem.load_pod<uint32_t>(f->ping_addr + 4);
      const auto seq = mem.load_pod<uint32_t>(f->ping_addr);
      if (valid != kSlotValid || seq == f->last_seq) {
        continue;
      }
      any = true;
      f->last_seq = seq;
      const Nanos t2 = node_->local_time();  // receive timestamp
      co_await node_->loop().delay(kServerTurnaround);
      const Nanos t3 = node_->local_time();  // transmit timestamp
      const uint64_t src = f->ping_addr + 8;  // compose in the same line
      mem.store_pod<uint32_t>(src, seq);
      mem.store_pod<uint32_t>(src + 4, kSlotValid);
      mem.store_pod<int64_t>(src + 8, t2);
      mem.store_pod<int64_t>(src + 16, t3);
      SendWr wr;
      wr.opcode = Opcode::kWrite;
      wr.local_addr = src;
      wr.length = kRespBytes;
      wr.remote_addr = f->resp_remote;
      wr.rkey = f->resp_rkey;
      wr.signaled = false;
      wr.inline_data = true;
      co_await f->qp->post_send(wr);
      pings_served_++;
    }
    if (!any && running_) {
      co_await wake_->wait();
    }
  }
}

TimeSyncFollower::TimeSyncFollower(simrdma::Node* node, TimeSyncServer* server,
                                   Nanos period)
    : node_(node), server_(server), period_(period) {
  wake_ = std::make_unique<sim::Notification>(node_->loop());
}

sim::Task<void> TimeSyncFollower::connect() {
  cq_ = node_->create_cq();
  qp_ = node_->create_qp(QpType::kRC, cq_, cq_);
  resp_addr_ = node_->alloc(64, 64);
  ping_src_ = node_->alloc(64, 64);
  const auto adm = server_->admit(qp_, resp_addr_, node_->arena_mr()->rkey);
  ping_remote_ = adm.ping_addr;
  ping_rkey_ = adm.ping_rkey;
  sim::Notification* wake = wake_.get();
  node_->memory().add_watcher(resp_addr_, kRespBytes, [wake] { wake->notify(); });
  co_return;
}

void TimeSyncFollower::start() {
  SCALERPC_CHECK(!running_);
  running_ = true;
  sim::spawn(node_->loop(), sync_loop());
}

void TimeSyncFollower::stop() {
  running_ = false;
  wake_->notify();
}

sim::Task<void> TimeSyncFollower::sync_once() {
  auto& mem = node_->memory();
  seq_++;
  mem.store_pod<uint32_t>(ping_src_, seq_);
  mem.store_pod<uint32_t>(ping_src_ + 4, kSlotValid);
  const Nanos t1 = node_->local_time();
  SendWr wr;
  wr.opcode = Opcode::kWrite;
  wr.local_addr = ping_src_;
  wr.length = kPingBytes;
  wr.remote_addr = ping_remote_;
  wr.rkey = ping_rkey_;
  wr.signaled = false;
  wr.inline_data = true;
  co_await qp_->post_send(wr);

  // Wait for the matching response.
  for (;;) {
    const auto valid = mem.load_pod<uint32_t>(resp_addr_ + 4);
    const auto seq = mem.load_pod<uint32_t>(resp_addr_);
    if (valid == kSlotValid && seq == seq_) {
      break;
    }
    co_await wake_->wait();
    if (!running_) {
      co_return;
    }
  }
  const Nanos t4 = node_->local_time();
  const auto t2 = mem.load_pod<int64_t>(resp_addr_ + 8);
  const auto t3 = mem.load_pod<int64_t>(resp_addr_ + 16);
  // NTP offset estimate: follower clock minus server clock.
  offset_ = ((t1 - t2) + (t4 - t3)) / 2;
  synced_ = true;
  rounds_++;
}

sim::Task<void> TimeSyncFollower::sync_loop() {
  while (running_) {
    co_await sync_once();
    co_await node_->loop().delay(period_);
  }
}

}  // namespace scalerpc::core
