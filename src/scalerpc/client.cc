#include "src/scalerpc/client.h"

#include <cstring>

#include "src/metrics/flight.h"
#include "src/metrics/metrics.h"
#include "src/trace/trace.h"

namespace scalerpc::core {

using simrdma::Opcode;
using simrdma::QpType;
using simrdma::SendWr;

ScaleRpcClient::ScaleRpcClient(transport::ClientEnv env, ScaleRpcServer* server)
    : env_(env), server_(server), cfg_(server->config()) {}

sim::Task<void> ScaleRpcClient::ctrl_establish(bool register_buffers) {
  const auto& cp = env_.node->params().ctrl;
  if (!cp.enabled()) {
    co_return;  // model off: no suspension, no processor allocation
  }
  const uint64_t region =
      static_cast<uint64_t>(cfg_.slots_per_client) * cfg_.block_bytes;
  // Local QP bring-up (+ pinning this client's buffers on first connect)
  // serializes on this host's control processor.
  Nanos local = cp.qp_setup_ns();
  if (register_buffers) {
    local += cp.mr_register_ns(3 * region + 64);
  }
  co_await env_.node->ctrl().op(local);
  // Out-of-band handshake: QPN/rkey exchange round trips through the
  // switch, processed at both ends.
  const auto& sp = env_.node->params();
  const Nanos rtt = 2 * (sp.switch_latency_ns + sp.wire_time(64));
  for (int r = 0; r < cp.handshake_rounds; ++r) {
    co_await env_.node->loop().delay(rtt);
    co_await server_->node()->ctrl().op(cp.handshake_proc_ns);
    co_await env_.node->ctrl().op(cp.handshake_proc_ns);
  }
  // Server-side half of the connection.
  co_await server_->node()->ctrl().op(cp.qp_setup_ns());
  if (metrics::Registry* m = metrics::registry()) {
    m->add(metrics::kCtrlQpSetups, static_cast<uint32_t>(env_.node->id()), 1);
    m->add(metrics::kCtrlQpSetups, static_cast<uint32_t>(server_->node()->id()), 1);
    m->add(metrics::kCtrlHandshakes, static_cast<uint32_t>(env_.node->id()),
           static_cast<uint64_t>(cp.handshake_rounds));
    if (register_buffers) {
      m->add(metrics::kCtrlMrRegs, static_cast<uint32_t>(env_.node->id()), 1);
    }
  }
}

sim::Task<void> ScaleRpcClient::connect() {
  if (qp_ != nullptr) {
    co_return;  // already connected: churn drivers may re-enter freely
  }
  const uint64_t region =
      static_cast<uint64_t>(cfg_.slots_per_client) * cfg_.block_bytes;
  const bool first = id_ < 0;
  if (first) {
    staging_ = env_.node->alloc(region, 4096);
    req_src_ = env_.node->alloc(region, 4096);
    resp_base_ = env_.node->alloc(region, 4096);
    control_ = env_.node->alloc(64, 64);
    cq_ = env_.node->create_cq();
  }
  co_await ctrl_establish(/*register_buffers=*/first);
  qp_ = env_.node->create_qp(QpType::kRC, cq_, cq_);
  if (first) {
    const auto adm =
        server_->admit(qp_, resp_base_, control_, env_.node->arena_mr()->rkey);
    id_ = adm.client_id;
    entry_remote_ = adm.entry_addr;
    entry_rkey_ = adm.entry_rkey;
    pool_base_[0] = adm.pool_base[0];
    pool_base_[1] = adm.pool_base[1];
    pool_rkey_ = adm.pool_rkey;
    zone_bytes_ = adm.zone_bytes;
    resp_wake_ = std::make_unique<sim::Notification>(env_.node->loop());
  } else {
    // Rejoin after disconnect(): keep the admitted identity and arena
    // regions; the server reconnects this id and re-enters it into the
    // rotation. A rejoin can only fail while the server node is crashed.
    SCALERPC_CHECK_MSG(server_->readmit(id_, qp_), "rejoin refused: server down");
    state_ = State::kIdle;
  }
  sim::Notification* wake = resp_wake_.get();
  watcher_resp_ =
      env_.node->memory().add_watcher(resp_base_, region, [wake] { wake->notify(); });
  watcher_ctl_ = env_.node->memory().add_watcher(control_, kControlBytes,
                                                 [wake] { wake->notify(); });
  co_return;
}

sim::Task<void> ScaleRpcClient::disconnect() {
  SCALERPC_CHECK_MSG(qp_ != nullptr, "disconnect of an unconnected client");
  SCALERPC_CHECK_MSG(staged_.empty(), "disconnect with a staged batch");
  const auto& cp = env_.node->params().ctrl;
  if (cp.enabled()) {
    co_await env_.node->ctrl().op(cp.qp_teardown_ns());
    co_await server_->node()->ctrl().op(cp.qp_teardown_ns());
    if (metrics::Registry* m = metrics::registry()) {
      m->add(metrics::kCtrlQpTeardowns, static_cast<uint32_t>(env_.node->id()), 1);
      m->add(metrics::kCtrlQpTeardowns,
             static_cast<uint32_t>(server_->node()->id()), 1);
    }
  }
  env_.node->memory().remove_watcher(watcher_resp_);
  env_.node->memory().remove_watcher(watcher_ctl_);
  watcher_resp_ = 0;
  watcher_ctl_ = 0;
  server_->evict(id_);
  env_.node->destroy_qp(qp_);
  qp_ = nullptr;
  state_ = State::kIdle;
  // Release any batch capacity retained from past flushes so a parked
  // client drops back toward its unconnected footprint.
  staged_ = {};
  co_return;
}

void ScaleRpcClient::stage(uint8_t op, rpc::Bytes request) {
  SCALERPC_CHECK(static_cast<int>(staged_.size()) < cfg_.slots_per_client);
  const size_t header = kEnvelopeBytes + request_id_bytes(cfg_.wide_sender_id) +
                        (cfg_.wire_seq() ? kRequestSeqBytes : 0);
  SCALERPC_CHECK(request.size() + header <= rpc::max_payload(cfg_.block_bytes));
  const Nanos now = env_.node->loop().now();
  staged_.push_back(Staged{op, std::move(request), ++next_req_seq_, now});
  if (metrics::FlightRecorder* f = metrics::flight()) {
    f->note("span.open", now, env_.node->id(), id_, next_req_seq_);
  }
}

rpc::Bytes ScaleRpcClient::request_header(const Staged& s) const {
  const uint32_t id_bytes = request_id_bytes(cfg_.wide_sender_id);
  const uint32_t hdr = id_bytes + (cfg_.wire_seq() ? kRequestSeqBytes : 0);
  rpc::Bytes data(hdr + s.data.size());
  if (cfg_.wide_sender_id) {
    const auto id = static_cast<uint32_t>(id_);
    std::memcpy(data.data(), &id, sizeof(id));
  } else {
    const auto id = static_cast<uint16_t>(id_);
    std::memcpy(data.data(), &id, sizeof(id));
  }
  if (cfg_.wire_seq()) {
    std::memcpy(data.data() + id_bytes, &s.seq, sizeof(s.seq));
  }
  if (!s.data.empty()) {
    std::memcpy(data.data() + hdr, s.data.data(), s.data.size());
  }
  return data;
}

bool ScaleRpcClient::control_says_stale() const {
  // A control write newer than the seq we joined on means our group's slice
  // ended while we were idle.
  const ControlWord ctl = load_control(env_.node->memory(), control_);
  return ctl.live == 0 && ctl.seq > process_seq_;
}

sim::Task<void> ScaleRpcClient::post_entry(const std::vector<int>& slots) {
  auto& mem = env_.node->memory();
  // Stage the selected requests compactly: | len | op | slot-as-flags | data |.
  uint32_t off = 0;
  Nanos cost = 0;
  for (int slot : slots) {
    const Staged& s = staged_[static_cast<size_t>(slot)];
    const uint32_t used = rpc::encode_staged(mem, staging_ + off, s.op,
                                             static_cast<uint8_t>(slot),
                                             request_header(s));
    cost += env_.node->write_cost(staging_ + off, used);
    off += used;
  }
  entry_epoch_++;
  EndpointEntry e;
  e.staged_addr = staging_;
  e.staged_len = off;
  e.batch = static_cast<uint16_t>(slots.size());
  e.epoch = entry_epoch_;
  e.valid = kEntryValid;
  // Compose the entry locally, then RDMA-write it inline to the server.
  const uint64_t src = control_ + 32;  // spare half of the control line
  store_entry(mem, src, e);
  cost += env_.node->write_cost(src, kEntryBytes);
  co_await env_.cpu->work(cost + cfg_.client_costs.request_prep_ns);

  SendWr wr;
  wr.opcode = Opcode::kWrite;
  wr.local_addr = src;
  wr.length = kEntryBytes;
  wr.remote_addr = entry_remote_;
  wr.rkey = entry_rkey_;
  wr.signaled = false;
  wr.inline_data = true;
  if (trace::Tracer* t = trace::tracer(trace::kRpc)) {
    t->instant(trace::kRpc, "scalerpc.post_entry", env_.node->loop().now(),
               1000 + id_, "batch", static_cast<uint64_t>(slots.size()),
               "epoch", entry_epoch_);
  }
  co_await qp_->post_send(wr);
  state_ = State::kWarmup;
  warmup_rounds_++;
}

sim::Task<void> ScaleRpcClient::write_direct(int slot) {
  auto& mem = env_.node->memory();
  const Staged& s = staged_[static_cast<size_t>(slot)];
  co_await env_.cpu->work(cfg_.client_costs.request_prep_ns);
  const uint64_t src = req_src_ + static_cast<uint64_t>(slot) * cfg_.block_bytes;
  const uint32_t total = rpc::encode_at(mem, src, s.op, static_cast<uint8_t>(slot),
                                        request_header(s));
  const uint64_t zone = pool_base_[process_pool_] +
                        static_cast<uint64_t>(process_zone_) * zone_bytes_;
  SendWr wr;
  wr.opcode = Opcode::kWrite;
  wr.local_addr = src;
  wr.length = total;
  wr.remote_addr = rpc::aligned_target(
      zone + static_cast<uint64_t>(slot) * cfg_.block_bytes, cfg_.block_bytes, total);
  wr.rkey = pool_rkey_;
  wr.signaled = false;
  wr.inline_data =
      cfg_.inline_requests && total <= env_.node->params().max_inline_bytes;
  if (trace::Tracer* t = trace::tracer(trace::kRpc)) {
    t->instant(trace::kRpc, "scalerpc.direct_write", env_.node->loop().now(),
               1000 + id_, "slot", static_cast<uint64_t>(slot), "bytes",
               total);
  }
  co_await qp_->post_send(wr);
}

void ScaleRpcClient::arm_watchdog(Nanos deadline) {
  if (watchdog_armed_) {
    return;
  }
  watchdog_armed_ = true;
  ++watchdog_gen_;
  // Allocation-free arm: this runs once per flush wait, and the armed_ gate
  // guarantees at most one pending callback per client, so a raw callback
  // on `this` is safe for exactly as long as the capturing lambda was.
  // (The old generation check could never fail: a re-arm requires the
  // previous callback to have already fired and cleared armed_.)
  env_.node->loop().call_at(
      deadline,
      [](void* arg) {
        auto* self = static_cast<ScaleRpcClient*>(arg);
        self->watchdog_armed_ = false;
        self->resp_wake_->notify();
      },
      this);
}

sim::Task<std::vector<rpc::Bytes>> ScaleRpcClient::flush() {
  SCALERPC_CHECK(id_ >= 0);
  auto& loop = env_.node->loop();
  auto& mem = env_.node->memory();
  const size_t n = staged_.size();
  SCALERPC_CHECK(n > 0);

  std::vector<int> all_slots;
  for (size_t i = 0; i < n; ++i) {
    all_slots.push_back(static_cast<int>(i));
  }

  if (state_ == State::kProcess && !control_says_stale()) {
    for (size_t i = 0; i < n; ++i) {
      co_await write_direct(static_cast<int>(i));
    }
    direct_batches_++;
  } else {
    co_await post_entry(all_slots);
  }

  std::vector<rpc::Bytes> out(n);
  std::vector<bool> got(n, false);
  size_t collected = 0;
  bool saw_switch = false;
  Envelope last_env{};
  Nanos window = cfg_.client_timeout;
  if (!cfg_.recovery_enabled) {
    // Lossless fabric: the watchdog is purely a lost-write backstop (the
    // harness asserts it never fires), so it must sit far above any
    // legitimate wait. Group scheduling can park a client for several full
    // rotations (priority rebuilds reshuffle groups mid-wait), and the
    // rotation period grows with the client count, so a fixed constant
    // misreads scheduling delay as loss at scale: at 200 clients / 5 groups
    // the observed worst-case legitimate wait already exceeds the 5 ms
    // default. 64 rotations stays well clear of scheduling delay while
    // still letting a genuine lost write surface.
    const Nanos rotation = static_cast<Nanos>(server_->num_groups()) *
                           (cfg_.time_slice + cfg_.drain_grace);
    if (64 * rotation > window) {
      window = 64 * rotation;
    }
  }
  int flush_timeouts = 0;
  Nanos deadline = loop.now() + window;

  while (collected < n) {
    bool progress = false;
    Nanos cost = 0;
    for (size_t i = 0; i < n; ++i) {
      if (got[i]) {
        continue;
      }
      const uint64_t block = resp_base_ + i * cfg_.block_bytes;
      cost += env_.node->read_cost(block + cfg_.block_bytes - 1, 1);
      auto msg = rpc::decode_block(mem, block, cfg_.block_bytes);
      if (!msg.has_value()) {
        continue;
      }
      cost += env_.node->read_cost(block + cfg_.block_bytes - msg->total_bytes(),
                                   msg->total_bytes());
      rpc::clear_block(mem, block, cfg_.block_bytes);
      cost += cfg_.client_costs.response_parse_ns;
      size_t body = kEnvelopeBytes;
      if (cfg_.wire_seq()) {
        // Responses echo the request seq; in recovery mode a replay of an
        // older retry (or a straggler from before a reconnect) is discarded
        // and the slot keeps waiting for the response that matches what is
        // staged now. Spans-only mode carries the seq but never retries, so
        // there is nothing to discard.
        body += kRequestSeqBytes;
        if (msg->data.size() < body) {
          continue;
        }
        uint32_t rseq = 0;
        std::memcpy(&rseq, msg->data.data() + kEnvelopeBytes, sizeof(rseq));
        if (cfg_.recovery_enabled && rseq != staged_[i].seq) {
          continue;
        }
      }
      SCALERPC_CHECK(msg->data.size() >= body);
      last_env = read_envelope(msg->data.data());
      if ((msg->flags & rpc::kFlagContextSwitch) != 0) {
        saw_switch = true;
      }
      out[i].assign(msg->data.begin() + static_cast<long>(body), msg->data.end());
      got[i] = true;
      collected++;
      progress = true;
      // --- Span close: response collected for this request. ---
      if (metrics::Registry* m = metrics::registry()) {
        const auto us =
            static_cast<uint64_t>((loop.now() - staged_[i].start_ns) / 1000);
        m->add(metrics::kClientRequests, static_cast<uint32_t>(id_), 1);
        m->record(metrics::kClientLatencyUs, static_cast<uint32_t>(id_), us);
        const int grp = server_->group_of(id_);
        if (grp >= 0) {
          m->record(metrics::kGroupLatencyUs, static_cast<uint32_t>(grp), us);
        }
      }
      if (metrics::FlightRecorder* f = metrics::flight()) {
        f->note("span.close", loop.now(), env_.node->id(), id_, staged_[i].seq);
      }
      if (trace::Tracer* t = trace::tracer(trace::kRpc)) {
        t->complete(trace::kRpc, "rpc.span", staged_[i].start_ns,
                    loop.now() - staged_[i].start_ns,
                    1000 + static_cast<uint32_t>(id_), "seq", staged_[i].seq);
      }
    }
    if (cost > 0) {
      co_await env_.cpu->work(cost);
    }
    if (collected == n) {
      break;
    }
    if (progress) {
      continue;
    }
    // Cold join (warmup disabled): the server announced our live zone via
    // the control block; push the pending requests directly.
    if (state_ == State::kWarmup) {
      const ControlWord ctl = load_control(mem, control_);
      if (ctl.live != 0 && ctl.seq != last_live_seq_) {
        last_live_seq_ = ctl.seq;
        process_pool_ = ctl.pool;
        process_zone_ = ctl.zone;
        process_seq_ = ctl.seq;
        for (size_t i = 0; i < n; ++i) {
          if (!got[i]) {
            co_await write_direct(static_cast<int>(i));
          }
        }
        continue;
      }
    }
    if (loop.now() >= deadline) {
      // Fault-free runs only hit this on a lost-write race at a context
      // switch (rare): re-post the missing slots through the warmup path.
      // In recovery mode this is the retry engine: exponential back-off,
      // bounded attempts, and a connection teardown once the timeouts look
      // like a sick QP rather than a sick fabric.
      timeouts_++;
      flush_timeouts++;
      if (metrics::Registry* m = metrics::registry()) {
        m->add(metrics::kClientTimeouts, static_cast<uint32_t>(id_), 1);
      }
      if (metrics::FlightRecorder* f = metrics::flight()) {
        f->note("span.timeout", loop.now(), env_.node->id(), id_,
                static_cast<int64_t>(n - collected));
        f->trigger("rpc.timeout", loop.now());
      }
      if (trace::Tracer* t = trace::tracer(trace::kRpc)) {
        t->instant(trace::kRpc, "scalerpc.timeout", loop.now(), 1000 + id_,
                   "missing", static_cast<uint64_t>(n - collected));
      }
      if (cfg_.recovery_enabled) {
        SCALERPC_CHECK_MSG(flush_timeouts <= cfg_.max_rpc_retries,
                           "RPC retries exhausted");
        if (qp_->in_error() ||
            flush_timeouts >= cfg_.reconnect_after_timeouts) {
          co_await reconnect();
        }
        const auto widened =
            static_cast<Nanos>(static_cast<double>(window) * cfg_.timeout_backoff);
        window = widened < cfg_.client_timeout_max ? widened
                                                   : cfg_.client_timeout_max;
      }
      std::vector<int> missing;
      for (size_t i = 0; i < n; ++i) {
        if (!got[i]) {
          missing.push_back(static_cast<int>(i));
        }
      }
      co_await post_entry(missing);
      deadline = loop.now() + window;
      continue;
    }
    arm_watchdog(deadline);
    co_await resp_wake_->wait();
  }

  staged_.clear();
  if (saw_switch) {
    state_ = State::kIdle;
  } else {
    state_ = State::kProcess;
    process_pool_ = last_env.pool;
    process_zone_ = last_env.zone;
    process_seq_ = last_env.seq;
  }
  co_return out;
}

sim::Task<void> ScaleRpcClient::reconnect() {
  // Error the sick connection first so queued WRs flush and any transport
  // retransmit watchers on it unwind, then model the control-plane cost of
  // the teardown + re-establish round.
  qp_->force_error();
  co_await env_.node->loop().delay(cfg_.reconnect_delay);
  const auto& cp = env_.node->params().ctrl;
  if (cp.enabled()) {
    co_await env_.node->ctrl().op(cp.qp_teardown_ns() + cp.qp_setup_ns());
    if (metrics::Registry* m = metrics::registry()) {
      m->add(metrics::kCtrlQpTeardowns, static_cast<uint32_t>(env_.node->id()), 1);
      m->add(metrics::kCtrlQpSetups, static_cast<uint32_t>(env_.node->id()), 1);
    }
  }
  simrdma::QueuePair* fresh = env_.node->create_qp(QpType::kRC, cq_, cq_);
  if (!server_->readmit(id_, fresh)) {
    // Server node is down; recycle the unused QP and try again after the
    // next timeout.
    env_.node->destroy_qp(fresh);
    co_return;
  }
  simrdma::QueuePair* old = qp_;
  qp_ = fresh;
  env_.node->destroy_qp(old);
  reconnects_++;
  if (metrics::Registry* m = metrics::registry()) {
    m->add(metrics::kClientReconnects, static_cast<uint32_t>(id_), 1);
  }
  if (metrics::FlightRecorder* f = metrics::flight()) {
    f->note("rpc.reconnect", env_.node->loop().now(), env_.node->id(), id_,
            static_cast<int64_t>(reconnects_));
  }
  state_ = State::kIdle;
  if (trace::Tracer* t = trace::tracer(trace::kRpc)) {
    t->instant(trace::kRpc, "scalerpc.reconnect", env_.node->loop().now(),
               1000 + id_, "count", reconnects_);
  }
}

sim::Task<void> ScaleRpcClient::post_raw(SendWr wr) { co_await qp_->post_send(wr); }

sim::Task<simrdma::Completion> ScaleRpcClient::raw_completion() {
  co_return co_await cq_->next();
}

}  // namespace scalerpc::core
