// Priority-based client grouping (paper Section 3.2).
//
// Pure policy, no I/O: given per-client window statistics, partitions
// clients into groups whose sizes stay within [G/2, 3G/2] of the default
// group size. Higher-priority groups (P_i = T_i / S_i: frequent senders of
// small requests) are smaller and get longer time slices, squeezing shared
// time away from idle clients.
#ifndef SRC_SCALERPC_SCHEDULER_H_
#define SRC_SCALERPC_SCHEDULER_H_

#include <vector>

#include "src/common/units.h"

namespace scalerpc::core {

struct ClientStats {
  int client_id = 0;
  uint64_t window_requests = 0;
  uint64_t window_bytes = 0;

  // Priority P = T / S: request rate over average request size. Clients
  // with zero traffic rank lowest.
  double priority() const {
    if (window_requests == 0) {
      return 0.0;
    }
    const double avg_size =
        static_cast<double>(window_bytes) / static_cast<double>(window_requests);
    return static_cast<double>(window_requests) / (avg_size + 1.0);
  }
};

struct Group {
  std::vector<int> members;
  Nanos slice = 0;
};

class GroupScheduler {
 public:
  GroupScheduler(int default_group_size, Nanos default_slice, bool dynamic)
      : group_size_(default_group_size), slice_(default_slice), dynamic_(dynamic) {}

  // Initial/naive grouping: join order, default size & slice.
  std::vector<Group> build_static(const std::vector<int>& client_ids) const;

  // Priority-based grouping from window stats. In static mode this simply
  // re-applies the naive grouping (stable order), so rebuilds are no-ops in
  // spirit but absorb newly joined clients.
  std::vector<Group> rebuild(const std::vector<ClientStats>& stats) const;

  int group_size() const { return group_size_; }
  Nanos default_slice() const { return slice_; }
  // Pre-start fixup hook for warm-started sweeps (the server forwards its
  // set_time_slice here before any group has been built).
  void set_default_slice(Nanos slice) { slice_ = slice; }
  bool dynamic() const { return dynamic_; }

  // Legal size band [G/2, 3G/2] (paper's empirical adjustment rule).
  int min_size() const { return group_size_ / 2; }
  int max_size() const { return group_size_ + group_size_ / 2; }

 private:
  std::vector<Group> chunk(const std::vector<int>& ids, int size, Nanos slice) const;

  int group_size_;
  Nanos slice_;
  bool dynamic_;
};

}  // namespace scalerpc::core

#endif  // SRC_SCALERPC_SCHEDULER_H_
