// ScaleRPC client (paper Sections 3.3-3.5, Fig. 7 state machine).
//
// States:
//  * IDLE/WARMUP: the batch is staged locally; the client RDMA-writes an
//    endpoint entry <staged_addr, len, batch, epoch>; the server's warmup
//    engine RDMA-reads the batch before the client's group goes live.
//  * PROCESS: the first response's envelope told the client which pool/zone
//    is its live window; subsequent batches are RDMA-written directly into
//    the processing pool.
//  * A response flagged context_switch_event (or a control-block update for
//    clients with nothing in flight) sends the client back to IDLE.
//
// The same RC QP is exposed for co-use with one-sided verbs (Section 4.2 /
// 5.2): ScaleTX validates and commits with raw reads/writes on it.
#ifndef SRC_SCALERPC_CLIENT_H_
#define SRC_SCALERPC_CLIENT_H_

#include <memory>
#include <vector>

#include "src/scalerpc/config.h"
#include "src/scalerpc/protocol.h"
#include "src/scalerpc/server.h"

namespace scalerpc::core {

class ScaleRpcClient : public rpc::RpcClient {
 public:
  enum class State { kIdle, kWarmup, kProcess };

  ScaleRpcClient(transport::ClientEnv env, ScaleRpcServer* server);

  // Idempotent: a no-op while connected. The first call allocates buffers
  // and admits with the server; a call after disconnect() rejoins (readmit)
  // reusing the arena regions, CQ, and client id — a churn wave allocates
  // nothing after its first cycle. Charges modeled control-plane cost when
  // SimParams::ctrl is enabled (docs/control_plane.md).
  sim::Task<void> connect() override;
  // Tears down the connection while keeping the admitted identity: removes
  // the memory watchers, evicts this client from the server's rotation, and
  // recycles both QP halves. Requires an idle client (no staged batch).
  sim::Task<void> disconnect() override;
  void stage(uint8_t op, rpc::Bytes request) override;
  sim::Task<std::vector<rpc::Bytes>> flush() override;
  int client_id() const override { return id_; }

  State state() const { return state_; }
  bool connected() const { return qp_ != nullptr; }

  // Pre-start schedule fixup for warm-started sweeps: keeps the client's
  // config copy (which sizes the lost-write watchdog window from the
  // rotation period) in step with ScaleRpcServer::set_time_slice. The value
  // is only read inside flush(), so apply it before the workload starts.
  void set_time_slice(Nanos slice) { cfg_.time_slice = slice; }

  uint64_t warmup_rounds() const { return warmup_rounds_; }
  uint64_t direct_batches() const { return direct_batches_; }
  uint64_t timeouts() const { return timeouts_; }
  uint64_t reconnects() const { return reconnects_; }

  // --- one-sided co-use (ScaleTX) ---
  // Posts a raw verb on the RPC connection (charges the doorbell).
  sim::Task<void> post_raw(simrdma::SendWr wr);
  // Awaits the next completion for a signaled raw verb.
  sim::Task<simrdma::Completion> raw_completion();
  simrdma::QueuePair* qp() { return qp_; }
  // rkey covering the server's registered arena (for one-sided access to
  // server-resident data structures such as the KV slab).
  uint32_t server_rkey() const { return pool_rkey_; }

 private:
  struct Staged {
    uint8_t op;
    rpc::Bytes data;
    // Per-client monotonic request id; serialized on the wire only when
    // cfg_.wire_seq() (recovery or spans mode, see kRequestSeqBytes).
    uint32_t seq = 0;
    // Span open time (stage call); the span closes when the response for
    // this slot is collected in flush().
    Nanos start_ns = 0;
  };

  bool control_says_stale() const;
  rpc::Bytes request_header(const Staged& s) const;
  sim::Task<void> post_entry(const std::vector<int>& slots);
  sim::Task<void> write_direct(int slot);
  void arm_watchdog(Nanos deadline);
  // Recovery mode: tears down the (errored or unresponsive) QP, creates a
  // fresh one and re-admits it with the server while keeping the client id,
  // grouping and dedup state. No-op failure if the server node is down —
  // the caller keeps retrying on later timeouts.
  sim::Task<void> reconnect();
  // Modeled control-plane cost of bringing up a connection: QP setup on
  // both nodes' control processors, handshake round trips, and (first
  // connect only) registration of this client's buffers. No-op — not even
  // a suspension — unless SimParams::ctrl is enabled.
  sim::Task<void> ctrl_establish(bool register_buffers);

  transport::ClientEnv env_;
  ScaleRpcServer* server_;
  ScaleRpcConfig cfg_;
  int id_ = -1;

  simrdma::QueuePair* qp_ = nullptr;
  simrdma::CompletionQueue* cq_ = nullptr;
  uint64_t staging_ = 0;   // compact batch records (warmup source)
  uint64_t req_src_ = 0;   // per-slot compose buffers (direct writes)
  uint64_t resp_base_ = 0;  // response blocks
  uint64_t control_ = 0;    // control block (switch notifications)
  std::unique_ptr<sim::Notification> resp_wake_;
  // Watcher handles from connect(), removed by disconnect() so a parked
  // client triggers no wakeups (and the slab slots are reused on rejoin).
  uint64_t watcher_resp_ = 0;
  uint64_t watcher_ctl_ = 0;

  // Server-side addresses.
  uint64_t entry_remote_ = 0;
  uint32_t entry_rkey_ = 0;
  uint64_t pool_base_[2] = {0, 0};
  uint32_t pool_rkey_ = 0;
  uint32_t zone_bytes_ = 0;

  State state_ = State::kIdle;
  uint16_t entry_epoch_ = 0;
  uint32_t process_seq_ = 0;
  uint32_t last_live_seq_ = 0;
  uint8_t process_pool_ = 0;
  uint8_t process_zone_ = 0;

  // Staged requests for the current batch (<= slots_per_client).
  // A vector stays empty-capacity until first use, so an idle client
  // carries no chunk allocation (deque eagerly allocates its map).
  std::vector<Staged> staged_;
  uint64_t watchdog_gen_ = 0;
  bool watchdog_armed_ = false;
  uint32_t next_req_seq_ = 0;

  uint64_t warmup_rounds_ = 0;
  uint64_t direct_batches_ = 0;
  uint64_t timeouts_ = 0;
  uint64_t reconnects_ = 0;
};

}  // namespace scalerpc::core

#endif  // SRC_SCALERPC_CLIENT_H_
