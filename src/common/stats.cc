#include "src/common/stats.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <limits>

#include "src/common/logging.h"

namespace scalerpc {

Histogram::Histogram() : buckets_(2 * kSubBuckets + 58 * kSubBuckets, 0) {}

int Histogram::bucket_index(uint64_t value) {
  // Dense region: values below 2*kSubBuckets map 1:1.
  if (value < 2 * kSubBuckets) {
    return static_cast<int>(value);
  }
  // For larger values, shift down until the significand lands in
  // [kSubBuckets, 2*kSubBuckets); each shift amount is one "major" bucket.
  const int msb = 63 - std::countl_zero(value);
  const int major = msb - kSubBucketBits;  // >= 1 here
  const int sub = static_cast<int>(value >> major);  // in [kSubBuckets, 2*kSubBuckets)
  return 2 * kSubBuckets + (major - 1) * kSubBuckets + (sub - kSubBuckets);
}

uint64_t Histogram::bucket_upper_bound(int index) {
  if (index < 2 * kSubBuckets) {
    return static_cast<uint64_t>(index);
  }
  const int rel = index - 2 * kSubBuckets;
  const int major = rel / kSubBuckets + 1;
  const int sub = rel % kSubBuckets + kSubBuckets;
  return (static_cast<uint64_t>(sub + 1) << major) - 1;
}

void Histogram::record(uint64_t value) {
  int idx = bucket_index(value);
  if (idx >= static_cast<int>(buckets_.size())) {
    idx = static_cast<int>(buckets_.size()) - 1;
  }
  buckets_[static_cast<size_t>(idx)]++;
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  count_++;
  sum_ += value;
}

void Histogram::merge(const Histogram& other) {
  SCALERPC_CHECK(buckets_.size() == other.buckets_.size());
  for (size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  if (other.count_ > 0) {
    if (count_ == 0) {
      min_ = other.min_;
      max_ = other.max_;
    } else {
      min_ = std::min(min_, other.min_);
      max_ = std::max(max_, other.max_);
    }
    count_ += other.count_;
    sum_ += other.sum_;
  }
}

void Histogram::reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0;
  min_ = 0;
  max_ = 0;
}

uint64_t Histogram::min() const { return min_; }
uint64_t Histogram::max() const { return max_; }

double Histogram::mean() const {
  return count_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(count_);
}

uint64_t Histogram::percentile(double p) const {
  if (count_ == 0) {
    return 0;
  }
  p = std::clamp(p, 0.0, 100.0);
  if (p == 0.0) {
    // p=0 is the smallest sample, exactly; the bucket scan below would
    // report the first bucket's upper bound instead.
    return min_;
  }
  // Never let the rank round down to 0: a tiny p must still land on the
  // first occupied bucket rather than whichever bucket the scan sees first.
  const auto target = std::max<uint64_t>(
      1, static_cast<uint64_t>(static_cast<double>(count_) * p / 100.0 + 0.5));
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= target && buckets_[i] > 0) {
      return std::min(bucket_upper_bound(static_cast<int>(i)), max_);
    }
  }
  return max_;
}

std::vector<std::pair<uint64_t, double>> Histogram::cdf() const {
  std::vector<std::pair<uint64_t, double>> points;
  if (count_ == 0) {
    return points;
  }
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) {
      continue;
    }
    seen += buckets_[i];
    // Clamp like percentile(): the last bucket's nominal upper bound can
    // overshoot every recorded sample, which reads as phantom tail latency
    // on a plotted CDF.
    points.emplace_back(std::min(bucket_upper_bound(static_cast<int>(i)), max_),
                        static_cast<double>(seen) / static_cast<double>(count_));
  }
  return points;
}

std::string Histogram::summary(const std::string& unit) const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "n=%llu mean=%.1f%s p50=%llu%s p99=%llu%s max=%llu%s",
                static_cast<unsigned long long>(count_), mean(), unit.c_str(),
                static_cast<unsigned long long>(percentile(50)), unit.c_str(),
                static_cast<unsigned long long>(percentile(99)), unit.c_str(),
                static_cast<unsigned long long>(max_), unit.c_str());
  return buf;
}

void Summary::add(double v) {
  if (count_ == 0) {
    min_ = v;
    max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  count_++;
  sum_ += v;
}

double mops_per_sec(uint64_t ops, uint64_t elapsed_ns) {
  if (elapsed_ns == 0) {
    return 0.0;
  }
  return static_cast<double>(ops) * 1000.0 / static_cast<double>(elapsed_ns);
}

std::string format_mops(uint64_t ops, uint64_t elapsed_ns) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f Mops/s", mops_per_sec(ops, elapsed_ns));
  return buf;
}

}  // namespace scalerpc
