// Time and size unit helpers. Simulated time is integer nanoseconds
// throughout the repository.
#ifndef SRC_COMMON_UNITS_H_
#define SRC_COMMON_UNITS_H_

#include <cstdint>

namespace scalerpc {

using Nanos = int64_t;

constexpr Nanos kNanosecond = 1;
constexpr Nanos kMicrosecond = 1000;
constexpr Nanos kMillisecond = 1000 * 1000;
constexpr Nanos kSecond = 1000LL * 1000 * 1000;

constexpr Nanos usec(int64_t n) { return n * kMicrosecond; }
constexpr Nanos msec(int64_t n) { return n * kMillisecond; }

constexpr uint64_t KiB(uint64_t n) { return n << 10; }
constexpr uint64_t MiB(uint64_t n) { return n << 20; }
constexpr uint64_t GiB(uint64_t n) { return n << 30; }

constexpr uint64_t kCacheLineSize = 64;

// Rounds x up to the next multiple of align (align must be a power of two).
constexpr uint64_t align_up(uint64_t x, uint64_t align) {
  return (x + align - 1) & ~(align - 1);
}

constexpr uint64_t align_down(uint64_t x, uint64_t align) {
  return x & ~(align - 1);
}

}  // namespace scalerpc

#endif  // SRC_COMMON_UNITS_H_
