// Latency/throughput statistics used by the benchmark harness.
//
// Histogram is log-bucketed (HdrHistogram-style: 64 major buckets x 32
// sub-buckets) so recording is O(1) and memory stays constant regardless of
// sample count, while relative quantile error stays within ~3%.
#ifndef SRC_COMMON_STATS_H_
#define SRC_COMMON_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace scalerpc {

class Histogram {
 public:
  Histogram();

  void record(uint64_t value);
  void merge(const Histogram& other);
  void reset();

  uint64_t count() const { return count_; }
  uint64_t min() const;
  uint64_t max() const;
  double mean() const;
  // p in [0, 100]. Returns an upper bound of the bucket holding quantile p.
  uint64_t percentile(double p) const;
  uint64_t median() const { return percentile(50.0); }

  // Sampled CDF suitable for plotting: pairs of (value, cumulative fraction),
  // one entry per non-empty bucket.
  std::vector<std::pair<uint64_t, double>> cdf() const;

  // Human-readable one-liner: count/mean/p50/p99/max.
  std::string summary(const std::string& unit) const;

 private:
  static constexpr int kSubBucketBits = 5;
  static constexpr int kSubBuckets = 1 << kSubBucketBits;

  static int bucket_index(uint64_t value);
  static uint64_t bucket_upper_bound(int index);

  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = 0;
  uint64_t max_ = 0;
};

// Incremental mean/min/max for scalar series (e.g. per-second throughput).
class Summary {
 public:
  void add(double v);
  uint64_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_); }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }

 private:
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Formats ops-per-nanosecond counts as "X.XX Mops/s" given ops and elapsed ns.
std::string format_mops(uint64_t ops, uint64_t elapsed_ns);

// Mops/s as a double, for tables.
double mops_per_sec(uint64_t ops, uint64_t elapsed_ns);

}  // namespace scalerpc

#endif  // SRC_COMMON_STATS_H_
