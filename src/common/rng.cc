#include "src/common/rng.h"

#include <algorithm>

namespace scalerpc {

ZipfGenerator::ZipfGenerator(uint64_t n, double theta) : n_(n) {
  SCALERPC_CHECK(n > 0);
  cdf_.resize(n);
  double sum = 0.0;
  for (uint64_t i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), theta);
    cdf_[i] = sum;
  }
  for (auto& v : cdf_) {
    v /= sum;
  }
}

uint64_t ZipfGenerator::next(Rng& rng) const {
  const double u = rng.next_double();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) {
    return n_ - 1;
  }
  return static_cast<uint64_t>(it - cdf_.begin());
}

}  // namespace scalerpc
