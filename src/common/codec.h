// Tiny byte-packing helpers for RPC payloads.
#ifndef SRC_COMMON_CODEC_H_
#define SRC_COMMON_CODEC_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "src/common/logging.h"
#include "src/sim/pool.h"

namespace scalerpc {

// Writers build RPC payloads at per-op rate, so the backing vector draws
// from the thread-local freelists (same type as rpc::Bytes — take() moves).
using CodecBytes = std::vector<uint8_t, sim::PoolAllocator<uint8_t>>;

class Writer {
 public:
  void u8(uint8_t v) { buf_.push_back(v); }
  void u16(uint16_t v) { append(&v, sizeof(v)); }
  void u32(uint32_t v) { append(&v, sizeof(v)); }
  void u64(uint64_t v) { append(&v, sizeof(v)); }
  void i64(int64_t v) { append(&v, sizeof(v)); }
  void bytes(std::span<const uint8_t> b) {
    u32(static_cast<uint32_t>(b.size()));
    buf_.insert(buf_.end(), b.begin(), b.end());
  }
  void str(const std::string& s) {
    bytes(std::span(reinterpret_cast<const uint8_t*>(s.data()), s.size()));
  }

  CodecBytes take() { return std::move(buf_); }
  const CodecBytes& view() const { return buf_; }

 private:
  void append(const void* p, size_t n) {
    const auto* b = static_cast<const uint8_t*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }
  CodecBytes buf_;
};

class Reader {
 public:
  explicit Reader(std::span<const uint8_t> data) : data_(data) {}

  uint8_t u8() { return take<uint8_t>(); }
  uint16_t u16() { return take<uint16_t>(); }
  uint32_t u32() { return take<uint32_t>(); }
  uint64_t u64() { return take<uint64_t>(); }
  int64_t i64() { return take<int64_t>(); }
  CodecBytes bytes() {
    const uint32_t n = u32();
    SCALERPC_CHECK(pos_ + n <= data_.size());
    CodecBytes out(data_.begin() + static_cast<long>(pos_),
                   data_.begin() + static_cast<long>(pos_ + n));
    pos_ += n;
    return out;
  }
  std::string str() {
    auto b = bytes();
    return std::string(b.begin(), b.end());
  }

  bool done() const { return pos_ == data_.size(); }
  size_t remaining() const { return data_.size() - pos_; }

 private:
  template <typename T>
  T take() {
    SCALERPC_CHECK(pos_ + sizeof(T) <= data_.size());
    T v;
    std::memcpy(&v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  std::span<const uint8_t> data_;
  size_t pos_ = 0;
};

}  // namespace scalerpc

#endif  // SRC_COMMON_CODEC_H_
