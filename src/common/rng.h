// Deterministic random number generation for workloads.
//
// All workload generators take an explicit Rng so experiments are
// reproducible across runs and platforms; nothing in the repository draws
// from a global random source.
#ifndef SRC_COMMON_RNG_H_
#define SRC_COMMON_RNG_H_

#include <cmath>
#include <cstdint>
#include <vector>

#include "src/common/logging.h"

namespace scalerpc {

// xoshiro256** — fast, high-quality, and trivially seedable.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(uint64_t seed) {
    // SplitMix64 expansion of the seed into the full state.
    uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  uint64_t next() {
    const uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound). bound must be > 0.
  uint64_t next_below(uint64_t bound) {
    SCALERPC_CHECK(bound > 0);
    // Lemire's multiply-shift rejection method.
    uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<uint64_t>(m);
    if (low < bound) {
      const uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        x = next();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  // Uniform in [lo, hi] inclusive.
  uint64_t next_in(uint64_t lo, uint64_t hi) {
    SCALERPC_CHECK(hi >= lo);
    return lo + next_below(hi - lo + 1);
  }

  // Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  bool next_bool(double p_true) { return next_double() < p_true; }

  // Standard normal via Box-Muller (cached second value).
  double next_gaussian() {
    if (has_cached_) {
      has_cached_ = false;
      return cached_;
    }
    double u1 = next_double();
    double u2 = next_double();
    while (u1 <= 1e-12) {
      u1 = next_double();
    }
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * 3.14159265358979323846 * u2;
    cached_ = r * std::sin(theta);
    has_cached_ = true;
    return r * std::cos(theta);
  }

 private:
  static uint64_t rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4] = {};
  bool has_cached_ = false;
  double cached_ = 0.0;
};

// Zipf-distributed key picker over [0, n); used by skewed KV workloads.
// Precomputes the CDF once, then answers draws in O(log n).
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double theta);

  uint64_t next(Rng& rng) const;

  uint64_t universe() const { return n_; }

 private:
  uint64_t n_;
  std::vector<double> cdf_;
};

}  // namespace scalerpc

#endif  // SRC_COMMON_RNG_H_
