// Minimal leveled logging for the simulator and the systems built on it.
//
// The simulator is single threaded, so no locking is required. Log level is
// a process-global knob; benchmarks default to kWarn so experiment output
// stays machine-parsable.
#ifndef SRC_COMMON_LOGGING_H_
#define SRC_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace scalerpc {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

// Returns the mutable process-wide log level.
LogLevel& global_log_level();

// Sets the log level from a string ("trace".."off"); unknown strings keep
// the current level. Returns true when the string was recognized.
bool set_log_level(const std::string& name);

namespace log_detail {

class LogLine {
 public:
  LogLine(LogLevel level, const char* file, int line);
  ~LogLine();

  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

struct NullLine {
  template <typename T>
  NullLine& operator<<(const T&) {
    return *this;
  }
};

}  // namespace log_detail

// Hook run by SCALERPC_CHECK / SCALERPC_CHECK_MSG after printing the
// failure and before abort(). The metrics library installs one that dumps
// the calling thread's flight recorder, so a failing assertion leaves its
// forensic window behind. Installation is sticky and idempotent; the hook
// must be async-signal-safe-ish (we are already aborting — it should not
// CHECK in turn).
using CheckFailureHook = void (*)();
void set_check_failure_hook(CheckFailureHook hook);
// Invoked by the CHECK macros; runs the installed hook at most once per
// process (a hook that fails a CHECK itself must not recurse).
void run_check_failure_hook();

}  // namespace scalerpc

#define SCALERPC_LOG_ENABLED(level) \
  (static_cast<int>(level) >= static_cast<int>(::scalerpc::global_log_level()))

#define SCALERPC_LOG(level)                         \
  if (!SCALERPC_LOG_ENABLED(::scalerpc::LogLevel::level)) { \
  } else                                            \
    ::scalerpc::log_detail::LogLine(::scalerpc::LogLevel::level, __FILE__, __LINE__)

#define LOG_TRACE SCALERPC_LOG(kTrace)
#define LOG_DEBUG SCALERPC_LOG(kDebug)
#define LOG_INFO SCALERPC_LOG(kInfo)
#define LOG_WARN SCALERPC_LOG(kWarn)
#define LOG_ERROR SCALERPC_LOG(kError)

// CHECK-style assertions that stay on in release builds: simulator
// invariants are cheap relative to event dispatch and catching a broken
// invariant beats producing a wrong figure.
#define SCALERPC_CHECK(cond)                                                    \
  do {                                                                          \
    if (!(cond)) {                                                              \
      ::std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", __FILE__, __LINE__, \
                     #cond);                                                    \
      ::scalerpc::run_check_failure_hook();                                     \
      ::std::abort();                                                           \
    }                                                                           \
  } while (0)

#define SCALERPC_CHECK_MSG(cond, msg)                                       \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::std::fprintf(stderr, "CHECK failed at %s:%d: %s (%s)\n", __FILE__,  \
                     __LINE__, #cond, msg);                                 \
      ::scalerpc::run_check_failure_hook();                                 \
      ::std::abort();                                                       \
    }                                                                       \
  } while (0)

#endif  // SRC_COMMON_LOGGING_H_
