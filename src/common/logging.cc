#include "src/common/logging.h"

namespace scalerpc {

LogLevel& global_log_level() {
  static LogLevel level = LogLevel::kWarn;
  return level;
}

bool set_log_level(const std::string& name) {
  if (name == "trace") {
    global_log_level() = LogLevel::kTrace;
  } else if (name == "debug") {
    global_log_level() = LogLevel::kDebug;
  } else if (name == "info") {
    global_log_level() = LogLevel::kInfo;
  } else if (name == "warn") {
    global_log_level() = LogLevel::kWarn;
  } else if (name == "error") {
    global_log_level() = LogLevel::kError;
  } else if (name == "off") {
    global_log_level() = LogLevel::kOff;
  } else {
    return false;
  }
  return true;
}

namespace {
CheckFailureHook& failure_hook() {
  static CheckFailureHook hook = nullptr;
  return hook;
}
}  // namespace

void set_check_failure_hook(CheckFailureHook hook) {
  if (failure_hook() == nullptr) {
    failure_hook() = hook;
  }
}

void run_check_failure_hook() {
  static bool ran = false;
  if (ran) {
    return;  // a hook that CHECKs in turn must not recurse
  }
  ran = true;
  if (CheckFailureHook hook = failure_hook()) {
    hook();
  }
}

namespace log_detail {

namespace {
const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "T";
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarn:
      return "W";
    case LogLevel::kError:
      return "E";
    default:
      return "?";
  }
}
}  // namespace

LogLine::LogLine(LogLevel level, const char* file, int line) : level_(level) {
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') {
      base = p + 1;
    }
  }
  stream_ << "[" << level_tag(level) << " " << base << ":" << line << "] ";
}

LogLine::~LogLine() {
  stream_ << "\n";
  std::fputs(stream_.str().c_str(), stderr);
}

}  // namespace log_detail
}  // namespace scalerpc
