// Lazily-committed zero-initialized memory.
//
// Big, sparsely-touched model state — per-node host-memory arenas, the
// LLC's direct-mapped line index — is *addressable* at full size but
// typically touches a small fraction of it. Backing it with anonymous
// private mmap pages makes the untouched remainder free: no RSS, no
// construction-time memset (a 12-node testbed used to zero ~a gigabyte of
// vectors before the first event fired). Pages are demand-zeroed by the
// kernel on first touch, and because the mapping is private, a fork()ed
// warm-start child (src/harness/sweep.h) shares the committed pages
// copy-on-write with its parent.
#ifndef SRC_COMMON_LAZY_MEM_H_
#define SRC_COMMON_LAZY_MEM_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <type_traits>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/mman.h>
#define SCALERPC_LAZY_MEM_MMAP 1
#endif

#include "src/common/logging.h"

namespace scalerpc {

// A fixed-size byte range that reads as all-zero until written. Not
// resizable: size is chosen once, at construction.
class LazyBytes {
 public:
  explicit LazyBytes(size_t size) : size_(size) {
    if (size_ == 0) {
      data_ = nullptr;
      return;
    }
#ifdef SCALERPC_LAZY_MEM_MMAP
    // MAP_NORESERVE keeps the untouched remainder out of the kernel's
    // commit accounting: a million-client testbed maps terabyte-order
    // address space of which it touches megabytes, and without it
    // fork()-based warm starts fail the heuristic overcommit check just
    // duplicating the reservation.
    int flags = MAP_PRIVATE | MAP_ANONYMOUS;
#ifdef MAP_NORESERVE
    flags |= MAP_NORESERVE;
#endif
    void* p = ::mmap(nullptr, size_, PROT_READ | PROT_WRITE, flags, -1, 0);
    SCALERPC_CHECK_MSG(p != MAP_FAILED, "mmap failed for lazy arena");
    data_ = static_cast<uint8_t*>(p);
#else
    data_ = new uint8_t[size_]();
#endif
  }
  ~LazyBytes() {
    if (data_ == nullptr) {
      return;
    }
#ifdef SCALERPC_LAZY_MEM_MMAP
    ::munmap(data_, size_);
#else
    delete[] data_;
#endif
  }
  LazyBytes(const LazyBytes&) = delete;
  LazyBytes& operator=(const LazyBytes&) = delete;
  LazyBytes(LazyBytes&& other) noexcept
      : data_(other.data_), size_(other.size_) {
    other.data_ = nullptr;
    other.size_ = 0;
  }
  LazyBytes& operator=(LazyBytes&&) = delete;

  uint8_t* data() { return data_; }
  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }

  // Returns the range to all-zero, dropping committed pages back to the
  // kernel where the platform allows it (anonymous private mappings
  // re-zero on next touch).
  void reset() {
    if (data_ == nullptr) {
      return;
    }
#if defined(SCALERPC_LAZY_MEM_MMAP) && defined(MADV_DONTNEED)
    ::madvise(data_, size_, MADV_DONTNEED);
#else
    std::memset(data_, 0, size_);
#endif
  }

 private:
  uint8_t* data_;
  size_t size_;
};

// Typed view over LazyBytes for flat index tables. T must be trivially
// copyable and treat all-zero as its empty/initial value.
template <typename T>
class LazyArray {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  explicit LazyArray(size_t count) : bytes_(count * sizeof(T)), count_(count) {}

  T* data() { return reinterpret_cast<T*>(bytes_.data()); }
  const T* data() const { return reinterpret_cast<const T*>(bytes_.data()); }
  T& operator[](size_t i) { return data()[i]; }
  const T& operator[](size_t i) const { return data()[i]; }
  size_t size() const { return count_; }
  void reset() { bytes_.reset(); }

 private:
  LazyBytes bytes_;
  size_t count_;
};

}  // namespace scalerpc

#endif  // SRC_COMMON_LAZY_MEM_H_
