#include "src/harness/harness.h"

#include <cstdio>

#include "src/common/rng.h"
#include "src/harness/observe.h"
#include "src/metrics/flight.h"
#include "src/metrics/metrics.h"
#include "src/trace/trace.h"

namespace scalerpc::harness {

namespace {
bool g_spans_default = false;
}  // namespace

void set_spans_default(bool enabled) { g_spans_default = enabled; }
bool spans_default() { return g_spans_default; }

const char* to_string(TransportKind kind) {
  switch (kind) {
    case TransportKind::kRawWrite:
      return "RawWrite";
    case TransportKind::kHerd:
      return "HERD";
    case TransportKind::kFasst:
      return "FaSST";
    case TransportKind::kSelfRpc:
      return "selfRPC";
    case TransportKind::kScaleRpc:
      return "ScaleRPC";
    case TransportKind::kProxy:
      return "SharedQP";
  }
  return "?";
}

std::optional<TransportKind> parse_transport(const std::string& name) {
  for (TransportKind k : all_transports()) {
    if (name == to_string(k)) {
      return k;
    }
  }
  if (name == "SharedQP" || name == "proxy" || name == "sharedqp") {
    return TransportKind::kProxy;
  }
  if (name == "rawwrite") {
    return TransportKind::kRawWrite;
  }
  if (name == "herd") {
    return TransportKind::kHerd;
  }
  if (name == "fasst") {
    return TransportKind::kFasst;
  }
  if (name == "selfrpc") {
    return TransportKind::kSelfRpc;
  }
  if (name == "scalerpc") {
    return TransportKind::kScaleRpc;
  }
  return std::nullopt;
}

Testbed::Testbed(TestbedConfig cfg) : cfg_(cfg), cluster_(cfg.sim) {
  server_node_ = cluster_.add_node("server");
  for (int i = 0; i < cfg_.num_client_nodes; ++i) {
    client_nodes_.push_back(cluster_.add_node("client" + std::to_string(i)));
    cpu_pools_.push_back(
        std::make_unique<rpc::CpuPool>(cluster_.loop(), cfg_.cores_per_client_node));
  }
  if (cfg_.faults != nullptr && !cfg_.faults->empty()) {
    cluster_.attach_faults(*cfg_.faults, cfg_.fault_seed);
    // Recovery must be on before the server is built: admission sizes the
    // per-client dedup state and the request header grows a seq field.
    cfg_.rpc.recovery_enabled = true;
  }
  if (spans_default()) {
    // Like recovery, spans grow the request header, so the flag must be set
    // before server and clients agree on the wire format.
    cfg_.rpc.spans_enabled = true;
  }
  if (cfg_.num_clients > 65535) {
    // The narrow 2-byte wire sender id cannot address this fleet; switch
    // both sides to the wide format before they agree on the header
    // (docs/scaling.md). Paper-scale figure runs never take this branch.
    cfg_.rpc.wide_sender_id = true;
  }

  switch (cfg_.kind) {
    case TransportKind::kRawWrite:
      server_ = std::make_unique<transport::RawWriteServer>(server_node_, cfg_.rpc);
      break;
    case TransportKind::kHerd:
      server_ = std::make_unique<transport::HerdServer>(server_node_, cfg_.rpc);
      break;
    case TransportKind::kFasst:
      server_ = std::make_unique<transport::FasstServer>(server_node_, cfg_.rpc);
      break;
    case TransportKind::kSelfRpc:
      server_ = std::make_unique<transport::SelfRpcServer>(server_node_, cfg_.rpc);
      break;
    case TransportKind::kScaleRpc: {
      auto s = std::make_unique<core::ScaleRpcServer>(server_node_, cfg_.rpc);
      scalerpc_ = s.get();
      server_ = std::move(s);
      break;
    }
    case TransportKind::kProxy:
      server_ = std::make_unique<transport::ProxyServer>(server_node_, cfg_.rpc);
      break;
  }

  for (int c = 0; c < cfg_.num_clients; ++c) {
    const auto node_idx = static_cast<size_t>(c) % client_nodes_.size();
    transport::ClientEnv env{client_nodes_[node_idx], cpu_pools_[node_idx].get()};
    std::unique_ptr<rpc::RpcClient> client;
    switch (cfg_.kind) {
      case TransportKind::kRawWrite:
        client = std::make_unique<transport::RawWriteClient>(
            env, static_cast<transport::RawWriteServer*>(server_.get()));
        break;
      case TransportKind::kHerd:
        client = std::make_unique<transport::HerdClient>(
            env, static_cast<transport::HerdServer*>(server_.get()));
        break;
      case TransportKind::kFasst:
        client = std::make_unique<transport::FasstClient>(
            env, static_cast<transport::FasstServer*>(server_.get()));
        break;
      case TransportKind::kSelfRpc:
        client = std::make_unique<transport::SelfRpcClient>(
            env, static_cast<transport::SelfRpcServer*>(server_.get()));
        break;
      case TransportKind::kScaleRpc:
        client = std::make_unique<core::ScaleRpcClient>(env, scalerpc_);
        break;
      case TransportKind::kProxy:
        client = std::make_unique<transport::ProxyClient>(
            env, static_cast<transport::ProxyServer*>(server_.get()));
        break;
    }
    clients_.push_back(std::move(client));
  }
  connected_.assign(clients_.size(), false);
  if (!cfg_.defer_connect) {
    connect_all();
  }
}

void Testbed::connect_client(size_t i) {
  if (connected_[i]) {
    return;  // idempotent: churn drivers re-connect without bookkeeping
  }
  sim::run_blocking(cluster_.loop(), clients_[i]->connect());
  connected_[i] = true;
}

void Testbed::disconnect_client(size_t i) {
  if (!connected_[i]) {
    return;
  }
  sim::run_blocking(cluster_.loop(), clients_[i]->disconnect());
  connected_[i] = false;
}

void Testbed::connect_all() {
  for (size_t i = 0; i < clients_.size(); ++i) {
    if (!connected_[i]) {
      connect_client(i);
    }
  }
}

sim::Task<void> Testbed::connect_client_async(size_t i) {
  if (!connected_[i]) {
    co_await clients_[i]->connect();
    connected_[i] = true;
  }
}

sim::Task<void> Testbed::disconnect_client_async(size_t i) {
  if (connected_[i]) {
    co_await clients_[i]->disconnect();
    connected_[i] = false;
  }
}

core::ScaleRpcClient* Testbed::scalerpc_client(size_t i) {
  if (cfg_.kind != TransportKind::kScaleRpc) {
    return nullptr;
  }
  return static_cast<core::ScaleRpcClient*>(clients_[i].get());
}

namespace {

struct DriverState {
  bool stop = false;
  bool measuring = false;
  uint64_t ops = 0;
  Histogram latency_us;
};

sim::Task<void> echo_client(sim::EventLoop* loop, rpc::RpcClient* client,
                            const EchoWorkload* wl, size_t client_idx, Nanos think,
                            DriverState* st) {
  rpc::Bytes payload(wl->msg_bytes, 0xAB);
  Rng payload_rng(wl->seed ^ (0x9E3779B97F4A7C15ull * (client_idx + 1)));
  for (uint8_t& b : payload) {
    b = static_cast<uint8_t>(payload_rng.next());
  }
  while (!st->stop) {
    if (think > 0) {
      co_await loop->delay(think);
    }
    const Nanos t1 = loop->now();
    for (int b = 0; b < wl->batch; ++b) {
      client->stage(0, payload);
    }
    std::vector<rpc::Bytes> resp = co_await client->flush();
    if (resp.size() != static_cast<size_t>(wl->batch)) {
      // Exactly-once violation: name the incident before the assertion
      // fires, so the hook-written flight dump records client and count.
      if (metrics::FlightRecorder* f = metrics::flight()) {
        f->note("rpc.exactly_once_violation", loop->now(), -1,
                static_cast<int64_t>(client_idx),
                static_cast<int64_t>(resp.size()));
        f->trigger("rpc.exactly_once_violation", loop->now());
      }
    }
    SCALERPC_CHECK_MSG(resp.size() == static_cast<size_t>(wl->batch),
                       "exactly-once violation: batch response count mismatch");
    if (trace::Tracer* t = trace::tracer(trace::kRpc)) {
      t->complete(trace::kRpc, "rpc.batch", t1, loop->now() - t1,
                  static_cast<uint32_t>(1000 + client_idx), "batch",
                  static_cast<uint64_t>(wl->batch));
    }
    if (st->measuring) {
      st->ops += static_cast<uint64_t>(wl->batch);
      st->latency_us.record(static_cast<uint64_t>((loop->now() - t1) / 1000));
    }
  }
}

}  // namespace

// The driver copies the workload: client coroutines hold a pointer to it
// across suspension, and the caller's copy need not outlive the driver.
struct EchoDriver::Impl {
  Impl(Testbed& b, const EchoWorkload& w) : bed(b), wl(w) {}
  Testbed& bed;
  EchoWorkload wl;
  DriverState st;
  bool measured = false;
};

EchoDriver::EchoDriver(Testbed& bed, const EchoWorkload& wl)
    : impl_(std::make_unique<Impl>(bed, wl)) {
  auto& loop = bed.loop();
  bed.server().handlers().register_handler(0,
                                           rpc::make_echo_handler(wl.handler_cpu));
  bed.server().start();
  for (size_t c = 0; c < bed.num_clients(); ++c) {
    const Nanos think =
        c < wl.per_client_think.size() ? wl.per_client_think[c] : 0;
    sim::spawn(loop,
               echo_client(&loop, &bed.client(c), &impl_->wl, c, think, &impl_->st));
  }
  loop.run_for(wl.warmup);
}

EchoDriver::~EchoDriver() = default;

EchoResult EchoDriver::measure() {
  SCALERPC_CHECK_MSG(!impl_->measured, "measure() may only run once");
  impl_->measured = true;
  Testbed& bed = impl_->bed;
  auto& loop = bed.loop();
  DriverState& st = impl_->st;
  const EchoWorkload& wl = impl_->wl;

  const auto pcm0 = bed.server_node()->pcm_total();
  const auto nic0 = bed.server_node()->nic().counters();
  st.measuring = true;
  const Nanos t0 = loop.now();
  begin_timeline(bed.server_node(), &st.measuring, &st.ops);
  loop.run_for(wl.measure);
  st.measuring = false;
  end_timeline(bed.server_node(), st.ops);
  const Nanos elapsed = loop.now() - t0;
  st.stop = true;
  loop.run_for(usec(50));  // let in-flight batches land
  bed.server().stop();

  EchoResult result;
  result.ops = st.ops;
  result.elapsed = elapsed;
  result.mops = mops_per_sec(st.ops, static_cast<uint64_t>(elapsed));
  result.batch_latency = std::move(st.latency_us);
  result.server_pcm = bed.server_node()->pcm_total() - pcm0;
  result.server_qp_cache_misses =
      bed.server_node()->nic().counters().qp_cache_misses - nic0.qp_cache_misses;
  for (size_t c = 0; c < bed.num_clients(); ++c) {
    if (core::ScaleRpcClient* sc = bed.scalerpc_client(c)) {
      result.client_timeouts += sc->timeouts();
      result.client_reconnects += sc->reconnects();
    }
  }
  if (bed.scalerpc() != nullptr) {
    result.server_dup_rpcs = bed.scalerpc()->dup_rpcs();
  }
  if (metrics::Registry* m = metrics::registry()) {
    // End-of-run node gauges: the same column block the --timeline view
    // samples periodically, recorded once as absolute totals.
    uint64_t values[kObservedColumns];
    fill_observed(bed.server_node(), st.ops, values);
    const auto node_slot = static_cast<uint32_t>(bed.server_node()->id());
    for (size_t i = 0; i < kObservedColumns; ++i) {
      m->set(static_cast<metrics::Column>(metrics::kNodeObservedFirst +
                                          static_cast<int>(i)),
             node_slot, values[i]);
    }
    m->set(metrics::kNodeLoopEvents, 0, loop.events_processed());
  }
  if (bed.cluster().faults() == nullptr) {
    // On a lossless fabric the client timeout path must never fire; a
    // nonzero count here means a lost-response bug, not an injected fault.
    // Pre-trigger the flight recorder (when one rides along) so the dump
    // the assertion hook writes names the real incident, and the failure
    // output carries the dump path.
    if (result.client_timeouts != 0) {
      if (metrics::FlightRecorder* f = metrics::flight()) {
        f->trigger("rpc.unexpected_timeout", loop.now());
      }
    }
    SCALERPC_CHECK_MSG(result.client_timeouts == 0,
                       "client timeouts on a lossless fabric");
  }
  if (trace::TimelineSink* sink = trace::timeline()) {
    sink->set_latency(latency_summary(result.batch_latency));
  }
  return result;
}

EchoResult run_echo(Testbed& bed, const EchoWorkload& wl) {
  EchoDriver driver(bed, wl);
  return driver.measure();
}

}  // namespace scalerpc::harness
