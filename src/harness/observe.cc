#include "src/harness/observe.h"

#include "src/common/logging.h"
#include "src/simrdma/nic.h"
#include "src/trace/trace.h"

namespace scalerpc::harness {

namespace {

// Periodic sampler: one sample per timeline interval while *live holds. The
// coroutine adds only its own wakeup events to the loop; it never touches
// workload state, so enabling it cannot shift any simulated timing.
sim::Task<void> counter_sampler(simrdma::Node* node, const bool* live,
                                const uint64_t* ops) {
  auto& loop = node->loop();
  const Nanos interval = trace::timeline_interval_ns();
  while (*live) {
    co_await loop.delay(interval);
    if (!*live) {
      break;
    }
    sample_observed(node, ops != nullptr ? *ops : 0);
  }
}

}  // namespace

std::vector<std::string> observed_columns() {
  std::vector<std::string> cols;
  cols.reserve(kObservedColumns);
  for (size_t i = 0; i < kObservedColumns; ++i) {
    cols.emplace_back(
        metrics::kColumns[metrics::kNodeObservedFirst + static_cast<int>(i)].name);
  }
  return cols;
}

void fill_observed(simrdma::Node* node, uint64_t ops, uint64_t* out) {
  const simrdma::PcmCounters pcm = node->pcm_total();
  const simrdma::NicCounters& nic = node->nic().counters();
  size_t i = 0;
  out[i++] = pcm.pcie_rd_cur;
  out[i++] = pcm.rfo;
  out[i++] = pcm.itom;
  out[i++] = pcm.pcie_itom;
  out[i++] = pcm.l3_hits;
  out[i++] = pcm.l3_misses;
  out[i++] = nic.qp_cache_hits;
  out[i++] = nic.qp_cache_misses;
  out[i++] = nic.send_wqes;
  out[i++] = nic.inbound_packets;
  out[i++] = nic.acks_sent;
  out[i++] = nic.bytes_tx;
  out[i++] = nic.bytes_rx;
  out[i++] = ops;
  SCALERPC_CHECK(i == kObservedColumns);
}

void sample_observed(simrdma::Node* node, uint64_t ops) {
  trace::TimelineSink* sink = trace::timeline();
  if (sink == nullptr) {
    return;
  }
  const int64_t now = node->loop().now();
  uint64_t values[kObservedColumns];
  fill_observed(node, ops, values);
  sink->sample(now, values, kObservedColumns);
  // Mirror the headline series onto Perfetto counter tracks when a tracer
  // rides along, so --trace output shows the same curves the timeline file
  // records (as absolute values; Perfetto plots them directly).
  if (trace::Tracer* t = trace::tracer(trace::kLlc)) {
    const simrdma::PcmCounters pcm = node->pcm_total();
    t->counter(trace::kLlc, "pcm", now, "pcie_rd_cur", pcm.pcie_rd_cur, "rfo",
               pcm.rfo, "itom", pcm.itom, "pcie_itom", pcm.pcie_itom);
  }
  if (trace::Tracer* t = trace::tracer(trace::kNic)) {
    const simrdma::NicCounters& nic = node->nic().counters();
    t->counter(trace::kNic, "nic_cache", now, "qp_hits", nic.qp_cache_hits,
               "qp_misses", nic.qp_cache_misses);
  }
}

void begin_timeline(simrdma::Node* node, const bool* live, const uint64_t* ops) {
  trace::TimelineSink* sink = trace::timeline();
  if (sink == nullptr) {
    return;
  }
  sink->set_columns(observed_columns());
  sink->reset_baseline();
  sample_observed(node, ops != nullptr ? *ops : 0);
  sim::spawn(node->loop(), counter_sampler(node, live, ops));
}

void end_timeline(simrdma::Node* node, uint64_t ops) {
  trace::TimelineSink* sink = trace::timeline();
  if (sink == nullptr) {
    return;
  }
  if (sink->has_baseline() && node->loop().now() > sink->last_sample_t()) {
    sample_observed(node, ops);
  }
}

trace::TimelineSink::LatencySummary latency_summary(const Histogram& h) {
  trace::TimelineSink::LatencySummary s;
  s.valid = true;
  s.count = h.count();
  s.mean_us = h.mean();
  s.p50_us = h.percentile(50.0);
  s.p99_us = h.percentile(99.0);
  s.p999_us = h.percentile(99.9);
  s.max_us = h.max();
  return s;
}

}  // namespace scalerpc::harness
