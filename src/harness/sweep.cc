#include "src/harness/sweep.h"

#include <atomic>
#include <thread>
#include <utility>

#include "src/common/logging.h"
#include "src/sim/pool.h"

namespace scalerpc::harness {

size_t Sweep::add(std::string label, std::function<void()> fn) {
  SCALERPC_CHECK(fn != nullptr);
  tasks_.push_back(TaskEntry{std::move(label), std::move(fn)});
  return tasks_.size() - 1;
}

int Sweep::hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

void Sweep::run_task(size_t i) {
  if (collector_ != nullptr && collector_->enabled()) {
    // One collector slot per submission index: the task's tracer/timeline
    // live in slot i regardless of which worker executes it, so the merged
    // output files are byte-identical for any thread count.
    trace::ScopedSession session(collector_->open(i, tasks_[i].label));
    tasks_[i].fn();
  } else {
    tasks_[i].fn();
  }
}

void Sweep::run(int threads) {
  if (threads <= 0) {
    threads = hardware_threads();
  }
  if (threads > static_cast<int>(tasks_.size())) {
    threads = static_cast<int>(tasks_.size());
  }
  if (collector_ != nullptr && collector_->enabled()) {
    collector_->resize(tasks_.size());
  }

  if (threads <= 1) {
    // Serial mode: no worker threads, no atomics — byte-for-byte the
    // pre-sweep behavior, and the reference the parallel path must match.
    for (size_t i = 0; i < tasks_.size(); ++i) {
      run_task(i);
    }
    tasks_.clear();
    return;
  }

  // Fixed pool, work-claiming in submission order. Task indices are handed
  // out through one atomic cursor; each task runs on exactly one worker,
  // whose thread_local simulator pools isolate it from the others.
  std::atomic<size_t> next{0};
  auto worker = [this, &next] {
    for (;;) {
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= tasks_.size()) {
        break;
      }
      run_task(i);
    }
    // Workers die with the run; don't strand their block caches.
    sim::BytePool::drain_thread_cache();
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back(worker);
  }
  for (std::thread& t : pool) {
    t.join();
  }
  tasks_.clear();
}

}  // namespace scalerpc::harness
