#include "src/harness/sweep.h"

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <deque>
#include <thread>
#include <utility>

#include "src/common/logging.h"
#include "src/sim/pool.h"

#if defined(__unix__) || defined(__APPLE__)
#define SCALERPC_SWEEP_FORK 1
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace scalerpc::harness {

size_t Sweep::add(std::string label, std::function<void()> fn) {
  SCALERPC_CHECK(fn != nullptr);
  tasks_.push_back(TaskEntry{std::move(label), std::move(fn)});
  return tasks_.size() - 1;
}

int Sweep::hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

void Sweep::run_task(size_t i) {
  // One collector slot per submission index: the task's tracer/timeline/
  // registry live in slot i regardless of which worker executes it, so the
  // merged output files are byte-identical for any thread count.
  const bool traced = collector_ != nullptr && collector_->enabled();
  const bool metered = metrics_ != nullptr && metrics_->enabled();
  if (traced && metered) {
    trace::ScopedSession session(collector_->open(i, tasks_[i].label));
    metrics::ScopedSession msession(metrics_->open(i, tasks_[i].label));
    tasks_[i].fn();
  } else if (traced) {
    trace::ScopedSession session(collector_->open(i, tasks_[i].label));
    tasks_[i].fn();
  } else if (metered) {
    metrics::ScopedSession msession(metrics_->open(i, tasks_[i].label));
    tasks_[i].fn();
  } else {
    tasks_[i].fn();
  }
}

void Sweep::run(int threads) {
  if (threads <= 0) {
    threads = hardware_threads();
  }
  if (threads > static_cast<int>(tasks_.size())) {
    threads = static_cast<int>(tasks_.size());
  }
  if (collector_ != nullptr && collector_->enabled()) {
    collector_->resize(tasks_.size());
  }
  if (metrics_ != nullptr && metrics_->enabled()) {
    metrics_->resize(tasks_.size());
  }

  if (threads <= 1) {
    // Serial mode: no worker threads, no atomics — byte-for-byte the
    // pre-sweep behavior, and the reference the parallel path must match.
    for (size_t i = 0; i < tasks_.size(); ++i) {
      run_task(i);
    }
    tasks_.clear();
    return;
  }

  // Fixed pool, work-claiming in submission order. Task indices are handed
  // out through one atomic cursor; each task runs on exactly one worker,
  // whose thread_local simulator pools isolate it from the others.
  std::atomic<size_t> next{0};
  auto worker = [this, &next] {
    for (;;) {
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= tasks_.size()) {
        break;
      }
      run_task(i);
    }
    // Workers die with the run; don't strand their block caches.
    sim::BytePool::drain_thread_cache();
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back(worker);
  }
  for (std::thread& t : pool) {
    t.join();
  }
  tasks_.clear();
}

namespace internal {

bool fork_supported() {
#ifdef SCALERPC_SWEEP_FORK
  return true;
#else
  return false;
#endif
}

#ifdef SCALERPC_SWEEP_FORK

namespace {
void read_exact(int fd, uint8_t* dst, size_t n) {
  size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, dst + got, n - got);
    if (r < 0) {
      SCALERPC_CHECK_MSG(errno == EINTR, "warm-start pipe read failed");
      continue;
    }
    SCALERPC_CHECK_MSG(r != 0, "warm-start child exited before writing its result");
    got += static_cast<size_t>(r);
  }
}
}  // namespace

void run_forked(size_t n, size_t result_bytes, int threads,
                const std::function<void(size_t, void*)>& job, uint8_t* results) {
  // The child must be able to write its whole result and _exit without the
  // parent draining concurrently, so it has to fit any pipe buffer.
  SCALERPC_CHECK_MSG(result_bytes > 0 && result_bytes <= 4096,
                     "warm-start result must fit the pipe buffer");
  if (threads < 1) {
    threads = 1;
  }
  struct Child {
    pid_t pid;
    int fd;
    size_t index;
  };
  std::deque<Child> live;
  auto reap_front = [&] {
    const Child c = live.front();
    live.pop_front();
    read_exact(c.fd, results + c.index * result_bytes, result_bytes);
    ::close(c.fd);
    int status = 0;
    pid_t r;
    do {
      r = ::waitpid(c.pid, &status, 0);
    } while (r < 0 && errno == EINTR);
    SCALERPC_CHECK(r == c.pid);
    SCALERPC_CHECK_MSG(WIFEXITED(status) && WEXITSTATUS(status) == 0,
                       "warm-start child failed");
  };

  std::vector<uint8_t> buf(result_bytes);
  for (size_t i = 0; i < n; ++i) {
    if (live.size() >= static_cast<size_t>(threads)) {
      reap_front();
    }
    int fds[2];
    SCALERPC_CHECK(::pipe(fds) == 0);
    // Pending buffered output would be duplicated into (and later flushed
    // by) nothing — children _exit — but flushing here keeps parent output
    // ordered around the forked section either way.
    std::fflush(stdout);
    std::fflush(stderr);
    const pid_t pid = ::fork();
    SCALERPC_CHECK_MSG(pid >= 0, "fork failed");
    if (pid == 0) {
      ::close(fds[0]);
      job(i, buf.data());
      size_t put = 0;
      while (put < result_bytes) {
        const ssize_t w = ::write(fds[1], buf.data() + put, result_bytes - put);
        if (w < 0 && errno == EINTR) {
          continue;
        }
        if (w <= 0) {
          ::_exit(2);
        }
        put += static_cast<size_t>(w);
      }
      ::close(fds[1]);
      // _exit, not exit: the child shares the parent's warmed heap and must
      // not run static destructors or flush inherited stdio buffers.
      ::_exit(0);
    }
    ::close(fds[1]);
    live.push_back(Child{pid, fds[0], i});
  }
  while (!live.empty()) {
    reap_front();
  }
}

#else  // !SCALERPC_SWEEP_FORK

void run_forked(size_t, size_t, int, const std::function<void(size_t, void*)>&,
                uint8_t*) {
  SCALERPC_CHECK_MSG(false, "fork-based warm start unsupported on this platform");
}

#endif

}  // namespace internal

}  // namespace scalerpc::harness
