#include "src/harness/rawverbs.h"

#include <vector>

#include "src/common/rng.h"
#include "src/harness/observe.h"
#include "src/sim/task.h"

namespace scalerpc::harness {

using simrdma::Cluster;
using simrdma::CompletionQueue;
using simrdma::Node;
using simrdma::Opcode;
using simrdma::QpType;
using simrdma::QueuePair;
using simrdma::RecvWr;
using simrdma::SendWr;

namespace {

constexpr int kClientNodes = 8;

struct Counters {
  uint64_t ops = 0;
  bool done = false;
  bool measuring = false;  // timeline sampler runs while this holds
};

// Windowed sender: keeps `window` writes outstanding round-robin over its
// destinations.
sim::Task<void> windowed_sender(CompletionQueue* cq, std::vector<QueuePair*> qps,
                                std::vector<SendWr> wrs, int window, Counters* st) {
  size_t next = 0;
  int outstanding = 0;
  while (!st->done) {
    while (outstanding < window) {
      co_await qps[next]->post_send(wrs[next]);
      next = (next + 1) % qps.size();
      outstanding++;
    }
    co_await cq->next();
    outstanding--;
    st->ops++;
  }
}

// Inbound writer walking through its block ring (log-style offsets).
sim::Task<void> block_writer(QueuePair* qp, CompletionQueue* cq, uint64_t src,
                             uint32_t rkey, std::vector<uint64_t> blocks,
                             uint32_t block_bytes, uint32_t msg_bytes, int window,
                             Counters* st) {
  size_t next = 0;
  uint64_t iter = 0;
  int outstanding = 0;
  while (!st->done) {
    while (outstanding < window) {
      SendWr wr;
      wr.opcode = Opcode::kWrite;
      wr.local_addr = src;
      wr.length = msg_bytes;
      wr.remote_addr = blocks[next] + (iter * msg_bytes) % block_bytes;
      wr.rkey = rkey;
      co_await qp->post_send(wr);
      next = (next + 1) % blocks.size();
      if (next == 0) {
        iter++;
      }
      outstanding++;
    }
    co_await cq->next();
    outstanding--;
    st->ops++;
  }
}

sim::Task<void> pool_poller(Node* server, uint64_t base, uint64_t len, Counters* st) {
  sim::Notification note(server->loop());
  server->memory().add_watcher(base, len, [&note] { note.notify(); });
  const uint64_t lines = len / kCacheLineSize;
  uint64_t cursor = 0;
  while (!st->done) {
    co_await note.wait();
    Nanos cost = 0;
    for (int i = 0; i < 16; ++i) {
      cost += server->read_cost(base + (cursor % lines) * kCacheLineSize, 8);
      cursor++;
    }
    co_await server->loop().delay(cost);
  }
}

// Fills the buffer a sender will DMA out of with seed-derived bytes (one
// stream per sender index, as run_echo does for RPC payloads).
void fill_seeded(Node* node, uint64_t addr, uint32_t len, uint64_t seed, int idx) {
  Rng rng(seed ^ (0x9E3779B97F4A7C15ull * (static_cast<uint64_t>(idx) + 1)));
  std::vector<uint8_t> bytes(len);
  for (uint8_t& b : bytes) {
    b = static_cast<uint8_t>(rng.next());
  }
  node->memory().store(addr, bytes);
}

RawVerbResult measure_window(Cluster& cluster, Node* server, Counters* st,
                             Nanos warmup, Nanos measure) {
  cluster.loop().run_for(warmup);
  const uint64_t ops0 = st->ops;
  const auto pcm0 = server->pcm_total();
  const Nanos t0 = cluster.loop().now();
  st->measuring = true;
  begin_timeline(server, &st->measuring, &st->ops);
  cluster.loop().run_for(measure);
  st->measuring = false;
  end_timeline(server, st->ops);
  const uint64_t delta_ops = st->ops - ops0;
  const auto pcm = server->pcm_total() - pcm0;
  const auto elapsed = static_cast<uint64_t>(cluster.loop().now() - t0);
  st->done = true;
  RawVerbResult result;
  result.mops = mops_per_sec(delta_ops, elapsed);
  result.pcie_rd_mops = mops_per_sec(pcm.pcie_rd_cur, elapsed);
  result.pcie_itom_mops = mops_per_sec(pcm.pcie_itom, elapsed);
  result.l3_miss_rate = pcm.l3_miss_rate();
  return result;
}

}  // namespace

RawVerbResult run_outbound_write(const RawVerbConfig& cfg) {
  Cluster cluster;
  Node* server = cluster.add_node("server");
  std::vector<Node*> cnodes;
  for (int i = 0; i < kClientNodes; ++i) {
    cnodes.push_back(cluster.add_node("c" + std::to_string(i)));
  }
  const uint64_t src = server->alloc(cfg.msg_bytes);
  fill_seeded(server, src, cfg.msg_bytes, cfg.seed, 0);
  std::vector<std::vector<QueuePair*>> qps(static_cast<size_t>(cfg.server_threads));
  std::vector<std::vector<SendWr>> wrs(static_cast<size_t>(cfg.server_threads));
  std::vector<CompletionQueue*> cqs;
  for (int t = 0; t < cfg.server_threads; ++t) {
    cqs.push_back(server->create_cq());
  }
  for (int c = 0; c < cfg.num_clients; ++c) {
    Node* cn = cnodes[static_cast<size_t>(c) % cnodes.size()];
    const auto t = static_cast<size_t>(c % cfg.server_threads);
    auto* ccq = cn->create_cq();
    QueuePair* sq = server->create_qp(QpType::kRC, cqs[t], cqs[t]);
    QueuePair* cq = cn->create_qp(QpType::kRC, ccq, ccq);
    cluster.connect(sq, cq);
    const uint64_t dst = cn->alloc(cfg.msg_bytes);
    SendWr wr;
    wr.opcode = Opcode::kWrite;
    wr.local_addr = src;
    wr.length = cfg.msg_bytes;
    wr.remote_addr = dst;
    wr.rkey = cn->arena_mr()->rkey;
    qps[t].push_back(sq);
    wrs[t].push_back(wr);
  }
  Counters st;
  for (int t = 0; t < cfg.server_threads; ++t) {
    sim::spawn(cluster.loop(),
               windowed_sender(cqs[static_cast<size_t>(t)], qps[static_cast<size_t>(t)],
                               wrs[static_cast<size_t>(t)], cfg.window, &st));
  }
  return measure_window(cluster, server, &st, cfg.warmup, cfg.measure);
}

RawVerbResult run_inbound_write(const RawVerbConfig& cfg) {
  simrdma::SimParams params;
  // Inbound experiments may touch big pools (400 clients x 20 x 16KB).
  const uint64_t pool_len = static_cast<uint64_t>(cfg.num_clients) *
                            cfg.blocks_per_client * cfg.block_bytes;
  params.host_memory_bytes = std::max(params.host_memory_bytes, pool_len + MiB(16));
  Cluster cluster(params);
  Node* server = cluster.add_node("server");
  std::vector<Node*> cnodes;
  for (int i = 0; i < kClientNodes; ++i) {
    cnodes.push_back(cluster.add_node("c" + std::to_string(i)));
  }
  const uint64_t pool = server->alloc(pool_len, 4096);
  const uint32_t rkey = server->arena_mr()->rkey;
  Counters st;
  for (int c = 0; c < cfg.num_clients; ++c) {
    Node* cn = cnodes[static_cast<size_t>(c) % cnodes.size()];
    auto* scq = server->create_cq();
    auto* ccq = cn->create_cq();
    QueuePair* sq = server->create_qp(QpType::kRC, scq, scq);
    QueuePair* cq = cn->create_qp(QpType::kRC, ccq, ccq);
    cluster.connect(sq, cq);
    const uint64_t src = cn->alloc(cfg.msg_bytes);
    fill_seeded(cn, src, cfg.msg_bytes, cfg.seed, c);
    std::vector<uint64_t> blocks;
    for (int b = 0; b < cfg.blocks_per_client; ++b) {
      blocks.push_back(pool + (static_cast<uint64_t>(c) * cfg.blocks_per_client +
                               static_cast<uint64_t>(b)) *
                                  cfg.block_bytes);
    }
    sim::spawn(cluster.loop(),
               block_writer(cq, ccq, src, rkey, std::move(blocks), cfg.block_bytes,
                            cfg.msg_bytes, std::min(cfg.window, 8), &st));
  }
  if (cfg.server_polls) {
    sim::spawn(cluster.loop(), pool_poller(server, pool, pool_len, &st));
  }
  return measure_window(cluster, server, &st, cfg.warmup, cfg.measure);
}

RawVerbResult run_ud_send(const RawVerbConfig& cfg) {
  Cluster cluster;
  Node* server = cluster.add_node("server");
  std::vector<Node*> cnodes;
  for (int i = 0; i < kClientNodes; ++i) {
    cnodes.push_back(cluster.add_node("c" + std::to_string(i)));
  }
  // A few server UD QPs with deep recv rings; a drainer per QP reposts.
  const auto& p = cluster.params();
  const uint32_t buf_bytes =
      static_cast<uint32_t>(align_up(cfg.msg_bytes + p.grh_bytes, 64));
  struct ServerQp {
    QueuePair* qp;
    CompletionQueue* rcq;
    uint64_t ring;
  };
  std::vector<ServerQp> sqps;
  for (int t = 0; t < cfg.server_threads; ++t) {
    auto* rcq = server->create_cq();
    auto* scq = server->create_cq();
    QueuePair* qp = server->create_qp(QpType::kUD, scq, rcq);
    const uint64_t ring = server->alloc(1024ULL * buf_bytes, 4096);
    for (int i = 0; i < 1024; ++i) {
      qp->post_recv_immediate(
          RecvWr{static_cast<uint64_t>(i), ring + static_cast<uint64_t>(i) * buf_bytes,
                 buf_bytes});
    }
    sqps.push_back(ServerQp{qp, rcq, ring});
  }
  Counters st;
  // Deliveries are counted at the receiver: UD senders complete on transmit
  // and cannot observe drops, so send-side counting would overstate rate.
  auto drainer = [](ServerQp s, uint32_t buf, Counters* stp) -> sim::Task<void> {
    while (!stp->done) {
      const simrdma::Completion c = co_await s.rcq->next();
      stp->ops++;
      co_await s.qp->post_recv(RecvWr{c.wr_id, s.ring + c.wr_id * buf, buf});
    }
  };
  for (const auto& s : sqps) {
    sim::spawn(cluster.loop(), drainer(s, buf_bytes, &st));
  }

  auto ud_client = [](QueuePair* qp, CompletionQueue* cq, uint64_t src, int dst_node,
                      uint32_t dst_qpn, uint32_t bytes, int window,
                      Counters* stp) -> sim::Task<void> {
    int outstanding = 0;
    while (!stp->done) {
      while (outstanding < window) {
        SendWr wr;
        wr.opcode = Opcode::kSend;
        wr.local_addr = src;
        wr.length = bytes;
        wr.dest_node = dst_node;
        wr.dest_qpn = dst_qpn;
        wr.inline_data = bytes <= 188;
        co_await qp->post_send(wr);
        outstanding++;
      }
      co_await cq->next();
      outstanding--;
    }
  };
  for (int c = 0; c < cfg.num_clients; ++c) {
    Node* cn = cnodes[static_cast<size_t>(c) % cnodes.size()];
    auto* ccq = cn->create_cq();
    QueuePair* qp = cn->create_qp(QpType::kUD, ccq, ccq);
    const uint64_t src = cn->alloc(cfg.msg_bytes);
    fill_seeded(cn, src, cfg.msg_bytes, cfg.seed, c);
    const auto& target = sqps[static_cast<size_t>(c % cfg.server_threads)];
    sim::spawn(cluster.loop(),
               ud_client(qp, ccq, src, server->id(), target.qp->qpn(), cfg.msg_bytes,
                         std::min(cfg.window, 8), &st));
  }
  return measure_window(cluster, server, &st, cfg.warmup, cfg.measure);
}

}  // namespace scalerpc::harness
