// Raw-verb microbenchmark drivers for the motivation experiments
// (Figs. 1b, 3a, 3b): windowed outbound RC writes, inbound RC writes over
// per-client block arrays, and UD sends — with PCM counter capture.
#ifndef SRC_HARNESS_RAWVERBS_H_
#define SRC_HARNESS_RAWVERBS_H_

#include "src/common/stats.h"
#include "src/simrdma/cluster.h"
#include "src/simrdma/nic.h"
#include "src/simrdma/node.h"

namespace scalerpc::harness {

struct RawVerbConfig {
  int num_clients = 40;
  int server_threads = 10;  // senders (outbound) — paper Fig. 1b setup
  uint32_t msg_bytes = 32;
  int window = 16;  // outstanding verbs per thread/client
  // Inbound-specific: per-client block ring at the server.
  uint32_t block_bytes = 64;
  int blocks_per_client = 20;
  bool server_polls = true;  // consume messages CPU-side (promotes lines)
  Nanos warmup = usec(300);
  Nanos measure = msec(2);
  // Shapes the bytes senders DMA out of their source buffers. Content never
  // influences simulated timing; plumbing --seed here makes the flag reach
  // the data plane instead of being silently dropped.
  uint64_t seed = 1;
};

struct RawVerbResult {
  double mops = 0;
  double pcie_rd_mops = 0;    // PCIe read ops per second (PCM PCIeRdCur)
  double pcie_itom_mops = 0;  // allocating writes per second
  double l3_miss_rate = 0;
};

// One server node issuing 32-byte RC writes to `num_clients` remote
// destinations (outbound verbs, Fig. 1b/3a).
RawVerbResult run_outbound_write(const RawVerbConfig& cfg);

// `num_clients` clients RC-writing into the server's per-client block rings
// (inbound verbs, Fig. 1b/3a/3b).
RawVerbResult run_inbound_write(const RawVerbConfig& cfg);

// UD send counterpart (Fig. 1b): clients UD-send to a handful of server
// QPs that keep deep recv rings posted.
RawVerbResult run_ud_send(const RawVerbConfig& cfg);

}  // namespace scalerpc::harness

#endif  // SRC_HARNESS_RAWVERBS_H_
