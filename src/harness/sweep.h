// Parallel sweep engine for the figure benchmarks.
//
// Every figure reproduction is a sweep of independent simulations: each
// point builds its own Testbed (own EventLoop, Cluster, transports), runs,
// and reports a few numbers. The simulations are deterministic and share no
// mutable state (src/sim/pool.h is thread_local; everything else is
// per-instance), so the sweep is embarrassingly parallel.
//
// Usage (the declarative registration pattern every bench binary follows):
//
//   Sweep sweep;
//   for (int n : clients)
//     sweep.add("clients=" + std::to_string(n),
//               [n, &slot = results[i++]] { slot = measure(n); });
//   sweep.run(opt.threads);            // <=0: one worker per hardware core
//   ... print tables from `results` in registration order ...
//
// Determinism rule: tasks compute into caller-owned slots and never print;
// all output happens after run() returns, indexed in task-submission order.
// That makes stdout and --json rows byte-identical for any thread count,
// including --threads=1, which executes tasks inline in submission order
// with no worker threads at all (exactly the pre-sweep serial behavior).
#ifndef SRC_HARNESS_SWEEP_H_
#define SRC_HARNESS_SWEEP_H_

#include <functional>
#include <string>
#include <vector>

#include "src/trace/collector.h"

namespace scalerpc::harness {

class Sweep {
 public:
  // Registers a task. `label` names the sweep point (error reporting and
  // future progress output); `fn` must be self-contained: it builds, runs,
  // and tears down its simulation entirely on whichever thread executes it,
  // writing results only to memory no other task touches. Returns the
  // task's submission index.
  size_t add(std::string label, std::function<void()> fn);

  // Executes every registered task and returns once all have finished.
  //   threads <= 0  one worker per hardware core (hardware_threads())
  //   threads == 1  inline on the calling thread, in submission order
  //   threads >  1  that many workers, claiming tasks in submission order
  // The task list is cleared afterwards so a Sweep can be reused for a
  // second phase.
  void run(int threads);

  size_t size() const { return tasks_.size(); }

  // Attaches an observability collector (--trace / --timeline): run() then
  // installs a per-task trace::ScopedSession around every task, with one
  // collector slot per submission index. The collector must outlive run();
  // null (the default) leaves tasks un-instrumented.
  void set_collector(trace::Collector* collector) { collector_ = collector; }

  // Worker count used for `threads <= 0`: std::thread::hardware_concurrency
  // clamped to at least 1.
  static int hardware_threads();

 private:
  struct TaskEntry {
    std::string label;
    std::function<void()> fn;
  };

  void run_task(size_t i);

  std::vector<TaskEntry> tasks_;
  trace::Collector* collector_ = nullptr;
};

}  // namespace scalerpc::harness

#endif  // SRC_HARNESS_SWEEP_H_
