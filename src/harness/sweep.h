// Parallel sweep engine for the figure benchmarks.
//
// Every figure reproduction is a sweep of independent simulations: each
// point builds its own Testbed (own EventLoop, Cluster, transports), runs,
// and reports a few numbers. The simulations are deterministic and share no
// mutable state (src/sim/pool.h is thread_local; everything else is
// per-instance), so the sweep is embarrassingly parallel.
//
// Usage (the declarative registration pattern every bench binary follows):
//
//   Sweep sweep;
//   for (int n : clients)
//     sweep.add("clients=" + std::to_string(n),
//               [n, &slot = results[i++]] { slot = measure(n); });
//   sweep.run(opt.threads);            // <=0: one worker per hardware core
//   ... print tables from `results` in registration order ...
//
// Determinism rule: tasks compute into caller-owned slots and never print;
// all output happens after run() returns, indexed in task-submission order.
// That makes stdout and --json rows byte-identical for any thread count,
// including --threads=1, which executes tasks inline in submission order
// with no worker threads at all (exactly the pre-sweep serial behavior).
#ifndef SRC_HARNESS_SWEEP_H_
#define SRC_HARNESS_SWEEP_H_

#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <type_traits>
#include <vector>

#include "src/metrics/collector.h"
#include "src/trace/collector.h"

namespace scalerpc::harness {

class Sweep {
 public:
  // Registers a task. `label` names the sweep point (error reporting and
  // future progress output); `fn` must be self-contained: it builds, runs,
  // and tears down its simulation entirely on whichever thread executes it,
  // writing results only to memory no other task touches. Returns the
  // task's submission index.
  size_t add(std::string label, std::function<void()> fn);

  // Executes every registered task and returns once all have finished.
  //   threads <= 0  one worker per hardware core (hardware_threads())
  //   threads == 1  inline on the calling thread, in submission order
  //   threads >  1  that many workers, claiming tasks in submission order
  // The task list is cleared afterwards so a Sweep can be reused for a
  // second phase.
  void run(int threads);

  size_t size() const { return tasks_.size(); }

  // Attaches an observability collector (--trace / --timeline): run() then
  // installs a per-task trace::ScopedSession around every task, with one
  // collector slot per submission index. The collector must outlive run();
  // null (the default) leaves tasks un-instrumented.
  void set_collector(trace::Collector* collector) { collector_ = collector; }

  // Attaches a metrics collector (--metrics / --flight-recorder): run()
  // installs a per-task metrics::ScopedSession the same way, one registry +
  // flight-recorder slot per submission index. Composes with the trace
  // collector; null (the default) leaves the metrics hooks dormant.
  void set_metrics(metrics::Collector* collector) { metrics_ = collector; }

  // Worker count used for `threads <= 0`: std::thread::hardware_concurrency
  // clamped to at least 1.
  static int hardware_threads();

 private:
  struct TaskEntry {
    std::string label;
    std::function<void()> fn;
  };

  void run_task(size_t i);

  std::vector<TaskEntry> tasks_;
  trace::Collector* collector_ = nullptr;
  metrics::Collector* metrics_ = nullptr;
};

// --- Copy-on-write warm start ---
//
// Many sweep points share an identical warmup prefix (repeats of one
// config; measure-phase-only parameter changes). warm_start_sweep() builds
// and warms the shared state ONCE, then runs each point in a forked child
// process: the kernel shares every warmed page copy-on-write, so N points
// pay one warmup instead of N and touch-only pages are never duplicated.
// The simulation is deterministic and single-threaded, so a forked
// continuation is byte-identical to a cold run that replayed the same
// warmup — proven by tests/harness/warmstart_test.cc at --threads=1 and 4.

struct WarmStartOptions {
  // Max forked children alive at once. Children are fully isolated
  // processes, so results are byte-identical for any value.
  int threads = 1;
  // Re-run the warmup per point in-process instead of forking (the
  // reference behavior, and the fallback where fork is unavailable).
  bool force_cold = false;
};

namespace internal {
// True when the platform supports fork-based copy-on-write snapshots.
bool fork_supported();
// Runs job(i, dst) for i in [0, n) in forked children, at most `threads`
// alive at once, launched and collected in submission order. Each child
// writes exactly `result_bytes` at dst; the parent copies them to
// results + i * result_bytes. Must be called from a single-threaded point
// in the process (fork clones only the calling thread).
void run_forked(size_t n, size_t result_bytes, int threads,
                const std::function<void(size_t, void*)>& job, uint8_t* results);
}  // namespace internal

// `warmup` builds the shared state (construct + warm); each `points[i]`
// continues from it and returns a trivially-copyable result (it crosses
// the child->parent pipe as raw bytes). Results are indexed by point.
template <typename State, typename Result>
std::vector<Result> warm_start_sweep(
    const std::function<std::unique_ptr<State>()>& warmup,
    const std::vector<std::function<Result(State&)>>& points,
    const WarmStartOptions& opt = WarmStartOptions{}) {
  static_assert(std::is_trivially_copyable_v<Result>,
                "warm-start results cross a pipe as raw bytes");
  std::vector<Result> out(points.size());
  if (points.empty()) {
    return out;
  }
  if (opt.force_cold || !internal::fork_supported()) {
    for (size_t i = 0; i < points.size(); ++i) {
      std::unique_ptr<State> state = warmup();
      out[i] = points[i](*state);
    }
    return out;
  }
  std::unique_ptr<State> state = warmup();  // the shared CoW snapshot
  internal::run_forked(
      points.size(), sizeof(Result), opt.threads,
      [&](size_t i, void* dst) {
        Result r = points[i](*state);
        std::memcpy(dst, &r, sizeof(Result));
      },
      reinterpret_cast<uint8_t*>(out.data()));
  return out;
}

}  // namespace scalerpc::harness

#endif  // SRC_HARNESS_SWEEP_H_
