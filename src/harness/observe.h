// Counter-timeline sampling shared by the harness drivers (run_echo and the
// raw-verbs microbenchmarks).
//
// The timeline schema is one fixed set of server-side columns — the PCM
// uncore counters plus NIC-internal statistics and the driver's completed-op
// count — so every figure bench emits rows a single plotting script can
// consume. The sink (src/trace/timeline.h) turns the absolute values
// sampled here into per-window deltas, the simulator analog of running
// Intel PCM with a sampling interval.
//
// All entry points are no-ops when no thread-local timeline sink is
// installed (i.e. the bench ran without --timeline), so drivers call them
// unconditionally and the tracing-off hot path stays allocation-free.
#ifndef SRC_HARNESS_OBSERVE_H_
#define SRC_HARNESS_OBSERVE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/stats.h"
#include "src/metrics/schema.h"
#include "src/sim/task.h"
#include "src/simrdma/node.h"
#include "src/trace/timeline.h"

namespace scalerpc::harness {

// Number of columns in the shared schema: the kNode gauge block of the
// metrics schema (src/metrics/schema.h), of which this file is a thin
// timeline-shaped view.
inline constexpr size_t kObservedColumns = metrics::kNodeObservedCount;

// Column names, in row order, generated from the metrics schema: pcie_rd_cur,
// rfo, itom, pcie_itom, l3_hits, l3_misses, qp_cache_hits, qp_cache_misses,
// send_wqes, inbound_packets, acks_sent, bytes_tx, bytes_rx, ops.
std::vector<std::string> observed_columns();

// Fills `out[0..kObservedColumns)` with the absolute counter values for
// `node` plus the driver-maintained `ops` count.
void fill_observed(simrdma::Node* node, uint64_t ops, uint64_t* out);

// Records one sample into the thread-local timeline sink (and, when a
// tracer is also installed, emits Perfetto counter-track points for the key
// PCM/NIC series). No-op without a sink.
void sample_observed(simrdma::Node* node, uint64_t ops);

// Starts timeline sampling over a measurement window: installs the schema,
// records the baseline sample at the current sim time, and spawns a
// periodic sampler that fires every trace::timeline_interval_ns() while
// *live holds. `ops` may be null (sampled as 0). No-op without a sink.
void begin_timeline(simrdma::Node* node, const bool* live, const uint64_t* ops);

// Records the final partial window at the current sim time, if time
// advanced past the last periodic sample. No-op without a sink.
void end_timeline(simrdma::Node* node, uint64_t ops);

// Condenses a microsecond-valued latency histogram into the summary stored
// alongside a timeline (count/mean/p50/p99/p999/max).
trace::TimelineSink::LatencySummary latency_summary(const Histogram& h);

}  // namespace scalerpc::harness

#endif  // SRC_HARNESS_OBSERVE_H_
