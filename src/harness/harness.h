// Experiment harness: builds a paper-style testbed (1 RPC server node + N
// client nodes, clients multiplexed as coroutines) for any of the five
// transports, and drives the echo microworkload used by Figs. 8-12.
#ifndef SRC_HARNESS_HARNESS_H_
#define SRC_HARNESS_HARNESS_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/baselines/fasst.h"
#include "src/baselines/herd.h"
#include "src/baselines/proxy.h"
#include "src/baselines/rawwrite.h"
#include "src/baselines/selfrpc.h"
#include "src/common/stats.h"
#include "src/fault/plan.h"
#include "src/scalerpc/client.h"
#include "src/scalerpc/server.h"

namespace scalerpc::harness {

enum class TransportKind { kRawWrite, kHerd, kFasst, kSelfRpc, kScaleRpc, kProxy };

const char* to_string(TransportKind kind);
std::optional<TransportKind> parse_transport(const std::string& name);

// Process-wide default for core::ScaleRpcConfig::spans_enabled, applied to
// every Testbed at construction. The bench binaries set it from --spans
// before any sweep runs; sweep workers only ever read it.
void set_spans_default(bool enabled);
bool spans_default();
// The five paper transports, in figure order. kProxy (the RDMAvisor-style
// shared-QP baseline, docs/scaling.md) is deliberately NOT in this list:
// the figure benches iterate it, and their output is pinned byte-identical.
inline const std::vector<TransportKind>& all_transports() {
  static const std::vector<TransportKind> kAll = {
      TransportKind::kRawWrite, TransportKind::kHerd, TransportKind::kFasst,
      TransportKind::kSelfRpc, TransportKind::kScaleRpc};
  return kAll;
}

struct TestbedConfig {
  TransportKind kind = TransportKind::kScaleRpc;
  int num_clients = 40;
  int num_client_nodes = 11;       // paper: 12-node cluster, one server
  int cores_per_client_node = 24;  // E5-2650 v4 (single socket's worth)
  core::ScaleRpcConfig rpc;        // superset of TransportConfig
  simrdma::SimParams sim;
  // Optional fault plan (docs/faults.md), attached to the fabric before any
  // traffic and — for ScaleRPC — before the server is built, so recovery
  // mode is on from the first admit. Null keeps the fabric lossless and
  // every fault/recovery path compiled out of the hot path.
  const fault::FaultPlan* faults = nullptr;
  uint64_t fault_seed = 0;  // salt mixed into the injector's Rng
  // When true, construction builds the client objects but does not connect
  // them: call Testbed::connect_client()/connect_all() later. An
  // unconnected client owns no QP, CQ, watcher, or arena region — the
  // scale-wall bench and the lazy-allocation test depend on that.
  bool defer_connect = false;
};

// A constructed testbed: cluster + server + connected clients.
class Testbed {
 public:
  explicit Testbed(TestbedConfig cfg);

  sim::EventLoop& loop() { return cluster_.loop(); }
  simrdma::Cluster& cluster() { return cluster_; }
  simrdma::Node* server_node() { return server_node_; }
  rpc::RpcServer& server() { return *server_; }
  core::ScaleRpcServer* scalerpc() { return scalerpc_; }
  const TestbedConfig& config() const { return cfg_; }
  size_t num_clients() const { return clients_.size(); }
  rpc::RpcClient& client(size_t i) { return *clients_[i]; }
  core::ScaleRpcClient* scalerpc_client(size_t i);

  // Deferred connection (TestbedConfig::defer_connect). connect_client runs
  // the client's connect() to completion on the testbed loop; connect_all
  // connects every still-unconnected client in id order. Both directions
  // are idempotent: connecting a connected client (or disconnecting a
  // disconnected one) is a no-op, so churn drivers need no bookkeeping.
  // disconnect_client returns the client to the unconnected state (QP and
  // watchers released; the arena regions and id are retained for rejoin) —
  // only ScaleRPC implements disconnect. These run the loop to completion
  // (sim::run_blocking) and cannot be called from inside a coroutine; see
  // ctrl::ConnectionManager for loop-internal churn.
  void connect_client(size_t i);
  void disconnect_client(size_t i);
  void connect_all();
  bool client_connected(size_t i) const { return connected_[i]; }
  // Loop-internal (awaitable) connect/disconnect for churn drivers that
  // run while the simulation is in flight. Keeps connected_ in sync.
  sim::Task<void> connect_client_async(size_t i);
  sim::Task<void> disconnect_client_async(size_t i);

 private:
  TestbedConfig cfg_;
  simrdma::Cluster cluster_;
  simrdma::Node* server_node_ = nullptr;
  std::vector<simrdma::Node*> client_nodes_;
  std::vector<std::unique_ptr<rpc::CpuPool>> cpu_pools_;
  std::unique_ptr<rpc::RpcServer> server_;
  core::ScaleRpcServer* scalerpc_ = nullptr;
  std::vector<std::unique_ptr<rpc::RpcClient>> clients_;
  std::vector<bool> connected_;
};

struct EchoWorkload {
  int batch = 1;
  uint32_t msg_bytes = 32;   // request payload (paper default)
  Nanos handler_cpu = 100;   // application work per request
  Nanos warmup = usec(400);
  Nanos measure = msec(2);
  // Shapes the request bytes each client sends (the data the simulated DMA
  // engines actually copy). Timing is content-independent, so identical
  // configurations stay byte-identical in figure output across seeds.
  uint64_t seed = 1;
  // Optional per-client think time between batches (Fig. 12 skew); empty
  // means closed-loop with no think time.
  std::vector<Nanos> per_client_think;
};

struct EchoResult {
  uint64_t ops = 0;
  Nanos elapsed = 0;
  double mops = 0.0;
  Histogram batch_latency;  // microseconds
  simrdma::PcmCounters server_pcm;  // delta over the measurement window
  uint64_t server_qp_cache_misses = 0;
  // ScaleRPC recovery stats (all zero on a lossless fabric — run_echo
  // asserts the first one is, so a fault-free figure bench can never hide
  // a timeout regression).
  uint64_t client_timeouts = 0;
  uint64_t client_reconnects = 0;
  uint64_t server_dup_rpcs = 0;
};

// Runs the echo workload in two phases around an explicit snapshot point:
// construction registers the handler, starts the server, spawns every
// client driver, and runs the warmup window; measure() runs the
// measurement window and collects the result. Splitting the phases lets
// warm-started sweeps snapshot a fully warmed simulation (fork +
// copy-on-write, src/harness/sweep.h) and pay only the measurement phase
// per point. measure() must be called exactly once.
class EchoDriver {
 public:
  EchoDriver(Testbed& bed, const EchoWorkload& wl);
  ~EchoDriver();
  EchoDriver(const EchoDriver&) = delete;
  EchoDriver& operator=(const EchoDriver&) = delete;

  EchoResult measure();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

// Registers an echo handler, starts the server, drives all clients in a
// closed loop, and measures over the configured window. Equivalent to
// EchoDriver(bed, wl).measure().
EchoResult run_echo(Testbed& bed, const EchoWorkload& wl);

}  // namespace scalerpc::harness

#endif  // SRC_HARNESS_HARNESS_H_
