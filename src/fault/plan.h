// Deterministic fault plans: a seeded, sim-time-keyed schedule of fabric
// and host faults.
//
// A FaultPlan is pure data — a list of rules, each scoped to a sim-time
// window [start, end) and (for link faults) a (src, dst) endpoint filter.
// It is either built programmatically (tests, benches) or loaded from a
// small line-based text file (`--faults=PATH`, see docs/faults.md for the
// schema). The plan itself draws no randomness; the per-run randomness
// (did *this* packet drop?) lives in FaultInjector (inject.h), which owns
// an Rng seeded from the plan, so identical seed+plan ⇒ byte-identical
// runs regardless of host or thread count.
//
// This library depends only on src/common — the simulator consults it, not
// the other way around, so the fabric model stays layered.
#ifndef SRC_FAULT_PLAN_H_
#define SRC_FAULT_PLAN_H_

#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "src/common/units.h"

namespace scalerpc::fault {

constexpr int kAnyNode = -1;
constexpr Nanos kNever = std::numeric_limits<Nanos>::max();

enum class FaultKind : uint8_t {
  kDrop,     // packet vanishes in the fabric with `probability`
  kCorrupt,  // packet arrives damaged; the receiving NIC's ICRC check
             // discards it (same recovery path as a drop, counted apart)
  kDelay,    // every matching hop takes `extra_ns` longer
  kNicSlow,  // NIC engine processing on `node` is scaled by `factor`;
             // factor 0 means a full stall until the window ends
  kQpError,  // QP (`node`, `qpn`) is forced into the error state at `start`
  kCrash,    // `node` is unreachable during [start, end): its NIC drops
             // all inbound/outbound packets and every local QP is errored
             // at crash time. Host memory persists across the restart (the
             // paper's systems target persistent memory).
};

const char* to_string(FaultKind k);

struct FaultRule {
  FaultKind kind = FaultKind::kDrop;
  Nanos start = 0;
  Nanos end = kNever;       // active window [start, end)
  int src_node = kAnyNode;  // link faults: source filter (-1: any)
  int node = kAnyNode;      // destination / affected node (-1: any)
  double probability = 1.0; // kDrop / kCorrupt per-packet probability
  Nanos extra_ns = 0;       // kDelay: added per-hop latency
  double factor = 1.0;      // kNicSlow: processing-cost multiplier
  uint32_t qpn = 0;         // kQpError target

  bool active(Nanos now) const { return now >= start && now < end; }
  bool matches_link(Nanos now, int src, int dst) const {
    return active(now) && (src_node == kAnyNode || src_node == src) &&
           (node == kAnyNode || node == dst);
  }
};

class FaultPlan {
 public:
  // Seed mixed into the injector's Rng (together with the run's salt).
  uint64_t seed = 1;

  // --- Builders (return *this for chaining) ---
  FaultPlan& drop(double p, Nanos from = 0, Nanos until = kNever,
                  int src = kAnyNode, int dst = kAnyNode);
  FaultPlan& corrupt(double p, Nanos from = 0, Nanos until = kNever,
                     int src = kAnyNode, int dst = kAnyNode);
  FaultPlan& delay(Nanos extra, Nanos from = 0, Nanos until = kNever,
                   int src = kAnyNode, int dst = kAnyNode);
  // factor > 1 slows the NIC down; factor == 0 stalls it until `until`.
  FaultPlan& nic_slow(int node, double factor, Nanos from, Nanos until);
  FaultPlan& qp_error(int node, uint32_t qpn, Nanos at);
  FaultPlan& crash(int node, Nanos at, Nanos restart);

  const std::vector<FaultRule>& rules() const { return rules_; }
  bool empty() const { return rules_.empty(); }
  size_t size() const { return rules_.size(); }

  // Parses the text schema (docs/faults.md). Returns nullopt and fills
  // `error` (if non-null) with "line N: reason" on malformed input.
  static std::optional<FaultPlan> load(const std::string& path,
                                       std::string* error = nullptr);
  static std::optional<FaultPlan> parse(const std::string& text,
                                        std::string* error = nullptr);

  // Deterministic human-readable one-liner ("3 rules: drop ...") used in
  // bench headers; never includes pointers or host state.
  std::string summary() const;

 private:
  std::vector<FaultRule> rules_;
};

}  // namespace scalerpc::fault

#endif  // SRC_FAULT_PLAN_H_
