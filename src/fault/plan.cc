#include "src/fault/plan.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace scalerpc::fault {

const char* to_string(FaultKind k) {
  switch (k) {
    case FaultKind::kDrop:
      return "drop";
    case FaultKind::kCorrupt:
      return "corrupt";
    case FaultKind::kDelay:
      return "delay";
    case FaultKind::kNicSlow:
      return "nic_slow";
    case FaultKind::kQpError:
      return "qp_error";
    case FaultKind::kCrash:
      return "crash";
  }
  return "?";
}

FaultPlan& FaultPlan::drop(double p, Nanos from, Nanos until, int src, int dst) {
  FaultRule r;
  r.kind = FaultKind::kDrop;
  r.probability = p;
  r.start = from;
  r.end = until;
  r.src_node = src;
  r.node = dst;
  rules_.push_back(r);
  return *this;
}

FaultPlan& FaultPlan::corrupt(double p, Nanos from, Nanos until, int src, int dst) {
  FaultRule r;
  r.kind = FaultKind::kCorrupt;
  r.probability = p;
  r.start = from;
  r.end = until;
  r.src_node = src;
  r.node = dst;
  rules_.push_back(r);
  return *this;
}

FaultPlan& FaultPlan::delay(Nanos extra, Nanos from, Nanos until, int src, int dst) {
  FaultRule r;
  r.kind = FaultKind::kDelay;
  r.extra_ns = extra;
  r.start = from;
  r.end = until;
  r.src_node = src;
  r.node = dst;
  rules_.push_back(r);
  return *this;
}

FaultPlan& FaultPlan::nic_slow(int node, double factor, Nanos from, Nanos until) {
  FaultRule r;
  r.kind = FaultKind::kNicSlow;
  r.node = node;
  r.factor = factor;
  r.start = from;
  r.end = until;
  rules_.push_back(r);
  return *this;
}

FaultPlan& FaultPlan::qp_error(int node, uint32_t qpn, Nanos at) {
  FaultRule r;
  r.kind = FaultKind::kQpError;
  r.node = node;
  r.qpn = qpn;
  r.start = at;
  r.end = kNever;
  rules_.push_back(r);
  return *this;
}

FaultPlan& FaultPlan::crash(int node, Nanos at, Nanos restart) {
  FaultRule r;
  r.kind = FaultKind::kCrash;
  r.node = node;
  r.start = at;
  r.end = restart;
  rules_.push_back(r);
  return *this;
}

namespace {

// "2us" / "1500" / "3ms" / "1s" -> nanoseconds. Returns false on garbage.
bool parse_time(const std::string& tok, Nanos* out) {
  char* end = nullptr;
  const long long v = std::strtoll(tok.c_str(), &end, 10);
  if (end == tok.c_str()) {
    return false;
  }
  const std::string suffix(end);
  if (suffix.empty() || suffix == "ns") {
    *out = v;
  } else if (suffix == "us") {
    *out = usec(v);
  } else if (suffix == "ms") {
    *out = msec(v);
  } else if (suffix == "s") {
    *out = v * kSecond;
  } else {
    return false;
  }
  return true;
}

bool parse_node(const std::string& tok, int* out) {
  if (tok == "*") {
    *out = kAnyNode;
    return true;
  }
  char* end = nullptr;
  const long v = std::strtol(tok.c_str(), &end, 10);
  if (end == tok.c_str() || *end != '\0' || v < 0) {
    return false;
  }
  *out = static_cast<int>(v);
  return true;
}

struct KvArgs {
  std::vector<std::pair<std::string, std::string>> kv;
  const std::string* find(const std::string& key) const {
    for (const auto& [k, v] : kv) {
      if (k == key) {
        return &v;
      }
    }
    return nullptr;
  }
};

}  // namespace

std::optional<FaultPlan> FaultPlan::load(const std::string& path, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) {
      *error = "cannot open " + path;
    }
    return std::nullopt;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  return parse(buf.str(), error);
}

std::optional<FaultPlan> FaultPlan::parse(const std::string& text, std::string* error) {
  FaultPlan plan;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  auto fail = [&](const std::string& why) {
    if (error != nullptr) {
      *error = "line " + std::to_string(lineno) + ": " + why;
    }
    return std::nullopt;
  };

  while (std::getline(in, line)) {
    lineno++;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) {
      line.resize(hash);
    }
    std::istringstream ls(line);
    std::string verb;
    if (!(ls >> verb)) {
      continue;  // blank / comment-only line
    }
    if (verb == "seed") {
      std::string num;
      if (!(ls >> num) || !std::isdigit(static_cast<unsigned char>(num[0]))) {
        return fail("seed takes the form 'seed N'");
      }
      plan.seed = std::strtoull(num.c_str(), nullptr, 10);
      continue;
    }
    KvArgs args;
    std::string tok;
    while (ls >> tok) {
      const size_t eq = tok.find('=');
      if (eq == std::string::npos) {
        return fail("expected key=value, got '" + tok + "'");
      }
      args.kv.emplace_back(tok.substr(0, eq), tok.substr(eq + 1));
    }
    auto get_time = [&](const char* key, Nanos fallback, Nanos* out) -> bool {
      const std::string* v = args.find(key);
      if (v == nullptr) {
        *out = fallback;
        return true;
      }
      return parse_time(*v, out);
    };
    auto get_node = [&](const char* key, int fallback, int* out) -> bool {
      const std::string* v = args.find(key);
      if (v == nullptr) {
        *out = fallback;
        return true;
      }
      return parse_node(*v, out);
    };

    Nanos from = 0;
    Nanos until = kNever;
    int src = kAnyNode;
    int dst = kAnyNode;
    if (!get_time("from", 0, &from) || !get_time("until", kNever, &until)) {
      return fail("bad time value (use N[ns|us|ms|s])");
    }
    if (!get_node("src", kAnyNode, &src) || !get_node("dst", kAnyNode, &dst)) {
      return fail("bad node value (use * or a node id)");
    }

    if (verb == "drop" || verb == "corrupt") {
      const std::string* p = args.find("p");
      if (p == nullptr) {
        return fail(verb + " needs p=PROB");
      }
      const double prob = std::strtod(p->c_str(), nullptr);
      if (prob < 0.0 || prob > 1.0) {
        return fail("p must be in [0, 1]");
      }
      if (verb == "drop") {
        plan.drop(prob, from, until, src, dst);
      } else {
        plan.corrupt(prob, from, until, src, dst);
      }
    } else if (verb == "delay") {
      Nanos extra = 0;
      const std::string* add = args.find("add");
      if (add == nullptr || !parse_time(*add, &extra) || extra < 0) {
        return fail("delay needs add=TIME");
      }
      plan.delay(extra, from, until, src, dst);
    } else if (verb == "nic_slow" || verb == "nic_stall") {
      int node = kAnyNode;
      if (!get_node("node", kAnyNode, &node) || node == kAnyNode) {
        return fail(verb + " needs node=N");
      }
      double factor = 0.0;
      if (verb == "nic_slow") {
        const std::string* f = args.find("factor");
        if (f == nullptr || (factor = std::strtod(f->c_str(), nullptr)) < 1.0) {
          return fail("nic_slow needs factor>=1");
        }
      }
      if (until == kNever) {
        return fail(verb + " needs until=TIME (stalls must end)");
      }
      plan.nic_slow(node, factor, from, until);
    } else if (verb == "qp_error") {
      int node = kAnyNode;
      if (!get_node("node", kAnyNode, &node) || node == kAnyNode) {
        return fail("qp_error needs node=N");
      }
      const std::string* q = args.find("qpn");
      Nanos at = 0;
      if (q == nullptr || !get_time("at", -1, &at) || at < 0) {
        return fail("qp_error needs qpn=N at=TIME");
      }
      plan.qp_error(node, static_cast<uint32_t>(std::strtoul(q->c_str(), nullptr, 10)),
                    at);
    } else if (verb == "crash") {
      int node = kAnyNode;
      Nanos at = 0;
      Nanos restart = kNever;
      if (!get_node("node", kAnyNode, &node) || node == kAnyNode) {
        return fail("crash needs node=N");
      }
      if (!get_time("at", -1, &at) || at < 0 ||
          !get_time("restart", kNever, &restart) || restart <= at) {
        return fail("crash needs at=TIME restart=TIME (restart > at)");
      }
      plan.crash(node, at, restart);
    } else {
      return fail("unknown fault '" + verb + "'");
    }
  }
  return plan;
}

std::string FaultPlan::summary() const {
  std::ostringstream out;
  out << rules_.size() << (rules_.size() == 1 ? " rule" : " rules");
  for (const auto& r : rules_) {
    out << " | " << to_string(r.kind);
    switch (r.kind) {
      case FaultKind::kDrop:
      case FaultKind::kCorrupt: {
        char buf[32];
        std::snprintf(buf, sizeof(buf), " p=%g", r.probability);
        out << buf;
        break;
      }
      case FaultKind::kDelay:
        out << " +" << r.extra_ns << "ns";
        break;
      case FaultKind::kNicSlow: {
        char buf[32];
        std::snprintf(buf, sizeof(buf), " node=%d x%g", r.node, r.factor);
        out << buf;
        break;
      }
      case FaultKind::kQpError:
        out << " node=" << r.node << " qpn=" << r.qpn;
        break;
      case FaultKind::kCrash:
        out << " node=" << r.node;
        break;
    }
  }
  return out.str();
}

}  // namespace scalerpc::fault
