// FaultInjector: the runtime half of the fault subsystem. A Cluster owns
// at most one injector (attach_faults); the NIC / switch hot paths consult
// it through nullable-pointer hooks, so a run with no plan attached does
// zero extra work and produces a byte-identical event sequence — the same
// standard src/trace holds itself to.
//
// All per-packet randomness (did *this* packet drop?) comes from the
// injector's own Rng, seeded `plan.seed ^ salt`. The simulation is
// single-threaded, so the draw order is fixed by the event order and the
// whole run stays deterministic.
#ifndef SRC_FAULT_INJECT_H_
#define SRC_FAULT_INJECT_H_

#include <cstdint>

#include "src/common/rng.h"
#include "src/common/units.h"
#include "src/fault/plan.h"
#include "src/metrics/flight.h"
#include "src/metrics/metrics.h"

namespace scalerpc::fault {

// Injected-event totals, for bench output and trace correlation.
struct FaultCounters {
  uint64_t drops = 0;          // packets vanished in the fabric
  uint64_t corruptions = 0;    // packets delivered damaged (ICRC discard)
  uint64_t delayed_packets = 0;
  uint64_t crash_drops = 0;    // packets dropped because a node was down
  uint64_t qp_errors = 0;      // forced QP error transitions fired
  uint64_t crashes = 0;        // crash windows entered
  uint64_t restarts = 0;       // crash windows exited
};

class FaultInjector {
 public:
  FaultInjector(const FaultPlan& plan, uint64_t salt)
      : plan_(plan), rng_(plan.seed ^ salt) {}

  // --- Link hooks (switch routing path) ---
  bool should_drop(Nanos now, int src, int dst) {
    for (const FaultRule& r : plan_.rules()) {
      if (r.kind == FaultKind::kDrop && r.matches_link(now, src, dst) &&
          rng_.next_bool(r.probability)) {
        counters_.drops++;
        if (metrics::FlightRecorder* f = metrics::flight()) {
          f->note("fault.drop", now, src, dst);
          f->trigger("fault.drop", now);
        }
        return true;
      }
    }
    return false;
  }

  bool should_corrupt(Nanos now, int src, int dst) {
    for (const FaultRule& r : plan_.rules()) {
      if (r.kind == FaultKind::kCorrupt && r.matches_link(now, src, dst) &&
          rng_.next_bool(r.probability)) {
        counters_.corruptions++;
        if (metrics::FlightRecorder* f = metrics::flight()) {
          f->note("fault.corrupt", now, src, dst);
          f->trigger("fault.corrupt", now);
        }
        return true;
      }
    }
    return false;
  }

  Nanos extra_delay(Nanos now, int src, int dst) {
    Nanos extra = 0;
    for (const FaultRule& r : plan_.rules()) {
      if (r.kind == FaultKind::kDelay && r.matches_link(now, src, dst)) {
        extra += r.extra_ns;
      }
    }
    if (extra > 0) {
      counters_.delayed_packets++;
    }
    return extra;
  }

  // --- NIC hooks ---
  // Scales a NIC processing cost by any active kNicSlow window on `node`.
  // factor == 0 (full stall) pushes the work past the end of the window.
  Nanos scale_cost(Nanos now, int node, Nanos cost) const {
    for (const FaultRule& r : plan_.rules()) {
      if (r.kind == FaultKind::kNicSlow && r.active(now) &&
          (r.node == kAnyNode || r.node == node)) {
        if (r.factor == 0.0) {
          cost += r.end - now;
        } else {
          cost = static_cast<Nanos>(static_cast<double>(cost) * r.factor);
        }
      }
    }
    return cost;
  }

  // True while `node` is inside a crash window.
  bool node_down(Nanos now, int node) const {
    for (const FaultRule& r : plan_.rules()) {
      if (r.kind == FaultKind::kCrash && r.node == node && r.active(now)) {
        return true;
      }
    }
    return false;
  }

  void count_crash_drop() { counters_.crash_drops++; }
  void count_qp_error() { counters_.qp_errors++; }
  void count_crash() { counters_.crashes++; }
  void count_restart() { counters_.restarts++; }

  const FaultPlan& plan() const { return plan_; }
  const FaultCounters& counters() const { return counters_; }

 private:
  FaultPlan plan_;  // by value: the injector outlives the caller's plan
  Rng rng_;
  FaultCounters counters_;
};

}  // namespace scalerpc::fault

#endif  // SRC_FAULT_INJECT_H_
