// MICA-style in-memory key-value store (paper Section 4.2).
//
// Items live in an RDMA-registered slab of the owning node's memory with a
// fixed layout so transactions can validate and commit with one-sided
// verbs:
//
//   Item: | key:8 | lock:4 | version:4 | value[value_bytes] |
//
// `lock`..`value` are contiguous, so a ScaleTX commit is a single RDMA
// write of {lock=0, version+1, new value} starting at header_addr(), and a
// validation is an 8-byte RDMA read of {lock, version}.
// Index: open addressing with linear probing over item slots (a simplified
// MICA lossless index; load factor kept < 0.5 by construction).
#ifndef SRC_KV_HASHSTORE_H_
#define SRC_KV_HASHSTORE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/simrdma/node.h"

namespace scalerpc::kv {

class HashStore {
 public:
  // Carves the slab out of `node`'s registered arena.
  HashStore(simrdma::Node* node, uint64_t capacity, uint32_t value_bytes);

  uint32_t value_bytes() const { return value_bytes_; }
  uint64_t capacity() const { return capacity_; }
  uint64_t size() const { return size_; }
  uint32_t rkey() const { return rkey_; }

  // Inserts a new key (fails if present or full). Returns the slot index.
  std::optional<uint64_t> insert(uint64_t key, std::span<const uint8_t> value);

  struct View {
    uint64_t slot = 0;
    uint64_t header_addr = 0;  // address of the lock field (lock|version|value)
    uint32_t version = 0;
    uint32_t lock = 0;
    std::vector<uint8_t> value;
  };
  // Looks a key up; the returned view is a snapshot.
  std::optional<View> lookup(uint64_t key) const;

  // Locking (used by the transaction execution phase). `owner` tags the
  // holder for debugging; 0 means unlocked.
  bool try_lock(uint64_t key, uint32_t owner);
  void unlock(uint64_t key);

  // In-place update: bumps the version and releases the lock (the RPC-based
  // commit path; the one-sided path writes the same bytes remotely).
  bool commit_update(uint64_t key, std::span<const uint8_t> value);

  // Address helpers for one-sided access.
  uint64_t slot_addr(uint64_t slot) const { return base_ + slot * item_bytes(); }
  uint64_t header_addr(uint64_t slot) const { return slot_addr(slot) + 8; }
  uint32_t item_bytes() const { return 16 + value_bytes_; }
  // Bytes a one-sided commit writes: lock + version + value.
  uint32_t commit_bytes() const { return 8 + value_bytes_; }

  // CPU cost (ns) of an index probe + item touch, charged by RPC handlers.
  Nanos probe_cost(uint64_t key) const;

 private:
  std::optional<uint64_t> find_slot(uint64_t key) const;
  static uint64_t mix(uint64_t key);

  simrdma::Node* node_;
  uint64_t capacity_;
  uint32_t value_bytes_;
  uint64_t base_;
  uint32_t rkey_;
  uint64_t size_ = 0;
  std::vector<bool> used_;
};

}  // namespace scalerpc::kv

#endif  // SRC_KV_HASHSTORE_H_
