#include "src/kv/hashstore.h"

namespace scalerpc::kv {

HashStore::HashStore(simrdma::Node* node, uint64_t capacity, uint32_t value_bytes)
    : node_(node),
      capacity_(capacity),
      value_bytes_(value_bytes),
      base_(node->alloc(capacity * (16 + value_bytes), 4096)),
      rkey_(node->arena_mr()->rkey),
      used_(capacity, false) {
  SCALERPC_CHECK(capacity_ > 0);
}

uint64_t HashStore::mix(uint64_t key) {
  uint64_t z = key + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::optional<uint64_t> HashStore::find_slot(uint64_t key) const {
  uint64_t slot = mix(key) % capacity_;
  for (uint64_t i = 0; i < capacity_; ++i) {
    if (!used_[slot]) {
      return std::nullopt;
    }
    if (node_->memory().load_pod<uint64_t>(slot_addr(slot)) == key) {
      return slot;
    }
    slot = (slot + 1) % capacity_;
  }
  return std::nullopt;
}

std::optional<uint64_t> HashStore::insert(uint64_t key, std::span<const uint8_t> value) {
  SCALERPC_CHECK(value.size() <= value_bytes_);
  if (size_ >= capacity_) {
    return std::nullopt;
  }
  uint64_t slot = mix(key) % capacity_;
  for (uint64_t i = 0; i < capacity_; ++i) {
    if (used_[slot]) {
      if (node_->memory().load_pod<uint64_t>(slot_addr(slot)) == key) {
        return std::nullopt;  // duplicate
      }
      slot = (slot + 1) % capacity_;
      continue;
    }
    auto& mem = node_->memory();
    mem.store_pod<uint64_t>(slot_addr(slot), key);
    mem.store_pod<uint32_t>(slot_addr(slot) + 8, 0);   // lock
    mem.store_pod<uint32_t>(slot_addr(slot) + 12, 1);  // version
    mem.store(slot_addr(slot) + 16, value);
    used_[slot] = true;
    size_++;
    return slot;
  }
  return std::nullopt;
}

std::optional<HashStore::View> HashStore::lookup(uint64_t key) const {
  auto slot = find_slot(key);
  if (!slot.has_value()) {
    return std::nullopt;
  }
  const auto& mem = node_->memory();
  View v;
  v.slot = *slot;
  v.header_addr = header_addr(*slot);
  v.lock = mem.load_pod<uint32_t>(slot_addr(*slot) + 8);
  v.version = mem.load_pod<uint32_t>(slot_addr(*slot) + 12);
  v.value.resize(value_bytes_);
  mem.load(slot_addr(*slot) + 16, v.value);
  return v;
}

bool HashStore::try_lock(uint64_t key, uint32_t owner) {
  SCALERPC_CHECK(owner != 0);
  auto slot = find_slot(key);
  if (!slot.has_value()) {
    return false;
  }
  auto& mem = node_->memory();
  if (mem.load_pod<uint32_t>(slot_addr(*slot) + 8) != 0) {
    return false;
  }
  mem.store_pod<uint32_t>(slot_addr(*slot) + 8, owner);
  return true;
}

void HashStore::unlock(uint64_t key) {
  auto slot = find_slot(key);
  SCALERPC_CHECK(slot.has_value());
  node_->memory().store_pod<uint32_t>(slot_addr(*slot) + 8, 0);
}

bool HashStore::commit_update(uint64_t key, std::span<const uint8_t> value) {
  SCALERPC_CHECK(value.size() <= value_bytes_);
  auto slot = find_slot(key);
  if (!slot.has_value()) {
    return false;
  }
  auto& mem = node_->memory();
  const auto version = mem.load_pod<uint32_t>(slot_addr(*slot) + 12);
  mem.store_pod<uint32_t>(slot_addr(*slot) + 12, version + 1);
  mem.store(slot_addr(*slot) + 16, value);
  mem.store_pod<uint32_t>(slot_addr(*slot) + 8, 0);  // release lock
  return true;
}

Nanos HashStore::probe_cost(uint64_t key) const {
  // One index probe plus the item's lines through the LLC model.
  auto slot = find_slot(key);
  if (!slot.has_value()) {
    return node_->params().llc_miss_ns;
  }
  return node_->llc().cpu_read(slot_addr(*slot), item_bytes());
}

}  // namespace scalerpc::kv
