// Labeled metrics registry: counter/gauge/histogram instruments keyed by
// {entity_kind, entity_id, name}, dense-slot storage.
//
// Same contract as src/trace (DESIGN.md §6):
//  * Zero cost when off. Every hook first reads one thread_local session
//    pointer; with no session installed the hook is a predicted branch and
//    nothing else. The counting-allocator test covers the metrics-off path.
//  * Deterministic when on. Values are plain sums of deterministic sim
//    events, buffered per sweep slot (collector.h) and serialized sorted by
//    entity label, so a merged dump is byte-identical for any --threads
//    value and for both NIC engines (the hooks sit at engine-shared or
//    event-parity sites; see tests/integration/metrics_determinism_test.cc).
//  * One simulation per thread: the session is thread_local, matching the
//    sweep engine's execution model.
//
// Series names come from the fixed schema (schema.h), so the hot path is
// `registry->add(kQpBytesTx, slot, n)` — one bounds check + one array add.
#ifndef SRC_METRICS_METRICS_H_
#define SRC_METRICS_METRICS_H_

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/stats.h"
#include "src/metrics/schema.h"

namespace scalerpc::metrics {

class FlightRecorder;

// One QP's counter block: the kQp schema columns, contiguous, indexed by
// Column directly (they are the schema prefix). The NIC caches the block
// pointer on the QueuePair, so a steady-state per-packet hook is one
// member load + one field add — no slot lookup, no bounds check. Blocks
// live in a deque inside the Registry: stable addresses across growth.
struct QpCounters {
  uint64_t v[kQpColumnCount] = {};
};

class Registry {
 public:
  Registry();

  // Counters accumulate, gauges overwrite, histograms record samples. The
  // caller passes the dense slot for the entity: for kQp columns that is a
  // slot from qp_slot(); for node/group/client columns the natural small
  // index (node id, group index, client id) is the slot.
  void add(Column c, uint32_t slot, uint64_t delta) {
    if (c < kQpColumnCount) {  // folds away: call sites pass a constant c
      qp_counters_[slot].v[c] += delta;
      return;
    }
    auto& v = scalars_[c];
    if (slot >= v.size()) {
      grow(c, slot);
    }
    v[slot] += delta;
  }
  void set(Column c, uint32_t slot, uint64_t value) {
    if (c < kQpColumnCount) {
      qp_counters_[slot].v[c] = value;
      return;
    }
    auto& v = scalars_[c];
    if (slot >= v.size()) {
      grow(c, slot);
    }
    v[slot] = value;
  }
  void record(Column c, uint32_t slot, uint64_t value) {
    auto& h = hists_[c];
    if (slot >= h.size()) {
      grow_hist(c, slot);
    }
    h[slot].record(value);
  }

  // Dense slot for a labeled kQp entity. O(1) amortized. Slots are assigned
  // in first-touch order; the dump sorts by label, so assignment order
  // never shows in the output. add()/set() on a kQp column require a slot
  // from here (it allocates the counter block).
  uint32_t qp_slot(uint32_t node, uint32_t qpn);

  // The entity's counter block, for callers that can cache it (QueuePair
  // does) — the hot-hook alternative to qp_slot()+add(). Stable address for
  // the life of the registry.
  QpCounters* qp_counters(uint32_t node, uint32_t qpn) {
    return &qp_counters_[qp_slot(node, qpn)];
  }

  // Test/inspection accessors (0 / null when never touched).
  uint64_t value(Column c, uint32_t slot) const;
  const Histogram* histogram(Column c, uint32_t slot) const;

  // Appends the registry as a deterministic JSON object:
  //   {"series":[{"kind":..,"name":..,"instrument":..,"points":[..]},..]}
  // Columns appear in schema order; untouched columns are omitted; points
  // are sorted by entity label.
  void dump(std::string& out) const;

 private:
  void grow(Column c, uint32_t slot);
  void grow_hist(Column c, uint32_t slot);

  // Non-kQp scalar columns (kQp entries of these arrays stay empty — their
  // data lives in qp_counters_).
  std::vector<uint64_t> scalars_[kColumnCount];
  std::vector<Histogram> hists_[kColumnCount];
  // kQp label <-> dense slot mapping, plus one counter block per slot
  // (deque: block addresses survive growth, which is what lets QueuePair
  // cache them).
  std::unordered_map<uint64_t, uint32_t> qp_slots_;
  std::vector<uint64_t> qp_labels_;  // slot -> label
  std::deque<QpCounters> qp_counters_;
};

// ---------------------------------------------------------------------------
// Thread-local session: the hook side, mirroring trace::Session.

// All fields may be null independently (--metrics without a flight
// recorder and vice versa — fault benches install only the recorder).
struct Session {
  Registry* registry = nullptr;
  FlightRecorder* flight = nullptr;
};

// The session lives in TLS *by value* (two plain pointer fields, null when
// metrics are off), so a hook is one TLS field load — no second pointer
// chase and no null-session check. The NIC data plane runs these hooks per
// packet event; that one removed indirection is what keeps the simspeed
// metrics-on overhead gate green.
extern thread_local Session g_session;

inline Registry* registry() { return g_session.registry; }

inline FlightRecorder* flight() { return g_session.flight; }

// RAII session installer; restores the previous session on destruction.
// Also installs (once per process) the SCALERPC_CHECK failure hook that
// dumps the active flight recorder, so a failing assertion anywhere leaves
// a forensic artifact.
class ScopedSession {
 public:
  explicit ScopedSession(Session s);
  ~ScopedSession() { g_session = prev_; }
  ScopedSession(const ScopedSession&) = delete;
  ScopedSession& operator=(const ScopedSession&) = delete;

 private:
  Session prev_;
};

}  // namespace scalerpc::metrics

#endif  // SRC_METRICS_METRICS_H_
