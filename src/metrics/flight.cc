#include "src/metrics/flight.h"

#include <cinttypes>
#include <cstdio>

namespace scalerpc::metrics {

FlightRecorder::FlightRecorder(size_t capacity)
    : ring_(capacity == 0 ? 1 : capacity) {}

namespace {

void append_i64(std::string& out, int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  out += buf;
}

}  // namespace

void FlightRecorder::dump(std::string& out) const {
  out += "{\"trigger\":\"";
  out += trigger_reason_ != nullptr ? trigger_reason_ : "none";
  out += "\",\"trigger_ts_ns\":";
  append_i64(out, trigger_ts_);
  out += ",\"events\":[\n";
  // Oldest first: the ring head points at the next overwrite target, which
  // is the oldest event once the ring has wrapped.
  const size_t start = count_ == ring_.size() ? head_ : 0;
  for (size_t i = 0; i < count_; ++i) {
    const Event& e = ring_[(start + i) % ring_.size()];
    if (i != 0) {
      out += ",\n";
    }
    out += "{\"ts_ns\":";
    append_i64(out, e.ts);
    out += ",\"node\":";
    append_i64(out, e.node);
    out += ",\"name\":\"";
    out += e.name;
    out += "\",\"a\":";
    append_i64(out, e.a);
    out += ",\"b\":";
    append_i64(out, e.b);
    out += "}";
  }
  out += "\n]}\n";
}

const std::string& FlightRecorder::dump_now() const {
  static const std::string kEmpty;
  if (dump_path_.empty()) {
    return kEmpty;
  }
  std::string body;
  dump(body);
  std::FILE* f = std::fopen(dump_path_.c_str(), "w");
  if (f == nullptr) {
    return kEmpty;
  }
  std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  return dump_path_;
}

}  // namespace scalerpc::metrics
