// Canonical metric schema: every labeled series the tree produces, in one
// place, so producers (simrdma, scalerpc, harness) and consumers (the
// registry dump, tools/metrics2csv.py, observe.cc's timeline view) agree on
// kinds, instrument types, and names — and so column ids are compile-time
// constants and the hot path is a plain array increment.
//
// Adding a series = adding one Column enumerator and one kColumns row.
// Column order is the dump order, so appending keeps old dumps comparable.
#ifndef SRC_METRICS_SCHEMA_H_
#define SRC_METRICS_SCHEMA_H_

#include <cstdint>

namespace scalerpc::metrics {

// What a series is keyed by. kQp entities are labeled (node, qpn) packed by
// qp_label(); the other kinds use small dense indices directly (node id,
// group index, client id).
// kCtrl entities are control-plane series: node-scoped ones (processor ops,
// QP setups) use the node id as the slot; ConnectionManager-scoped ones
// (cache hits, evictions) use slot 0.
enum class Kind : uint8_t { kNode = 0, kQp = 1, kGroup = 2, kClient = 3, kCtrl = 4 };
constexpr int kKindCount = 5;

const char* kind_name(Kind k);

enum class Instrument : uint8_t { kCounter, kGauge, kHistogram };

enum Column : int {
  // Per-QP NIC behavior (hooked in src/simrdma/nic.cc, both engines).
  kQpCacheHits = 0,   // NIC connection-cache hits charged to this QP
  kQpCacheMisses,     // ...and misses (each one a PCIe context fetch)
  kQpWqeRefetches,    // WQE evicted between doorbell and execution
  kQpBytesTx,         // wire bytes sent on this QP (payload + headers)
  kQpBytesRx,         // wire bytes received on this QP
  kQpRetransmits,     // RC retransmissions (fault mode only)

  // Per-connection-group ScaleRPC server behavior (src/scalerpc/server.cc).
  kGroupRequests,     // RPCs executed while the group was scheduled
  kGroupBytes,        // request payload bytes
  kGroupSwitchIns,    // times the scheduler switched this group in
  kGroupCacheHits,    // NIC-cache hit delta attributed to this group's slice
  kGroupCacheMisses,  // NIC-cache miss delta attributed to this group's slice

  // Per-client ScaleRPC behavior (src/scalerpc/client.cc).
  kClientRequests,    // spans closed (responses collected)
  kClientTimeouts,    // flush timeouts observed
  kClientReconnects,  // recovery reconnects

  // Per-node gauges: the observed-timeline schema (src/harness/observe.cc
  // renders exactly kNodeObservedCount of these, in this order) plus
  // event-loop totals sampled at end of run.
  kNodePcieRdCur,
  kNodeRfo,
  kNodeItom,
  kNodePcieItom,
  kNodeL3Hits,
  kNodeL3Misses,
  kNodeQpCacheHits,
  kNodeQpCacheMisses,
  kNodeSendWqes,
  kNodeInboundPackets,
  kNodeAcksSent,
  kNodeBytesTx,
  kNodeBytesRx,
  kNodeOps,
  kNodeLoopEvents,    // event-loop events dispatched (whole sim, id 0)

  // Latency histograms, recorded at span close (values in microseconds).
  kGroupLatencyUs,
  kClientLatencyUs,

  // Control-plane series (src/simrdma/ctrl.h + src/ctrl/, appended by the
  // elastic-control-plane work — order is dump order, so new columns go at
  // the end). Node-scoped counters use the node id as slot; manager-scoped
  // ones use slot 0.
  kCtrlOps,           // control-processor ops executed on this node
  kCtrlQpSetups,      // full QP bring-ups charged (create + 3 modifies)
  kCtrlQpTeardowns,   // QP destroys charged
  kCtrlMrRegs,        // MR registrations charged
  kCtrlHandshakes,    // connect handshake rounds completed
  kCtrlCacheHits,     // ConnectionManager: acquire served by a live QP
  kCtrlCacheMisses,   // ...acquire that had to run a full setup
  kCtrlEvictions,     // idle connections LRU-evicted over capacity
  kCtrlAdmitRejects,  // acquires pushed back with retry-after
  kCtrlSetupLatencyUs,  // histogram: acquire() wait, request to connected

  kColumnCount,
};

struct ColumnDesc {
  Kind kind;
  Instrument instrument;
  const char* name;
};

inline constexpr ColumnDesc kColumns[kColumnCount] = {
    {Kind::kQp, Instrument::kCounter, "qp_cache_hits"},
    {Kind::kQp, Instrument::kCounter, "qp_cache_misses"},
    {Kind::kQp, Instrument::kCounter, "wqe_refetches"},
    {Kind::kQp, Instrument::kCounter, "bytes_tx"},
    {Kind::kQp, Instrument::kCounter, "bytes_rx"},
    {Kind::kQp, Instrument::kCounter, "retransmits"},
    {Kind::kGroup, Instrument::kCounter, "requests"},
    {Kind::kGroup, Instrument::kCounter, "bytes"},
    {Kind::kGroup, Instrument::kCounter, "switch_ins"},
    {Kind::kGroup, Instrument::kCounter, "qp_cache_hits"},
    {Kind::kGroup, Instrument::kCounter, "qp_cache_misses"},
    {Kind::kClient, Instrument::kCounter, "requests"},
    {Kind::kClient, Instrument::kCounter, "timeouts"},
    {Kind::kClient, Instrument::kCounter, "reconnects"},
    {Kind::kNode, Instrument::kGauge, "pcie_rd_cur"},
    {Kind::kNode, Instrument::kGauge, "rfo"},
    {Kind::kNode, Instrument::kGauge, "itom"},
    {Kind::kNode, Instrument::kGauge, "pcie_itom"},
    {Kind::kNode, Instrument::kGauge, "l3_hits"},
    {Kind::kNode, Instrument::kGauge, "l3_misses"},
    {Kind::kNode, Instrument::kGauge, "qp_cache_hits"},
    {Kind::kNode, Instrument::kGauge, "qp_cache_misses"},
    {Kind::kNode, Instrument::kGauge, "send_wqes"},
    {Kind::kNode, Instrument::kGauge, "inbound_packets"},
    {Kind::kNode, Instrument::kGauge, "acks_sent"},
    {Kind::kNode, Instrument::kGauge, "bytes_tx"},
    {Kind::kNode, Instrument::kGauge, "bytes_rx"},
    {Kind::kNode, Instrument::kGauge, "ops"},
    {Kind::kNode, Instrument::kGauge, "loop_events"},
    {Kind::kGroup, Instrument::kHistogram, "latency_us"},
    {Kind::kClient, Instrument::kHistogram, "latency_us"},
    {Kind::kCtrl, Instrument::kCounter, "ops"},
    {Kind::kCtrl, Instrument::kCounter, "qp_setups"},
    {Kind::kCtrl, Instrument::kCounter, "qp_teardowns"},
    {Kind::kCtrl, Instrument::kCounter, "mr_regs"},
    {Kind::kCtrl, Instrument::kCounter, "handshakes"},
    {Kind::kCtrl, Instrument::kCounter, "cache_hits"},
    {Kind::kCtrl, Instrument::kCounter, "cache_misses"},
    {Kind::kCtrl, Instrument::kCounter, "evictions"},
    {Kind::kCtrl, Instrument::kCounter, "admit_rejects"},
    {Kind::kCtrl, Instrument::kHistogram, "setup_latency_us"},
};

// The observed-timeline view (observe.cc): 14 node gauges starting here, in
// kColumns order. observe.cc's column-name table is generated from this.
constexpr int kNodeObservedFirst = kNodePcieRdCur;
constexpr int kNodeObservedCount = 14;

// The kQp columns are the schema prefix (enum values 0..kQpColumnCount-1),
// which lets the registry store each QP's counters as one contiguous block
// indexed directly by Column — the layout the per-packet NIC hooks write.
constexpr int kQpColumnCount = kQpRetransmits + 1;
static_assert(kColumns[kQpColumnCount - 1].kind == Kind::kQp &&
                  kColumns[kQpColumnCount].kind != Kind::kQp,
              "kQp columns must be the contiguous schema prefix");

// Label for a kQp entity: node id in the high half, qpn in the low half.
constexpr uint64_t qp_label(uint32_t node, uint32_t qpn) {
  return (static_cast<uint64_t>(node) << 32) | qpn;
}
constexpr uint32_t qp_label_node(uint64_t label) {
  return static_cast<uint32_t>(label >> 32);
}
constexpr uint32_t qp_label_qpn(uint64_t label) {
  return static_cast<uint32_t>(label);
}

}  // namespace scalerpc::metrics

#endif  // SRC_METRICS_SCHEMA_H_
