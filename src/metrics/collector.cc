#include "src/metrics/collector.h"

#include <cstdio>

#include "src/common/logging.h"

namespace scalerpc::metrics {

void Collector::resize(size_t slots) {
  SCALERPC_CHECK_MSG(slots_.empty() || slots_.size() == slots,
                     "metrics collector resized mid-run");
  slots_.resize(slots);
}

Session Collector::open(size_t slot, const std::string& label) {
  SCALERPC_CHECK(slot < slots_.size());
  Slot& s = slots_[slot];
  s.label = label;
  Session session;
  if (cfg_.metrics) {
    s.registry = std::make_unique<Registry>();
    session.registry = s.registry.get();
  }
  if (cfg_.flight) {
    s.flight = std::make_unique<FlightRecorder>(cfg_.flight_capacity);
    if (!cfg_.flight_prefix.empty()) {
      s.flight->set_dump_path(cfg_.flight_prefix + "." + std::to_string(slot) +
                              ".json");
    }
    session.flight = s.flight.get();
  }
  return session;
}

namespace {
bool write_string(const std::string& path, const std::string& body) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "error: cannot open %s for writing\n", path.c_str());
    return false;
  }
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  std::fclose(f);
  if (!ok) {
    std::fprintf(stderr, "error: short write to %s\n", path.c_str());
  }
  return ok;
}

// Minimal JSON string escape for slot labels (bench-controlled, but keep
// quotes/backslashes safe without pulling in the trace library).
void escape(std::string& out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
    }
    out += c;
  }
}
}  // namespace

bool Collector::write_metrics(const std::string& path,
                              const std::string& bench_name) const {
  if (path.empty() || !cfg_.metrics) {
    return true;
  }
  std::string out;
  out.reserve(1u << 16);
  out += "{\n  \"bench\": \"";
  escape(out, bench_name);
  out += "\",\n  \"slots\": [\n";
  bool first = true;
  for (const Slot& s : slots_) {
    if (s.registry == nullptr) {
      continue;
    }
    if (!first) {
      out += ",\n";
    }
    first = false;
    out += "    {\"label\": \"";
    escape(out, s.label);
    out += "\", \"metrics\": ";
    s.registry->dump(out);
    out += "}";
  }
  out += "\n  ]\n}\n";
  return write_string(path, out);
}

std::vector<std::string> Collector::write_flight_dumps() {
  std::vector<std::string> paths;
  for (Slot& s : slots_) {
    if (s.flight == nullptr || !s.flight->triggered()) {
      continue;
    }
    const std::string& path = s.flight->dump_now();
    if (!path.empty()) {
      std::fprintf(stderr, "flight recorder dump (%s, trigger: %s): %s\n",
                   s.label.c_str(), s.flight->trigger_reason(), path.c_str());
      paths.push_back(path);
    }
  }
  return paths;
}

}  // namespace scalerpc::metrics
