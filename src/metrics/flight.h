// Flight recorder: an always-cheap fixed-size ring of recent span/metric
// events that turns fault-recovery runs and failing assertions into
// forensic artifacts.
//
// Producers append plain-POD notes (sim timestamp, node, a string-literal
// name, two integer args) into a preallocated ring — no allocation, no
// formatting, overwrite-oldest — so it can stay on for every fault-mode
// run. When something goes wrong (an injected fault fires, a ScaleRPC
// retry/timeout trips, a SCALERPC_CHECK fails) the recorder is `trigger`ed;
// it records another half-capacity of aftermath and then freezes, so the
// preserved window straddles the FIRST incident no matter how long the run
// continues. Triggered recorders dump their window as JSON, either at
// collector write time (metrics::Collector) or immediately on assertion
// failure (the logging.h failure hook installed by metrics::ScopedSession).
//
// Name strings must be literals (pointers are stored, not copies) — the
// same rule as trace::Tracer.
#ifndef SRC_METRICS_FLIGHT_H_
#define SRC_METRICS_FLIGHT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace scalerpc::metrics {

class FlightRecorder {
 public:
  static constexpr size_t kDefaultCapacity = 1024;

  explicit FlightRecorder(size_t capacity = kDefaultCapacity);

  void note(const char* name, int64_t ts_ns, int32_t node, int64_t a = 0,
            int64_t b = 0) {
    if (frozen_) {
      return;
    }
    Event& e = ring_[head_];
    e.name = name;
    e.ts = ts_ns;
    e.node = node;
    e.a = a;
    e.b = b;
    head_ = head_ + 1 == ring_.size() ? 0 : head_ + 1;
    if (count_ < ring_.size()) {
      count_++;
    }
    // Once triggered, record another half-capacity of aftermath and then
    // freeze, so a dump taken long after the incident (collector write
    // time, end of run) still shows the window AROUND the trigger instead
    // of whatever the tail of the run overwrote it with.
    if (trigger_reason_ != nullptr && ++post_trigger_ >= ring_.size() / 2) {
      frozen_ = true;
    }
  }

  // Marks the recorder dump-worthy. Idempotent: the first reason (and its
  // timestamp) wins, so the dump names the event that started the incident.
  void trigger(const char* reason, int64_t ts_ns) {
    if (trigger_reason_ == nullptr) {
      trigger_reason_ = reason;
      trigger_ts_ = ts_ns;
    }
  }
  bool triggered() const { return trigger_reason_ != nullptr; }
  const char* trigger_reason() const { return trigger_reason_; }

  size_t size() const { return count_; }
  size_t capacity() const { return ring_.size(); }

  // Where dump_now() writes; set by the collector (<prefix>.<slot>.json).
  void set_dump_path(std::string path) { dump_path_ = std::move(path); }
  const std::string& dump_path() const { return dump_path_; }

  // Appends the window, oldest first, as a JSON object:
  //   {"trigger":"...","trigger_ts_ns":...,"events":[
  //     {"ts_ns":...,"node":...,"name":"...","a":...,"b":...}, ...]}
  void dump(std::string& out) const;

  // Writes dump() to dump_path(). Returns the path, or "" when no path is
  // set or the write failed. Safe to call from the assertion-failure hook.
  const std::string& dump_now() const;

 private:
  struct Event {
    const char* name;
    int64_t ts;
    int64_t a;
    int64_t b;
    int32_t node;
  };

  std::vector<Event> ring_;
  size_t head_ = 0;
  size_t count_ = 0;
  size_t post_trigger_ = 0;  // events recorded since the trigger
  bool frozen_ = false;      // incident window captured; stop recording
  const char* trigger_reason_ = nullptr;
  int64_t trigger_ts_ = 0;
  std::string dump_path_;
};

}  // namespace scalerpc::metrics

#endif  // SRC_METRICS_FLIGHT_H_
