#include "src/metrics/metrics.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "src/common/logging.h"
#include "src/metrics/flight.h"

namespace scalerpc::metrics {

thread_local Session g_session;

const char* kind_name(Kind k) {
  switch (k) {
    case Kind::kNode:
      return "node";
    case Kind::kQp:
      return "qp";
    case Kind::kGroup:
      return "group";
    case Kind::kClient:
      return "client";
    case Kind::kCtrl:
      return "ctrl";
  }
  return "?";
}

Registry::Registry() { qp_labels_.reserve(64); }

uint32_t Registry::qp_slot(uint32_t node, uint32_t qpn) {
  const uint64_t label = qp_label(node, qpn);
  auto it = qp_slots_.find(label);
  if (it != qp_slots_.end()) {
    return it->second;
  }
  const auto slot = static_cast<uint32_t>(qp_labels_.size());
  qp_labels_.push_back(label);
  qp_slots_.emplace(label, slot);
  qp_counters_.emplace_back();
  return slot;
}

void Registry::grow(Column c, uint32_t slot) {
  SCALERPC_CHECK(c >= kQpColumnCount);  // kQp blocks come from qp_slot()
  SCALERPC_CHECK(kColumns[c].instrument != Instrument::kHistogram);
  scalars_[c].resize(slot + 1, 0);
}

void Registry::grow_hist(Column c, uint32_t slot) {
  SCALERPC_CHECK(kColumns[c].instrument == Instrument::kHistogram);
  hists_[c].resize(slot + 1);
}

uint64_t Registry::value(Column c, uint32_t slot) const {
  if (c < kQpColumnCount) {
    return slot < qp_counters_.size() ? qp_counters_[slot].v[c] : 0;
  }
  const auto& v = scalars_[c];
  return slot < v.size() ? v[slot] : 0;
}

const Histogram* Registry::histogram(Column c, uint32_t slot) const {
  const auto& h = hists_[c];
  return slot < h.size() ? &h[slot] : nullptr;
}

namespace {

void append_u64(std::string& out, uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out += buf;
}

const char* instrument_name(Instrument i) {
  switch (i) {
    case Instrument::kCounter:
      return "counter";
    case Instrument::kGauge:
      return "gauge";
    case Instrument::kHistogram:
      return "histogram";
  }
  return "?";
}

// Emits the entity label fields for one point. kQp slots carry a packed
// (node, qpn) label; everything else is its own small dense id.
void append_label(std::string& out, Kind kind, uint32_t slot,
                  const std::vector<uint64_t>& qp_labels) {
  if (kind == Kind::kQp) {
    const uint64_t label = qp_labels[slot];
    out += "\"node\":";
    append_u64(out, qp_label_node(label));
    out += ",\"qpn\":";
    append_u64(out, qp_label_qpn(label));
  } else {
    out += "\"id\":";
    append_u64(out, slot);
  }
}

void append_hist(std::string& out, const Histogram& h) {
  out += "\"count\":";
  append_u64(out, h.count());
  out += ",\"min\":";
  append_u64(out, h.min());
  out += ",\"p50\":";
  append_u64(out, h.percentile(50));
  out += ",\"p90\":";
  append_u64(out, h.percentile(90));
  out += ",\"p99\":";
  append_u64(out, h.percentile(99));
  out += ",\"max\":";
  append_u64(out, h.max());
}

}  // namespace

void Registry::dump(std::string& out) const {
  // kQp slots are assigned in first-touch order; emit them sorted by label
  // so the dump is independent of touch order (and thus identical across
  // NIC engines even if they interleave first touches differently).
  std::vector<uint32_t> qp_order(qp_labels_.size());
  for (uint32_t i = 0; i < qp_order.size(); ++i) {
    qp_order[i] = i;
  }
  std::sort(qp_order.begin(), qp_order.end(), [&](uint32_t a, uint32_t b) {
    return qp_labels_[a] < qp_labels_[b];
  });

  out += "{\"series\":[";
  bool first_col = true;
  for (int c = 0; c < kColumnCount; ++c) {
    const ColumnDesc& d = kColumns[c];
    const bool is_hist = d.instrument == Instrument::kHistogram;
    size_t n;
    if (d.kind == Kind::kQp) {
      // The fast per-QP hook writes counter blocks directly, so "touched"
      // is value-derived for these columns: emitted iff any QP's sum is
      // nonzero (deterministic — the sums are). An emitted kQp column
      // lists one point per known QP entity, zeros included, so every qp
      // series carries the same label set.
      bool any = false;
      for (const QpCounters& qc : qp_counters_) {
        any |= qc.v[c] != 0;
      }
      if (!any) {
        continue;
      }
      n = qp_labels_.size();
    } else {
      n = is_hist ? hists_[c].size() : scalars_[c].size();
      if (n == 0) {
        continue;
      }
    }
    if (!first_col) {
      out += ",";
    }
    first_col = false;
    out += "{\"kind\":\"";
    out += kind_name(d.kind);
    out += "\",\"name\":\"";
    out += d.name;
    out += "\",\"instrument\":\"";
    out += instrument_name(d.instrument);
    out += "\",\"points\":[";
    for (size_t i = 0; i < n; ++i) {
      const uint32_t slot =
          d.kind == Kind::kQp ? qp_order[i] : static_cast<uint32_t>(i);
      if (i != 0) {
        out += ",";
      }
      out += "{";
      append_label(out, d.kind, slot, qp_labels_);
      if (is_hist) {
        out += ",";
        append_hist(out, hists_[c][slot]);
      } else {
        out += ",\"value\":";
        append_u64(out, value(static_cast<Column>(c), slot));
      }
      out += "}";
    }
    out += "]}";
  }
  out += "]}";
}

namespace {

// SCALERPC_CHECK failure hook: dump the calling thread's flight recorder so
// an aborting assertion still leaves its forensic window behind. Installed
// once, by the first ScopedSession.
void dump_flight_on_check_failure() {
  FlightRecorder* f = flight();
  if (f == nullptr) {
    return;
  }
  f->trigger("check_failure", 0);
  const std::string& path = f->dump_now();
  if (!path.empty()) {
    std::fprintf(stderr, "flight recorder dumped to %s\n", path.c_str());
  }
}

}  // namespace

ScopedSession::ScopedSession(Session s) : prev_(g_session) {
  g_session = s;
  set_check_failure_hook(&dump_flight_on_check_failure);
}

}  // namespace scalerpc::metrics
