// Per-sweep-slot metrics registries and flight recorders, merged into one
// --metrics file in *submission* order — the same slot-then-print pattern
// trace::Collector uses, so the dump is byte-identical for every --threads
// value (PR 2).
//
// The sweep engine calls resize() once before workers start, then open(i)
// from whichever worker runs task i. Slots are touched by exactly one task,
// so no synchronization is needed beyond the run()'s join.
#ifndef SRC_METRICS_COLLECTOR_H_
#define SRC_METRICS_COLLECTOR_H_

#include <memory>
#include <string>
#include <vector>

#include "src/metrics/flight.h"
#include "src/metrics/metrics.h"

namespace scalerpc::metrics {

struct CollectorConfig {
  bool metrics = false;            // install a Registry per slot
  bool flight = false;             // install a FlightRecorder per slot
  std::string flight_prefix;      // dumps land at <prefix>.<slot>.json
  size_t flight_capacity = FlightRecorder::kDefaultCapacity;
};

class Collector {
 public:
  explicit Collector(CollectorConfig cfg) : cfg_(cfg) {}

  bool enabled() const { return cfg_.metrics || cfg_.flight; }

  // Pre-sizes the slot table; must be called before tasks execute.
  void resize(size_t slots);

  // Creates the slot's registry/recorder (on the calling worker thread) and
  // returns a Session wired to them, ready for ScopedSession.
  Session open(size_t slot, const std::string& label);

  size_t slots() const { return slots_.size(); }
  const Registry* registry(size_t slot) const {
    return slots_[slot].registry.get();
  }
  FlightRecorder* flight(size_t slot) { return slots_[slot].flight.get(); }

  // Writes {"bench": name, "slots": [{"label":..., "metrics":{...}}, ...]}.
  // No-op returning true when path is empty or metrics were not requested.
  bool write_metrics(const std::string& path, const std::string& bench_name) const;

  // Dumps every *triggered* flight recorder to <prefix>.<slot>.json and
  // returns the paths written (also announced on stderr so CI logs are
  // self-diagnosing). Untriggered slots write nothing.
  std::vector<std::string> write_flight_dumps();

 private:
  struct Slot {
    std::string label;
    std::unique_ptr<Registry> registry;
    std::unique_ptr<FlightRecorder> flight;
  };

  CollectorConfig cfg_;
  std::vector<Slot> slots_;
};

}  // namespace scalerpc::metrics

#endif  // SRC_METRICS_COLLECTOR_H_
