// Scenario: a MICA-style KV cache served over ScaleRPC to 120 clients —
// the "one-to-many" pattern from the paper's introduction. Shows grouping
// keeping throughput flat where a naive RC design (RawWrite) collapses.
//
// Expected output: ~14 M gets/s and ~0.8 M puts/s (deterministic for a
// given tree), and a server QP-cache hit rate near 97% — grouping keeps
// the live connection set inside the 64-entry cache even with 120 clients
// connected.
#include <cstdio>

#include "src/common/codec.h"
#include "src/harness/harness.h"
#include "src/txn/participant.h"

using namespace scalerpc;
using namespace scalerpc::harness;

namespace {

sim::Task<void> kv_client(sim::EventLoop* loop, rpc::RpcClient* client, Rng rng,
                          uint64_t keys, uint64_t* gets, uint64_t* puts,
                          const bool* stop) {
  ZipfGenerator zipf(keys, 0.99);
  while (!*stop) {
    const uint64_t key = zipf.next(rng);
    Writer w;
    w.u64(key);
    if (rng.next_bool(0.95)) {
      rpc::Bytes resp = co_await client->call(txn::kKvGet, w.take());
      SCALERPC_CHECK(!resp.empty() && resp[0] == 1);
      (*gets)++;
    } else {
      rpc::Bytes value(40, static_cast<uint8_t>(key));
      w.bytes(value);
      co_await client->call(txn::kKvPut, w.take());
      (*puts)++;
    }
  }
  (void)loop;
}

}  // namespace

int main() {
  TestbedConfig cfg;
  cfg.kind = TransportKind::kScaleRpc;
  cfg.num_clients = 120;
  cfg.num_client_nodes = 8;
  Testbed bed(cfg);

  // The participant helper wires a HashStore's get/put handlers onto any
  // RPC server.
  txn::Participant store(bed.server_node(), &bed.server(), 1 << 16, 40);
  rpc::Bytes value(40, 7);
  constexpr uint64_t kKeys = 20000;
  for (uint64_t k = 0; k < kKeys; ++k) {
    store.store().insert(k, value);
  }
  bed.server().start();

  uint64_t gets = 0;
  uint64_t puts = 0;
  bool stop = false;
  Rng rng(42);
  for (size_t c = 0; c < bed.num_clients(); ++c) {
    sim::spawn(bed.loop(), kv_client(&bed.loop(), &bed.client(c), Rng(rng.next()),
                                     kKeys, &gets, &puts, &stop));
  }
  bed.loop().run_for(msec(5));
  stop = true;

  const double secs = 5e-3;
  std::printf("KV cache over ScaleRPC, 120 clients, zipf(0.99), 95%% reads:\n");
  std::printf("  %.2f M gets/s, %.2f M puts/s (simulated)\n",
              static_cast<double>(gets) / secs / 1e6,
              static_cast<double>(puts) / secs / 1e6);
  std::printf("  server QP-cache hit rate stayed high: %llu hits / %llu misses\n",
              (unsigned long long)bed.server_node()->nic().counters().qp_cache_hits,
              (unsigned long long)bed.server_node()->nic().counters().qp_cache_misses);
  return 0;
}
