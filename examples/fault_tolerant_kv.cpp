// Scenario: a KV store on persistent memory served over ScaleRPC, whose
// server crashes mid-run and restarts 300us later (docs/faults.md). The
// 12 clients ride it out: RPCs issued during the outage time out, back
// off, re-establish their QPs once the server is back, and replay — the
// server's dedup layer guarantees no put is applied twice, and the store
// itself (host memory) survives the warm restart.
//
// Expected output (deterministic for a given tree): ~6.8 Mops before the
// crash, a handful of ops during the outage window, recovered after
// restart (6812 / 4 / 6445 ops across the three phases); all 12 clients
// reconnect exactly once (36 timeouts, 2 duplicate puts suppressed); every
// client's final read-back matches its last acknowledged put.
#include <cstdio>

#include "src/common/codec.h"
#include "src/fault/plan.h"
#include "src/harness/harness.h"
#include "src/txn/participant.h"

using namespace scalerpc;
using namespace scalerpc::harness;

namespace {

constexpr Nanos kCrashAt = msec(1);
constexpr Nanos kRestartAt = kCrashAt + usec(300);
constexpr Nanos kEnd = msec(3);

struct ClientStats {
  uint64_t ops = 0;
  uint64_t last_put = 0;  // last acknowledged value of this client's key
  bool stop = false;
};

sim::Task<void> kv_client(rpc::RpcClient* client, uint64_t key, Rng rng,
                          ClientStats* st) {
  uint64_t counter = 0;
  while (!st->stop) {
    Writer w;
    w.u64(key);
    if (rng.next_bool(0.9)) {
      rpc::Bytes resp = co_await client->call(txn::kKvGet, w.take());
      SCALERPC_CHECK(!resp.empty() && resp[0] == 1);
    } else {
      rpc::Bytes value(40, 0);
      Writer vw;
      vw.u64(++counter);
      const auto enc = vw.take();
      std::copy(enc.begin(), enc.end(), value.begin());
      w.bytes(value);
      co_await client->call(txn::kKvPut, w.take());
      st->last_put = counter;  // only counts once the ack arrived
    }
    st->ops++;
  }
}

}  // namespace

int main() {
  // The same plan could come from a file via FaultPlan::load / --faults.
  fault::FaultPlan plan;
  plan.seed = 3;
  plan.crash(/*node=*/0, kCrashAt, kRestartAt);

  TestbedConfig cfg;
  cfg.kind = TransportKind::kScaleRpc;
  cfg.num_clients = 12;
  cfg.num_client_nodes = 3;
  cfg.rpc.client_timeout = usec(150);
  cfg.rpc.client_timeout_max = usec(600);
  cfg.sim.rc_retransmit_timeout_ns = 8000;
  cfg.sim.rc_retry_count = 5;
  cfg.faults = &plan;
  cfg.fault_seed = 1;
  Testbed bed(cfg);

  txn::Participant store(bed.server_node(), &bed.server(), 1 << 12, 40);
  constexpr uint64_t kClients = 12;
  rpc::Bytes zero(40, 0);
  for (uint64_t k = 0; k < kClients; ++k) {
    store.store().insert(k, zero);
  }
  bed.server().start();

  std::vector<ClientStats> stats(kClients);
  Rng rng(42);
  for (size_t c = 0; c < bed.num_clients(); ++c) {
    sim::spawn(bed.loop(), kv_client(&bed.client(c), static_cast<uint64_t>(c),
                                     Rng(rng.next()), &stats[c]));
  }

  auto total_ops = [&stats] {
    uint64_t sum = 0;
    for (const ClientStats& s : stats) {
      sum += s.ops;
    }
    return sum;
  };
  bed.loop().run_for(kCrashAt);
  const uint64_t before = total_ops();
  bed.loop().run_for(kRestartAt - kCrashAt);
  const uint64_t during = total_ops() - before;
  bed.loop().run_for(kEnd - kRestartAt);
  const uint64_t after = total_ops() - before - during;
  for (ClientStats& s : stats) {
    s.stop = true;
  }
  bed.loop().run_for(msec(1));  // let in-flight retries land

  // The store outlived the crash (persistent memory, warm restart): each
  // client's key must hold its last *acknowledged* put — dedup made the
  // replayed ones idempotent, and no ack was delivered for a lost write.
  int verified = 0;
  for (uint64_t k = 0; k < kClients; ++k) {
    auto view = store.store().lookup(k);
    SCALERPC_CHECK(view.has_value());
    Reader r(view->value);
    if (r.u64() == stats[k].last_put) {
      verified++;
    }
  }

  uint64_t timeouts = 0;
  uint64_t reconnects = 0;
  for (size_t c = 0; c < bed.num_clients(); ++c) {
    timeouts += bed.scalerpc_client(c)->timeouts();
    reconnects += bed.scalerpc_client(c)->reconnects();
  }

  std::printf("KV over ScaleRPC, 12 clients, server crash at 1ms + restart 300us later:\n");
  std::printf("  ops  before/during/after crash: %llu / %llu / %llu\n",
              (unsigned long long)before, (unsigned long long)during,
              (unsigned long long)after);
  std::printf("  %llu RPC timeouts, %llu reconnects, %llu duplicate puts suppressed\n",
              (unsigned long long)timeouts, (unsigned long long)reconnects,
              (unsigned long long)bed.scalerpc()->dup_rpcs());
  std::printf("  read-back: %d/12 keys match the last acknowledged put\n", verified);
  return verified == 12 ? 0 : 1;
}
