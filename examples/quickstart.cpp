// Quickstart: stand up a ScaleRPC server and a few clients on the simulated
// RDMA fabric, register a handler, and make calls. Demonstrates the three
// paper API verbs (SyncCall; AsyncCall + PollCompletion via stage/flush)
// and that with group_size < num_clients the server really context-switches
// between connection groups.
//
// Build & run:   cmake -B build -G Ninja && cmake --build build
//                ./build/examples/quickstart
//
// Expected output (deterministic):
//   sync call:  sent 2 bytes, got 3 bytes back
//   async batch: 4 responses in one flush
//   server handled 5 requests; 6 context switches so far
#include <cstdio>

#include "src/harness/harness.h"

using namespace scalerpc;
using namespace scalerpc::harness;

int main() {
  // A testbed = 1 server node + client nodes on a simulated 56 Gbps fabric.
  TestbedConfig cfg;
  cfg.kind = TransportKind::kScaleRpc;
  cfg.num_clients = 8;
  cfg.num_client_nodes = 2;
  cfg.rpc.group_size = 4;  // two groups -> real context switching
  Testbed bed(cfg);

  // Handlers receive (context, request bytes) and return response bytes
  // plus the CPU time the application logic would burn.
  bed.server().handlers().register_handler(
      1, [](const rpc::RequestContext& ctx, std::span<const uint8_t> req) {
        rpc::HandlerResult result;
        result.response.assign(req.begin(), req.end());
        result.response.push_back(static_cast<uint8_t>(ctx.client_id));
        result.cpu_ns = 150;
        return result;
      });
  bed.server().start();

  // Drive a client: SyncCall (call) and AsyncCall+PollCompletion
  // (stage+flush), per the paper's API (Section 3.5).
  auto body = [&]() -> sim::Task<void> {
    rpc::Bytes req = {'h', 'i'};
    rpc::Bytes resp = co_await bed.client(0).call(1, req);
    std::printf("sync call:  sent 2 bytes, got %zu bytes back\n", resp.size());

    for (int i = 0; i < 4; ++i) {
      bed.client(1).stage(1, {static_cast<uint8_t>(i)});
    }
    std::vector<rpc::Bytes> batch = co_await bed.client(1).flush();
    std::printf("async batch: %zu responses in one flush\n", batch.size());
  };
  auto t = body();
  sim::run_blocking(bed.loop(), std::move(t));

  std::printf("server handled %llu requests; %llu context switches so far\n",
              (unsigned long long)bed.server().requests_served(),
              (unsigned long long)bed.scalerpc()->context_switches());
  return 0;
}
