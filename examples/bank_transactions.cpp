// Scenario: SmallBank transactions over ScaleTX (Section 4.2) — OCC + 2PC
// across three storage shards, with one-sided RDMA validation and commit
// co-used with ScaleRPC on the same reliable connections.
//
// Expected output: two lines comparing ScaleTX-O (RPC-only commit path)
// against ScaleTX (one-sided validate/commit), e.g. ~330k vs ~450k
// committed txn/s with a lower abort rate for ScaleTX — the write-path
// offload argument behind the paper's Fig. 16b.
#include <cstdio>

#include "src/txn/testbed.h"

using namespace scalerpc;
using namespace scalerpc::txn;

int main() {
  for (const bool one_sided : {false, true}) {
    ScaleTxConfig cfg;
    cfg.one_sided = one_sided;
    cfg.num_coordinators = 60;
    cfg.coordinator_nodes = 6;
    cfg.keys_per_shard = 40000;
    ScaleTxTestbed bed(cfg);
    bed.preload();
    bed.start();

    SmallBankWorkload wl(cfg.keys_per_shard * 3 / 2, cfg.value_bytes);
    const TxnRunResult r = run_transactions(
        bed, [&wl](Rng& rng) { return wl.next(rng); }, msec(1), msec(4));
    bed.stop();

    std::printf("%-9s: %8.1f k committed txn/s, %4.1f%% aborts, %llu commits\n",
                one_sided ? "ScaleTX" : "ScaleTX-O", r.committed_ktps,
                r.abort_rate * 100, (unsigned long long)r.committed);
  }
  std::printf("\nScaleTX's one-sided validate/commit offloads the participants\n"
              "and skips response waits on the write-intensive commit path.\n");
  return 0;
}
