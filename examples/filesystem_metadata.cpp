// Scenario: the paper's motivating application — a distributed file
// system's metadata server (Section 4.1). Runs the same mdtest phases on
// selfRPC (Octopus' transport) and on ScaleRPC and prints the comparison.
//
// Expected output: a 2-row Mops table (deterministic; exact values shift
// only if model parameters change). ScaleRPC wins every phase at 96
// clients, with the read-oriented ops (Stat ~2.5x, ReadDir ~1.5x) gaining
// far more than the software-bound update ops (Mknod/Rmnod ~1.2x) — the
// Fig. 13 ordering.
#include <cstdio>

#include "src/dfs/workload.h"

using namespace scalerpc;
using namespace scalerpc::dfs;
using namespace scalerpc::harness;

int main() {
  std::printf("DFS metadata server, 96 clients, mdtest phases\n\n");
  std::printf("%-10s %-10s %-10s %-10s %-10s\n", "transport", "Mknod", "Stat",
              "ReadDir", "Rmnod");
  for (auto kind : {TransportKind::kSelfRpc, TransportKind::kScaleRpc}) {
    TestbedConfig cfg;
    cfg.kind = kind;
    cfg.num_clients = 96;
    cfg.num_client_nodes = 8;
    cfg.rpc.dynamic_priority = false;
    Testbed bed(cfg);
    MdtestConfig mc;
    mc.files_per_client = 80;
    const MdtestResult r = run_mdtest(bed, mc);
    std::printf("%-10s %-10.3f %-10.3f %-10.3f %-10.3f   (Mops)\n",
                to_string(kind), r.mknod_mops, r.stat_mops, r.readdir_mops,
                r.rmnod_mops);
  }
  std::printf("\nRead-oriented metadata ops ride the RPC layer's scalability;\n"
              "update ops are bounded by file-system software costs.\n");
  return 0;
}
