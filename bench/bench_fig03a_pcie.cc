// Fig. 3a: inbound/outbound RC write throughput vs the PCIe read rate at
// the server. Before the knee PCIe reads track the write rate (payload
// gathers); past it they explode (QP state + WQE refetches).
#include "bench/bench_common.h"
#include "src/harness/rawverbs.h"

using namespace scalerpc;
using namespace scalerpc::harness;

int main(int argc, char** argv) {
  const auto opt = bench::parse_options(argc, argv);
  bench::header("Fig 3a: RC write throughput vs PCIe read rate", "paper Fig 3a");
  std::vector<int> clients = opt.quick ? std::vector<int>{10, 100, 400}
                                       : std::vector<int>{10, 50, 100, 200, 400, 800};
  std::printf("%-8s %-15s %-15s %-15s %-15s\n", "clients", "out(Mops)",
              "out_pcie_rd(M/s)", "in(Mops)", "in_pcie_rd(M/s)");
  for (int n : clients) {
    RawVerbConfig cfg;
    cfg.num_clients = n;
    if (opt.quick) {
      cfg.measure = msec(1);
    }
    const auto out = run_outbound_write(cfg);
    const auto in = run_inbound_write(cfg);
    std::printf("%-8d %-15.2f %-15.2f %-15.2f %-15.2f\n", n, out.mops,
                out.pcie_rd_mops, in.mops, in.pcie_rd_mops);
  }
  return 0;
}
