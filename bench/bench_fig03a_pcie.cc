// Fig. 3a: inbound/outbound RC write throughput vs the PCIe read rate at
// the server. Before the knee PCIe reads track the write rate (payload
// gathers); past it they explode (QP state + WQE refetches).
#include <string>

#include "bench/bench_common.h"
#include "src/harness/rawverbs.h"
#include "src/harness/sweep.h"

using namespace scalerpc;
using namespace scalerpc::harness;

int main(int argc, char** argv) {
  const auto opt = bench::parse_options(argc, argv);
  std::vector<int> clients = opt.quick ? std::vector<int>{10, 100, 400}
                                       : std::vector<int>{10, 50, 100, 200, 400, 800};

  Sweep sweep;
  struct Row {
    RawVerbResult out, in;
  };
  std::vector<Row> rows(clients.size());
  for (size_t idx = 0; idx < clients.size(); ++idx) {
    RawVerbConfig cfg;
    cfg.num_clients = clients[idx];
    cfg.seed = opt.seed;
    if (opt.quick) {
      cfg.measure = msec(1);
    }
    const std::string label = "clients=" + std::to_string(clients[idx]);
    sweep.add(label + "/outbound",
              [cfg, slot = &rows[idx].out] { *slot = run_outbound_write(cfg); });
    sweep.add(label + "/inbound",
              [cfg, slot = &rows[idx].in] { *slot = run_inbound_write(cfg); });
  }
  bench::Observability obs(opt, "fig03a_pcie");
  obs.attach(sweep);
  sweep.run(opt.threads);

  bench::header("Fig 3a: RC write throughput vs PCIe read rate", "paper Fig 3a");
  std::printf("%-8s %-15s %-15s %-15s %-15s\n", "clients", "out(Mops)",
              "out_pcie_rd(M/s)", "in(Mops)", "in_pcie_rd(M/s)");
  for (size_t idx = 0; idx < clients.size(); ++idx) {
    std::printf("%-8d %-15.2f %-15.2f %-15.2f %-15.2f\n", clients[idx],
                rows[idx].out.mops, rows[idx].out.pcie_rd_mops, rows[idx].in.mops,
                rows[idx].in.pcie_rd_mops);
  }
  return obs.write() ? 0 : 1;
}
