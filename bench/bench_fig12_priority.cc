// Fig. 12: priority-based (Dynamic) vs Static scheduling under skewed
// client access frequencies. Per-client think times are drawn lognormally
// (Gaussian in the exponent, sigma = 0.8 / 1.0 as in the paper); Dynamic
// groups busy clients together and stretches their slices.
#include <cmath>
#include <string>

#include "bench/bench_common.h"
#include "src/common/rng.h"
#include "src/harness/harness.h"
#include "src/harness/sweep.h"

using namespace scalerpc;
using namespace scalerpc::harness;

namespace {
double run_mode(bool dynamic, double sigma, uint64_t seed, bool quick) {
  TestbedConfig cfg;
  cfg.kind = TransportKind::kScaleRpc;
  cfg.num_clients = 120;
  cfg.num_client_nodes = 8;
  cfg.rpc.group_size = 40;
  cfg.rpc.dynamic_priority = dynamic;
  cfg.rpc.rebuild_every_rotations = 2;
  Testbed bed(cfg);
  EchoWorkload wl;
  wl.batch = 4;
  wl.seed = seed;
  wl.warmup = msec(2);  // give the scheduler time to learn priorities
  wl.measure = quick ? msec(3) : msec(6);
  Rng rng(seed);
  for (int c = 0; c < cfg.num_clients; ++c) {
    const double z = rng.next_gaussian();
    // Lognormal think times centered at ~30us: the busy head posts nearly
    // back-to-back while the median client idles through a good part of
    // each slice — the imbalance the priority scheduler exploits.
    wl.per_client_think.push_back(
        static_cast<Nanos>(30000.0 * std::exp(2.5 * sigma * z)));
  }
  return run_echo(bed, wl).mops;
}
}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::parse_options(argc, argv);
  const std::vector<double> sigmas = {0.8, 1.0};

  Sweep sweep;
  struct Row {
    double stat = 0, dyn = 0;
  };
  std::vector<Row> rows(sigmas.size());
  for (size_t idx = 0; idx < sigmas.size(); ++idx) {
    const double sigma = sigmas[idx];
    sweep.add("static/sigma=" + std::to_string(sigma),
              [&opt, sigma, slot = &rows[idx].stat] {
                *slot = run_mode(false, sigma, opt.seed, opt.quick);
              });
    sweep.add("dynamic/sigma=" + std::to_string(sigma),
              [&opt, sigma, slot = &rows[idx].dyn] {
                *slot = run_mode(true, sigma, opt.seed, opt.quick);
              });
  }
  bench::Observability obs(opt, "fig12_priority");
  obs.attach(sweep);
  sweep.run(opt.threads);

  bench::header("Fig 12: Dynamic vs Static scheduling under skewed AFD",
                "Dynamic outperforms Static by ~9-10%");
  std::printf("%-8s %-14s %-14s %-8s\n", "sigma", "Static(Mops)", "Dynamic(Mops)",
              "gain");
  for (size_t idx = 0; idx < sigmas.size(); ++idx) {
    std::printf("%-8.1f %-14.2f %-14.2f %+.1f%%\n", sigmas[idx], rows[idx].stat,
                rows[idx].dyn, (rows[idx].dyn / rows[idx].stat - 1.0) * 100.0);
  }
  return obs.write() ? 0 : 1;
}
