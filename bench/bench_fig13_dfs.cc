// Fig. 13: DFS metadata performance with selfRPC vs ScaleRPC. Read-oriented
// ops (Stat/ReadDir) gain ~50-90% at 80-120 clients; software-bound
// Mknod/Rmnod gain only ~5%.
#include "bench/bench_common.h"
#include "src/dfs/workload.h"

using namespace scalerpc;
using namespace scalerpc::dfs;
using namespace scalerpc::harness;

int main(int argc, char** argv) {
  const auto opt = bench::parse_options(argc, argv);
  bench::header("Fig 13: DFS metadata ops, selfRPC vs ScaleRPC", "paper Fig 13");
  const std::vector<int> clients =
      opt.quick ? std::vector<int>{40, 120} : std::vector<int>{40, 80, 120};
  std::printf("%-8s %-9s | %-10s %-10s %-10s %-10s\n", "clients", "rpc", "Mknod",
              "Stat", "ReadDir", "Rmnod");
  for (int n : clients) {
    MdtestResult results[2];
    int i = 0;
    for (auto kind : {TransportKind::kSelfRpc, TransportKind::kScaleRpc}) {
      TestbedConfig cfg;
      cfg.kind = kind;
      cfg.num_clients = n;
      cfg.num_client_nodes = 8;
      // Uniform workload: static grouping avoids rebuild-induced stragglers
      // that would dominate mdtest's barrier-synchronized phases.
      cfg.rpc.dynamic_priority = false;
      Testbed bed(cfg);
      MdtestConfig mc;
      mc.files_per_client = 60;
  
      results[i] = run_mdtest(bed, mc);
      std::printf("%-8d %-9s | %-10.3f %-10.3f %-10.3f %-10.3f\n", n,
                  kind == TransportKind::kSelfRpc ? "selfRPC" : "ScaleRPC",
                  results[i].mknod_mops, results[i].stat_mops,
                  results[i].readdir_mops, results[i].rmnod_mops);
      i++;
    }
    std::printf("%-8s %-9s | %+9.1f%% %+9.1f%% %+9.1f%% %+9.1f%%\n", "", "gain",
                (results[1].mknod_mops / results[0].mknod_mops - 1) * 100,
                (results[1].stat_mops / results[0].stat_mops - 1) * 100,
                (results[1].readdir_mops / results[0].readdir_mops - 1) * 100,
                (results[1].rmnod_mops / results[0].rmnod_mops - 1) * 100);
  }
  return 0;
}
