// Fig. 13: DFS metadata performance with selfRPC vs ScaleRPC. Read-oriented
// ops (Stat/ReadDir) gain ~50-90% at 80-120 clients; software-bound
// Mknod/Rmnod gain only ~5%.
#include <string>

#include "bench/bench_common.h"
#include "src/dfs/workload.h"
#include "src/harness/sweep.h"

using namespace scalerpc;
using namespace scalerpc::dfs;
using namespace scalerpc::harness;

int main(int argc, char** argv) {
  const auto opt = bench::parse_options(argc, argv);
  const std::vector<int> clients =
      opt.quick ? std::vector<int>{40, 120} : std::vector<int>{40, 80, 120};
  const TransportKind kinds[] = {TransportKind::kSelfRpc, TransportKind::kScaleRpc};

  Sweep sweep;
  std::vector<MdtestResult> results(clients.size() * 2);
  size_t i = 0;
  for (int n : clients) {
    for (auto kind : kinds) {
      sweep.add(std::string(to_string(kind)) + "/c" + std::to_string(n),
                [kind, n, slot = &results[i++]] {
                  TestbedConfig cfg;
                  cfg.kind = kind;
                  cfg.num_clients = n;
                  cfg.num_client_nodes = 8;
                  // Uniform workload: static grouping avoids rebuild-induced
                  // stragglers that would dominate mdtest's
                  // barrier-synchronized phases.
                  cfg.rpc.dynamic_priority = false;
                  Testbed bed(cfg);
                  MdtestConfig mc;
                  mc.files_per_client = 60;
                  *slot = run_mdtest(bed, mc);
                });
    }
  }
  bench::Observability obs(opt, "fig13_dfs");
  obs.attach(sweep);
  sweep.run(opt.threads);

  bench::header("Fig 13: DFS metadata ops, selfRPC vs ScaleRPC", "paper Fig 13");
  std::printf("%-8s %-9s | %-10s %-10s %-10s %-10s\n", "clients", "rpc", "Mknod",
              "Stat", "ReadDir", "Rmnod");
  i = 0;
  for (int n : clients) {
    const MdtestResult* pair = &results[i];
    for (auto kind : kinds) {
      const MdtestResult& r = results[i++];
      std::printf("%-8d %-9s | %-10.3f %-10.3f %-10.3f %-10.3f\n", n,
                  kind == TransportKind::kSelfRpc ? "selfRPC" : "ScaleRPC",
                  r.mknod_mops, r.stat_mops, r.readdir_mops, r.rmnod_mops);
    }
    std::printf("%-8s %-9s | %+9.1f%% %+9.1f%% %+9.1f%% %+9.1f%%\n", "", "gain",
                (pair[1].mknod_mops / pair[0].mknod_mops - 1) * 100,
                (pair[1].stat_mops / pair[0].stat_mops - 1) * 100,
                (pair[1].readdir_mops / pair[0].readdir_mops - 1) * 100,
                (pair[1].rmnod_mops / pair[0].rmnod_mops - 1) * 100);
  }
  return obs.write() ? 0 : 1;
}
