// Section 5.1: why UD cannot replace RC for large payloads. A single RC
// write moves the whole message in one verb; UD must slice at the 4 KB MTU
// with receiver acknowledgements to preserve order. The paper's prototype
// measured 0.8 GB/s for ordered UD transfer vs ~6.4 GB/s for RC (12.5%);
// pipelining helps but pushes reassembly complexity into software.
#include "bench/bench_common.h"
#include "src/harness/sweep.h"
#include "src/rpc/large_transfer.h"
#include "src/simrdma/nic.h"

using namespace scalerpc;
using namespace scalerpc::simrdma;

int main(int argc, char** argv) {
  const auto opt = bench::parse_options(argc, argv);
  const uint64_t len = opt.quick ? MiB(4) : MiB(16);

  // The three transfers share one cluster and run back-to-back on its
  // clock, so they are a single sweep task, not three.
  rpc::TransferResult rc{};
  rpc::TransferResult ud{};
  rpc::TransferResult udp{};
  harness::Sweep sweep;
  sweep.add("large_transfers", [len, &rc, &ud, &udp] {
    SimParams params;
    params.host_memory_bytes = len + MiB(8);
    Cluster cluster(params);
    Node* a = cluster.add_node("sender");
    Node* b = cluster.add_node("receiver");
    const uint64_t src = a->alloc(len, 4096);
    const uint64_t dst = b->alloc(len, 4096);
    const uint32_t rkey = b->arena_mr()->rkey;

    auto* rc_cq_a = a->create_cq();
    auto* rc_cq_b = b->create_cq();
    QueuePair* rc_a = a->create_qp(QpType::kRC, rc_cq_a, rc_cq_a);
    QueuePair* rc_b = b->create_qp(QpType::kRC, rc_cq_b, rc_cq_b);
    cluster.connect(rc_a, rc_b);

    auto* ud_scq = a->create_cq();
    auto* ud_rcq = a->create_cq();
    QueuePair* ud_a = a->create_qp(QpType::kUD, ud_scq, ud_rcq);
    auto* ud_scq_b = b->create_cq();
    auto* ud_rcq_b = b->create_cq();
    QueuePair* ud_b = b->create_qp(QpType::kUD, ud_scq_b, ud_rcq_b);

    auto body = [&]() -> sim::Task<void> {
      rc = co_await rpc::rc_write_transfer(rc_a, src, dst, rkey, len);
      ud = co_await rpc::ud_chunked_transfer(ud_a, ud_b, src, dst, len);
      udp = co_await rpc::ud_pipelined_transfer(ud_a, ud_b, src, dst, len, 16);
    };
    auto t = body();
    sim::run_blocking(cluster.loop(), std::move(t));
  });
  bench::Observability obs(opt, "sec51_large");
  obs.attach(sweep);
  sweep.run(opt.threads);

  bench::header("Sec 5.1: large transfers, RC write vs sliced UD",
                "ordered UD ~12.5% of RC bandwidth; pipelining recovers some");
  std::printf("%-24s %-12s %-12s %-10s\n", "method", "bytes", "time(us)", "GB/s");
  auto row = [len](const char* name, const rpc::TransferResult& r) {
    std::printf("%-24s %-12llu %-12.1f %-10.2f\n", name, (unsigned long long)len,
                static_cast<double>(r.elapsed) / 1000.0, r.gbytes_per_sec());
  };
  row("RC write (one verb)", rc);
  row("UD sliced, stop&wait", ud);
  row("UD sliced, window=16", udp);
  std::printf("\nordered-UD / RC bandwidth ratio: %.1f%% (paper: ~12.5%%)\n",
              100.0 * ud.gbytes_per_sec() / rc.gbytes_per_sec());
  return obs.write() ? 0 : 1;
}
