// Fig. 1a: the motivating observation — Octopus-style DFS metadata
// throughput over its native self-identified RPC drops sharply for
// read-oriented ops (Stat/ReadDir) as clients grow, while software-bound
// Mknod barely moves.
#include <string>

#include "bench/bench_common.h"
#include "src/dfs/workload.h"
#include "src/harness/sweep.h"

using namespace scalerpc;
using namespace scalerpc::dfs;
using namespace scalerpc::harness;

int main(int argc, char** argv) {
  const auto opt = bench::parse_options(argc, argv);
  const std::vector<int> clients =
      opt.quick ? std::vector<int>{40, 120} : std::vector<int>{40, 80, 120};

  // mdtest is a fixed-op closed loop with no randomness to seed; --seed is
  // accepted for CLI uniformity but has nothing to perturb here.
  Sweep sweep;
  std::vector<MdtestResult> results(clients.size());
  for (size_t idx = 0; idx < clients.size(); ++idx) {
    sweep.add("clients=" + std::to_string(clients[idx]),
              [n = clients[idx], slot = &results[idx]] {
                TestbedConfig cfg;
                cfg.kind = TransportKind::kSelfRpc;
                cfg.num_clients = n;
                cfg.num_client_nodes = 8;
                Testbed bed(cfg);
                MdtestConfig mc;
                mc.files_per_client = 60;
                *slot = run_mdtest(bed, mc);
              });
  }
  bench::Observability obs(opt, "fig01a_dfs_motivation");
  obs.attach(sweep);
  sweep.run(opt.threads);

  bench::header("Fig 1a: DFS metadata throughput vs #clients (selfRPC)",
                "Stat/ReadDir drop ~50% from 40 to 120 clients; Mknod ~5%");
  std::printf("%-8s %-12s %-12s %-12s %-12s\n", "clients", "Mknod", "Stat",
              "ReadDir", "Rmnod");
  for (size_t idx = 0; idx < clients.size(); ++idx) {
    const MdtestResult& r = results[idx];
    std::printf("%-8d %-12.3f %-12.3f %-12.3f %-12.3f\n", clients[idx], r.mknod_mops,
                r.stat_mops, r.readdir_mops, r.rmnod_mops);
  }
  std::printf("(Mops per op type)\n");
  return obs.write() ? 0 : 1;
}
