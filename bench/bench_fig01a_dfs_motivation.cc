// Fig. 1a: the motivating observation — Octopus-style DFS metadata
// throughput over its native self-identified RPC drops sharply for
// read-oriented ops (Stat/ReadDir) as clients grow, while software-bound
// Mknod barely moves.
#include "bench/bench_common.h"
#include "src/dfs/workload.h"

using namespace scalerpc;
using namespace scalerpc::dfs;
using namespace scalerpc::harness;

int main(int argc, char** argv) {
  const auto opt = bench::parse_options(argc, argv);
  bench::header("Fig 1a: DFS metadata throughput vs #clients (selfRPC)",
                "Stat/ReadDir drop ~50% from 40 to 120 clients; Mknod ~5%");
  const std::vector<int> clients =
      opt.quick ? std::vector<int>{40, 120} : std::vector<int>{40, 80, 120};
  std::printf("%-8s %-12s %-12s %-12s %-12s\n", "clients", "Mknod", "Stat",
              "ReadDir", "Rmnod");
  for (int n : clients) {
    TestbedConfig cfg;
    cfg.kind = TransportKind::kSelfRpc;
    cfg.num_clients = n;
    cfg.num_client_nodes = 8;
    Testbed bed(cfg);
    MdtestConfig mc;
    mc.files_per_client = 60;

    const MdtestResult r = run_mdtest(bed, mc);
    std::printf("%-8d %-12.3f %-12.3f %-12.3f %-12.3f\n", n, r.mknod_mops,
                r.stat_mops, r.readdir_mops, r.rmnod_mops);
  }
  std::printf("(Mops per op type)\n");
  return 0;
}
