// Fig. 3b: inbound RC write throughput vs message block size (400 clients x
// 20 blocks each, 32-byte messages walking through the blocks). Once the
// touched footprint outgrows the LLC, throughput collapses and the L3 miss
// rate climbs.
#include <string>

#include "bench/bench_common.h"
#include "src/harness/rawverbs.h"
#include "src/harness/sweep.h"

using namespace scalerpc;
using namespace scalerpc::harness;

int main(int argc, char** argv) {
  const auto opt = bench::parse_options(argc, argv);
  std::vector<uint32_t> sizes =
      opt.quick ? std::vector<uint32_t>{256, 2048, 8192}
                : std::vector<uint32_t>{64, 256, 1024, 2048, 4096, 8192, 16384};

  Sweep sweep;
  std::vector<RawVerbResult> results(sizes.size());
  for (size_t idx = 0; idx < sizes.size(); ++idx) {
    RawVerbConfig cfg;
    cfg.num_clients = 400;
    cfg.blocks_per_client = 20;
    cfg.block_bytes = sizes[idx];
    cfg.seed = opt.seed;
    // Writes walk log-style through each block, so one full reuse cycle is
    // blocks * block/msg writes per client; warm long enough that resident
    // pools actually reach steady state.
    cfg.warmup = opt.quick ? msec(6) : msec(16);
    cfg.measure = opt.quick ? msec(2) : msec(4);
    sweep.add("block=" + std::to_string(sizes[idx]),
              [cfg, slot = &results[idx]] { *slot = run_inbound_write(cfg); });
  }
  bench::Observability obs(opt, "fig03b_blocksize");
  obs.attach(sweep);
  sweep.run(opt.threads);

  bench::header("Fig 3b: inbound RC write vs message block size",
                "sharp drop past 2KB blocks (35 -> <10 Mops), rising L3 misses");
  std::printf("%-12s %-14s %-14s %-12s\n", "block(B)", "footprint(MB)",
              "inbound(Mops)", "l3_miss");
  for (size_t idx = 0; idx < sizes.size(); ++idx) {
    const double mb = 400.0 * 20 * sizes[idx] / (1 << 20);
    std::printf("%-12u %-14.1f %-14.2f %-12.3f\n", sizes[idx], mb, results[idx].mops,
                results[idx].l3_miss_rate);
  }
  return obs.write() ? 0 : 1;
}
